// The coordinator/client side of the multi-process serving tier
// (DESIGN.md §14): replication, health checking, failover, and the
// survivor-rescale degradation math.
//
// Placement: object replica r lives on worker (index + r) % W, so R-way
// replication spreads evenly and any R-1 simultaneous worker losses leave
// at least one replica of a replicated object.
//
// Two registration modes:
//  * RegisterReplicated — the whole graph on each of R workers. Any
//    replica answers with the exact same code path (deserialize-preserved
//    edge order + ExactCutOracle edge scan), so failover answers are
//    BIT-IDENTICAL to a single-process oracle — the chaos soak's "zero
//    wrong bits" invariant. All replicas lost → kUnavailable.
//  * RegisterSharded — edges split round-robin into S edge-disjoint groups,
//    each group replicated R ways; an answer sums the per-shard cuts. When
//    L of S shards have no live replica, survivors are rescaled by
//    S/(S−L) and the advertised accuracy widens to ε·√(S/(S−L)) — the
//    same degradation math as DistributedMinCutPipeline (DESIGN.md §12).
//    All S shards lost → kUnavailable.
//
// Failover policy (who eats which error):
//  * transport failures (kUnavailable, "transport deadline:"
//    kDeadlineExceeded, kDataLoss) — mark the worker Suspect, drop the
//    connection, try the next replica;
//  * peer kUnavailable / kNotFound (worker draining, or respawned and
//    amnesiac) — mark the replica stale, try the next replica;
//  * peer kResourceExhausted — returned to the caller IMMEDIATELY, no
//    failover: admission control is backpressure, and shifting the same
//    load onto the remaining replicas would amplify exactly the overload
//    the worker just reported;
//  * any other peer error (kInvalidArgument, ...) — the request itself is
//    wrong; returned to the caller.
//
// Worker lifecycle: Healthy → Suspect (a call failed) → Dead (health check
// failed). HealthCheck() pings every worker: success revives it (and
// records its instance token); a token change proves a respawn, so every
// replica registered under the old token is stale. Repair() re-registers
// stale replicas from the client's retained graphs, returning the cluster
// to full replication — the respawn half of the chaos loop.
//
// A ClusterClient is NOT thread-safe: one per load-generator thread.

#ifndef DCS_SERVE_CLUSTER_CLIENT_H_
#define DCS_SERVE_CLUSTER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/digraph.h"
#include "graph/types.h"
#include "serve/transport.h"
#include "serve/wire.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {

struct ClusterClientOptions {
  int replication = 2;  // R: replicas per object / per shard group
  TransportOptions transport;
  uint64_t seed = 0;  // reconnect jitter determinism

  void Check() const;
};

// An answer that may have been rescaled over lost shards.
struct DegradedAnswer {
  std::vector<double> values;
  int total_shards = 0;
  int lost_shards = 0;
  // S/(S−L): multiplied into the survivor sum.
  double scale = 1.0;
  // ε·√(S/(S−L)) for the caller's ε (returned as the factor √(S/(S−L));
  // multiply by your ε). 1.0 when nothing was lost.
  double epsilon_factor = 1.0;
};

class ClusterClient {
 public:
  enum class WorkerHealth { kHealthy, kSuspect, kDead };

  using ObjectHandle = int64_t;

  ClusterClient(std::vector<Endpoint> workers, ClusterClientOptions options);

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }
  WorkerHealth worker_health(int worker) const;

  // Registers `graph` whole on R workers starting at (handle % W).
  // Requires at least one successful replica; fewer than R successes is
  // still OK (Repair will finish the job once workers return).
  StatusOr<ObjectHandle> RegisterReplicated(const DirectedGraph& graph);

  // Splits `graph` into `num_shards` edge-disjoint groups (round-robin by
  // edge index) and registers each group on R workers. Requires
  // num_shards >= 1 and at least one live replica per shard at
  // registration time.
  StatusOr<ObjectHandle> RegisterSharded(const DirectedGraph& graph,
                                         int num_shards);

  // Answers a batch against a replicated object: first live replica wins;
  // failover per the policy above. kUnavailable when every replica is
  // lost; kResourceExhausted passes straight through.
  StatusOr<std::vector<double>> AnswerBatch(
      ObjectHandle handle, const std::vector<VertexSet>& sides);

  // Answers a batch against a sharded object with survivor rescaling.
  // Also usable on replicated objects (S=1: any loss is total).
  StatusOr<DegradedAnswer> AnswerDegraded(
      ObjectHandle handle, const std::vector<VertexSet>& sides);

  // Pings every worker. Revives responders (Suspect/Dead → Healthy),
  // demotes non-responders (Suspect → Dead), and records instance tokens.
  // Always OK; per-worker results land in worker_health().
  Status HealthCheck();

  // Repairs every stale replica (worker respawned since registration, or
  // registration never succeeded) on currently-healthy workers. A replica
  // that once held a remote id is first offered a kReattach — a store-
  // backed worker that warm-loaded the identical object (id + vertex count
  // + envelope checksum) revives it without the graph crossing the wire;
  // anything else falls back to a full re-register. Returns the number of
  // replicas repaired (either way).
  StatusOr<int64_t> Repair();

  // Replicas revived via the reattach fast path over this client's
  // lifetime (observability for warm-restart tests and bench_store).
  int64_t reattached_replicas() const { return reattached_replicas_; }

 private:
  struct Replica {
    int worker = 0;
    int64_t remote_id = -1;     // worker-local object id
    uint64_t token = 0;         // worker token at registration
    bool registered = false;
  };
  struct ShardState {
    DirectedGraph graph;        // retained for repair
    std::vector<Replica> replicas;
    // Lazily computed envelope checksum of `graph` (kReattach identity).
    mutable uint32_t graph_checksum = 0;
    mutable bool checksum_computed = false;
  };
  struct ObjectState {
    int num_vertices = 0;
    std::vector<ShardState> shards;  // size 1 for replicated objects
  };
  struct WorkerState {
    Endpoint endpoint;
    Connection connection;
    WorkerHealth health = WorkerHealth::kHealthy;
    uint64_t token = 0;  // last observed instance token (0 = never seen)
    Rng jitter_rng;
    explicit WorkerState(Endpoint e, uint64_t jitter_seed)
        : endpoint(std::move(e)), jitter_rng(jitter_seed) {}
  };

  // One request/response exchange with a worker, reconnecting (with
  // backoff) if needed. Transport failures close the connection and mark
  // the worker Suspect. Token changes are recorded as they are observed.
  // Dead workers are refused unless even_if_dead (the health-check probe).
  StatusOr<RpcResponse> Call(int worker, const RpcRequest& request,
                             bool even_if_dead = false);

  // True if `replica` can no longer be trusted: never registered, or the
  // worker has been seen with a newer token since.
  bool IsStale(const Replica& replica, const WorkerState& worker) const;

  Status RegisterShardOn(ObjectState& object, ShardState& shard,
                         Replica& replica);

  // The fast half of Repair: ask the worker to revive `replica.remote_id`
  // from its warm store instead of re-sending the graph. Any failure means
  // "fall back to RegisterShardOn", never "give up".
  Status ReattachShardOn(ObjectState& object, ShardState& shard,
                         Replica& replica);

  // Queries one shard on its first answering replica (marking replicas
  // stale as failures reveal them). OK with values on success;
  // kUnavailable when every replica failed over; other codes per the
  // failover policy.
  StatusOr<std::vector<double>> QueryShard(const ObjectState& object,
                                           ShardState& shard,
                                           const std::vector<VertexSet>& sides);

  ClusterClientOptions options_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<ObjectState> objects_;
  int64_t reattached_replicas_ = 0;
};

}  // namespace dcs

#endif  // DCS_SERVE_CLUSTER_CLIENT_H_
