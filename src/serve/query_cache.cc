#include "serve/query_cache.h"

#include <algorithm>

#include "util/check.h"
#include "util/metrics.h"

namespace dcs {
namespace {

size_t RoundUpToPowerOfTwo(int value) {
  size_t power = 1;
  while (power < static_cast<size_t>(std::max(1, value))) power <<= 1;
  return power;
}

}  // namespace

uint64_t HashSide(const VertexSet& side) {
  uint64_t hash = 0;
  for (size_t v = 0; v < side.size(); ++v) {
    if (side[v]) hash ^= HashVertex(static_cast<VertexId>(v));
  }
  return hash;
}

PackedSide PackSide(const VertexSet& side) {
  PackedSide packed;
  PackSideInto(side, packed);
  return packed;
}

uint64_t PackSideInto(const VertexSet& side, PackedSide& packed) {
  packed.words.assign((side.size() + 63) / 64, 0);
  uint64_t hash = 0;
  for (size_t v = 0; v < side.size(); ++v) {
    if (side[v]) {
      packed.words[v / 64] |= uint64_t{1} << (v % 64);
      hash ^= HashVertex(static_cast<VertexId>(v));
    }
  }
  return hash;
}

CutQueryCache::CutQueryCache(const Options& options) {
  DCS_CHECK_GE(options.capacity, 1);
  const size_t num_stripes = RoundUpToPowerOfTwo(options.num_stripes);
  stripe_mask_ = num_stripes - 1;
  per_stripe_capacity_ =
      std::max<int64_t>(1, options.capacity / static_cast<int64_t>(num_stripes));
  stripes_.reserve(num_stripes);
  for (size_t s = 0; s < num_stripes; ++s) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

std::optional<double> CutQueryCache::Lookup(int64_t object,
                                            uint64_t side_hash,
                                            const PackedSide& side) {
  const uint64_t key_hash = CacheKeyHash(object, side_hash);
  Stripe& stripe = StripeFor(key_hash);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto [it, end] = stripe.index.equal_range(key_hash);
  for (; it != end; ++it) {
    const LruList::iterator entry = it->second;
    if (entry->object == object && entry->side == side) {
      stripe.lru.splice(stripe.lru.begin(), stripe.lru, entry);
      DCS_METRIC_INC("serve.cache.hits");
      return entry->value;
    }
  }
  DCS_METRIC_INC("serve.cache.misses");
  return std::nullopt;
}

void CutQueryCache::Insert(int64_t object, uint64_t side_hash,
                           const PackedSide& side, double value) {
  const uint64_t key_hash = CacheKeyHash(object, side_hash);
  Stripe& stripe = StripeFor(key_hash);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto [it, end] = stripe.index.equal_range(key_hash);
  for (; it != end; ++it) {
    const LruList::iterator entry = it->second;
    if (entry->object == object && entry->side == side) {
      // A racing shard already stored this side; cacheable objects are
      // pure, so the values agree — just refresh recency.
      stripe.lru.splice(stripe.lru.begin(), stripe.lru, entry);
      return;
    }
  }
  stripe.lru.push_front(Entry{object, key_hash, side, value});
  stripe.index.emplace(key_hash, stripe.lru.begin());
  while (static_cast<int64_t>(stripe.lru.size()) > per_stripe_capacity_) {
    const LruList::iterator victim = std::prev(stripe.lru.end());
    auto [vit, vend] = stripe.index.equal_range(victim->key_hash);
    for (; vit != vend; ++vit) {
      if (vit->second == victim) {
        stripe.index.erase(vit);
        break;
      }
    }
    stripe.lru.pop_back();
    DCS_METRIC_INC("serve.cache.evictions");
  }
}

int64_t CutQueryCache::size() const {
  int64_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    total += static_cast<int64_t>(stripe->lru.size());
  }
  return total;
}

}  // namespace dcs
