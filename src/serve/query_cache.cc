#include "serve/query_cache.h"

#include <algorithm>

#include "util/check.h"
#include "util/metrics.h"

namespace dcs {
namespace {

size_t RoundUpToPowerOfTwo(int value) {
  size_t power = 1;
  while (power < static_cast<size_t>(std::max(1, value))) power <<= 1;
  return power;
}

}  // namespace

uint64_t HashSide(const VertexSet& side) {
  uint64_t hash = 0;
  for (size_t v = 0; v < side.size(); ++v) {
    if (side[v]) hash ^= HashVertex(static_cast<VertexId>(v));
  }
  return hash;
}

PackedSide PackSide(const VertexSet& side) {
  PackedSide packed;
  PackSideInto(side, packed);
  return packed;
}

uint64_t PackSideInto(const VertexSet& side, PackedSide& packed) {
  packed.words.assign((side.size() + 63) / 64, 0);
  uint64_t hash = 0;
  for (size_t v = 0; v < side.size(); ++v) {
    if (side[v]) {
      packed.words[v / 64] |= uint64_t{1} << (v % 64);
      hash ^= HashVertex(static_cast<VertexId>(v));
    }
  }
  return hash;
}

uint64_t HashPackedSide(const PackedSide& side) {
  uint64_t hash = 0;
  for (size_t w = 0; w < side.words.size(); ++w) {
    uint64_t word = side.words[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      hash ^= HashVertex(static_cast<VertexId>(w * 64 + bit));
      word &= word - 1;
    }
  }
  return hash;
}

CutQueryCache::CutQueryCache(const Options& options) {
  DCS_CHECK_GE(options.capacity, 1);
  const size_t num_stripes = RoundUpToPowerOfTwo(options.num_stripes);
  stripe_mask_ = num_stripes - 1;
  per_stripe_capacity_ =
      std::max<int64_t>(1, options.capacity / static_cast<int64_t>(num_stripes));
  stripes_.reserve(num_stripes);
  for (size_t s = 0; s < num_stripes; ++s) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

std::optional<double> CutQueryCache::Lookup(int64_t object,
                                            uint64_t side_hash,
                                            const PackedSide& side) {
  const uint64_t key_hash = CacheKeyHash(object, side_hash);
  Stripe& stripe = StripeFor(key_hash);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto [it, end] = stripe.index.equal_range(key_hash);
  for (; it != end; ++it) {
    const LruList::iterator entry = it->second;
    if (entry->object == object && entry->side == side) {
      stripe.lru.splice(stripe.lru.begin(), stripe.lru, entry);
      DCS_METRIC_INC("serve.cache.hits");
      return entry->value;
    }
  }
  DCS_METRIC_INC("serve.cache.misses");
  return std::nullopt;
}

void CutQueryCache::Insert(int64_t object, uint64_t side_hash,
                           const PackedSide& side, double value) {
  const uint64_t key_hash = CacheKeyHash(object, side_hash);
  Stripe& stripe = StripeFor(key_hash);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto [it, end] = stripe.index.equal_range(key_hash);
  for (; it != end; ++it) {
    const LruList::iterator entry = it->second;
    if (entry->object == object && entry->side == side) {
      // A racing shard already stored this side; cacheable objects are
      // pure, so the values agree — just refresh recency.
      stripe.lru.splice(stripe.lru.begin(), stripe.lru, entry);
      return;
    }
  }
  stripe.lru.push_front(Entry{object, key_hash, side, value});
  stripe.index.emplace(key_hash, stripe.lru.begin());
  while (static_cast<int64_t>(stripe.lru.size()) > per_stripe_capacity_) {
    const LruList::iterator victim = std::prev(stripe.lru.end());
    auto [vit, vend] = stripe.index.equal_range(victim->key_hash);
    for (; vit != vend; ++vit) {
      if (vit->second == victim) {
        stripe.index.erase(vit);
        break;
      }
    }
    stripe.lru.pop_back();
    DCS_METRIC_INC("serve.cache.evictions");
  }
}

std::vector<CutQueryCache::SnapshotEntry> CutQueryCache::SnapshotHottest(
    int64_t max_entries) const {
  // Copy each stripe's LRU order under its lock, then interleave: taking
  // one entry per stripe per round means a truncated snapshot still keeps
  // the hottest entries of *every* stripe rather than draining stripe 0.
  std::vector<std::vector<SnapshotEntry>> per_stripe(stripes_.size());
  for (size_t s = 0; s < stripes_.size(); ++s) {
    const auto& stripe = *stripes_[s];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    per_stripe[s].reserve(stripe.lru.size());
    for (const Entry& entry : stripe.lru) {
      per_stripe[s].push_back(
          SnapshotEntry{entry.object, entry.side, entry.value});
    }
  }
  std::vector<SnapshotEntry> merged;
  for (size_t round = 0;
       static_cast<int64_t>(merged.size()) < max_entries;
       ++round) {
    bool any = false;
    for (auto& stripe_entries : per_stripe) {
      if (round >= stripe_entries.size()) continue;
      any = true;
      merged.push_back(std::move(stripe_entries[round]));
      if (static_cast<int64_t>(merged.size()) >= max_entries) break;
    }
    if (!any) break;
  }
  return merged;
}

void CutQueryCache::Restore(const std::vector<SnapshotEntry>& entries) {
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    Insert(it->object, HashPackedSide(it->side), it->side, it->value);
  }
}

int64_t CutQueryCache::size() const {
  int64_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    total += static_cast<int64_t>(stripe->lru.size());
  }
  return total;
}

}  // namespace dcs
