// Striped LRU memoization cache for cut-query answers.
//
// The serving layer (cut_query_service.h) answers repeated queries for the
// same (object, cut side) from this cache instead of re-running the O(m)
// cut evaluation. Keys are canonical: a VertexSet stores membership as
// "any nonzero byte", so two byte-wise different vectors can denote the
// same side — the cache therefore keys on (object id, normalized bit-packed
// side) and hashes the side as the XOR of per-member vertex hashes. The
// XOR form is what makes cached *sessions* cheap: flipping vertex v updates
// the side hash with one XOR instead of a rescan.
//
// Hash collisions are survivable, not assumed away: every probe compares
// the stored packed side for equality, so a hit always returns the value
// that was inserted for exactly that side (the serving layer's bit-identity
// guarantee rests on this).
//
// Concurrency: entries are sharded into power-of-two stripes by key hash;
// each stripe is an independently locked LRU list + hash index, so batch
// shards running on different threads rarely contend on one mutex.
// Capacity is enforced per stripe (capacity/stripes each), which bounds
// total size while keeping eviction decisions lock-local.
//
// Metrics (DESIGN.md §8/§10): serve.cache.hits, serve.cache.misses,
// serve.cache.evictions.

#ifndef DCS_SERVE_QUERY_CACHE_H_
#define DCS_SERVE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace dcs {

// A cut side in canonical form: one bit per vertex (membership normalized
// to 0/1), packed 64 per word. Equality is exact side equality.
struct PackedSide {
  std::vector<uint64_t> words;

  friend bool operator==(const PackedSide& a, const PackedSide& b) {
    return a.words == b.words;
  }
};

// splitmix64-finalizer hash of one vertex id. Each vertex gets an
// independent-looking 64-bit pattern, so the XOR over a set's members is a
// high-quality set hash that updates incrementally under membership flips.
inline uint64_t HashVertex(VertexId v) {
  uint64_t z = static_cast<uint64_t>(v) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Canonical side hash: XOR of HashVertex over members. Independent of the
// VertexSet's byte values (only membership matters) and of vertex order.
uint64_t HashSide(const VertexSet& side);

// Normalizes a VertexSet into its packed canonical form.
PackedSide PackSide(const VertexSet& side);

// Single-pass pack + hash: fills `packed` with the canonical form of `side`
// (reusing its existing word storage when the size matches) and returns
// HashSide(side). The serving fast path calls this once per query into
// per-shard scratch instead of allocating a fresh PackedSide and walking
// the side twice.
uint64_t PackSideInto(const VertexSet& side, PackedSide& packed);

// HashSide over a side already in packed canonical form (XOR of HashVertex
// over the set bits). Agrees with HashSide/PackSideInto for the side the
// words pack — the cache-snapshot restore path recomputes hashes with this.
uint64_t HashPackedSide(const PackedSide& side);

// Combines an object id into a side hash to form the cache key hash. The
// finalizer decorrelates objects: without it, the same side under two
// objects would land in the same stripe and bucket, making cross-object
// workloads contend systematically.
inline uint64_t CacheKeyHash(int64_t object, uint64_t side_hash) {
  uint64_t z = side_hash +
               0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(object) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return z ^ (z >> 31);
}

// The striped LRU cache. Thread-safe; all methods may be called
// concurrently.
class CutQueryCache {
 public:
  struct Options {
    // Total entry budget across all stripes (enforced as capacity/stripes
    // per stripe, at least 1 each).
    int64_t capacity = 1 << 16;
    // Number of lock stripes; rounded up to a power of two, at least 1.
    int num_stripes = 8;
  };

  explicit CutQueryCache(const Options& options);

  CutQueryCache(const CutQueryCache&) = delete;
  CutQueryCache& operator=(const CutQueryCache&) = delete;

  // Returns the cached value for (object, side) and refreshes its LRU
  // position, or nullopt. `side_hash` must be HashSide of the side that
  // `side` packs (callers maintain it incrementally).
  std::optional<double> Lookup(int64_t object, uint64_t side_hash,
                               const PackedSide& side);

  // Inserts (or refreshes) the value for (object, side), evicting the
  // stripe's least-recently-used entries when over budget. A concurrent
  // duplicate insert refreshes recency instead of double-storing.
  void Insert(int64_t object, uint64_t side_hash, const PackedSide& side,
              double value);

  // Current number of entries (sums stripes; a racing snapshot).
  int64_t size() const;

  // One cache entry in portable form, for persisting across restarts
  // (store/cache_snapshot.h). Hashes are recomputed on restore, so a
  // snapshot is valid even if the hash function changes between builds.
  struct SnapshotEntry {
    int64_t object = 0;
    PackedSide side;
    double value = 0;
  };

  // Up to `max_entries` entries, hottest first (per-stripe MRU order,
  // round-robin merged across stripes so every stripe's hottest entries
  // survive a truncated snapshot).
  std::vector<SnapshotEntry> SnapshotHottest(int64_t max_entries) const;

  // Re-inserts snapshot entries (recomputing hashes). Iterates in reverse
  // so the snapshot's hottest entry ends up most recently used.
  void Restore(const std::vector<SnapshotEntry>& entries);

 private:
  struct Entry {
    int64_t object = 0;
    uint64_t key_hash = 0;
    PackedSide side;
    double value = 0;
  };
  // front = most recently used.
  using LruList = std::list<Entry>;

  // alignas(64): stripes are the contention points of the whole serving
  // layer; starting each on its own cache line keeps one stripe's mutex
  // traffic from invalidating its neighbors' lines (the stripes are
  // individually heap-allocated, but allocators routinely pack small
  // objects 16-byte apart).
  struct alignas(64) Stripe {
    mutable std::mutex mutex;
    LruList lru;
    std::unordered_multimap<uint64_t, LruList::iterator> index;
  };

  Stripe& StripeFor(uint64_t key_hash) {
    return *stripes_[static_cast<size_t>(key_hash) & stripe_mask_];
  }

  int64_t per_stripe_capacity_;
  size_t stripe_mask_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace dcs

#endif  // DCS_SERVE_QUERY_CACHE_H_
