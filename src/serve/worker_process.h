// Spawning, killing, and reaping real dcs_server worker processes — the
// machinery behind the process-kill chaos soak (DESIGN.md §14).
//
// SpawnWorker fork/execs the dcs_server binary serving one endpoint;
// WaitForWorkerReady polls with transport pings until the worker answers
// (or a deadline passes). Kill delivers a signal (SIGKILL for chaos,
// SIGTERM for drain) and Reap waitpid()s the corpse so the soak never
// accumulates zombies. All helpers return Status — a vanished child or a
// failed exec is data, not an abort.

#ifndef DCS_SERVE_WORKER_PROCESS_H_
#define DCS_SERVE_WORKER_PROCESS_H_

#include <sys/types.h>

#include <string>
#include <vector>

#include "serve/cluster.h"
#include "serve/transport.h"
#include "util/status.h"

namespace dcs {

struct WorkerProcess {
  pid_t pid = -1;
  Endpoint endpoint;
  bool alive() const { return pid > 0; }
};

// fork/execs `server_binary --listen <endpoint> --shards N ...`. The child
// inherits nothing interesting (sockets are CLOEXEC). Returns immediately;
// use WaitForWorkerReady before sending requests.
StatusOr<WorkerProcess> SpawnWorker(const std::string& server_binary,
                                    const Endpoint& endpoint,
                                    const ClusterWorkerOptions& options);

// Pings the endpoint until it answers (fresh connection per attempt).
// kDeadlineExceeded if the worker never comes up within timeout_ms.
Status WaitForWorkerReady(const Endpoint& endpoint, int timeout_ms);

// Sends `signo` (SIGKILL / SIGTERM). kNotFound if the process is already
// reaped or was never spawned.
Status KillWorker(const WorkerProcess& worker, int signo);

// waitpid()s the child. blocking=false returns kUnavailable if the child
// is still running; on success (either mode) marks the handle reaped
// (pid = -1). Reaping twice is kNotFound.
Status ReapWorker(WorkerProcess& worker, bool blocking);

// True while the child exists and has not been reaped (WNOHANG probe;
// does not reap).
bool WorkerRunning(const WorkerProcess& worker);

}  // namespace dcs

#endif  // DCS_SERVE_WORKER_PROCESS_H_
