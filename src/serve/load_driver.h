// The chaos-soak load driver (DESIGN.md §14): spawns real dcs_server
// worker processes, drives mixed query traffic from concurrent client
// threads through the replication/failover client, SIGKILLs random
// workers mid-batch at a configured rate (respawning and repairing them),
// and checks every completed answer bit-for-bit against a single-process
// CutQueryService running the identical code path.
//
// Shared by the `dcs cluster` CLI subcommand (chaos gate: wrong_bits must
// be 0) and bench_serve's cluster section (p50/p99/QPS at kill rates
// 0/5/20% for BENCH_serve.json).
//
// The bit-identity invariant holds because registration is *replicated*:
// each worker holds the whole graph, deserialization preserves edge order
// and raw IEEE weights, and every replica answers through the same
// ExactCutOracle traversal — so it does not matter which replica survives
// to answer. Losses must surface only as kUnavailable (all replicas of an
// object gone / worker draining) or kResourceExhausted (admission
// control); any other outcome of a completed call that differs from the
// oracle by a single bit is counted in wrong_bits and fails the soak.

#ifndef DCS_SERVE_LOAD_DRIVER_H_
#define DCS_SERVE_LOAD_DRIVER_H_

#include <cstdint>
#include <string>

#include "serve/cluster.h"
#include "util/status.h"

namespace dcs {

struct ClusterLoadOptions {
  std::string server_binary;  // path to dcs_server
  std::string socket_dir;     // existing directory for unix sockets
  int num_workers = 4;
  int replication = 2;
  int num_client_threads = 2;
  int batches_per_thread = 40;
  int batch_size = 8;
  // Chaos: each kill_interval_ms tick SIGKILLs one random worker with
  // this probability; the corpse is reaped, respawned after
  // respawn_delay_ms, and clients repair onto the fresh incarnation.
  double kill_rate = 0;
  int kill_interval_ms = 25;
  int respawn_delay_ms = 10;
  // The served graph (deterministic multigraph from `seed`).
  int num_vertices = 48;
  int num_edges = 320;
  uint64_t seed = 1;
  ClusterWorkerOptions worker;
  // Non-empty: worker w runs with --store-dir <store_root>/worker<w>, so a
  // SIGKILLed worker's respawn warm-loads its registrations from disk and
  // clients reattach instead of re-sending graphs. (worker.store_dir
  // itself is ignored here — every worker needs its own directory.)
  std::string store_root;

  void Check() const;
};

struct ClusterLoadReport {
  int64_t batches_ok = 0;
  int64_t batches_unavailable = 0;
  int64_t batches_resource_exhausted = 0;
  int64_t batches_other_error = 0;
  // Completed answers whose doubles differed from the single-process
  // oracle. The soak invariant is wrong_bits == 0 at every kill rate.
  int64_t wrong_bits = 0;
  bool answers_bit_identical() const { return wrong_bits == 0; }
  int64_t kills = 0;
  int64_t respawns = 0;
  // Replicas repaired via the store-backed reattach fast path (0 without
  // store_root).
  int64_t reattaches = 0;
  double elapsed_seconds = 0;
  double qps = 0;  // completed (OK) queries per second
  int64_t latency_p50_us = 0;  // per-batch round-trip, completed calls
  int64_t latency_p99_us = 0;
};

// Runs the full soak: spawn, load, kill/respawn/repair, drain, reap.
// Worker processes never outlive the call (SIGTERM then SIGKILL).
StatusOr<ClusterLoadReport> RunClusterLoad(const ClusterLoadOptions& options);

}  // namespace dcs

#endif  // DCS_SERVE_LOAD_DRIVER_H_
