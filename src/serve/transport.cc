#include "serve/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "comm/channel.h"
#include "util/bitio.h"
#include "util/metrics.h"

namespace dcs {
namespace {

// Bits of Message payload per channel frame. 4 KiB payloads keep the
// framing overhead (< 64 bytes of header + length prefix) negligible while
// bounding the receiver's per-frame allocation.
constexpr int64_t kChunkPayloadBits = int64_t{1} << 15;

// Hard cap on a length-prefixed frame: payload bytes plus generous header
// slack. Enforced before any allocation, so a corrupted length prefix can
// never drive a huge reserve.
constexpr uint32_t kMaxFrameBytes =
    static_cast<uint32_t>(kChunkPayloadBits / 8 + 64);

// Hard cap on a reassembled Message (1 GiB). RPC bodies (graphs, query
// batches, double vectors) are far below this; anything larger is a
// corrupted or hostile header.
constexpr int64_t kMaxTransportMessageBits = int64_t{1} << 33;

std::string ErrnoString(const char* op) {
  return std::string(op) + " failed: " + std::strerror(errno);
}

// Wall-clock budget for one transport call. poll() re-arms with the
// remaining budget after every EINTR or partial transfer, so a slow
// trickle cannot extend the deadline.
class DeadlineTimer {
 public:
  explicit DeadlineTimer(int timeout_ms)
      : end_(std::chrono::steady_clock::now() +
             std::chrono::milliseconds(timeout_ms)) {}

  int remaining_ms() const {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        end_ - std::chrono::steady_clock::now());
    return static_cast<int>(std::max<int64_t>(0, left.count()));
  }
  bool expired() const { return remaining_ms() <= 0; }

 private:
  std::chrono::steady_clock::time_point end_;
};

// Waits for `events` on fd within the deadline. OK when ready;
// kDeadlineExceeded when the budget ran out first.
Status PollFor(int fd, short events, const DeadlineTimer& deadline,
               const char* what) {
  while (true) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int remaining = deadline.remaining_ms();
    if (remaining <= 0) {
      return DeadlineExceededError(std::string("transport deadline: ") +
                                   what + " timed out");
    }
    const int ready = ::poll(&pfd, 1, remaining);
    if (ready > 0) return OkStatus();  // readable/ERR/HUP: let recv report
    if (ready == 0) {
      return DeadlineExceededError(std::string("transport deadline: ") +
                                   what + " timed out");
    }
    if (errno == EINTR) continue;
    return UnavailableError(ErrnoString("poll"));
  }
}

// Reads exactly `count` bytes. `at_message_start` distinguishes a clean
// close between messages (a normal client departure) from a mid-message
// EOF; both are kUnavailable but the messages differ.
Status ReadFull(int fd, uint8_t* buf, size_t count,
                const DeadlineTimer& deadline, bool at_message_start) {
  size_t done = 0;
  while (done < count) {
    const ssize_t got = ::recv(fd, buf + done, count - done, 0);
    if (got > 0) {
      done += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) {
      return UnavailableError(at_message_start && done == 0
                                  ? "connection closed"
                                  : "connection closed mid-message");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      DCS_RETURN_IF_ERROR(PollFor(fd, POLLIN, deadline, "read"));
      continue;
    }
    return UnavailableError(ErrnoString("recv"));
  }
  return OkStatus();
}

// Writes exactly `count` bytes. MSG_NOSIGNAL: a dead peer is a Status
// (kUnavailable via EPIPE/ECONNRESET), never a SIGPIPE.
Status WriteFull(int fd, const uint8_t* buf, size_t count,
                 const DeadlineTimer& deadline) {
  size_t done = 0;
  while (done < count) {
    const ssize_t sent = ::send(fd, buf + done, count - done, MSG_NOSIGNAL);
    if (sent > 0) {
      done += static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      DCS_RETURN_IF_ERROR(PollFor(fd, POLLOUT, deadline, "write"));
      continue;
    }
    return UnavailableError(ErrnoString("send"));
  }
  return OkStatus();
}

Status ResolveIpv4(const std::string& host, struct in_addr* out) {
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), out) != 1) {
    return InvalidArgumentError("tcp host must be numeric IPv4 or "
                                "\"localhost\", got \"" +
                                host + "\"");
  }
  return OkStatus();
}

// Builds the sockaddr for an endpoint. Returns the address length.
Status FillSockaddr(const Endpoint& endpoint, struct sockaddr_storage* out,
                    socklen_t* out_len) {
  std::memset(out, 0, sizeof(*out));
  if (endpoint.is_unix) {
    auto* sun = reinterpret_cast<struct sockaddr_un*>(out);
    sun->sun_family = AF_UNIX;
    if (endpoint.path.size() + 1 > sizeof(sun->sun_path)) {
      return InvalidArgumentError("unix socket path too long: " +
                                  endpoint.path);
    }
    std::memcpy(sun->sun_path, endpoint.path.c_str(),
                endpoint.path.size() + 1);
    *out_len = static_cast<socklen_t>(offsetof(struct sockaddr_un, sun_path) +
                                      endpoint.path.size() + 1);
    return OkStatus();
  }
  auto* sin = reinterpret_cast<struct sockaddr_in*>(out);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(static_cast<uint16_t>(endpoint.port));
  DCS_RETURN_IF_ERROR(ResolveIpv4(endpoint.host, &sin->sin_addr));
  *out_len = sizeof(struct sockaddr_in);
  return OkStatus();
}

StatusOr<int> OpenSocket(const Endpoint& endpoint) {
  const int fd = ::socket(endpoint.is_unix ? AF_UNIX : AF_INET,
                          SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return UnavailableError(ErrnoString("socket"));
  return fd;
}

}  // namespace

std::string Endpoint::ToSpec() const {
  if (is_unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

StatusOr<Endpoint> ParseEndpoint(const std::string& spec) {
  Endpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.is_unix = true;
    endpoint.path = spec.substr(5);
    if (endpoint.path.empty()) {
      return InvalidArgumentError("unix endpoint has an empty path: " + spec);
    }
    struct sockaddr_un probe;
    if (endpoint.path.size() + 1 > sizeof(probe.sun_path)) {
      return InvalidArgumentError("unix socket path too long: " + spec);
    }
    return endpoint;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      return InvalidArgumentError("tcp endpoint must be tcp:HOST:PORT: " +
                                  spec);
    }
    endpoint.is_unix = false;
    endpoint.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    int port = 0;
    for (char c : port_text) {
      if (c < '0' || c > '9') {
        return InvalidArgumentError("tcp port is not a number: " + spec);
      }
      port = port * 10 + (c - '0');
      if (port > 65535) {
        return InvalidArgumentError("tcp port out of range: " + spec);
      }
    }
    endpoint.port = port;  // 0 is allowed: bind an ephemeral port
    struct in_addr scratch;
    DCS_RETURN_IF_ERROR(ResolveIpv4(endpoint.host, &scratch));
    return endpoint;
  }
  return InvalidArgumentError(
      "endpoint must start with unix: or tcp:, got \"" + spec + "\"");
}

void TransportOptions::Check() const {
  DCS_CHECK_GE(connect_timeout_ms, 1);
  DCS_CHECK_GE(io_timeout_ms, 1);
  DCS_CHECK_GE(reconnect_base_ms, 1);
  DCS_CHECK_GE(reconnect_cap_ms, reconnect_base_ms);
  DCS_CHECK_GE(reconnect_jitter, 0.0);
  DCS_CHECK_LE(reconnect_jitter, 1.0);
  DCS_CHECK_GE(max_connect_attempts, 1);
}

void Connection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Connection::Send(const Message& message, int timeout_ms) {
  if (!valid()) return FailedPreconditionError("send on a closed connection");
  DCS_CHECK_EQ(static_cast<int64_t>(message.bytes.size()),
               (message.bit_count + 7) / 8);
  DCS_CHECK_LE(message.bit_count, kMaxTransportMessageBits);
  const DeadlineTimer deadline(timeout_ms);
  const int64_t total_chunks = std::max<int64_t>(
      1, (message.bit_count + kChunkPayloadBits - 1) / kChunkPayloadBits);
  for (int64_t seq = 0; seq < total_chunks; ++seq) {
    const int64_t begin = seq * kChunkPayloadBits;
    const int64_t bits =
        std::min<int64_t>(kChunkPayloadBits, message.bit_count - begin);
    // Repack this chunk's bits (the chunk boundary is bit-aligned, the
    // byte buffer is not).
    BitWriter payload;
    for (int64_t b = 0; b < bits; ++b) {
      const int64_t bit = begin + b;
      payload.WriteBit(
          (message.bytes[static_cast<size_t>(bit >> 3)] >> (bit & 7)) & 1);
    }
    BitWriter framed;
    WriteChannelFrame(seq, total_chunks, message.bit_count, payload.bytes(),
                      payload.bit_count(), framed);
    const auto& frame_bytes = framed.bytes();
    const uint32_t frame_len = static_cast<uint32_t>(frame_bytes.size());
    DCS_CHECK_LE(frame_len, kMaxFrameBytes);
    uint8_t prefix[4] = {static_cast<uint8_t>(frame_len & 0xFF),
                         static_cast<uint8_t>((frame_len >> 8) & 0xFF),
                         static_cast<uint8_t>((frame_len >> 16) & 0xFF),
                         static_cast<uint8_t>((frame_len >> 24) & 0xFF)};
    DCS_RETURN_IF_ERROR(WriteFull(fd_, prefix, sizeof(prefix), deadline));
    DCS_RETURN_IF_ERROR(
        WriteFull(fd_, frame_bytes.data(), frame_bytes.size(), deadline));
    DCS_METRIC_ADD("serve.transport.bytes_sent",
                   static_cast<int64_t>(sizeof(prefix) + frame_bytes.size()));
  }
  DCS_METRIC_INC("serve.transport.messages_sent");
  return OkStatus();
}

StatusOr<Message> Connection::Receive(int timeout_ms) {
  if (!valid()) {
    return FailedPreconditionError("receive on a closed connection");
  }
  const DeadlineTimer deadline(timeout_ms);
  BitWriter out;
  int64_t total_chunks = -1;
  int64_t message_bits = -1;
  for (int64_t next_seq = 0; total_chunks < 0 || next_seq < total_chunks;
       ++next_seq) {
    uint8_t prefix[4];
    DCS_RETURN_IF_ERROR(ReadFull(fd_, prefix, sizeof(prefix), deadline,
                                 /*at_message_start=*/next_seq == 0));
    const uint32_t frame_len =
        static_cast<uint32_t>(prefix[0]) |
        (static_cast<uint32_t>(prefix[1]) << 8) |
        (static_cast<uint32_t>(prefix[2]) << 16) |
        (static_cast<uint32_t>(prefix[3]) << 24);
    if (frame_len == 0 || frame_len > kMaxFrameBytes) {
      DCS_METRIC_INC("serve.transport.frames_rejected");
      return DataLossError("transport frame length " +
                           std::to_string(frame_len) + " out of range");
    }
    std::vector<uint8_t> frame_bytes(frame_len);
    DCS_RETURN_IF_ERROR(ReadFull(fd_, frame_bytes.data(), frame_len, deadline,
                                 /*at_message_start=*/false));
    DCS_METRIC_ADD("serve.transport.bytes_received",
                   static_cast<int64_t>(sizeof(prefix) + frame_len));
    BitReader reader(frame_bytes);
    auto parsed = TryParseChannelFrame(reader);
    if (!parsed.ok()) {
      DCS_METRIC_INC("serve.transport.frames_rejected");
      return parsed.status();
    }
    // Strict geometry: a stream socket delivers in order, so the frames of
    // one message must be exactly seq 0..total-1 with the sender's chunk
    // math. Any deviation is corruption, not reordering.
    if (next_seq == 0) {
      if (parsed->message_bits > kMaxTransportMessageBits) {
        return DataLossError("transport message declares " +
                             std::to_string(parsed->message_bits) +
                             " bits, over the 2^33 cap");
      }
      const int64_t expected_chunks = std::max<int64_t>(
          1, (parsed->message_bits + kChunkPayloadBits - 1) /
                 kChunkPayloadBits);
      if (parsed->total_chunks != expected_chunks) {
        return DataLossError("transport frame declares " +
                             std::to_string(parsed->total_chunks) +
                             " chunks for " +
                             std::to_string(parsed->message_bits) +
                             " message bits (expected " +
                             std::to_string(expected_chunks) + ")");
      }
      total_chunks = parsed->total_chunks;
      message_bits = parsed->message_bits;
    } else if (parsed->total_chunks != total_chunks ||
               parsed->message_bits != message_bits) {
      return DataLossError("transport frame geometry changed mid-message");
    }
    if (parsed->seq != next_seq) {
      return DataLossError("transport frame out of sequence: got " +
                           std::to_string(parsed->seq) + ", expected " +
                           std::to_string(next_seq));
    }
    const int64_t expected_payload_bits =
        next_seq + 1 < total_chunks
            ? kChunkPayloadBits
            : message_bits - next_seq * kChunkPayloadBits;
    if (parsed->payload_bits != expected_payload_bits) {
      return DataLossError("transport frame payload size mismatch");
    }
    // The frame rides in whole bytes; the declared bit length must leave
    // fewer than 8 trailing pad bits, all zero — otherwise a flip in the
    // padding (outside the checksummed payload) would pass silently.
    if (reader.RemainingBits() >= 8) {
      return DataLossError("transport frame has trailing bytes");
    }
    while (!reader.AtEnd()) {
      DCS_ASSIGN_OR_RETURN(const int pad_bit, reader.TryReadBit());
      if (pad_bit != 0) {
        return DataLossError("transport frame has nonzero padding");
      }
    }
    out.AppendBits(parsed->payload, parsed->payload_bits);
  }
  if (out.bit_count() != message_bits) {
    return DataLossError("transport message reassembled to the wrong size");
  }
  DCS_METRIC_INC("serve.transport.messages_received");
  return Message{out.bytes(), out.bit_count()};
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), endpoint_(std::move(other.endpoint_)) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    endpoint_ = std::move(other.endpoint_);
    other.fd_ = -1;
  }
  return *this;
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (endpoint_.is_unix) ::unlink(endpoint_.path.c_str());
  }
}

StatusOr<Listener> Listener::Listen(const Endpoint& endpoint, int backlog) {
  DCS_CHECK_GE(backlog, 1);
  DCS_ASSIGN_OR_RETURN(const int fd, OpenSocket(endpoint));
  Listener listener;
  listener.fd_ = fd;
  listener.endpoint_ = endpoint;
  if (endpoint.is_unix) {
    // A stale socket file from a SIGKILLed predecessor would fail bind
    // with EADDRINUSE; replacing it is the restart path.
    ::unlink(endpoint.path.c_str());
  } else {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  struct sockaddr_storage addr;
  socklen_t addr_len = 0;
  DCS_RETURN_IF_ERROR(FillSockaddr(endpoint, &addr, &addr_len));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), addr_len) != 0) {
    return UnavailableError(ErrnoString("bind") + " for " +
                            endpoint.ToSpec());
  }
  if (::listen(fd, backlog) != 0) {
    return UnavailableError(ErrnoString("listen"));
  }
  if (!endpoint.is_unix && endpoint.port == 0) {
    struct sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                      &bound_len) != 0) {
      return UnavailableError(ErrnoString("getsockname"));
    }
    listener.endpoint_.port = ntohs(bound.sin_port);
  }
  return listener;
}

StatusOr<Connection> Listener::Accept(int timeout_ms) {
  if (!valid()) return UnavailableError("accept on a closed listener");
  const DeadlineTimer deadline(timeout_ms);
  while (true) {
    DCS_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline, "accept"));
    const int client =
        ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (client >= 0) {
      DCS_METRIC_INC("serve.transport.accepts");
      return Connection(client);
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      continue;  // raced a dying client; re-arm within the same deadline
    }
    return UnavailableError(ErrnoString("accept"));
  }
}

StatusOr<Connection> Connect(const Endpoint& endpoint, int timeout_ms) {
  DCS_ASSIGN_OR_RETURN(const int fd, OpenSocket(endpoint));
  Connection connection(fd);
  struct sockaddr_storage addr;
  socklen_t addr_len = 0;
  DCS_RETURN_IF_ERROR(FillSockaddr(endpoint, &addr, &addr_len));
  const DeadlineTimer deadline(timeout_ms);
  while (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   addr_len) != 0) {
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS || errno == EALREADY) {
      DCS_RETURN_IF_ERROR(PollFor(fd, POLLOUT, deadline, "connect"));
      int error = 0;
      socklen_t error_len = sizeof(error);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &error_len) != 0 ||
          error != 0) {
        return UnavailableError("connect to " + endpoint.ToSpec() +
                                " failed: " +
                                std::strerror(error != 0 ? error : errno));
      }
      break;
    }
    if (errno == EISCONN) break;
    return UnavailableError("connect to " + endpoint.ToSpec() +
                            " failed: " + std::strerror(errno));
  }
  DCS_METRIC_INC("serve.transport.connects");
  return connection;
}

StatusOr<Connection> ConnectWithBackoff(const Endpoint& endpoint,
                                        const TransportOptions& options,
                                        Rng& jitter_rng) {
  options.Check();
  Status last = UnavailableError("no connect attempts were made");
  for (int attempt = 0; attempt < options.max_connect_attempts; ++attempt) {
    if (attempt > 0) {
      // Same policy as ReliableLink: capped exponential base with
      // equal-jitter into [(1-jitter)*b, b], drawn from the caller's
      // dedicated stream so retry schedules replay deterministically.
      int64_t backoff = std::min<int64_t>(
          static_cast<int64_t>(options.reconnect_base_ms)
              << std::min(attempt - 1, 20),
          options.reconnect_cap_ms);
      if (options.reconnect_jitter > 0 && backoff > 1) {
        const int64_t floor = std::max<int64_t>(
            1, static_cast<int64_t>(static_cast<double>(backoff) *
                                    (1.0 - options.reconnect_jitter)));
        backoff = floor + static_cast<int64_t>(jitter_rng.UniformInt(
                              static_cast<uint64_t>(backoff - floor + 1)));
      }
      DCS_METRIC_INC("serve.transport.connect_retries");
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    auto connection = Connect(endpoint, options.connect_timeout_ms);
    if (connection.ok()) return connection;
    last = connection.status();
  }
  return last;
}

}  // namespace dcs
