#include "serve/cluster.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <string>
#include <utility>

#include "util/metrics.h"

namespace dcs {
namespace {

// The worker's instance token: distinct across respawns (monotonic clock
// advances; pids differ), never zero (zero means "unknown" client-side).
uint64_t DrawInstanceToken() {
  const uint64_t ticks = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const uint64_t token =
      ticks ^ (static_cast<uint64_t>(::getpid()) << 40);
  return token == 0 ? 1 : token;
}

}  // namespace

BoundedJobQueue::BoundedJobQueue(int capacity) : capacity_(capacity) {
  DCS_CHECK_GE(capacity, 1);
}

Status BoundedJobQueue::TryPush(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) {
      return UnavailableError("job queue is stopped");
    }
    if (static_cast<int>(jobs_.size()) >= capacity_) {
      DCS_METRIC_INC("serve.cluster.queue_rejected");
      return ResourceExhaustedError(
          "shard queue full (" + std::to_string(capacity_) +
          " requests in flight); retry after backoff");
    }
    jobs_.push_back(std::move(job));
  }
  ready_.notify_one();
  return OkStatus();
}

std::optional<std::function<void()>> BoundedJobQueue::Pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return stopped_ || !jobs_.empty(); });
  if (jobs_.empty()) return std::nullopt;  // stopped and drained
  std::function<void()> job = std::move(jobs_.front());
  jobs_.pop_front();
  return job;
}

void BoundedJobQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  ready_.notify_all();
}

int64_t BoundedJobQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(jobs_.size());
}

void ClusterWorkerOptions::Check() const {
  DCS_CHECK_GE(num_shards, 1);
  DCS_CHECK_GE(queue_capacity, 1);
  DCS_CHECK_GE(io_timeout_ms, 1);
  DCS_CHECK_GE(accept_timeout_ms, 1);
  DCS_CHECK_GE(execution_delay_ms, 0);
}

ClusterWorker::ClusterWorker(Listener listener, ClusterWorkerOptions options)
    : options_(options),
      listener_(std::move(listener)),
      token_(DrawInstanceToken()) {
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    CutQueryServiceOptions service_options;
    service_options.num_threads = 1;  // the shard thread IS the executor
    shard->service = std::make_unique<CutQueryService>(service_options);
    shard->queue =
        std::make_unique<BoundedJobQueue>(options_.queue_capacity);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->runner = std::thread([queue = shard->queue.get()] {
      while (auto job = queue->Pop()) (*job)();
    });
  }
}

StatusOr<std::unique_ptr<ClusterWorker>> ClusterWorker::Create(
    const Endpoint& endpoint, ClusterWorkerOptions options) {
  options.Check();
  DCS_ASSIGN_OR_RETURN(Listener listener, Listener::Listen(endpoint));
  return std::unique_ptr<ClusterWorker>(
      new ClusterWorker(std::move(listener), options));
}

ClusterWorker::~ClusterWorker() {
  RequestStop();
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  for (auto& shard : shards_) {
    shard->queue->Stop();
    if (shard->runner.joinable()) shard->runner.join();
  }
}

RpcResponse ClusterWorker::ExecuteOnShard(Shard& shard,
                                          const RpcRequest& request) {
  RpcResponse response;
  response.server_token = token_;
  if (options_.execution_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.execution_delay_ms));
  }
  const int num_shards = static_cast<int>(shards_.size());
  switch (request.kind) {
    case RpcKind::kRegisterGraph: {
      shard.graphs.push_back(*request.graph);
      const CutQueryService::ObjectId local =
          shard.service->RegisterGraph(shard.graphs.back());
      // Recover the shard index from the routing invariant rather than
      // storing it: this shard was picked as global % S.
      int shard_index = 0;
      for (; shard_index < num_shards; ++shard_index) {
        if (shards_[static_cast<size_t>(shard_index)].get() == &shard) break;
      }
      response.object_id = local * num_shards + shard_index;
      response.status = OkStatus();
      DCS_METRIC_INC("serve.cluster.objects_registered");
      break;
    }
    case RpcKind::kQueryBatch: {
      const int64_t local = request.object_id / num_shards;
      if (local >= shard.service->num_objects()) {
        response.status = NotFoundError(
            "object " + std::to_string(request.object_id) +
            " is not registered on this worker (it may have restarted)");
        break;
      }
      const DirectedGraph& graph = shard.graphs[static_cast<size_t>(local)];
      if (request.num_vertices != graph.num_vertices()) {
        response.status = InvalidArgumentError(
            "query batch sides have " +
            std::to_string(request.num_vertices) + " vertices; object has " +
            std::to_string(graph.num_vertices()));
        break;
      }
      std::vector<CutQueryService::Query> batch;
      batch.reserve(request.sides.size());
      for (const VertexSet& side : request.sides) {
        batch.push_back(CutQueryService::Query{local, side});
      }
      response.values = shard.service->AnswerBatch(batch);
      response.status = OkStatus();
      break;
    }
    case RpcKind::kPing:
    case RpcKind::kResponse:
      response.status = InternalError("request kind cannot reach a shard");
      break;
  }
  return response;
}

RpcResponse ClusterWorker::Dispatch(const RpcRequest& request) {
  RpcResponse response;
  response.server_token = token_;
  if (request.kind == RpcKind::kPing) {
    response.status = OkStatus();  // answered inline: health checks must
    return response;               // succeed even when every queue is full
  }
  Shard* shard = nullptr;
  if (request.kind == RpcKind::kRegisterGraph) {
    if (!request.graph.has_value()) {
      response.status = InvalidArgumentError("register request has no graph");
      return response;
    }
    std::lock_guard<std::mutex> lock(registration_mutex_);
    shard = shards_[static_cast<size_t>(registrations_++ %
                                        static_cast<int64_t>(
                                            shards_.size()))]
                .get();
  } else if (request.kind == RpcKind::kQueryBatch) {
    if (request.object_id < 0) {
      response.status = InvalidArgumentError("negative object id");
      return response;
    }
    shard = shards_[static_cast<size_t>(
                        request.object_id %
                        static_cast<int64_t>(shards_.size()))]
                .get();
  } else {
    response.status = InternalError("undispatchable request kind");
    return response;
  }
  // The connection thread parks here while the shard thread runs the job;
  // the bounded queue depth is therefore the worker's whole memory of
  // outstanding work — nothing else buffers.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  const Status admitted = shard->queue->TryPush([&] {
    RpcResponse result = ExecuteOnShard(*shard, request);
    std::lock_guard<std::mutex> lock(done_mutex);
    response = std::move(result);
    done = true;
    done_cv.notify_one();
  });
  if (!admitted.ok()) {
    response.status = admitted;  // kResourceExhausted fast-reject
    return response;
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
  return response;
}

RpcResponse ClusterWorker::Execute(const RpcRequest& request) {
  return Dispatch(request);
}

void ClusterWorker::HandleConnection(Connection connection) {
  while (!stop_.load(std::memory_order_relaxed)) {
    // Wait for the next request with a short poll so the stop flag is
    // observed promptly on idle connections; the io deadline only starts
    // once bytes are actually arriving.
    struct pollfd pfd;
    pfd.fd = connection.fd();
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, options_.accept_timeout_ms);
    if (ready == 0) continue;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    auto request_bytes = connection.Receive(options_.io_timeout_ms);
    if (!request_bytes.ok()) {
      // Clean departure, reset, or garbage: either way this connection is
      // done. (A decode failure below keeps the connection — framing is
      // intact, only the body was bad.)
      break;
    }
    RpcResponse response;
    response.server_token = token_;
    auto request = DecodeRpcRequest(*request_bytes);
    if (request.ok()) {
      response = Dispatch(*request);
    } else {
      response.status = request.status();
    }
    DCS_METRIC_INC("serve.cluster.requests");
    if (!connection.Send(EncodeRpcResponse(response),
                         options_.io_timeout_ms)
             .ok()) {
      break;
    }
  }
}

Status ClusterWorker::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto accepted = listener_.Accept(options_.accept_timeout_ms);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // poll the stop flag
      }
      return accepted.status();
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.emplace_back(
        [this, conn = std::make_shared<Connection>(std::move(*accepted))] {
          HandleConnection(std::move(*conn));
        });
  }
  // Drain: stop accepting, let every connection finish its in-flight
  // request (they observe stop_ within accept_timeout_ms), then run the
  // queues dry before joining the shard threads.
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  for (auto& shard : shards_) shard->queue->Stop();
  for (auto& shard : shards_) {
    if (shard->runner.joinable()) shard->runner.join();
  }
  return OkStatus();
}

}  // namespace dcs
