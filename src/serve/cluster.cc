#include "serve/cluster.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <string>
#include <utility>

#include "sketch/serialization.h"
#include "store/cache_snapshot.h"
#include "util/bitio.h"
#include "util/metrics.h"

namespace dcs {
namespace {

// The worker's instance token: distinct across respawns (monotonic clock
// advances; pids differ), never zero (zero means "unknown" client-side).
uint64_t DrawInstanceToken() {
  const uint64_t ticks = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const uint64_t token =
      ticks ^ (static_cast<uint64_t>(::getpid()) << 40);
  return token == 0 ? 1 : token;
}

// Checksum of a graph's serialized envelope bytes; matches the client's
// GraphEnvelopeChecksum because serialization is canonical.
uint32_t Fnv1aBytes(const std::vector<uint8_t>& bytes) {
  uint32_t hash = 2166136261u;
  for (uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 16777619u;
  }
  return hash;
}

}  // namespace

BoundedJobQueue::BoundedJobQueue(int capacity) : capacity_(capacity) {
  DCS_CHECK_GE(capacity, 1);
}

Status BoundedJobQueue::TryPush(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) {
      return UnavailableError("job queue is stopped");
    }
    if (static_cast<int>(jobs_.size()) >= capacity_) {
      DCS_METRIC_INC("serve.cluster.queue_rejected");
      return ResourceExhaustedError(
          "shard queue full (" + std::to_string(capacity_) +
          " requests in flight); retry after backoff");
    }
    jobs_.push_back(std::move(job));
  }
  ready_.notify_one();
  return OkStatus();
}

std::optional<std::function<void()>> BoundedJobQueue::Pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return stopped_ || !jobs_.empty(); });
  if (jobs_.empty()) return std::nullopt;  // stopped and drained
  std::function<void()> job = std::move(jobs_.front());
  jobs_.pop_front();
  return job;
}

void BoundedJobQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  ready_.notify_all();
}

int64_t BoundedJobQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(jobs_.size());
}

void ClusterWorkerOptions::Check() const {
  DCS_CHECK_GE(num_shards, 1);
  DCS_CHECK_GE(queue_capacity, 1);
  DCS_CHECK_GE(io_timeout_ms, 1);
  DCS_CHECK_GE(accept_timeout_ms, 1);
  DCS_CHECK_GE(execution_delay_ms, 0);
  DCS_CHECK_GE(warm_cache_entries, 0);
}

ClusterWorker::ClusterWorker(Listener listener, ClusterWorkerOptions options)
    : options_(options),
      listener_(std::move(listener)),
      token_(DrawInstanceToken()) {
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    CutQueryServiceOptions service_options;
    service_options.num_threads = 1;  // the shard thread IS the executor
    shard->service = std::make_unique<CutQueryService>(service_options);
    shard->queue =
        std::make_unique<BoundedJobQueue>(options_.queue_capacity);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->runner = std::thread([queue = shard->queue.get()] {
      while (auto job = queue->Pop()) (*job)();
    });
  }
}

StatusOr<std::unique_ptr<ClusterWorker>> ClusterWorker::Create(
    const Endpoint& endpoint, ClusterWorkerOptions options) {
  options.Check();
  DCS_ASSIGN_OR_RETURN(Listener listener, Listener::Listen(endpoint));
  std::unique_ptr<ClusterWorker> worker(
      new ClusterWorker(std::move(listener), options));
  if (!options.store_dir.empty()) {
    DCS_ASSIGN_OR_RETURN(worker->store_,
                         SketchStore::Open(options.store_dir));
    DCS_RETURN_IF_ERROR(worker->WarmLoadFromStore());
  }
  return worker;
}

Status ClusterWorker::WarmLoadFromStore() {
  // Replay persisted objects in ascending global id. Round-robin
  // registration makes the global id equal to the registration counter, so
  // an ascending replay reproduces every assignment: id k lands on shard
  // k % S at local index k / S — exactly where a query for id k routes.
  const std::vector<int64_t> ids = store_->ListObjects();
  const int64_t num_shards = static_cast<int64_t>(shards_.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const int64_t id = ids[i];
    if (id != static_cast<int64_t>(i)) {
      return DataLossError(
          "store object ids are not contiguous from 0 (found id " +
          std::to_string(id) + " at position " + std::to_string(i) +
          "); refusing to warm-load with a broken id assignment");
    }
    DCS_ASSIGN_OR_RETURN(const StoredObject object, store_->Get(id));
    if (object.kind != StreamKind::kDirectedGraph) {
      return DataLossError("store object " + std::to_string(id) +
                           " is a " + StreamKindName(object.kind) +
                           ", not a directed graph");
    }
    BitReader reader(object.bytes);
    DCS_ASSIGN_OR_RETURN(DirectedGraph graph,
                         DeserializeDirectedGraph(reader));
    const uint32_t checksum = Fnv1aBytes(object.bytes);
    Shard& shard = *shards_[static_cast<size_t>(id % num_shards)];
    shard.graphs.push_back(std::move(graph));
    shard.checksums.push_back(checksum);
    const CutQueryService::ObjectId local =
        shard.service->RegisterGraph(shard.graphs.back());
    DCS_CHECK_EQ(local, id / num_shards);
    ++warm_loaded_objects_;
    DCS_METRIC_INC("serve.cluster.objects_warm_loaded");
  }
  registrations_ = static_cast<int64_t>(ids.size());
  // The previous incarnation's drained cache, if any. A snapshot is an
  // optimization: unreadable or stale files mean a cold cache, not a
  // failed boot.
  auto snapshot = ReadCacheSnapshotFile(store_->dir() + "/cache.snap");
  if (snapshot.ok()) {
    std::vector<std::vector<CutQueryCache::SnapshotEntry>> per_shard(
        shards_.size());
    for (const CacheSnapshotEntry& entry : *snapshot) {
      if (entry.object < 0 ||
          entry.object >= static_cast<int64_t>(ids.size())) {
        continue;  // an object the store no longer holds
      }
      CutQueryCache::SnapshotEntry local;
      local.object = entry.object / num_shards;
      local.side.words = entry.side_words;
      local.value = entry.value;
      per_shard[static_cast<size_t>(entry.object % num_shards)]
          .push_back(std::move(local));
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->service->RestoreCache(per_shard[s]);
    }
  } else if (snapshot.status().code() == StatusCode::kDataLoss) {
    DCS_METRIC_INC("serve.cluster.cache_snapshot_rejected");
  }
  return OkStatus();
}

Status ClusterWorker::PersistOnDrain() {
  if (store_ == nullptr) return OkStatus();
  if (options_.warm_cache_entries > 0) {
    const int64_t num_shards = static_cast<int64_t>(shards_.size());
    // Split the entry budget across shards so every shard's hottest
    // entries survive, whichever shard is busiest.
    const int64_t per_shard_budget =
        std::max<int64_t>(1, options_.warm_cache_entries / num_shards);
    std::vector<CacheSnapshotEntry> merged;
    for (int64_t s = 0; s < num_shards; ++s) {
      const auto entries =
          shards_[static_cast<size_t>(s)]->service->SnapshotCache(
              per_shard_budget);
      for (const CutQueryCache::SnapshotEntry& entry : entries) {
        CacheSnapshotEntry global;
        global.object = entry.object * num_shards + s;
        global.side_words = entry.side.words;
        global.value = entry.value;
        merged.push_back(std::move(global));
      }
    }
    // Best-effort: a failed snapshot write costs warmth, not correctness.
    if (!WriteCacheSnapshotFile(store_->dir() + "/cache.snap", merged)
             .ok()) {
      DCS_METRIC_INC("serve.cluster.cache_snapshot_write_failed");
    }
  }
  // The segment seal is NOT best-effort: a drain that cannot make its
  // registrations durable must say so.
  return store_->Seal();
}

ClusterWorker::~ClusterWorker() {
  RequestStop();
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  for (auto& shard : shards_) {
    shard->queue->Stop();
    if (shard->runner.joinable()) shard->runner.join();
  }
}

RpcResponse ClusterWorker::ExecuteOnShard(Shard& shard,
                                          const RpcRequest& request) {
  RpcResponse response;
  response.server_token = token_;
  if (options_.execution_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.execution_delay_ms));
  }
  const int num_shards = static_cast<int>(shards_.size());
  switch (request.kind) {
    case RpcKind::kRegisterGraph: {
      // Recover the shard index from the routing invariant rather than
      // storing it: this shard was picked as global % S.
      int shard_index = 0;
      for (; shard_index < num_shards; ++shard_index) {
        if (shards_[static_cast<size_t>(shard_index)].get() == &shard) break;
      }
      BitWriter writer;
      SerializeDirectedGraph(*request.graph, writer);
      const int64_t global_id =
          shard.service->num_objects() * num_shards + shard_index;
      if (store_ != nullptr) {
        // Persist before registering: an object is only queryable once
        // its bytes are in the segment, so a respawned worker can always
        // warm-load everything it ever acknowledged.
        const Status put = store_->Put(global_id,
                                       StreamKind::kDirectedGraph,
                                       writer.bytes(), writer.bit_count());
        if (!put.ok()) {
          response.status = put;
          break;
        }
      }
      const uint32_t checksum = Fnv1aBytes(writer.bytes());
      shard.graphs.push_back(*request.graph);
      shard.checksums.push_back(checksum);
      const CutQueryService::ObjectId local =
          shard.service->RegisterGraph(shard.graphs.back());
      response.object_id = local * num_shards + shard_index;
      response.status = OkStatus();
      DCS_METRIC_INC("serve.cluster.objects_registered");
      break;
    }
    case RpcKind::kQueryBatch: {
      const int64_t local = request.object_id / num_shards;
      if (local >= shard.service->num_objects()) {
        response.status = NotFoundError(
            "object " + std::to_string(request.object_id) +
            " is not registered on this worker (it may have restarted)");
        break;
      }
      const DirectedGraph& graph = shard.graphs[static_cast<size_t>(local)];
      if (request.num_vertices != graph.num_vertices()) {
        response.status = InvalidArgumentError(
            "query batch sides have " +
            std::to_string(request.num_vertices) + " vertices; object has " +
            std::to_string(graph.num_vertices()));
        break;
      }
      std::vector<CutQueryService::Query> batch;
      batch.reserve(request.sides.size());
      for (const VertexSet& side : request.sides) {
        batch.push_back(CutQueryService::Query{local, side});
      }
      response.values = shard.service->AnswerBatch(batch);
      response.status = OkStatus();
      break;
    }
    case RpcKind::kReattach: {
      // The client's fast repair path: claim an object this incarnation
      // warm-loaded from the previous one's store. Anything short of an
      // exact identity match (id live, vertex count, envelope checksum)
      // is kNotFound, and the client falls back to a full re-register.
      const int64_t local = request.object_id / num_shards;
      if (local >= shard.service->num_objects()) {
        response.status = NotFoundError(
            "object " + std::to_string(request.object_id) +
            " is not on this worker; reattach requires a warm store");
        break;
      }
      const DirectedGraph& graph = shard.graphs[static_cast<size_t>(local)];
      const uint32_t checksum = shard.checksums[static_cast<size_t>(local)];
      if (request.num_vertices != graph.num_vertices() ||
          request.graph_checksum != checksum) {
        response.status = NotFoundError(
            "object " + std::to_string(request.object_id) +
            " on this worker is not the client's object "
            "(checksum or shape mismatch)");
        break;
      }
      response.object_id = request.object_id;
      response.status = OkStatus();
      DCS_METRIC_INC("serve.cluster.objects_reattached");
      break;
    }
    case RpcKind::kPing:
    case RpcKind::kResponse:
      response.status = InternalError("request kind cannot reach a shard");
      break;
  }
  return response;
}

RpcResponse ClusterWorker::Dispatch(const RpcRequest& request) {
  RpcResponse response;
  response.server_token = token_;
  if (request.kind == RpcKind::kPing) {
    response.status = OkStatus();  // answered inline: health checks must
    return response;               // succeed even when every queue is full
  }
  Shard* shard = nullptr;
  if (request.kind == RpcKind::kRegisterGraph) {
    if (!request.graph.has_value()) {
      response.status = InvalidArgumentError("register request has no graph");
      return response;
    }
    std::lock_guard<std::mutex> lock(registration_mutex_);
    shard = shards_[static_cast<size_t>(registrations_++ %
                                        static_cast<int64_t>(
                                            shards_.size()))]
                .get();
  } else if (request.kind == RpcKind::kQueryBatch ||
             request.kind == RpcKind::kReattach) {
    if (request.object_id < 0) {
      response.status = InvalidArgumentError("negative object id");
      return response;
    }
    shard = shards_[static_cast<size_t>(
                        request.object_id %
                        static_cast<int64_t>(shards_.size()))]
                .get();
  } else {
    response.status = InternalError("undispatchable request kind");
    return response;
  }
  // The connection thread parks here while the shard thread runs the job;
  // the bounded queue depth is therefore the worker's whole memory of
  // outstanding work — nothing else buffers.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  const Status admitted = shard->queue->TryPush([&] {
    RpcResponse result = ExecuteOnShard(*shard, request);
    std::lock_guard<std::mutex> lock(done_mutex);
    response = std::move(result);
    done = true;
    done_cv.notify_one();
  });
  if (!admitted.ok()) {
    response.status = admitted;  // kResourceExhausted fast-reject
    return response;
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
  return response;
}

RpcResponse ClusterWorker::Execute(const RpcRequest& request) {
  return Dispatch(request);
}

void ClusterWorker::HandleConnection(Connection connection) {
  while (!stop_.load(std::memory_order_relaxed)) {
    // Wait for the next request with a short poll so the stop flag is
    // observed promptly on idle connections; the io deadline only starts
    // once bytes are actually arriving.
    struct pollfd pfd;
    pfd.fd = connection.fd();
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, options_.accept_timeout_ms);
    if (ready == 0) continue;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    auto request_bytes = connection.Receive(options_.io_timeout_ms);
    if (!request_bytes.ok()) {
      // Clean departure, reset, or garbage: either way this connection is
      // done. (A decode failure below keeps the connection — framing is
      // intact, only the body was bad.)
      break;
    }
    RpcResponse response;
    response.server_token = token_;
    auto request = DecodeRpcRequest(*request_bytes);
    if (request.ok()) {
      response = Dispatch(*request);
    } else {
      response.status = request.status();
    }
    DCS_METRIC_INC("serve.cluster.requests");
    if (!connection.Send(EncodeRpcResponse(response),
                         options_.io_timeout_ms)
             .ok()) {
      break;
    }
  }
}

Status ClusterWorker::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto accepted = listener_.Accept(options_.accept_timeout_ms);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // poll the stop flag
      }
      return accepted.status();
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.emplace_back(
        [this, conn = std::make_shared<Connection>(std::move(*accepted))] {
          HandleConnection(std::move(*conn));
        });
  }
  // Drain: stop accepting, let every connection finish its in-flight
  // request (they observe stop_ within accept_timeout_ms), then run the
  // queues dry before joining the shard threads.
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  for (auto& shard : shards_) shard->queue->Stop();
  for (auto& shard : shards_) {
    if (shard->runner.joinable()) shard->runner.join();
  }
  // Queues are dry and shard threads joined: no registration can race the
  // seal, so a SIGTERM-driven drain never leaves a segment that fsck
  // reports corrupt beyond a torn tail.
  return PersistOnDrain();
}

int64_t ClusterWorker::num_registered() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->service->num_objects();
  return total;
}

int64_t ClusterWorker::cache_entries() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->service->cache_size();
  return total;
}

}  // namespace dcs
