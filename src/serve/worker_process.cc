#include "serve/worker_process.h"

#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "serve/wire.h"

namespace dcs {

StatusOr<WorkerProcess> SpawnWorker(const std::string& server_binary,
                                    const Endpoint& endpoint,
                                    const ClusterWorkerOptions& options) {
  options.Check();
  // Fail fast on a missing or non-executable binary: without this check
  // the only symptom is the child's _exit(127) after fork, which callers
  // discover via a multi-second WaitForWorkerReady timeout.
  if (::access(server_binary.c_str(), X_OK) != 0) {
    return NotFoundError("server binary " + server_binary +
                         " is not executable: " + std::strerror(errno));
  }
  const std::string spec = endpoint.ToSpec();
  const std::string shards = std::to_string(options.num_shards);
  const std::string queue = std::to_string(options.queue_capacity);
  const std::string io_timeout = std::to_string(options.io_timeout_ms);
  const std::string accept_timeout =
      std::to_string(options.accept_timeout_ms);
  const std::string delay = std::to_string(options.execution_delay_ms);
  // execv wants mutable char*; the strings above outlive the call.
  std::vector<char*> argv;
  auto push = [&argv](const std::string& s) {
    argv.push_back(const_cast<char*>(s.c_str()));
  };
  push(server_binary);
  const std::string flag_listen = "--listen";
  const std::string flag_shards = "--shards";
  const std::string flag_queue = "--queue-capacity";
  const std::string flag_io = "--io-timeout-ms";
  const std::string flag_accept = "--accept-timeout-ms";
  const std::string flag_delay = "--execution-delay-ms";
  push(flag_listen);
  push(spec);
  push(flag_shards);
  push(shards);
  push(flag_queue);
  push(queue);
  push(flag_io);
  push(io_timeout);
  push(flag_accept);
  push(accept_timeout);
  push(flag_delay);
  push(delay);
  const std::string flag_store = "--store-dir";
  const std::string flag_warm = "--warm-cache";
  const std::string warm = std::to_string(options.warm_cache_entries);
  if (!options.store_dir.empty()) {
    push(flag_store);
    push(options.store_dir);
    push(flag_warm);
    push(warm);
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return UnavailableError(std::string("fork failed: ") +
                            std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(server_binary.c_str(), argv.data());
    // Only reached when exec failed; 127 is the shell's convention for
    // "command not found" and surfaces in the parent's reap status.
    _exit(127);
  }
  WorkerProcess worker;
  worker.pid = pid;
  worker.endpoint = endpoint;
  return worker;
}

Status WaitForWorkerReady(const Endpoint& endpoint, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  RpcRequest ping;
  ping.kind = RpcKind::kPing;
  const Message encoded = EncodeRpcRequest(ping);
  while (std::chrono::steady_clock::now() < deadline) {
    auto connection = Connect(endpoint, 200);
    if (connection.ok() && connection->Send(encoded, 500).ok()) {
      auto reply = connection->Receive(500);
      if (reply.ok() && DecodeRpcResponse(*reply).ok()) return OkStatus();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return DeadlineExceededError("transport deadline: worker at " +
                               endpoint.ToSpec() + " never became ready");
}

Status KillWorker(const WorkerProcess& worker, int signo) {
  if (!worker.alive()) return NotFoundError("worker was never spawned");
  if (::kill(worker.pid, signo) != 0) {
    return NotFoundError(std::string("kill failed: ") +
                         std::strerror(errno));
  }
  return OkStatus();
}

Status ReapWorker(WorkerProcess& worker, bool blocking) {
  if (!worker.alive()) return NotFoundError("worker already reaped");
  int wait_status = 0;
  while (true) {
    const pid_t reaped =
        ::waitpid(worker.pid, &wait_status, blocking ? 0 : WNOHANG);
    if (reaped == worker.pid) {
      worker.pid = -1;
      return OkStatus();
    }
    if (reaped == 0) return UnavailableError("worker is still running");
    if (errno == EINTR) continue;
    return NotFoundError(std::string("waitpid failed: ") +
                         std::strerror(errno));
  }
}

bool WorkerRunning(const WorkerProcess& worker) {
  if (!worker.alive()) return false;
  return ::kill(worker.pid, 0) == 0;
}

}  // namespace dcs
