#include "serve/decoder_batch.h"

#include <utility>

#include "util/check.h"
#include "util/metrics.h"

namespace dcs {

std::vector<int8_t> DecodeForEachBits(const ForEachDecoder& decoder,
                                      const std::vector<int64_t>& qs,
                                      CutQueryService& service,
                                      CutQueryService::ObjectId object) {
  std::vector<ForEachDecoder::QueryPlan> plans;
  plans.reserve(qs.size());
  std::vector<CutQueryService::Query> batch;
  batch.reserve(qs.size() * 4);
  for (const int64_t q : qs) {
    plans.push_back(decoder.PlanQueries(q));
    for (const VertexSet& side : plans.back().cut_sides) {
      batch.push_back(CutQueryService::Query{object, side});
    }
  }
  const std::vector<double> answers = service.AnswerBatch(batch);
  DCS_CHECK_EQ(answers.size(), qs.size() * 4);
  std::vector<int8_t> bits(qs.size(), 0);
  for (size_t b = 0; b < qs.size(); ++b) {
    const ForEachDecoder::QueryPlan& plan = plans[b];
    double estimate = 0;
    for (size_t query = 0; query < 4; ++query) {
      estimate += plan.signs[query] *
                  (answers[4 * b + query] - plan.fixed_weights[query]);
    }
    bits[b] = estimate >= 0 ? 1 : -1;
  }
  DCS_METRIC_ADD("foreach.bit.decoded", static_cast<int64_t>(qs.size()));
  return bits;
}

VertexSet SelectForAllBestSubset(const ForAllDecoder& decoder,
                                 int64_t string_index,
                                 const std::vector<uint8_t>& t,
                                 CutQueryService& service,
                                 CutQueryService::ObjectId object,
                                 ForAllDecoder::SubsetSelection mode) {
  return decoder.SelectBestSubset(
      string_index, t,
      [&service, object](VertexSet side) {
        return service.BeginSession(object, std::move(side));
      },
      mode);
}

bool DecideForAllFar(const ForAllDecoder& decoder, int64_t string_index,
                     const std::vector<uint8_t>& t, CutQueryService& service,
                     CutQueryService::ObjectId object,
                     ForAllDecoder::SubsetSelection mode) {
  return decoder.DecideFar(
      string_index, t,
      [&service, object](VertexSet side) {
        return service.BeginSession(object, std::move(side));
      },
      mode);
}

}  // namespace dcs
