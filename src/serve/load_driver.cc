#include "serve/load_driver.h"

#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "serve/cluster_client.h"
#include "serve/cut_query_service.h"
#include "serve/worker_process.h"
#include "util/random.h"

namespace dcs {
namespace {

// Deterministic weighted multigraph. Irregular weights on purpose: the
// bit-identity check must cover real FP summation, not integer sums that
// could mask an order difference.
DirectedGraph MakeLoadGraph(int num_vertices, int num_edges, uint64_t seed) {
  Rng rng(seed);
  DirectedGraph graph(num_vertices);
  for (int e = 0; e < num_edges; ++e) {
    const int u = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(num_vertices)));
    int v = u;
    while (v == u) {
      v = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(num_vertices)));
    }
    graph.AddEdge(u, v, 0.5 + rng.UniformDouble());
  }
  return graph;
}

VertexSet RandomSide(int num_vertices, Rng& rng) {
  VertexSet side(static_cast<size_t>(num_vertices), 0);
  for (auto& bit : side) bit = rng.Bernoulli(0.5) ? 1 : 0;
  return side;
}

int64_t PercentileUs(std::vector<int64_t>& sorted_us, double q) {
  if (sorted_us.empty()) return 0;
  const size_t rank = static_cast<size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(rank, sorted_us.size() - 1)];
}

}  // namespace

void ClusterLoadOptions::Check() const {
  DCS_CHECK(!server_binary.empty());
  DCS_CHECK(!socket_dir.empty());
  DCS_CHECK_GE(num_workers, 1);
  DCS_CHECK_GE(replication, 1);
  DCS_CHECK_GE(num_client_threads, 1);
  DCS_CHECK_GE(batches_per_thread, 1);
  DCS_CHECK_GE(batch_size, 1);
  DCS_CHECK_GE(kill_rate, 0.0);
  DCS_CHECK_LE(kill_rate, 1.0);
  DCS_CHECK_GE(kill_interval_ms, 1);
  DCS_CHECK_GE(respawn_delay_ms, 0);
  DCS_CHECK_GE(num_vertices, 2);
  DCS_CHECK_GE(num_edges, 1);
  worker.Check();
}

StatusOr<ClusterLoadReport> RunClusterLoad(const ClusterLoadOptions& options) {
  options.Check();
  const DirectedGraph graph =
      MakeLoadGraph(options.num_vertices, options.num_edges, options.seed);

  // The single-process oracle: the same CutQueryService + ExactCutOracle
  // code path every worker runs, on a graph with the same edge order the
  // workers deserialize — so equality below must be exact, bit for bit.
  CutQueryServiceOptions reference_options;
  reference_options.num_threads = 1;
  CutQueryService reference(reference_options);
  const CutQueryService::ObjectId reference_id =
      reference.RegisterGraph(graph);

  std::vector<Endpoint> endpoints;
  std::vector<WorkerProcess> processes(
      static_cast<size_t>(options.num_workers));
  std::mutex processes_mutex;
  // Each worker gets its own options so store-backed runs can give every
  // worker a private segment directory; respawns reuse the same options,
  // which is what makes a respawn warm-load its predecessor's store.
  std::vector<ClusterWorkerOptions> worker_options(
      static_cast<size_t>(options.num_workers), options.worker);
  for (int w = 0; w < options.num_workers; ++w) {
    DCS_ASSIGN_OR_RETURN(
        const Endpoint endpoint,
        ParseEndpoint("unix:" + options.socket_dir + "/worker" +
                      std::to_string(w) + ".sock"));
    endpoints.push_back(endpoint);
    if (!options.store_root.empty()) {
      worker_options[static_cast<size_t>(w)].store_dir =
          options.store_root + "/worker" + std::to_string(w);
    }
  }
  // Kill every child on every exit path; SIGTERM first (drain), SIGKILL
  // for anything that lingers.
  auto cleanup = [&] {
    std::lock_guard<std::mutex> lock(processes_mutex);
    for (WorkerProcess& process : processes) {
      if (!process.alive()) continue;
      KillWorker(process, SIGTERM).ToString();
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(2000);
    for (WorkerProcess& process : processes) {
      if (!process.alive()) continue;
      while (!ReapWorker(process, /*blocking=*/false).ok() &&
             process.alive()) {
        if (std::chrono::steady_clock::now() > deadline) {
          KillWorker(process, SIGKILL).ToString();
          ReapWorker(process, /*blocking=*/true).ToString();
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  };
  for (int w = 0; w < options.num_workers; ++w) {
    auto spawned = SpawnWorker(options.server_binary, endpoints[w],
                               worker_options[static_cast<size_t>(w)]);
    if (!spawned.ok()) {
      cleanup();
      return spawned.status();
    }
    processes[static_cast<size_t>(w)] = std::move(*spawned);
  }
  for (int w = 0; w < options.num_workers; ++w) {
    const Status ready = WaitForWorkerReady(endpoints[w], 5000);
    if (!ready.ok()) {
      cleanup();
      return ready;
    }
  }

  ClusterLoadReport report;
  std::mutex report_mutex;
  std::vector<int64_t> latencies_us;
  std::atomic<bool> clients_done{false};
  Status client_failure = OkStatus();

  // The killer: SIGKILL a random worker per Bernoulli(kill_rate) tick,
  // reap the corpse, respawn the same endpoint a beat later. Clients see
  // broken connections mid-batch and must fail over; the respawned
  // incarnation has a fresh token and an empty registry until repaired.
  std::thread killer;
  if (options.kill_rate > 0) {
    killer = std::thread([&] {
      Rng rng(SubtaskSeed(options.seed, 0x5160));
      while (!clients_done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.kill_interval_ms));
        if (!rng.Bernoulli(options.kill_rate)) continue;
        std::lock_guard<std::mutex> lock(processes_mutex);
        const size_t victim = static_cast<size_t>(
            rng.UniformInt(static_cast<uint64_t>(options.num_workers)));
        WorkerProcess& process = processes[victim];
        if (!process.alive()) continue;
        if (!KillWorker(process, SIGKILL).ok()) continue;
        ReapWorker(process, /*blocking=*/true).ToString();
        {
          std::lock_guard<std::mutex> report_lock(report_mutex);
          ++report.kills;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.respawn_delay_ms));
        auto respawned = SpawnWorker(options.server_binary,
                                     endpoints[victim],
                                     worker_options[victim]);
        if (!respawned.ok()) continue;
        process = std::move(*respawned);
        if (WaitForWorkerReady(endpoints[victim], 5000).ok()) {
          std::lock_guard<std::mutex> report_lock(report_mutex);
          ++report.respawns;
        }
      }
    });
  }

  const auto load_start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int t = 0; t < options.num_client_threads; ++t) {
    clients.emplace_back([&, t] {
      ClusterClientOptions client_options;
      client_options.replication = options.replication;
      client_options.seed = SubtaskSeed(options.seed, 100 + t);
      client_options.transport.io_timeout_ms = 2000;
      client_options.transport.connect_timeout_ms = 500;
      client_options.transport.max_connect_attempts = 3;
      ClusterClient client(endpoints, client_options);
      // Registration may race an early kill or collide with other clients
      // on full queues; retry with a per-thread stagger so the herd
      // decorrelates instead of re-colliding in lockstep.
      StatusOr<ClusterClient::ObjectHandle> handle =
          UnavailableError("not yet registered");
      for (int attempt = 0; attempt < 10 && !handle.ok(); ++attempt) {
        handle = client.RegisterReplicated(graph);
        if (!handle.ok()) {
          client.HealthCheck().ToString();
          std::this_thread::sleep_for(
              std::chrono::milliseconds(25 * (attempt + 1) + 13 * t));
        }
      }
      if (!handle.ok()) {
        std::lock_guard<std::mutex> lock(report_mutex);
        client_failure = handle.status();
        return;
      }
      Rng rng(SubtaskSeed(options.seed, 1000 + t));
      int64_t ok = 0, unavailable = 0, exhausted = 0, other = 0, wrong = 0;
      std::vector<int64_t> local_latencies;
      local_latencies.reserve(
          static_cast<size_t>(options.batches_per_thread));
      for (int b = 0; b < options.batches_per_thread; ++b) {
        std::vector<VertexSet> sides;
        sides.reserve(static_cast<size_t>(options.batch_size));
        std::vector<CutQueryService::Query> reference_batch;
        for (int q = 0; q < options.batch_size; ++q) {
          sides.push_back(RandomSide(options.num_vertices, rng));
          reference_batch.push_back(
              CutQueryService::Query{reference_id, sides.back()});
        }
        const std::vector<double> expected =
            reference.AnswerBatch(reference_batch);
        const auto start = std::chrono::steady_clock::now();
        auto answer = client.AnswerBatch(*handle, sides);
        const auto elapsed_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (answer.ok()) {
          ++ok;
          local_latencies.push_back(elapsed_us);
          // Bitwise, not approximate: a survivor must answer with the
          // exact double the single-process oracle produces.
          for (size_t i = 0; i < expected.size(); ++i) {
            if (std::memcmp(&expected[i], &(*answer)[i],
                            sizeof(double)) != 0) {
              ++wrong;
            }
          }
        } else if (answer.status().code() == StatusCode::kUnavailable) {
          ++unavailable;
          client.HealthCheck().ToString();
          client.Repair().status().ToString();
        } else if (answer.status().code() ==
                   StatusCode::kResourceExhausted) {
          ++exhausted;  // backpressure: back off, never hammer
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        } else {
          ++other;
        }
        // Periodic repair keeps replication at R between failures, so a
        // later kill of the surviving replica still finds a spare.
        if ((b & 7) == 7) {
          client.HealthCheck().ToString();
          client.Repair().status().ToString();
        }
      }
      std::lock_guard<std::mutex> lock(report_mutex);
      report.batches_ok += ok;
      report.batches_unavailable += unavailable;
      report.batches_resource_exhausted += exhausted;
      report.batches_other_error += other;
      report.wrong_bits += wrong;
      report.reattaches += client.reattached_replicas();
      latencies_us.insert(latencies_us.end(), local_latencies.begin(),
                          local_latencies.end());
    });
  }
  for (std::thread& client : clients) client.join();
  const auto load_end = std::chrono::steady_clock::now();
  clients_done.store(true, std::memory_order_relaxed);
  if (killer.joinable()) killer.join();
  cleanup();
  if (!client_failure.ok()) return client_failure;

  report.elapsed_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(load_end -
                                                                load_start)
          .count();
  if (report.elapsed_seconds > 0) {
    report.qps = static_cast<double>(report.batches_ok *
                                     options.batch_size) /
                 report.elapsed_seconds;
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  report.latency_p50_us = PercentileUs(latencies_us, 0.5);
  report.latency_p99_us = PercentileUs(latencies_us, 0.99);
  return report;
}

}  // namespace dcs
