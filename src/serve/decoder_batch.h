// Service-path entry points for the lower-bound decoders.
//
// The decoders (lowerbound/) are below the serving layer in the dependency
// order, so their batched/cached variants live here: the for-each decoder's
// 4-tuple probes collapse into one AnswerBatch call (sharded + memoized),
// and the for-all decoder's subset enumeration runs over the service's
// cache-aware sessions through its session-source overloads. Answers are
// bit-identical to the per-query oracle paths when the cache is cold, and
// identical by the cache's equality-checked memoization when warm.

#ifndef DCS_SERVE_DECODER_BATCH_H_
#define DCS_SERVE_DECODER_BATCH_H_

#include <cstdint>
#include <vector>

#include "lowerbound/forall_encoding.h"
#include "lowerbound/foreach_encoding.h"
#include "serve/cut_query_service.h"

namespace dcs {

// Decodes bits qs[0..] of the for-each construction served as `object`:
// plans the four inclusion–exclusion sides per bit, answers all 4·|qs|
// queries in ONE AnswerBatch, then takes the alternating sums. Each bit
// still costs exactly 4 logical queries (Lemma 3.2) — batching changes
// scheduling and caching, never the count.
std::vector<int8_t> DecodeForEachBits(const ForEachDecoder& decoder,
                                      const std::vector<int64_t>& qs,
                                      CutQueryService& service,
                                      CutQueryService::ObjectId object);

// For-all decode through the service: the enumeration (or greedy marginal
// scan) drives a served session, so repeated subset sweeps on one object —
// e.g. re-decodes across trials of the same instance — hit the cache.
VertexSet SelectForAllBestSubset(const ForAllDecoder& decoder,
                                 int64_t string_index,
                                 const std::vector<uint8_t>& t,
                                 CutQueryService& service,
                                 CutQueryService::ObjectId object,
                                 ForAllDecoder::SubsetSelection mode);

bool DecideForAllFar(const ForAllDecoder& decoder, int64_t string_index,
                     const std::vector<uint8_t>& t, CutQueryService& service,
                     CutQueryService::ObjectId object,
                     ForAllDecoder::SubsetSelection mode);

}  // namespace dcs

#endif  // DCS_SERVE_DECODER_BATCH_H_
