// Batched local-query probes for the verification path (DESIGN.md §10).
//
// VerifyGuess (localquery/verify_guess.h) interleaves degree queries,
// sampling draws, and neighbor queries per vertex; against a remote or
// simulated oracle that interleaving forces one round trip per probe. The
// batched variant here issues the SAME probes in three phases — all
// degrees, then all sampling draws, then all neighbor slots — so a
// transport can amortize each phase into one round.
//
// Rng discipline: the sampling draws (Binomial, RandomSubset) depend only
// on the degree answers and are taken in the same per-vertex order as the
// unbatched code, and retries never touch the rng — so on an infallible
// oracle BatchedVerifyGuess is bit-identical to VerifyGuess (the sampled
// edges, their insertion order, and hence the Stoer–Wagner estimate all
// match exactly; tests/serve_test.cc asserts this). The *oracle-side*
// query order does change (degrees before neighbors), which fault
// injectors that index faults by query position will observe — the default
// estimator path therefore stays on the unbatched VerifyGuess, and the
// batched variant opts in through MinCutEstimatorOptions::verify_fn.

#ifndef DCS_SERVE_LOCAL_BATCH_H_
#define DCS_SERVE_LOCAL_BATCH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "localquery/mincut_estimator.h"
#include "localquery/oracle.h"
#include "localquery/verify_guess.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {

// Issues homogeneous runs of local queries through the fallible Try*
// interface with bounded retries. Answers land in input order. Not a
// parallelism layer: oracles count queries through mutable state, so a
// batch runs on the calling thread — the win is one call site (and, for
// round-trip transports, one round) per phase instead of per probe.
class LocalQueryBatcher {
 public:
  explicit LocalQueryBatcher(LocalQueryOracle& oracle) : oracle_(oracle) {}

  // deg(u) for every u, in order.
  StatusOr<std::vector<int64_t>> Degrees(
      const std::vector<VertexId>& vertices);

  // One neighbor-slot probe.
  struct SlotProbe {
    VertexId u = 0;
    int64_t slot = 0;
  };

  // The `slot`-th neighbor of `u` for every probe, in order (nullopt when
  // the oracle reports the slot out of range).
  StatusOr<std::vector<std::optional<VertexId>>> Neighbors(
      const std::vector<SlotProbe>& probes);

 private:
  LocalQueryOracle& oracle_;
};

// VERIFY-GUESS with phase-batched probes (see file comment). Bit-identical
// to VerifyGuess on infallible oracles; same retry/propagation semantics
// on fallible ones.
StatusOr<VerifyGuessResult> BatchedVerifyGuess(LocalQueryOracle& oracle,
                                               double guess_t,
                                               double epsilon, Rng& rng,
                                               double oversample_c = 2.0);

// The full estimator with every verification call batched (plugs
// BatchedVerifyGuess into MinCutEstimatorOptions::verify_fn).
StatusOr<LocalQueryMinCutResult> EstimateMinCutBatched(
    LocalQueryOracle& oracle, double epsilon, SearchMode mode, Rng& rng,
    MinCutEstimatorOptions options = MinCutEstimatorOptions{});

}  // namespace dcs

#endif  // DCS_SERVE_LOCAL_BATCH_H_
