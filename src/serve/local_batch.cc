#include "serve/local_batch.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/connectivity.h"
#include "localquery/query_retry.h"
#include "mincut/stoer_wagner.h"
#include "util/metrics.h"

namespace dcs {

StatusOr<std::vector<int64_t>> LocalQueryBatcher::Degrees(
    const std::vector<VertexId>& vertices) {
  DCS_METRIC_INC("serve.localbatch.batches");
  DCS_METRIC_RECORD("serve.localbatch.degree.size",
                    static_cast<int64_t>(vertices.size()));
  std::vector<int64_t> degrees;
  degrees.reserve(vertices.size());
  for (const VertexId u : vertices) {
    DCS_ASSIGN_OR_RETURN(const int64_t degree,
                         RetryQuery([&] { return oracle_.TryDegree(u); }));
    degrees.push_back(degree);
  }
  return degrees;
}

StatusOr<std::vector<std::optional<VertexId>>> LocalQueryBatcher::Neighbors(
    const std::vector<SlotProbe>& probes) {
  DCS_METRIC_INC("serve.localbatch.batches");
  DCS_METRIC_RECORD("serve.localbatch.neighbor.size",
                    static_cast<int64_t>(probes.size()));
  std::vector<std::optional<VertexId>> neighbors;
  neighbors.reserve(probes.size());
  for (const SlotProbe& probe : probes) {
    DCS_ASSIGN_OR_RETURN(const std::optional<VertexId> neighbor,
                         RetryQuery([&] {
                           return oracle_.TryNeighbor(probe.u, probe.slot);
                         }));
    neighbors.push_back(neighbor);
  }
  return neighbors;
}

StatusOr<VerifyGuessResult> BatchedVerifyGuess(LocalQueryOracle& oracle,
                                               double guess_t,
                                               double epsilon, Rng& rng,
                                               double oversample_c) {
  DCS_CHECK_GE(guess_t, 1.0);
  DCS_CHECK(epsilon > 0 && epsilon < 1);
  const int n = oracle.num_vertices();
  DCS_CHECK_GE(n, 2);
  const double log_n = std::log(std::max(3, n));
  const double p = std::min(
      1.0, oversample_c * log_n / (epsilon * epsilon * guess_t));

  VerifyGuessResult result;
  result.sample_probability = p;
  LocalQueryBatcher batcher(oracle);

  // Phase 1: every degree in one batch (vertex order — the order the
  // unbatched code queries them in).
  std::vector<VertexId> vertices(static_cast<size_t>(n));
  for (VertexId u = 0; u < n; ++u) vertices[static_cast<size_t>(u)] = u;
  DCS_ASSIGN_OR_RETURN(const std::vector<int64_t> degrees,
                       batcher.Degrees(vertices));

  // Phase 2: sampling draws, per vertex in order. This is exactly the
  // unbatched rng sequence — one Binomial per vertex, one RandomSubset
  // only when picks > 0 — so the sampled slots match VerifyGuess bit for
  // bit.
  std::vector<LocalQueryBatcher::SlotProbe> probes;
  for (VertexId u = 0; u < n; ++u) {
    const int64_t degree = degrees[static_cast<size_t>(u)];
    const int64_t picks = rng.Binomial(degree, p);
    if (picks == 0) continue;
    const std::vector<int> slots =
        rng.RandomSubset(static_cast<int>(degree), static_cast<int>(picks));
    for (const int slot : slots) {
      probes.push_back(LocalQueryBatcher::SlotProbe{u, slot});
    }
  }

  // Phase 3: every sampled neighbor slot in one batch, then the sample
  // graph built in probe order — the same edge insertion order as the
  // unbatched code, so downstream floating-point sums are identical.
  DCS_ASSIGN_OR_RETURN(const std::vector<std::optional<VertexId>> neighbors,
                       batcher.Neighbors(probes));
  UndirectedGraph sample(n);
  const double slot_weight = 1.0 / (2.0 * p);
  for (size_t i = 0; i < probes.size(); ++i) {
    if (!neighbors[i].has_value()) {
      // The oracle reported deg(u) > slot yet returned ⊥: an inconsistent
      // backend, not a programmer error — surface it, don't abort.
      return FailedPreconditionError(
          "oracle returned no neighbor for an in-range slot");
    }
    sample.AddEdge(probes[i].u, *neighbors[i], slot_weight);
  }
  if (!IsConnected(sample)) {
    // A disconnected sample certifies the sampled min cut is 0 (far below
    // (1−ε)t): reject without running the exact min-cut solver.
    result.accepted = false;
    result.estimate = 0;
    return result;
  }
  result.estimate = StoerWagnerMinCut(sample).value;
  result.accepted = result.estimate >= (1 - epsilon) * guess_t;
  return result;
}

StatusOr<LocalQueryMinCutResult> EstimateMinCutBatched(
    LocalQueryOracle& oracle, double epsilon, SearchMode mode, Rng& rng,
    MinCutEstimatorOptions options) {
  options.verify_fn = [](LocalQueryOracle& o, double guess_t, double eps,
                         Rng& r, double oversample_c) {
    return BatchedVerifyGuess(o, guess_t, eps, r, oversample_c);
  };
  return EstimateMinCutLocalQueries(oracle, epsilon, mode, rng, options);
}

}  // namespace dcs
