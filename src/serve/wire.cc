#include "serve/wire.h"

#include <cmath>
#include <string>
#include <utility>

#include "sketch/serialization.h"
#include "util/bitio.h"

namespace dcs {
namespace {

// RPC envelope magic, distinct from the serialization envelope (0xD5CE)
// and the channel frame (0xFA5C): a body misfed to the wrong parser dies
// at the first header field.
constexpr uint64_t kRpcMagic = 0xA9C5;
constexpr uint64_t kRpcVersion = 1;

// Caps enforced before any allocation driven by a header-declared count.
constexpr uint64_t kMaxBatchQueries = uint64_t{1} << 20;
constexpr uint64_t kMaxStatusMessageBytes = 4096;

uint32_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint32_t hash = 2166136261u;
  for (uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 16777619u;
  }
  return hash;
}

Message SealRpc(RpcKind kind, const BitWriter& payload) {
  BitWriter out;
  out.WriteBits(kRpcMagic, 16);
  out.WriteBits(kRpcVersion, 8);
  out.WriteBits(static_cast<uint64_t>(kind), 8);
  out.WriteEliasGamma(static_cast<uint64_t>(payload.bit_count()));
  out.WriteBits(Fnv1a(payload.bytes()), 32);
  out.AppendBits(payload.bytes(), payload.bit_count());
  return SealMessage(out);
}

struct OpenedRpc {
  RpcKind kind = RpcKind::kPing;
  std::vector<uint8_t> payload;
  int64_t payload_bits = 0;
};

// Validates the RPC envelope and extracts the checksummed payload. The
// checks mirror the serialization envelope: magic, version, kind range,
// declared length against the *declared* message bit count (not the padded
// byte buffer), checksum, and no trailing bits.
StatusOr<OpenedRpc> OpenRpc(const Message& message) {
  BitReader reader(message.bytes);
  DCS_ASSIGN_OR_RETURN(const uint64_t magic, reader.TryReadBits(16));
  if (magic != kRpcMagic) return DataLossError("bad rpc magic");
  DCS_ASSIGN_OR_RETURN(const uint64_t version, reader.TryReadBits(8));
  if (version != kRpcVersion) {
    return DataLossError("unsupported rpc version " +
                         std::to_string(version));
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t kind, reader.TryReadBits(8));
  if (kind < static_cast<uint64_t>(RpcKind::kPing) ||
      kind > static_cast<uint64_t>(RpcKind::kReattach)) {
    return DataLossError("unknown rpc kind " + std::to_string(kind));
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t payload_bits,
                       reader.TryReadEliasGamma());
  DCS_ASSIGN_OR_RETURN(const uint64_t checksum, reader.TryReadBits(32));
  if (message.bit_count < reader.position() ||
      payload_bits !=
          static_cast<uint64_t>(message.bit_count - reader.position())) {
    return DataLossError("rpc payload length does not match the message");
  }
  OpenedRpc opened;
  opened.kind = static_cast<RpcKind>(kind);
  opened.payload_bits = static_cast<int64_t>(payload_bits);
  opened.payload.assign(static_cast<size_t>((payload_bits + 7) / 8), 0);
  for (uint64_t bit = 0; bit < payload_bits; ++bit) {
    DCS_ASSIGN_OR_RETURN(const int value, reader.TryReadBit());
    if (value) {
      opened.payload[static_cast<size_t>(bit >> 3)] |=
          static_cast<uint8_t>(1u << (bit & 7));
    }
  }
  if (Fnv1a(opened.payload) != checksum) {
    return DataLossError("rpc payload checksum mismatch");
  }
  return opened;
}

// The payload parsers share a tail check: every declared payload bit must
// be consumed (a short parse means the body was spliced or truncated).
Status CheckFullyConsumed(const BitReader& reader, int64_t payload_bits) {
  if (reader.position() != payload_bits) {
    return DataLossError("rpc payload has trailing bits");
  }
  return OkStatus();
}

}  // namespace

const char* RpcKindName(RpcKind kind) {
  switch (kind) {
    case RpcKind::kPing:
      return "ping";
    case RpcKind::kRegisterGraph:
      return "register_graph";
    case RpcKind::kQueryBatch:
      return "query_batch";
    case RpcKind::kResponse:
      return "response";
    case RpcKind::kReattach:
      return "reattach";
  }
  return "unknown";
}

Message EncodeRpcRequest(const RpcRequest& request) {
  BitWriter payload;
  switch (request.kind) {
    case RpcKind::kPing:
      break;
    case RpcKind::kRegisterGraph:
      DCS_CHECK(request.graph.has_value());
      SerializeDirectedGraph(*request.graph, payload);
      break;
    case RpcKind::kQueryBatch: {
      DCS_CHECK_GE(request.object_id, 0);
      DCS_CHECK_GE(request.num_vertices, 1);
      payload.WriteEliasGamma(static_cast<uint64_t>(request.object_id));
      payload.WriteEliasGamma(static_cast<uint64_t>(request.num_vertices));
      payload.WriteEliasGamma(static_cast<uint64_t>(request.sides.size()));
      for (const VertexSet& side : request.sides) {
        DCS_CHECK_EQ(static_cast<int>(side.size()), request.num_vertices);
        for (uint8_t in_side : side) payload.WriteBit(in_side ? 1 : 0);
      }
      break;
    }
    case RpcKind::kReattach:
      DCS_CHECK_GE(request.object_id, 0);
      DCS_CHECK_GE(request.num_vertices, 1);
      payload.WriteEliasGamma(static_cast<uint64_t>(request.object_id));
      payload.WriteEliasGamma(static_cast<uint64_t>(request.num_vertices));
      payload.WriteBits(request.graph_checksum, 32);
      break;
    case RpcKind::kResponse:
      DCS_CHECK(false);  // responses go through EncodeRpcResponse
      break;
  }
  return SealRpc(request.kind, payload);
}

StatusOr<RpcRequest> DecodeRpcRequest(const Message& message) {
  DCS_ASSIGN_OR_RETURN(const OpenedRpc opened, OpenRpc(message));
  BitReader reader(opened.payload);
  RpcRequest request;
  request.kind = opened.kind;
  switch (opened.kind) {
    case RpcKind::kResponse:
      return DataLossError("rpc body is a response, not a request");
    case RpcKind::kPing:
      break;
    case RpcKind::kRegisterGraph: {
      DCS_ASSIGN_OR_RETURN(request.graph,
                           DeserializeDirectedGraph(reader));
      break;
    }
    case RpcKind::kQueryBatch: {
      DCS_ASSIGN_OR_RETURN(const uint64_t object_id,
                           reader.TryReadEliasGamma());
      if (object_id > (uint64_t{1} << 32)) {
        return DataLossError("rpc query batch object id out of range");
      }
      DCS_ASSIGN_OR_RETURN(const uint64_t num_vertices,
                           reader.TryReadEliasGamma());
      DCS_ASSIGN_OR_RETURN(const uint64_t num_sides,
                           reader.TryReadEliasGamma());
      if (num_vertices < 1 ||
          num_vertices > static_cast<uint64_t>(reader.RemainingBits())) {
        return DataLossError("rpc query batch vertex count out of range");
      }
      if (num_sides > kMaxBatchQueries ||
          num_sides * num_vertices >
              static_cast<uint64_t>(reader.RemainingBits())) {
        return DataLossError(
            "rpc query batch declares more sides than the stream holds");
      }
      request.object_id = static_cast<int64_t>(object_id);
      request.num_vertices = static_cast<int>(num_vertices);
      request.sides.reserve(static_cast<size_t>(num_sides));
      for (uint64_t q = 0; q < num_sides; ++q) {
        VertexSet side(num_vertices, 0);
        for (uint64_t v = 0; v < num_vertices; ++v) {
          DCS_ASSIGN_OR_RETURN(const int bit, reader.TryReadBit());
          side[static_cast<size_t>(v)] = static_cast<uint8_t>(bit);
        }
        request.sides.push_back(std::move(side));
      }
      break;
    }
    case RpcKind::kReattach: {
      DCS_ASSIGN_OR_RETURN(const uint64_t object_id,
                           reader.TryReadEliasGamma());
      if (object_id > (uint64_t{1} << 32)) {
        return DataLossError("rpc reattach object id out of range");
      }
      DCS_ASSIGN_OR_RETURN(const uint64_t num_vertices,
                           reader.TryReadEliasGamma());
      if (num_vertices < 1 || num_vertices > (uint64_t{1} << 28)) {
        return DataLossError("rpc reattach vertex count out of range");
      }
      DCS_ASSIGN_OR_RETURN(const uint64_t checksum, reader.TryReadBits(32));
      request.object_id = static_cast<int64_t>(object_id);
      request.num_vertices = static_cast<int>(num_vertices);
      request.graph_checksum = static_cast<uint32_t>(checksum);
      break;
    }
  }
  DCS_RETURN_IF_ERROR(CheckFullyConsumed(reader, opened.payload_bits));
  return request;
}

Message EncodeRpcResponse(const RpcResponse& response) {
  BitWriter payload;
  payload.WriteBits(static_cast<uint64_t>(response.status.code()), 8);
  const std::string& text = response.status.message();
  DCS_CHECK_LE(text.size(), kMaxStatusMessageBytes);
  payload.WriteEliasGamma(text.size());
  for (char c : text) {
    payload.WriteBits(static_cast<uint8_t>(c), 8);
  }
  payload.WriteBits(response.server_token, 64);
  DCS_CHECK_GE(response.object_id, 0);
  payload.WriteEliasGamma(static_cast<uint64_t>(response.object_id));
  payload.WriteEliasGamma(response.values.size());
  for (double value : response.values) payload.WriteDouble(value);
  return SealRpc(RpcKind::kResponse, payload);
}

uint32_t GraphEnvelopeChecksum(const DirectedGraph& graph) {
  BitWriter writer;
  SerializeDirectedGraph(graph, writer);
  return Fnv1a(writer.bytes());
}

StatusOr<RpcResponse> DecodeRpcResponse(const Message& message) {
  DCS_ASSIGN_OR_RETURN(const OpenedRpc opened, OpenRpc(message));
  if (opened.kind != RpcKind::kResponse) {
    return DataLossError("rpc body is a request, not a response");
  }
  BitReader reader(opened.payload);
  RpcResponse response;
  DCS_ASSIGN_OR_RETURN(const uint64_t code, reader.TryReadBits(8));
  if (code > static_cast<uint64_t>(StatusCode::kResourceExhausted)) {
    return DataLossError("rpc response status code out of range");
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t text_bytes, reader.TryReadEliasGamma());
  if (text_bytes > kMaxStatusMessageBytes ||
      text_bytes * 8 > static_cast<uint64_t>(reader.RemainingBits())) {
    return DataLossError("rpc response status message overruns the stream");
  }
  std::string text;
  text.reserve(static_cast<size_t>(text_bytes));
  for (uint64_t i = 0; i < text_bytes; ++i) {
    DCS_ASSIGN_OR_RETURN(const uint64_t c, reader.TryReadBits(8));
    text.push_back(static_cast<char>(c));
  }
  response.status = code == 0
                        ? OkStatus()
                        : Status(static_cast<StatusCode>(code),
                                 std::move(text));
  DCS_ASSIGN_OR_RETURN(response.server_token, reader.TryReadBits(64));
  DCS_ASSIGN_OR_RETURN(const uint64_t object_id, reader.TryReadEliasGamma());
  if (object_id > (uint64_t{1} << 32)) {
    return DataLossError("rpc response object id out of range");
  }
  response.object_id = static_cast<int64_t>(object_id);
  DCS_ASSIGN_OR_RETURN(const uint64_t num_values, reader.TryReadEliasGamma());
  if (num_values > kMaxBatchQueries ||
      num_values * 64 > static_cast<uint64_t>(reader.RemainingBits())) {
    return DataLossError("rpc response declares more values than the stream");
  }
  response.values.reserve(static_cast<size_t>(num_values));
  for (uint64_t i = 0; i < num_values; ++i) {
    DCS_ASSIGN_OR_RETURN(const double value, reader.TryReadDouble());
    if (!std::isfinite(value)) {
      return DataLossError("rpc response value is not finite");
    }
    response.values.push_back(value);
  }
  DCS_RETURN_IF_ERROR(CheckFullyConsumed(reader, opened.payload_bits));
  return response;
}

}  // namespace dcs
