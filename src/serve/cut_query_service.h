// The batched cut-query serving layer (DESIGN.md §10).
//
// A CutQueryService owns a registry of queryable objects — exact graphs,
// sketches, arbitrary oracles — and answers *batches* of cut queries
// against them. Batch execution is sharded across a ThreadPool in fixed
// shard_size runs, so the work partition (and therefore every seeded
// oracle's noise stream) depends only on the batch contents, never on the
// thread count. Repeated queries on cacheable (pure) objects are answered
// from a striped LRU cache (query_cache.h) keyed on the canonical side.
//
// Bit accounting: a cached answer is still a logical query. Every batch
// entry and every session Query() increments serve.query.logical exactly
// once, whether it hit the cache or ran the oracle — so the paper's
// query-count bounds (4 per for-each bit, Lemma 3.2) are asserted on
// serve.query.logical and hold with the cache cold or warm
// (tests/metrics_bounds_test.cc). What the cache changes is only how many
// of those logical queries reach a backend oracle.
//
// Sessions: BeginSession returns a cache-aware CutQuerySession. Flip is
// O(1) on the session's canonical key (one packed-bit toggle plus one XOR
// into the side hash); the underlying incremental session only advances on
// a cache miss, when the pending flips are replayed into it. The for-all
// decoder's subset enumeration runs unchanged over these sessions and
// picks up cross-trial cache hits for free.
//
// Thread-safety: register every object before serving (registration is not
// synchronized against queries). AnswerBatch and sessions may then run
// concurrently from multiple threads; a service with num_threads > 1
// serializes its internal pool behind a mutex (the ThreadPool contract is
// one loop at a time).

#ifndef DCS_SERVE_CUT_QUERY_SERVICE_H_
#define DCS_SERVE_CUT_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/digraph.h"
#include "lowerbound/cut_oracle.h"
#include "serve/query_cache.h"
#include "sketch/backend_registry.h"
#include "sketch/cut_sketch.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dcs {

struct CutQueryServiceOptions {
  // Threads for batch execution. 1 = serve on the calling thread (and
  // concurrent AnswerBatch calls from different threads run fully
  // concurrently — there is no pool to serialize).
  int num_threads = 1;
  // Queries per shard. The shard partition is the determinism unit: shard
  // s of batch b always holds the same queries and draws from the same
  // seed stream, for every num_threads.
  int shard_size = 32;
  // Memoization cache over cacheable objects.
  bool enable_cache = true;
  int64_t cache_capacity = 1 << 16;
  int cache_stripes = 8;
};

class CutQueryService {
 public:
  using ObjectId = int64_t;

  // One cut query: the oracle's estimate of w(S, V∖S) on `object`.
  struct Query {
    ObjectId object = 0;
    VertexSet side;
  };

  explicit CutQueryService(CutQueryServiceOptions options = {});

  CutQueryService(const CutQueryService&) = delete;
  CutQueryService& operator=(const CutQueryService&) = delete;

  // Registration (call before serving; referenced graphs/sketches must
  // outlive the service). Graphs and sketches are pure functions of the
  // side, hence cacheable.
  ObjectId RegisterGraph(const DirectedGraph& graph);
  ObjectId RegisterSketch(const DirectedCutSketch& sketch);
  // Builds a registered sparsifier backend (sketch/backend_registry.h)
  // over `graph` by name and registers it. Unlike RegisterSketch the
  // service owns the sketch, so callers only keep the graph alive during
  // the call. kInvalidArgument naming the valid backends on a typo.
  StatusOr<ObjectId> RegisterBackendSketch(const DirectedGraph& graph,
                                           const std::string& backend,
                                           const BackendOptions& options);
  // An arbitrary oracle; pass cacheable=false for oracles whose answers
  // draw randomness (caching one draw would freeze the noise).
  ObjectId RegisterOracle(CutOracle oracle, bool cacheable);
  // A noisy-oracle family with the PR-1 seeding discipline: shard s of
  // batch b queries an oracle built from
  // Rng(SubtaskSeed(SubtaskSeed(base_seed, b), s)), so results are
  // bit-identical for every num_threads. Never cached.
  ObjectId RegisterSeededOracle(const DirectedGraph& graph,
                                SeededCutOracleFactory factory,
                                uint64_t base_seed);

  // Answers batch[i] into result[i]. Shards of shard_size run across the
  // pool; cacheable objects consult/populate the cache per query. Counts
  // batch.size() logical queries and records serve.batch.{size,latency_ns}.
  std::vector<double> AnswerBatch(const std::vector<Query>& batch);

  // A cache-aware incremental session positioned at `side`. For seeded
  // objects the session owns its oracle, built from
  // Rng(SubtaskSeed(base_seed, session_index)) at open.
  std::unique_ptr<CutQuerySession> BeginSession(ObjectId object,
                                                VertexSet side);

  const CutQueryServiceOptions& options() const { return options_; }
  int64_t num_objects() const {
    return static_cast<int64_t>(objects_.size());
  }
  // Entries currently cached (0 when the cache is disabled).
  int64_t cache_size() const { return cache_ ? cache_->size() : 0; }

  // Warm-tier hooks (store/cache_snapshot.h): the hottest cached entries
  // for persisting at drain, and their reload at boot. Empty/no-op when
  // the cache is disabled.
  std::vector<CutQueryCache::SnapshotEntry> SnapshotCache(
      int64_t max_entries) const {
    return cache_ ? cache_->SnapshotHottest(max_entries)
                  : std::vector<CutQueryCache::SnapshotEntry>{};
  }
  void RestoreCache(const std::vector<CutQueryCache::SnapshotEntry>& entries) {
    if (cache_) cache_->Restore(entries);
  }

 private:
  struct ObjectEntry {
    CutOracle oracle;  // unset for seeded entries
    const DirectedGraph* seeded_graph = nullptr;
    SeededCutOracleFactory seeded_factory;  // set => per-shard oracles
    uint64_t base_seed = 0;
    bool cacheable = false;
  };

  ObjectId Register(ObjectEntry entry);
  const ObjectEntry& EntryFor(ObjectId object) const;

  CutQueryServiceOptions options_;
  std::vector<ObjectEntry> objects_;
  // Backend sketches built by RegisterBackendSketch; their oracles point
  // into this storage, which therefore lives as long as the service.
  std::vector<std::unique_ptr<DirectedCutSketch>> owned_sketches_;
  std::unique_ptr<CutQueryCache> cache_;   // null when disabled
  std::unique_ptr<ThreadPool> pool_;       // null when num_threads <= 1
  std::mutex pool_mutex_;                  // one ParallelFor at a time
  std::atomic<int64_t> batch_counter_{0};
  std::atomic<int64_t> session_counter_{0};
};

}  // namespace dcs

#endif  // DCS_SERVE_CUT_QUERY_SERVICE_H_
