#include "serve/cluster_client.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "util/metrics.h"

namespace dcs {

void ClusterClientOptions::Check() const {
  DCS_CHECK_GE(replication, 1);
  transport.Check();
}

ClusterClient::ClusterClient(std::vector<Endpoint> workers,
                             ClusterClientOptions options)
    : options_(options) {
  options_.Check();
  DCS_CHECK_GE(workers.size(), 1u);
  workers_.reserve(workers.size());
  for (size_t w = 0; w < workers.size(); ++w) {
    workers_.push_back(std::make_unique<WorkerState>(
        std::move(workers[w]),
        SubtaskSeed(options_.seed, static_cast<int64_t>(w))));
  }
}

ClusterClient::WorkerHealth ClusterClient::worker_health(int worker) const {
  DCS_CHECK_GE(worker, 0);
  DCS_CHECK_LT(worker, num_workers());
  return workers_[static_cast<size_t>(worker)]->health;
}

StatusOr<RpcResponse> ClusterClient::Call(int worker,
                                          const RpcRequest& request,
                                          bool even_if_dead) {
  WorkerState& w = *workers_[static_cast<size_t>(worker)];
  if (w.health == WorkerHealth::kDead && !even_if_dead) {
    return UnavailableError("worker " + w.endpoint.ToSpec() +
                            " is marked dead");
  }
  if (!w.connection.valid()) {
    auto connection =
        ConnectWithBackoff(w.endpoint, options_.transport, w.jitter_rng);
    if (!connection.ok()) {
      w.health = w.health == WorkerHealth::kHealthy ? WorkerHealth::kSuspect
                                                    : w.health;
      return connection.status();
    }
    w.connection = std::move(*connection);
  }
  const Message encoded = EncodeRpcRequest(request);
  Status sent = w.connection.Send(encoded, options_.transport.io_timeout_ms);
  if (!sent.ok()) {
    w.connection.Close();
    w.health = WorkerHealth::kSuspect;
    return sent;
  }
  auto reply = w.connection.Receive(options_.transport.io_timeout_ms);
  if (!reply.ok()) {
    w.connection.Close();
    w.health = WorkerHealth::kSuspect;
    return reply.status();
  }
  auto response = DecodeRpcResponse(*reply);
  if (!response.ok()) {
    // The stream is corrupt or out of sync; the connection is unusable.
    w.connection.Close();
    w.health = WorkerHealth::kSuspect;
    return response.status();
  }
  // Record the observed instance token. A change relative to any stored
  // replica token proves that worker restarted (IsStale picks this up).
  w.token = response->server_token;
  w.health = WorkerHealth::kHealthy;
  return response;
}

bool ClusterClient::IsStale(const Replica& replica,
                            const WorkerState& worker) const {
  if (!replica.registered) return true;
  return worker.token != 0 && replica.token != worker.token;
}

Status ClusterClient::RegisterShardOn(ObjectState& object, ShardState& shard,
                                      Replica& replica) {
  (void)object;
  RpcRequest request;
  request.kind = RpcKind::kRegisterGraph;
  request.graph = shard.graph;
  DCS_ASSIGN_OR_RETURN(const RpcResponse response,
                       Call(replica.worker, request));
  DCS_RETURN_IF_ERROR(response.status);
  replica.remote_id = response.object_id;
  replica.token = response.server_token;
  replica.registered = true;
  DCS_METRIC_INC("serve.cluster_client.replicas_registered");
  return OkStatus();
}

Status ClusterClient::ReattachShardOn(ObjectState& object, ShardState& shard,
                                      Replica& replica) {
  if (replica.remote_id < 0) {
    return NotFoundError("replica never held a remote id");
  }
  if (!shard.checksum_computed) {
    shard.graph_checksum = GraphEnvelopeChecksum(shard.graph);
    shard.checksum_computed = true;
  }
  RpcRequest request;
  request.kind = RpcKind::kReattach;
  request.object_id = replica.remote_id;
  request.num_vertices = object.num_vertices;
  request.graph_checksum = shard.graph_checksum;
  DCS_ASSIGN_OR_RETURN(const RpcResponse response,
                       Call(replica.worker, request));
  DCS_RETURN_IF_ERROR(response.status);
  replica.remote_id = response.object_id;
  replica.token = response.server_token;
  replica.registered = true;
  ++reattached_replicas_;
  DCS_METRIC_INC("serve.cluster_client.replicas_reattached");
  return OkStatus();
}

StatusOr<ClusterClient::ObjectHandle> ClusterClient::RegisterReplicated(
    const DirectedGraph& graph) {
  const ObjectHandle handle = static_cast<ObjectHandle>(objects_.size());
  ObjectState object;
  object.num_vertices = graph.num_vertices();
  ShardState shard{graph, {}};
  const int num_replicas = std::min(options_.replication, num_workers());
  int successes = 0;
  Status last = UnavailableError("no replicas attempted");
  for (int r = 0; r < num_replicas; ++r) {
    Replica replica;
    replica.worker = static_cast<int>((handle + r) % num_workers());
    const Status status = RegisterShardOn(object, shard, replica);
    if (status.ok()) {
      ++successes;
    } else {
      last = status;
    }
    shard.replicas.push_back(replica);
  }
  if (successes == 0) return last;
  object.shards.push_back(std::move(shard));
  objects_.push_back(std::move(object));
  return handle;
}

StatusOr<ClusterClient::ObjectHandle> ClusterClient::RegisterSharded(
    const DirectedGraph& graph, int num_shards) {
  DCS_CHECK_GE(num_shards, 1);
  const ObjectHandle handle = static_cast<ObjectHandle>(objects_.size());
  ObjectState object;
  object.num_vertices = graph.num_vertices();
  object.shards.reserve(static_cast<size_t>(num_shards));
  // Round-robin by edge index: edge-disjoint groups whose cut values sum
  // to the whole graph's cut for every side.
  for (int g = 0; g < num_shards; ++g) {
    DirectedGraph part(graph.num_vertices());
    const auto& edges = graph.edges();
    for (size_t e = static_cast<size_t>(g); e < edges.size();
         e += static_cast<size_t>(num_shards)) {
      part.AddEdge(edges[e].src, edges[e].dst, edges[e].weight);
    }
    object.shards.push_back(ShardState{std::move(part), {}});
  }
  const int num_replicas = std::min(options_.replication, num_workers());
  for (int g = 0; g < num_shards; ++g) {
    ShardState& shard = object.shards[static_cast<size_t>(g)];
    int successes = 0;
    Status last = UnavailableError("no replicas attempted");
    for (int r = 0; r < num_replicas; ++r) {
      Replica replica;
      replica.worker =
          static_cast<int>((handle + g + r) % num_workers());
      const Status status = RegisterShardOn(object, shard, replica);
      if (status.ok()) {
        ++successes;
      } else {
        last = status;
      }
      shard.replicas.push_back(replica);
    }
    if (successes == 0) {
      return Status(last.code(), "shard " + std::to_string(g) +
                                     " registered nowhere: " +
                                     last.message());
    }
  }
  objects_.push_back(std::move(object));
  return handle;
}

StatusOr<std::vector<double>> ClusterClient::QueryShard(
    const ObjectState& object, ShardState& shard,
    const std::vector<VertexSet>& sides) {
  RpcRequest request;
  request.kind = RpcKind::kQueryBatch;
  request.num_vertices = object.num_vertices;
  request.sides = sides;
  Status last = UnavailableError("no replicas attempted");
  for (Replica& replica : shard.replicas) {
    WorkerState& worker = *workers_[static_cast<size_t>(replica.worker)];
    if (worker.health == WorkerHealth::kDead ||
        IsStale(replica, worker)) {
      continue;  // failover past known-bad replicas without spending a call
    }
    request.object_id = replica.remote_id;
    auto response = Call(replica.worker, request);
    if (!response.ok()) {
      // Transport-level failure (connect, deadline, stream corruption):
      // Call already demoted the worker; fail over.
      last = response.status();
      DCS_METRIC_INC("serve.cluster_client.failovers");
      continue;
    }
    if (response->server_token != replica.token) {
      // The worker answered but is a different incarnation than the one
      // we registered on: this object id now belongs to *someone else's*
      // registration (or nobody). Using the answer could silently return
      // another object's cut values — the one failure mode the soak's
      // zero-wrong-bits invariant exists to catch. Mark stale, fail over.
      replica.registered = false;
      last = NotFoundError("worker restarted since registration");
      DCS_METRIC_INC("serve.cluster_client.failovers");
      continue;
    }
    const Status& peer = response->status;
    if (peer.ok()) {
      if (response->values.size() != sides.size()) {
        return DataLossError("worker answered " +
                             std::to_string(response->values.size()) +
                             " values for " + std::to_string(sides.size()) +
                             " queries");
      }
      return std::move(response->values);
    }
    if (peer.code() == StatusCode::kResourceExhausted) {
      // Backpressure propagates to the caller — never failover, which
      // would amplify the very overload the worker just reported.
      return peer;
    }
    if (peer.code() == StatusCode::kUnavailable ||
        peer.code() == StatusCode::kNotFound) {
      if (peer.code() == StatusCode::kNotFound) replica.registered = false;
      last = peer;
      DCS_METRIC_INC("serve.cluster_client.failovers");
      continue;
    }
    return peer;  // the request itself is wrong; no replica will differ
  }
  return UnavailableError("all " + std::to_string(shard.replicas.size()) +
                          " replicas lost: " + last.ToString());
}

StatusOr<std::vector<double>> ClusterClient::AnswerBatch(
    ObjectHandle handle, const std::vector<VertexSet>& sides) {
  if (handle < 0 || handle >= static_cast<ObjectHandle>(objects_.size())) {
    return InvalidArgumentError("unknown object handle " +
                                std::to_string(handle));
  }
  ObjectState& object = objects_[static_cast<size_t>(handle)];
  if (object.shards.size() != 1) {
    return FailedPreconditionError(
        "object is sharded; use AnswerDegraded for rescaled answers");
  }
  return QueryShard(object, object.shards[0], sides);
}

StatusOr<DegradedAnswer> ClusterClient::AnswerDegraded(
    ObjectHandle handle, const std::vector<VertexSet>& sides) {
  if (handle < 0 || handle >= static_cast<ObjectHandle>(objects_.size())) {
    return InvalidArgumentError("unknown object handle " +
                                std::to_string(handle));
  }
  ObjectState& object = objects_[static_cast<size_t>(handle)];
  DegradedAnswer answer;
  answer.total_shards = static_cast<int>(object.shards.size());
  answer.values.assign(sides.size(), 0.0);
  int survivors = 0;
  for (ShardState& shard : object.shards) {
    auto values = QueryShard(object, shard, sides);
    if (values.ok()) {
      ++survivors;
      for (size_t i = 0; i < sides.size(); ++i) {
        answer.values[i] += (*values)[i];
      }
      continue;
    }
    if (values.status().code() == StatusCode::kUnavailable) {
      ++answer.lost_shards;  // this shard is gone; rescale survivors
      continue;
    }
    return values.status();  // backpressure and caller errors pass through
  }
  if (survivors == 0) {
    return UnavailableError("all " + std::to_string(answer.total_shards) +
                            " shards lost");
  }
  // The survivor-rescale degradation math (DESIGN.md §12): the surviving
  // S−L edge-disjoint groups carry, in expectation, (S−L)/S of every cut,
  // so scaling by S/(S−L) re-centers the estimate while widening the
  // advertised accuracy by √(S/(S−L)).
  answer.scale = static_cast<double>(answer.total_shards) /
                 static_cast<double>(survivors);
  answer.epsilon_factor = std::sqrt(answer.scale);
  if (answer.lost_shards > 0) {
    for (double& value : answer.values) value *= answer.scale;
    DCS_METRIC_INC("serve.cluster_client.degraded_answers");
  }
  return answer;
}

Status ClusterClient::HealthCheck() {
  RpcRequest ping;
  ping.kind = RpcKind::kPing;
  for (int w = 0; w < num_workers(); ++w) {
    const WorkerHealth before = workers_[static_cast<size_t>(w)]->health;
    auto response = Call(w, ping, /*even_if_dead=*/true);
    if (!response.ok()) {
      // A restarted worker leaves the previous connection half-open: the
      // first call fails while tearing it down, so one retry on a fresh
      // connection is what distinguishes a restart from a dead worker.
      response = Call(w, ping, /*even_if_dead=*/true);
    }
    if (response.ok()) continue;  // Call already revived it
    workers_[static_cast<size_t>(w)]->health =
        before == WorkerHealth::kHealthy ? WorkerHealth::kSuspect
                                         : WorkerHealth::kDead;
  }
  return OkStatus();
}

StatusOr<int64_t> ClusterClient::Repair() {
  int64_t repaired = 0;
  for (ObjectState& object : objects_) {
    for (ShardState& shard : object.shards) {
      for (Replica& replica : shard.replicas) {
        WorkerState& worker = *workers_[static_cast<size_t>(replica.worker)];
        if (worker.health != WorkerHealth::kHealthy) continue;
        if (!IsStale(replica, worker)) continue;
        // Fast path first: a store-backed respawn warm-loaded the object
        // under the same id, so reattaching skips re-sending the graph.
        // Workers without a matching warm object answer kNotFound and the
        // full re-register runs as before.
        if (ReattachShardOn(object, shard, replica).ok() ||
            RegisterShardOn(object, shard, replica).ok()) {
          ++repaired;
        }
      }
    }
  }
  DCS_METRIC_ADD("serve.cluster_client.replicas_repaired", repaired);
  return repaired;
}

}  // namespace dcs
