// RPC request/response wire format for the serving tier (DESIGN.md §14).
//
// One RPC body is one Message moved by serve/transport. The body carries
// its own envelope — magic (16 bits), version (8), kind (8), Elias-gamma
// payload bit count, FNV-1a payload checksum (32), payload — mirroring the
// serialization envelope (sketch/serialization.h), so a body that survived
// the transport's per-frame checks is *still* treated as hostile: every
// field is Try-read, every count capped against the remaining stream before
// allocation, and any flip or truncation decodes to kDataLoss. FNV-1a's
// per-byte step is invertible, so any single-byte difference always changes
// the checksum — corruption_test flips every bit of encoded requests and
// responses and asserts non-OK.
//
// RPCs:
//   kPing          — health check; response carries the worker's token.
//   kRegisterGraph — ship a DirectedGraph (nested serialization envelope);
//                    the worker registers it and responds with the
//                    service-assigned object id.
//   kQueryBatch    — a batch of cut queries (object id + packed sides);
//                    response carries one double per query.
//   kReattach      — claim an object a *previous* worker incarnation
//                    persisted to its disk store: carries the object id,
//                    vertex count, and an FNV-1a checksum of the graph's
//                    serialized envelope. A store-backed worker that warm-
//                    loaded a matching object answers OK (the id is live
//                    again); anything else is kNotFound and the client
//                    falls back to a full kRegisterGraph. This is what
//                    turns token-mismatch repair into a fast local reload
//                    instead of re-sending whole sketches.
//
// Every response carries the worker's 64-bit instance token, drawn once at
// process start. A client that registered an object under token T and
// later sees token T' != T knows the worker was restarted and its
// registrations died with it (the replication layer re-registers — the
// repair path).

#ifndef DCS_SERVE_WIRE_H_
#define DCS_SERVE_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "comm/message.h"
#include "graph/digraph.h"
#include "graph/types.h"
#include "util/status.h"

namespace dcs {

// Discriminates RPC bodies. Stable wire values.
enum class RpcKind : uint8_t {
  kPing = 1,
  kRegisterGraph = 2,
  kQueryBatch = 3,
  kResponse = 4,  // every response body, regardless of request kind
  kReattach = 5,
};

// Stable lowercase name ("ping", ...) for diagnostics and metrics.
const char* RpcKindName(RpcKind kind);

struct RpcRequest {
  RpcKind kind = RpcKind::kPing;
  // kQueryBatch/kReattach: the worker-local object id returned by
  // kRegisterGraph.
  int64_t object_id = 0;
  // kQueryBatch/kReattach: vertex count every side must match (validated
  // against the registered object on the worker).
  int num_vertices = 0;
  // kReattach: FNV-1a over the graph's serialized envelope bytes; the
  // worker only reattaches when its warm-loaded object matches.
  uint32_t graph_checksum = 0;
  // kQueryBatch: one packed side per query.
  std::vector<VertexSet> sides;
  // kRegisterGraph: the graph to register.
  std::optional<DirectedGraph> graph;
};

struct RpcResponse {
  // The worker's application-level verdict. Distinct from transport
  // failures: this Status arrived *successfully* over the wire.
  Status status;
  // The responding worker's instance token (all kinds).
  uint64_t server_token = 0;
  // kRegisterGraph: the assigned object id.
  int64_t object_id = 0;
  // kQueryBatch: one answer per query, in request order.
  std::vector<double> values;
};

// Encoding never fails (inputs are trusted, by-construction values).
Message EncodeRpcRequest(const RpcRequest& request);
Message EncodeRpcResponse(const RpcResponse& response);

// Decoding treats the message as hostile: kDataLoss on any envelope or
// field violation, never a crash, hang, or unbounded allocation.
StatusOr<RpcRequest> DecodeRpcRequest(const Message& message);
StatusOr<RpcResponse> DecodeRpcResponse(const Message& message);

// FNV-1a over the graph's serialized envelope bytes. Serialization is
// canonical, so client and worker computing this over "the same graph"
// always agree — the identity check behind kReattach.
uint32_t GraphEnvelopeChecksum(const DirectedGraph& graph);

}  // namespace dcs

#endif  // DCS_SERVE_WIRE_H_
