#include "serve/cut_query_service.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "util/check.h"
#include "util/metrics.h"
#include "util/random.h"

namespace dcs {
namespace {

// Cache-aware session. Flip is O(1) on the canonical key (packed bit +
// XOR into the side hash); the underlying session stays parked at the side
// of the last backend query, and the flips accumulated since are replayed
// into it only when a cache miss forces a real query. For non-cacheable
// (noisy) objects every Query reaches the backend in issue order, so the
// noise stream is identical to an unserved session.
class ServedCutQuerySession final : public CutQuerySession {
 public:
  ServedCutQuerySession(CutQueryCache* cache, int64_t object,
                        std::unique_ptr<CutQuerySession> underlying,
                        const VertexSet& side, std::unique_ptr<Rng> owned_rng,
                        std::unique_ptr<CutOracle> owned_oracle)
      : cache_(cache),
        object_(object),
        owned_rng_(std::move(owned_rng)),
        owned_oracle_(std::move(owned_oracle)),
        underlying_(std::move(underlying)),
        hash_(PackSideInto(side, packed_)),
        num_vertices_(static_cast<VertexId>(side.size())) {
    // Typical sessions flip a handful of vertices between queries; one
    // up-front reservation keeps the pending-flip replay queue from
    // reallocating in the Flip hot path.
    pending_.reserve(64);
  }

  ~ServedCutQuerySession() override {
    DCS_METRIC_ADD("serve.query.logical", logical_queries_);
  }

  void Flip(VertexId v) override {
    DCS_CHECK(v >= 0 && v < num_vertices_);
    packed_.words[static_cast<size_t>(v) / 64] ^=
        uint64_t{1} << (static_cast<size_t>(v) % 64);
    hash_ ^= HashVertex(v);
    pending_.push_back(v);
  }

  double Query() override {
    ++logical_queries_;
    if (cache_ != nullptr) {
      if (const auto hit = cache_->Lookup(object_, hash_, packed_)) {
        // The underlying session does not advance: pending flips stay
        // queued until a miss needs the backend at this side.
        return *hit;
      }
    }
    for (const VertexId v : pending_) underlying_->Flip(v);
    pending_.clear();
    const double value = underlying_->Query();
    if (cache_ != nullptr) cache_->Insert(object_, hash_, packed_, value);
    return value;
  }

 private:
  CutQueryCache* cache_;  // null for non-cacheable objects
  int64_t object_;
  // Declaration order is lifetime order: the oracle captures the rng, the
  // underlying session captures the oracle's backing state.
  std::unique_ptr<Rng> owned_rng_;
  std::unique_ptr<CutOracle> owned_oracle_;
  std::unique_ptr<CutQuerySession> underlying_;
  PackedSide packed_;
  uint64_t hash_;
  VertexId num_vertices_;
  std::vector<VertexId> pending_;
  int64_t logical_queries_ = 0;  // flushed at destruction (DESIGN.md §8)
};

}  // namespace

CutQueryService::CutQueryService(CutQueryServiceOptions options)
    : options_(options) {
  DCS_CHECK_GE(options_.num_threads, 1);
  DCS_CHECK_GE(options_.shard_size, 1);
  if (options_.enable_cache) {
    CutQueryCache::Options cache_options;
    cache_options.capacity = options_.cache_capacity;
    cache_options.num_stripes = options_.cache_stripes;
    cache_ = std::make_unique<CutQueryCache>(cache_options);
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

CutQueryService::ObjectId CutQueryService::Register(ObjectEntry entry) {
  objects_.push_back(std::move(entry));
  DCS_METRIC_INC("serve.object.registered");
  return static_cast<ObjectId>(objects_.size()) - 1;
}

CutQueryService::ObjectId CutQueryService::RegisterGraph(
    const DirectedGraph& graph) {
  ObjectEntry entry;
  entry.oracle = ExactCutOracle(graph);
  entry.cacheable = true;
  return Register(std::move(entry));
}

CutQueryService::ObjectId CutQueryService::RegisterSketch(
    const DirectedCutSketch& sketch) {
  ObjectEntry entry;
  entry.oracle = SketchCutOracle(sketch);
  entry.cacheable = true;
  return Register(std::move(entry));
}

StatusOr<CutQueryService::ObjectId> CutQueryService::RegisterBackendSketch(
    const DirectedGraph& graph, const std::string& backend,
    const BackendOptions& options) {
  DCS_ASSIGN_OR_RETURN(std::unique_ptr<DirectedCutSketch> sketch,
                       BuildBackendSketch(backend, graph, options));
  owned_sketches_.push_back(std::move(sketch));
  ObjectEntry entry;
  entry.oracle = SketchCutOracle(*owned_sketches_.back());
  entry.cacheable = true;
  return Register(std::move(entry));
}

CutQueryService::ObjectId CutQueryService::RegisterOracle(CutOracle oracle,
                                                          bool cacheable) {
  DCS_CHECK(static_cast<bool>(oracle));
  ObjectEntry entry;
  entry.oracle = std::move(oracle);
  entry.cacheable = cacheable;
  return Register(std::move(entry));
}

CutQueryService::ObjectId CutQueryService::RegisterSeededOracle(
    const DirectedGraph& graph, SeededCutOracleFactory factory,
    uint64_t base_seed) {
  DCS_CHECK(static_cast<bool>(factory));
  graph.BuildAdjacency();
  ObjectEntry entry;
  entry.seeded_graph = &graph;
  entry.seeded_factory = std::move(factory);
  entry.base_seed = base_seed;
  entry.cacheable = false;
  return Register(std::move(entry));
}

const CutQueryService::ObjectEntry& CutQueryService::EntryFor(
    ObjectId object) const {
  DCS_CHECK(object >= 0 && object < static_cast<ObjectId>(objects_.size()));
  return objects_[static_cast<size_t>(object)];
}

std::vector<double> CutQueryService::AnswerBatch(
    const std::vector<Query>& batch) {
  DCS_METRIC_TIMER("serve.batch.latency_ns");
  DCS_METRIC_RECORD("serve.batch.size",
                    static_cast<int64_t>(batch.size()));
  DCS_METRIC_ADD("serve.query.logical", static_cast<int64_t>(batch.size()));
  std::vector<double> answers(batch.size(), 0.0);
  if (batch.empty()) return answers;
  const int64_t batch_index =
      batch_counter_.fetch_add(1, std::memory_order_relaxed);
  const int64_t shard_size = options_.shard_size;
  const int64_t count = static_cast<int64_t>(batch.size());
  const int64_t num_shards = (count + shard_size - 1) / shard_size;

  const auto serve_shard = [&](int64_t shard) {
    const int64_t begin = shard * shard_size;
    const int64_t end = std::min(count, begin + shard_size);
    // Seeded objects get one oracle per (batch, shard, object), built from
    // the shard's derived seed — the same SubtaskSeed discipline as the
    // trial runners, so the answers are independent of num_threads.
    std::deque<Rng> shard_rngs;
    std::map<ObjectId, CutOracle> shard_oracles;
    // Hoisted per-shard scratch: PackSideInto reuses the word storage, so
    // after the first query the pack step performs zero allocations.
    PackedSide packed;
    for (int64_t i = begin; i < end; ++i) {
      const Query& query = batch[static_cast<size_t>(i)];
      const ObjectEntry& entry = EntryFor(query.object);
      const bool cacheable = entry.cacheable && cache_ != nullptr;
      uint64_t side_hash = 0;
      if (cacheable) {
        side_hash = PackSideInto(query.side, packed);
        if (const auto hit =
                cache_->Lookup(query.object, side_hash, packed)) {
          answers[static_cast<size_t>(i)] = *hit;
          continue;
        }
      }
      const CutOracle* oracle = &entry.oracle;
      if (entry.seeded_factory) {
        auto it = shard_oracles.find(query.object);
        if (it == shard_oracles.end()) {
          shard_rngs.emplace_back(SubtaskSeed(
              SubtaskSeed(entry.base_seed, batch_index), shard));
          it = shard_oracles
                   .emplace(query.object,
                            entry.seeded_factory(*entry.seeded_graph,
                                                 shard_rngs.back()))
                   .first;
        }
        oracle = &it->second;
      }
      const double value = (*oracle)(query.side);
      answers[static_cast<size_t>(i)] = value;
      if (cacheable) {
        cache_->Insert(query.object, side_hash, packed, value);
      }
    }
  };

  if (pool_ != nullptr) {
    // The ThreadPool runs one loop at a time; concurrent AnswerBatch
    // callers queue here rather than corrupt the pool's epoch state.
    // Batch-granular handoff: hand each worker a run of shards per claim
    // (keeping ~4 claims per thread for load balance) so cheap shards do
    // not turn the shared counter into a coherence hot spot.
    const int64_t grain = std::max<int64_t>(
        1, num_shards / (static_cast<int64_t>(options_.num_threads) * 4));
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_->ParallelFor(num_shards, serve_shard, grain);
  } else {
    for (int64_t shard = 0; shard < num_shards; ++shard) serve_shard(shard);
  }
  return answers;
}

std::unique_ptr<CutQuerySession> CutQueryService::BeginSession(
    ObjectId object, VertexSet side) {
  const ObjectEntry& entry = EntryFor(object);
  std::unique_ptr<Rng> owned_rng;
  std::unique_ptr<CutOracle> owned_oracle;
  const CutOracle* oracle = &entry.oracle;
  if (entry.seeded_factory) {
    const int64_t session_index =
        session_counter_.fetch_add(1, std::memory_order_relaxed);
    owned_rng =
        std::make_unique<Rng>(SubtaskSeed(entry.base_seed, session_index));
    owned_oracle = std::make_unique<CutOracle>(
        entry.seeded_factory(*entry.seeded_graph, *owned_rng));
    oracle = owned_oracle.get();
  }
  auto underlying = oracle->BeginSession(side);
  CutQueryCache* cache =
      entry.cacheable && cache_ != nullptr ? cache_.get() : nullptr;
  return std::make_unique<ServedCutQuerySession>(
      cache, object, std::move(underlying), side, std::move(owned_rng),
      std::move(owned_oracle));
}

}  // namespace dcs
