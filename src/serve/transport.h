// Real-socket message transport for the multi-process serving tier
// (DESIGN.md §14).
//
// Everything above this layer still speaks Message (comm/message.h): the
// transport moves one checksummed bit-exact Message per call across a
// Unix-domain or TCP stream socket. On the wire each Message is cut into
// chunks framed with the 0xFA5C channel-frame idiom from src/comm/channel
// (magic / seq / total chunks / message bits / payload bits / FNV-1a), each
// frame length-prefixed with a 32-bit little-endian byte count. The
// receiver treats the stream as hostile: length caps before allocation,
// strict chunk geometry (sequential seq, consistent totals, exact per-chunk
// payload sizes), per-frame checksums, and a zero-padding check on the
// trailing partial byte — so every bit flip or truncation of a frame
// yields a non-OK Status, never a crash, hang, or over-read
// (tests/corruption_test.cc drives this exhaustively).
//
// Failure vocabulary (the client's failover logic keys on it):
//   kDeadlineExceeded — a connect/read/write deadline expired; messages are
//                       prefixed "transport deadline:" like ReliableLink's.
//   kUnavailable      — the peer is gone: connect refused, EOF mid-message,
//                       reset. Retrying (or failing over) may succeed.
//   kDataLoss         — the stream violated the frame format.
//   kInvalidArgument  — a malformed endpoint spec.
//
// All I/O is nonblocking with poll()-enforced deadlines and EINTR-safe
// retry loops; writes use MSG_NOSIGNAL so a dead peer surfaces as a Status,
// never SIGPIPE. ConnectWithBackoff retries refused connections under the
// same capped exponential backoff + deterministic jitter policy as
// ReliableLink (a dedicated seeded stream, so tests replay exactly).

#ifndef DCS_SERVE_TRANSPORT_H_
#define DCS_SERVE_TRANSPORT_H_

#include <cstdint>
#include <string>

#include "comm/message.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {

// A parsed endpoint: "unix:/path/to.sock" or "tcp:HOST:PORT" (numeric IPv4
// or "localhost"). ToSpec() round-trips, so a Listener bound to port 0 can
// hand out its real address.
struct Endpoint {
  bool is_unix = false;
  std::string path;  // unix socket path
  std::string host;  // tcp numeric IPv4 (or "localhost")
  int port = 0;      // tcp port
  std::string ToSpec() const;
};

// Parses an endpoint spec. kInvalidArgument on malformed input (unknown
// scheme, unix path too long for sockaddr_un, bad port).
StatusOr<Endpoint> ParseEndpoint(const std::string& spec);

// Deadlines and reconnect policy for one logical connection.
struct TransportOptions {
  int connect_timeout_ms = 2000;  // per connect() attempt
  int io_timeout_ms = 5000;       // per Send/Receive call
  // Capped exponential backoff between reconnect attempts:
  // min(base << attempt, cap), jittered into [(1-jitter)*b, b].
  int reconnect_base_ms = 5;
  int reconnect_cap_ms = 200;
  double reconnect_jitter = 0.5;
  int max_connect_attempts = 8;
  uint64_t seed = 0;  // jitter determinism

  void Check() const;  // CHECK-fails on nonsensical values
};

// One connected stream socket, move-only; closes on destruction. A
// Connection is not thread-safe: callers serialize Send/Receive (the
// cluster client holds one connection per worker behind a mutex, the
// worker one per accepted client on its own thread).
class Connection {
 public:
  Connection() = default;  // invalid until assigned
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection() { Close(); }

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  Connection(Connection&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Connection& operator=(Connection&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  // Sends one Message as length-prefixed channel frames. The deadline
  // covers the whole call. kDeadlineExceeded ("transport deadline:") on
  // timeout, kUnavailable if the peer vanished mid-write.
  Status Send(const Message& message, int timeout_ms);

  // Receives one Message. Validates every frame as hostile input:
  // kDataLoss on any format violation, kUnavailable on EOF/reset,
  // kDeadlineExceeded ("transport deadline:") on timeout. A clean EOF
  // *before any byte* of a message also returns kUnavailable ("connection
  // closed"), which servers use as the end-of-client signal.
  StatusOr<Message> Receive(int timeout_ms);

 private:
  int fd_ = -1;
};

// A listening socket. For unix endpoints any stale socket file is
// unlinked before bind; for tcp, SO_REUSEADDR is set and port 0 binds an
// ephemeral port (local_endpoint() reports the real one).
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  static StatusOr<Listener> Listen(const Endpoint& endpoint,
                                   int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  const Endpoint& local_endpoint() const { return endpoint_; }
  void Close();

  // Accepts one connection. kDeadlineExceeded on timeout (the server's
  // accept loop uses a short timeout so it can poll its shutdown flag),
  // kUnavailable if the listener is closed.
  StatusOr<Connection> Accept(int timeout_ms);

 private:
  int fd_ = -1;
  Endpoint endpoint_;
};

// One connect attempt with a deadline. kUnavailable on refusal/unreachable,
// kDeadlineExceeded on timeout.
StatusOr<Connection> Connect(const Endpoint& endpoint, int timeout_ms);

// Connect with up to max_connect_attempts tries under capped exponential
// backoff with deterministic jitter drawn from `jitter_rng` (the caller
// owns the stream so replays are exact). Returns the last attempt's error
// when every try fails.
StatusOr<Connection> ConnectWithBackoff(const Endpoint& endpoint,
                                        const TransportOptions& options,
                                        Rng& jitter_rng);

}  // namespace dcs

#endif  // DCS_SERVE_TRANSPORT_H_
