// The worker side of the multi-process serving tier (DESIGN.md §14).
//
// A ClusterWorker hosts `num_shards` single-threaded CutQueryService
// instances behind per-shard *bounded* request queues:
//
//   accept thread ──► connection thread ──TryPush──► shard queue ──► shard
//   (one per client)  (decode request)               (bounded)       thread
//
// Admission control: TryPush on a full queue fails immediately and the
// connection thread answers kResourceExhausted — the worker never buffers
// unboundedly, and overload is a fast, explicit signal the client must
// respect (the cluster client deliberately does NOT fail over on it; see
// cluster_client.h). Execution stays on the shard's single thread, which
// also serializes registration against queries — the CutQueryService
// contract ("register before serving") holds per shard by construction.
//
// Object ids returned to clients encode the shard: id = local * S + shard.
// Registrations round-robin across shards; queries route by id % S.
//
// Shutdown is drain-then-stop (the SIGTERM path): RequestStop() is
// async-signal-safe (one atomic store); Serve() then stops accepting,
// lets every connection thread finish its in-flight request, drains the
// shard queues, and joins. A client mid-request gets its answer; new
// requests on still-open connections get kUnavailable ("worker draining").
//
// Every response carries the worker's instance token (drawn at
// construction from pid + monotonic clock), so a client can detect that a
// respawned process replaced the one holding its registrations.

#ifndef DCS_SERVE_CLUSTER_H_
#define DCS_SERVE_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "graph/digraph.h"
#include "serve/cut_query_service.h"
#include "serve/transport.h"
#include "serve/wire.h"
#include "store/sketch_store.h"
#include "util/status.h"

namespace dcs {

// A fixed-capacity FIFO of jobs with fast-reject admission and
// drain-then-stop shutdown. Thread-safe.
class BoundedJobQueue {
 public:
  explicit BoundedJobQueue(int capacity);

  BoundedJobQueue(const BoundedJobQueue&) = delete;
  BoundedJobQueue& operator=(const BoundedJobQueue&) = delete;

  // Enqueues without blocking. kResourceExhausted when full (the admission
  // signal), kUnavailable once Stop() has been called.
  Status TryPush(std::function<void()> job);

  // Blocks until a job is available or the queue is stopped AND empty
  // (drain: jobs accepted before Stop still run). nullopt = drained.
  std::optional<std::function<void()>> Pop();

  // Begins drain-then-stop: no new pushes, Pop keeps returning queued jobs
  // until empty, then returns nullopt. Idempotent.
  void Stop();

  int capacity() const { return capacity_; }
  int64_t size() const;

 private:
  const int capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> jobs_;
  bool stopped_ = false;
};

struct ClusterWorkerOptions {
  int num_shards = 2;        // CutQueryService instances (>= 1)
  int queue_capacity = 64;   // per-shard bounded queue depth (>= 1)
  int io_timeout_ms = 5000;  // per-message deadline on connections
  int accept_timeout_ms = 100;  // stop-flag polling cadence
  // Test seam: sleep this long inside each executed job, so admission
  // tests can fill a queue deterministically. 0 in production.
  int execution_delay_ms = 0;
  // Cold/warm tiers (DESIGN.md §15). Empty = in-memory only (the
  // pre-store behavior). Non-empty: registered graphs persist to a
  // SketchStore in this directory, Create() warm-loads every persisted
  // object (reproducing the original id assignment) plus the hottest
  // cache entries from the previous incarnation's drain snapshot, and
  // Serve()'s drain seals the open segment and dumps the cache.
  std::string store_dir;
  // Cache entries persisted at drain (0 disables the snapshot).
  int64_t warm_cache_entries = 4096;

  void Check() const;
};

class ClusterWorker {
 public:
  // Binds and listens immediately (so the spawner can connect as soon as
  // the constructor returns); Serve() runs the accept loop.
  static StatusOr<std::unique_ptr<ClusterWorker>> Create(
      const Endpoint& endpoint, ClusterWorkerOptions options);

  ~ClusterWorker();

  ClusterWorker(const ClusterWorker&) = delete;
  ClusterWorker& operator=(const ClusterWorker&) = delete;

  // Accept loop: runs until RequestStop(), then drains (in-flight requests
  // answered, queues emptied, threads joined) and returns.
  Status Serve();

  // Async-signal-safe stop request (one relaxed atomic store); Serve()
  // observes it within accept_timeout_ms.
  void RequestStop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
  }

  // The bound endpoint (reports the real port when created with port 0).
  const Endpoint& endpoint() const { return listener_.local_endpoint(); }
  uint64_t token() const { return token_; }

  // Executes one already-decoded request against the owning shard,
  // bypassing the socket (the in-process half of transport tests).
  RpcResponse Execute(const RpcRequest& request);

  // Objects live on this worker (warm-loaded + freshly registered).
  int64_t num_registered() const;
  // Cache entries across every shard (warm-restart observability).
  int64_t cache_entries() const;
  // Objects warm-loaded from the store at Create (0 without a store).
  int64_t warm_loaded_objects() const { return warm_loaded_objects_; }

 private:
  struct Shard {
    std::unique_ptr<CutQueryService> service;
    std::unique_ptr<BoundedJobQueue> queue;
    std::thread runner;
    // Graphs live here because CutQueryService::RegisterGraph keeps a
    // reference; deque never reallocates element storage.
    std::deque<DirectedGraph> graphs;
    // Envelope checksum of graphs[i] (the kReattach identity check).
    std::deque<uint32_t> checksums;
  };

  ClusterWorker(Listener listener, ClusterWorkerOptions options);

  // Replays every persisted object into the shards (ascending global id
  // reproduces the round-robin assignment: id k -> shard k % S, local
  // k / S) and reloads the drain cache snapshot. Runs before Serve(), so
  // no synchronization against queries is needed.
  Status WarmLoadFromStore();
  // Drain-side of the warm tier: dump the hottest cache entries and seal
  // the open segment.
  Status PersistOnDrain();

  void HandleConnection(Connection connection);
  RpcResponse ExecuteOnShard(Shard& shard, const RpcRequest& request);
  // Routes through the shard queue (admission control) and waits for the
  // shard thread to run it. Fast-rejects with kResourceExhausted.
  RpcResponse Dispatch(const RpcRequest& request);

  ClusterWorkerOptions options_;
  Listener listener_;
  uint64_t token_ = 0;
  std::atomic<bool> stop_{false};
  std::unique_ptr<SketchStore> store_;  // null without --store-dir
  int64_t warm_loaded_objects_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::mutex registration_mutex_;  // round-robin registration counter
  int64_t registrations_ = 0;
  std::mutex connections_mutex_;
  std::vector<std::thread> connections_;
};

}  // namespace dcs

#endif  // DCS_SERVE_CLUSTER_H_
