// AGM graph sketches [AGM12]: dynamic connectivity and spanning forests
// from linear measurements.
//
// The paper's introduction singles out Ahn–Guha–McGregor (PODS 2012) as
// the key database-community result on cut sketching: Õ(n/ε²) linear
// measurements suffice to (1+ε)-approximate all cuts, and the same
// machinery gives connectivity under edge insertions *and deletions*.
// This module implements that machinery's core:
//
//  * every vertex v maintains L0Samplers over the edge-coordinate space,
//    with edge {u, v} (u < v) written as +1 into u's vector and −1 into
//    v's — so summing a component's vectors cancels internal edges and
//    leaves exactly the boundary;
//  * a spanning forest is extracted by Boruvka rounds: each round merges
//    component sketches (linearity!) and ℓ₀-samples one outgoing edge per
//    component, using a fresh sampler copy per round for independence.
//
// Because the sketch is linear, edge-disjoint parts can be sketched on
// different servers and merged at a coordinator — the same distributed
// pattern as src/distributed, with deletions supported.

#ifndef DCS_STREAM_AGM_SKETCH_H_
#define DCS_STREAM_AGM_SKETCH_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "graph/ugraph.h"
#include "stream/l0_sampler.h"
#include "util/status.h"

namespace dcs {

class AgmConnectivitySketch {
 public:
  // `rounds` independent sampler copies = Boruvka rounds supported;
  // pass 0 to use the default ceil(log2 n) + 2. Sketches must share
  // (n, rounds, seed) to be mergeable.
  AgmConnectivitySketch(int num_vertices, int rounds, uint64_t seed);

  int num_vertices() const { return num_vertices_; }
  int rounds() const { return rounds_; }

  // Dynamic unweighted edge updates (parallel edges stack; a removal must
  // match a prior insertion or the sketch's vector goes negative, which
  // still cancels correctly as long as the final multiset is a graph).
  void AddEdge(VertexId u, VertexId v);
  void RemoveEdge(VertexId u, VertexId v);

  // Adds all edges recorded in `other` (linearity; edge-disjoint parts).
  // Requires matching (n, rounds, seed) — aborts on mismatch (programmer
  // error in a single-process pipeline).
  void MergeFrom(const AgmConnectivitySketch& other);

  // Status-returning merge for paths fed by peers or configuration — the
  // streaming ingestion/epoch-seal path and anything server-shaped: a
  // mismatched (n, rounds, seed) surfaces kInvalidArgument instead of
  // taking the process down (DESIGN.md §7 recoverable-error convention).
  Status TryMergeFrom(const AgmConnectivitySketch& other);

  // FNV-style hash of every linear measurement (all sampler words, in a
  // fixed order) plus the (n, rounds, seed) identity. Two sketches digest
  // equal iff their maintained state is bit-identical (up to hash
  // collisions) — the check the streaming tests and bench_stream use to
  // assert that inserter count and flush interleaving do not change the
  // final sketch.
  uint64_t Digest() const;

  // Extracts a spanning forest via Boruvka over the sketches. Whp the
  // result spans every connected component; with bounded rounds or unlucky
  // sampling it may under-connect (never over-connect: every returned edge
  // is a real edge whp).
  std::vector<Edge> SpanningForest() const;

  // Number of connected components implied by SpanningForest().
  int CountComponents() const;
  bool IsConnected() const;

  // Total size of the maintained linear measurements, in bits.
  int64_t SizeInBits() const;
  // Number of scalar linear measurements maintained.
  int64_t MeasurementCount() const;

 private:
  int64_t EdgeCoordinate(VertexId u, VertexId v) const;

  int num_vertices_;
  int rounds_;
  uint64_t seed_;
  // samplers_[round][vertex]
  std::vector<std::vector<L0Sampler>> samplers_;
};

// Convenience: sketch an existing unweighted graph.
AgmConnectivitySketch SketchGraph(const UndirectedGraph& graph, int rounds,
                                  uint64_t seed);

// k-edge-connectivity from linear measurements ([AGM12], Section on
// k-connectivity): maintain k independent connectivity sketches; at query
// time extract a spanning forest F₁ from the first, *delete* F₁'s edges
// from the second (linearity makes this a local subtraction), extract F₂,
// and so on. The union F₁ ∪ … ∪ F_k is a sparse certificate that preserves
// every cut up to value k — the streaming analogue of
// mincut/SparseCertificate — so cuts of size < k (in particular the global
// min cut, if below k) survive exactly.
class AgmKConnectivitySketch {
 public:
  // `k` nested forests; rounds/seed as in AgmConnectivitySketch.
  AgmKConnectivitySketch(int num_vertices, int k, int rounds, uint64_t seed);

  int num_vertices() const { return num_vertices_; }
  int k() const { return static_cast<int>(layers_.size()); }

  void AddEdge(VertexId u, VertexId v);
  void RemoveEdge(VertexId u, VertexId v);
  // Aborting / Status-returning merges, as in AgmConnectivitySketch.
  void MergeFrom(const AgmKConnectivitySketch& other);
  Status TryMergeFrom(const AgmKConnectivitySketch& other);

  // Combined digest over all k layers (see AgmConnectivitySketch::Digest).
  uint64_t Digest() const;

  // The union of the k nested forests (unit weights). Whp it preserves the
  // edge count of every cut of value < k and contains ≥ min(cut, k) edges
  // across every cut.
  UndirectedGraph Certificate() const;

  // The certificate's global min cut. Whp this equals the true min cut
  // whenever that is below k; otherwise it lies in [k, true min cut]
  // (the certificate is a subgraph, so it never overstates any cut).
  double MinCutUpToK() const;

  int64_t SizeInBits() const;

 private:
  int num_vertices_;
  std::vector<AgmConnectivitySketch> layers_;
};

}  // namespace dcs

#endif  // DCS_STREAM_AGM_SKETCH_H_
