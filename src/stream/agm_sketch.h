// AGM graph sketches [AGM12]: dynamic connectivity and spanning forests
// from linear measurements.
//
// The paper's introduction singles out Ahn–Guha–McGregor (PODS 2012) as
// the key database-community result on cut sketching: Õ(n/ε²) linear
// measurements suffice to (1+ε)-approximate all cuts, and the same
// machinery gives connectivity under edge insertions *and deletions*.
// This module implements that machinery's core:
//
//  * every vertex v maintains L0Samplers over the edge-coordinate space,
//    with edge {u, v} (u < v) written as +1 into u's vector and −1 into
//    v's — so summing a component's vectors cancels internal edges and
//    leaves exactly the boundary;
//  * a spanning forest is extracted by Boruvka rounds: each round merges
//    component sketches (linearity!) and ℓ₀-samples one outgoing edge per
//    component, using a fresh sampler copy per round for independence.
//
// Because the sketch is linear, edge-disjoint parts can be sketched on
// different servers and merged at a coordinator — the same distributed
// pattern as src/distributed, with deletions supported.

#ifndef DCS_STREAM_AGM_SKETCH_H_
#define DCS_STREAM_AGM_SKETCH_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "graph/ugraph.h"
#include "stream/l0_sampler.h"

namespace dcs {

class AgmConnectivitySketch {
 public:
  // `rounds` independent sampler copies = Boruvka rounds supported;
  // pass 0 to use the default ceil(log2 n) + 2. Sketches must share
  // (n, rounds, seed) to be mergeable.
  AgmConnectivitySketch(int num_vertices, int rounds, uint64_t seed);

  int num_vertices() const { return num_vertices_; }
  int rounds() const { return rounds_; }

  // Dynamic unweighted edge updates (parallel edges stack; a removal must
  // match a prior insertion or the sketch's vector goes negative, which
  // still cancels correctly as long as the final multiset is a graph).
  void AddEdge(VertexId u, VertexId v);
  void RemoveEdge(VertexId u, VertexId v);

  // Adds all edges recorded in `other` (linearity; edge-disjoint parts).
  void MergeFrom(const AgmConnectivitySketch& other);

  // Extracts a spanning forest via Boruvka over the sketches. Whp the
  // result spans every connected component; with bounded rounds or unlucky
  // sampling it may under-connect (never over-connect: every returned edge
  // is a real edge whp).
  std::vector<Edge> SpanningForest() const;

  // Number of connected components implied by SpanningForest().
  int CountComponents() const;
  bool IsConnected() const;

  // Total size of the maintained linear measurements, in bits.
  int64_t SizeInBits() const;
  // Number of scalar linear measurements maintained.
  int64_t MeasurementCount() const;

 private:
  int64_t EdgeCoordinate(VertexId u, VertexId v) const;

  int num_vertices_;
  int rounds_;
  uint64_t seed_;
  // samplers_[round][vertex]
  std::vector<std::vector<L0Sampler>> samplers_;
};

// Convenience: sketch an existing unweighted graph.
AgmConnectivitySketch SketchGraph(const UndirectedGraph& graph, int rounds,
                                  uint64_t seed);

// k-edge-connectivity from linear measurements ([AGM12], Section on
// k-connectivity): maintain k independent connectivity sketches; at query
// time extract a spanning forest F₁ from the first, *delete* F₁'s edges
// from the second (linearity makes this a local subtraction), extract F₂,
// and so on. The union F₁ ∪ … ∪ F_k is a sparse certificate that preserves
// every cut up to value k — the streaming analogue of
// mincut/SparseCertificate — so cuts of size < k (in particular the global
// min cut, if below k) survive exactly.
class AgmKConnectivitySketch {
 public:
  // `k` nested forests; rounds/seed as in AgmConnectivitySketch.
  AgmKConnectivitySketch(int num_vertices, int k, int rounds, uint64_t seed);

  int num_vertices() const { return num_vertices_; }
  int k() const { return static_cast<int>(layers_.size()); }

  void AddEdge(VertexId u, VertexId v);
  void RemoveEdge(VertexId u, VertexId v);
  void MergeFrom(const AgmKConnectivitySketch& other);

  // The union of the k nested forests (unit weights). Whp it preserves the
  // edge count of every cut of value < k and contains ≥ min(cut, k) edges
  // across every cut.
  UndirectedGraph Certificate() const;

  // The certificate's global min cut. Whp this equals the true min cut
  // whenever that is below k; otherwise it lies in [k, true min cut]
  // (the certificate is a subgraph, so it never overstates any cut).
  double MinCutUpToK() const;

  int64_t SizeInBits() const;

 private:
  int num_vertices_;
  std::vector<AgmConnectivitySketch> layers_;
};

}  // namespace dcs

#endif  // DCS_STREAM_AGM_SKETCH_H_
