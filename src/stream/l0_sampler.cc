#include "stream/l0_sampler.h"

#include <bit>

namespace dcs {
namespace {

constexpr uint64_t kModulus = OneSparseRecovery::kModulus;

// Multiplication mod 2^61 − 1 via 128-bit products.
uint64_t MulMod(uint64_t a, uint64_t b) {
  const unsigned __int128 product =
      static_cast<unsigned __int128>(a) * b;
  const uint64_t low = static_cast<uint64_t>(product & kModulus);
  const uint64_t high = static_cast<uint64_t>(product >> 61);
  uint64_t result = low + high;
  if (result >= kModulus) result -= kModulus;
  return result;
}

uint64_t PowMod(uint64_t base, uint64_t exponent) {
  uint64_t result = 1;
  uint64_t power = base;
  while (exponent > 0) {
    if (exponent & 1) result = MulMod(result, power);
    power = MulMod(power, power);
    exponent >>= 1;
  }
  return result;
}

// Signed value into [0, q).
uint64_t SignedMod(int64_t value) {
  int64_t reduced = value % static_cast<int64_t>(kModulus);
  if (reduced < 0) reduced += static_cast<int64_t>(kModulus);
  return static_cast<uint64_t>(reduced);
}

uint64_t Hash64(uint64_t x, uint64_t seed) {
  x += seed + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

OneSparseRecovery::OneSparseRecovery(uint64_t fingerprint_base)
    : fingerprint_base_(fingerprint_base) {
  DCS_CHECK_GE(fingerprint_base, 2u);
  DCS_CHECK_LT(fingerprint_base, kModulus);
}

void OneSparseRecovery::Update(int64_t index, int64_t delta) {
  UpdateWithPower(index, delta,
                  PowMod(fingerprint_base_, static_cast<uint64_t>(index)));
}

void OneSparseRecovery::UpdateWithPower(int64_t index, int64_t delta,
                                        uint64_t power) {
  DCS_CHECK_GE(index, 0);
  sum_ += delta;
  weighted_ += static_cast<__int128>(delta) * index;
  const uint64_t term = MulMod(SignedMod(delta), power);
  fingerprint_ = fingerprint_ + term;
  if (fingerprint_ >= kModulus) fingerprint_ -= kModulus;
}

void OneSparseRecovery::AppendDigest(uint64_t& digest) const {
  constexpr uint64_t kPrime = 1099511628211ULL;  // FNV-1a 64-bit prime
  const auto fold = [&digest](uint64_t word) {
    digest = (digest ^ word) * kPrime;
  };
  fold(static_cast<uint64_t>(sum_));
  fold(static_cast<uint64_t>(static_cast<unsigned __int128>(weighted_)));
  fold(static_cast<uint64_t>(static_cast<unsigned __int128>(weighted_) >> 64));
  fold(fingerprint_);
}

void OneSparseRecovery::MergeFrom(const OneSparseRecovery& other) {
  DCS_CHECK_EQ(fingerprint_base_, other.fingerprint_base_);
  sum_ += other.sum_;
  weighted_ += other.weighted_;
  fingerprint_ = fingerprint_ + other.fingerprint_;
  if (fingerprint_ >= kModulus) fingerprint_ -= kModulus;
}

bool OneSparseRecovery::IsZero() const {
  return sum_ == 0 && weighted_ == 0 && fingerprint_ == 0;
}

std::optional<L0Sample> OneSparseRecovery::Recover() const {
  if (sum_ == 0) return std::nullopt;
  if (weighted_ % sum_ != 0) return std::nullopt;
  const __int128 index_wide = weighted_ / sum_;
  if (index_wide < 0 ||
      index_wide > static_cast<__int128>(INT64_MAX)) {
    return std::nullopt;
  }
  const int64_t index = static_cast<int64_t>(index_wide);
  // Verify: a 1-sparse vector v·e_i has fingerprint v·r^i.
  const uint64_t expected = MulMod(
      SignedMod(sum_),
      PowMod(fingerprint_base_, static_cast<uint64_t>(index)));
  if (expected != fingerprint_) return std::nullopt;
  return L0Sample{index, sum_};
}

L0Sampler::L0Sampler(int64_t universe, uint64_t seed)
    : universe_(universe), seed_(seed) {
  DCS_CHECK_GE(universe, 1);
  int level_count = 3;
  while ((static_cast<int64_t>(1) << (level_count - 3)) < universe) {
    ++level_count;
  }
  const uint64_t base = 2 + Hash64(seed, 0x5eedULL) % (kModulus - 3);
  levels_.reserve(static_cast<size_t>(level_count));
  for (int j = 0; j < level_count; ++j) {
    levels_.emplace_back(base);
  }
  // Cache base^(2^i) for every bit position an index can occupy, so the
  // per-update exponentiation is one multiply per set index bit. The
  // squaring chain is exactly what PowMod would recompute on every update.
  int index_bits = 1;
  while ((universe_ - 1) >> index_bits != 0) ++index_bits;
  pow_squares_.reserve(static_cast<size_t>(index_bits));
  uint64_t square = base;
  for (int i = 0; i < index_bits; ++i) {
    pow_squares_.push_back(square);
    square = MulMod(square, square);
  }
}

uint64_t L0Sampler::PowerOf(int64_t index) const {
  uint64_t result = 1;
  uint64_t bits = static_cast<uint64_t>(index);
  for (size_t i = 0; bits != 0; ++i, bits >>= 1) {
    if (bits & 1) result = MulMod(result, pow_squares_[i]);
  }
  return result;
}

int L0Sampler::LevelOf(int64_t index) const {
  const uint64_t h = Hash64(static_cast<uint64_t>(index), seed_);
  const int trailing = h == 0 ? 64 : std::countr_zero(h);
  const int max_level = static_cast<int>(levels_.size()) - 1;
  return trailing < max_level ? trailing : max_level;
}

void L0Sampler::Update(int64_t index, int64_t delta) {
  DCS_CHECK_GE(index, 0);
  DCS_CHECK_LT(index, universe_);
  if (delta == 0) return;
  Update(index, delta, PowerOf(index));
}

void L0Sampler::Update(int64_t index, int64_t delta, uint64_t power) {
  DCS_CHECK_GE(index, 0);
  DCS_CHECK_LT(index, universe_);
  if (delta == 0) return;
  const int deepest = LevelOf(index);
  for (int j = 0; j <= deepest; ++j) {
    levels_[static_cast<size_t>(j)].UpdateWithPower(index, delta, power);
  }
}

void L0Sampler::AppendDigest(uint64_t& digest) const {
  for (const OneSparseRecovery& level : levels_) level.AppendDigest(digest);
}

void L0Sampler::MergeFrom(const L0Sampler& other) {
  DCS_CHECK_EQ(universe_, other.universe_);
  DCS_CHECK_EQ(seed_, other.seed_);
  DCS_CHECK_EQ(levels_.size(), other.levels_.size());
  for (size_t j = 0; j < levels_.size(); ++j) {
    levels_[j].MergeFrom(other.levels_[j]);
  }
}

std::optional<L0Sample> L0Sampler::Sample() const {
  // Deepest (sparsest) levels first: the first recoverable level wins.
  for (size_t j = levels_.size(); j-- > 0;) {
    const std::optional<L0Sample> sample = levels_[j].Recover();
    if (sample.has_value()) return sample;
  }
  return std::nullopt;
}

bool L0Sampler::AppearsZero() const {
  for (const OneSparseRecovery& level : levels_) {
    if (!level.IsZero()) return false;
  }
  return true;
}

}  // namespace dcs
