// Concurrent streaming ingestion with snapshot-consistent queries.
//
// The AGM sketches (stream/agm_sketch.h) are linear, so edge updates from
// many producers can be applied in any order — and edge-disjoint parts can
// be sketched independently and merged. StreamIngestor turns that algebra
// into a pipeline:
//
//  * producers Push() inserts/deletes from any number of threads;
//  * each update is admitted into a fixed-capacity per-shard *gutter*
//    (shard = min(u, v) % num_shards, so shards are edge-disjoint), and a
//    full gutter is flushed by the producer that filled it into the shard's
//    incrementally maintained sketch;
//  * Barrier() drains every gutter over the ThreadPool, merges the shard
//    sketches (TryMergeFrom — a mismatch surfaces as a Status, never an
//    abort), and seals an immutable StreamSnapshot under a monotonically
//    increasing epoch number;
//  * queries run against the last sealed snapshot while ingestion
//    continues (snapshot-at-batch-boundary consistency): snapshot() hands
//    out a shared_ptr to frozen state, and EpochCutOracle() adapts it to
//    the CutQueryService registration path.
//
// Because every sketch transition is a commutative addition, the final
// sketch — and therefore every snapshot digest — is bit-identical for any
// producer count, thread count, gutter size, and flush interleaving. Tests
// and bench_stream assert exactly that.
//
// Admission is also where deletions are validated: each shard tracks the
// live multiplicity of its edges (buffered updates included), and a delete
// of an edge that was never inserted is rejected with kFailedPrecondition
// *before* it can reach a sketch. (A raw RemoveEdge of a never-inserted
// edge silently corrupts the linear measurements — see
// stream_test.cc RemoveNeverInsertedEdgeCorruptsRawSketch.)
//
// Lock order: gutter_mutex before apply_mutex within a shard; the barrier
// takes apply mutexes in ascending shard order. No thread ever holds two
// gutter mutexes.

#ifndef DCS_STREAM_INGEST_H_
#define DCS_STREAM_INGEST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/types.h"
#include "graph/ugraph.h"
#include "lowerbound/cut_oracle.h"
#include "stream/agm_sketch.h"
#include "stream/binary_stream.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dcs {

struct StreamIngestorOptions {
  // Edge-disjoint sketch shards (>= 1). More shards reduce producer
  // contention; the sealed result is bit-identical regardless.
  int num_shards = 4;
  // Updates buffered per shard before the admitting producer flushes the
  // gutter into the shard sketch (>= 1).
  int gutter_capacity = 256;
  // Threads used by Barrier() to drain gutters (>= 1).
  int num_threads = 1;
  // Boruvka rounds per connectivity sketch; 0 = the sketch default.
  int rounds = 0;
  // k > 0 maintains AgmKConnectivitySketch shards (sparse cut certificate,
  // min-cut-up-to-k, EpochCutOracle); k == 0 maintains plain
  // AgmConnectivitySketch shards (connectivity/forest only).
  int k = 0;
  // Sketch seed; all shards share it (required for merging).
  uint64_t seed = 1;
};

// Immutable state sealed by one Barrier() call. Queries against a snapshot
// are stable no matter how much ingestion happens afterwards.
struct StreamSnapshot {
  // Monotonically increasing: 0 for the empty pre-ingestion snapshot
  // sealed at construction, +1 per Barrier().
  int64_t epoch = 0;
  // Updates included in this snapshot.
  int64_t updates_applied = 0;
  // Digest of the merged sketch (AgmConnectivitySketch::Digest /
  // AgmKConnectivitySketch::Digest): the bit-identity witness.
  uint64_t digest = 0;

  // Connectivity view (whp correct; see AgmConnectivitySketch).
  std::vector<Edge> forest;
  int components = 0;
  bool connected = false;

  // k > 0 only: the k-forest sparse certificate and its global min cut
  // (exact below k, else a value in [k, true min cut]).
  std::optional<UndirectedGraph> certificate;
  double min_cut_up_to_k = 0.0;
};

class StreamIngestor {
 public:
  explicit StreamIngestor(int num_vertices,
                          StreamIngestorOptions options = {});

  StreamIngestor(const StreamIngestor&) = delete;
  StreamIngestor& operator=(const StreamIngestor&) = delete;

  int num_vertices() const { return num_vertices_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  const StreamIngestorOptions& options() const { return options_; }

  // Admits one update. Thread-safe; any number of concurrent callers.
  //   kInvalidArgument  — endpoint out of [0, n) or a self-loop;
  //   kFailedPrecondition — delete of an edge with live multiplicity 0;
  //   kUnavailable      — the ingestor is draining (Shutdown in progress).
  // Rejected updates leave every sketch and gutter untouched.
  Status Push(const EdgeUpdate& update);
  Status PushInsert(VertexId u, VertexId v);
  Status PushDelete(VertexId u, VertexId v);

  // Drains all gutters (ThreadPool-parallel), merges the shard sketches,
  // and seals a new snapshot. Returns the new epoch number. Updates pushed
  // concurrently with a Barrier land in either this epoch or the next
  // (snapshot-at-batch-boundary consistency); updates admitted before
  // Barrier() is called are always included. Thread-safe; concurrent
  // barriers serialize.
  StatusOr<int64_t> Barrier();

  // The last sealed snapshot (never null). Cheap; safe concurrently with
  // Push and Barrier.
  std::shared_ptr<const StreamSnapshot> snapshot() const;

  // Epoch of the last sealed snapshot.
  int64_t epoch() const { return snapshot()->epoch; }

  // Drain-then-stop (the SIGTERM path): stops admitting (subsequent Push
  // returns kUnavailable), seals every already-accepted update into a final
  // Barrier() epoch, and joins the thread pool. Every update accepted
  // before or during the call is either included in the returned epoch or
  // was rejected with a non-OK Push status — never silently lost. Returns
  // the final epoch. Safe to call concurrently with producers; calling it
  // again seals another (empty-delta) epoch serially.
  StatusOr<int64_t> Shutdown();

  // True once Shutdown has begun; new pushes are being rejected.
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  // Total updates admitted (including still-buffered ones).
  int64_t updates_accepted() const {
    return updates_accepted_.load(std::memory_order_relaxed);
  }

  // A cut oracle over the *current* sealed certificate: each query reads
  // the latest snapshot, so answers move only at epoch boundaries. Register
  // with CutQueryService as cacheable=false (answers change per epoch).
  // Requires options.k > 0 (no certificate is maintained otherwise).
  CutOracle EpochCutOracle() const;

 private:
  struct Shard {
    // Admission state. gutter_mutex also guards `live`: per-edge live
    // multiplicity counting every admitted update (buffered or applied),
    // the ledger that rejects negative-going deletes.
    std::mutex gutter_mutex;
    std::vector<EdgeUpdate> gutter;
    std::unordered_map<int64_t, int64_t> live;

    // Application state: exactly one sketch is engaged (by options.k).
    std::mutex apply_mutex;
    std::optional<AgmConnectivitySketch> sketch;
    std::optional<AgmKConnectivitySketch> ksketch;
    int64_t applied = 0;  // updates applied to the sketch
  };

  // Applies a drained batch to the shard sketch (caller holds apply_mutex).
  void ApplyBatch(Shard& shard, const std::vector<EdgeUpdate>& batch);

  // Swaps the gutter out and applies it (takes both shard mutexes in
  // order).
  void FlushShard(Shard& shard);

  // Merges the shard sketches under all apply mutexes into a snapshot with
  // everything but the epoch number filled in. TryMergeFrom failures (never
  // expected from the ingestor's own same-seed shards) propagate as a
  // Status.
  StatusOr<std::shared_ptr<StreamSnapshot>> SealMerged();

  int num_vertices_;
  StreamIngestorOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ThreadPool pool_;
  std::atomic<int64_t> updates_accepted_{0};
  // Set (before the final flush) by Shutdown; re-checked inside each
  // shard's gutter_mutex so every Push is strictly ordered against the
  // drain barrier: admitted before it (and flushed) or rejected after it.
  std::atomic<bool> draining_{false};

  // Serializes Barrier() calls (also makes ParallelFor single-caller).
  std::mutex barrier_mutex_;

  // Guards snapshot_ swaps; epoch lives inside the snapshot.
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const StreamSnapshot> snapshot_;
};

// Replays every update of `reader` into `ingestor`, sealing an epoch every
// `updates_per_epoch` updates (0 = single final epoch). Stops at the first
// failed update or barrier. Returns the number of updates applied.
StatusOr<int64_t> ReplayStream(BinaryStreamReader& reader,
                               StreamIngestor& ingestor,
                               int64_t updates_per_epoch);

}  // namespace dcs

#endif  // DCS_STREAM_INGEST_H_
