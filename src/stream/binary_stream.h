// Replayable binary edge-update streams.
//
// The streaming ingestion pipeline (stream/ingest.h) consumes sequences of
// dynamic edge updates. This module gives those sequences a durable,
// bit-exact wire form so a workload can be generated once and replayed —
// across runs, across `dcs stream` CLI invocations, and in benchmarks —
// with identical results.
//
// Wire format: a standard checksummed envelope (sketch/serialization.h,
// StreamKind::kEdgeStream) whose payload is
//
//   header:  num_vertices (32 bits) · update_count (64 bits)
//   records: update_count × [ is_delete (1 bit) · u (32 bits) · v (32 bits) ]
//
// Records are fixed-width (65 bits each) so the payload length is a pure
// function of the header: any truncation or bit insertion is caught either
// by the envelope checksum or by the length equation before a single record
// is parsed. Deserialization treats the bytes as hostile and returns
// kDataLoss / kInvalidArgument rather than aborting (DESIGN.md §7).

#ifndef DCS_STREAM_BINARY_STREAM_H_
#define DCS_STREAM_BINARY_STREAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/bitio.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {

// One dynamic edge update. Endpoints are unordered ({u, v} with u != v);
// is_delete distinguishes removal from insertion.
struct EdgeUpdate {
  VertexId u = 0;
  VertexId v = 0;
  bool is_delete = false;
};

// Accumulates updates and seals them into an enveloped kEdgeStream.
class BinaryStreamWriter {
 public:
  // Updates must reference vertices in [0, num_vertices).
  explicit BinaryStreamWriter(int num_vertices);

  // Appends one update. Endpoint range violations and self-loops are
  // programmer errors on the write side (the producer owns the data) and
  // abort via DCS_CHECK.
  void Append(const EdgeUpdate& update);

  int num_vertices() const { return num_vertices_; }
  int64_t update_count() const {
    return static_cast<int64_t>(updates_.size());
  }
  const std::vector<EdgeUpdate>& updates() const { return updates_; }

  // Writes the enveloped stream (header + records, checksummed) to `out`.
  void Seal(BitWriter& out) const;

  // Seals into `path`. kNotFound if the file cannot be opened, kInternal on
  // a failed write.
  Status WriteFile(const std::string& path) const;

 private:
  int num_vertices_;
  std::vector<EdgeUpdate> updates_;
};

// Replays a sealed stream. Construction validates the envelope (magic,
// version, kind, checksum) and the header/length equation; `Next()` then
// parses one record at a time so callers replay arbitrarily long streams
// without materializing them.
class BinaryStreamReader {
 public:
  // Reads one enveloped kEdgeStream from `reader` (cursor advances past
  // it). kDataLoss on corruption, kInvalidArgument on a well-formed
  // envelope carrying an out-of-range header.
  static StatusOr<BinaryStreamReader> FromBytes(BitReader& reader);

  // Loads and validates a stream file. kNotFound if unreadable.
  static StatusOr<BinaryStreamReader> FromFile(const std::string& path);

  int num_vertices() const { return num_vertices_; }
  int64_t update_count() const { return update_count_; }
  int64_t remaining() const { return update_count_ - read_; }
  bool AtEnd() const { return read_ >= update_count_; }

  // The next record. kOutOfRange past the end; kInvalidArgument if the
  // record's endpoints are out of range or equal (a hostile producer —
  // the checksum already vouched for transit integrity).
  StatusOr<EdgeUpdate> Next();

 private:
  BinaryStreamReader(std::shared_ptr<const std::vector<uint8_t>> bytes,
                     int num_vertices, int64_t update_count);

  // Owns the payload bytes; reader_ points into *bytes_, which lives at a
  // stable heap address across moves of this object.
  std::shared_ptr<const std::vector<uint8_t>> bytes_;
  BitReader reader_;
  int num_vertices_ = 0;
  int64_t update_count_ = 0;
  int64_t read_ = 0;
};

// A reproducible random workload: `count` updates over `num_vertices`
// vertices where each update is a deletion with probability
// `delete_fraction` — but only of an edge currently live (multiplicity
// ≥ 1 counting earlier updates), so every prefix of the stream is a valid
// multigraph history. Used by bench_stream and `dcs stream --make`.
std::vector<EdgeUpdate> RandomUpdateStream(int num_vertices, int64_t count,
                                           double delete_fraction, Rng& rng);

}  // namespace dcs

#endif  // DCS_STREAM_BINARY_STREAM_H_
