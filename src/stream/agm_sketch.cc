#include "stream/agm_sketch.h"

#include <string>
#include <utility>

#include "graph/connectivity.h"
#include "mincut/stoer_wagner.h"
#include "util/union_find.h"

namespace dcs {
namespace {

int DefaultRounds(int n) {
  int rounds = 2;
  while ((1 << (rounds - 2)) < n) ++rounds;
  return rounds;
}

}  // namespace

AgmConnectivitySketch::AgmConnectivitySketch(int num_vertices, int rounds,
                                             uint64_t seed)
    : num_vertices_(num_vertices),
      rounds_(rounds > 0 ? rounds : DefaultRounds(num_vertices)),
      seed_(seed) {
  DCS_CHECK_GE(num_vertices, 1);
  const int64_t universe =
      static_cast<int64_t>(num_vertices_) * num_vertices_;
  samplers_.reserve(static_cast<size_t>(rounds_));
  for (int r = 0; r < rounds_; ++r) {
    std::vector<L0Sampler> row;
    row.reserve(static_cast<size_t>(num_vertices_));
    for (int v = 0; v < num_vertices_; ++v) {
      // All samplers of one round share a seed (mergeable); rounds differ.
      row.emplace_back(universe, seed_ * 1000003ULL + static_cast<uint64_t>(r));
    }
    samplers_.push_back(std::move(row));
  }
}

int64_t AgmConnectivitySketch::EdgeCoordinate(VertexId u, VertexId v) const {
  DCS_CHECK(u >= 0 && u < num_vertices_);
  DCS_CHECK(v >= 0 && v < num_vertices_);
  DCS_CHECK_NE(u, v);
  if (u > v) std::swap(u, v);
  return static_cast<int64_t>(u) * num_vertices_ + v;
}

void AgmConnectivitySketch::AddEdge(VertexId u, VertexId v) {
  const int64_t coordinate = EdgeCoordinate(u, v);
  const VertexId low = u < v ? u : v;
  const VertexId high = u < v ? v : u;
  for (int r = 0; r < rounds_; ++r) {
    auto& row = samplers_[static_cast<size_t>(r)];
    // Both endpoints' samplers share the round seed, hence the fingerprint
    // base: compute r^coordinate once per round and reuse it for the +1/−1
    // pair. This is the streaming hot path — an update is two sampler
    // writes per round, and the modular exponentiation dominated both.
    const uint64_t power =
        row[static_cast<size_t>(low)].PowerOf(coordinate);
    row[static_cast<size_t>(low)].Update(coordinate, +1, power);
    row[static_cast<size_t>(high)].Update(coordinate, -1, power);
  }
}

void AgmConnectivitySketch::RemoveEdge(VertexId u, VertexId v) {
  const int64_t coordinate = EdgeCoordinate(u, v);
  const VertexId low = u < v ? u : v;
  const VertexId high = u < v ? v : u;
  for (int r = 0; r < rounds_; ++r) {
    auto& row = samplers_[static_cast<size_t>(r)];
    const uint64_t power =
        row[static_cast<size_t>(low)].PowerOf(coordinate);
    row[static_cast<size_t>(low)].Update(coordinate, -1, power);
    row[static_cast<size_t>(high)].Update(coordinate, +1, power);
  }
}

void AgmConnectivitySketch::MergeFrom(const AgmConnectivitySketch& other) {
  const Status status = TryMergeFrom(other);
  DCS_CHECK(status.ok());
}

Status AgmConnectivitySketch::TryMergeFrom(
    const AgmConnectivitySketch& other) {
  if (num_vertices_ != other.num_vertices_) {
    return InvalidArgumentError(
        "cannot merge AGM sketches over different vertex counts (" +
        std::to_string(num_vertices_) + " vs " +
        std::to_string(other.num_vertices_) + ")");
  }
  if (rounds_ != other.rounds_) {
    return InvalidArgumentError(
        "cannot merge AGM sketches with different round counts (" +
        std::to_string(rounds_) + " vs " + std::to_string(other.rounds_) +
        ")");
  }
  if (seed_ != other.seed_) {
    return InvalidArgumentError(
        "cannot merge AGM sketches built from different seeds (" +
        std::to_string(seed_) + " vs " + std::to_string(other.seed_) + ")");
  }
  for (int r = 0; r < rounds_; ++r) {
    for (int v = 0; v < num_vertices_; ++v) {
      samplers_[static_cast<size_t>(r)][static_cast<size_t>(v)].MergeFrom(
          other.samplers_[static_cast<size_t>(r)][static_cast<size_t>(v)]);
    }
  }
  return OkStatus();
}

uint64_t AgmConnectivitySketch::Digest() const {
  constexpr uint64_t kOffset = 14695981039346656037ULL;  // FNV-1a offset
  constexpr uint64_t kPrime = 1099511628211ULL;
  uint64_t digest = kOffset;
  const auto fold = [&digest](uint64_t word) {
    digest = (digest ^ word) * kPrime;
  };
  fold(static_cast<uint64_t>(num_vertices_));
  fold(static_cast<uint64_t>(rounds_));
  fold(seed_);
  for (const auto& row : samplers_) {
    for (const L0Sampler& sampler : row) sampler.AppendDigest(digest);
  }
  return digest;
}

std::vector<Edge> AgmConnectivitySketch::SpanningForest() const {
  const int n = num_vertices_;
  UnionFind components(n);
  auto find = [&components](int v) { return components.Find(v); };

  // Per-component merged sampler, one per round, held at the root. Copies
  // so extraction does not disturb the sketch.
  std::vector<std::vector<L0Sampler>> component = samplers_;
  // component[r][root] is the merged round-r sampler of root's component.
  std::vector<Edge> forest;
  for (int r = 0; r < rounds_; ++r) {
    // Collect one candidate outgoing edge per component root.
    std::vector<std::pair<VertexId, VertexId>> candidates;
    for (int v = 0; v < n; ++v) {
      if (find(v) != v) continue;
      const std::optional<L0Sample> sample =
          component[static_cast<size_t>(r)][static_cast<size_t>(v)].Sample();
      if (!sample.has_value()) continue;
      const VertexId u = static_cast<VertexId>(sample->index / n);
      const VertexId w = static_cast<VertexId>(sample->index % n);
      if (u < 0 || u >= n || w < 0 || w >= n || u == w) continue;
      candidates.emplace_back(u, w);
    }
    bool merged_any = false;
    for (const auto& [u, w] : candidates) {
      const int root_u = find(u);
      const int root_w = find(w);
      if (root_u == root_w) continue;
      // Union: merge w's component into u's and combine the samplers of
      // every remaining round. The directed union keeps root_u as the
      // representative, matching where the merged samplers live.
      components.UnionInto(root_w, root_u);
      for (int rr = 0; rr < rounds_; ++rr) {
        component[static_cast<size_t>(rr)][static_cast<size_t>(root_u)]
            .MergeFrom(component[static_cast<size_t>(rr)]
                                [static_cast<size_t>(root_w)]);
      }
      forest.push_back(Edge{u, w, 1.0});
      merged_any = true;
    }
    if (!merged_any && r > 0) {
      // Components stopped merging: either done or every boundary sampler
      // failed this round; later rounds are fresh, so keep going only if
      // some component still looks non-isolated.
      bool any_boundary = false;
      for (int v = 0; v < n && !any_boundary; ++v) {
        if (find(v) != v) continue;
        if (!component[static_cast<size_t>(r)][static_cast<size_t>(v)]
                 .AppearsZero()) {
          any_boundary = true;
        }
      }
      if (!any_boundary) break;
    }
  }
  return forest;
}

int AgmConnectivitySketch::CountComponents() const {
  return num_vertices_ - static_cast<int>(SpanningForest().size());
}

bool AgmConnectivitySketch::IsConnected() const {
  return CountComponents() == 1;
}

int64_t AgmConnectivitySketch::SizeInBits() const {
  int64_t total = 0;
  for (const auto& row : samplers_) {
    for (const L0Sampler& sampler : row) total += sampler.SizeInBits();
  }
  return total;
}

int64_t AgmConnectivitySketch::MeasurementCount() const {
  int64_t total = 0;
  for (const auto& row : samplers_) {
    for (const L0Sampler& sampler : row) total += 3 * sampler.levels();
  }
  return total;
}

AgmKConnectivitySketch::AgmKConnectivitySketch(int num_vertices, int k,
                                               int rounds, uint64_t seed)
    : num_vertices_(num_vertices) {
  DCS_CHECK_GE(k, 1);
  layers_.reserve(static_cast<size_t>(k));
  for (int layer = 0; layer < k; ++layer) {
    // Independent seeds per layer; rounds shared.
    layers_.emplace_back(num_vertices, rounds,
                         seed + 0x9e3779b9ULL * static_cast<uint64_t>(layer + 1));
  }
}

void AgmKConnectivitySketch::AddEdge(VertexId u, VertexId v) {
  for (AgmConnectivitySketch& layer : layers_) layer.AddEdge(u, v);
}

void AgmKConnectivitySketch::RemoveEdge(VertexId u, VertexId v) {
  for (AgmConnectivitySketch& layer : layers_) layer.RemoveEdge(u, v);
}

void AgmKConnectivitySketch::MergeFrom(const AgmKConnectivitySketch& other) {
  const Status status = TryMergeFrom(other);
  DCS_CHECK(status.ok());
}

Status AgmKConnectivitySketch::TryMergeFrom(
    const AgmKConnectivitySketch& other) {
  if (num_vertices_ != other.num_vertices_) {
    return InvalidArgumentError(
        "cannot merge k-connectivity sketches over different vertex counts "
        "(" +
        std::to_string(num_vertices_) + " vs " +
        std::to_string(other.num_vertices_) + ")");
  }
  if (layers_.size() != other.layers_.size()) {
    return InvalidArgumentError(
        "cannot merge k-connectivity sketches with different k (" +
        std::to_string(layers_.size()) + " vs " +
        std::to_string(other.layers_.size()) + ")");
  }
  // Validate every layer before mutating any: a failed merge must not leave
  // this sketch half-merged.
  for (size_t layer = 0; layer < layers_.size(); ++layer) {
    if (layers_[layer].rounds() != other.layers_[layer].rounds()) {
      return InvalidArgumentError(
          "cannot merge k-connectivity sketches with different round "
          "counts in layer " +
          std::to_string(layer));
    }
  }
  for (size_t layer = 0; layer < layers_.size(); ++layer) {
    DCS_RETURN_IF_ERROR(layers_[layer].TryMergeFrom(other.layers_[layer]));
  }
  return OkStatus();
}

uint64_t AgmKConnectivitySketch::Digest() const {
  constexpr uint64_t kPrime = 1099511628211ULL;
  uint64_t digest = 0x6b636f6e6e556565ULL;  // distinct k-sketch offset
  for (const AgmConnectivitySketch& layer : layers_) {
    digest = (digest ^ layer.Digest()) * kPrime;
  }
  return digest;
}

UndirectedGraph AgmKConnectivitySketch::Certificate() const {
  UndirectedGraph certificate(num_vertices_);
  // Work on copies so extraction leaves the sketch intact; forests peeled
  // from earlier layers are deleted from all later layers.
  std::vector<AgmConnectivitySketch> layers = layers_;
  for (size_t layer = 0; layer < layers.size(); ++layer) {
    const std::vector<Edge> forest = layers[layer].SpanningForest();
    for (const Edge& e : forest) {
      certificate.AddEdge(e.src, e.dst, 1.0);
      for (size_t later = layer + 1; later < layers.size(); ++later) {
        layers[later].RemoveEdge(e.src, e.dst);
      }
    }
  }
  return certificate;
}

double AgmKConnectivitySketch::MinCutUpToK() const {
  const UndirectedGraph certificate = Certificate();
  if (certificate.num_edges() == 0) return 0;
  if (!IsConnected(certificate)) return 0;
  return StoerWagnerMinCut(certificate).value;
}

int64_t AgmKConnectivitySketch::SizeInBits() const {
  int64_t total = 0;
  for (const AgmConnectivitySketch& layer : layers_) {
    total += layer.SizeInBits();
  }
  return total;
}

AgmConnectivitySketch SketchGraph(const UndirectedGraph& graph, int rounds,
                                  uint64_t seed) {
  AgmConnectivitySketch sketch(graph.num_vertices(), rounds, seed);
  for (const Edge& e : graph.edges()) {
    DCS_CHECK_EQ(e.weight, 1.0);
    sketch.AddEdge(e.src, e.dst);
  }
  return sketch;
}

}  // namespace dcs
