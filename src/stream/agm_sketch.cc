#include "stream/agm_sketch.h"

#include <utility>

#include "graph/connectivity.h"
#include "mincut/stoer_wagner.h"
#include "util/union_find.h"

namespace dcs {
namespace {

int DefaultRounds(int n) {
  int rounds = 2;
  while ((1 << (rounds - 2)) < n) ++rounds;
  return rounds;
}

}  // namespace

AgmConnectivitySketch::AgmConnectivitySketch(int num_vertices, int rounds,
                                             uint64_t seed)
    : num_vertices_(num_vertices),
      rounds_(rounds > 0 ? rounds : DefaultRounds(num_vertices)),
      seed_(seed) {
  DCS_CHECK_GE(num_vertices, 1);
  const int64_t universe =
      static_cast<int64_t>(num_vertices_) * num_vertices_;
  samplers_.reserve(static_cast<size_t>(rounds_));
  for (int r = 0; r < rounds_; ++r) {
    std::vector<L0Sampler> row;
    row.reserve(static_cast<size_t>(num_vertices_));
    for (int v = 0; v < num_vertices_; ++v) {
      // All samplers of one round share a seed (mergeable); rounds differ.
      row.emplace_back(universe, seed_ * 1000003ULL + static_cast<uint64_t>(r));
    }
    samplers_.push_back(std::move(row));
  }
}

int64_t AgmConnectivitySketch::EdgeCoordinate(VertexId u, VertexId v) const {
  DCS_CHECK(u >= 0 && u < num_vertices_);
  DCS_CHECK(v >= 0 && v < num_vertices_);
  DCS_CHECK_NE(u, v);
  if (u > v) std::swap(u, v);
  return static_cast<int64_t>(u) * num_vertices_ + v;
}

void AgmConnectivitySketch::AddEdge(VertexId u, VertexId v) {
  const int64_t coordinate = EdgeCoordinate(u, v);
  const VertexId low = u < v ? u : v;
  const VertexId high = u < v ? v : u;
  for (int r = 0; r < rounds_; ++r) {
    samplers_[static_cast<size_t>(r)][static_cast<size_t>(low)].Update(
        coordinate, +1);
    samplers_[static_cast<size_t>(r)][static_cast<size_t>(high)].Update(
        coordinate, -1);
  }
}

void AgmConnectivitySketch::RemoveEdge(VertexId u, VertexId v) {
  const int64_t coordinate = EdgeCoordinate(u, v);
  const VertexId low = u < v ? u : v;
  const VertexId high = u < v ? v : u;
  for (int r = 0; r < rounds_; ++r) {
    samplers_[static_cast<size_t>(r)][static_cast<size_t>(low)].Update(
        coordinate, -1);
    samplers_[static_cast<size_t>(r)][static_cast<size_t>(high)].Update(
        coordinate, +1);
  }
}

void AgmConnectivitySketch::MergeFrom(const AgmConnectivitySketch& other) {
  DCS_CHECK_EQ(num_vertices_, other.num_vertices_);
  DCS_CHECK_EQ(rounds_, other.rounds_);
  DCS_CHECK_EQ(seed_, other.seed_);
  for (int r = 0; r < rounds_; ++r) {
    for (int v = 0; v < num_vertices_; ++v) {
      samplers_[static_cast<size_t>(r)][static_cast<size_t>(v)].MergeFrom(
          other.samplers_[static_cast<size_t>(r)][static_cast<size_t>(v)]);
    }
  }
}

std::vector<Edge> AgmConnectivitySketch::SpanningForest() const {
  const int n = num_vertices_;
  UnionFind components(n);
  auto find = [&components](int v) { return components.Find(v); };

  // Per-component merged sampler, one per round, held at the root. Copies
  // so extraction does not disturb the sketch.
  std::vector<std::vector<L0Sampler>> component = samplers_;
  // component[r][root] is the merged round-r sampler of root's component.
  std::vector<Edge> forest;
  for (int r = 0; r < rounds_; ++r) {
    // Collect one candidate outgoing edge per component root.
    std::vector<std::pair<VertexId, VertexId>> candidates;
    for (int v = 0; v < n; ++v) {
      if (find(v) != v) continue;
      const std::optional<L0Sample> sample =
          component[static_cast<size_t>(r)][static_cast<size_t>(v)].Sample();
      if (!sample.has_value()) continue;
      const VertexId u = static_cast<VertexId>(sample->index / n);
      const VertexId w = static_cast<VertexId>(sample->index % n);
      if (u < 0 || u >= n || w < 0 || w >= n || u == w) continue;
      candidates.emplace_back(u, w);
    }
    bool merged_any = false;
    for (const auto& [u, w] : candidates) {
      const int root_u = find(u);
      const int root_w = find(w);
      if (root_u == root_w) continue;
      // Union: merge w's component into u's and combine the samplers of
      // every remaining round. The directed union keeps root_u as the
      // representative, matching where the merged samplers live.
      components.UnionInto(root_w, root_u);
      for (int rr = 0; rr < rounds_; ++rr) {
        component[static_cast<size_t>(rr)][static_cast<size_t>(root_u)]
            .MergeFrom(component[static_cast<size_t>(rr)]
                                [static_cast<size_t>(root_w)]);
      }
      forest.push_back(Edge{u, w, 1.0});
      merged_any = true;
    }
    if (!merged_any && r > 0) {
      // Components stopped merging: either done or every boundary sampler
      // failed this round; later rounds are fresh, so keep going only if
      // some component still looks non-isolated.
      bool any_boundary = false;
      for (int v = 0; v < n && !any_boundary; ++v) {
        if (find(v) != v) continue;
        if (!component[static_cast<size_t>(r)][static_cast<size_t>(v)]
                 .AppearsZero()) {
          any_boundary = true;
        }
      }
      if (!any_boundary) break;
    }
  }
  return forest;
}

int AgmConnectivitySketch::CountComponents() const {
  return num_vertices_ - static_cast<int>(SpanningForest().size());
}

bool AgmConnectivitySketch::IsConnected() const {
  return CountComponents() == 1;
}

int64_t AgmConnectivitySketch::SizeInBits() const {
  int64_t total = 0;
  for (const auto& row : samplers_) {
    for (const L0Sampler& sampler : row) total += sampler.SizeInBits();
  }
  return total;
}

int64_t AgmConnectivitySketch::MeasurementCount() const {
  int64_t total = 0;
  for (const auto& row : samplers_) {
    for (const L0Sampler& sampler : row) total += 3 * sampler.levels();
  }
  return total;
}

AgmKConnectivitySketch::AgmKConnectivitySketch(int num_vertices, int k,
                                               int rounds, uint64_t seed)
    : num_vertices_(num_vertices) {
  DCS_CHECK_GE(k, 1);
  layers_.reserve(static_cast<size_t>(k));
  for (int layer = 0; layer < k; ++layer) {
    // Independent seeds per layer; rounds shared.
    layers_.emplace_back(num_vertices, rounds,
                         seed + 0x9e3779b9ULL * static_cast<uint64_t>(layer + 1));
  }
}

void AgmKConnectivitySketch::AddEdge(VertexId u, VertexId v) {
  for (AgmConnectivitySketch& layer : layers_) layer.AddEdge(u, v);
}

void AgmKConnectivitySketch::RemoveEdge(VertexId u, VertexId v) {
  for (AgmConnectivitySketch& layer : layers_) layer.RemoveEdge(u, v);
}

void AgmKConnectivitySketch::MergeFrom(const AgmKConnectivitySketch& other) {
  DCS_CHECK_EQ(num_vertices_, other.num_vertices_);
  DCS_CHECK_EQ(layers_.size(), other.layers_.size());
  for (size_t layer = 0; layer < layers_.size(); ++layer) {
    layers_[layer].MergeFrom(other.layers_[layer]);
  }
}

UndirectedGraph AgmKConnectivitySketch::Certificate() const {
  UndirectedGraph certificate(num_vertices_);
  // Work on copies so extraction leaves the sketch intact; forests peeled
  // from earlier layers are deleted from all later layers.
  std::vector<AgmConnectivitySketch> layers = layers_;
  for (size_t layer = 0; layer < layers.size(); ++layer) {
    const std::vector<Edge> forest = layers[layer].SpanningForest();
    for (const Edge& e : forest) {
      certificate.AddEdge(e.src, e.dst, 1.0);
      for (size_t later = layer + 1; later < layers.size(); ++later) {
        layers[later].RemoveEdge(e.src, e.dst);
      }
    }
  }
  return certificate;
}

double AgmKConnectivitySketch::MinCutUpToK() const {
  const UndirectedGraph certificate = Certificate();
  if (certificate.num_edges() == 0) return 0;
  if (!IsConnected(certificate)) return 0;
  return StoerWagnerMinCut(certificate).value;
}

int64_t AgmKConnectivitySketch::SizeInBits() const {
  int64_t total = 0;
  for (const AgmConnectivitySketch& layer : layers_) {
    total += layer.SizeInBits();
  }
  return total;
}

AgmConnectivitySketch SketchGraph(const UndirectedGraph& graph, int rounds,
                                  uint64_t seed) {
  AgmConnectivitySketch sketch(graph.num_vertices(), rounds, seed);
  for (const Edge& e : graph.edges()) {
    DCS_CHECK_EQ(e.weight, 1.0);
    sketch.AddEdge(e.src, e.dst);
  }
  return sketch;
}

}  // namespace dcs
