#include "stream/ingest.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/union_find.h"

namespace dcs {
namespace {

// Packs a canonical edge {lo, hi} (lo < hi) into the shard ledger key.
int64_t EdgeKey(VertexId lo, VertexId hi) {
  return (static_cast<int64_t>(lo) << 32) | static_cast<int64_t>(hi);
}

// A spanning forest of `graph` plus the implied component count.
void ForestOf(const UndirectedGraph& graph, std::vector<Edge>& forest,
              int& components) {
  UnionFind uf(graph.num_vertices());
  forest.clear();
  for (const Edge& e : graph.edges()) {
    if (uf.Union(e.src, e.dst)) forest.push_back(e);
  }
  components = graph.num_vertices() - static_cast<int>(forest.size());
}

}  // namespace

StreamIngestor::StreamIngestor(int num_vertices, StreamIngestorOptions options)
    : num_vertices_(num_vertices),
      options_(options),
      pool_(std::max(1, options.num_threads)) {
  DCS_CHECK_GE(num_vertices, 2);
  DCS_CHECK_GE(options.num_shards, 1);
  DCS_CHECK_GE(options.gutter_capacity, 1);
  DCS_CHECK_GE(options.num_threads, 1);
  DCS_CHECK_GE(options.rounds, 0);
  DCS_CHECK_GE(options.k, 0);
  shards_.reserve(static_cast<size_t>(options.num_shards));
  for (int s = 0; s < options.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    if (options.k == 0) {
      shard->sketch.emplace(num_vertices, options.rounds, options.seed);
    } else {
      shard->ksketch.emplace(num_vertices, options.k, options.rounds,
                             options.seed);
    }
    shard->gutter.reserve(static_cast<size_t>(options.gutter_capacity));
    shards_.push_back(std::move(shard));
  }
  // Seal the empty epoch-0 snapshot so queries are well-defined before the
  // first Barrier(). Merging fresh same-seed shards cannot fail.
  StatusOr<std::shared_ptr<StreamSnapshot>> initial = SealMerged();
  DCS_CHECK(initial.ok());
  (*initial)->epoch = 0;
  snapshot_ = std::move(*initial);
}

Status StreamIngestor::Push(const EdgeUpdate& update) {
  if (update.u < 0 || update.u >= num_vertices_ || update.v < 0 ||
      update.v >= num_vertices_) {
    return InvalidArgumentError(
        "update endpoint out of range [0, " + std::to_string(num_vertices_) +
        "): " + std::to_string(update.u) + " -- " + std::to_string(update.v));
  }
  if (update.u == update.v) {
    return InvalidArgumentError("update is a self-loop at vertex " +
                                std::to_string(update.u));
  }
  const VertexId lo = std::min(update.u, update.v);
  const VertexId hi = std::max(update.u, update.v);
  Shard& shard = *shards_[static_cast<size_t>(lo % num_shards())];
  {
    std::unique_lock<std::mutex> lock(shard.gutter_mutex);
    // Checked under the gutter mutex: Shutdown's final flush takes this
    // mutex after setting draining_, so a Push either precedes that flush
    // (accepted and sealed) or observes the flag (rejected). No accepted
    // update can slip past the final epoch.
    if (draining_.load(std::memory_order_acquire)) {
      return UnavailableError("ingestor is draining: update rejected");
    }
    const int64_t key = EdgeKey(lo, hi);
    if (update.is_delete) {
      const auto it = shard.live.find(key);
      if (it == shard.live.end()) {
        return FailedPreconditionError(
            "delete of edge " + std::to_string(lo) + " -- " +
            std::to_string(hi) +
            " with live multiplicity 0 (never inserted or already deleted)");
      }
      if (--it->second == 0) shard.live.erase(it);
    } else {
      ++shard.live[key];
    }
    shard.gutter.push_back(EdgeUpdate{lo, hi, update.is_delete});
    if (static_cast<int>(shard.gutter.size()) >= options_.gutter_capacity) {
      std::vector<EdgeUpdate> batch;
      batch.swap(shard.gutter);
      shard.gutter.reserve(static_cast<size_t>(options_.gutter_capacity));
      // Acquire the apply mutex before releasing the gutter mutex (the
      // documented lock order), so a barrier cannot seal a snapshot in the
      // window between this swap and the apply — the swapped batch is
      // always applied before SealMerged can freeze this shard. The gutter
      // is released before the (per-update-cost) apply, so admission on
      // this shard resumes immediately.
      std::lock_guard<std::mutex> apply_lock(shard.apply_mutex);
      lock.unlock();
      ApplyBatch(shard, batch);
    }
  }
  updates_accepted_.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status StreamIngestor::PushInsert(VertexId u, VertexId v) {
  return Push(EdgeUpdate{u, v, false});
}

Status StreamIngestor::PushDelete(VertexId u, VertexId v) {
  return Push(EdgeUpdate{u, v, true});
}

void StreamIngestor::ApplyBatch(Shard& shard,
                                const std::vector<EdgeUpdate>& batch) {
  for (const EdgeUpdate& update : batch) {
    if (options_.k == 0) {
      if (update.is_delete) {
        shard.sketch->RemoveEdge(update.u, update.v);
      } else {
        shard.sketch->AddEdge(update.u, update.v);
      }
    } else {
      if (update.is_delete) {
        shard.ksketch->RemoveEdge(update.u, update.v);
      } else {
        shard.ksketch->AddEdge(update.u, update.v);
      }
    }
  }
  shard.applied += static_cast<int64_t>(batch.size());
}

void StreamIngestor::FlushShard(Shard& shard) {
  std::vector<EdgeUpdate> batch;
  {
    std::lock_guard<std::mutex> lock(shard.gutter_mutex);
    if (shard.gutter.empty()) return;
    batch.swap(shard.gutter);
    shard.gutter.reserve(static_cast<size_t>(options_.gutter_capacity));
  }
  std::lock_guard<std::mutex> lock(shard.apply_mutex);
  ApplyBatch(shard, batch);
}

StatusOr<std::shared_ptr<StreamSnapshot>> StreamIngestor::SealMerged() {
  // Freeze every shard sketch at once (ascending order; producers mid-flush
  // block here, producers mid-admission do not).
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    locks.emplace_back(shard->apply_mutex);
  }
  auto snapshot = std::make_shared<StreamSnapshot>();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    snapshot->updates_applied += shard->applied;
  }
  if (options_.k == 0) {
    AgmConnectivitySketch merged(num_vertices_, options_.rounds,
                                 options_.seed);
    for (const std::unique_ptr<Shard>& shard : shards_) {
      DCS_RETURN_IF_ERROR(merged.TryMergeFrom(*shard->sketch));
    }
    // The merge is done; Boruvka extraction works on the private copy, so
    // producers may resume flushing.
    locks.clear();
    snapshot->digest = merged.Digest();
    snapshot->forest = merged.SpanningForest();
    // A forest is acyclic, so components = n − |forest|.
    snapshot->components =
        num_vertices_ - static_cast<int>(snapshot->forest.size());
  } else {
    AgmKConnectivitySketch merged(num_vertices_, options_.k, options_.rounds,
                                  options_.seed);
    for (const std::unique_ptr<Shard>& shard : shards_) {
      DCS_RETURN_IF_ERROR(merged.TryMergeFrom(*shard->ksketch));
    }
    locks.clear();
    snapshot->digest = merged.Digest();
    snapshot->certificate = merged.Certificate();
    snapshot->min_cut_up_to_k = merged.MinCutUpToK();
    ForestOf(*snapshot->certificate, snapshot->forest, snapshot->components);
  }
  snapshot->connected = snapshot->components == 1;
  return snapshot;
}

StatusOr<int64_t> StreamIngestor::Barrier() {
  std::lock_guard<std::mutex> barrier_lock(barrier_mutex_);
  pool_.ParallelFor(num_shards(), [this](int64_t s) {
    FlushShard(*shards_[static_cast<size_t>(s)]);
  });
  DCS_ASSIGN_OR_RETURN(std::shared_ptr<StreamSnapshot> snapshot, SealMerged());
  std::lock_guard<std::mutex> snapshot_lock(snapshot_mutex_);
  snapshot->epoch = snapshot_->epoch + 1;
  snapshot_ = std::move(snapshot);
  return snapshot_->epoch;
}

StatusOr<int64_t> StreamIngestor::Shutdown() {
  // Order matters: the flag goes up first, then the final barrier's
  // FlushShard walks every gutter mutex. Any Push that was admitted under
  // a gutter mutex before the flush reached it is in that gutter (or
  // already applied under the shard's apply mutex, which SealMerged also
  // takes); any Push after sees draining_ and is rejected.
  draining_.store(true, std::memory_order_release);
  DCS_ASSIGN_OR_RETURN(const int64_t epoch, Barrier());
  pool_.Shutdown();
  return epoch;
}

std::shared_ptr<const StreamSnapshot> StreamIngestor::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

CutOracle StreamIngestor::EpochCutOracle() const {
  DCS_CHECK_GT(options_.k, 0);
  return CutOracle([this](const VertexSet& side) -> double {
    const std::shared_ptr<const StreamSnapshot> snap = snapshot();
    return snap->certificate->CutWeight(side);
  });
}

StatusOr<int64_t> ReplayStream(BinaryStreamReader& reader,
                               StreamIngestor& ingestor,
                               int64_t updates_per_epoch) {
  DCS_CHECK_GE(updates_per_epoch, 0);
  int64_t applied = 0;
  int64_t since_barrier = 0;
  while (!reader.AtEnd()) {
    DCS_ASSIGN_OR_RETURN(const EdgeUpdate update, reader.Next());
    DCS_RETURN_IF_ERROR(ingestor.Push(update));
    ++applied;
    if (updates_per_epoch > 0 && ++since_barrier >= updates_per_epoch) {
      DCS_RETURN_IF_ERROR(ingestor.Barrier().status());
      since_barrier = 0;
    }
  }
  DCS_RETURN_IF_ERROR(ingestor.Barrier().status());
  return applied;
}

}  // namespace dcs
