#include "stream/binary_stream.h"

#include <fstream>
#include <utility>

#include "sketch/serialization.h"

namespace dcs {
namespace {

// Payload geometry. Fixed-width records make the length a pure function of
// the header, so corruption is detected before any record is parsed.
constexpr int64_t kHeaderBits = 32 + 64;        // num_vertices · update_count
constexpr int64_t kRecordBits = 1 + 32 + 32;    // is_delete · u · v

// Matches the serialization-layer vertex cap (kMaxVertices in
// sketch/serialization.cc).
constexpr uint64_t kMaxStreamVertices = uint64_t{1} << 28;

}  // namespace

BinaryStreamWriter::BinaryStreamWriter(int num_vertices)
    : num_vertices_(num_vertices) {
  DCS_CHECK_GE(num_vertices, 1);
  DCS_CHECK_LE(static_cast<uint64_t>(num_vertices), kMaxStreamVertices);
}

void BinaryStreamWriter::Append(const EdgeUpdate& update) {
  DCS_CHECK_GE(update.u, 0);
  DCS_CHECK_LT(update.u, num_vertices_);
  DCS_CHECK_GE(update.v, 0);
  DCS_CHECK_LT(update.v, num_vertices_);
  DCS_CHECK_NE(update.u, update.v);
  updates_.push_back(update);
}

void BinaryStreamWriter::Seal(BitWriter& out) const {
  BitWriter payload;
  payload.WriteBits(static_cast<uint64_t>(num_vertices_), 32);
  payload.WriteBits(static_cast<uint64_t>(updates_.size()), 64);
  for (const EdgeUpdate& update : updates_) {
    payload.WriteBits(update.is_delete ? 1 : 0, 1);
    payload.WriteBits(static_cast<uint64_t>(update.u), 32);
    payload.WriteBits(static_cast<uint64_t>(update.v), 32);
  }
  WriteEnvelope(StreamKind::kEdgeStream, payload, out);
}

Status BinaryStreamWriter::WriteFile(const std::string& path) const {
  BitWriter out;
  Seal(out);
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return NotFoundError("cannot open '" + path + "' for writing");
  }
  file.write(reinterpret_cast<const char*>(out.bytes().data()),
             static_cast<std::streamsize>(out.bytes().size()));
  if (!file) return InternalError("write to '" + path + "' failed");
  return OkStatus();
}

BinaryStreamReader::BinaryStreamReader(
    std::shared_ptr<const std::vector<uint8_t>> bytes, int num_vertices,
    int64_t update_count)
    : bytes_(std::move(bytes)),
      reader_(*bytes_),
      num_vertices_(num_vertices),
      update_count_(update_count) {
  reader_.ReadBits(32);  // skip num_vertices
  reader_.ReadBits(64);  // skip update_count
}

StatusOr<BinaryStreamReader> BinaryStreamReader::FromBytes(BitReader& reader) {
  DCS_ASSIGN_OR_RETURN(EnvelopePayload payload,
                       ReadEnvelopePayload(StreamKind::kEdgeStream, reader));
  if (payload.bit_count < kHeaderBits) {
    return DataLossError("edge stream payload of " +
                         std::to_string(payload.bit_count) +
                         " bits cannot hold the header");
  }
  BitReader header(payload.bytes);
  const uint64_t n = header.ReadBits(32);
  const uint64_t count = header.ReadBits(64);
  if (n < 1 || n > kMaxStreamVertices) {
    return InvalidArgumentError("edge stream declares " + std::to_string(n) +
                                " vertices (cap " +
                                std::to_string(kMaxStreamVertices) + ")");
  }
  const uint64_t max_count =
      static_cast<uint64_t>((payload.bit_count - kHeaderBits) / kRecordBits);
  if (count > max_count ||
      kHeaderBits + static_cast<int64_t>(count) * kRecordBits !=
          payload.bit_count) {
    return DataLossError(
        "edge stream declares " + std::to_string(count) + " updates but " +
        std::to_string(payload.bit_count) + " payload bits were sent");
  }
  return BinaryStreamReader(
      std::make_shared<const std::vector<uint8_t>>(std::move(payload.bytes)),
      static_cast<int>(n), static_cast<int64_t>(count));
}

StatusOr<BinaryStreamReader> BinaryStreamReader::FromFile(
    const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return NotFoundError("cannot open '" + path + "'");
  std::vector<uint8_t> bytes(
      (std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  if (file.bad()) return InternalError("read from '" + path + "' failed");
  BitReader reader(bytes);
  return FromBytes(reader);
}

StatusOr<EdgeUpdate> BinaryStreamReader::Next() {
  if (AtEnd()) {
    return OutOfRangeError("edge stream exhausted after " +
                           std::to_string(update_count_) + " updates");
  }
  // The length equation guaranteed the bits are present; plain reads are
  // safe. Endpoints still need semantic validation — the checksum vouches
  // for transit, not for the producer.
  EdgeUpdate update;
  update.is_delete = reader_.ReadBits(1) != 0;
  const uint64_t u = reader_.ReadBits(32);
  const uint64_t v = reader_.ReadBits(32);
  ++read_;
  if (u >= static_cast<uint64_t>(num_vertices_) ||
      v >= static_cast<uint64_t>(num_vertices_)) {
    return InvalidArgumentError(
        "update " + std::to_string(read_ - 1) + " endpoint out of range [0, " +
        std::to_string(num_vertices_) + "): " + std::to_string(u) + " -- " +
        std::to_string(v));
  }
  if (u == v) {
    return InvalidArgumentError("update " + std::to_string(read_ - 1) +
                                " is a self-loop at vertex " +
                                std::to_string(u));
  }
  update.u = static_cast<VertexId>(u);
  update.v = static_cast<VertexId>(v);
  return update;
}

std::vector<EdgeUpdate> RandomUpdateStream(int num_vertices, int64_t count,
                                           double delete_fraction, Rng& rng) {
  DCS_CHECK_GE(num_vertices, 2);
  DCS_CHECK_GE(count, 0);
  std::vector<EdgeUpdate> updates;
  updates.reserve(static_cast<size_t>(count));
  // Live multiset of inserted-but-not-deleted edges; duplicates stack, and
  // deletes swap-remove a uniformly random live edge so every prefix of the
  // stream is a valid multigraph history.
  std::vector<std::pair<VertexId, VertexId>> live;
  for (int64_t i = 0; i < count; ++i) {
    if (!live.empty() && rng.Bernoulli(delete_fraction)) {
      const size_t pick = static_cast<size_t>(rng.UniformInt(live.size()));
      updates.push_back(EdgeUpdate{live[pick].first, live[pick].second, true});
      live[pick] = live.back();
      live.pop_back();
      continue;
    }
    const VertexId u =
        static_cast<VertexId>(rng.UniformInt(static_cast<uint64_t>(num_vertices)));
    VertexId v =
        static_cast<VertexId>(rng.UniformInt(static_cast<uint64_t>(num_vertices - 1)));
    if (v >= u) ++v;
    updates.push_back(EdgeUpdate{u, v, false});
    live.emplace_back(u, v);
  }
  return updates;
}

}  // namespace dcs
