// ℓ₀-sampling over dynamic integer vectors.
//
// Substrate for the AGM graph sketches [AGM12] — the linear-measurement
// graph sketching result the paper's introduction builds its database
// motivation on. An L0Sampler maintains O(log U) linear measurements of a
// dynamic vector a ∈ ℤ^U under coordinate updates a_i += Δ (insertions and
// deletions), and can report some coordinate with a_i ≠ 0 with constant
// success probability.
//
// Construction: per level j, coordinates are subsampled with probability
// 2^{-j} by a seeded hash, and each level keeps a 1-sparse recovery triple
//   (ℓ, z, p) = (Σ a_i, Σ a_i·i, Σ a_i·r^i mod q)
// over the surviving coordinates. A level that is exactly 1-sparse
// reproduces its coordinate as i = z/ℓ and verifies with the fingerprint p
// (false positives with probability O(U/q), q = 2^61 − 1). Queries scan
// levels from the sparsest.
//
// Everything is linear in the vector, so samplers over disjoint updates
// can be merged by addition — the property the AGM sketch exploits.

#ifndef DCS_STREAM_L0_SAMPLER_H_
#define DCS_STREAM_L0_SAMPLER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "util/check.h"

namespace dcs {

// A recovered nonzero coordinate.
struct L0Sample {
  int64_t index = 0;
  int64_t value = 0;  // the (nonzero) coordinate value
};

// Exact 1-sparse recovery over a (sub)vector.
class OneSparseRecovery {
 public:
  // `fingerprint_base` must be in [2, kModulus).
  explicit OneSparseRecovery(uint64_t fingerprint_base);

  // Applies a_i += delta.
  void Update(int64_t index, int64_t delta);

  // Same update with the fingerprint power r^index mod q precomputed by the
  // caller (L0Sampler caches powers of the base; every level of one update
  // shares the same power, so the modular exponentiation happens once).
  void UpdateWithPower(int64_t index, int64_t delta, uint64_t power);

  // Adds another structure built with the same base.
  void MergeFrom(const OneSparseRecovery& other);

  // Folds the exact internal state (sum, weighted sum, fingerprint) into an
  // FNV-style running hash. Two structures with equal state — and only
  // those, up to hash collisions — fold identically.
  void AppendDigest(uint64_t& digest) const;

  // True if no updates survive (the zero vector, whp).
  bool IsZero() const;

  // If the residual vector is exactly 1-sparse, returns it (whp correct;
  // verified against the fingerprint). Otherwise nullopt.
  std::optional<L0Sample> Recover() const;

  static constexpr uint64_t kModulus = (1ULL << 61) - 1;  // Mersenne prime

 private:
  uint64_t fingerprint_base_;
  int64_t sum_ = 0;         // Σ a_i
  __int128 weighted_ = 0;   // Σ a_i·i
  uint64_t fingerprint_ = 0;  // Σ a_i·r^i mod q (values mod q)
};

// The full multi-level sampler.
class L0Sampler {
 public:
  // Samples over coordinate universe [0, universe). The seed fixes both
  // the level hash and the fingerprint base; samplers must share a seed
  // (and universe) to be mergeable.
  L0Sampler(int64_t universe, uint64_t seed);

  void Update(int64_t index, int64_t delta);
  // Update with r^index mod q already computed. All samplers constructed
  // from the same seed share the fingerprint base, so a caller touching
  // several same-seed samplers with one coordinate (the AGM sketch writes
  // +1/−1 into the two endpoints' samplers) computes the power once via
  // PowerOf and reuses it.
  void Update(int64_t index, int64_t delta, uint64_t power);
  void MergeFrom(const L0Sampler& other);

  // r^index mod q from the cached square table (~one modular multiply per
  // set bit of `index`, instead of a full square-and-multiply ladder).
  uint64_t PowerOf(int64_t index) const;

  // Folds all level states into `digest` (see OneSparseRecovery).
  void AppendDigest(uint64_t& digest) const;

  // Some nonzero coordinate of the maintained vector, or nullopt if the
  // vector is zero or sampling failed at every level (constant failure
  // probability for nonzero vectors).
  std::optional<L0Sample> Sample() const;

  // True iff every level reads zero (so the vector is zero whp).
  bool AppearsZero() const;

  int64_t universe() const { return universe_; }
  uint64_t seed() const { return seed_; }
  int levels() const { return static_cast<int>(levels_.size()); }

  // Size of the maintained measurements in bits (3 words per level).
  int64_t SizeInBits() const {
    return static_cast<int64_t>(levels_.size()) * 3 * 64;
  }

 private:
  // Level of a coordinate: the number of levels whose subsampling keeps it.
  int LevelOf(int64_t index) const;

  int64_t universe_;
  uint64_t seed_;
  std::vector<OneSparseRecovery> levels_;
  // pow_squares_[i] = base^(2^i) mod q, enough entries to cover any index
  // in [0, universe). Shared by every update; identical for samplers built
  // from the same seed.
  std::vector<uint64_t> pow_squares_;
};

}  // namespace dcs

#endif  // DCS_STREAM_L0_SAMPLER_H_
