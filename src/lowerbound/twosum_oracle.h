// Lemma 5.6's query simulation made literal: a local-query oracle for
// G_{x,y} that never materializes the graph.
//
// Alice holds x, Bob holds y. Degree queries are free (every vertex of
// G_{x,y} has degree exactly ℓ = √N). A neighbor or adjacency query about
// index pair (i, j) is answered by the players exchanging the two bits
// x_{ij} and y_{ij} — so the oracle's CommunicationBits() is not an
// accounting convention here but the count of bits a real two-party
// protocol would have sent. Running any local-query min-cut algorithm
// against this oracle *is* algorithm B of Lemma 5.6.

#ifndef DCS_LOWERBOUND_TWOSUM_ORACLE_H_
#define DCS_LOWERBOUND_TWOSUM_ORACLE_H_

#include <cstdint>
#include <vector>

#include "localquery/oracle.h"

namespace dcs {

class TwoSumGraphOracle final : public LocalQueryOracle {
 public:
  // Requires |x| == |y| == ℓ² for some integer ℓ >= 1.
  TwoSumGraphOracle(std::vector<uint8_t> alice_x,
                    std::vector<uint8_t> bob_y);

  int num_vertices() const override { return 4 * side_; }
  int64_t Degree(VertexId u) override;
  std::optional<VertexId> Neighbor(VertexId u, int64_t slot) override;
  bool Adjacent(VertexId u, VertexId v) override;

  // Bits actually exchanged between the players (2 per answered
  // neighbor/adjacency query; equals CommunicationBits()).
  int64_t bits_exchanged() const { return bits_exchanged_; }

  int side_length() const { return side_; }

 private:
  // The 2-bit exchange: both players reveal their (i, j) bit.
  bool Intersects(int i, int j);

  int side_;
  std::vector<uint8_t> x_;
  std::vector<uint8_t> y_;
  int64_t bits_exchanged_ = 0;
};

}  // namespace dcs

#endif  // DCS_LOWERBOUND_TWOSUM_ORACLE_H_
