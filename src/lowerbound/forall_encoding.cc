#include "lowerbound/forall_encoding.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "graph/incremental_cut_oracle.h"
#include "util/combinations.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace dcs {

void ForAllLowerBoundParams::Check() const {
  DCS_CHECK_GE(inv_epsilon_sq, 2);
  DCS_CHECK_EQ(inv_epsilon_sq % 2, 0);
  DCS_CHECK_GE(beta, 1);
  DCS_CHECK_GE(num_layers, 2);
  DCS_CHECK_EQ(layer_size() % 2, 0);
  DCS_CHECK_GT(gap_c, 0);
}

ForAllStringLocation LocateForAllString(const ForAllLowerBoundParams& params,
                                        int64_t string_index) {
  DCS_CHECK_GE(string_index, 0);
  DCS_CHECK_LT(string_index, params.total_strings());
  ForAllStringLocation loc;
  loc.layer_pair =
      static_cast<int>(string_index / params.strings_per_layer_pair());
  const int64_t rem = string_index % params.strings_per_layer_pair();
  loc.left_index = static_cast<int>(rem / params.beta);
  loc.right_cluster = static_cast<int>(rem % params.beta);
  return loc;
}

ForAllEncoder::ForAllEncoder(const ForAllLowerBoundParams& params)
    : params_(params) {
  params_.Check();
}

DirectedGraph ForAllEncoder::Encode(
    const std::vector<std::vector<uint8_t>>& strings) const {
  DCS_CHECK_EQ(static_cast<int64_t>(strings.size()),
               params_.total_strings());
  const int k = params_.layer_size();
  const int cluster = params_.inv_epsilon_sq;
  const double backward = params_.backward_weight();
  DirectedGraph graph(params_.num_vertices());
  int64_t string_cursor = 0;
  for (int p = 0; p + 1 < params_.num_layers; ++p) {
    const int left_base = p * k;
    const int right_base = (p + 1) * k;
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < params_.beta; ++j) {
        const std::vector<uint8_t>& s =
            strings[static_cast<size_t>(string_cursor++)];
        DCS_CHECK_EQ(static_cast<int>(s.size()), cluster);
        for (int v = 0; v < cluster; ++v) {
          const double weight = (s[static_cast<size_t>(v)] ? 2.0 : 1.0);
          graph.AddEdge(left_base + i, right_base + j * cluster + v, weight);
        }
      }
    }
    // Backward edges: every right vertex → every left vertex.
    for (int v = 0; v < k; ++v) {
      for (int u = 0; u < k; ++u) {
        graph.AddEdge(right_base + v, left_base + u, backward);
      }
    }
  }
  DCS_CHECK_EQ(string_cursor, params_.total_strings());
  return graph;
}

ForAllDecoder::ForAllDecoder(const ForAllLowerBoundParams& params)
    : params_(params), backward_skeleton_(params.num_vertices()) {
  params_.Check();
  const int k = params_.layer_size();
  for (int p = 0; p + 1 < params_.num_layers; ++p) {
    const int left_base = p * k;
    const int right_base = (p + 1) * k;
    for (int v = 0; v < k; ++v) {
      for (int u = 0; u < k; ++u) {
        backward_skeleton_.AddEdge(right_base + v, left_base + u,
                                   params_.backward_weight());
      }
    }
  }
  // Trial runners share one decoder across threads; force the lazy
  // adjacency build now so later const access is read-only.
  backward_skeleton_.BuildAdjacency();
}

VertexSet ForAllDecoder::BuildQuerySide(const ForAllStringLocation& loc,
                                        const std::vector<uint8_t>& t,
                                        const VertexSet& u_subset) const {
  const int k = params_.layer_size();
  const int n = params_.num_vertices();
  const int cluster = params_.inv_epsilon_sq;
  DCS_CHECK_EQ(static_cast<int>(t.size()), cluster);
  DCS_CHECK_EQ(static_cast<int>(u_subset.size()), k);
  VertexSet side(static_cast<size_t>(n), 0);
  const int left_base = loc.layer_pair * k;
  for (int i = 0; i < k; ++i) {
    if (u_subset[static_cast<size_t>(i)]) {
      side[static_cast<size_t>(left_base + i)] = 1;
    }
  }
  // V_{p+1} ∖ T.
  const int right_base = (loc.layer_pair + 1) * k;
  for (int v = 0; v < k; ++v) {
    side[static_cast<size_t>(right_base + v)] = 1;
  }
  const int cluster_base = right_base + loc.right_cluster * cluster;
  for (int v = 0; v < cluster; ++v) {
    if (t[static_cast<size_t>(v)]) {
      side[static_cast<size_t>(cluster_base + v)] = 0;
    }
  }
  // Later layers.
  for (int v = (loc.layer_pair + 2) * k; v < n; ++v) {
    side[static_cast<size_t>(v)] = 1;
  }
  return side;
}

double ForAllDecoder::CorrectedEstimate(const ForAllStringLocation& loc,
                                        const std::vector<uint8_t>& t,
                                        const VertexSet& u_subset,
                                        const CutOracle& oracle) const {
  const VertexSet side = BuildQuerySide(loc, t, u_subset);
  return oracle(side) - backward_skeleton_.CutWeight(side);
}

VertexSet ForAllDecoder::SelectBestSubset(int64_t string_index,
                                          const std::vector<uint8_t>& t,
                                          const CutOracle& oracle,
                                          SubsetSelection mode) const {
  return SelectBestSubset(
      string_index, t,
      [&oracle](VertexSet side) {
        return oracle.BeginSession(std::move(side));
      },
      mode);
}

VertexSet ForAllDecoder::SelectBestSubset(int64_t string_index,
                                          const std::vector<uint8_t>& t,
                                          const SessionSource& begin_session,
                                          SubsetSelection mode) const {
  const ForAllStringLocation loc = LocateForAllString(params_, string_index);
  const int k = params_.layer_size();
  const int half = k / 2;
  const int left_base = loc.layer_pair * k;
  if (mode == SubsetSelection::kEnumerate) {
    // All C(k, k/2) half-size subsets in revolving-door (Gray-code) order:
    // consecutive subsets differ by one swap, so after the initial query
    // every candidate costs two O(deg) flips plus one session query instead
    // of an O(m) rescan. The fixed backward weight is maintained by its own
    // incremental oracle over the public skeleton.
    VertexSet u_subset(static_cast<size_t>(k), 0);
    for (int i = 0; i < half; ++i) u_subset[static_cast<size_t>(i)] = 1;
    const auto session = begin_session(BuildQuerySide(loc, t, u_subset));
    IncrementalCutOracle fixed(backward_skeleton_,
                               BuildQuerySide(loc, t, u_subset));
    VertexSet best = u_subset;
    double best_value = session->Query() - fixed.value();
    int64_t candidates = 1;  // flushed below; hot loop stays registry-free
    const bool completed = VisitRevolvingDoorSwapsUntil(
        k, half, [&](int out, int in) {
          // Cooperative deadline: past the budget, checkpoint best-so-far
          // and unwind instead of finishing the exponential sweep.
          if (enumeration_budget_ > 0 && candidates >= enumeration_budget_) {
            return false;
          }
          ++candidates;
          u_subset[static_cast<size_t>(out)] = 0;
          u_subset[static_cast<size_t>(in)] = 1;
          session->Flip(left_base + out);
          session->Flip(left_base + in);
          fixed.Flip(left_base + out);
          fixed.Flip(left_base + in);
          const double value = session->Query() - fixed.value();
          if (value > best_value) {
            best_value = value;
            best = u_subset;
          }
          return true;
        });
    DCS_METRIC_ADD("forall.subset.enumerated", candidates);
    if (!completed) DCS_METRIC_INC("forall.enumeration.deadline_hit");
    return best;
  }
  // Greedy: per-node marginals from k+1 queries (base plus one per node,
  // each two flips away from the base side). For modular estimators (all
  // sketches in this library) the top-half by marginal is exactly the
  // enumeration argmax.
  const VertexSet empty(static_cast<size_t>(k), 0);
  const auto session = begin_session(BuildQuerySide(loc, t, empty));
  IncrementalCutOracle fixed(backward_skeleton_,
                             BuildQuerySide(loc, t, empty));
  const double base_value = session->Query() - fixed.value();
  std::vector<std::pair<double, int>> marginals;
  marginals.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    session->Flip(left_base + i);
    fixed.Flip(left_base + i);
    const double value = session->Query() - fixed.value();
    session->Flip(left_base + i);
    fixed.Flip(left_base + i);
    marginals.emplace_back(value - base_value, i);
  }
  DCS_METRIC_ADD("forall.marginal.queried", k);
  std::sort(marginals.begin(), marginals.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  VertexSet best(static_cast<size_t>(k), 0);
  for (int rank = 0; rank < half; ++rank) {
    best[static_cast<size_t>(marginals[static_cast<size_t>(rank)].second)] =
        1;
  }
  return best;
}

bool ForAllDecoder::DecideFar(int64_t string_index,
                              const std::vector<uint8_t>& t,
                              const CutOracle& oracle,
                              SubsetSelection mode) const {
  return DecideFar(
      string_index, t,
      [&oracle](VertexSet side) {
        return oracle.BeginSession(std::move(side));
      },
      mode);
}

bool ForAllDecoder::DecideFar(int64_t string_index,
                              const std::vector<uint8_t>& t,
                              const SessionSource& begin_session,
                              SubsetSelection mode) const {
  DCS_METRIC_INC("forall.string.decoded");
  const ForAllStringLocation loc = LocateForAllString(params_, string_index);
  const VertexSet q_subset =
      SelectBestSubset(string_index, t, begin_session, mode);
  // ℓ_i ∈ Q ⇒ |N(ℓ_i) ∩ T| is in the high tail ⇒ Δ(s_q, t) small ("close").
  return q_subset[static_cast<size_t>(loc.left_index)] == 0;
}

ForAllTrialResult RunForAllTrials(
    const ForAllLowerBoundParams& params, int num_trials, Rng& rng,
    const std::function<CutOracle(const DirectedGraph&)>& oracle_factory,
    ForAllDecoder::SubsetSelection mode) {
  params.Check();
  const ForAllEncoder encoder(params);
  const ForAllDecoder decoder(params);
  GapHammingParams gh_params;
  gh_params.num_strings = static_cast<int>(params.total_strings());
  gh_params.string_length = params.inv_epsilon_sq;
  gh_params.gap_c = params.gap_c;
  ForAllTrialResult result;
  for (int trial = 0; trial < num_trials; ++trial) {
    const GapHammingInstance instance =
        SampleGapHammingInstance(gh_params, rng);
    const DirectedGraph graph = encoder.Encode(instance.s);
    const CutOracle oracle = oracle_factory(graph);
    const bool decided_far =
        decoder.DecideFar(instance.index, instance.t, oracle, mode);
    ++result.trials;
    if (decided_far == instance.is_far) ++result.correct;
  }
  return result;
}

ForAllTrialResult RunForAllTrials(const ForAllLowerBoundParams& params,
                                  int num_trials, uint64_t base_seed,
                                  const SeededCutOracleFactory& oracle_factory,
                                  ForAllDecoder::SubsetSelection mode,
                                  int num_threads) {
  params.Check();
  DCS_CHECK_GE(num_trials, 0);
  const ForAllEncoder encoder(params);
  const ForAllDecoder decoder(params);
  GapHammingParams gh_params;
  gh_params.num_strings = static_cast<int>(params.total_strings());
  gh_params.string_length = params.inv_epsilon_sq;
  gh_params.gap_c = params.gap_c;
  // Trial i draws everything (instance and oracle noise) from its own
  // Rng(SubtaskSeed(base_seed, i)), so the outcome of each trial — and
  // therefore the aggregate — is bit-identical for every num_threads.
  std::vector<uint8_t> trial_correct(static_cast<size_t>(num_trials), 0);
  ParallelFor(num_threads, num_trials, [&](int64_t trial) {
    Rng rng(SubtaskSeed(base_seed, trial));
    const GapHammingInstance instance =
        SampleGapHammingInstance(gh_params, rng);
    const DirectedGraph graph = encoder.Encode(instance.s);
    const CutOracle oracle = oracle_factory(graph, rng);
    const bool decided_far =
        decoder.DecideFar(instance.index, instance.t, oracle, mode);
    trial_correct[static_cast<size_t>(trial)] =
        decided_far == instance.is_far ? 1 : 0;
  });
  ForAllTrialResult result;
  result.trials = num_trials;
  for (const uint8_t correct : trial_correct) result.correct += correct;
  return result;
}

}  // namespace dcs
