// Solving 2-SUM with a min-cut query algorithm — algorithm B of Lemma 5.6
// as a library function.
//
// Given a 2-SUM(t, L, α) instance, concatenate Alice's and Bob's strings
// into x, y, build G_{x,y}, estimate its global min cut with local queries,
// and output t − MINCUT_estimate/(2α) as the approximation of
// Σ_i DISJ(X^i, Y^i). Every neighbor/adjacency query the estimator makes
// is charged 2 bits of Alice–Bob communication, so the returned
// communication_bits is the transcript length of the simulated protocol.

#ifndef DCS_LOWERBOUND_TWOSUM_SOLVER_H_
#define DCS_LOWERBOUND_TWOSUM_SOLVER_H_

#include <cstdint>
#include <vector>

#include "comm/two_sum.h"
#include "localquery/mincut_estimator.h"
#include "util/random.h"

namespace dcs {

// Result of the reduction.
struct TwoSumSolveResult {
  double disjoint_estimate = 0;   // estimate of Σ DISJ(X^i, Y^i)
  double mincut_estimate = 0;     // the underlying MINCUT(G_{x,y}) estimate
  int64_t total_queries = 0;      // local queries spent
  int64_t communication_bits = 0; // Lemma 5.6 transcript bits
};

// Runs the reduction. Requires the concatenated length t·L to be a perfect
// square with √(tL) ≥ 3·INT(x, y) (the Lemma 5.5 hypothesis; CHECKed).
TwoSumSolveResult SolveTwoSumViaMinCut(
    const TwoSumInstance& instance, double epsilon, Rng& rng,
    SearchMode mode = SearchMode::kModifiedConstantSearch);

// Runs the reduction `repetitions` times with independent estimator
// randomness (repetition i uses a private Rng(SubtaskSeed(base_seed, i)))
// and returns
// the per-repetition results in repetition order. Bit-identical for every
// num_threads (1 runs serially on the caller).
std::vector<TwoSumSolveResult> SolveTwoSumViaMinCutRepeated(
    const TwoSumInstance& instance, double epsilon, int repetitions,
    uint64_t base_seed, SearchMode mode = SearchMode::kModifiedConstantSearch,
    int num_threads = 1);

}  // namespace dcs

#endif  // DCS_LOWERBOUND_TWOSUM_SOLVER_H_
