// Solving 2-SUM with a min-cut query algorithm — algorithm B of Lemma 5.6
// as a library function.
//
// Given a 2-SUM(t, L, α) instance, concatenate Alice's and Bob's strings
// into x, y, build G_{x,y}, estimate its global min cut with local queries,
// and output t − MINCUT_estimate/(2α) as the approximation of
// Σ_i DISJ(X^i, Y^i). Every neighbor/adjacency query the estimator makes
// is charged 2 bits of Alice–Bob communication, so the returned
// communication_bits is the transcript length of the simulated protocol.

#ifndef DCS_LOWERBOUND_TWOSUM_SOLVER_H_
#define DCS_LOWERBOUND_TWOSUM_SOLVER_H_

#include "comm/two_sum.h"
#include "localquery/mincut_estimator.h"
#include "util/random.h"

namespace dcs {

// Result of the reduction.
struct TwoSumSolveResult {
  double disjoint_estimate = 0;   // estimate of Σ DISJ(X^i, Y^i)
  double mincut_estimate = 0;     // the underlying MINCUT(G_{x,y}) estimate
  int64_t total_queries = 0;      // local queries spent
  int64_t communication_bits = 0; // Lemma 5.6 transcript bits
};

// Runs the reduction. Requires the concatenated length t·L to be a perfect
// square with √(tL) ≥ 3·INT(x, y) (the Lemma 5.5 hypothesis; CHECKed).
TwoSumSolveResult SolveTwoSumViaMinCut(
    const TwoSumInstance& instance, double epsilon, Rng& rng,
    SearchMode mode = SearchMode::kModifiedConstantSearch);

}  // namespace dcs

#endif  // DCS_LOWERBOUND_TWOSUM_SOLVER_H_
