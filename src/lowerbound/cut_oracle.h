// Cut oracles: the decoder-facing abstraction of "a sketch Bob can query".
//
// The lower-bound decoders (Sections 3 and 4) only ever interact with
// Alice's sketch through cut-value queries. CutOracle wraps the query
// function — so the same decoder runs against (a) the exact graph, (b) any
// DirectedCutSketch implementation, or (c) an adversarially/randomly
// perturbed oracle with a prescribed relative error — and, when the backing
// store supports it, hands out *incremental query sessions*: the decoders'
// query sequences (Gray-code subset enumeration, greedy marginals, the four
// inclusion–exclusion sides of a for-each probe) walk sides that differ in
// a few vertices, so a session maintains the value under Flip(v) in
// O(deg(v)) instead of rescanning all m edges per query.

#ifndef DCS_LOWERBOUND_CUT_ORACLE_H_
#define DCS_LOWERBOUND_CUT_ORACLE_H_

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

#include "graph/digraph.h"
#include "sketch/cut_sketch.h"
#include "util/metrics.h"
#include "util/random.h"

namespace dcs {

// A stateful cursor over cut sides: Flip moves one vertex across the cut,
// Query returns the oracle's estimate for the current side. For noisy
// oracles every Query draws fresh noise, exactly as a standalone query
// would.
class CutQuerySession {
 public:
  virtual ~CutQuerySession() = default;

  // Moves v to the other side of the cut.
  virtual void Flip(VertexId v) = 0;

  // The oracle's estimate of w(S, V∖S) for the current side.
  virtual double Query() = 0;
};

// Answers directed cut queries w(S, V∖S) (possibly approximately).
//
// Implicitly constructible from any callable double(const VertexSet&), so
// ad-hoc lambdas keep working; oracles built by the factories below
// additionally carry an incremental session factory. BeginSession always
// succeeds — oracles without incremental support get a fallback session
// that rescans via the query function.
class CutOracle {
 public:
  using QueryFn = std::function<double(const VertexSet&)>;
  using SessionFactory =
      std::function<std::unique_ptr<CutQuerySession>(VertexSet)>;

  CutOracle() = default;

  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_r_v<double, F&, const VertexSet&> &&
                !std::is_same_v<std::remove_cvref_t<F>, CutOracle>>>
  CutOracle(F&& query)  // NOLINT(google-explicit-constructor)
      : query_(std::forward<F>(query)) {}

  CutOracle(QueryFn query, SessionFactory sessions)
      : query_(std::move(query)), sessions_(std::move(sessions)) {}

  // One-shot query. Counted separately from session queries so tests can
  // assert a decoder used only its sessions (metrics_bounds_test).
  double operator()(const VertexSet& side) const {
    DCS_METRIC_INC("cutoracle.query.served");
    return query_(side);
  }

  explicit operator bool() const { return static_cast<bool>(query_); }

  // Starts an incremental session positioned at `side`.
  std::unique_ptr<CutQuerySession> BeginSession(VertexSet side) const;

  // True if sessions answer Flip/Query incrementally rather than by rescan.
  bool has_incremental_sessions() const {
    return static_cast<bool>(sessions_);
  }

 private:
  QueryFn query_;
  SessionFactory sessions_;
};

// Oracle factories taking a per-trial random stream; used by the parallel
// trial runners so every trial's randomness is self-contained.
using SeededCutOracleFactory =
    std::function<CutOracle(const DirectedGraph&, Rng&)>;

// Exact oracle backed by the graph itself. One-shot queries use the
// volume-bounded CutWeight overload; sessions are O(deg) incremental.
CutOracle ExactCutOracle(const DirectedGraph& graph);

// Oracle backed by a sketch (the sketch must outlive the oracle).
CutOracle SketchCutOracle(const DirectedCutSketch& sketch);

// Exact value perturbed by independent uniform multiplicative noise in
// [1−relative_error, 1+relative_error]. The rng must outlive the oracle.
// This models a generic (1±ε) sketch with fresh randomness per query.
CutOracle NoisyCutOracle(const DirectedGraph& graph, double relative_error,
                         Rng& rng);

// Worst-case (1±relative_error) oracle: each query is perturbed by a
// *sign-random but maximal* factor (exactly 1±relative_error). Decoders
// must survive this to claim robustness at a given error level.
CutOracle MaximalNoiseCutOracle(const DirectedGraph& graph,
                                double relative_error, Rng& rng);

}  // namespace dcs

#endif  // DCS_LOWERBOUND_CUT_ORACLE_H_
