// Cut oracles: the decoder-facing abstraction of "a sketch Bob can query".
//
// The lower-bound decoders (Sections 3 and 4) only ever interact with
// Alice's sketch through cut-value queries. Modeling that interaction as a
// std::function lets the same decoder run against (a) the exact graph,
// (b) any DirectedCutSketch implementation, or (c) an adversarially/
// randomly perturbed oracle with a prescribed relative error — which is how
// the experiments locate the accuracy threshold at which decoding collapses.

#ifndef DCS_LOWERBOUND_CUT_ORACLE_H_
#define DCS_LOWERBOUND_CUT_ORACLE_H_

#include <functional>
#include <memory>

#include "graph/digraph.h"
#include "sketch/cut_sketch.h"
#include "util/random.h"

namespace dcs {

// Answers directed cut queries w(S, V∖S) (possibly approximately).
using CutOracle = std::function<double(const VertexSet&)>;

// Exact oracle backed by the graph itself.
CutOracle ExactCutOracle(const DirectedGraph& graph);

// Oracle backed by a sketch (the sketch must outlive the oracle).
CutOracle SketchCutOracle(const DirectedCutSketch& sketch);

// Exact value perturbed by independent uniform multiplicative noise in
// [1−relative_error, 1+relative_error]. The rng must outlive the oracle.
// This models a generic (1±ε) sketch with fresh randomness per query.
CutOracle NoisyCutOracle(const DirectedGraph& graph, double relative_error,
                         Rng& rng);

// Worst-case (1±relative_error) oracle: each query is perturbed by a
// *sign-random but maximal* factor (exactly 1±relative_error). Decoders
// must survive this to claim robustness at a given error level.
CutOracle MaximalNoiseCutOracle(const DirectedGraph& graph,
                                double relative_error, Rng& rng);

}  // namespace dcs

#endif  // DCS_LOWERBOUND_CUT_ORACLE_H_
