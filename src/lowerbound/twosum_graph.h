// The Section 5.2 graph G_{x,y}: reducing 2-SUM to global min-cut.
//
// Given x, y ∈ {0,1}^N with N = ℓ², the vertex set is four blocks
// A, A', B, B' of ℓ vertices each, and for every index pair (i, j):
//
//   x_{ij} = y_{ij} = 1  →  edges (a_i, b'_j) and (b_i, a'_j)   ("crossing")
//   otherwise            →  edges (a_i, a'_j) and (b_i, b'_j)   ("parallel")
//
// Every vertex has degree exactly ℓ, the graph has 2N edges, and
// Lemma 5.5 states MINCUT(G_{x,y}) = 2·INT(x, y) whenever √N ≥ 3·INT(x,y)
// (the witness cut is (A ∪ A', B ∪ B')). The proof's 2γ-connectivity
// argument (Figures 3–6) is verified in tests via max-flow path counts.

#ifndef DCS_LOWERBOUND_TWOSUM_GRAPH_H_
#define DCS_LOWERBOUND_TWOSUM_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/ugraph.h"

namespace dcs {

// Vertex-block layout of G_{x,y} for side length ℓ.
struct TwoSumGraphLayout {
  int side_length = 0;  // ℓ = √N

  explicit TwoSumGraphLayout(int side) : side_length(side) {}

  int num_vertices() const { return 4 * side_length; }
  VertexId a(int i) const { return i; }
  VertexId a_prime(int j) const { return side_length + j; }
  VertexId b(int i) const { return 2 * side_length + i; }
  VertexId b_prime(int j) const { return 3 * side_length + j; }

  // Block membership tests.
  bool InA(VertexId v) const { return v < side_length; }
  bool InAPrime(VertexId v) const {
    return v >= side_length && v < 2 * side_length;
  }
  bool InB(VertexId v) const {
    return v >= 2 * side_length && v < 3 * side_length;
  }
  bool InBPrime(VertexId v) const { return v >= 3 * side_length; }

  // The witness cut side A ∪ A' (its cut value is 2·INT(x, y)).
  VertexSet WitnessSide() const;
};

// Returns ℓ with ℓ² == n, CHECK-failing if n is not a perfect square.
int PerfectSquareRoot(int64_t n);

// Builds G_{x,y}. Requires |x| == |y| == ℓ² for some integer ℓ >= 1.
// Bits are indexed row-major: x_{ij} = x[(i−1)·ℓ + (j−1)] in the paper's
// 1-based notation.
UndirectedGraph BuildTwoSumGraph(const std::vector<uint8_t>& x,
                                 const std::vector<uint8_t>& y);

// The Figure 2 worked example: x = 000000100, y = 100010100 (ℓ = 3).
struct TwoSumExample {
  std::vector<uint8_t> x;
  std::vector<uint8_t> y;
};
TwoSumExample Figure2Example();

}  // namespace dcs

#endif  // DCS_LOWERBOUND_TWOSUM_GRAPH_H_
