#include "lowerbound/twosum_graph.h"

#include <cmath>

#include "util/check.h"

namespace dcs {

VertexSet TwoSumGraphLayout::WitnessSide() const {
  VertexSet side(static_cast<size_t>(num_vertices()), 0);
  for (int v = 0; v < 2 * side_length; ++v) {
    side[static_cast<size_t>(v)] = 1;  // A ∪ A'
  }
  return side;
}

int PerfectSquareRoot(int64_t n) {
  DCS_CHECK_GE(n, 1);
  const int root = static_cast<int>(std::llround(std::sqrt(
      static_cast<double>(n))));
  DCS_CHECK_EQ(static_cast<int64_t>(root) * root, n);
  return root;
}

UndirectedGraph BuildTwoSumGraph(const std::vector<uint8_t>& x,
                                 const std::vector<uint8_t>& y) {
  DCS_CHECK_EQ(x.size(), y.size());
  const int side = PerfectSquareRoot(static_cast<int64_t>(x.size()));
  const TwoSumGraphLayout layout(side);
  UndirectedGraph graph(layout.num_vertices());
  for (int i = 0; i < side; ++i) {
    for (int j = 0; j < side; ++j) {
      const size_t bit = static_cast<size_t>(i) * static_cast<size_t>(side) +
                         static_cast<size_t>(j);
      if (x[bit] && y[bit]) {
        graph.AddEdge(layout.a(i), layout.b_prime(j), 1.0);
        graph.AddEdge(layout.b(i), layout.a_prime(j), 1.0);
      } else {
        graph.AddEdge(layout.a(i), layout.a_prime(j), 1.0);
        graph.AddEdge(layout.b(i), layout.b_prime(j), 1.0);
      }
    }
  }
  return graph;
}

TwoSumExample Figure2Example() {
  return TwoSumExample{{0, 0, 0, 0, 0, 0, 1, 0, 0},
                       {1, 0, 0, 0, 1, 0, 1, 0, 0}};
}

}  // namespace dcs
