// The Section 3 construction: encoding Ω(n√β/ε) bits into a β-balanced
// graph so that any single bit is recoverable from 4 for-each cut queries.
//
// Layout (Theorem 1.1 / Lemma 3.3). Let 1/ε = 2^k and √β be an integer.
// The n = ℓ·(√β/ε) vertices are split into ℓ layers V_1..V_ℓ of
// k = √β/ε vertices each. Between consecutive layers (V_p, V_{p+1}), each
// layer is divided into √β clusters of 1/ε vertices. Every cluster pair
// (L_i, R_j) encodes an independent sign string z ∈ {−1,1}^((1/ε−1)²):
//
//   x = Σ_t z_t·M_t              (M from Lemma 3.2, block size 1/ε)
//   w = ε·x + 2c₁·ln(1/ε)·1      (if ‖x‖∞ ≤ c₁·ln(1/ε)/ε, else all-base:
//                                 the 1/100-probability encoding failure)
//
// Forward edge u→v (u ∈ L_i, v ∈ R_j) gets weight w[u·(1/ε)+v]; every
// backward edge v→u gets weight 1/β. Every forward weight lies in
// [c₁ln(1/ε), 3c₁ln(1/ε)], so the graph is O(β·log(1/ε))-balanced with a
// per-edge certificate.
//
// Decoding bit t of cluster pair (i, j) in layer pair p: write
// M_t = h_A ⊗ h_B, A = {u : h_A(u) = +1} ⊂ L_i, B = {v : h_B(v) = +1} ⊂ R_j,
// and query the four cuts S = A' ∪ (V_{p+1}∖B') ∪ V_{p+2} ∪ … ∪ V_ℓ for
// (A', B') ∈ {A, Ā}×{B, B̄}. Subtracting the (publicly known) backward-edge
// weight leaves ŵ(A', B'); the alternating sum estimates ⟨w, M_t⟩ = z_t/ε,
// and its sign is the decoded bit.

#ifndef DCS_LOWERBOUND_FOREACH_ENCODING_H_
#define DCS_LOWERBOUND_FOREACH_ENCODING_H_

#include <array>
#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "lowerbound/cut_oracle.h"
#include "util/hadamard.h"
#include "util/random.h"

namespace dcs {

// Parameters of the for-each lower-bound construction.
struct ForEachLowerBoundParams {
  int inv_epsilon = 4;  // 1/ε; must be a power of two, >= 2
  int sqrt_beta = 1;    // √β; integer >= 1
  int num_layers = 2;   // ℓ >= 2
  double c1 = 2.0;      // Chernoff constant for the ‖x‖∞ clipping

  // β = sqrt_beta².
  double beta() const { return static_cast<double>(sqrt_beta) * sqrt_beta; }
  // Layer size k = √β/ε.
  int layer_size() const { return sqrt_beta * inv_epsilon; }
  // Total vertices n = ℓ·k.
  int num_vertices() const { return num_layers * layer_size(); }
  // Bits per cluster pair: (1/ε − 1)².
  int64_t bits_per_cluster_pair() const {
    const int64_t d = inv_epsilon - 1;
    return d * d;
  }
  // Cluster pairs per layer pair: β.
  int64_t cluster_pairs_per_layer() const {
    return static_cast<int64_t>(sqrt_beta) * sqrt_beta;
  }
  // Total encodable bits: (ℓ−1)·β·(1/ε−1)².
  int64_t total_bits() const {
    return (num_layers - 1) * cluster_pairs_per_layer() *
           bits_per_cluster_pair();
  }
  // Base forward weight 2c₁·ln(1/ε).
  double forward_base_weight() const;
  // ‖x‖∞ clipping threshold c₁·ln(1/ε)/ε.
  double clip_threshold() const;
  // Backward edge weight 1/β.
  double backward_weight() const { return 1.0 / beta(); }
  // The lower-bound formula n·√β/ε this construction realizes (in bits,
  // up to the (1−ε)² vs 1/ε² slack).
  double info_formula() const {
    return static_cast<double>(num_vertices()) * sqrt_beta * inv_epsilon;
  }

  // Validates invariants (power-of-two 1/ε, ranges).
  void Check() const;
};

// Position of one bit of Alice's string within the construction.
struct ForEachBitLocation {
  int layer_pair = 0;     // p: encodes between V_p and V_{p+1} (0-based)
  int left_cluster = 0;   // i ∈ [0, √β)
  int right_cluster = 0;  // j ∈ [0, √β)
  int64_t tensor_row = 0; // t ∈ [0, (1/ε−1)²)
};

// Maps a global bit index q ∈ [0, total_bits()) to its location.
ForEachBitLocation LocateForEachBit(const ForEachLowerBoundParams& params,
                                    int64_t q);

// Alice's side of the reduction.
class ForEachEncoder {
 public:
  explicit ForEachEncoder(const ForEachLowerBoundParams& params);

  // Result of encoding: the graph plus per-cluster-pair failure flags
  // (a cluster pair fails when ‖x‖∞ exceeds the clip threshold; its bits
  // are unrecoverable, which the paper charges to the 1/100 error budget).
  struct Encoding {
    DirectedGraph graph;
    // Indexed by [layer_pair][left_cluster·√β + right_cluster].
    std::vector<std::vector<uint8_t>> cluster_failed;
    int64_t failed_clusters = 0;
  };

  // Encodes a ±1 string of length params.total_bits().
  Encoding Encode(const std::vector<int8_t>& s) const;

  const ForEachLowerBoundParams& params() const { return params_; }

  // Vertex id of the u-th vertex of cluster c in layer p.
  VertexId VertexOf(int layer, int cluster, int offset) const;

 private:
  ForEachLowerBoundParams params_;
  TensorSignMatrix tensor_;
};

// Bob's side of the reduction.
class ForEachDecoder {
 public:
  explicit ForEachDecoder(const ForEachLowerBoundParams& params);

  // The four cut queries that decode one bit, with their fixed (backward-
  // edge) crossing weights precomputed from public information.
  struct QueryPlan {
    // Sign of each term in the alternating sum: +(A,B) −(Ā,B) −(A,B̄) +(Ā,B̄).
    std::array<VertexSet, 4> cut_sides;
    std::array<double, 4> fixed_weights;
    std::array<int, 4> signs;
  };

  QueryPlan PlanQueries(int64_t q) const;

  // Recovers bit q by issuing the 4 queries against `oracle`.
  int8_t DecodeBit(int64_t q, const CutOracle& oracle) const;

  // The estimate of ⟨w, M_t⟩ before taking the sign (exposed for tests and
  // the Figure 1 anatomy bench).
  double EstimateInnerProduct(int64_t q, const CutOracle& oracle) const;

 private:
  // The four cut sides for bit location `loc`, in query order
  // (A,B), (Ā,B), (A,B̄), (Ā,B̄). Consecutive sides differ only inside the
  // two clusters L_i and R_j, which is what makes the session-based decode
  // cheap.
  std::array<VertexSet, 4> BuildQuerySides(
      const ForEachBitLocation& loc) const;

  ForEachLowerBoundParams params_;
  TensorSignMatrix tensor_;
  // Backward-edge-only skeleton graph: all (publicly known) fixed weights.
  DirectedGraph backward_skeleton_;
};

// End-to-end trial: encode a random string, decode `probe_count` random
// bit positions through `oracle_factory(graph)`, and report accuracy.
struct ForEachTrialResult {
  int64_t probes = 0;
  int64_t correct = 0;
  double accuracy() const {
    return probes == 0 ? 0 : static_cast<double>(correct) / probes;
  }
};

ForEachTrialResult RunForEachTrial(
    const ForEachLowerBoundParams& params, int probe_count, Rng& rng,
    const std::function<CutOracle(const DirectedGraph&)>& oracle_factory);

// Runs `num_trials` independent trials of `probe_count` probes each and
// aggregates. Trial i draws its string, probes, and oracle noise from a
// private Rng(SubtaskSeed(base_seed, i)), so the result is bit-identical for
// every
// num_threads (1 runs serially on the caller).
ForEachTrialResult RunForEachTrials(
    const ForEachLowerBoundParams& params, int num_trials, int probe_count,
    uint64_t base_seed, const SeededCutOracleFactory& oracle_factory,
    int num_threads);

}  // namespace dcs

#endif  // DCS_LOWERBOUND_FOREACH_ENCODING_H_
