// The Section 4 construction: encoding an Ω(nβ/ε²)-bit Gap-Hamming family
// into a 2β-balanced graph, decodable from any (1±c₂ε) for-all cut sketch.
//
// Layout (Theorem 1.2 / Lemma 4.2). Let k = β/ε². The n = ℓ·k vertices are
// split into layers V_1..V_ℓ. Between consecutive layers (V_p, V_{p+1}),
// the left layer's vertices are ℓ_1..ℓ_k and the right layer is divided
// into β clusters R_1..R_β of 1/ε² vertices. Each (ℓ_i, R_j) pair encodes
// one binary string s_{i,j} ∈ {0,1}^(1/ε²) of Hamming weight 1/(2ε²):
// forward edge (ℓ_i, v-th node of R_j) has weight s_{i,j}(v) + 1 ∈ {1, 2},
// and every backward edge has weight 1/β. The graph is 2β-balanced with a
// per-edge certificate.
//
// Bob's decision procedure for string q = (p, i, j) with query string t
// (T ⊂ R_j the positions where t = 1): for U ⊆ V_p let
// S(U) = U ∪ (V_{p+1}∖T) ∪ V_{p+2} ∪ … ∪ V_ℓ. Bob finds the half-size
// subset Q ⊂ V_p maximizing the (backward-corrected) estimate of w(U, T)
// — by exhaustive enumeration (the paper's procedure) or, equivalently for
// modular estimators such as every sketch in this library, by ranking
// per-node marginals obtained from k+1 oracle queries — and answers
// "close" (Δ(s_q, t) ≤ 1/(2ε²) − c/ε) iff ℓ_i ∈ Q (Lemmas 4.3/4.4).

#ifndef DCS_LOWERBOUND_FORALL_ENCODING_H_
#define DCS_LOWERBOUND_FORALL_ENCODING_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "comm/gap_hamming.h"
#include "graph/digraph.h"
#include "lowerbound/cut_oracle.h"
#include "util/random.h"

namespace dcs {

// Parameters of the for-all lower-bound construction.
struct ForAllLowerBoundParams {
  int inv_epsilon_sq = 4;  // 1/ε²; must be even (strings have weight 1/(2ε²))
  int beta = 1;            // β >= 1
  int num_layers = 2;      // ℓ >= 2
  double gap_c = 0.5;      // Gap-Hamming constant c

  // Layer size k = β/ε².
  int layer_size() const { return beta * inv_epsilon_sq; }
  // Total vertices n = ℓ·k.
  int num_vertices() const { return num_layers * layer_size(); }
  // Strings per layer pair: k·β = β²/ε².
  int64_t strings_per_layer_pair() const {
    return static_cast<int64_t>(layer_size()) * beta;
  }
  // Total strings h = (ℓ−1)·β²/ε².
  int64_t total_strings() const {
    return (num_layers - 1) * strings_per_layer_pair();
  }
  // Bits encoded: h·(1/ε²)  — the Ω(nβ/ε²) the theorem lower-bounds.
  int64_t total_bits() const {
    return total_strings() * inv_epsilon_sq;
  }
  double backward_weight() const { return 1.0 / beta; }

  void Check() const;
};

// Location of one string within the construction.
struct ForAllStringLocation {
  int layer_pair = 0;    // p (0-based)
  int left_index = 0;    // i ∈ [0, k)
  int right_cluster = 0; // j ∈ [0, β)
};

ForAllStringLocation LocateForAllString(const ForAllLowerBoundParams& params,
                                        int64_t string_index);

// Alice's side.
class ForAllEncoder {
 public:
  explicit ForAllEncoder(const ForAllLowerBoundParams& params);

  // Encodes h = total_strings() binary strings, each of length 1/ε².
  DirectedGraph Encode(
      const std::vector<std::vector<uint8_t>>& strings) const;

  const ForAllLowerBoundParams& params() const { return params_; }

 private:
  ForAllLowerBoundParams params_;
};

// Bob's side.
class ForAllDecoder {
 public:
  // How the best half-size subset Q is selected (Lemma 4.4).
  enum class SubsetSelection {
    kEnumerate,  // exhaustive over all C(k, k/2) subsets (the paper's Bob)
    kGreedy,     // top-k/2 per-node marginals from k+1 queries (exact for
                 // modular estimators — every sketch in this library)
  };

  explicit ForAllDecoder(const ForAllLowerBoundParams& params);

  // Cooperative deadline for the kEnumerate mode, whose C(k, k/2) subset
  // sweep is exponential in the layer size: the enumeration checkpoints the
  // best subset seen so far and stops after `budget` candidates (counting
  // the initial subset). 0 (the default) is unlimited. Deterministic — the
  // same budget always stops at the same candidate — so chaos runs with a
  // decode deadline stay replayable and can never hang. kGreedy is
  // polynomial and ignores the budget.
  void set_enumeration_budget(int64_t budget) {
    enumeration_budget_ = budget;
  }
  int64_t enumeration_budget() const { return enumeration_budget_; }

  // Returns true for "far" (Δ(s_q, t) in the high tail), false for "close".
  bool DecideFar(int64_t string_index, const std::vector<uint8_t>& t,
                 const CutOracle& oracle, SubsetSelection mode) const;

  // The selected subset Q (exposed for tests comparing the two modes).
  VertexSet SelectBestSubset(int64_t string_index,
                             const std::vector<uint8_t>& t,
                             const CutOracle& oracle,
                             SubsetSelection mode) const;

  // Session-source overloads: the decoder only ever drives "a session
  // positioned at a side", so callers above this layer (the cut-query
  // serving layer, src/serve) can substitute their own cache-aware
  // sessions without lowerbound depending on them. The CutOracle overloads
  // delegate here with oracle.BeginSession as the source; the query
  // sequence is identical either way.
  using SessionSource =
      std::function<std::unique_ptr<CutQuerySession>(VertexSet)>;
  VertexSet SelectBestSubset(int64_t string_index,
                             const std::vector<uint8_t>& t,
                             const SessionSource& begin_session,
                             SubsetSelection mode) const;
  bool DecideFar(int64_t string_index, const std::vector<uint8_t>& t,
                 const SessionSource& begin_session,
                 SubsetSelection mode) const;

 private:
  // S(U) for the given location/T, plus its fixed backward weight.
  VertexSet BuildQuerySide(const ForAllStringLocation& loc,
                           const std::vector<uint8_t>& t,
                           const VertexSet& u_subset) const;
  double CorrectedEstimate(const ForAllStringLocation& loc,
                           const std::vector<uint8_t>& t,
                           const VertexSet& u_subset,
                           const CutOracle& oracle) const;

  ForAllLowerBoundParams params_;
  DirectedGraph backward_skeleton_;
  int64_t enumeration_budget_ = 0;  // 0 = unlimited
};

// End-to-end trial: sample a distributional Gap-Hamming instance
// (Lemma 4.1) mapped onto the construction, encode, decode through the
// oracle, and report whether Bob's far/close decision was correct.
struct ForAllTrialResult {
  int64_t trials = 0;
  int64_t correct = 0;
  double accuracy() const {
    return trials == 0 ? 0 : static_cast<double>(correct) / trials;
  }
};

ForAllTrialResult RunForAllTrials(
    const ForAllLowerBoundParams& params, int num_trials, Rng& rng,
    const std::function<CutOracle(const DirectedGraph&)>& oracle_factory,
    ForAllDecoder::SubsetSelection mode);

// Parallel, seed-deterministic variant: trial i draws its instance and its
// oracle noise from a private Rng(SubtaskSeed(base_seed, i)), so the result is
// bit-identical for every num_threads (1 runs serially on the caller).
ForAllTrialResult RunForAllTrials(
    const ForAllLowerBoundParams& params, int num_trials, uint64_t base_seed,
    const SeededCutOracleFactory& oracle_factory,
    ForAllDecoder::SubsetSelection mode, int num_threads);

}  // namespace dcs

#endif  // DCS_LOWERBOUND_FORALL_ENCODING_H_
