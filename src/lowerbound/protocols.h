// One-way sketch protocols: the paper's reductions with *real transcripts*.
//
// The lower-bound theorems say: if Bob can decode from Alice's message,
// the message must be long. These runners make that operational end to
// end — Alice encodes her communication-problem input into the
// construction graph, builds an actual sketch from src/sketch, and
// *serializes it*; the serialized bits are the message. Bob deserializes
// and runs the decoder against the reconstructed sketch. The result pairs
// the measured message length with the measured decoding accuracy, so
// sweeping the sketch accuracy traces the size/decodability frontier the
// theorems bound.

#ifndef DCS_LOWERBOUND_PROTOCOLS_H_
#define DCS_LOWERBOUND_PROTOCOLS_H_

#include <cstdint>

#include "lowerbound/foreach_encoding.h"
#include "lowerbound/forall_encoding.h"
#include "util/random.h"

namespace dcs {

// Outcome of one protocol run.
struct SketchProtocolResult {
  int64_t message_bits = 0;   // serialized sketch length (the transcript)
  int64_t payload_bits = 0;   // information Alice embedded in the graph
  int64_t probes = 0;         // decode attempts
  int64_t correct = 0;        // successful decodes
  double accuracy() const {
    return probes == 0 ? 0 : static_cast<double>(correct) / probes;
  }
};

// Index problem through a serialized DirectedForEachSketch (Section 3).
// Alice: random ±1 string of length params.total_bits() → graph →
// DirectedForEachSketch(sketch_epsilon, β from the per-edge certificate) →
// serialize. Bob: deserialize, decode `probes` random positions with the
// Section 3 decoder. Small sketch_epsilon ⇒ accurate decoding and a long
// message; large sketch_epsilon ⇒ short message and chance-level decoding.
SketchProtocolResult RunForEachSketchProtocol(
    const ForEachLowerBoundParams& params, double sketch_epsilon,
    double oversample_c, int probes, Rng& rng);

// Distributional Gap-Hamming through a serialized DirectedForAllSketch
// (Section 4). One instance + decision per trial; message_bits reports the
// mean serialized size across trials.
SketchProtocolResult RunForAllSketchProtocol(
    const ForAllLowerBoundParams& params, double sketch_epsilon,
    double oversample_c, int trials, Rng& rng);

}  // namespace dcs

#endif  // DCS_LOWERBOUND_PROTOCOLS_H_
