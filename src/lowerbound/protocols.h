// One-way sketch protocols: the paper's reductions with *real transcripts*.
//
// The lower-bound theorems say: if Bob can decode from Alice's message,
// the message must be long. These runners make that operational end to
// end — Alice encodes her communication-problem input into the
// construction graph, builds an actual sketch from src/sketch, and
// *serializes it*; the serialized bits are the message. Bob deserializes
// and runs the decoder against the reconstructed sketch. The result pairs
// the measured message length with the measured decoding accuracy, so
// sweeping the sketch accuracy traces the size/decodability frontier the
// theorems bound.

#ifndef DCS_LOWERBOUND_PROTOCOLS_H_
#define DCS_LOWERBOUND_PROTOCOLS_H_

#include <cstdint>

#include "comm/channel.h"
#include "lowerbound/foreach_encoding.h"
#include "lowerbound/forall_encoding.h"
#include "util/random.h"

namespace dcs {

// Outcome of one protocol run.
//
// Transport accounting: with no channel, message_bits is the serialized
// sketch length exactly as before. With a ChannelOptions, message_bits is
// every bit the link put on the wire — framing, ACK traffic, and
// retransmissions — so the measured transcript stays honest under faults
// (DESIGN.md §9); sketch_bits keeps the pre-channel serialized size for
// comparison. A transfer that exceeds its deadline counts in lost_messages
// and contributes no probes (for-all reports per-trial means over the
// trials that ran, as before).
struct SketchProtocolResult {
  int64_t message_bits = 0;   // transcript length (wire bits under a channel)
  int64_t payload_bits = 0;   // information Alice embedded in the graph
  int64_t sketch_bits = 0;    // serialized sketch length, pre-framing
  int64_t retransmitted_bits = 0;  // wire bits spent beyond first attempts
  int64_t lost_messages = 0;  // transfers that exceeded the deadline
  int64_t probes = 0;         // decode attempts
  int64_t correct = 0;        // successful decodes
  bool degraded() const { return lost_messages > 0; }
  double accuracy() const {
    return probes == 0 ? 0 : static_cast<double>(correct) / probes;
  }
};

// Index problem through a serialized DirectedForEachSketch (Section 3).
// Alice: random ±1 string of length params.total_bits() → graph →
// DirectedForEachSketch(sketch_epsilon, β from the per-edge certificate) →
// serialize. Bob: deserialize, decode `probes` random positions with the
// Section 3 decoder. Small sketch_epsilon ⇒ accurate decoding and a long
// message; large sketch_epsilon ⇒ short message and chance-level decoding.
// `channel`, when non-null, routes Alice's serialized sketch through a
// ReliableLink over a LossyChannel (comm/channel.h). The link draws only
// from channel->seed, so a run whose transfers all recover decodes
// bit-identically to the fault-free run — only the transcript accounting
// (and the comm.channel.* metrics) differ.
SketchProtocolResult RunForEachSketchProtocol(
    const ForEachLowerBoundParams& params, double sketch_epsilon,
    double oversample_c, int probes, Rng& rng,
    const ChannelOptions* channel = nullptr);

// Distributional Gap-Hamming through a serialized DirectedForAllSketch
// (Section 4). One instance + decision per trial; message_bits,
// sketch_bits, and retransmitted_bits all report per-trial means so the
// transport fields stay mutually comparable (lost_messages stays a count).
// Trial t's link is seeded with SubtaskSeed(channel->seed, t), so every
// trial replays its own fault script independently of the others.
SketchProtocolResult RunForAllSketchProtocol(
    const ForAllLowerBoundParams& params, double sketch_epsilon,
    double oversample_c, int trials, Rng& rng,
    const ChannelOptions* channel = nullptr);

}  // namespace dcs

#endif  // DCS_LOWERBOUND_PROTOCOLS_H_
