#include "lowerbound/cut_oracle.h"

namespace dcs {

CutOracle ExactCutOracle(const DirectedGraph& graph) {
  return [&graph](const VertexSet& side) { return graph.CutWeight(side); };
}

CutOracle SketchCutOracle(const DirectedCutSketch& sketch) {
  return [&sketch](const VertexSet& side) {
    return sketch.EstimateCut(side);
  };
}

CutOracle NoisyCutOracle(const DirectedGraph& graph, double relative_error,
                         Rng& rng) {
  DCS_CHECK_GE(relative_error, 0);
  return [&graph, relative_error, &rng](const VertexSet& side) {
    const double exact = graph.CutWeight(side);
    const double factor =
        1 + relative_error * (2 * rng.UniformDouble() - 1);
    return exact * factor;
  };
}

CutOracle MaximalNoiseCutOracle(const DirectedGraph& graph,
                                double relative_error, Rng& rng) {
  DCS_CHECK_GE(relative_error, 0);
  return [&graph, relative_error, &rng](const VertexSet& side) {
    const double exact = graph.CutWeight(side);
    const double factor = 1 + relative_error * rng.RandomSign();
    return exact * factor;
  };
}

}  // namespace dcs
