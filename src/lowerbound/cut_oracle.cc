#include "lowerbound/cut_oracle.h"

#include "graph/incremental_cut_oracle.h"
#include "util/metrics.h"

namespace dcs {
namespace {

// Sessions tally Query/Flip calls into plain members and flush once at
// destruction (DESIGN.md §8): decoders issue thousands of session ops per
// recovered bit, so per-op registry traffic would breach the overhead
// budget.
struct SessionTally {
  int64_t queries = 0;
  int64_t flips = 0;

  ~SessionTally() {
    DCS_METRIC_ADD("cutoracle.session.query", queries);
    DCS_METRIC_ADD("cutoracle.session.flip", flips);
  }
};

// Fallback session for oracles with no incremental structure (sketches,
// ad-hoc lambdas): tracks the side and rescans on every Query.
class RescanCutQuerySession : public CutQuerySession {
 public:
  RescanCutQuerySession(CutOracle::QueryFn query, VertexSet side)
      : query_(std::move(query)), side_(std::move(side)) {
    for (uint8_t& b : side_) b = static_cast<uint8_t>(b != 0);
  }

  void Flip(VertexId v) override {
    DCS_DCHECK(v >= 0 && v < static_cast<VertexId>(side_.size()));
    ++tally_.flips;
    side_[static_cast<size_t>(v)] ^= 1;
  }

  double Query() override {
    ++tally_.queries;
    return query_(side_);
  }

 private:
  CutOracle::QueryFn query_;
  VertexSet side_;
  SessionTally tally_;
};

// Incremental session over the exact graph, with an optional per-query
// multiplicative noise factor (how the noisy oracles reuse the fast path:
// the exact value is maintained incrementally, the factor stays per-query).
class IncrementalCutSession : public CutQuerySession {
 public:
  IncrementalCutSession(const DirectedGraph& graph, VertexSet side,
                        std::function<double()> factor = nullptr)
      : cut_(graph, std::move(side)), factor_(std::move(factor)) {}

  void Flip(VertexId v) override {
    ++tally_.flips;
    cut_.Flip(v);
  }

  double Query() override {
    ++tally_.queries;
    return factor_ ? cut_.value() * factor_() : cut_.value();
  }

 private:
  IncrementalCutOracle cut_;
  std::function<double()> factor_;
  SessionTally tally_;
};

}  // namespace

std::unique_ptr<CutQuerySession> CutOracle::BeginSession(
    VertexSet side) const {
  DCS_METRIC_INC("cutoracle.session.opened");
  if (sessions_) {
    DCS_METRIC_INC("cutoracle.session.incremental");
    return sessions_(std::move(side));
  }
  DCS_METRIC_INC("cutoracle.session.rescan");
  DCS_CHECK(static_cast<bool>(query_));
  return std::make_unique<RescanCutQuerySession>(query_, std::move(side));
}

CutOracle ExactCutOracle(const DirectedGraph& graph) {
  graph.BuildAdjacency();
  const auto index =
      std::make_shared<const DegreeIndex>(graph.BuildDegreeIndex());
  return CutOracle(
      [&graph, index](const VertexSet& side) {
        return graph.CutWeight(side, *index);
      },
      [&graph](VertexSet side) -> std::unique_ptr<CutQuerySession> {
        return std::make_unique<IncrementalCutSession>(graph,
                                                       std::move(side));
      });
}

CutOracle SketchCutOracle(const DirectedCutSketch& sketch) {
  return [&sketch](const VertexSet& side) {
    return sketch.EstimateCut(side);
  };
}

CutOracle NoisyCutOracle(const DirectedGraph& graph, double relative_error,
                         Rng& rng) {
  DCS_CHECK_GE(relative_error, 0);
  graph.BuildAdjacency();
  const auto factor = [relative_error, &rng]() {
    return 1 + relative_error * (2 * rng.UniformDouble() - 1);
  };
  return CutOracle(
      [&graph, factor](const VertexSet& side) {
        return graph.CutWeight(side) * factor();
      },
      [&graph, factor](VertexSet side) -> std::unique_ptr<CutQuerySession> {
        return std::make_unique<IncrementalCutSession>(graph, std::move(side),
                                                       factor);
      });
}

CutOracle MaximalNoiseCutOracle(const DirectedGraph& graph,
                                double relative_error, Rng& rng) {
  DCS_CHECK_GE(relative_error, 0);
  graph.BuildAdjacency();
  const auto factor = [relative_error, &rng]() {
    return 1 + relative_error * rng.RandomSign();
  };
  return CutOracle(
      [&graph, factor](const VertexSet& side) {
        return graph.CutWeight(side) * factor();
      },
      [&graph, factor](VertexSet side) -> std::unique_ptr<CutQuerySession> {
        return std::make_unique<IncrementalCutSession>(graph, std::move(side),
                                                       factor);
      });
}

}  // namespace dcs
