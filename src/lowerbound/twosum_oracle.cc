#include "lowerbound/twosum_oracle.h"

#include <utility>

#include "lowerbound/twosum_graph.h"

namespace dcs {

TwoSumGraphOracle::TwoSumGraphOracle(std::vector<uint8_t> alice_x,
                                     std::vector<uint8_t> bob_y)
    : side_(PerfectSquareRoot(static_cast<int64_t>(alice_x.size()))),
      x_(std::move(alice_x)),
      y_(std::move(bob_y)) {
  DCS_CHECK_EQ(x_.size(), y_.size());
}

bool TwoSumGraphOracle::Intersects(int i, int j) {
  // Alice sends x_{ij}, Bob sends y_{ij}: two bits on the wire.
  bits_exchanged_ += 2;
  const size_t bit = static_cast<size_t>(i) * static_cast<size_t>(side_) +
                     static_cast<size_t>(j);
  return x_[bit] != 0 && y_[bit] != 0;
}

int64_t TwoSumGraphOracle::Degree(VertexId u) {
  DCS_CHECK(u >= 0 && u < num_vertices());
  TallyDegreeQuery();
  // Every vertex of G_{x,y} has degree exactly ℓ — no communication.
  return side_;
}

std::optional<VertexId> TwoSumGraphOracle::Neighbor(VertexId u,
                                                    int64_t slot) {
  DCS_CHECK(u >= 0 && u < num_vertices());
  DCS_CHECK_GE(slot, 0);
  TallyNeighborQuery();
  if (slot >= side_) return std::nullopt;
  const TwoSumGraphLayout layout(side_);
  const int local = u % side_;
  const int j = static_cast<int>(slot);
  if (layout.InA(u)) {
    // a_i's j-th neighbor: b'_j on intersection, else a'_j.
    return Intersects(local, j) ? layout.b_prime(j) : layout.a_prime(j);
  }
  if (layout.InB(u)) {
    return Intersects(local, j) ? layout.a_prime(j) : layout.b_prime(j);
  }
  if (layout.InAPrime(u)) {
    // a'_j's i-th neighbor: b_i on intersection, else a_i.
    return Intersects(j, local) ? layout.b(j) : layout.a(j);
  }
  // u ∈ B'.
  return Intersects(j, local) ? layout.a(j) : layout.b(j);
}

bool TwoSumGraphOracle::Adjacent(VertexId u, VertexId v) {
  DCS_CHECK(u >= 0 && u < num_vertices());
  DCS_CHECK(v >= 0 && v < num_vertices());
  TallyAdjacencyQuery();
  const TwoSumGraphLayout layout(side_);
  // Normalize so u is on the {A, B} side.
  if (layout.InAPrime(u) || layout.InBPrime(u)) std::swap(u, v);
  if (!(layout.InA(u) || layout.InB(u))) return false;
  if (!(layout.InAPrime(v) || layout.InBPrime(v))) return false;
  const int i = u % side_;
  const int j = v % side_;
  const bool crossing = Intersects(i, j);
  if (layout.InA(u)) {
    return layout.InBPrime(v) ? crossing : !crossing;
  }
  return layout.InAPrime(v) ? crossing : !crossing;
}

}  // namespace dcs
