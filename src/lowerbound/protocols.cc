#include "lowerbound/protocols.h"

#include "comm/gap_hamming.h"
#include "comm/message.h"
#include "graph/balance.h"
#include "sketch/directed_sketches.h"

namespace dcs {

SketchProtocolResult RunForEachSketchProtocol(
    const ForEachLowerBoundParams& params, double sketch_epsilon,
    double oversample_c, int probes, Rng& rng) {
  params.Check();
  SketchProtocolResult result;
  result.payload_bits = params.total_bits();

  // --- Alice ---
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const ForEachEncoder encoder(params);
  const ForEachEncoder::Encoding encoding = encoder.Encode(s);
  const double beta =
      PerEdgeBalanceCertificate(encoding.graph).value_or(params.beta());
  const DirectedForEachSketch sketch(encoding.graph, sketch_epsilon, beta,
                                     rng, oversample_c);
  BitWriter writer;
  sketch.Serialize(writer);
  const Message message = SealMessage(writer);
  result.message_bits = message.bit_count;

  // --- Bob ---
  BitReader reader = OpenMessage(message);
  // In-process round trip of bytes Alice just wrote: a parse failure is a
  // programmer error, so value() is safe.
  const DirectedForEachSketch received =
      DirectedForEachSketch::Deserialize(reader).value();
  const ForEachDecoder decoder(params);
  const CutOracle oracle = SketchCutOracle(received);
  for (int probe = 0; probe < probes; ++probe) {
    const int64_t q = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(params.total_bits())));
    ++result.probes;
    if (decoder.DecodeBit(q, oracle) == s[static_cast<size_t>(q)]) {
      ++result.correct;
    }
  }
  return result;
}

SketchProtocolResult RunForAllSketchProtocol(
    const ForAllLowerBoundParams& params, double sketch_epsilon,
    double oversample_c, int trials, Rng& rng) {
  params.Check();
  SketchProtocolResult result;
  result.payload_bits = params.total_bits();
  const ForAllEncoder encoder(params);
  const ForAllDecoder decoder(params);
  GapHammingParams gh;
  gh.num_strings = static_cast<int>(params.total_strings());
  gh.string_length = params.inv_epsilon_sq;
  gh.gap_c = params.gap_c;
  int64_t total_message_bits = 0;
  for (int trial = 0; trial < trials; ++trial) {
    // --- Alice ---
    const GapHammingInstance instance = SampleGapHammingInstance(gh, rng);
    const DirectedGraph graph = encoder.Encode(instance.s);
    const DirectedForAllSketch sketch(graph, sketch_epsilon,
                                      2.0 * params.beta, rng, oversample_c);
    BitWriter writer;
    sketch.Serialize(writer);
    const Message message = SealMessage(writer);
    total_message_bits += message.bit_count;

    // --- Bob ---
    BitReader reader = OpenMessage(message);
    // In-process round trip: value() is safe (see above).
    const DirectedForAllSketch received =
        DirectedForAllSketch::Deserialize(reader).value();
    const bool decided_far =
        decoder.DecideFar(instance.index, instance.t,
                          SketchCutOracle(received),
                          ForAllDecoder::SubsetSelection::kGreedy);
    ++result.probes;
    if (decided_far == instance.is_far) ++result.correct;
  }
  result.message_bits = trials == 0 ? 0 : total_message_bits / trials;
  return result;
}

}  // namespace dcs
