#include "lowerbound/protocols.h"

#include <optional>

#include "comm/gap_hamming.h"
#include "comm/message.h"
#include "graph/balance.h"
#include "sketch/directed_sketches.h"

namespace dcs {
namespace {

// Runs Alice's serialized sketch through `link` (when present) and returns
// the message Bob sees, accounting wire/retransmitted bits into `result`.
// nullopt means the transfer exceeded its deadline: the message is lost and
// Bob decodes nothing.
std::optional<Message> DeliverMessage(const Message& message,
                                      ReliableLink* link,
                                      SketchProtocolResult& result) {
  if (link == nullptr) {
    result.message_bits += message.bit_count;
    return message;
  }
  const int64_t wire_before = link->stats().wire_bits;
  const int64_t retrans_before = link->stats().retransmitted_bits;
  auto delivered = link->Transfer(message);
  result.message_bits += link->stats().wire_bits - wire_before;
  result.retransmitted_bits +=
      link->stats().retransmitted_bits - retrans_before;
  if (!delivered.ok()) {
    ++result.lost_messages;
    return std::nullopt;
  }
  return std::move(delivered).value();
}

}  // namespace

SketchProtocolResult RunForEachSketchProtocol(
    const ForEachLowerBoundParams& params, double sketch_epsilon,
    double oversample_c, int probes, Rng& rng,
    const ChannelOptions* channel) {
  params.Check();
  SketchProtocolResult result;
  result.payload_bits = params.total_bits();

  // --- Alice ---
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const ForEachEncoder encoder(params);
  const ForEachEncoder::Encoding encoding = encoder.Encode(s);
  const double beta =
      PerEdgeBalanceCertificate(encoding.graph).value_or(params.beta());
  const DirectedForEachSketch sketch(encoding.graph, sketch_epsilon, beta,
                                     rng, oversample_c);
  BitWriter writer;
  sketch.Serialize(writer);
  const Message message = SealMessage(writer);
  result.sketch_bits = message.bit_count;

  // --- The wire ---
  std::optional<ReliableLink> link;
  if (channel != nullptr) link.emplace(*channel);
  const std::optional<Message> arrived =
      DeliverMessage(message, link ? &*link : nullptr, result);
  if (!arrived.has_value()) return result;  // lost past the deadline

  // --- Bob ---
  BitReader reader = OpenMessage(*arrived);
  // A recovered transfer is frame-checksummed end to end, so the bytes Bob
  // holds are the bytes Alice wrote; a parse failure is a programmer error
  // and value() is safe (matching the in-process round trip).
  const DirectedForEachSketch received =
      DirectedForEachSketch::Deserialize(reader).value();
  const ForEachDecoder decoder(params);
  const CutOracle oracle = SketchCutOracle(received);
  for (int probe = 0; probe < probes; ++probe) {
    const int64_t q = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(params.total_bits())));
    ++result.probes;
    if (decoder.DecodeBit(q, oracle) == s[static_cast<size_t>(q)]) {
      ++result.correct;
    }
  }
  return result;
}

SketchProtocolResult RunForAllSketchProtocol(
    const ForAllLowerBoundParams& params, double sketch_epsilon,
    double oversample_c, int trials, Rng& rng,
    const ChannelOptions* channel) {
  params.Check();
  SketchProtocolResult result;
  result.payload_bits = params.total_bits();
  const ForAllEncoder encoder(params);
  const ForAllDecoder decoder(params);
  GapHammingParams gh;
  gh.num_strings = static_cast<int>(params.total_strings());
  gh.string_length = params.inv_epsilon_sq;
  gh.gap_c = params.gap_c;
  int64_t total_message_bits = 0;
  int64_t total_sketch_bits = 0;
  for (int trial = 0; trial < trials; ++trial) {
    // --- Alice ---
    const GapHammingInstance instance = SampleGapHammingInstance(gh, rng);
    const DirectedGraph graph = encoder.Encode(instance.s);
    const DirectedForAllSketch sketch(graph, sketch_epsilon,
                                      2.0 * params.beta, rng, oversample_c);
    BitWriter writer;
    sketch.Serialize(writer);
    const Message message = SealMessage(writer);
    total_sketch_bits += message.bit_count;

    // --- The wire: a fresh link per trial with a derived seed ---
    std::optional<ReliableLink> link;
    if (channel != nullptr) {
      ChannelOptions trial_channel = *channel;
      trial_channel.seed = SubtaskSeed(channel->seed, trial);
      link.emplace(trial_channel);
    }
    SketchProtocolResult trial_transport;
    const std::optional<Message> arrived =
        DeliverMessage(message, link ? &*link : nullptr, trial_transport);
    total_message_bits += trial_transport.message_bits;
    result.retransmitted_bits += trial_transport.retransmitted_bits;
    result.lost_messages += trial_transport.lost_messages;
    if (!arrived.has_value()) continue;  // lost trial: no decision made

    // --- Bob ---
    BitReader reader = OpenMessage(*arrived);
    // Recovered (or in-process) bytes are exactly Alice's: value() is safe.
    const DirectedForAllSketch received =
        DirectedForAllSketch::Deserialize(reader).value();
    const bool decided_far =
        decoder.DecideFar(instance.index, instance.t,
                          SketchCutOracle(received),
                          ForAllDecoder::SubsetSelection::kGreedy);
    ++result.probes;
    if (decided_far == instance.is_far) ++result.correct;
  }
  // All transport fields are per-trial means so they stay mutually
  // comparable (mean wire bits ≥ mean sketch bits + mean retransmitted).
  result.message_bits = trials == 0 ? 0 : total_message_bits / trials;
  result.sketch_bits = trials == 0 ? 0 : total_sketch_bits / trials;
  result.retransmitted_bits =
      trials == 0 ? 0 : result.retransmitted_bits / trials;
  return result;
}

}  // namespace dcs
