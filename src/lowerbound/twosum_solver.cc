#include "lowerbound/twosum_solver.h"

#include "lowerbound/twosum_graph.h"
#include "lowerbound/twosum_oracle.h"
#include "util/thread_pool.h"

namespace dcs {

TwoSumSolveResult SolveTwoSumViaMinCut(const TwoSumInstance& instance,
                                       double epsilon, Rng& rng,
                                       SearchMode mode) {
  const std::vector<uint8_t> x = ConcatenateStrings(instance.x);
  const std::vector<uint8_t> y = ConcatenateStrings(instance.y);
  const int side = PerfectSquareRoot(static_cast<int64_t>(x.size()));
  const int total_int = IntersectionCount(x, y);
  DCS_CHECK_GE(side, 3 * total_int);  // Lemma 5.5 hypothesis

  // The graph is never materialized: every query the estimator makes is
  // answered by Alice and Bob exchanging the two relevant bits.
  TwoSumGraphOracle oracle(x, y);
  TwoSumSolveResult result;
  // TwoSumGraphOracle computes answers in-process and never fails, so a
  // non-OK status here is a programmer error and value() is safe.
  const LocalQueryMinCutResult mincut =
      EstimateMinCutLocalQueries(oracle, epsilon, mode, rng).value();
  result.mincut_estimate = mincut.estimate;
  result.total_queries = mincut.counts.total();
  result.communication_bits = oracle.bits_exchanged();
  // MINCUT = 2·r·α with r intersecting pairs ⇒ Σ DISJ = t − MINCUT/(2α).
  result.disjoint_estimate =
      static_cast<double>(instance.params.num_pairs) -
      mincut.estimate / (2.0 * instance.params.alpha);
  return result;
}

std::vector<TwoSumSolveResult> SolveTwoSumViaMinCutRepeated(
    const TwoSumInstance& instance, double epsilon, int repetitions,
    uint64_t base_seed, SearchMode mode, int num_threads) {
  DCS_CHECK_GE(repetitions, 0);
  std::vector<TwoSumSolveResult> results(static_cast<size_t>(repetitions));
  // Each repetition owns Rng(SubtaskSeed(base_seed, i)) and its own protocol
  // transcript, so the per-repetition results are bit-identical for every
  // num_threads.
  ParallelFor(num_threads, repetitions, [&](int64_t rep) {
    Rng rng(SubtaskSeed(base_seed, rep));
    results[static_cast<size_t>(rep)] =
        SolveTwoSumViaMinCut(instance, epsilon, rng, mode);
  });
  return results;
}

}  // namespace dcs
