#include "lowerbound/foreach_encoding.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>

#include "graph/incremental_cut_oracle.h"
#include "util/arena.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace dcs {
namespace {

bool IsPowerOfTwo(int v) { return v > 0 && (v & (v - 1)) == 0; }

int Log2Exact(int v) {
  int log = 0;
  while ((1 << log) < v) ++log;
  DCS_CHECK_EQ(1 << log, v);
  return log;
}

// Adds all backward edges (right layer → left layer) of one layer pair.
void AddBackwardEdges(DirectedGraph& graph, int layer_size, int left_base,
                      int right_base, double weight) {
  for (int u = 0; u < layer_size; ++u) {
    for (int v = 0; v < layer_size; ++v) {
      graph.AddEdge(right_base + v, left_base + u, weight);
    }
  }
}

}  // namespace

double ForEachLowerBoundParams::forward_base_weight() const {
  return 2 * c1 * std::log(static_cast<double>(inv_epsilon));
}

double ForEachLowerBoundParams::clip_threshold() const {
  return c1 * std::log(static_cast<double>(inv_epsilon)) * inv_epsilon;
}

void ForEachLowerBoundParams::Check() const {
  DCS_CHECK_GE(inv_epsilon, 2);
  DCS_CHECK(IsPowerOfTwo(inv_epsilon));
  DCS_CHECK_GE(sqrt_beta, 1);
  DCS_CHECK_GE(num_layers, 2);
  DCS_CHECK_GT(c1, 0);
}

ForEachBitLocation LocateForEachBit(const ForEachLowerBoundParams& params,
                                    int64_t q) {
  DCS_CHECK_GE(q, 0);
  DCS_CHECK_LT(q, params.total_bits());
  const int64_t bits_per_layer_pair =
      params.cluster_pairs_per_layer() * params.bits_per_cluster_pair();
  ForEachBitLocation location;
  location.layer_pair = static_cast<int>(q / bits_per_layer_pair);
  int64_t rem = q % bits_per_layer_pair;
  const int64_t cluster_pair = rem / params.bits_per_cluster_pair();
  location.left_cluster = static_cast<int>(cluster_pair / params.sqrt_beta);
  location.right_cluster = static_cast<int>(cluster_pair % params.sqrt_beta);
  location.tensor_row = rem % params.bits_per_cluster_pair();
  return location;
}

ForEachEncoder::ForEachEncoder(const ForEachLowerBoundParams& params)
    : params_(params), tensor_(Log2Exact(params.inv_epsilon)) {
  params_.Check();
}

VertexId ForEachEncoder::VertexOf(int layer, int cluster, int offset) const {
  DCS_CHECK(layer >= 0 && layer < params_.num_layers);
  DCS_CHECK(cluster >= 0 && cluster < params_.sqrt_beta);
  DCS_CHECK(offset >= 0 && offset < params_.inv_epsilon);
  return layer * params_.layer_size() + cluster * params_.inv_epsilon +
         offset;
}

ForEachEncoder::Encoding ForEachEncoder::Encode(
    const std::vector<int8_t>& s) const {
  DCS_CHECK_EQ(static_cast<int64_t>(s.size()), params_.total_bits());
  const int inv_eps = params_.inv_epsilon;
  const double epsilon = 1.0 / inv_eps;
  const double base = params_.forward_base_weight();
  const double clip = params_.clip_threshold();
  const double backward = params_.backward_weight();
  const int k = params_.layer_size();

  Encoding encoding{DirectedGraph(params_.num_vertices()), {}, 0};
  encoding.cluster_failed.assign(
      static_cast<size_t>(params_.num_layers - 1),
      std::vector<uint8_t>(
          static_cast<size_t>(params_.cluster_pairs_per_layer()), 0));

  int64_t cursor = 0;
  for (int p = 0; p + 1 < params_.num_layers; ++p) {
    const int left_base = p * k;
    const int right_base = (p + 1) * k;
    for (int i = 0; i < params_.sqrt_beta; ++i) {
      for (int j = 0; j < params_.sqrt_beta; ++j) {
        // Extract this cluster pair's sign string.
        std::vector<int8_t> z(
            s.begin() + cursor,
            s.begin() + cursor + params_.bits_per_cluster_pair());
        cursor += params_.bits_per_cluster_pair();
        const std::vector<int64_t> x = tensor_.EncodeSigns(z);
        double max_abs = 0;
        for (int64_t value : x) {
          max_abs = std::max(max_abs, std::abs(static_cast<double>(value)));
        }
        const bool failed = max_abs > clip;
        if (failed) {
          encoding
              .cluster_failed[static_cast<size_t>(p)][static_cast<size_t>(
                  i * params_.sqrt_beta + j)] = 1;
          ++encoding.failed_clusters;
        }
        // Forward edges L_i → R_j with the encoded (or all-base) weights.
        for (int u = 0; u < inv_eps; ++u) {
          for (int v = 0; v < inv_eps; ++v) {
            const double weight =
                failed ? base
                       : epsilon * static_cast<double>(
                                       x[static_cast<size_t>(u) *
                                             static_cast<size_t>(inv_eps) +
                                         static_cast<size_t>(v)]) +
                             base;
            encoding.graph.AddEdge(left_base + i * inv_eps + u,
                                   right_base + j * inv_eps + v, weight);
          }
        }
      }
    }
    AddBackwardEdges(encoding.graph, k, left_base, right_base, backward);
  }
  DCS_CHECK_EQ(cursor, params_.total_bits());
  DCS_METRIC_INC("foreach.graph.encoded");
  DCS_METRIC_ADD("foreach.cluster.encoded",
                 static_cast<int64_t>(params_.num_layers - 1) *
                     params_.cluster_pairs_per_layer());
  DCS_METRIC_ADD("foreach.cluster.failed", encoding.failed_clusters);
  return encoding;
}

ForEachDecoder::ForEachDecoder(const ForEachLowerBoundParams& params)
    : params_(params),
      tensor_(Log2Exact(params.inv_epsilon)),
      backward_skeleton_(params.num_vertices()) {
  params_.Check();
  const int k = params_.layer_size();
  for (int p = 0; p + 1 < params_.num_layers; ++p) {
    AddBackwardEdges(backward_skeleton_, k, p * k, (p + 1) * k,
                     params_.backward_weight());
  }
  // Trial runners share one decoder across threads; force the lazy
  // adjacency build now so later const access is read-only.
  backward_skeleton_.BuildAdjacency();
}

std::array<VertexSet, 4> ForEachDecoder::BuildQuerySides(
    const ForEachBitLocation& loc) const {
  const int inv_eps = params_.inv_epsilon;
  const int k = params_.layer_size();
  const int n = params_.num_vertices();
  // This runs once per decoded bit under trial parallelism; unpack the
  // Hadamard factors into per-thread arena scratch instead of allocating
  // two vectors each time (the Scope rewinds the cursor on return, so every
  // bit reuses the same bytes).
  ScratchArena& arena = ThreadLocalScratchArena();
  const ScratchArena::Scope scratch_scope(arena);
  const std::span<int8_t> h_a =
      arena.Alloc<int8_t>(static_cast<size_t>(inv_eps));
  const std::span<int8_t> h_b =
      arena.Alloc<int8_t>(static_cast<size_t>(inv_eps));
  tensor_.LeftFactorInto(loc.tensor_row, h_a);
  tensor_.RightFactorInto(loc.tensor_row, h_b);

  std::array<VertexSet, 4> sides;
  // Query index: 0 → (A,B), 1 → (Ā,B), 2 → (A,B̄), 3 → (Ā,B̄).
  for (int query = 0; query < 4; ++query) {
    const bool use_complement_a = (query == 1 || query == 3);
    const bool use_complement_b = (query == 2 || query == 3);
    VertexSet side(static_cast<size_t>(n), 0);
    // A' ⊂ L_i: offsets where h_a matches the wanted sign.
    const int left_base = loc.layer_pair * k + loc.left_cluster * inv_eps;
    for (int u = 0; u < inv_eps; ++u) {
      const bool in_a = h_a[static_cast<size_t>(u)] > 0;
      if (in_a != use_complement_a) {
        side[static_cast<size_t>(left_base + u)] = 1;
      }
    }
    // V_{p+1} ∖ B'.
    const int right_layer_base = (loc.layer_pair + 1) * k;
    const int right_cluster_base =
        right_layer_base + loc.right_cluster * inv_eps;
    for (int v = 0; v < k; ++v) {
      side[static_cast<size_t>(right_layer_base + v)] = 1;
    }
    for (int v = 0; v < inv_eps; ++v) {
      const bool in_b = h_b[static_cast<size_t>(v)] > 0;
      if (in_b != use_complement_b) {
        side[static_cast<size_t>(right_cluster_base + v)] = 0;
      }
    }
    // All later layers V_{p+2}..V_ℓ.
    for (int v = (loc.layer_pair + 2) * k; v < n; ++v) {
      side[static_cast<size_t>(v)] = 1;
    }
    sides[static_cast<size_t>(query)] = std::move(side);
  }
  return sides;
}

ForEachDecoder::QueryPlan ForEachDecoder::PlanQueries(int64_t q) const {
  const ForEachBitLocation loc = LocateForEachBit(params_, q);
  QueryPlan plan;
  plan.signs = {+1, -1, -1, +1};
  plan.cut_sides = BuildQuerySides(loc);
  for (int query = 0; query < 4; ++query) {
    plan.fixed_weights[static_cast<size_t>(query)] =
        backward_skeleton_.CutWeight(
            plan.cut_sides[static_cast<size_t>(query)]);
  }
  return plan;
}

double ForEachDecoder::EstimateInnerProduct(int64_t q,
                                            const CutOracle& oracle) const {
  const ForEachBitLocation loc = LocateForEachBit(params_, q);
  const std::array<VertexSet, 4> sides = BuildQuerySides(loc);
  // Consecutive query sides differ only inside clusters L_i and R_j
  // (2·(1/ε) vertices), so one oracle session plus an incremental skeleton
  // oracle answer all four queries with O(1/ε) flips between them instead
  // of four O(m) rescans. Query order and per-query noise draws match the
  // one-shot path exactly.
  const int k = params_.layer_size();
  const int inv_eps = params_.inv_epsilon;
  const int left_base = loc.layer_pair * k + loc.left_cluster * inv_eps;
  const int right_base =
      (loc.layer_pair + 1) * k + loc.right_cluster * inv_eps;
  const auto session = oracle.BeginSession(sides[0]);
  IncrementalCutOracle fixed(backward_skeleton_, sides[0]);
  static constexpr std::array<int, 4> kSigns = {+1, -1, -1, +1};
  double estimate = 0;
  for (int query = 0; query < 4; ++query) {
    if (query > 0) {
      const VertexSet& prev = sides[static_cast<size_t>(query - 1)];
      const VertexSet& next = sides[static_cast<size_t>(query)];
      for (const int base : {left_base, right_base}) {
        for (int off = 0; off < inv_eps; ++off) {
          const size_t v = static_cast<size_t>(base + off);
          if (prev[v] != next[v]) {
            session->Flip(base + off);
            fixed.Flip(base + off);
          }
        }
      }
    }
    estimate += kSigns[static_cast<size_t>(query)] *
                (session->Query() - fixed.value());
  }
  return estimate;
}

int8_t ForEachDecoder::DecodeBit(int64_t q, const CutOracle& oracle) const {
  DCS_METRIC_INC("foreach.bit.decoded");
  return EstimateInnerProduct(q, oracle) >= 0 ? 1 : -1;
}

ForEachTrialResult RunForEachTrial(
    const ForEachLowerBoundParams& params, int probe_count, Rng& rng,
    const std::function<CutOracle(const DirectedGraph&)>& oracle_factory) {
  params.Check();
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const ForEachEncoder encoder(params);
  const ForEachEncoder::Encoding encoding = encoder.Encode(s);
  const ForEachDecoder decoder(params);
  const CutOracle oracle = oracle_factory(encoding.graph);
  ForEachTrialResult result;
  for (int probe = 0; probe < probe_count; ++probe) {
    const int64_t q = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(params.total_bits())));
    const int8_t decoded = decoder.DecodeBit(q, oracle);
    ++result.probes;
    if (decoded == s[static_cast<size_t>(q)]) ++result.correct;
  }
  return result;
}

ForEachTrialResult RunForEachTrials(const ForEachLowerBoundParams& params,
                                    int num_trials, int probe_count,
                                    uint64_t base_seed,
                                    const SeededCutOracleFactory& oracle_factory,
                                    int num_threads) {
  params.Check();
  DCS_CHECK_GE(num_trials, 0);
  std::vector<ForEachTrialResult> slots(static_cast<size_t>(num_trials));
  ParallelFor(num_threads, num_trials, [&](int64_t trial) {
    Rng rng(SubtaskSeed(base_seed, trial));
    slots[static_cast<size_t>(trial)] = RunForEachTrial(
        params, probe_count, rng,
        [&oracle_factory, &rng](const DirectedGraph& graph) {
          return oracle_factory(graph, rng);
        });
  });
  ForEachTrialResult result;
  for (const ForEachTrialResult& slot : slots) {
    result.probes += slot.probes;
    result.correct += slot.correct;
  }
  return result;
}

}  // namespace dcs
