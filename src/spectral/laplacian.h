// Graph Laplacians, effective resistances, and dense linear solves.
//
// Substrate for the spectral side of the paper's related work ([SS11],
// [ST11], spectral sketches): the effective resistance R(u, v) of an edge
// is computed from the Laplacian pseudo-inverse, obtained here by a dense
// Cholesky-style factorization of the grounded Laplacian — exact (up to
// floating point) and adequate for the n ≤ ~1000 instances this library
// experiments on.

#ifndef DCS_SPECTRAL_LAPLACIAN_H_
#define DCS_SPECTRAL_LAPLACIAN_H_

#include <vector>

#include "graph/ugraph.h"
#include "util/random.h"

namespace dcs {

// Dense symmetric positive-definite solver (LDLᵀ without pivoting).
// Factorizes once, solves many right-hand sides.
class DenseSpdSolver {
 public:
  // `matrix` is row-major n×n, symmetric positive definite.
  DenseSpdSolver(std::vector<double> matrix, int n);

  // Solves A·x = b.
  std::vector<double> Solve(const std::vector<double>& b) const;

  int size() const { return n_; }

 private:
  int n_;
  std::vector<double> factor_;  // packed L and D
};

// Effective resistances of a connected weighted graph.
class EffectiveResistances {
 public:
  // Factorizes the grounded Laplacian (last vertex grounded).
  // Requires a connected graph with >= 2 vertices and positive weights.
  explicit EffectiveResistances(const UndirectedGraph& graph);

  // R(u, v) = (e_u − e_v)ᵀ L⁺ (e_u − e_v). Requires u != v.
  double Resistance(VertexId u, VertexId v) const;

  // Resistances of every edge of the graph passed at construction
  // (parallel to graph.edges()).
  std::vector<double> EdgeResistances() const;

 private:
  // Potential vector for unit current injected at u, extracted at the
  // ground vertex; memoized per u.
  const std::vector<double>& Potentials(VertexId u) const;

  int n_;
  const UndirectedGraph* graph_;
  DenseSpdSolver solver_;
  mutable std::vector<std::vector<double>> potentials_cache_;
};

// Spielman–Srivastava spectral sparsifier: keeps edge e with probability
// min(1, c·log(n)·w_e·R_e/ε²), reweighted by 1/p_e. A spectral sparsifier
// is in particular a cut sparsifier, so the same cut-error harness applies.
UndirectedGraph SpectralSparsify(const UndirectedGraph& graph,
                                 double epsilon, Rng& rng,
                                 double oversample_c = 0.5);

}  // namespace dcs

#endif  // DCS_SPECTRAL_LAPLACIAN_H_
