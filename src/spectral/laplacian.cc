#include "spectral/laplacian.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/connectivity.h"
#include "util/random.h"

namespace dcs {

DenseSpdSolver::DenseSpdSolver(std::vector<double> matrix, int n)
    : n_(n), factor_(std::move(matrix)) {
  DCS_CHECK_GE(n, 1);
  DCS_CHECK_EQ(static_cast<int64_t>(factor_.size()),
               static_cast<int64_t>(n) * n);
  // In-place LDLᵀ: strictly-lower triangle holds L, diagonal holds D.
  for (int j = 0; j < n_; ++j) {
    double d = factor_[static_cast<size_t>(j) * n_ + j];
    for (int k = 0; k < j; ++k) {
      const double ljk = factor_[static_cast<size_t>(j) * n_ + k];
      d -= ljk * ljk * factor_[static_cast<size_t>(k) * n_ + k];
    }
    DCS_CHECK_GT(d, 0);  // positive definiteness
    factor_[static_cast<size_t>(j) * n_ + j] = d;
    for (int i = j + 1; i < n_; ++i) {
      double value = factor_[static_cast<size_t>(i) * n_ + j];
      for (int k = 0; k < j; ++k) {
        value -= factor_[static_cast<size_t>(i) * n_ + k] *
                 factor_[static_cast<size_t>(j) * n_ + k] *
                 factor_[static_cast<size_t>(k) * n_ + k];
      }
      factor_[static_cast<size_t>(i) * n_ + j] = value / d;
    }
  }
}

std::vector<double> DenseSpdSolver::Solve(const std::vector<double>& b) const {
  DCS_CHECK_EQ(static_cast<int>(b.size()), n_);
  std::vector<double> x = b;
  // Forward: L z = b.
  for (int i = 0; i < n_; ++i) {
    for (int k = 0; k < i; ++k) {
      x[static_cast<size_t>(i)] -=
          factor_[static_cast<size_t>(i) * n_ + k] * x[static_cast<size_t>(k)];
    }
  }
  // Diagonal: D y = z.
  for (int i = 0; i < n_; ++i) {
    x[static_cast<size_t>(i)] /= factor_[static_cast<size_t>(i) * n_ + i];
  }
  // Backward: Lᵀ x = y.
  for (int i = n_ - 1; i >= 0; --i) {
    for (int k = i + 1; k < n_; ++k) {
      x[static_cast<size_t>(i)] -=
          factor_[static_cast<size_t>(k) * n_ + i] * x[static_cast<size_t>(k)];
    }
  }
  return x;
}

namespace {

// Grounded Laplacian (last vertex removed), row-major (n−1)×(n−1).
std::vector<double> GroundedLaplacian(const UndirectedGraph& graph) {
  const int n = graph.num_vertices();
  const int m = n - 1;
  std::vector<double> matrix(static_cast<size_t>(m) * m, 0);
  for (const Edge& e : graph.edges()) {
    if (e.weight <= 0) continue;
    const int u = e.src;
    const int v = e.dst;
    if (u < m) matrix[static_cast<size_t>(u) * m + u] += e.weight;
    if (v < m) matrix[static_cast<size_t>(v) * m + v] += e.weight;
    if (u < m && v < m) {
      matrix[static_cast<size_t>(u) * m + v] -= e.weight;
      matrix[static_cast<size_t>(v) * m + u] -= e.weight;
    }
  }
  return matrix;
}

}  // namespace

EffectiveResistances::EffectiveResistances(const UndirectedGraph& graph)
    : n_(graph.num_vertices()),
      graph_(&graph),
      solver_(GroundedLaplacian(graph), graph.num_vertices() - 1),
      potentials_cache_(static_cast<size_t>(graph.num_vertices())) {
  DCS_CHECK_GE(n_, 2);
  DCS_CHECK(IsConnected(graph));
}

const std::vector<double>& EffectiveResistances::Potentials(
    VertexId u) const {
  DCS_CHECK(u >= 0 && u < n_);
  auto& cached = potentials_cache_[static_cast<size_t>(u)];
  if (!cached.empty()) return cached;
  const int m = n_ - 1;
  if (u == n_ - 1) {
    // Grounded vertex: zero potentials by convention.
    cached.assign(static_cast<size_t>(m), 0.0);
    return cached;
  }
  std::vector<double> rhs(static_cast<size_t>(m), 0.0);
  rhs[static_cast<size_t>(u)] = 1.0;
  cached = solver_.Solve(rhs);
  return cached;
}

double EffectiveResistances::Resistance(VertexId u, VertexId v) const {
  DCS_CHECK(u >= 0 && u < n_);
  DCS_CHECK(v >= 0 && v < n_);
  DCS_CHECK_NE(u, v);
  const std::vector<double>& phi_u = Potentials(u);
  const std::vector<double>& phi_v = Potentials(v);
  auto at = [this](const std::vector<double>& phi, VertexId w) {
    return w == n_ - 1 ? 0.0 : phi[static_cast<size_t>(w)];
  };
  return at(phi_u, u) - at(phi_u, v) - at(phi_v, u) + at(phi_v, v);
}

std::vector<double> EffectiveResistances::EdgeResistances() const {
  std::vector<double> resistances;
  resistances.reserve(graph_->edges().size());
  for (const Edge& e : graph_->edges()) {
    resistances.push_back(Resistance(e.src, e.dst));
  }
  return resistances;
}

UndirectedGraph SpectralSparsify(const UndirectedGraph& graph,
                                 double epsilon, Rng& rng,
                                 double oversample_c) {
  DCS_CHECK(epsilon > 0 && epsilon < 1);
  const EffectiveResistances resistances(graph);
  const std::vector<double> edge_r = resistances.EdgeResistances();
  const double n = std::max(2, graph.num_vertices());
  const double rate = oversample_c * std::log(n) / (epsilon * epsilon);
  UndirectedGraph sparsifier(graph.num_vertices());
  for (size_t i = 0; i < graph.edges().size(); ++i) {
    const Edge& e = graph.edges()[i];
    if (e.weight <= 0) continue;
    const double p = std::min(1.0, rate * e.weight * edge_r[i]);
    if (rng.Bernoulli(p)) {
      sparsifier.AddEdge(e.src, e.dst, e.weight / p);
    }
  }
  return sparsifier;
}

}  // namespace dcs
