// Warm-tier persistence: dump/reload of the striped-LRU cut-query cache
// (DESIGN.md §15). A worker draining on SIGTERM snapshots its hottest
// cache entries to `<store-dir>/cache.snap`; the replacement worker
// reloads them at boot so the first post-restart queries hit warm.
//
// File layout mirrors the serialization envelope, with its own magic:
//
//   magic          16 bits   0xCA5E
//   version         8 bits   1
//   payload bits   Elias-gamma
//   FNV-1a         32 bits   over the padded payload bytes
//   payload:
//     entry count  Elias-gamma
//     per entry:   object id (gamma), word count (gamma),
//                  words (64 bits each), value (64-bit double)
//   zero padding to a byte boundary
//
// A snapshot is an *optimization*, never a source of truth: any parse
// failure (bad magic, checksum mismatch, hostile counts) returns kDataLoss
// and the caller boots with a cold cache. Counts are capped against the
// remaining bits before any allocation, per the hostile-receiver rules.
//
// This module speaks its own entry type rather than the serving layer's
// (serve depends on store, not the other way around); the serving tier
// converts to/from CutQueryCache::SnapshotEntry at the call site.

#ifndef DCS_STORE_CACHE_SNAPSHOT_H_
#define DCS_STORE_CACHE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dcs {

// One cached (object, cut side) -> value triple in portable form. The
// side is the canonical bit-packed membership (64 vertices per word).
struct CacheSnapshotEntry {
  int64_t object = 0;
  std::vector<uint64_t> side_words;
  double value = 0;
};

// Encodes entries into snapshot bytes.
std::vector<uint8_t> EncodeCacheSnapshot(
    const std::vector<CacheSnapshotEntry>& entries);

// Decodes snapshot bytes. kDataLoss on any malformed input.
StatusOr<std::vector<CacheSnapshotEntry>> DecodeCacheSnapshot(
    const std::vector<uint8_t>& bytes);

// Writes entries to `path` atomically (temp file + rename + fsync).
Status WriteCacheSnapshotFile(const std::string& path,
                              const std::vector<CacheSnapshotEntry>& entries);

// Reads and decodes `path`. kNotFound when the file does not exist (a
// normal cold boot); kDataLoss when it exists but fails to parse.
StatusOr<std::vector<CacheSnapshotEntry>> ReadCacheSnapshotFile(
    const std::string& path);

}  // namespace dcs

#endif  // DCS_STORE_CACHE_SNAPSHOT_H_
