// Append-only segment file format for the disk-backed sketch store
// (DESIGN.md §15).
//
// A segment is a byte stream of length-prefixed records, optionally
// terminated by an index footer plus a fixed-width seal trailer:
//
//   [record]* [index footer envelope] [seal trailer (16 bytes)]
//
// Record (whole bytes; every field fixed-width so the extent is a pure
// function of the header):
//   magic           16 bits   0x5E60 (distinct from every other magic)
//   object id       64 bits
//   payload kind     8 bits   StreamKind of the payload envelope
//   payload bits    64 bits   exact bit count of the payload
//   header FNV-1a   32 bits   over the 19 header bytes above
//   payload FNV-1a  32 bits   over the padded payload bytes
//   payload         ceil(bits/8) bytes, final partial byte zero-padded
//
// Index footer: a standard serialization envelope of kind
// StreamKind::kSegmentIndex whose payload maps object id → (kind, byte
// offset, byte length) for every record in the segment, zero-padded to a
// byte boundary.
//
// Seal trailer (what makes a segment *sealed*): footer byte offset
// (64 bits), magic 0x5EA1D5CE (32), FNV-1a over the first 12 trailer bytes
// (32). Sealing fsyncs; an unsealed segment is by definition still
// crash-exposed.
//
// Hostile-input discipline (the transport's receiver rules): every field
// is Try-read, every declared count/length is capped against the remaining
// bytes before any allocation, zero padding is enforced, and no input can
// cause a crash, hang, or unbounded allocation. ScanSegment classifies a
// damaged segment as either *recoverable* (a torn tail: truncate at the
// last whole record) or *corrupt* (damage before the tail, or inside a
// sealed segment) — never silently wrong bytes.

#ifndef DCS_STORE_SEGMENT_H_
#define DCS_STORE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sketch/serialization.h"
#include "util/bitio.h"
#include "util/status.h"

namespace dcs {

// One record: an object's already-enveloped bytes plus its identity.
struct SegmentRecord {
  int64_t object_id = 0;
  StreamKind kind = StreamKind::kDirectedGraph;
  std::vector<uint8_t> payload;  // padded bytes of the payload envelope
  int64_t payload_bits = 0;      // exact bit count within `payload`
};

// One index footer entry (byte offsets within the segment).
struct SegmentIndexEntry {
  int64_t object_id = 0;
  StreamKind kind = StreamKind::kDirectedGraph;
  int64_t byte_offset = 0;  // where the record's header starts
  int64_t byte_length = 0;  // whole record, header included
};

// Serialized byte length of a record with a payload of `payload_bits`.
int64_t SegmentRecordByteLength(int64_t payload_bits);

// Appends one record to `out` (whole bytes; `out` must be byte-aligned).
// CHECK-fails on malformed inputs — writers are trusted.
void AppendSegmentRecord(const SegmentRecord& record,
                         std::vector<uint8_t>& out);

// Appends the index footer envelope + seal trailer for `entries` to `out`.
void AppendSegmentSeal(const std::vector<SegmentIndexEntry>& entries,
                       std::vector<uint8_t>& out);

// The footer envelope + seal trailer as standalone bytes, for appending to
// a segment file whose first `footer_offset` bytes are already on disk.
std::vector<uint8_t> BuildSegmentSeal(
    const std::vector<SegmentIndexEntry>& entries, int64_t footer_offset);

// Parses exactly one record occupying the whole of `bytes` (a region read
// back from a known index location). kDataLoss on any mismatch, including
// trailing bytes.
StatusOr<SegmentRecord> ParseSegmentRecord(const std::vector<uint8_t>& bytes);

// The result of scanning a segment's bytes.
struct SegmentScan {
  std::vector<SegmentRecord> records;  // the valid prefix, in file order
  bool sealed = false;                 // valid footer + trailer found
  // Bytes of the valid record prefix. Recovery truncates the file here.
  int64_t valid_prefix_bytes = 0;
  // True when trailing bytes past the prefix were cut (torn tail).
  bool recovered_torn_tail = false;
  int64_t dropped_tail_bytes = 0;
};

// Scans a segment image. OK (possibly with recovered_torn_tail) when the
// bytes are a valid record prefix; kDataLoss when damage sits *before* the
// tail (a record whose payload fails its checksum but whose successors are
// intact, or any mismatch inside a sealed segment) — the caller must treat
// the segment as corrupt rather than truncate committed data away.
StatusOr<SegmentScan> ScanSegment(const std::vector<uint8_t>& bytes);

// Parses an index footer payload (the envelope's payload bits). Entry
// count capped against the remaining bits before allocation; offsets and
// lengths validated non-negative. Exposed for fsck and tests.
StatusOr<std::vector<SegmentIndexEntry>> ParseSegmentIndexPayload(
    BitReader& reader);

// Builds the index footer envelope (without the trailer) for `entries`.
void WriteSegmentIndexEnvelope(const std::vector<SegmentIndexEntry>& entries,
                               BitWriter& out);

}  // namespace dcs

#endif  // DCS_STORE_SEGMENT_H_
