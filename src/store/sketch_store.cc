#include "store/sketch_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/check.h"
#include "util/metrics.h"

namespace dcs {
namespace {

Status ErrnoError(const std::string& what, const std::string& path) {
  const std::string message =
      what + " " + path + ": " + std::strerror(errno);
  return errno == ENOENT ? NotFoundError(message) : InternalError(message);
}

StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoError("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = ErrnoError("cannot stat", path);
    ::close(fd);
    return status;
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(st.st_size));
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t got =
        ::read(fd, bytes.data() + done, bytes.size() - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      const Status status = ErrnoError("cannot read", path);
      ::close(fd);
      return status;
    }
    if (got == 0) break;  // shrank underneath us; keep what we have
    done += static_cast<size_t>(got);
  }
  bytes.resize(done);
  ::close(fd);
  return bytes;
}

Status WriteAll(int fd, const uint8_t* data, size_t size,
                const std::string& path) {
  size_t done = 0;
  while (done < size) {
    const ssize_t wrote = ::write(fd, data + done, size - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("cannot write", path);
    }
    done += static_cast<size_t>(wrote);
  }
  return OkStatus();
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoError("cannot open directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoError("cannot fsync directory", dir);
  return OkStatus();
}

// segment-NNNNNN.seg -> NNNNNN, or -1 for anything else.
int64_t SegmentNumberOf(const std::string& name) {
  constexpr const char* kPrefix = "segment-";
  constexpr const char* kSuffix = ".seg";
  const size_t prefix_len = std::strlen(kPrefix);
  const size_t suffix_len = std::strlen(kSuffix);
  if (name.size() <= prefix_len + suffix_len) return -1;
  if (name.compare(0, prefix_len, kPrefix) != 0) return -1;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return -1;
  }
  int64_t number = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    number = number * 10 + (name[i] - '0');
    if (number > (int64_t{1} << 40)) return -1;
  }
  return number;
}

StatusOr<std::vector<std::pair<int64_t, std::string>>> ListSegmentFiles(
    const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return ErrnoError("cannot open directory", dir);
  std::vector<std::pair<int64_t, std::string>> files;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    const int64_t number = SegmentNumberOf(name);
    if (number >= 0) files.emplace_back(number, name);
  }
  ::closedir(handle);
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

void SketchStoreOptions::Check() const {
  DCS_CHECK_GE(max_segment_bytes, 1);
}

SketchStore::SketchStore(std::string dir, SketchStoreOptions options)
    : dir_(std::move(dir)), options_(options) {}

SketchStore::~SketchStore() {
  if (active_fd_ >= 0) ::close(active_fd_);
}

std::string SketchStore::SegmentPath(int64_t number) const {
  char name[32];
  std::snprintf(name, sizeof(name), "segment-%06lld.seg",
                static_cast<long long>(number));
  return dir_ + "/" + name;
}

StatusOr<std::unique_ptr<SketchStore>> SketchStore::Open(
    const std::string& dir, SketchStoreOptions options) {
  options.Check();
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoError("cannot create store directory", dir);
  }
  std::unique_ptr<SketchStore> store(
      new SketchStore(dir, options));
  DCS_ASSIGN_OR_RETURN(const auto files, ListSegmentFiles(dir));
  for (const auto& [number, name] : files) {
    const std::string path = dir + "/" + name;
    DCS_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                         ReadFileBytes(path));
    auto scan = ScanSegment(bytes);
    if (!scan.ok()) {
      return DataLossError("data_loss: segment " + name + ": " +
                           scan.status().message());
    }
    if (scan->recovered_torn_tail) {
      // Cut the torn tail off on disk so appends extend a clean prefix.
      if (::truncate(path.c_str(), scan->valid_prefix_bytes) != 0) {
        return ErrnoError("cannot truncate torn tail of", path);
      }
      ++store->open_report_.torn_tails_recovered;
      store->open_report_.dropped_tail_bytes += scan->dropped_tail_bytes;
      DCS_METRIC_INC("store.torn_tails_recovered");
    }
    const size_t segment_index = store->segment_files_.size();
    store->segment_files_.push_back(name);
    store->segment_bytes_.push_back(scan->valid_prefix_bytes +
                                    (scan->sealed
                                         ? static_cast<int64_t>(bytes.size()) -
                                               scan->valid_prefix_bytes
                                         : 0));
    store->highest_number_ = std::max(store->highest_number_, number);
    int64_t offset = 0;
    std::vector<SegmentIndexEntry> entries;
    for (const SegmentRecord& record : scan->records) {
      const int64_t length = SegmentRecordByteLength(record.payload_bits);
      Location location;
      location.segment = segment_index;
      location.byte_offset = offset;
      location.byte_length = length;
      location.kind = record.kind;
      store->index_[record.object_id] = location;
      SegmentIndexEntry entry;
      entry.object_id = record.object_id;
      entry.kind = record.kind;
      entry.byte_offset = offset;
      entry.byte_length = length;
      entries.push_back(entry);
      offset += length;
      ++store->open_report_.records;
    }
    if (!scan->sealed) {
      // The newest unsealed segment becomes the active one; by the seal-
      // before-roll invariant it is the last file, so later iterations
      // (which would all be sealed anyway) cannot displace live state.
      if (store->active_fd_ >= 0) ::close(store->active_fd_);
      store->active_fd_ =
          ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
      if (store->active_fd_ < 0) {
        return ErrnoError("cannot reopen active segment", path);
      }
      store->active_segment_ = segment_index;
      store->active_number_ = number;
      store->active_entries_ = std::move(entries);
    }
  }
  store->open_report_.segments =
      static_cast<int64_t>(store->segment_files_.size());
  store->open_report_.objects = static_cast<int64_t>(store->index_.size());
  DCS_METRIC_INC("store.opens");
  return store;
}

Status SketchStore::OpenActiveSegment() {
  const int64_t number = highest_number_ + 1;
  const std::string path = SegmentPath(number);
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoError("cannot create segment", path);
  active_fd_ = fd;
  active_number_ = number;
  highest_number_ = number;
  active_segment_ = segment_files_.size();
  segment_files_.push_back(path.substr(dir_.size() + 1));
  segment_bytes_.push_back(0);
  active_entries_.clear();
  return OkStatus();
}

Status SketchStore::AppendToActive(const std::vector<uint8_t>& bytes) {
  const std::string path = SegmentPath(active_number_);
  DCS_RETURN_IF_ERROR(WriteAll(active_fd_, bytes.data(), bytes.size(), path));
  segment_bytes_[active_segment_] += static_cast<int64_t>(bytes.size());
  return OkStatus();
}

Status SketchStore::Put(int64_t object_id, StreamKind kind,
                        const std::vector<uint8_t>& bytes,
                        int64_t bit_count) {
  if (object_id < 0) {
    return InvalidArgumentError("store object id must be nonnegative");
  }
  if (bit_count < 0 ||
      static_cast<int64_t>(bytes.size()) != (bit_count + 7) / 8) {
    return InvalidArgumentError("store payload bytes do not match bit count");
  }
  if (bit_count % 8 != 0 &&
      (bytes.back() >> (bit_count % 8)) != 0) {
    return InvalidArgumentError("store payload padding is not zero");
  }
  // The payload must be a serving-ready envelope of the declared kind —
  // the store refuses bytes it could never hand back to a deserializer.
  {
    BitReader reader(bytes);
    DCS_RETURN_IF_ERROR(ReadEnvelopePayload(kind, reader).status());
    if (reader.position() != bit_count) {
      return InvalidArgumentError(
          "store payload is not exactly one envelope of the declared kind");
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_fd_ >= 0 &&
      segment_bytes_[active_segment_] >= options_.max_segment_bytes) {
    // Roll: seal the full segment (fsync) before starting the next.
    const std::vector<uint8_t> seal = BuildSegmentSeal(
        active_entries_, segment_bytes_[active_segment_]);
    DCS_RETURN_IF_ERROR(AppendToActive(seal));
    if (::fsync(active_fd_) != 0) {
      return ErrnoError("cannot fsync segment", SegmentPath(active_number_));
    }
    ::close(active_fd_);
    active_fd_ = -1;
    active_entries_.clear();
    DCS_METRIC_INC("store.segments_sealed");
  }
  if (active_fd_ < 0) {
    DCS_RETURN_IF_ERROR(OpenActiveSegment());
  }
  SegmentRecord record;
  record.object_id = object_id;
  record.kind = kind;
  record.payload = bytes;
  record.payload_bits = bit_count;
  std::vector<uint8_t> encoded;
  AppendSegmentRecord(record, encoded);
  SegmentIndexEntry entry;
  entry.object_id = object_id;
  entry.kind = kind;
  entry.byte_offset = segment_bytes_[active_segment_];
  entry.byte_length = static_cast<int64_t>(encoded.size());
  DCS_RETURN_IF_ERROR(AppendToActive(encoded));
  active_entries_.push_back(entry);
  Location location;
  location.segment = active_segment_;
  location.byte_offset = entry.byte_offset;
  location.byte_length = entry.byte_length;
  location.kind = kind;
  index_[object_id] = location;
  // Keep the live record count current — Compact derives its
  // records_dropped from it, so it must include post-Open appends.
  ++open_report_.records;
  DCS_METRIC_INC("store.puts");
  return OkStatus();
}

StatusOr<StoredObject> SketchStore::Get(int64_t object_id) const {
  Location location;
  std::string file;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(object_id);
    if (it == index_.end()) {
      return NotFoundError("store has no object " +
                           std::to_string(object_id));
    }
    location = it->second;
    file = segment_files_[location.segment];
  }
  const std::string path = dir_ + "/" + file;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoError("cannot open segment", path);
  std::vector<uint8_t> bytes(static_cast<size_t>(location.byte_length));
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t got = ::pread(
        fd, bytes.data() + done, bytes.size() - done,
        static_cast<off_t>(location.byte_offset) +
            static_cast<off_t>(done));
    if (got < 0) {
      if (errno == EINTR) continue;
      const Status status = ErrnoError("cannot read segment", path);
      ::close(fd);
      return status;
    }
    if (got == 0) {
      ::close(fd);
      return DataLossError("segment " + file +
                           " is shorter than its index");
    }
    done += static_cast<size_t>(got);
  }
  ::close(fd);
  // Get re-verifies the record's checksums: bytes that rotted on disk
  // since Open surface as kDataLoss here, never as wrong payload bits.
  DCS_ASSIGN_OR_RETURN(SegmentRecord record, ParseSegmentRecord(bytes));
  if (record.object_id != object_id) {
    return DataLossError("segment record holds object " +
                         std::to_string(record.object_id) + ", expected " +
                         std::to_string(object_id));
  }
  StoredObject object;
  object.kind = record.kind;
  object.bytes = std::move(record.payload);
  object.bit_count = record.payload_bits;
  DCS_METRIC_INC("store.gets");
  return object;
}

std::vector<int64_t> SketchStore::ListObjects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int64_t> ids;
  ids.reserve(index_.size());
  for (const auto& [id, location] : index_) ids.push_back(id);
  return ids;  // std::map iterates ascending
}

Status SketchStore::Seal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_fd_ < 0) return OkStatus();
  const std::vector<uint8_t> seal =
      BuildSegmentSeal(active_entries_, segment_bytes_[active_segment_]);
  DCS_RETURN_IF_ERROR(AppendToActive(seal));
  if (::fsync(active_fd_) != 0) {
    return ErrnoError("cannot fsync segment", SegmentPath(active_number_));
  }
  ::close(active_fd_);
  active_fd_ = -1;
  active_entries_.clear();
  DCS_RETURN_IF_ERROR(FsyncDir(dir_));
  DCS_METRIC_INC("store.segments_sealed");
  return OkStatus();
}

Status SketchStore::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_fd_ < 0) return OkStatus();
  if (::fsync(active_fd_) != 0) {
    return ErrnoError("cannot fsync segment", SegmentPath(active_number_));
  }
  return OkStatus();
}

StatusOr<StoreCompactReport> SketchStore::Compact() {
  // Read the newest version of every object first (Get takes the lock
  // itself), then swap the files under the lock.
  std::vector<int64_t> ids = ListObjects();
  std::vector<StoredObject> objects;
  objects.reserve(ids.size());
  for (const int64_t id : ids) {
    DCS_ASSIGN_OR_RETURN(StoredObject object, Get(id));
    objects.push_back(std::move(object));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  StoreCompactReport report;
  for (const int64_t size : segment_bytes_) report.bytes_before += size;
  report.records_dropped =
      open_report_.records - static_cast<int64_t>(ids.size());

  std::vector<uint8_t> image;
  std::vector<SegmentIndexEntry> entries;
  for (size_t i = 0; i < ids.size(); ++i) {
    SegmentRecord record;
    record.object_id = ids[i];
    record.kind = objects[i].kind;
    record.payload = std::move(objects[i].bytes);
    record.payload_bits = objects[i].bit_count;
    SegmentIndexEntry entry;
    entry.object_id = record.object_id;
    entry.kind = record.kind;
    entry.byte_offset = static_cast<int64_t>(image.size());
    AppendSegmentRecord(record, image);
    entry.byte_length =
        static_cast<int64_t>(image.size()) - entry.byte_offset;
    entries.push_back(entry);
  }
  AppendSegmentSeal(entries, image);

  const int64_t number = highest_number_ + 1;
  const std::string path = SegmentPath(number);
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoError("cannot create segment", path);
  const Status written = WriteAll(fd, image.data(), image.size(), path);
  if (!written.ok()) {
    ::close(fd);
    return written;
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return ErrnoError("cannot fsync segment", path);
  }
  ::close(fd);

  // The compacted segment is durable; now the old files can go.
  if (active_fd_ >= 0) {
    ::close(active_fd_);
    active_fd_ = -1;
    active_entries_.clear();
  }
  for (const std::string& file : segment_files_) {
    ::unlink((dir_ + "/" + file).c_str());
  }
  DCS_RETURN_IF_ERROR(FsyncDir(dir_));

  segment_files_.assign(1, path.substr(dir_.size() + 1));
  segment_bytes_.assign(1, static_cast<int64_t>(image.size()));
  highest_number_ = number;
  index_.clear();
  for (const SegmentIndexEntry& entry : entries) {
    Location location;
    location.segment = 0;
    location.byte_offset = entry.byte_offset;
    location.byte_length = entry.byte_length;
    location.kind = entry.kind;
    index_[entry.object_id] = location;
  }
  open_report_.records = static_cast<int64_t>(entries.size());
  report.bytes_after = static_cast<int64_t>(image.size());
  DCS_METRIC_INC("store.compactions");
  return report;
}

int64_t SketchStore::num_objects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(index_.size());
}

int64_t SketchStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const int64_t size : segment_bytes_) total += size;
  return total;
}

StatusOr<StoreFsckReport> FsckSketchStore(const std::string& dir) {
  DCS_ASSIGN_OR_RETURN(const auto files, ListSegmentFiles(dir));
  StoreFsckReport report;
  for (const auto& [number, name] : files) {
    StoreFsckReport::Segment segment;
    segment.file = name;
    DCS_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                         ReadFileBytes(dir + "/" + name));
    const auto scan = ScanSegment(bytes);
    if (!scan.ok()) {
      segment.state = "corrupt";
      segment.detail = scan.status().message();
      ++report.corrupt_segments;
    } else {
      segment.records = static_cast<int64_t>(scan->records.size());
      if (scan->recovered_torn_tail) {
        segment.state = "recovered_torn_tail";
        segment.dropped_tail_bytes = scan->dropped_tail_bytes;
        ++report.recovered_segments;
      } else {
        segment.state = scan->sealed ? "sealed" : "unsealed";
      }
    }
    report.segments.push_back(std::move(segment));
  }
  return report;
}

}  // namespace dcs
