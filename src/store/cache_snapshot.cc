#include "store/cache_snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "util/bitio.h"
#include "util/metrics.h"

namespace dcs {
namespace {

constexpr uint64_t kSnapshotMagic = 0xCA5E;
constexpr uint64_t kSnapshotVersion = 1;
// Matches the serialization layer's vertex cap: no packed side needs more
// words than this, and no honest snapshot can exceed it.
constexpr uint64_t kMaxSideWords = ((uint64_t{1} << 28) + 63) / 64;
// Floor on one encoded entry: 1-bit gamma id + 1-bit gamma count + 64-bit
// value. Declared entry counts are capped against remaining/66.
constexpr int64_t kMinEntryBits = 66;

uint32_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint32_t hash = 2166136261u;
  for (uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 16777619u;
  }
  return hash;
}

Status SnapshotDataLoss(const std::string& what) {
  return DataLossError("cache snapshot: " + what);
}

}  // namespace

std::vector<uint8_t> EncodeCacheSnapshot(
    const std::vector<CacheSnapshotEntry>& entries) {
  BitWriter payload;
  payload.WriteEliasGamma(entries.size());
  for (const auto& entry : entries) {
    payload.WriteEliasGamma(static_cast<uint64_t>(entry.object));
    payload.WriteEliasGamma(entry.side_words.size());
    for (uint64_t word : entry.side_words) payload.WriteBits(word, 64);
    payload.WriteDouble(entry.value);
  }
  BitWriter out;
  out.WriteBits(kSnapshotMagic, 16);
  out.WriteBits(kSnapshotVersion, 8);
  out.WriteEliasGamma(static_cast<uint64_t>(payload.bit_count()));
  out.WriteBits(Fnv1a(payload.bytes()), 32);
  out.AppendBits(payload.bytes(), payload.bit_count());
  return out.bytes();
}

StatusOr<std::vector<CacheSnapshotEntry>> DecodeCacheSnapshot(
    const std::vector<uint8_t>& bytes) {
  BitReader reader(bytes);
  DCS_ASSIGN_OR_RETURN(const uint64_t magic, reader.TryReadBits(16));
  if (magic != kSnapshotMagic) return SnapshotDataLoss("bad magic");
  DCS_ASSIGN_OR_RETURN(const uint64_t version, reader.TryReadBits(8));
  if (version != kSnapshotVersion) {
    return SnapshotDataLoss("unsupported version " + std::to_string(version));
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t bit_count, reader.TryReadEliasGamma());
  if (reader.RemainingBits() < 32 ||
      bit_count > static_cast<uint64_t>(reader.RemainingBits() - 32)) {
    return SnapshotDataLoss("declared payload longer than file");
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t checksum, reader.TryReadBits(32));
  // Extract the payload bytes first and checksum them — exactly the
  // envelope reader's order — then parse entries from a fresh reader.
  std::vector<uint8_t> payload(static_cast<size_t>((bit_count + 7) / 8), 0);
  for (uint64_t bit = 0; bit < bit_count; ++bit) {
    DCS_ASSIGN_OR_RETURN(const int value, reader.TryReadBit());
    if (value) {
      payload[static_cast<size_t>(bit >> 3)] |=
          static_cast<uint8_t>(1u << (bit & 7));
    }
  }
  if (Fnv1a(payload) != checksum) {
    return SnapshotDataLoss("checksum mismatch");
  }
  // Remaining file bits must be zero padding to one byte.
  if (reader.RemainingBits() >= 8) {
    return SnapshotDataLoss("trailing bytes after payload");
  }
  while (!reader.AtEnd()) {
    DCS_ASSIGN_OR_RETURN(const int bit, reader.TryReadBit());
    if (bit != 0) return SnapshotDataLoss("nonzero padding");
  }

  BitReader body(payload);
  const int64_t payload_bits = static_cast<int64_t>(bit_count);
  DCS_ASSIGN_OR_RETURN(const uint64_t count, body.TryReadEliasGamma());
  if (count > static_cast<uint64_t>(
                  (payload_bits - body.position()) / kMinEntryBits) +
                  1) {
    return SnapshotDataLoss("declares " + std::to_string(count) +
                            " entries but the payload is shorter");
  }
  std::vector<CacheSnapshotEntry> entries;
  entries.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    CacheSnapshotEntry entry;
    DCS_ASSIGN_OR_RETURN(const uint64_t object, body.TryReadEliasGamma());
    if (object > (uint64_t{1} << 62)) {
      return SnapshotDataLoss("entry object id out of range");
    }
    entry.object = static_cast<int64_t>(object);
    DCS_ASSIGN_OR_RETURN(const uint64_t words, body.TryReadEliasGamma());
    if (words > kMaxSideWords ||
        words > static_cast<uint64_t>(
                    (payload_bits - body.position()) / 64)) {
      return SnapshotDataLoss("entry side longer than the payload");
    }
    entry.side_words.resize(static_cast<size_t>(words));
    for (uint64_t w = 0; w < words; ++w) {
      DCS_ASSIGN_OR_RETURN(entry.side_words[w], body.TryReadBits(64));
    }
    DCS_ASSIGN_OR_RETURN(entry.value, body.TryReadDouble());
    if (!std::isfinite(entry.value)) {
      return SnapshotDataLoss("entry value is not finite");
    }
    entries.push_back(std::move(entry));
  }
  if (body.position() != payload_bits) {
    return SnapshotDataLoss("payload has trailing bits");
  }
  return entries;
}

Status WriteCacheSnapshotFile(
    const std::string& path,
    const std::vector<CacheSnapshotEntry>& entries) {
  const std::vector<uint8_t> bytes = EncodeCacheSnapshot(entries);
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return InternalError("cannot create " + tmp + ": " +
                         std::strerror(errno));
  }
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t wrote = ::write(fd, bytes.data() + done,
                                  bytes.size() - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      const Status status = InternalError("cannot write " + tmp + ": " +
                                          std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    done += static_cast<size_t>(wrote);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return InternalError("cannot fsync " + tmp + ": " +
                         std::strerror(errno));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return InternalError("cannot rename " + tmp + ": " +
                         std::strerror(errno));
  }
  DCS_METRIC_INC("store.cache_snapshots_written");
  return OkStatus();
}

StatusOr<std::vector<CacheSnapshotEntry>> ReadCacheSnapshotFile(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return NotFoundError("no cache snapshot at " + path);
    }
    return InternalError("cannot open " + path + ": " +
                         std::strerror(errno));
  }
  std::vector<uint8_t> bytes;
  uint8_t buffer[1 << 16];
  while (true) {
    const ssize_t got = ::read(fd, buffer, sizeof(buffer));
    if (got < 0) {
      if (errno == EINTR) continue;
      const Status status = InternalError("cannot read " + path + ": " +
                                          std::strerror(errno));
      ::close(fd);
      return status;
    }
    if (got == 0) break;
    bytes.insert(bytes.end(), buffer, buffer + got);
  }
  ::close(fd);
  auto entries = DecodeCacheSnapshot(bytes);
  if (entries.ok()) DCS_METRIC_INC("store.cache_snapshots_loaded");
  return entries;
}

}  // namespace dcs
