#include "store/segment.h"

#include <cstring>
#include <string>

#include "util/check.h"

namespace dcs {
namespace {

// Record magic, distinct from the serialization envelope (0xD5CE), the
// channel frame (0xFA5C), and the RPC envelope (0xA9C5): a segment misfed
// to another parser (or vice versa) dies at the first header field.
constexpr uint64_t kRecordMagic = 0x5E60;
// Seal trailer magic: "SEAL" over the envelope magic.
constexpr uint64_t kTrailerMagic = 0x5EA1D5CE;

constexpr int64_t kRecordHeaderBytes = 19;  // magic + id + kind + bits
constexpr int64_t kRecordPrefixBytes =
    kRecordHeaderBytes + 4 + 4;             // + header FNV + payload FNV
constexpr int64_t kTrailerBytes = 16;

// Caps mirroring the transport's hostile-receiver rules: ids bounded like
// RPC object ids, offsets/lengths bounded so arithmetic cannot overflow.
constexpr uint64_t kMaxObjectId = uint64_t{1} << 32;
constexpr uint64_t kMaxByteField = uint64_t{1} << 62;
// Smallest index entry: 1-bit id + 8-bit kind + 1-bit offset + 1-bit
// length. Declared entry counts are capped against remaining/11.
constexpr int64_t kMinIndexEntryBits = 11;

uint32_t Fnv1a(const uint8_t* bytes, size_t size) {
  uint32_t hash = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 16777619u;
  }
  return hash;
}

uint64_t LoadLe(const uint8_t* bytes, int width_bytes) {
  uint64_t value = 0;
  for (int i = 0; i < width_bytes; ++i) {
    value |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  return value;
}

bool ValidKind(uint64_t kind) {
  return kind >= static_cast<uint64_t>(StreamKind::kDirectedGraph) &&
         kind <= static_cast<uint64_t>(StreamKind::kSegmentIndex);
}

enum class RecordParse {
  kOk,
  // The header is unreadable (bad magic, bad header checksum, declared
  // length overruns the file): the record's extent cannot be trusted, so
  // everything from here on is a tail.
  kStructural,
  // The header is intact (extent known) but the payload fails its checksum
  // or pad check: this specific record is damaged.
  kCorrupt,
};

RecordParse TryParseRecordAt(const std::vector<uint8_t>& bytes, int64_t pos,
                             SegmentRecord& record, int64_t& byte_length) {
  const int64_t remaining = static_cast<int64_t>(bytes.size()) - pos;
  if (remaining < kRecordPrefixBytes) return RecordParse::kStructural;
  const uint8_t* p = bytes.data() + pos;
  if (LoadLe(p, 2) != kRecordMagic) return RecordParse::kStructural;
  const uint64_t object_id = LoadLe(p + 2, 8);
  const uint64_t kind = LoadLe(p + 10, 1);
  const uint64_t payload_bits = LoadLe(p + 11, 8);
  const uint32_t header_checksum = static_cast<uint32_t>(LoadLe(p + 19, 4));
  if (Fnv1a(p, static_cast<size_t>(kRecordHeaderBytes)) != header_checksum) {
    return RecordParse::kStructural;
  }
  // Header verified: the declared fields are what the writer wrote, but a
  // hostile writer could still declare absurd values — cap before use.
  if (object_id > kMaxObjectId || !ValidKind(kind)) {
    return RecordParse::kStructural;
  }
  const uint64_t payload_bytes = (payload_bits + 7) / 8;
  if (payload_bits > kMaxByteField ||
      payload_bytes >
          static_cast<uint64_t>(remaining - kRecordPrefixBytes)) {
    return RecordParse::kStructural;
  }
  byte_length = kRecordPrefixBytes + static_cast<int64_t>(payload_bytes);
  const uint32_t payload_checksum = static_cast<uint32_t>(LoadLe(p + 23, 4));
  const uint8_t* payload = p + kRecordPrefixBytes;
  if (Fnv1a(payload, static_cast<size_t>(payload_bytes)) !=
      payload_checksum) {
    return RecordParse::kCorrupt;
  }
  // Zero-pad enforcement: bits past payload_bits in the final byte must be
  // zero, exactly as BitWriter emits them.
  if (payload_bits % 8 != 0) {
    const uint8_t last = payload[payload_bytes - 1];
    if ((last >> (payload_bits % 8)) != 0) return RecordParse::kCorrupt;
  }
  record.object_id = static_cast<int64_t>(object_id);
  record.kind = static_cast<StreamKind>(kind);
  record.payload_bits = static_cast<int64_t>(payload_bits);
  record.payload.assign(payload, payload + payload_bytes);
  return RecordParse::kOk;
}

// Locates a valid seal trailer: returns the footer byte offset, or -1.
int64_t FindSealTrailer(const std::vector<uint8_t>& bytes) {
  const int64_t size = static_cast<int64_t>(bytes.size());
  if (size < kTrailerBytes) return -1;
  const uint8_t* t = bytes.data() + (size - kTrailerBytes);
  if (Fnv1a(t, 12) != static_cast<uint32_t>(LoadLe(t + 12, 4))) return -1;
  if (LoadLe(t + 8, 4) != kTrailerMagic) return -1;
  const uint64_t footer_offset = LoadLe(t, 8);
  if (footer_offset >= static_cast<uint64_t>(size - kTrailerBytes)) {
    return -1;
  }
  return static_cast<int64_t>(footer_offset);
}

// Parses the footer region [footer_offset, size - trailer) as an index
// envelope with zero padding after it. nullopt-style failure = kDataLoss.
StatusOr<std::vector<SegmentIndexEntry>> ParseFooterRegion(
    const std::vector<uint8_t>& bytes, int64_t footer_offset) {
  const int64_t end = static_cast<int64_t>(bytes.size()) - kTrailerBytes;
  const std::vector<uint8_t> region(bytes.begin() + footer_offset,
                                    bytes.begin() + end);
  BitReader reader(region);
  DCS_ASSIGN_OR_RETURN(const EnvelopePayload payload,
                       ReadEnvelopePayload(StreamKind::kSegmentIndex, reader));
  BitReader payload_reader(payload.bytes);
  DCS_ASSIGN_OR_RETURN(std::vector<SegmentIndexEntry> entries,
                       ParseSegmentIndexPayload(payload_reader));
  if (payload_reader.position() != payload.bit_count) {
    return DataLossError("segment index payload has trailing bits");
  }
  // Zero-pad enforcement for the footer's final partial byte.
  while (!reader.AtEnd()) {
    DCS_ASSIGN_OR_RETURN(const int bit, reader.TryReadBit());
    if (bit != 0) {
      return DataLossError("segment footer has nonzero padding");
    }
  }
  return entries;
}

}  // namespace

int64_t SegmentRecordByteLength(int64_t payload_bits) {
  return kRecordPrefixBytes + (payload_bits + 7) / 8;
}

void AppendSegmentRecord(const SegmentRecord& record,
                         std::vector<uint8_t>& out) {
  DCS_CHECK_GE(record.object_id, 0);
  DCS_CHECK_LE(static_cast<uint64_t>(record.object_id), kMaxObjectId);
  DCS_CHECK(ValidKind(static_cast<uint64_t>(record.kind)));
  DCS_CHECK_GE(record.payload_bits, 0);
  DCS_CHECK_EQ(static_cast<int64_t>(record.payload.size()),
               (record.payload_bits + 7) / 8);
  BitWriter header;
  header.WriteBits(kRecordMagic, 16);
  header.WriteBits(static_cast<uint64_t>(record.object_id), 64);
  header.WriteBits(static_cast<uint64_t>(record.kind), 8);
  header.WriteBits(static_cast<uint64_t>(record.payload_bits), 64);
  const std::vector<uint8_t>& h = header.bytes();
  DCS_CHECK_EQ(static_cast<int64_t>(h.size()), kRecordHeaderBytes);
  out.insert(out.end(), h.begin(), h.end());
  BitWriter checksums;
  checksums.WriteBits(Fnv1a(h.data(), h.size()), 32);
  checksums.WriteBits(Fnv1a(record.payload.data(), record.payload.size()),
                      32);
  out.insert(out.end(), checksums.bytes().begin(), checksums.bytes().end());
  out.insert(out.end(), record.payload.begin(), record.payload.end());
}

void WriteSegmentIndexEnvelope(const std::vector<SegmentIndexEntry>& entries,
                               BitWriter& out) {
  BitWriter payload;
  payload.WriteEliasGamma(entries.size());
  for (const SegmentIndexEntry& entry : entries) {
    DCS_CHECK_GE(entry.object_id, 0);
    DCS_CHECK_GE(entry.byte_offset, 0);
    DCS_CHECK_GE(entry.byte_length, 0);
    payload.WriteEliasGamma(static_cast<uint64_t>(entry.object_id));
    payload.WriteBits(static_cast<uint64_t>(entry.kind), 8);
    payload.WriteEliasGamma(static_cast<uint64_t>(entry.byte_offset));
    payload.WriteEliasGamma(static_cast<uint64_t>(entry.byte_length));
  }
  WriteEnvelope(StreamKind::kSegmentIndex, payload, out);
}

StatusOr<std::vector<SegmentIndexEntry>> ParseSegmentIndexPayload(
    BitReader& reader) {
  DCS_ASSIGN_OR_RETURN(const uint64_t count, reader.TryReadEliasGamma());
  // Pre-allocation cap: a hostile index cannot force a huge allocation —
  // the declared count must fit in the bits that actually remain.
  if (count > static_cast<uint64_t>(reader.RemainingBits() /
                                    kMinIndexEntryBits)) {
    return DataLossError("segment index declares " + std::to_string(count) +
                         " entries but only " +
                         std::to_string(reader.RemainingBits()) +
                         " payload bits remain");
  }
  std::vector<SegmentIndexEntry> entries;
  entries.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    DCS_ASSIGN_OR_RETURN(const uint64_t object_id,
                         reader.TryReadEliasGamma());
    DCS_ASSIGN_OR_RETURN(const uint64_t kind, reader.TryReadBits(8));
    DCS_ASSIGN_OR_RETURN(const uint64_t offset, reader.TryReadEliasGamma());
    DCS_ASSIGN_OR_RETURN(const uint64_t length, reader.TryReadEliasGamma());
    if (object_id > kMaxObjectId || !ValidKind(kind) ||
        offset > kMaxByteField || length > kMaxByteField) {
      return DataLossError("segment index entry " + std::to_string(i) +
                           " is out of range");
    }
    SegmentIndexEntry entry;
    entry.object_id = static_cast<int64_t>(object_id);
    entry.kind = static_cast<StreamKind>(kind);
    entry.byte_offset = static_cast<int64_t>(offset);
    entry.byte_length = static_cast<int64_t>(length);
    entries.push_back(entry);
  }
  return entries;
}

std::vector<uint8_t> BuildSegmentSeal(
    const std::vector<SegmentIndexEntry>& entries, int64_t footer_offset) {
  DCS_CHECK_GE(footer_offset, 0);
  std::vector<uint8_t> out;
  BitWriter footer;
  WriteSegmentIndexEnvelope(entries, footer);
  out.insert(out.end(), footer.bytes().begin(), footer.bytes().end());
  BitWriter trailer;
  trailer.WriteBits(static_cast<uint64_t>(footer_offset), 64);
  trailer.WriteBits(kTrailerMagic, 32);
  const std::vector<uint8_t>& t = trailer.bytes();
  DCS_CHECK_EQ(t.size(), 12u);
  BitWriter checksum;
  checksum.WriteBits(Fnv1a(t.data(), t.size()), 32);
  out.insert(out.end(), t.begin(), t.end());
  out.insert(out.end(), checksum.bytes().begin(), checksum.bytes().end());
  return out;
}

void AppendSegmentSeal(const std::vector<SegmentIndexEntry>& entries,
                       std::vector<uint8_t>& out) {
  const std::vector<uint8_t> seal =
      BuildSegmentSeal(entries, static_cast<int64_t>(out.size()));
  out.insert(out.end(), seal.begin(), seal.end());
}

StatusOr<SegmentRecord> ParseSegmentRecord(const std::vector<uint8_t>& bytes) {
  SegmentRecord record;
  int64_t length = 0;
  if (TryParseRecordAt(bytes, 0, record, length) != RecordParse::kOk) {
    return DataLossError("segment record does not verify");
  }
  if (length != static_cast<int64_t>(bytes.size())) {
    return DataLossError("segment record has trailing bytes");
  }
  return record;
}

StatusOr<SegmentScan> ScanSegment(const std::vector<uint8_t>& bytes) {
  const int64_t size = static_cast<int64_t>(bytes.size());
  const int64_t footer_offset = FindSealTrailer(bytes);
  if (footer_offset >= 0) {
    auto entries = ParseFooterRegion(bytes, footer_offset);
    if (entries.ok()) {
      // Sealed segment: the footer was fsynced, so every record it points
      // at is committed data. Any mismatch is corruption, never a tail.
      SegmentScan scan;
      scan.sealed = true;
      int64_t pos = 0;
      for (size_t i = 0; i < entries->size(); ++i) {
        const SegmentIndexEntry& entry = (*entries)[i];
        SegmentRecord record;
        int64_t length = 0;
        if (entry.byte_offset != pos ||
            TryParseRecordAt(bytes, pos, record, length) !=
                RecordParse::kOk ||
            length != entry.byte_length ||
            record.object_id != entry.object_id ||
            record.kind != entry.kind) {
          return DataLossError(
              "sealed segment record " + std::to_string(i) +
              " does not match its index entry (corrupt beyond torn tail)");
        }
        scan.records.push_back(std::move(record));
        pos += length;
      }
      if (pos != footer_offset) {
        return DataLossError(
            "sealed segment has unindexed bytes before its footer");
      }
      scan.valid_prefix_bytes = pos;
      return scan;
    }
    // The trailer validated but the footer it points at does not parse:
    // the seal itself is damaged. Fall through to the unsealed walk — the
    // records are still individually checksummed, and cutting the broken
    // seal off is a recovery, not data loss.
  }
  SegmentScan scan;
  int64_t pos = 0;
  int64_t good_prefix_end = 0;
  int64_t first_bad = -1;  // offset of the first damaged-but-sized record
  while (pos < size) {
    SegmentRecord record;
    int64_t length = 0;
    const RecordParse parsed = TryParseRecordAt(bytes, pos, record, length);
    if (parsed == RecordParse::kStructural) break;
    if (parsed == RecordParse::kCorrupt) {
      // Keep walking: if anything valid follows, the damage is mid-file.
      if (first_bad < 0) first_bad = pos;
      pos += length;
      continue;
    }
    if (first_bad >= 0) {
      return DataLossError(
          "segment record at byte " + std::to_string(first_bad) +
          " is corrupt but later records are intact (damage is not a "
          "torn tail)");
    }
    scan.records.push_back(std::move(record));
    pos += length;
    good_prefix_end = pos;
  }
  scan.valid_prefix_bytes = good_prefix_end;
  scan.dropped_tail_bytes = size - good_prefix_end;
  scan.recovered_torn_tail = scan.dropped_tail_bytes > 0;
  return scan;
}

}  // namespace dcs
