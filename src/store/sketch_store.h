// Disk-backed sketch store: the cold tier of the serving stack's
// cold/warm/hot policy (DESIGN.md §15).
//
// A store is a directory of append-only segment files (store/segment.h):
//
//   <dir>/segment-000001.seg
//   <dir>/segment-000002.seg        <- active (unsealed) segment
//
// Put appends one record — an object's already-enveloped serialized bytes
// — to the active segment; the in-memory index maps object id to its
// newest record (later puts supersede earlier ones; Compact reclaims the
// dead versions). Seal writes the segment's index footer + seal trailer
// and fsyncs — only then is the segment's data durable against power loss.
// A process kill between Put and Seal leaves at worst a torn tail, which
// Open recovers by truncating at the last whole record; damage anywhere
// else is reported as kDataLoss, never silently dropped (the fsck verbs
// distinguish `recovered torn tail` from `data_loss: segment`).
//
// Thread-safety: all methods may be called concurrently (one internal
// mutex; the serving tier appends from per-shard threads).

#ifndef DCS_STORE_SKETCH_STORE_H_
#define DCS_STORE_SKETCH_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "store/segment.h"
#include "util/status.h"

namespace dcs {

struct SketchStoreOptions {
  // Roll to a fresh segment once the active one exceeds this (the old one
  // is sealed, so long-running workers accumulate durable segments).
  int64_t max_segment_bytes = 8 << 20;

  void Check() const;
};

// One stored object, bytes exactly as put.
struct StoredObject {
  StreamKind kind = StreamKind::kDirectedGraph;
  std::vector<uint8_t> bytes;
  int64_t bit_count = 0;
};

// What Open found on disk.
struct StoreOpenReport {
  int64_t segments = 0;
  int64_t records = 0;         // live + superseded
  int64_t objects = 0;         // distinct object ids
  int64_t torn_tails_recovered = 0;
  int64_t dropped_tail_bytes = 0;
};

// Read-only integrity report (the `dcs store --op fsck` verb).
struct StoreFsckReport {
  struct Segment {
    std::string file;
    // "sealed", "unsealed", "recovered_torn_tail", or "corrupt".
    std::string state;
    int64_t records = 0;
    int64_t dropped_tail_bytes = 0;
    std::string detail;  // the kDataLoss message for corrupt segments
  };
  std::vector<Segment> segments;
  int64_t corrupt_segments = 0;
  int64_t recovered_segments = 0;
  bool clean() const { return corrupt_segments == 0; }
};

struct StoreCompactReport {
  int64_t bytes_before = 0;
  int64_t bytes_after = 0;
  int64_t records_dropped = 0;  // superseded versions reclaimed
};

class SketchStore {
 public:
  // Opens (creating the directory if needed), scans every segment,
  // recovers torn tails by truncating the files in place, and builds the
  // object index. kDataLoss if any segment is corrupt beyond a torn tail.
  static StatusOr<std::unique_ptr<SketchStore>> Open(
      const std::string& dir, SketchStoreOptions options = {});

  // Closes the active segment WITHOUT sealing (a crash-equivalent close;
  // call Seal() first for durability). Recovery on next Open handles the
  // rest — that asymmetry is deliberate and tested.
  ~SketchStore();

  SketchStore(const SketchStore&) = delete;
  SketchStore& operator=(const SketchStore&) = delete;

  // Appends one record. `bytes`/`bit_count` must be a serialization
  // envelope of `kind` (validated — kInvalidArgument/kDataLoss on
  // mismatch, so a store can never hold bytes it cannot re-serve).
  Status Put(int64_t object_id, StreamKind kind,
             const std::vector<uint8_t>& bytes, int64_t bit_count);

  // The newest record for `object_id`, bytes memcmp-identical to the Put.
  // kNotFound for unknown ids; kDataLoss if the record on disk no longer
  // verifies (detected at read time — Get re-checks the checksum).
  StatusOr<StoredObject> Get(int64_t object_id) const;

  // Distinct object ids, ascending.
  std::vector<int64_t> ListObjects() const;

  // Seals the active segment: index footer + trailer, fsync. Idempotent
  // (no active segment = OK). The next Put starts a fresh segment.
  Status Seal();

  // fsyncs the active segment's appended bytes without sealing.
  Status Flush();

  // Rewrites the newest version of every object into one fresh sealed
  // segment and deletes the old files.
  StatusOr<StoreCompactReport> Compact();

  const StoreOpenReport& open_report() const { return open_report_; }
  const std::string& dir() const { return dir_; }
  int64_t num_objects() const;
  int64_t total_bytes() const;

 private:
  struct Location {
    size_t segment = 0;      // index into segment_files_
    int64_t byte_offset = 0;
    int64_t byte_length = 0;
    StreamKind kind = StreamKind::kDirectedGraph;
  };

  SketchStore(std::string dir, SketchStoreOptions options);

  Status OpenActiveSegment();  // creates segment-(N+1) and its fd
  Status AppendToActive(const std::vector<uint8_t>& bytes);
  std::string SegmentPath(int64_t number) const;

  const std::string dir_;
  const SketchStoreOptions options_;
  StoreOpenReport open_report_;

  mutable std::mutex mutex_;
  // Segment file names (basename) in numeric order; parallel byte sizes.
  std::vector<std::string> segment_files_;
  std::vector<int64_t> segment_bytes_;
  std::map<int64_t, Location> index_;  // object id -> newest record
  // Active (unsealed) segment: -1 fd when none.
  int active_fd_ = -1;
  size_t active_segment_ = 0;
  int64_t active_number_ = 0;
  int64_t highest_number_ = 0;
  std::vector<SegmentIndexEntry> active_entries_;
};

// Read-only verification of every segment in `dir` (never writes or
// truncates). kNotFound if the directory does not exist.
StatusOr<StoreFsckReport> FsckSketchStore(const std::string& dir);

}  // namespace dcs

#endif  // DCS_STORE_SKETCH_STORE_H_
