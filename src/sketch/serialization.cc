#include "sketch/serialization.h"

#include <cmath>
#include <cstddef>
#include <string>
#include <string_view>

#include "util/metrics.h"

namespace dcs {
namespace {

// Precomputed metric names so the DCS_METRICS_ENABLED=0 configuration does
// no per-envelope string assembly (metrics.h: dynamic names must be
// long-lived constants).
std::string_view PayloadBitsMetricName(StreamKind kind) {
  switch (kind) {
    case StreamKind::kDirectedGraph:
      return "serialization.payload_bits.directed_graph";
    case StreamKind::kUndirectedGraph:
      return "serialization.payload_bits.undirected_graph";
    case StreamKind::kForEachSketch:
      return "serialization.payload_bits.foreach_sketch";
    case StreamKind::kForAllSparsifier:
      return "serialization.payload_bits.forall_sparsifier";
    case StreamKind::kDirectedForEachSketch:
      return "serialization.payload_bits.directed_foreach_sketch";
    case StreamKind::kDirectedForAllSketch:
      return "serialization.payload_bits.directed_forall_sketch";
    case StreamKind::kEdgeStream:
      return "serialization.payload_bits.edge_stream";
    case StreamKind::kCutBalanceSparsifier:
      return "serialization.payload_bits.cut_balance_sparsifier";
    case StreamKind::kSegmentIndex:
      return "serialization.payload_bits.segment_index";
  }
  return "serialization.payload_bits.unknown";
}

constexpr uint64_t kEnvelopeMagic = 0xD5CE;  // "DCS envelope"
constexpr uint64_t kFormatVersion = 1;

// Largest vertex count a stream may declare; matches the graph_io cap.
constexpr uint64_t kMaxVertices = uint64_t{1} << 28;

// Smallest possible serialized edge: two 1-bit Elias-gamma endpoints plus a
// 64-bit weight. Declared edge counts are capped against remaining/66.
constexpr int64_t kMinEdgeBits = 66;

uint32_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint32_t hash = 2166136261u;
  for (uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 16777619u;
  }
  return hash;
}

template <typename GraphT>
void SerializeEdges(const GraphT& graph, BitWriter& writer) {
  writer.WriteEliasGamma(static_cast<uint64_t>(graph.num_vertices()));
  writer.WriteEliasGamma(static_cast<uint64_t>(graph.num_edges()));
  for (const Edge& e : graph.edges()) {
    writer.WriteEliasGamma(static_cast<uint64_t>(e.src));
    writer.WriteEliasGamma(static_cast<uint64_t>(e.dst));
    writer.WriteDouble(e.weight);
  }
}

// Parses the count/edge-list payload shared by both graph kinds. The
// payload already passed the envelope checksum, so failures here indicate a
// stream written by a buggy or hostile producer rather than corruption in
// transit — still a non-OK Status, never an abort.
template <typename GraphT>
StatusOr<GraphT> ParseGraphPayload(BitReader& reader) {
  DCS_ASSIGN_OR_RETURN(const uint64_t n, reader.TryReadEliasGamma());
  if (n > kMaxVertices) {
    return InvalidArgumentError("graph stream declares " + std::to_string(n) +
                                " vertices (cap " +
                                std::to_string(kMaxVertices) + ")");
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t m, reader.TryReadEliasGamma());
  const uint64_t max_edges =
      static_cast<uint64_t>(reader.RemainingBits() / kMinEdgeBits);
  if (m > max_edges) {
    return DataLossError("graph stream declares " + std::to_string(m) +
                         " edges but only " +
                         std::to_string(reader.RemainingBits()) +
                         " payload bits remain");
  }
  GraphT graph(static_cast<int>(n));
  for (uint64_t i = 0; i < m; ++i) {
    DCS_ASSIGN_OR_RETURN(const uint64_t src, reader.TryReadEliasGamma());
    DCS_ASSIGN_OR_RETURN(const uint64_t dst, reader.TryReadEliasGamma());
    DCS_ASSIGN_OR_RETURN(const double weight, reader.TryReadDouble());
    if (src >= n || dst >= n) {
      return InvalidArgumentError(
          "edge " + std::to_string(i) + " endpoint out of range [0, " +
          std::to_string(n) + "): " + std::to_string(src) + " -> " +
          std::to_string(dst));
    }
    if (src == dst) {
      return InvalidArgumentError("edge " + std::to_string(i) +
                                  " is a self-loop at vertex " +
                                  std::to_string(src));
    }
    if (!std::isfinite(weight) || weight < 0) {
      return InvalidArgumentError("edge " + std::to_string(i) +
                                  " has non-finite or negative weight");
    }
    graph.AddEdge(static_cast<VertexId>(src), static_cast<VertexId>(dst),
                  weight);
  }
  return graph;
}

template <typename GraphT>
StatusOr<GraphT> DeserializeGraph(StreamKind kind, BitReader& reader) {
  DCS_ASSIGN_OR_RETURN(const EnvelopePayload payload,
                       ReadEnvelopePayload(kind, reader));
  BitReader payload_reader(payload.bytes);
  DCS_ASSIGN_OR_RETURN(GraphT graph, ParseGraphPayload<GraphT>(payload_reader));
  if (payload_reader.position() != payload.bit_count) {
    return DataLossError("graph payload has trailing bits");
  }
  return graph;
}

}  // namespace

const char* StreamKindName(StreamKind kind) {
  switch (kind) {
    case StreamKind::kDirectedGraph:
      return "directed_graph";
    case StreamKind::kUndirectedGraph:
      return "undirected_graph";
    case StreamKind::kForEachSketch:
      return "foreach_sketch";
    case StreamKind::kForAllSparsifier:
      return "forall_sparsifier";
    case StreamKind::kDirectedForEachSketch:
      return "directed_foreach_sketch";
    case StreamKind::kDirectedForAllSketch:
      return "directed_forall_sketch";
    case StreamKind::kEdgeStream:
      return "edge_stream";
    case StreamKind::kCutBalanceSparsifier:
      return "cut_balance_sparsifier";
    case StreamKind::kSegmentIndex:
      return "segment_index";
  }
  return "unknown";
}

void WriteEnvelope(StreamKind kind, const BitWriter& payload, BitWriter& out) {
  DCS_METRIC_INC("serialization.envelope.written");
  metrics::RecordValue(PayloadBitsMetricName(kind), payload.bit_count());
  out.WriteBits(kEnvelopeMagic, 16);
  out.WriteBits(kFormatVersion, 8);
  out.WriteBits(static_cast<uint64_t>(kind), 8);
  out.WriteEliasGamma(static_cast<uint64_t>(payload.bit_count()));
  out.WriteBits(Fnv1a(payload.bytes()), 32);
  out.AppendBits(payload.bytes(), payload.bit_count());
}

StatusOr<EnvelopePayload> ReadEnvelopePayload(StreamKind expected_kind,
                                              BitReader& reader) {
  DCS_ASSIGN_OR_RETURN(const uint64_t magic, reader.TryReadBits(16));
  if (magic != kEnvelopeMagic) {
    return DataLossError("bad envelope magic (not a dcs stream?)");
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t version, reader.TryReadBits(8));
  if (version != kFormatVersion) {
    return DataLossError("unsupported stream format version " +
                         std::to_string(version));
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t kind, reader.TryReadBits(8));
  if (kind != static_cast<uint64_t>(expected_kind)) {
    return DataLossError(
        "stream kind mismatch: expected " +
        std::to_string(static_cast<uint64_t>(expected_kind)) + ", found " +
        std::to_string(kind));
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t bit_count, reader.TryReadEliasGamma());
  if (reader.RemainingBits() < 32 ||
      bit_count > static_cast<uint64_t>(reader.RemainingBits() - 32)) {
    return DataLossError("envelope declares " + std::to_string(bit_count) +
                         " payload bits but the stream is shorter");
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t checksum, reader.TryReadBits(32));
  EnvelopePayload payload;
  payload.bit_count = static_cast<int64_t>(bit_count);
  payload.bytes.assign(static_cast<size_t>((bit_count + 7) / 8), 0);
  for (int64_t bit = 0; bit < payload.bit_count; ++bit) {
    DCS_ASSIGN_OR_RETURN(const int value, reader.TryReadBit());
    if (value) {
      payload.bytes[static_cast<size_t>(bit >> 3)] |=
          static_cast<uint8_t>(1u << (bit & 7));
    }
  }
  if (Fnv1a(payload.bytes) != checksum) {
    return DataLossError("envelope checksum mismatch (corrupted payload)");
  }
  DCS_METRIC_INC("serialization.envelope.read");
  return payload;
}

void SerializeDirectedGraph(const DirectedGraph& graph, BitWriter& writer) {
  BitWriter payload;
  SerializeEdges(graph, payload);
  WriteEnvelope(StreamKind::kDirectedGraph, payload, writer);
}

StatusOr<DirectedGraph> DeserializeDirectedGraph(BitReader& reader) {
  return DeserializeGraph<DirectedGraph>(StreamKind::kDirectedGraph, reader);
}

void SerializeUndirectedGraph(const UndirectedGraph& graph,
                              BitWriter& writer) {
  BitWriter payload;
  SerializeEdges(graph, payload);
  WriteEnvelope(StreamKind::kUndirectedGraph, payload, writer);
}

StatusOr<UndirectedGraph> DeserializeUndirectedGraph(BitReader& reader) {
  return DeserializeGraph<UndirectedGraph>(StreamKind::kUndirectedGraph,
                                           reader);
}

void SerializeDoubleVector(const std::vector<double>& values,
                           BitWriter& writer) {
  writer.WriteEliasGamma(values.size());
  for (double v : values) writer.WriteDouble(v);
}

StatusOr<std::vector<double>> DeserializeDoubleVector(BitReader& reader) {
  DCS_ASSIGN_OR_RETURN(const uint64_t count, reader.TryReadEliasGamma());
  if (count > static_cast<uint64_t>(reader.RemainingBits() / 64)) {
    return DataLossError("double vector declares " + std::to_string(count) +
                         " entries but only " +
                         std::to_string(reader.RemainingBits()) +
                         " bits remain");
  }
  std::vector<double> values(static_cast<size_t>(count));
  for (size_t i = 0; i < values.size(); ++i) {
    DCS_ASSIGN_OR_RETURN(values[i], reader.TryReadDouble());
    if (!std::isfinite(values[i])) {
      return InvalidArgumentError("double vector entry " + std::to_string(i) +
                                  " is not finite");
    }
  }
  return values;
}

int64_t SerializedSizeInBits(const DirectedGraph& graph) {
  BitWriter writer;
  SerializeDirectedGraph(graph, writer);
  return writer.bit_count();
}

int64_t SerializedSizeInBits(const UndirectedGraph& graph) {
  BitWriter writer;
  SerializeUndirectedGraph(graph, writer);
  return writer.bit_count();
}

}  // namespace dcs
