#include "sketch/serialization.h"

namespace dcs {
namespace {

template <typename GraphT>
void SerializeEdges(const GraphT& graph, BitWriter& writer) {
  writer.WriteEliasGamma(static_cast<uint64_t>(graph.num_vertices()));
  writer.WriteEliasGamma(static_cast<uint64_t>(graph.num_edges()));
  for (const Edge& e : graph.edges()) {
    writer.WriteEliasGamma(static_cast<uint64_t>(e.src));
    writer.WriteEliasGamma(static_cast<uint64_t>(e.dst));
    writer.WriteDouble(e.weight);
  }
}

}  // namespace

void SerializeDirectedGraph(const DirectedGraph& graph, BitWriter& writer) {
  SerializeEdges(graph, writer);
}

DirectedGraph DeserializeDirectedGraph(BitReader& reader) {
  const int n = static_cast<int>(reader.ReadEliasGamma());
  const int64_t m = static_cast<int64_t>(reader.ReadEliasGamma());
  DirectedGraph graph(n);
  for (int64_t i = 0; i < m; ++i) {
    const VertexId src = static_cast<VertexId>(reader.ReadEliasGamma());
    const VertexId dst = static_cast<VertexId>(reader.ReadEliasGamma());
    const double weight = reader.ReadDouble();
    graph.AddEdge(src, dst, weight);
  }
  return graph;
}

void SerializeUndirectedGraph(const UndirectedGraph& graph,
                              BitWriter& writer) {
  SerializeEdges(graph, writer);
}

UndirectedGraph DeserializeUndirectedGraph(BitReader& reader) {
  const int n = static_cast<int>(reader.ReadEliasGamma());
  const int64_t m = static_cast<int64_t>(reader.ReadEliasGamma());
  UndirectedGraph graph(n);
  for (int64_t i = 0; i < m; ++i) {
    const VertexId src = static_cast<VertexId>(reader.ReadEliasGamma());
    const VertexId dst = static_cast<VertexId>(reader.ReadEliasGamma());
    const double weight = reader.ReadDouble();
    graph.AddEdge(src, dst, weight);
  }
  return graph;
}

void SerializeDoubleVector(const std::vector<double>& values,
                           BitWriter& writer) {
  writer.WriteEliasGamma(values.size());
  for (double v : values) writer.WriteDouble(v);
}

std::vector<double> DeserializeDoubleVector(BitReader& reader) {
  const size_t count = static_cast<size_t>(reader.ReadEliasGamma());
  std::vector<double> values(count);
  for (size_t i = 0; i < count; ++i) values[i] = reader.ReadDouble();
  return values;
}

int64_t SerializedSizeInBits(const DirectedGraph& graph) {
  BitWriter writer;
  SerializeDirectedGraph(graph, writer);
  return writer.bit_count();
}

int64_t SerializedSizeInBits(const UndirectedGraph& graph) {
  BitWriter writer;
  SerializeUndirectedGraph(graph, writer);
  return writer.bit_count();
}

}  // namespace dcs
