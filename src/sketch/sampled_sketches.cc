#include "sketch/sampled_sketches.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "mincut/nagamochi_ibaraki.h"
#include "sketch/serialization.h"
#include "util/stats.h"

namespace dcs {

UndirectedGraph ImportanceSampleByStrength(const UndirectedGraph& graph,
                                           double factor, Rng& rng) {
  DCS_CHECK_GT(factor, 0);
  const std::vector<double> strengths = NagamochiIbarakiStrengths(graph);
  UndirectedGraph sample(graph.num_vertices());
  for (size_t i = 0; i < graph.edges().size(); ++i) {
    const Edge& e = graph.edges()[i];
    if (e.weight <= 0) continue;
    const double p = std::min(1.0, factor * e.weight / strengths[i]);
    if (rng.Bernoulli(p)) {
      sample.AddEdge(e.src, e.dst, e.weight / p);
    }
  }
  return sample;
}

BenczurKargerSparsifier::BenczurKargerSparsifier(const UndirectedGraph& graph,
                                                 double epsilon, Rng& rng,
                                                 double oversample_c)
    : epsilon_(epsilon), sparsifier_(0), size_bits_(0) {
  DCS_CHECK(epsilon > 0 && epsilon < 1);
  const double n = std::max(2, graph.num_vertices());
  const double factor =
      oversample_c * std::log(n) / (epsilon * epsilon);
  sparsifier_ = ImportanceSampleByStrength(graph, factor, rng);
  BitWriter wire;
  Serialize(wire);
  size_bits_ = wire.bit_count();
}

BenczurKargerSparsifier::BenczurKargerSparsifier(double epsilon,
                                                 UndirectedGraph sparsifier)
    : epsilon_(epsilon), sparsifier_(std::move(sparsifier)), size_bits_(0) {
  BitWriter wire;
  Serialize(wire);
  size_bits_ = wire.bit_count();
}

BenczurKargerSparsifier BenczurKargerSparsifier::FromSparsifier(
    double epsilon, UndirectedGraph sparsifier) {
  return BenczurKargerSparsifier(epsilon, std::move(sparsifier));
}

void BenczurKargerSparsifier::Serialize(BitWriter& writer) const {
  BitWriter payload;
  payload.WriteDouble(epsilon_);
  SerializeUndirectedGraph(sparsifier_, payload);
  WriteEnvelope(StreamKind::kForAllSparsifier, payload, writer);
}

StatusOr<BenczurKargerSparsifier> BenczurKargerSparsifier::Deserialize(
    BitReader& reader) {
  DCS_ASSIGN_OR_RETURN(
      const EnvelopePayload payload,
      ReadEnvelopePayload(StreamKind::kForAllSparsifier, reader));
  BitReader payload_reader(payload.bytes);
  DCS_ASSIGN_OR_RETURN(const double epsilon, payload_reader.TryReadDouble());
  if (!std::isfinite(epsilon) || epsilon <= 0 || epsilon >= 1) {
    return InvalidArgumentError("sparsifier epsilon outside (0, 1)");
  }
  DCS_ASSIGN_OR_RETURN(UndirectedGraph sparsifier,
                       DeserializeUndirectedGraph(payload_reader));
  if (payload_reader.position() != payload.bit_count) {
    return DataLossError("sparsifier payload has trailing bits");
  }
  return FromSparsifier(epsilon, std::move(sparsifier));
}

double BenczurKargerSparsifier::EstimateCut(const VertexSet& side) const {
  return sparsifier_.CutWeight(side);
}

int64_t BenczurKargerSparsifier::SizeInBits() const { return size_bits_; }

ForEachCutSketch::ForEachCutSketch(const UndirectedGraph& graph,
                                   double epsilon, Rng& rng,
                                   double oversample_c)
    : epsilon_(epsilon), sample_(0), size_bits_(0) {
  DCS_CHECK(epsilon > 0 && epsilon < 1);
  const double factor = oversample_c / epsilon;
  sample_ = ImportanceSampleByStrength(graph, factor, rng);
  BitWriter wire;
  Serialize(wire);
  size_bits_ = wire.bit_count();
}

ForEachCutSketch::ForEachCutSketch(double epsilon, UndirectedGraph sample)
    : epsilon_(epsilon), sample_(std::move(sample)), size_bits_(0) {
  BitWriter wire;
  Serialize(wire);
  size_bits_ = wire.bit_count();
}

ForEachCutSketch ForEachCutSketch::FromSample(double epsilon,
                                              UndirectedGraph sample) {
  return ForEachCutSketch(epsilon, std::move(sample));
}

void ForEachCutSketch::Serialize(BitWriter& writer) const {
  BitWriter payload;
  payload.WriteDouble(epsilon_);
  SerializeUndirectedGraph(sample_, payload);
  WriteEnvelope(StreamKind::kForEachSketch, payload, writer);
}

StatusOr<ForEachCutSketch> ForEachCutSketch::Deserialize(BitReader& reader) {
  DCS_ASSIGN_OR_RETURN(
      const EnvelopePayload payload,
      ReadEnvelopePayload(StreamKind::kForEachSketch, reader));
  BitReader payload_reader(payload.bytes);
  DCS_ASSIGN_OR_RETURN(const double epsilon, payload_reader.TryReadDouble());
  if (!std::isfinite(epsilon) || epsilon <= 0 || epsilon >= 1) {
    return InvalidArgumentError("sketch epsilon outside (0, 1)");
  }
  DCS_ASSIGN_OR_RETURN(UndirectedGraph sample,
                       DeserializeUndirectedGraph(payload_reader));
  if (payload_reader.position() != payload.bit_count) {
    return DataLossError("sketch payload has trailing bits");
  }
  return FromSample(epsilon, std::move(sample));
}

double ForEachCutSketch::EstimateCut(const VertexSet& side) const {
  return sample_.CutWeight(side);
}

int64_t ForEachCutSketch::SizeInBits() const { return size_bits_; }

DegreeComplementSketch::DegreeComplementSketch(const UndirectedGraph& graph,
                                               double epsilon, Rng& rng,
                                               double oversample_c)
    : degrees_(static_cast<size_t>(graph.num_vertices()), 0),
      sample_(0),
      size_bits_(0) {
  DCS_CHECK(epsilon > 0 && epsilon < 1);
  for (const Edge& e : graph.edges()) {
    degrees_[static_cast<size_t>(e.src)] += e.weight;
    degrees_[static_cast<size_t>(e.dst)] += e.weight;
  }
  sample_ = ImportanceSampleByStrength(graph, oversample_c / epsilon, rng);
  // Wire cost: the degree table plus the sample graph.
  size_bits_ = 64 * static_cast<int64_t>(degrees_.size()) +
               SerializedSizeInBits(sample_);
}

double DegreeComplementSketch::EstimateCut(const VertexSet& side) const {
  DCS_CHECK_EQ(side.size(), degrees_.size());
  double degree_sum = 0;
  for (size_t v = 0; v < side.size(); ++v) {
    if (side[v]) degree_sum += degrees_[v];
  }
  double inside = 0;
  for (const Edge& e : sample_.edges()) {
    if (side[static_cast<size_t>(e.src)] &&
        side[static_cast<size_t>(e.dst)]) {
      inside += e.weight;
    }
  }
  return std::max(0.0, degree_sum - 2 * inside);
}

int64_t DegreeComplementSketch::SizeInBits() const { return size_bits_; }

MedianOfSketches::MedianOfSketches(
    std::vector<std::unique_ptr<UndirectedCutSketch>> sketches)
    : sketches_(std::move(sketches)) {
  DCS_CHECK(!sketches_.empty());
}

double MedianOfSketches::EstimateCut(const VertexSet& side) const {
  std::vector<double> estimates;
  estimates.reserve(sketches_.size());
  for (const auto& sketch : sketches_) {
    estimates.push_back(sketch->EstimateCut(side));
  }
  return Median(std::move(estimates));
}

int64_t MedianOfSketches::SizeInBits() const {
  int64_t total = 0;
  for (const auto& sketch : sketches_) total += sketch->SizeInBits();
  return total;
}

}  // namespace dcs
