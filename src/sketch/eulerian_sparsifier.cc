#include "sketch/eulerian_sparsifier.h"

#include <algorithm>
#include <cmath>

namespace dcs {
namespace {

constexpr double kWeightTolerance = 1e-9;

}  // namespace

std::vector<WeightedCycle> DecomposeIntoCycles(const DirectedGraph& graph) {
  const int n = graph.num_vertices();
  // Eulerian check.
  for (int v = 0; v < n; ++v) {
    DCS_CHECK(std::abs(graph.OutDegree(v) - graph.InDegree(v)) <
              kWeightTolerance);
  }
  std::vector<double> remaining(graph.edges().size());
  for (size_t i = 0; i < remaining.size(); ++i) {
    remaining[i] = graph.edges()[i].weight;
  }
  // Per-vertex cursor into its out-edge list, advanced past spent edges.
  std::vector<size_t> cursor(static_cast<size_t>(n), 0);
  auto next_out_edge = [&](VertexId v) -> int64_t {
    const std::span<const int64_t> out = graph.OutEdgeIds(v);
    while (cursor[static_cast<size_t>(v)] < out.size()) {
      const int64_t id = out[cursor[static_cast<size_t>(v)]];
      if (remaining[static_cast<size_t>(id)] > kWeightTolerance) return id;
      ++cursor[static_cast<size_t>(v)];
    }
    return -1;
  };

  std::vector<WeightedCycle> cycles;
  // on_path[v] = position of v on the current walk, or -1.
  std::vector<int> on_path(static_cast<size_t>(n), -1);
  for (VertexId start = 0; start < n; ++start) {
    while (next_out_edge(start) != -1) {
      // Walk from `start` following live out-edges; Eulerian-ness (which
      // cycle subtraction preserves) guarantees the walk can always
      // continue, so it must revisit a vertex on the path — a cycle.
      std::vector<VertexId> path_vertices;
      std::vector<int64_t> path_edges;
      VertexId v = start;
      on_path[static_cast<size_t>(v)] = 0;
      path_vertices.push_back(v);
      while (true) {
        const int64_t edge_id = next_out_edge(v);
        DCS_CHECK_GE(edge_id, 0);
        const VertexId next = graph.edges()[static_cast<size_t>(edge_id)].dst;
        path_edges.push_back(edge_id);
        if (on_path[static_cast<size_t>(next)] != -1) {
          // Cycle found: from position on_path[next] to the end.
          const size_t from = static_cast<size_t>(
              on_path[static_cast<size_t>(next)]);
          WeightedCycle cycle;
          cycle.vertices.assign(path_vertices.begin() + static_cast<int64_t>(from),
                                path_vertices.end());
          double delta = remaining[static_cast<size_t>(path_edges[from])];
          for (size_t k = from; k < path_edges.size(); ++k) {
            delta = std::min(delta,
                             remaining[static_cast<size_t>(path_edges[k])]);
          }
          cycle.weight = delta;
          for (size_t k = from; k < path_edges.size(); ++k) {
            remaining[static_cast<size_t>(path_edges[k])] -= delta;
          }
          cycles.push_back(std::move(cycle));
          break;
        }
        v = next;
        on_path[static_cast<size_t>(v)] =
            static_cast<int>(path_vertices.size());
        path_vertices.push_back(v);
      }
      for (VertexId u : path_vertices) {
        on_path[static_cast<size_t>(u)] = -1;
      }
    }
  }
  return cycles;
}

DirectedGraph GraphFromCycles(int num_vertices,
                              const std::vector<WeightedCycle>& cycles) {
  DirectedGraph graph(num_vertices);
  for (const WeightedCycle& cycle : cycles) {
    DCS_CHECK_GE(cycle.vertices.size(), 2u);
    for (size_t k = 0; k < cycle.vertices.size(); ++k) {
      graph.AddEdge(cycle.vertices[k],
                    cycle.vertices[(k + 1) % cycle.vertices.size()],
                    cycle.weight);
    }
  }
  return graph;
}

DirectedGraph SparsifyEulerian(const DirectedGraph& graph,
                               double keep_probability, Rng& rng) {
  DCS_CHECK(keep_probability > 0 && keep_probability <= 1);
  const std::vector<WeightedCycle> cycles = DecomposeIntoCycles(graph);
  std::vector<WeightedCycle> kept;
  for (const WeightedCycle& cycle : cycles) {
    if (rng.Bernoulli(keep_probability)) {
      WeightedCycle reweighted = cycle;
      reweighted.weight /= keep_probability;
      kept.push_back(std::move(reweighted));
    }
  }
  return GraphFromCycles(graph.num_vertices(), kept);
}

CyclePeeling PeelCycles(const DirectedGraph& graph) {
  const int n = graph.num_vertices();
  CyclePeeling peeling;
  peeling.residual = DirectedGraph(n);
  std::vector<double> remaining(graph.edges().size());
  for (size_t i = 0; i < remaining.size(); ++i) {
    remaining[i] = graph.edges()[i].weight;
  }
  std::vector<size_t> cursor(static_cast<size_t>(n), 0);
  auto next_out_edge = [&](VertexId v) -> int64_t {
    const std::span<const int64_t> out = graph.OutEdgeIds(v);
    while (cursor[static_cast<size_t>(v)] < out.size()) {
      const int64_t id = out[cursor[static_cast<size_t>(v)]];
      if (remaining[static_cast<size_t>(id)] > kWeightTolerance) return id;
      ++cursor[static_cast<size_t>(v)];
    }
    return -1;
  };

  std::vector<int> on_path(static_cast<size_t>(n), -1);
  for (VertexId start = 0; start < n; ++start) {
    while (next_out_edge(start) != -1) {
      // Walk from `start`; a revisit closes a cycle as in the Eulerian
      // decomposition, but here a walk may also dead-end — the graph does
      // not owe us a continuation. Dead-ended edges backtrack into the
      // residual (their remaining weight provably lies on no cycle through
      // the already-spent prefix; exactness of the split is all the
      // sketch needs).
      std::vector<VertexId> path_vertices;
      std::vector<int64_t> path_edges;
      VertexId v = start;
      on_path[static_cast<size_t>(v)] = 0;
      path_vertices.push_back(v);
      while (true) {
        const int64_t edge_id = next_out_edge(v);
        if (edge_id < 0) {
          if (path_edges.empty()) break;  // start itself is spent
          const int64_t last = path_edges.back();
          path_edges.pop_back();
          const Edge& e = graph.edges()[static_cast<size_t>(last)];
          peeling.residual.AddEdge(e.src, e.dst,
                                   remaining[static_cast<size_t>(last)]);
          remaining[static_cast<size_t>(last)] = 0;
          on_path[static_cast<size_t>(v)] = -1;
          path_vertices.pop_back();
          v = path_vertices.back();
          continue;
        }
        const VertexId next = graph.edges()[static_cast<size_t>(edge_id)].dst;
        path_edges.push_back(edge_id);
        if (on_path[static_cast<size_t>(next)] != -1) {
          const size_t from =
              static_cast<size_t>(on_path[static_cast<size_t>(next)]);
          WeightedCycle cycle;
          cycle.vertices.assign(
              path_vertices.begin() + static_cast<int64_t>(from),
              path_vertices.end());
          double delta = remaining[static_cast<size_t>(path_edges[from])];
          for (size_t k = from; k < path_edges.size(); ++k) {
            delta = std::min(delta,
                             remaining[static_cast<size_t>(path_edges[k])]);
          }
          cycle.weight = delta;
          for (size_t k = from; k < path_edges.size(); ++k) {
            remaining[static_cast<size_t>(path_edges[k])] -= delta;
          }
          peeling.cycles.push_back(std::move(cycle));
          break;
        }
        v = next;
        on_path[static_cast<size_t>(v)] =
            static_cast<int>(path_vertices.size());
        path_vertices.push_back(v);
      }
      for (VertexId u : path_vertices) {
        on_path[static_cast<size_t>(u)] = -1;
      }
      if (path_edges.empty() && path_vertices.size() == 1 &&
          next_out_edge(start) == -1) {
        break;
      }
    }
  }
  // Whatever the walks never reached (weight below tolerance is dropped,
  // matching the Eulerian decomposition's treatment) stays residual.
  for (size_t i = 0; i < remaining.size(); ++i) {
    if (remaining[i] > kWeightTolerance) {
      const Edge& e = graph.edges()[i];
      peeling.residual.AddEdge(e.src, e.dst, remaining[i]);
      remaining[i] = 0;
    }
  }
  return peeling;
}

}  // namespace dcs
