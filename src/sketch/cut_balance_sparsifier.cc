#include "sketch/cut_balance_sparsifier.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "mincut/nagamochi_ibaraki.h"
#include "mincut/stoer_wagner.h"
#include "sketch/serialization.h"

namespace dcs {
namespace {

// Vertex-count cap shared with the graph deserializer; a payload that
// passed the checksum can still declare an absurd array length.
constexpr uint64_t kMaxImbalanceEntries = uint64_t{1} << 28;

uint64_t ZigZag(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t UnZigZag(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^
         -static_cast<int64_t>(value & 1);
}

}  // namespace

CutBalanceSparsifier::CutBalanceSparsifier(const DirectedGraph& graph,
                                           double epsilon, double beta,
                                           Rng& rng, double oversample_c)
    : epsilon_(epsilon), beta_(beta), sample_(graph.num_vertices()) {
  DCS_CHECK(std::isfinite(epsilon) && epsilon > 0 && epsilon < 1);
  DCS_CHECK(std::isfinite(beta) && beta >= 1);
  const UndirectedGraph symmetric = graph.Symmetrized();
  const std::vector<double> strengths = NagamochiIbarakiStrengths(symmetric);
  // Directed pair weights, for the local balance rate; strengths of each
  // unordered pair, for the importance rate.
  std::map<std::pair<VertexId, VertexId>, double> pair_strength;
  std::map<std::pair<VertexId, VertexId>, double> pair_weight;
  for (size_t i = 0; i < symmetric.edges().size(); ++i) {
    const Edge& e = symmetric.edges()[i];
    pair_strength[{e.src, e.dst}] = strengths[i];
  }
  for (const Edge& e : graph.edges()) {
    pair_weight[{e.src, e.dst}] += e.weight;
  }
  const double n = std::max(2, graph.num_vertices());
  const double base_factor = oversample_c * std::log(n) / (epsilon * epsilon);
  for (const Edge& e : graph.edges()) {
    if (e.weight <= 0) continue;
    const auto key = e.src < e.dst ? std::make_pair(e.src, e.dst)
                                   : std::make_pair(e.dst, e.src);
    const auto it = pair_strength.find(key);
    DCS_CHECK(it != pair_strength.end());
    // Local pair balance: heavier-direction weight over lighter-direction
    // weight, capped by the promised global β (a missing reverse direction
    // means the pair is as skewed as the promise allows).
    const auto reverse = pair_weight.find({e.dst, e.src});
    double local_beta = beta;
    if (reverse != pair_weight.end() && reverse->second > 0) {
      const double forward = pair_weight[{e.src, e.dst}];
      const double ratio = std::max(forward, reverse->second) /
                           std::min(forward, reverse->second);
      local_beta = std::min(beta, ratio);
    }
    const double p = std::min(
        1.0, base_factor * (1 + local_beta) * (1 + local_beta) * e.weight /
                 it->second);
    if (rng.Bernoulli(p)) {
      sample_.AddEdge(e.src, e.dst, e.weight / p);
    }
  }
  // Quantization step: n·q/2 rounding error across any side must stay
  // below (ε/4)·u_min/(1+β) ≤ (ε/4)·w(S) for every proper cut. A graph
  // whose symmetrization is disconnected (u_min = 0) has a cut with no
  // wrong-direction weight at all; fall back to a tiny absolute step.
  double u_min = 0;
  if (graph.num_vertices() >= 2 && graph.num_edges() > 0) {
    u_min = StoerWagnerMinCut(symmetric).value;
  }
  const double scale = std::max(u_min, 1e-9);
  quantization_step_ =
      epsilon * scale / (2.0 * n * (1 + beta));
  const std::vector<double> imbalance = [&graph] {
    std::vector<double> d(static_cast<size_t>(graph.num_vertices()), 0);
    for (const Edge& e : graph.edges()) {
      d[static_cast<size_t>(e.src)] += e.weight;
      d[static_cast<size_t>(e.dst)] -= e.weight;
    }
    return d;
  }();
  quantized_imbalance_.resize(imbalance.size());
  for (size_t v = 0; v < imbalance.size(); ++v) {
    quantized_imbalance_[v] =
        static_cast<int64_t>(std::llround(imbalance[v] / quantization_step_));
  }
}

void CutBalanceSparsifier::Serialize(BitWriter& writer) const {
  BitWriter payload;
  payload.WriteDouble(epsilon_);
  payload.WriteDouble(beta_);
  payload.WriteDouble(quantization_step_);
  payload.WriteEliasGamma(quantized_imbalance_.size());
  for (const int64_t q : quantized_imbalance_) {
    payload.WriteEliasGamma(ZigZag(q));
  }
  SerializeDirectedGraph(sample_, payload);
  WriteEnvelope(StreamKind::kCutBalanceSparsifier, payload, writer);
}

StatusOr<CutBalanceSparsifier> CutBalanceSparsifier::Deserialize(
    BitReader& reader) {
  DCS_ASSIGN_OR_RETURN(
      const EnvelopePayload payload,
      ReadEnvelopePayload(StreamKind::kCutBalanceSparsifier, reader));
  BitReader payload_reader(payload.bytes);
  CutBalanceSparsifier sketch;
  DCS_ASSIGN_OR_RETURN(sketch.epsilon_, payload_reader.TryReadDouble());
  if (!std::isfinite(sketch.epsilon_) || sketch.epsilon_ <= 0 ||
      sketch.epsilon_ >= 1) {
    return InvalidArgumentError("cut-balance epsilon outside (0, 1)");
  }
  DCS_ASSIGN_OR_RETURN(sketch.beta_, payload_reader.TryReadDouble());
  if (!std::isfinite(sketch.beta_) || sketch.beta_ < 1) {
    return InvalidArgumentError("cut-balance beta below 1 or non-finite");
  }
  DCS_ASSIGN_OR_RETURN(sketch.quantization_step_,
                       payload_reader.TryReadDouble());
  if (!std::isfinite(sketch.quantization_step_) ||
      sketch.quantization_step_ <= 0) {
    return InvalidArgumentError(
        "cut-balance quantization step non-positive or non-finite");
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t count,
                       payload_reader.TryReadEliasGamma());
  if (count > kMaxImbalanceEntries ||
      count > static_cast<uint64_t>(payload_reader.RemainingBits())) {
    return DataLossError("cut-balance stream declares " +
                         std::to_string(count) +
                         " imbalance entries but only " +
                         std::to_string(payload_reader.RemainingBits()) +
                         " payload bits remain");
  }
  sketch.quantized_imbalance_.resize(static_cast<size_t>(count));
  for (size_t v = 0; v < sketch.quantized_imbalance_.size(); ++v) {
    DCS_ASSIGN_OR_RETURN(const uint64_t z,
                         payload_reader.TryReadEliasGamma());
    sketch.quantized_imbalance_[v] = UnZigZag(z);
  }
  DCS_ASSIGN_OR_RETURN(sketch.sample_,
                       DeserializeDirectedGraph(payload_reader));
  if (payload_reader.position() != payload.bit_count) {
    return DataLossError("cut-balance payload has trailing bits");
  }
  if (static_cast<uint64_t>(sketch.sample_.num_vertices()) != count) {
    return InvalidArgumentError(
        "imbalance array length does not match the sample's vertex count");
  }
  return sketch;
}

double CutBalanceSparsifier::EstimateCut(const VertexSet& side) const {
  DCS_CHECK_EQ(static_cast<int>(side.size()), sample_.num_vertices());
  const VertexSet complement = ComplementSet(side);
  const double u_estimate =
      sample_.CutWeight(side) + sample_.CutWeight(complement);
  int64_t quantized_sum = 0;
  for (size_t v = 0; v < side.size(); ++v) {
    if (side[v]) quantized_sum += quantized_imbalance_[v];
  }
  const double d_estimate =
      quantization_step_ * static_cast<double>(quantized_sum);
  return std::max(0.0, (u_estimate + d_estimate) / 2);
}

int64_t CutBalanceSparsifier::SizeInBits() const {
  BitWriter writer;
  Serialize(writer);
  return writer.bit_count();
}

int64_t CutBalanceSparsifier::imbalance_bits() const {
  BitWriter writer;
  writer.WriteEliasGamma(quantized_imbalance_.size());
  for (const int64_t q : quantized_imbalance_) {
    writer.WriteEliasGamma(ZigZag(q));
  }
  return writer.bit_count();
}

int64_t CutBalanceSparsifier::sample_bits() const {
  return SerializedSizeInBits(sample_);
}

}  // namespace dcs
