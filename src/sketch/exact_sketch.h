// Trivial exact sketches: store the graph, answer every query exactly.
// The baseline every compressed sketch is compared against, and the exact
// cut oracle used by lower-bound decoders.

#ifndef DCS_SKETCH_EXACT_SKETCH_H_
#define DCS_SKETCH_EXACT_SKETCH_H_

#include "graph/digraph.h"
#include "graph/ugraph.h"
#include "sketch/cut_sketch.h"

namespace dcs {

// Exact sketch of an undirected graph (stores all edges).
class ExactUndirectedSketch final : public UndirectedCutSketch {
 public:
  explicit ExactUndirectedSketch(UndirectedGraph graph);

  double EstimateCut(const VertexSet& side) const override;
  int64_t SizeInBits() const override;

  const UndirectedGraph& graph() const { return graph_; }

 private:
  UndirectedGraph graph_;
  int64_t size_bits_;
};

// Exact sketch of a directed graph (stores all edges).
class ExactDirectedSketch final : public DirectedCutSketch {
 public:
  explicit ExactDirectedSketch(DirectedGraph graph);

  double EstimateCut(const VertexSet& side) const override;
  int64_t SizeInBits() const override;

  const DirectedGraph& graph() const { return graph_; }

 private:
  DirectedGraph graph_;
  int64_t size_bits_;
};

}  // namespace dcs

#endif  // DCS_SKETCH_EXACT_SKETCH_H_
