#include "sketch/exact_sketch.h"

#include <utility>

#include "sketch/serialization.h"

namespace dcs {

ExactUndirectedSketch::ExactUndirectedSketch(UndirectedGraph graph)
    : graph_(std::move(graph)), size_bits_(SerializedSizeInBits(graph_)) {}

double ExactUndirectedSketch::EstimateCut(const VertexSet& side) const {
  return graph_.CutWeight(side);
}

int64_t ExactUndirectedSketch::SizeInBits() const { return size_bits_; }

ExactDirectedSketch::ExactDirectedSketch(DirectedGraph graph)
    : graph_(std::move(graph)), size_bits_(SerializedSizeInBits(graph_)) {}

double ExactDirectedSketch::EstimateCut(const VertexSet& side) const {
  return graph_.CutWeight(side);
}

int64_t ExactDirectedSketch::SizeInBits() const { return size_bits_; }

}  // namespace dcs
