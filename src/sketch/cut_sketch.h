// Abstract cut-sketch interfaces (Definitions 2.2 and 2.3 of the paper).
//
// A cut sketch is any data structure from which cut values can be
// recovered. "For-all" sketches must be simultaneously accurate on every
// cut; "for-each" sketches need only be accurate on each fixed cut with
// constant probability (over the sketch's construction randomness). Both
// kinds expose the same query interface; the guarantee they offer is part
// of the concrete class's contract.

#ifndef DCS_SKETCH_CUT_SKETCH_H_
#define DCS_SKETCH_CUT_SKETCH_H_

#include <cstdint>

#include "graph/types.h"

namespace dcs {

// A sketch of an undirected graph answering cut queries.
class UndirectedCutSketch {
 public:
  virtual ~UndirectedCutSketch() = default;

  // Estimate of the undirected cut value cut(S).
  virtual double EstimateCut(const VertexSet& side) const = 0;

  // Size of the serialized sketch in bits.
  virtual int64_t SizeInBits() const = 0;
};

// A sketch of a directed graph answering directed cut queries w(S, V∖S).
class DirectedCutSketch {
 public:
  virtual ~DirectedCutSketch() = default;

  // Estimate of the directed cut value w(S, V∖S).
  virtual double EstimateCut(const VertexSet& side) const = 0;

  // Size of the serialized sketch in bits.
  virtual int64_t SizeInBits() const = 0;
};

}  // namespace dcs

#endif  // DCS_SKETCH_CUT_SKETCH_H_
