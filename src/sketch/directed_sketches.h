// Cut sketches for β-balanced directed graphs (the upper-bound side of
// Theorems 1.1 and 1.2).
//
// All three sketches exploit the decomposition used throughout the
// balanced-digraph literature [EMPS16, IT18, CCPS21]:
//
//   w(S, V∖S) = (u(S) + d(S)) / 2, where
//   u(S) = w(S, V∖S) + w(V∖S, S)   — the cut of the symmetrization G + Gᵀ,
//   d(S) = Σ_{v∈S} (out(v) − in(v)) — a *linear* function of vertex
//                                     imbalances, storable exactly in n words.
//
// Since a β-balanced graph has w(S, V∖S) ≥ u(S)/(1+β), approximating u(S)
// with relative error ε_u = 2ε/(1+β) and adding the exact d(S) gives a
// (1±ε) directed estimate. Plugging in:
//  * DirectedForEachSketch — undirected for-each sketch of the
//    symmetrization at ε_u. Size Õ(n(1+β)/ε): a factor ~√β above the
//    optimal Õ(n√β/ε) of [CCPS21] (documented substitution; measured in
//    the tightness benches).
//  * DirectedForAllSketch — Benczúr–Karger sparsifier of the symmetrization
//    at ε_u. Size Õ(n(1+β)²/ε²) vs optimal Õ(nβ/ε²).
//  * DirectedImportanceSamplerSketch — samples *directed* edges at rate
//    ∝ (1+β)·w_e/(ε²·λ_e) (λ from the symmetrization), keeping direction
//    information in the sample; the direct analogue of [CCPS21]'s directed
//    sparsifier with expected Õ(nβ/ε²) edges.

#ifndef DCS_SKETCH_DIRECTED_SKETCHES_H_
#define DCS_SKETCH_DIRECTED_SKETCHES_H_

#include <memory>
#include <vector>

#include "graph/digraph.h"
#include "sketch/cut_sketch.h"
#include "util/bitio.h"
#include "sketch/sampled_sketches.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {

// Exact per-vertex imbalance out(v) − in(v); Σ_{v∈S} of it equals
// w(S, V∖S) − w(V∖S, S) for every cut.
std::vector<double> VertexImbalances(const DirectedGraph& graph);

// For-each sketch for β-balanced digraphs.
class DirectedForEachSketch final : public DirectedCutSketch {
 public:
  // `beta` is the balance parameter the graph is promised to satisfy.
  DirectedForEachSketch(const DirectedGraph& graph, double epsilon,
                        double beta, Rng& rng, double oversample_c = 2.0);

  // Wire format: an envelope (kDirectedForEachSketch) whose payload is the
  // imbalance array + symmetrization epsilon + the enveloped inner sketch.
  // Deserialize validates the stream and never aborts on corrupted input.
  void Serialize(BitWriter& writer) const;
  static StatusOr<DirectedForEachSketch> Deserialize(BitReader& reader);

  double EstimateCut(const VertexSet& side) const override;
  int64_t SizeInBits() const override;

  double symmetrization_epsilon() const { return symmetrization_epsilon_; }
  // The inner undirected sketch of the symmetrization (observability).
  const ForEachCutSketch& symmetric_sketch() const {
    return *symmetric_sketch_;
  }

 private:
  DirectedForEachSketch() = default;

  std::vector<double> imbalance_;
  double symmetrization_epsilon_ = 0;
  std::unique_ptr<ForEachCutSketch> symmetric_sketch_;
};

// For-all sketch for β-balanced digraphs.
class DirectedForAllSketch final : public DirectedCutSketch {
 public:
  DirectedForAllSketch(const DirectedGraph& graph, double epsilon,
                       double beta, Rng& rng, double oversample_c = 2.0);

  // Wire format: an envelope (kDirectedForAllSketch) whose payload is the
  // imbalance array + symmetrization epsilon + the enveloped inner
  // sparsifier. Deserialize validates the stream and never aborts on
  // corrupted input.
  void Serialize(BitWriter& writer) const;
  static StatusOr<DirectedForAllSketch> Deserialize(BitReader& reader);

  double EstimateCut(const VertexSet& side) const override;
  int64_t SizeInBits() const override;

  double symmetrization_epsilon() const { return symmetrization_epsilon_; }
  // The inner undirected sparsifier of the symmetrization (observability).
  const BenczurKargerSparsifier& symmetric_sparsifier() const {
    return *symmetric_sparsifier_;
  }

 private:
  DirectedForAllSketch() = default;

  std::vector<double> imbalance_;
  double symmetrization_epsilon_ = 0;
  std::unique_ptr<BenczurKargerSparsifier> symmetric_sparsifier_;
};

// Direct directed sparsifier: a reweighted subgraph of G whose directed
// cuts approximate G's (for-all flavor).
class DirectedImportanceSamplerSketch final : public DirectedCutSketch {
 public:
  DirectedImportanceSamplerSketch(const DirectedGraph& graph, double epsilon,
                                  double beta, Rng& rng,
                                  double oversample_c = 2.0);

  double EstimateCut(const VertexSet& side) const override;
  int64_t SizeInBits() const override;

  const DirectedGraph& sample() const { return sample_; }

 private:
  DirectedGraph sample_;
  int64_t size_bits_;
};

// Median over independently built directed sketches (footnote 2/3 of the
// paper: run the sketching algorithm O(1) times and take the median to
// boost per-query success probability).
class MedianOfDirectedSketches final : public DirectedCutSketch {
 public:
  explicit MedianOfDirectedSketches(
      std::vector<std::unique_ptr<DirectedCutSketch>> sketches);

  double EstimateCut(const VertexSet& side) const override;
  int64_t SizeInBits() const override;

  int count() const { return static_cast<int>(sketches_.size()); }

 private:
  std::vector<std::unique_ptr<DirectedCutSketch>> sketches_;
};

}  // namespace dcs

#endif  // DCS_SKETCH_DIRECTED_SKETCHES_H_
