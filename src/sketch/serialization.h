// Bit-exact serialization of graphs and vertex-indexed arrays.
//
// Sketch sizes in this library are reported in *bits of serialized
// representation*, because the paper's lower bounds are stated in bits.
//
// Serialized artifacts are exactly the things meant to cross machine
// boundaries (sketches shipped Alice→Bob), so deserialization treats the
// bytes as hostile: every top-level object is wrapped in a self-delimiting
// envelope — magic (16 bits), format version (8), stream kind (8),
// Elias-gamma payload bit count, FNV-1a checksum (32) — and the payload is
// validated field by field (counts capped by the remaining stream length
// before any allocation, endpoints range-checked, weights finite and
// nonnegative). Deserializers return StatusOr and never abort, hang, or
// make an unbounded allocation on corrupted input; any bit flip or
// truncation is caught by the envelope checks.
//
// Payload format for graphs (inside the envelope): Elias-gamma vertex and
// edge counts, then per edge Elias-gamma endpoints and a raw IEEE double
// weight. Double vectors are headerless *fragments* (count + raw 64-bit
// values) meant to be embedded inside an enclosing envelope's payload.

#ifndef DCS_SKETCH_SERIALIZATION_H_
#define DCS_SKETCH_SERIALIZATION_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "graph/ugraph.h"
#include "util/bitio.h"
#include "util/status.h"

namespace dcs {

// Discriminates the envelope's payload. Stable wire values.
enum class StreamKind : uint8_t {
  kDirectedGraph = 1,
  kUndirectedGraph = 2,
  kForEachSketch = 3,
  kForAllSparsifier = 4,
  kDirectedForEachSketch = 5,
  kDirectedForAllSketch = 6,
  kEdgeStream = 7,  // replayable binary edge-update stream (stream/binary_stream.h)
  kCutBalanceSparsifier = 8,  // sketch/cut_balance_sparsifier.h
  kSegmentIndex = 9,  // sketch-store segment index footer (store/segment.h)
};

// Stable lowercase name of a stream kind ("directed_graph", ...); used in
// metric names (`serialization.payload_bits.<name>`) and diagnostics.
const char* StreamKindName(StreamKind kind);

// A validated envelope payload: the packed payload bits and their count.
struct EnvelopePayload {
  std::vector<uint8_t> bytes;
  int64_t bit_count = 0;
};

// Wraps `payload` in an envelope of the given kind and appends it to `out`.
void WriteEnvelope(StreamKind kind, const BitWriter& payload, BitWriter& out);

// Reads one envelope of the expected kind from `reader`: verifies magic,
// version, kind, payload length (against the remaining stream) and
// checksum, and returns the payload bits. kDataLoss on any mismatch.
StatusOr<EnvelopePayload> ReadEnvelopePayload(StreamKind expected_kind,
                                              BitReader& reader);

// Serializes a directed graph (enveloped).
void SerializeDirectedGraph(const DirectedGraph& graph, BitWriter& writer);
StatusOr<DirectedGraph> DeserializeDirectedGraph(BitReader& reader);

// Serializes an undirected graph (enveloped).
void SerializeUndirectedGraph(const UndirectedGraph& graph,
                              BitWriter& writer);
StatusOr<UndirectedGraph> DeserializeUndirectedGraph(BitReader& reader);

// Serializes a vector of doubles (headerless fragment: count + raw 64-bit
// values). Deserialization caps the count against the remaining bits and
// rejects non-finite entries (the library only serializes finite arrays:
// imbalances, degree tables).
void SerializeDoubleVector(const std::vector<double>& values,
                           BitWriter& writer);
StatusOr<std::vector<double>> DeserializeDoubleVector(BitReader& reader);

// Serialized sizes in bits (envelope included).
int64_t SerializedSizeInBits(const DirectedGraph& graph);
int64_t SerializedSizeInBits(const UndirectedGraph& graph);

}  // namespace dcs

#endif  // DCS_SKETCH_SERIALIZATION_H_
