// Bit-exact serialization of graphs and vertex-indexed arrays.
//
// Sketch sizes in this library are reported in *bits of serialized
// representation*, because the paper's lower bounds are stated in bits.
// Format (self-delimiting): Elias-gamma vertex/edge counts, per-edge
// Elias-gamma endpoints and a raw IEEE double weight.

#ifndef DCS_SKETCH_SERIALIZATION_H_
#define DCS_SKETCH_SERIALIZATION_H_

#include <vector>

#include "graph/digraph.h"
#include "graph/ugraph.h"
#include "util/bitio.h"

namespace dcs {

// Serializes a directed graph (vertex count, edge count, edges).
void SerializeDirectedGraph(const DirectedGraph& graph, BitWriter& writer);
DirectedGraph DeserializeDirectedGraph(BitReader& reader);

// Serializes an undirected graph.
void SerializeUndirectedGraph(const UndirectedGraph& graph,
                              BitWriter& writer);
UndirectedGraph DeserializeUndirectedGraph(BitReader& reader);

// Serializes a vector of doubles (count + raw 64-bit values).
void SerializeDoubleVector(const std::vector<double>& values,
                           BitWriter& writer);
std::vector<double> DeserializeDoubleVector(BitReader& reader);

// Serialized sizes in bits.
int64_t SerializedSizeInBits(const DirectedGraph& graph);
int64_t SerializedSizeInBits(const UndirectedGraph& graph);

}  // namespace dcs

#endif  // DCS_SKETCH_SERIALIZATION_H_
