#include "sketch/backend_registry.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/ugraph.h"
#include "mincut/stoer_wagner.h"
#include "sketch/cut_balance_sparsifier.h"
#include "sketch/directed_sketches.h"
#include "sketch/eulerian_sparsifier.h"
#include "sketch/exact_sketch.h"
#include "sketch/serialization.h"
#include "util/random.h"

namespace dcs {
namespace {

// Cycle-sampling backend for general digraphs: peel the input into
// weighted cycles + an exact residual (eulerian_sparsifier.h), keep light
// cycles with probability proportional to their worst-case cut
// contribution (length · weight, relative to the symmetrized min cut of
// the cyclic part), and answer with sampled-cycles + exact-residual. On an
// Eulerian input this is the classic degree-preserving cycle sparsifier;
// skew pushes weight into the exact residual, trading size for accuracy.
class EulerianCycleSketch final : public DirectedCutSketch {
 public:
  EulerianCycleSketch(const DirectedGraph& graph, double epsilon, Rng& rng,
                      double oversample_c)
      : sampled_(graph.num_vertices()), residual_(graph.num_vertices()) {
    DCS_CHECK(epsilon > 0 && epsilon < 1);
    CyclePeeling peeling = PeelCycles(graph);
    residual_ = std::move(peeling.residual);
    double cyclic_min_cut = 0;
    if (!peeling.cycles.empty()) {
      const DirectedGraph cyclic =
          GraphFromCycles(graph.num_vertices(), peeling.cycles);
      if (cyclic.num_edges() > 0) {
        cyclic_min_cut = StoerWagnerMinCut(cyclic.Symmetrized()).value;
      }
    }
    const double n = std::max(2, graph.num_vertices());
    // A cycle of length ℓ and weight w contributes at most ℓ·w/2 to any
    // directed cut; cycles whose ceiling is large relative to the
    // smallest cyclic cut are kept deterministically.
    const double threshold =
        epsilon * epsilon * std::max(cyclic_min_cut, 1e-12) /
        (oversample_c * std::log(n));
    std::vector<WeightedCycle> kept;
    for (const WeightedCycle& cycle : peeling.cycles) {
      const double ceiling =
          cycle.weight * static_cast<double>(cycle.vertices.size()) / 2.0;
      const double p =
          cyclic_min_cut > 0 ? std::min(1.0, ceiling / threshold) : 1.0;
      if (p >= 1.0 || rng.Bernoulli(p)) {
        WeightedCycle reweighted = cycle;
        reweighted.weight /= p;
        kept.push_back(std::move(reweighted));
      }
    }
    sampled_ = GraphFromCycles(graph.num_vertices(), kept);
  }

  double EstimateCut(const VertexSet& side) const override {
    return sampled_.CutWeight(side) + residual_.CutWeight(side);
  }

  int64_t SizeInBits() const override {
    return SerializedSizeInBits(sampled_) + SerializedSizeInBits(residual_);
  }

 private:
  DirectedGraph sampled_;
  DirectedGraph residual_;
};

Status ValidateOptions(const BackendOptions& options) {
  if (!std::isfinite(options.epsilon) || options.epsilon <= 0 ||
      options.epsilon >= 1) {
    return InvalidArgumentError("backend epsilon must be in (0, 1)");
  }
  if (!std::isfinite(options.beta) || options.beta < 1) {
    return InvalidArgumentError("backend beta must be >= 1");
  }
  if (options.median_boost < 1) {
    return InvalidArgumentError("backend median_boost must be >= 1");
  }
  return OkStatus();
}

using BuildOne = std::unique_ptr<DirectedCutSketch> (*)(
    const DirectedGraph&, const BackendOptions&, Rng&);

struct BackendEntry {
  const char* name;
  BackendGuarantee guarantee;
  const char* description;
  double (*advertised_error)(const BackendOptions&);
  BuildOne build;
};

// The registry. Adding a backend = adding a row (DESIGN.md §13); keep the
// bench tables and README bake-off in sync when the set changes.
constexpr double kExactSlack = 1e-9;  // floating-point summation only

const BackendEntry kBackends[] = {
    {"exact", BackendGuarantee::kForAll,
     "store every edge, answer exactly (baseline)",
     [](const BackendOptions&) { return kExactSlack; },
     [](const DirectedGraph& graph, const BackendOptions&,
        Rng&) -> std::unique_ptr<DirectedCutSketch> {
       return std::make_unique<ExactDirectedSketch>(graph);
     }},
    {"forall", BackendGuarantee::kForAll,
     "Benczur-Karger sparsifier of the symmetrization + exact imbalances",
     [](const BackendOptions& o) { return o.epsilon; },
     [](const DirectedGraph& graph, const BackendOptions& o,
        Rng& rng) -> std::unique_ptr<DirectedCutSketch> {
       return std::make_unique<DirectedForAllSketch>(graph, o.epsilon, o.beta,
                                                     rng, o.oversample_c);
     }},
    {"foreach", BackendGuarantee::kForEach,
     "n/eps sampler of the symmetrization + exact imbalances "
     "(documented sqrt-eps substitution for the paper's construction)",
     [](const BackendOptions& o) {
       // The simple inner sampler delivers ~sqrt(eps_u) relative error on
       // the symmetrization; scaled back through w(S) >= u(S)/(1+beta).
       return std::min(1.0, std::sqrt(o.epsilon * (1 + o.beta) / 2));
     },
     [](const DirectedGraph& graph, const BackendOptions& o,
        Rng& rng) -> std::unique_ptr<DirectedCutSketch> {
       return std::make_unique<DirectedForEachSketch>(graph, o.epsilon,
                                                      o.beta, rng,
                                                      o.oversample_c);
     }},
    {"importance", BackendGuarantee::kForEach,
     "directed strength-importance sampler at rate (1+beta)/eps^2",
     [](const BackendOptions& o) {
       return std::min(1.0, o.epsilon * std::sqrt((1 + o.beta) / 2));
     },
     [](const DirectedGraph& graph, const BackendOptions& o,
        Rng& rng) -> std::unique_ptr<DirectedCutSketch> {
       return std::make_unique<DirectedImportanceSamplerSketch>(
           graph, o.epsilon, o.beta, rng, o.oversample_c);
     }},
    {"cut_balance", BackendGuarantee::kForAll,
     "[CCPS21]-style balance-aware directed sample + quantized imbalances",
     [](const BackendOptions& o) { return o.epsilon; },
     [](const DirectedGraph& graph, const BackendOptions& o,
        Rng& rng) -> std::unique_ptr<DirectedCutSketch> {
       return std::make_unique<CutBalanceSparsifier>(graph, o.epsilon,
                                                     o.beta, rng,
                                                     o.oversample_c);
     }},
    {"eulerian", BackendGuarantee::kForAll,
     "cycle-peeling sampler + exact acyclic residual",
     [](const BackendOptions& o) { return o.epsilon; },
     [](const DirectedGraph& graph, const BackendOptions& o,
        Rng& rng) -> std::unique_ptr<DirectedCutSketch> {
       return std::make_unique<EulerianCycleSketch>(graph, o.epsilon, rng,
                                                    o.oversample_c);
     }},
};

const BackendEntry* FindBackend(const std::string& name) {
  for (const BackendEntry& entry : kBackends) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

}  // namespace

std::vector<BackendInfo> RegisteredBackends() {
  std::vector<BackendInfo> infos;
  for (const BackendEntry& entry : kBackends) {
    infos.push_back({entry.name, entry.guarantee, entry.description});
  }
  return infos;
}

bool IsRegisteredBackend(const std::string& name) {
  return FindBackend(name) != nullptr;
}

std::string RegisteredBackendNames() {
  std::string names;
  for (const BackendEntry& entry : kBackends) {
    if (!names.empty()) names += ", ";
    names += entry.name;
  }
  return names;
}

double BackendAdvertisedError(const std::string& name,
                              const BackendOptions& options) {
  const BackendEntry* entry = FindBackend(name);
  DCS_CHECK(entry != nullptr);
  return entry->advertised_error(options);
}

StatusOr<std::unique_ptr<DirectedCutSketch>> BuildBackendSketch(
    const std::string& name, const DirectedGraph& graph,
    const BackendOptions& options) {
  const BackendEntry* entry = FindBackend(name);
  if (entry == nullptr) {
    return InvalidArgumentError("unknown sparsifier backend '" + name +
                                "' (valid backends: " +
                                RegisteredBackendNames() + ")");
  }
  DCS_RETURN_IF_ERROR(ValidateOptions(options));
  const int copies =
      entry->guarantee == BackendGuarantee::kForEach ? options.median_boost
                                                     : 1;
  if (copies == 1) {
    Rng rng(options.seed);
    return StatusOr<std::unique_ptr<DirectedCutSketch>>(
        entry->build(graph, options, rng));
  }
  std::vector<std::unique_ptr<DirectedCutSketch>> sketches;
  for (int i = 0; i < copies; ++i) {
    Rng rng(SubtaskSeed(options.seed, static_cast<uint64_t>(i)));
    sketches.push_back(entry->build(graph, options, rng));
  }
  return StatusOr<std::unique_ptr<DirectedCutSketch>>(
      std::make_unique<MedianOfDirectedSketches>(std::move(sketches)));
}

}  // namespace dcs
