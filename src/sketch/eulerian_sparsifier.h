// Degree-preserving sparsification of Eulerian digraphs.
//
// Eulerian graphs (weighted in-degree == out-degree everywhere) are the
// β = 1 extreme of the paper's balanced-graph family, and the setting of
// the Eulerian-sparsification line of work the paper cites ([CGP+23],
// [CKK+18]). The key structural fact: an Eulerian digraph decomposes into
// weighted directed cycles, and any nonnegative combination of those
// cycles is again Eulerian.
//
// EulerianCycleSparsifier peels such a decomposition greedily and keeps
// each cycle independently with probability p (reweighted by 1/p), so the
// output is *exactly Eulerian* (every vertex imbalance is identically
// zero — not just approximately), cuts are unbiased, and the forward and
// backward values of every cut remain equal, preserving 1-balancedness by
// construction. A plain edge sampler preserves none of that.

#ifndef DCS_SKETCH_EULERIAN_SPARSIFIER_H_
#define DCS_SKETCH_EULERIAN_SPARSIFIER_H_

#include <vector>

#include "graph/digraph.h"
#include "util/random.h"

namespace dcs {

// One weighted directed cycle: vertices[0] → vertices[1] → … → vertices[0].
struct WeightedCycle {
  std::vector<VertexId> vertices;
  double weight = 0;
};

// Peels `graph` into weighted cycles. Requires the graph to be Eulerian
// (CHECKed up to a tolerance): the returned cycles sum exactly back to the
// graph's edge weights.
std::vector<WeightedCycle> DecomposeIntoCycles(const DirectedGraph& graph);

// Rebuilds a digraph from cycles (inverse of DecomposeIntoCycles up to
// edge coalescing).
DirectedGraph GraphFromCycles(int num_vertices,
                              const std::vector<WeightedCycle>& cycles);

// Keeps each cycle with probability `keep_probability`, reweighted by
// 1/keep_probability: an unbiased, exactly-Eulerian sparsifier.
DirectedGraph SparsifyEulerian(const DirectedGraph& graph,
                               double keep_probability, Rng& rng);

// Peeling of a *general* digraph: as many weighted cycles as the greedy
// walk finds, plus an acyclic-ish residual holding everything else.
// Invariant (exact, not approximate): cycles + residual sum back to the
// input's edge weights. On an Eulerian input the residual is empty.
struct CyclePeeling {
  std::vector<WeightedCycle> cycles;
  DirectedGraph residual{0};
};

CyclePeeling PeelCycles(const DirectedGraph& graph);

}  // namespace dcs

#endif  // DCS_SKETCH_EULERIAN_SPARSIFIER_H_
