// Cut-balance sparsifier for β-balanced digraphs, after [CCPS21]
// ("Sparsification of Directed Graphs via Cut Balance").
//
// The sketch has two halves, mirroring the decomposition
// w(S, V∖S) = (u(S) + d(S)) / 2:
//
//  * A *directed* importance sample of the edges at a balance-aware rate
//    p_e ∝ (1+β_e)²·w_e / (ε²·λ_e), where λ_e is the edge's strength in
//    the symmetrization and β_e is the *local* pair balance
//    max(w_uv, w_vu)/min(w_uv, w_vu) capped by the promised global β —
//    locally balanced pairs are cheap to sample even in a globally skewed
//    graph, which is exactly [CCPS21]'s point. The symmetrized value of
//    the sample estimates u(S).
//  * A *quantized* imbalance vector: d(v) = out(v) − in(v) rounded to a
//    step q = ε·u_min/(2n(1+β)) (u_min = min cut of the symmetrization),
//    stored as zigzag Elias-gamma integers. For every proper cut S the
//    rounding error is at most n·q/2 ≤ (ε/4)·u(S)/(1+β) ≤ (ε/4)·w(S),
//    while the storage cost per vertex is ~2·log₂(|d(v)|/q) bits — the
//    honest Θ(n·log β) dependence the paper's Ω(n·log β/ε²) lower bound
//    says is unavoidable (the sketch must resolve near-cancellation
//    between forward and backward flow across every cut).
//
// EstimateCut re-centers the sample with the quantized imbalance:
//     ŵ(S) = max(0, (û(S) + q·Σ_{v∈S} round(d(v)/q)) / 2),
//     û(S) = sample.CutWeight(S) + sample.CutWeight(V∖S),
// so the directionally-noisy part of the sample contributes only through
// its (well-concentrated) symmetrization, and the direction information
// comes from the near-exact imbalance term.

#ifndef DCS_SKETCH_CUT_BALANCE_SPARSIFIER_H_
#define DCS_SKETCH_CUT_BALANCE_SPARSIFIER_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "sketch/cut_sketch.h"
#include "util/bitio.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {

// For-all sketch of a β-balanced digraph with (1±ε) cut estimates.
class CutBalanceSparsifier final : public DirectedCutSketch {
 public:
  // `beta` is the balance parameter the graph is promised to satisfy
  // (>= 1); epsilon in (0, 1).
  CutBalanceSparsifier(const DirectedGraph& graph, double epsilon,
                       double beta, Rng& rng, double oversample_c = 2.0);

  // Wire format: an envelope (kCutBalanceSparsifier) whose payload is
  // epsilon + beta + quantization step + the zigzag Elias-gamma imbalance
  // array + the enveloped directed sample. Deserialize validates the
  // stream field by field and never aborts on corrupted input.
  void Serialize(BitWriter& writer) const;
  static StatusOr<CutBalanceSparsifier> Deserialize(BitReader& reader);

  double EstimateCut(const VertexSet& side) const override;
  int64_t SizeInBits() const override;

  // The directed edge sample (observability).
  const DirectedGraph& sample() const { return sample_; }
  double quantization_step() const { return quantization_step_; }
  // Serialized bits spent on the quantized imbalance array alone — the
  // component whose growth with log β the differential harness asserts.
  int64_t imbalance_bits() const;
  // Serialized bits spent on the edge sample alone.
  int64_t sample_bits() const;

 private:
  CutBalanceSparsifier() : sample_(0) {}

  double epsilon_ = 0;
  double beta_ = 1;
  double quantization_step_ = 0;
  std::vector<int64_t> quantized_imbalance_;
  DirectedGraph sample_;
};

}  // namespace dcs

#endif  // DCS_SKETCH_CUT_BALANCE_SPARSIFIER_H_
