#include "sketch/directed_sketches.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "mincut/nagamochi_ibaraki.h"
#include "sketch/serialization.h"
#include "util/bitio.h"
#include "util/stats.h"

namespace dcs {
namespace {

// Wire size of a sketch, by serializing it (the envelope makes any
// closed-form accounting brittle; these are called once per sketch).
template <typename SketchT>
int64_t WireSizeInBits(const SketchT& sketch) {
  BitWriter writer;
  sketch.Serialize(writer);
  return writer.bit_count();
}

bool ValidEpsilon(double epsilon) {
  return std::isfinite(epsilon) && epsilon > 0 && epsilon < 1;
}

double SumOverSide(const std::vector<double>& values, const VertexSet& side) {
  DCS_CHECK_EQ(values.size(), side.size());
  double sum = 0;
  for (size_t v = 0; v < side.size(); ++v) {
    if (side[v]) sum += values[v];
  }
  return sum;
}

double SymmetrizationEpsilon(double epsilon, double beta) {
  DCS_CHECK(epsilon > 0 && epsilon < 1);
  DCS_CHECK_GE(beta, 1);
  // Directed error = symmetrization error · (1+β)/2; budget ε for it.
  return std::min(0.5, 2 * epsilon / (1 + beta));
}

}  // namespace

std::vector<double> VertexImbalances(const DirectedGraph& graph) {
  std::vector<double> imbalance(static_cast<size_t>(graph.num_vertices()), 0);
  for (const Edge& e : graph.edges()) {
    imbalance[static_cast<size_t>(e.src)] += e.weight;
    imbalance[static_cast<size_t>(e.dst)] -= e.weight;
  }
  return imbalance;
}

DirectedForEachSketch::DirectedForEachSketch(const DirectedGraph& graph,
                                             double epsilon, double beta,
                                             Rng& rng, double oversample_c)
    : imbalance_(VertexImbalances(graph)),
      symmetrization_epsilon_(SymmetrizationEpsilon(epsilon, beta)) {
  symmetric_sketch_ = std::make_unique<ForEachCutSketch>(
      graph.Symmetrized(), symmetrization_epsilon_, rng, oversample_c);
}

void DirectedForEachSketch::Serialize(BitWriter& writer) const {
  BitWriter payload;
  SerializeDoubleVector(imbalance_, payload);
  payload.WriteDouble(symmetrization_epsilon_);
  symmetric_sketch_->Serialize(payload);
  WriteEnvelope(StreamKind::kDirectedForEachSketch, payload, writer);
}

StatusOr<DirectedForEachSketch> DirectedForEachSketch::Deserialize(
    BitReader& reader) {
  DCS_ASSIGN_OR_RETURN(
      const EnvelopePayload payload,
      ReadEnvelopePayload(StreamKind::kDirectedForEachSketch, reader));
  BitReader payload_reader(payload.bytes);
  DirectedForEachSketch sketch;
  DCS_ASSIGN_OR_RETURN(sketch.imbalance_,
                       DeserializeDoubleVector(payload_reader));
  DCS_ASSIGN_OR_RETURN(sketch.symmetrization_epsilon_,
                       payload_reader.TryReadDouble());
  if (!ValidEpsilon(sketch.symmetrization_epsilon_)) {
    return InvalidArgumentError("symmetrization epsilon outside (0, 1)");
  }
  DCS_ASSIGN_OR_RETURN(ForEachCutSketch inner,
                       ForEachCutSketch::Deserialize(payload_reader));
  if (payload_reader.position() != payload.bit_count) {
    return DataLossError("directed sketch payload has trailing bits");
  }
  if (static_cast<int>(sketch.imbalance_.size()) !=
      inner.sample().num_vertices()) {
    return InvalidArgumentError(
        "imbalance array length does not match the inner sketch's vertex "
        "count");
  }
  sketch.symmetric_sketch_ = std::make_unique<ForEachCutSketch>(
      std::move(inner));
  return sketch;
}

double DirectedForEachSketch::EstimateCut(const VertexSet& side) const {
  const double u_estimate = symmetric_sketch_->EstimateCut(side);
  const double d_exact = SumOverSide(imbalance_, side);
  return std::max(0.0, (u_estimate + d_exact) / 2);
}

int64_t DirectedForEachSketch::SizeInBits() const {
  return WireSizeInBits(*this);
}

DirectedForAllSketch::DirectedForAllSketch(const DirectedGraph& graph,
                                           double epsilon, double beta,
                                           Rng& rng, double oversample_c)
    : imbalance_(VertexImbalances(graph)),
      symmetrization_epsilon_(SymmetrizationEpsilon(epsilon, beta)) {
  symmetric_sparsifier_ = std::make_unique<BenczurKargerSparsifier>(
      graph.Symmetrized(), symmetrization_epsilon_, rng, oversample_c);
}

void DirectedForAllSketch::Serialize(BitWriter& writer) const {
  BitWriter payload;
  SerializeDoubleVector(imbalance_, payload);
  payload.WriteDouble(symmetrization_epsilon_);
  symmetric_sparsifier_->Serialize(payload);
  WriteEnvelope(StreamKind::kDirectedForAllSketch, payload, writer);
}

StatusOr<DirectedForAllSketch> DirectedForAllSketch::Deserialize(
    BitReader& reader) {
  DCS_ASSIGN_OR_RETURN(
      const EnvelopePayload payload,
      ReadEnvelopePayload(StreamKind::kDirectedForAllSketch, reader));
  BitReader payload_reader(payload.bytes);
  DirectedForAllSketch sketch;
  DCS_ASSIGN_OR_RETURN(sketch.imbalance_,
                       DeserializeDoubleVector(payload_reader));
  DCS_ASSIGN_OR_RETURN(sketch.symmetrization_epsilon_,
                       payload_reader.TryReadDouble());
  if (!ValidEpsilon(sketch.symmetrization_epsilon_)) {
    return InvalidArgumentError("symmetrization epsilon outside (0, 1)");
  }
  DCS_ASSIGN_OR_RETURN(BenczurKargerSparsifier inner,
                       BenczurKargerSparsifier::Deserialize(payload_reader));
  if (payload_reader.position() != payload.bit_count) {
    return DataLossError("directed sketch payload has trailing bits");
  }
  if (static_cast<int>(sketch.imbalance_.size()) !=
      inner.sparsifier().num_vertices()) {
    return InvalidArgumentError(
        "imbalance array length does not match the inner sparsifier's "
        "vertex count");
  }
  sketch.symmetric_sparsifier_ = std::make_unique<BenczurKargerSparsifier>(
      std::move(inner));
  return sketch;
}

double DirectedForAllSketch::EstimateCut(const VertexSet& side) const {
  const double u_estimate = symmetric_sparsifier_->EstimateCut(side);
  const double d_exact = SumOverSide(imbalance_, side);
  return std::max(0.0, (u_estimate + d_exact) / 2);
}

int64_t DirectedForAllSketch::SizeInBits() const {
  return WireSizeInBits(*this);
}

DirectedImportanceSamplerSketch::DirectedImportanceSamplerSketch(
    const DirectedGraph& graph, double epsilon, double beta, Rng& rng,
    double oversample_c)
    : sample_(graph.num_vertices()), size_bits_(0) {
  DCS_CHECK(epsilon > 0 && epsilon < 1);
  DCS_CHECK_GE(beta, 1);
  const UndirectedGraph symmetric = graph.Symmetrized();
  const std::vector<double> strengths = NagamochiIbarakiStrengths(symmetric);
  // Strength of each unordered pair, for looking up directed edges.
  std::map<std::pair<VertexId, VertexId>, double> pair_strength;
  for (size_t i = 0; i < symmetric.edges().size(); ++i) {
    const Edge& e = symmetric.edges()[i];
    pair_strength[{e.src, e.dst}] = strengths[i];
  }
  const double n = std::max(2, graph.num_vertices());
  const double factor = oversample_c * std::log(n) * (1 + beta) /
                        (epsilon * epsilon);
  for (const Edge& e : graph.edges()) {
    if (e.weight <= 0) continue;
    const auto key = e.src < e.dst ? std::make_pair(e.src, e.dst)
                                   : std::make_pair(e.dst, e.src);
    const auto it = pair_strength.find(key);
    DCS_CHECK(it != pair_strength.end());
    const double p = std::min(1.0, factor * e.weight / it->second);
    if (rng.Bernoulli(p)) {
      sample_.AddEdge(e.src, e.dst, e.weight / p);
    }
  }
  size_bits_ = SerializedSizeInBits(sample_);
}

double DirectedImportanceSamplerSketch::EstimateCut(
    const VertexSet& side) const {
  return sample_.CutWeight(side);
}

int64_t DirectedImportanceSamplerSketch::SizeInBits() const {
  return size_bits_;
}

MedianOfDirectedSketches::MedianOfDirectedSketches(
    std::vector<std::unique_ptr<DirectedCutSketch>> sketches)
    : sketches_(std::move(sketches)) {
  DCS_CHECK(!sketches_.empty());
}

double MedianOfDirectedSketches::EstimateCut(const VertexSet& side) const {
  std::vector<double> estimates;
  estimates.reserve(sketches_.size());
  for (const auto& sketch : sketches_) {
    estimates.push_back(sketch->EstimateCut(side));
  }
  return Median(std::move(estimates));
}

int64_t MedianOfDirectedSketches::SizeInBits() const {
  int64_t total = 0;
  for (const auto& sketch : sketches_) total += sketch->SizeInBits();
  return total;
}

}  // namespace dcs
