// Named sparsifier backends behind the DirectedCutSketch interface.
//
// Everything that can answer directed cut queries from a compressed (or
// exact) representation registers here under a stable lowercase name, so
// the differential harness, CutQueryService, the distributed pipeline, and
// the CLI can all route to any backend by name. Each backend declares the
// guarantee flavor it offers (for-all vs for-each) and the relative error
// it *advertises* for a given (ε, β) — the bound the differential tests
// hold it to, including documented substitutions that are weaker than the
// paper's optimal constructions (DESIGN.md §13).
//
// Registering a new backend = adding one BackendEntry to kBackends in
// backend_registry.cc (name, guarantee, advertised error, build function).
// The registry is a static table, not a plug-in system: backends are
// library code, and the table keeps the valid-name list in error messages
// and --help exhaustive by construction.

#ifndef DCS_SKETCH_BACKEND_REGISTRY_H_
#define DCS_SKETCH_BACKEND_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "sketch/cut_sketch.h"
#include "util/status.h"

namespace dcs {

// The accuracy contract a backend offers (cut_sketch.h): for-all holds on
// every cut simultaneously; for-each holds per fixed cut with constant
// probability, so differential tests median-boost those backends.
enum class BackendGuarantee { kForAll, kForEach };

struct BackendOptions {
  double epsilon = 0.1;     // target relative error, in (0, 1)
  double beta = 1.0;        // promised balance of the input, >= 1
  uint64_t seed = 1;        // construction randomness
  double oversample_c = 2.0;
  // For-each backends: build this many independent sketches and answer
  // with the median (footnote 2/3 of the paper). 1 = no boost.
  int median_boost = 1;
};

struct BackendInfo {
  std::string name;
  BackendGuarantee guarantee = BackendGuarantee::kForAll;
  std::string description;
};

// All registered backends, in registration order.
std::vector<BackendInfo> RegisteredBackends();

// True iff `name` is a registered backend.
bool IsRegisteredBackend(const std::string& name);

// Comma-separated valid names, for error messages and --help.
std::string RegisteredBackendNames();

// The relative error backend `name` advertises at these options — the
// bound the differential harness asserts. CHECK-fails on unknown names
// (validate with IsRegisteredBackend / BuildBackendSketch first).
double BackendAdvertisedError(const std::string& name,
                              const BackendOptions& options);

// Builds backend `name` over `graph`. kInvalidArgument naming the valid
// backends when `name` is not registered, or when options are out of
// range (epsilon outside (0, 1), beta < 1, median_boost < 1).
StatusOr<std::unique_ptr<DirectedCutSketch>> BuildBackendSketch(
    const std::string& name, const DirectedGraph& graph,
    const BackendOptions& options);

}  // namespace dcs

#endif  // DCS_SKETCH_BACKEND_REGISTRY_H_
