// Sampling-based undirected cut sketches.
//
// Both classes sample edges independently with probability proportional to
// w_e / λ_e (λ_e = Nagamochi–Ibaraki strength) and reweight kept edges by
// 1/p_e, so every cut estimate is unbiased. The oversampling rate sets the
// guarantee:
//
//  * BenczurKargerSparsifier: p_e ∝ ln(n)·w_e/(ε²·λ_e). For-all guarantee
//    (Definition 2.2): with high probability *every* cut is within (1±ε).
//    Expected Õ(n/ε²) edges [BK96].
//  * ForEachCutSketch: p_e ∝ w_e/(ε·λ_e). Expected Õ(n/ε) edges; each fixed
//    cut is estimated with standard deviation O(√ε)·cut (for-each,
//    Definition 2.3 with error √ε up to constants). The optimal Õ(n/ε)
//    for-each sketch of [ACK+16] achieves error ε at this size via a more
//    intricate two-level scheme; this library keeps the simple sampler and
//    reports the measured error/size trade-off in the tightness benches
//    (see DESIGN.md "substitutions").
//
// MedianOfSketches boosts a for-each sketch's per-query success probability
// by taking the median over independently built sketches (footnote 2 of the
// paper).

#ifndef DCS_SKETCH_SAMPLED_SKETCHES_H_
#define DCS_SKETCH_SAMPLED_SKETCHES_H_

#include <memory>
#include <vector>

#include "graph/ugraph.h"
#include "sketch/cut_sketch.h"
#include "util/bitio.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {

// Shared implementation: keeps edge e with probability
// p_e = min(1, factor·w_e/λ_e), reweighted to w_e/p_e.
UndirectedGraph ImportanceSampleByStrength(const UndirectedGraph& graph,
                                           double factor, Rng& rng);

// For-all cut sparsifier [BK96].
class BenczurKargerSparsifier final : public UndirectedCutSketch {
 public:
  // oversample_c scales the sampling rate (theory wants a large constant;
  // c ≈ 2 already gives accurate cuts at these scales).
  BenczurKargerSparsifier(const UndirectedGraph& graph, double epsilon,
                          Rng& rng, double oversample_c = 2.0);

  // Reconstructs a sketch from an already-sampled sparsifier (used by
  // Deserialize and by tests).
  static BenczurKargerSparsifier FromSparsifier(double epsilon,
                                                UndirectedGraph sparsifier);

  // Wire format: an envelope (kForAllSparsifier) whose payload is epsilon
  // (double) + the enveloped sparsifier graph. Deserialize validates the
  // stream (see serialization.h) and never aborts on corrupted input.
  void Serialize(BitWriter& writer) const;
  static StatusOr<BenczurKargerSparsifier> Deserialize(BitReader& reader);

  double EstimateCut(const VertexSet& side) const override;
  int64_t SizeInBits() const override;

  const UndirectedGraph& sparsifier() const { return sparsifier_; }
  double epsilon() const { return epsilon_; }

 private:
  BenczurKargerSparsifier(double epsilon, UndirectedGraph sparsifier);

  double epsilon_;
  UndirectedGraph sparsifier_;
  int64_t size_bits_;
};

// For-each cut sketch (simple Õ(n/ε)-size sampler; see file comment).
class ForEachCutSketch final : public UndirectedCutSketch {
 public:
  ForEachCutSketch(const UndirectedGraph& graph, double epsilon, Rng& rng,
                   double oversample_c = 2.0);

  // Reconstructs a sketch from an already-drawn sample.
  static ForEachCutSketch FromSample(double epsilon, UndirectedGraph sample);

  // Wire format: an envelope (kForEachSketch) whose payload is epsilon
  // (double) + the enveloped sample graph. Deserialize validates the stream
  // (see serialization.h) and never aborts on corrupted input.
  void Serialize(BitWriter& writer) const;
  static StatusOr<ForEachCutSketch> Deserialize(BitReader& reader);

  double EstimateCut(const VertexSet& side) const override;
  int64_t SizeInBits() const override;

  const UndirectedGraph& sample() const { return sample_; }
  double epsilon() const { return epsilon_; }

 private:
  ForEachCutSketch(double epsilon, UndirectedGraph sample);

  double epsilon_;
  UndirectedGraph sample_;
  int64_t size_bits_;
};

// Degree-complement for-each sketch: exact weighted degrees plus a
// strength-based edge sample, with the identity
//   cut(S) = Σ_{v∈S} deg(v) − 2·w(S, S)
// estimated via the sampled internal weight. The ablation counterpart to
// ForEachCutSketch's crossing-edge estimator: singleton cuts are answered
// *exactly* from the degree table, but the estimator's variance scales
// with the internal weight of S instead of the cut value — bad for large
// dense sides (measured in bench_sparsifier).
class DegreeComplementSketch final : public UndirectedCutSketch {
 public:
  DegreeComplementSketch(const UndirectedGraph& graph, double epsilon,
                         Rng& rng, double oversample_c = 2.0);

  double EstimateCut(const VertexSet& side) const override;
  int64_t SizeInBits() const override;

  const UndirectedGraph& sample() const { return sample_; }

 private:
  std::vector<double> degrees_;
  UndirectedGraph sample_;
  int64_t size_bits_;
};

// Median over independently built undirected sketches: boosts per-cut
// success probability from 2/3 to 1 − exp(−Ω(r)).
class MedianOfSketches final : public UndirectedCutSketch {
 public:
  explicit MedianOfSketches(
      std::vector<std::unique_ptr<UndirectedCutSketch>> sketches);

  double EstimateCut(const VertexSet& side) const override;
  int64_t SizeInBits() const override;

  int count() const { return static_cast<int>(sketches_.size()); }

 private:
  std::vector<std::unique_ptr<UndirectedCutSketch>> sketches_;
};

}  // namespace dcs

#endif  // DCS_SKETCH_SAMPLED_SKETCHES_H_
