// Near-minimum cut counting.
//
// Karger's cut-counting theorem — there are at most n^{2α} cuts within α
// times the minimum — is what makes the paper's distributed min-cut recipe
// work: the coordinator can afford to re-evaluate *every* O(1)-approximate
// minimum cut with a for-each sketch. This module counts those cuts
// exhaustively (small n) so the theorem, and the coverage of the
// randomized Karger–Stein enumeration, can be validated directly.

#ifndef DCS_MINCUT_CUT_COUNTING_H_
#define DCS_MINCUT_CUT_COUNTING_H_

#include <cstdint>

#include "graph/ugraph.h"
#include "util/random.h"

namespace dcs {

// Result of exhaustive enumeration over all 2^(n−1) − 1 cut partitions.
struct CutCountResult {
  double min_value = 0;
  int64_t cuts_at_minimum = 0;      // partitions achieving min_value
  int64_t cuts_within_alpha = 0;    // partitions with value <= alpha·min
  // Karger's bound n^{2α} for comparison.
  double karger_bound = 0;
};

// Counts cuts exhaustively. Requires 2 <= n <= 24 and a connected graph
// with a positive minimum cut. Cut partitions are counted once (side
// containing vertex 0).
CutCountResult CountNearMinimumCutsExhaustive(const UndirectedGraph& graph,
                                              double alpha);

// Fraction of the true within-α cut partitions that `repetitions` rounds
// of randomized Karger–Stein enumeration discover (1.0 = all of them).
double KargerEnumerationCoverage(const UndirectedGraph& graph, double alpha,
                                 Rng& rng, int repetitions);

}  // namespace dcs

#endif  // DCS_MINCUT_CUT_COUNTING_H_
