#include "mincut/cut_counting.h"

#include <cmath>
#include <set>
#include <string>

#include "graph/connectivity.h"
#include "mincut/karger.h"

namespace dcs {
namespace {

// Canonical key of a partition: membership string of the side with vertex 0.
std::string PartitionKey(const VertexSet& side) {
  std::string key(side.size(), '0');
  const bool flip = side.empty() ? false : side[0] == 0;
  for (size_t i = 0; i < side.size(); ++i) {
    key[i] = ((side[i] != 0) != flip) ? '1' : '0';
  }
  return key;
}

}  // namespace

CutCountResult CountNearMinimumCutsExhaustive(const UndirectedGraph& graph,
                                              double alpha) {
  const int n = graph.num_vertices();
  DCS_CHECK_GE(n, 2);
  DCS_CHECK_LE(n, 24);
  DCS_CHECK_GE(alpha, 1.0);
  DCS_CHECK(IsConnected(graph));
  CutCountResult result;
  result.min_value = -1;
  // Enumerate partitions with vertex 0 fixed on one side.
  const uint64_t limit = 1ULL << (n - 1);
  VertexSet side(static_cast<size_t>(n));
  std::vector<double> values;
  values.reserve(static_cast<size_t>(limit));
  for (uint64_t mask = 0; mask + 1 < limit; ++mask) {
    side[0] = 1;
    for (int v = 1; v < n; ++v) {
      side[static_cast<size_t>(v)] = static_cast<uint8_t>((mask >> (v - 1)) & 1);
    }
    const double value = graph.CutWeight(side);
    values.push_back(value);
    if (result.min_value < 0 || value < result.min_value) {
      result.min_value = value;
    }
  }
  DCS_CHECK_GT(result.min_value, 0);
  const double tolerance = 1e-9 * (1 + result.min_value);
  for (double value : values) {
    if (value <= result.min_value + tolerance) ++result.cuts_at_minimum;
    if (value <= alpha * result.min_value + tolerance) {
      ++result.cuts_within_alpha;
    }
  }
  result.karger_bound = std::pow(static_cast<double>(n), 2 * alpha);
  return result;
}

double KargerEnumerationCoverage(const UndirectedGraph& graph, double alpha,
                                 Rng& rng, int repetitions) {
  const CutCountResult truth =
      CountNearMinimumCutsExhaustive(graph, alpha);
  const std::vector<GlobalMinCut> found =
      EnumerateNearMinimumCuts(graph, alpha, rng, repetitions);
  const double tolerance = 1e-9 * (1 + truth.min_value);
  std::set<std::string> discovered;
  for (const GlobalMinCut& cut : found) {
    if (cut.value <= alpha * truth.min_value + tolerance) {
      discovered.insert(PartitionKey(cut.side));
    }
  }
  return static_cast<double>(discovered.size()) /
         static_cast<double>(truth.cuts_within_alpha);
}

}  // namespace dcs
