// Nagamochi–Ibaraki forest decompositions.
//
// Two uses in this library:
//  * Sparse certificates: the union of the first k maximal spanning forests
//    preserves all cuts up to value k (unweighted), a classic
//    k-connectivity certificate.
//  * Edge strengths: the weighted peeling decomposition assigns each edge a
//    connectivity estimate λ_e (the cumulative peel level at which the edge
//    is exhausted); λ_e never exceeds the endpoint connectivity, and
//    sampling edges with probability ∝ w_e/λ_e yields cut sparsifiers
//    (Benczúr–Karger / Fung et al. style) — the substrate under every
//    for-all sketch in src/sketch.

#ifndef DCS_MINCUT_NAGAMOCHI_IBARAKI_H_
#define DCS_MINCUT_NAGAMOCHI_IBARAKI_H_

#include <vector>

#include "graph/ugraph.h"

namespace dcs {

// For each edge (parallel to graph.edges()), a connectivity estimate
// λ_e > 0: the cumulative peel level of the weighted forest decomposition
// at the moment the edge's weight is exhausted. Satisfies w_e <= λ_e and
// λ_e <= (1 + granularity) · (u,v)-max-flow for e = {u, v}. Zero-weight
// edges get λ_e = 0.
//
// `granularity` trades resolution for speed: each round peels
// δ = min(max(min remaining in forest, granularity·level), max remaining),
// and an edge exhausted mid-round is credited level + remaining. With
// granularity 0 the decomposition is exact (δ = min remaining, one
// exhaustion per round) but may take Θ(m) rounds on graphs with distinct
// real weights; the default 1/8 keeps the round count logarithmic at the
// cost of strengths up to 12.5% above the exact decomposition's levels.
std::vector<double> NagamochiIbarakiStrengths(const UndirectedGraph& graph,
                                              double granularity = 0.125);

// The union of the first k maximal spanning forests (unweighted view: each
// edge used once regardless of weight, keeping its weight in the output).
// The result has at most k·(n−1) edges and preserves connectivity up to k:
// any cut of size < k (by edge count) has the same crossing edge *count*.
UndirectedGraph SparseCertificate(const UndirectedGraph& graph, int k);

}  // namespace dcs

#endif  // DCS_MINCUT_NAGAMOCHI_IBARAKI_H_
