#include "mincut/karger.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>

#include "graph/connectivity.h"

namespace dcs {
namespace {

// A contracted multigraph: supervertex labels plus coalesced edges.
struct ContractedGraph {
  // For each supervertex, the original vertices inside it.
  std::vector<std::vector<VertexId>> groups;
  // Edges between supervertex indices with coalesced weights.
  std::vector<Edge> edges;
  int original_n = 0;
};

ContractedGraph FromGraph(const UndirectedGraph& graph) {
  ContractedGraph cg;
  cg.original_n = graph.num_vertices();
  cg.groups.resize(static_cast<size_t>(graph.num_vertices()));
  for (int v = 0; v < graph.num_vertices(); ++v) {
    cg.groups[static_cast<size_t>(v)] = {v};
  }
  cg.edges = graph.edges();
  return cg;
}

// Contracts random weighted edges until `target` supervertices remain.
void ContractTo(ContractedGraph& cg, int target, Rng& rng) {
  while (static_cast<int>(cg.groups.size()) > target) {
    double total = 0;
    for (const Edge& e : cg.edges) total += e.weight;
    DCS_CHECK_GT(total, 0);
    // Pick an edge with probability proportional to weight.
    double draw = rng.UniformDouble() * total;
    size_t pick = 0;
    for (size_t i = 0; i < cg.edges.size(); ++i) {
      draw -= cg.edges[i].weight;
      if (draw <= 0) {
        pick = i;
        break;
      }
    }
    // Merge the higher-indexed supervertex into the lower-indexed one, then
    // fill the freed slot with the last supervertex. keep < drop <= last, so
    // the relabeling below can never produce an out-of-range index.
    const int keep = std::min(cg.edges[pick].src, cg.edges[pick].dst);
    const int drop = std::max(cg.edges[pick].src, cg.edges[pick].dst);
    auto& group_keep = cg.groups[static_cast<size_t>(keep)];
    auto& group_drop = cg.groups[static_cast<size_t>(drop)];
    group_keep.insert(group_keep.end(), group_drop.begin(),
                      group_drop.end());
    const int last = static_cast<int>(cg.groups.size()) - 1;
    if (drop != last) {
      cg.groups[static_cast<size_t>(drop)] =
          std::move(cg.groups[static_cast<size_t>(last)]);
    }
    cg.groups.pop_back();
    // Relabel edges: drop -> keep, last -> drop; drop self-loops.
    std::vector<Edge> kept;
    kept.reserve(cg.edges.size());
    for (Edge e : cg.edges) {
      auto relabel = [&](int v) {
        if (v == drop) return keep;
        if (v == last) return drop;
        return v;
      };
      e.src = relabel(e.src);
      e.dst = relabel(e.dst);
      if (e.src != e.dst) kept.push_back(e);
    }
    cg.edges = std::move(kept);
  }
}

GlobalMinCut CutFromTwoSupervertices(const ContractedGraph& cg) {
  DCS_CHECK_EQ(cg.groups.size(), 2u);
  GlobalMinCut cut;
  for (const Edge& e : cg.edges) cut.value += e.weight;
  cut.side = MakeVertexSet(cg.original_n, cg.groups[0]);
  return cut;
}

// Canonical key: the side containing vertex 0, as a 0/1 string.
std::string CanonicalKey(const VertexSet& side) {
  std::string key(side.size(), '0');
  const bool flip = side.empty() ? false : side[0] == 0;
  for (size_t i = 0; i < side.size(); ++i) {
    const bool in_side = side[i] != 0;
    key[i] = (in_side != flip) ? '1' : '0';
  }
  return key;
}

// Recursive Karger–Stein on a contracted graph; appends every leaf cut.
void KargerSteinRecurse(ContractedGraph cg, Rng& rng,
                        std::vector<GlobalMinCut>& leaves) {
  const int n = static_cast<int>(cg.groups.size());
  if (n <= 6) {
    ContractTo(cg, 2, rng);
    leaves.push_back(CutFromTwoSupervertices(cg));
    return;
  }
  const int target =
      std::max(2, static_cast<int>(std::ceil(1.0 + n / std::sqrt(2.0))));
  for (int branch = 0; branch < 2; ++branch) {
    ContractedGraph copy = cg;
    ContractTo(copy, target, rng);
    KargerSteinRecurse(std::move(copy), rng, leaves);
  }
}

}  // namespace

GlobalMinCut KargerContractOnce(const UndirectedGraph& graph, Rng& rng) {
  DCS_CHECK_GE(graph.num_vertices(), 2);
  DCS_CHECK(IsConnected(graph));
  ContractedGraph cg = FromGraph(graph);
  ContractTo(cg, 2, rng);
  return CutFromTwoSupervertices(cg);
}

GlobalMinCut KargerSteinMinCut(const UndirectedGraph& graph, Rng& rng,
                               int repetitions) {
  DCS_CHECK_GE(graph.num_vertices(), 2);
  DCS_CHECK_GE(repetitions, 1);
  DCS_CHECK(IsConnected(graph));
  GlobalMinCut best;
  best.value = std::numeric_limits<double>::infinity();
  std::vector<GlobalMinCut> leaves;
  for (int rep = 0; rep < repetitions; ++rep) {
    leaves.clear();
    KargerSteinRecurse(FromGraph(graph), rng, leaves);
    for (GlobalMinCut& cut : leaves) {
      if (cut.value < best.value) best = std::move(cut);
    }
  }
  return best;
}

std::vector<GlobalMinCut> EnumerateNearMinimumCuts(
    const UndirectedGraph& graph, double alpha, Rng& rng, int repetitions) {
  DCS_CHECK_GE(alpha, 1.0);
  DCS_CHECK_GE(repetitions, 1);
  DCS_CHECK(IsConnected(graph));
  std::vector<GlobalMinCut> leaves;
  for (int rep = 0; rep < repetitions; ++rep) {
    KargerSteinRecurse(FromGraph(graph), rng, leaves);
  }
  double min_value = std::numeric_limits<double>::infinity();
  for (const GlobalMinCut& cut : leaves) {
    min_value = std::min(min_value, cut.value);
  }
  std::map<std::string, GlobalMinCut> unique;
  for (GlobalMinCut& cut : leaves) {
    if (cut.value > alpha * min_value) continue;
    std::string key = CanonicalKey(cut.side);
    auto it = unique.find(key);
    if (it == unique.end()) unique.emplace(std::move(key), std::move(cut));
  }
  std::vector<GlobalMinCut> result;
  result.reserve(unique.size());
  for (auto& [key, cut] : unique) result.push_back(std::move(cut));
  std::sort(result.begin(), result.end(),
            [](const GlobalMinCut& a, const GlobalMinCut& b) {
              return a.value < b.value;
            });
  return result;
}

}  // namespace dcs
