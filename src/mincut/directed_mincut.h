// Exact directed global minimum cut: min over all proper S of w(S, V∖S),
// computed with 2(n−1) max-flow calls (fix r = 0; for every t, the best cut
// either separates r from t or t from r).

#ifndef DCS_MINCUT_DIRECTED_MINCUT_H_
#define DCS_MINCUT_DIRECTED_MINCUT_H_

#include "graph/digraph.h"
#include "mincut/stoer_wagner.h"

namespace dcs {

// Exact directed global min cut. Requires >= 2 vertices. For a graph that
// is not strongly connected the value may be 0.
GlobalMinCut DirectedGlobalMinCut(const DirectedGraph& graph);

}  // namespace dcs

#endif  // DCS_MINCUT_DIRECTED_MINCUT_H_
