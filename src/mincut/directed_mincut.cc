#include "mincut/directed_mincut.h"

#include <limits>

#include "mincut/dinic.h"

namespace dcs {

GlobalMinCut DirectedGlobalMinCut(const DirectedGraph& graph) {
  const int n = graph.num_vertices();
  DCS_CHECK_GE(n, 2);
  DinicSolver solver(n);
  for (const Edge& e : graph.edges()) {
    if (e.weight > 0) solver.AddArc(e.src, e.dst, e.weight);
  }
  GlobalMinCut best;
  best.value = std::numeric_limits<double>::infinity();
  for (int t = 1; t < n; ++t) {
    // Any proper cut (S, V∖S) either has 0 ∈ S, t ∉ S (an s-t cut) or
    // 0 ∉ S, t ∈ S (a t-s cut); sweeping t covers all cuts.
    MaxFlowResult forward = solver.Solve(0, t);
    if (forward.flow_value < best.value) {
      best.value = forward.flow_value;
      best.side = std::move(forward.source_side);
    }
    MaxFlowResult backward = solver.Solve(t, 0);
    if (backward.flow_value < best.value) {
      best.value = backward.flow_value;
      best.side = std::move(backward.source_side);
    }
  }
  return best;
}

}  // namespace dcs
