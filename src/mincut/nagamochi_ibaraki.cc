#include "mincut/nagamochi_ibaraki.h"

#include <algorithm>

#include "util/union_find.h"

namespace dcs {

std::vector<double> NagamochiIbarakiStrengths(const UndirectedGraph& graph,
                                              double granularity) {
  DCS_CHECK_GE(granularity, 0);
  const int n = graph.num_vertices();
  const size_t m = graph.edges().size();
  std::vector<double> remaining(m);
  std::vector<double> strength(m, 0);
  size_t alive_count = 0;
  for (size_t i = 0; i < m; ++i) {
    remaining[i] = graph.edges()[i].weight;
    if (remaining[i] > 0) ++alive_count;
  }
  if (n < 2) return strength;

  double level = 0;
  UnionFind uf(n);
  std::vector<size_t> forest;
  forest.reserve(static_cast<size_t>(n));
  // Each round peels δ = min remaining weight in a maximal spanning forest;
  // at least one edge is exhausted per round, so at most m rounds run.
  while (alive_count > 0) {
    uf.Reset();
    forest.clear();
    double min_remaining = 0;
    double max_remaining = 0;
    for (size_t i = 0; i < m; ++i) {
      if (remaining[i] <= 0) continue;
      const Edge& e = graph.edges()[i];
      if (uf.Union(e.src, e.dst)) {
        forest.push_back(i);
        if (min_remaining == 0 || remaining[i] < min_remaining) {
          min_remaining = remaining[i];
        }
        if (remaining[i] > max_remaining) max_remaining = remaining[i];
      }
    }
    DCS_CHECK(!forest.empty());
    // Geometric peeling: subtract up to granularity·level per round so the
    // number of rounds stays logarithmic instead of Θ(m) on graphs with
    // distinct real weights. The increment is capped by the deepest edge in
    // the forest (the forest cannot be peeled beyond its capacity), and an
    // edge exhausted mid-round is credited level_before + remaining — a
    // safe *underestimate* of its exact peel level, so strengths never
    // exceed the exact decomposition's values.
    const double delta = std::min(
        std::max(min_remaining, granularity * level), max_remaining);
    for (size_t i : forest) {
      if (remaining[i] <= delta + 1e-12) {
        strength[i] = level + remaining[i];
        remaining[i] = 0;
        --alive_count;
      } else {
        remaining[i] -= delta;
      }
    }
    level += delta;
  }
  return strength;
}

UndirectedGraph SparseCertificate(const UndirectedGraph& graph, int k) {
  DCS_CHECK_GE(k, 1);
  const int n = graph.num_vertices();
  UndirectedGraph certificate(n);
  if (n < 2) return certificate;
  const size_t m = graph.edges().size();
  std::vector<uint8_t> used(m, 0);
  UnionFind uf(n);
  for (int round = 0; round < k; ++round) {
    uf.Reset();
    bool any = false;
    for (size_t i = 0; i < m; ++i) {
      if (used[i]) continue;
      const Edge& e = graph.edges()[i];
      if (uf.Union(e.src, e.dst)) {
        used[i] = 1;
        certificate.AddEdge(e.src, e.dst, e.weight);
        any = true;
      }
    }
    if (!any) break;
  }
  return certificate;
}

}  // namespace dcs
