#include "mincut/stoer_wagner.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace dcs {

GlobalMinCut StoerWagnerMinCut(const UndirectedGraph& graph) {
  const int n = graph.num_vertices();
  DCS_CHECK_GE(n, 2);
  // Dense adjacency matrix of coalesced weights.
  std::vector<std::vector<double>> weight(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n), 0));
  for (const Edge& e : graph.edges()) {
    weight[static_cast<size_t>(e.src)][static_cast<size_t>(e.dst)] += e.weight;
    weight[static_cast<size_t>(e.dst)][static_cast<size_t>(e.src)] += e.weight;
  }
  // merged_into[v] lists the original vertices currently contracted into v.
  std::vector<std::vector<VertexId>> merged(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) merged[static_cast<size_t>(v)] = {v};
  std::vector<VertexId> active(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) active[static_cast<size_t>(v)] = v;

  GlobalMinCut best;
  best.value = std::numeric_limits<double>::infinity();

  while (active.size() > 1) {
    // Maximum-adjacency order over the active vertices.
    std::vector<double> attachment(static_cast<size_t>(n), 0);
    std::vector<uint8_t> added(static_cast<size_t>(n), 0);
    std::vector<VertexId> order;
    order.reserve(active.size());
    for (size_t step = 0; step < active.size(); ++step) {
      VertexId pick = -1;
      double pick_weight = -1;
      for (VertexId v : active) {
        if (added[static_cast<size_t>(v)]) continue;
        if (attachment[static_cast<size_t>(v)] > pick_weight) {
          pick_weight = attachment[static_cast<size_t>(v)];
          pick = v;
        }
      }
      added[static_cast<size_t>(pick)] = 1;
      order.push_back(pick);
      for (VertexId v : active) {
        if (!added[static_cast<size_t>(v)]) {
          attachment[static_cast<size_t>(v)] +=
              weight[static_cast<size_t>(pick)][static_cast<size_t>(v)];
        }
      }
    }
    const VertexId s = order[order.size() - 2];
    const VertexId t = order.back();
    // Cut-of-the-phase: {t's merged set} vs the rest.
    const double phase_cut = attachment[static_cast<size_t>(t)];
    if (phase_cut < best.value) {
      best.value = phase_cut;
      best.side = MakeVertexSet(n, merged[static_cast<size_t>(t)]);
    }
    // Contract t into s.
    for (VertexId v : active) {
      if (v == s || v == t) continue;
      weight[static_cast<size_t>(s)][static_cast<size_t>(v)] +=
          weight[static_cast<size_t>(t)][static_cast<size_t>(v)];
      weight[static_cast<size_t>(v)][static_cast<size_t>(s)] =
          weight[static_cast<size_t>(s)][static_cast<size_t>(v)];
    }
    merged[static_cast<size_t>(s)].insert(
        merged[static_cast<size_t>(s)].end(),
        merged[static_cast<size_t>(t)].begin(),
        merged[static_cast<size_t>(t)].end());
    active.erase(std::find(active.begin(), active.end(), t));
  }
  return best;
}

}  // namespace dcs
