#include "mincut/gomory_hu.h"

#include <algorithm>
#include <limits>

#include "mincut/dinic.h"

namespace dcs {

GomoryHuTree::GomoryHuTree(const UndirectedGraph& graph) {
  const int n = graph.num_vertices();
  DCS_CHECK_GE(n, 2);
  parent_.assign(static_cast<size_t>(n), 0);
  cut_value_.assign(static_cast<size_t>(n), 0);

  DinicSolver solver(n);
  for (const Edge& e : graph.edges()) {
    if (e.weight > 0) {
      solver.AddArc(e.src, e.dst, e.weight);
      solver.AddArc(e.dst, e.src, e.weight);
    }
  }
  // Gusfield: process vertices in order; split siblings onto the new node
  // when they fall on its side of the cut.
  for (VertexId i = 1; i < n; ++i) {
    const MaxFlowResult result = solver.Solve(i, parent_[static_cast<size_t>(i)]);
    cut_value_[static_cast<size_t>(i)] = result.flow_value;
    for (VertexId j = i + 1; j < n; ++j) {
      if (result.source_side[static_cast<size_t>(j)] &&
          parent_[static_cast<size_t>(j)] == parent_[static_cast<size_t>(i)]) {
        parent_[static_cast<size_t>(j)] = i;
      }
    }
  }
  // Depths for path queries.
  depth_.assign(static_cast<size_t>(n), -1);
  depth_[0] = 0;
  // Vertices' parents always precede them in Gusfield's construction only
  // loosely; compute depths by walking up with memoization.
  for (VertexId v = 0; v < n; ++v) {
    // Walk up collecting the chain until a known depth.
    std::vector<VertexId> chain;
    VertexId cursor = v;
    while (depth_[static_cast<size_t>(cursor)] == -1) {
      chain.push_back(cursor);
      cursor = parent_[static_cast<size_t>(cursor)];
    }
    int depth = depth_[static_cast<size_t>(cursor)];
    for (size_t k = chain.size(); k-- > 0;) {
      depth_[static_cast<size_t>(chain[k])] = ++depth;
    }
  }
}

double GomoryHuTree::MinCutValue(VertexId u, VertexId v) const {
  const int n = num_vertices();
  DCS_CHECK(u >= 0 && u < n);
  DCS_CHECK(v >= 0 && v < n);
  DCS_CHECK_NE(u, v);
  // Minimum edge weight on the tree path: lift the deeper endpoint.
  double minimum = std::numeric_limits<double>::infinity();
  while (u != v) {
    if (depth_[static_cast<size_t>(u)] >= depth_[static_cast<size_t>(v)]) {
      minimum = std::min(minimum, cut_value_[static_cast<size_t>(u)]);
      u = parent_[static_cast<size_t>(u)];
    } else {
      minimum = std::min(minimum, cut_value_[static_cast<size_t>(v)]);
      v = parent_[static_cast<size_t>(v)];
    }
  }
  return minimum;
}

double GomoryHuTree::GlobalMinCutValue() const {
  double minimum = std::numeric_limits<double>::infinity();
  for (size_t v = 1; v < cut_value_.size(); ++v) {
    minimum = std::min(minimum, cut_value_[v]);
  }
  return minimum;
}

}  // namespace dcs
