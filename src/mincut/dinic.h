// Dinic's max-flow / s-t min-cut.
//
// Used for: directed global min cut (n−1 flow calls), verifying the
// edge-disjoint-path counts of Lemma 5.5's connectivity argument
// (Figures 3–6), and exact s-t cut baselines.

#ifndef DCS_MINCUT_DINIC_H_
#define DCS_MINCUT_DINIC_H_

#include <vector>

#include "graph/digraph.h"
#include "graph/ugraph.h"

namespace dcs {

// Result of a max-flow computation.
struct MaxFlowResult {
  // Maximum s-t flow value == minimum s-t cut capacity.
  double flow_value = 0;
  // The source side of a minimum cut (vertices reachable from s in the
  // residual network).
  VertexSet source_side;
};

// Max-flow solver over a fixed arc set. Capacities are doubles; residual
// amounts below kFlowEpsilon are treated as zero.
class DinicSolver {
 public:
  static constexpr double kFlowEpsilon = 1e-9;

  // Builds the residual network for `num_vertices` vertices.
  explicit DinicSolver(int num_vertices);

  // Adds a directed arc with the given capacity (reverse residual arc has
  // capacity 0). Requires src != dst.
  void AddArc(VertexId src, VertexId dst, double capacity);

  // Computes max flow from s to t. Resets any previous flow. s != t.
  MaxFlowResult Solve(VertexId s, VertexId t);

 private:
  struct Arc {
    VertexId to;
    double capacity;   // remaining residual capacity
    double original;   // capacity as added (for reset)
    size_t reverse;    // index of the reverse arc in arcs_[to]
  };

  bool BuildLevels(VertexId s, VertexId t);
  double SendFlow(VertexId v, VertexId t, double limit);

  int num_vertices_;
  std::vector<std::vector<Arc>> arcs_;
  std::vector<int> level_;
  std::vector<size_t> next_arc_;
};

// Max flow on a directed graph (capacities = edge weights).
MaxFlowResult MaxFlow(const DirectedGraph& graph, VertexId s, VertexId t);

// Max flow on an undirected graph (each edge usable in either direction up
// to its weight).
MaxFlowResult MaxFlowUndirected(const UndirectedGraph& graph, VertexId s,
                                VertexId t);

// Number of edge-disjoint u-v paths in an undirected multigraph (unit
// capacities per parallel edge; weights ignored, multiplicity respected).
int CountEdgeDisjointPaths(const UndirectedGraph& graph, VertexId u,
                           VertexId v);

}  // namespace dcs

#endif  // DCS_MINCUT_DINIC_H_
