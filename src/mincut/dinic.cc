#include "mincut/dinic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace dcs {

DinicSolver::DinicSolver(int num_vertices)
    : num_vertices_(num_vertices),
      arcs_(static_cast<size_t>(num_vertices)),
      level_(static_cast<size_t>(num_vertices)),
      next_arc_(static_cast<size_t>(num_vertices)) {
  DCS_CHECK_GE(num_vertices, 2);
}

void DinicSolver::AddArc(VertexId src, VertexId dst, double capacity) {
  DCS_CHECK(src >= 0 && src < num_vertices_);
  DCS_CHECK(dst >= 0 && dst < num_vertices_);
  DCS_CHECK_NE(src, dst);
  DCS_CHECK_GE(capacity, 0);
  auto& forward_list = arcs_[static_cast<size_t>(src)];
  auto& backward_list = arcs_[static_cast<size_t>(dst)];
  forward_list.push_back(
      Arc{dst, capacity, capacity, backward_list.size()});
  backward_list.push_back(Arc{src, 0, 0, forward_list.size() - 1});
}

bool DinicSolver::BuildLevels(VertexId s, VertexId t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<VertexId> frontier;
  frontier.push(s);
  level_[static_cast<size_t>(s)] = 0;
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    for (const Arc& arc : arcs_[static_cast<size_t>(v)]) {
      if (arc.capacity > kFlowEpsilon &&
          level_[static_cast<size_t>(arc.to)] == -1) {
        level_[static_cast<size_t>(arc.to)] =
            level_[static_cast<size_t>(v)] + 1;
        frontier.push(arc.to);
      }
    }
  }
  return level_[static_cast<size_t>(t)] != -1;
}

double DinicSolver::SendFlow(VertexId v, VertexId t, double limit) {
  if (v == t || limit <= kFlowEpsilon) return limit;
  for (size_t& i = next_arc_[static_cast<size_t>(v)];
       i < arcs_[static_cast<size_t>(v)].size(); ++i) {
    Arc& arc = arcs_[static_cast<size_t>(v)][i];
    if (arc.capacity <= kFlowEpsilon) continue;
    if (level_[static_cast<size_t>(arc.to)] !=
        level_[static_cast<size_t>(v)] + 1) {
      continue;
    }
    const double pushed =
        SendFlow(arc.to, t, std::min(limit, arc.capacity));
    if (pushed > kFlowEpsilon) {
      arc.capacity -= pushed;
      arcs_[static_cast<size_t>(arc.to)][arc.reverse].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

MaxFlowResult DinicSolver::Solve(VertexId s, VertexId t) {
  DCS_CHECK(s >= 0 && s < num_vertices_);
  DCS_CHECK(t >= 0 && t < num_vertices_);
  DCS_CHECK_NE(s, t);
  // Reset to original capacities so the solver is reusable.
  for (auto& arc_list : arcs_) {
    for (Arc& arc : arc_list) arc.capacity = arc.original;
  }
  MaxFlowResult result;
  while (BuildLevels(s, t)) {
    std::fill(next_arc_.begin(), next_arc_.end(), 0);
    while (true) {
      const double pushed =
          SendFlow(s, t, std::numeric_limits<double>::infinity());
      if (pushed <= kFlowEpsilon) break;
      result.flow_value += pushed;
    }
  }
  // Source side of a min cut: vertices reachable in the residual network.
  result.source_side.assign(static_cast<size_t>(num_vertices_), 0);
  std::vector<VertexId> stack = {s};
  result.source_side[static_cast<size_t>(s)] = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const Arc& arc : arcs_[static_cast<size_t>(v)]) {
      if (arc.capacity > kFlowEpsilon &&
          !result.source_side[static_cast<size_t>(arc.to)]) {
        result.source_side[static_cast<size_t>(arc.to)] = 1;
        stack.push_back(arc.to);
      }
    }
  }
  return result;
}

MaxFlowResult MaxFlow(const DirectedGraph& graph, VertexId s, VertexId t) {
  DinicSolver solver(graph.num_vertices());
  for (const Edge& e : graph.edges()) {
    if (e.weight > 0) solver.AddArc(e.src, e.dst, e.weight);
  }
  return solver.Solve(s, t);
}

MaxFlowResult MaxFlowUndirected(const UndirectedGraph& graph, VertexId s,
                                VertexId t) {
  DinicSolver solver(graph.num_vertices());
  for (const Edge& e : graph.edges()) {
    if (e.weight > 0) {
      solver.AddArc(e.src, e.dst, e.weight);
      solver.AddArc(e.dst, e.src, e.weight);
    }
  }
  return solver.Solve(s, t);
}

int CountEdgeDisjointPaths(const UndirectedGraph& graph, VertexId u,
                           VertexId v) {
  DinicSolver solver(graph.num_vertices());
  for (const Edge& e : graph.edges()) {
    solver.AddArc(e.src, e.dst, 1.0);
    solver.AddArc(e.dst, e.src, 1.0);
  }
  const MaxFlowResult result = solver.Solve(u, v);
  return static_cast<int>(std::llround(result.flow_value));
}

}  // namespace dcs
