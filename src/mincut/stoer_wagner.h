// Stoer–Wagner global minimum cut for weighted undirected graphs.
//
// Deterministic O(n³) (adjacency-matrix variant); the exact ground truth
// against which sketches, sparsifiers, and query estimators are judged.

#ifndef DCS_MINCUT_STOER_WAGNER_H_
#define DCS_MINCUT_STOER_WAGNER_H_

#include "graph/ugraph.h"

namespace dcs {

// A global minimum cut: its value and one side.
struct GlobalMinCut {
  double value = 0;
  VertexSet side;
};

// Computes the global minimum cut. Requires a graph with >= 2 vertices.
// If the graph is disconnected, returns value 0 with one component as the
// side.
GlobalMinCut StoerWagnerMinCut(const UndirectedGraph& graph);

}  // namespace dcs

#endif  // DCS_MINCUT_STOER_WAGNER_H_
