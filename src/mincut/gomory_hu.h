// Gomory–Hu trees (Gusfield's variant): all-pairs minimum cuts from n−1
// max-flow computations.
//
// The tree has one edge per non-root vertex; the minimum u-v cut value of
// the original graph equals the minimum edge weight on the tree path
// between u and v, and the corresponding side is recoverable from the
// tree. Used as a substrate for cut-structure analysis (e.g. validating
// edge strengths and sketch error against every pairwise cut at once).

#ifndef DCS_MINCUT_GOMORY_HU_H_
#define DCS_MINCUT_GOMORY_HU_H_

#include <vector>

#include "graph/ugraph.h"

namespace dcs {

class GomoryHuTree {
 public:
  // Builds the tree with n−1 max-flow calls (Gusfield's algorithm; no
  // contractions needed). Requires >= 2 vertices. Disconnected graphs are
  // fine: tree edges between components get weight 0.
  explicit GomoryHuTree(const UndirectedGraph& graph);

  int num_vertices() const { return static_cast<int>(parent_.size()); }

  // Minimum u-v cut value (== max u-v flow). Requires u != v.
  double MinCutValue(VertexId u, VertexId v) const;

  // The global minimum cut value: the lightest tree edge.
  double GlobalMinCutValue() const;

  // Tree structure: parent of v (vertex 0 is the root, parent 0) and the
  // min-cut value between v and parent[v].
  VertexId parent(VertexId v) const {
    return parent_[static_cast<size_t>(v)];
  }
  double parent_cut_value(VertexId v) const {
    return cut_value_[static_cast<size_t>(v)];
  }

 private:
  std::vector<VertexId> parent_;
  std::vector<double> cut_value_;
  std::vector<int> depth_;
};

}  // namespace dcs

#endif  // DCS_MINCUT_GOMORY_HU_H_
