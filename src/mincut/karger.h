// Randomized contraction algorithms: Karger's basic contraction,
// Karger–Stein recursive contraction, and enumeration of all near-minimum
// cuts.
//
// The distributed min-cut pipeline (the application motivating the paper's
// lower bounds) needs the set of all O(1)-approximate minimum cuts of a
// constant-accuracy sparsifier: Karger's theorem bounds their number by
// n^O(α), and repeated randomized contraction finds them all with high
// probability. Each contraction leaf yields one candidate cut; we collect,
// deduplicate, and filter by value.

#ifndef DCS_MINCUT_KARGER_H_
#define DCS_MINCUT_KARGER_H_

#include <vector>

#include "graph/ugraph.h"
#include "mincut/stoer_wagner.h"
#include "util/random.h"

namespace dcs {

// One run of Karger's contraction to two supervertices. Returns the cut.
// Requires a connected graph with >= 2 vertices and positive total weight.
GlobalMinCut KargerContractOnce(const UndirectedGraph& graph, Rng& rng);

// Karger–Stein recursive contraction, `repetitions` independent runs.
// Returns the best cut found (correct whp for repetitions = Ω(log² n)).
GlobalMinCut KargerSteinMinCut(const UndirectedGraph& graph, Rng& rng,
                               int repetitions);

// Collects candidate cuts from `repetitions` Karger–Stein runs, keeping
// every deduplicated cut whose value is at most `alpha` times the smallest
// value seen (alpha >= 1). Sides are canonicalized to contain vertex 0.
// Output is sorted by value ascending.
std::vector<GlobalMinCut> EnumerateNearMinimumCuts(
    const UndirectedGraph& graph, double alpha, Rng& rng, int repetitions);

}  // namespace dcs

#endif  // DCS_MINCUT_KARGER_H_
