#include "distributed/distributed_mincut.h"

#include <limits>
#include <utility>

#include "graph/connectivity.h"
#include "mincut/karger.h"
#include "sketch/serialization.h"

namespace dcs {

std::vector<UndirectedGraph> PartitionEdges(const UndirectedGraph& graph,
                                            int num_servers, Rng& rng) {
  DCS_CHECK_GE(num_servers, 1);
  std::vector<UndirectedGraph> parts(
      static_cast<size_t>(num_servers), UndirectedGraph(graph.num_vertices()));
  for (const Edge& e : graph.edges()) {
    const size_t server =
        static_cast<size_t>(rng.UniformInt(static_cast<uint64_t>(num_servers)));
    parts[server].AddEdge(e.src, e.dst, e.weight);
  }
  return parts;
}

DistributedMinCutPipeline::DistributedMinCutPipeline(
    std::vector<UndirectedGraph> server_graphs,
    const DistributedMinCutOptions& options, Rng& rng)
    : server_graphs_(std::move(server_graphs)), options_(options) {
  DCS_CHECK(!server_graphs_.empty());
  DCS_CHECK_GE(options_.median_boost, 1);
  for (const UndirectedGraph& server_graph : server_graphs_) {
    forall_sketches_.push_back(std::make_unique<BenczurKargerSparsifier>(
        server_graph, options_.coarse_epsilon, rng));
    std::vector<std::unique_ptr<UndirectedCutSketch>> copies;
    for (int b = 0; b < options_.median_boost; ++b) {
      copies.push_back(std::make_unique<ForEachCutSketch>(
          server_graph, options_.epsilon, rng));
    }
    foreach_sketches_.push_back(
        std::make_unique<MedianOfSketches>(std::move(copies)));
  }
}

DistributedMinCutPipeline::Result DistributedMinCutPipeline::Run(
    Rng& rng) const {
  Result result;
  for (const auto& sketch : forall_sketches_) {
    result.forall_bits += sketch->SizeInBits();
  }
  for (const auto& sketch : foreach_sketches_) {
    result.foreach_bits += sketch->SizeInBits();
  }
  // Coordinator: merge the for-all sparsifiers into one coarse graph.
  const int n = server_graphs_.front().num_vertices();
  UndirectedGraph coarse(n);
  for (const auto& sketch : forall_sketches_) {
    coarse.MergeFrom(sketch->sparsifier());
  }
  DCS_CHECK(IsConnected(coarse));
  // Enumerate every candidate cut within candidate_alpha of the coarse
  // minimum; the true minimum cut is among them as long as the coarse
  // sparsifier's error is below the alpha margin.
  const std::vector<GlobalMinCut> candidates = EnumerateNearMinimumCuts(
      coarse, options_.candidate_alpha, rng, options_.karger_repetitions);
  DCS_CHECK(!candidates.empty());
  // Re-evaluate each candidate with the accurate for-each sketches (cut
  // values add across edge-disjoint servers).
  result.estimate = std::numeric_limits<double>::infinity();
  for (const GlobalMinCut& candidate : candidates) {
    double accurate = 0;
    for (const auto& sketch : foreach_sketches_) {
      accurate += sketch->EstimateCut(candidate.side);
    }
    ++result.candidates_considered;
    if (accurate < result.estimate) {
      result.estimate = accurate;
      result.best_side = candidate.side;
    }
  }
  return result;
}

int64_t DistributedMinCutPipeline::NaiveShipAllBits() const {
  int64_t total = 0;
  for (const UndirectedGraph& server_graph : server_graphs_) {
    total += SerializedSizeInBits(server_graph);
  }
  return total;
}

}  // namespace dcs
