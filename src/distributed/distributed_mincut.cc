#include "distributed/distributed_mincut.h"

#include <cmath>
#include <limits>
#include <utility>

#include "comm/message.h"
#include "graph/connectivity.h"
#include "mincut/karger.h"
#include "sketch/serialization.h"
#include "util/metrics.h"
#include "util/stats.h"

namespace dcs {
namespace {

// Median over one server's independent for-each copies (the MedianOfSketches
// boost, taken at query time).
double MedianEstimate(const std::vector<ForEachCutSketch>& copies,
                      const VertexSet& side) {
  std::vector<double> estimates;
  estimates.reserve(copies.size());
  for (const ForEachCutSketch& copy : copies) {
    estimates.push_back(copy.EstimateCut(side));
  }
  return Median(std::move(estimates));
}

}  // namespace

std::vector<UndirectedGraph> PartitionEdges(const UndirectedGraph& graph,
                                            int num_servers, Rng& rng) {
  DCS_CHECK_GE(num_servers, 1);
  std::vector<UndirectedGraph> parts(
      static_cast<size_t>(num_servers), UndirectedGraph(graph.num_vertices()));
  for (const Edge& e : graph.edges()) {
    const size_t server =
        static_cast<size_t>(rng.UniformInt(static_cast<uint64_t>(num_servers)));
    parts[server].AddEdge(e.src, e.dst, e.weight);
  }
  return parts;
}

DistributedMinCutPipeline::DistributedMinCutPipeline(
    std::vector<UndirectedGraph> server_graphs,
    const DistributedMinCutOptions& options, Rng& rng)
    : server_graphs_(std::move(server_graphs)), options_(options) {
  DCS_CHECK(!server_graphs_.empty());
  DCS_CHECK_GE(options_.median_boost, 1);
  for (const UndirectedGraph& server_graph : server_graphs_) {
    forall_sketches_.push_back(std::make_unique<BenczurKargerSparsifier>(
        server_graph, options_.coarse_epsilon, rng));
    std::vector<ForEachCutSketch> copies;
    copies.reserve(static_cast<size_t>(options_.median_boost));
    for (int b = 0; b < options_.median_boost; ++b) {
      copies.emplace_back(server_graph, options_.epsilon, rng);
    }
    foreach_copies_.push_back(std::move(copies));
  }
}

DistributedMinCutPipeline::Result DistributedMinCutPipeline::Coordinate(
    const std::vector<ServerView>& servers, double scale, Rng& rng) const {
  Result result;
  result.effective_epsilon = options_.epsilon;
  for (const ServerView& server : servers) {
    result.forall_bits += server.forall->SizeInBits();
    for (const ForEachCutSketch& copy : *server.foreach_copies) {
      result.foreach_bits += copy.SizeInBits();
    }
  }
  // Coordinator: merge the for-all sparsifiers into one coarse graph.
  const int n = server_graphs_.front().num_vertices();
  UndirectedGraph coarse(n);
  for (const ServerView& server : servers) {
    coarse.MergeFrom(server.forall->sparsifier());
  }
  // Enumerate every candidate cut within candidate_alpha of the coarse
  // minimum; the true minimum cut is among them as long as the coarse
  // sparsifier's error is below the alpha margin. A degraded run can leave
  // the survivors' coarse graph disconnected (the lost servers may have
  // held every edge across some split); then the component cut has coarse
  // weight zero and is the only candidate worth re-evaluating.
  std::vector<GlobalMinCut> candidates;
  if (IsConnected(coarse)) {
    candidates = EnumerateNearMinimumCuts(
        coarse, options_.candidate_alpha, rng, options_.karger_repetitions);
    DCS_CHECK(!candidates.empty());
  } else {
    candidates.push_back(StoerWagnerMinCut(coarse));
  }
  // Re-evaluate each candidate with the accurate for-each sketches (cut
  // values add across edge-disjoint servers; `scale` corrects for lost
  // servers).
  result.estimate = std::numeric_limits<double>::infinity();
  for (const GlobalMinCut& candidate : candidates) {
    double accurate = 0;
    for (const ServerView& server : servers) {
      accurate += MedianEstimate(*server.foreach_copies, candidate.side);
    }
    accurate *= scale;
    ++result.candidates_considered;
    if (accurate < result.estimate) {
      result.estimate = accurate;
      result.best_side = candidate.side;
    }
  }
  return result;
}

DistributedMinCutPipeline::Result DistributedMinCutPipeline::Run(
    Rng& rng) const {
  std::vector<ServerView> servers;
  servers.reserve(forall_sketches_.size());
  for (size_t s = 0; s < forall_sketches_.size(); ++s) {
    servers.push_back(
        ServerView{forall_sketches_[s].get(), &foreach_copies_[s]});
  }
  return Coordinate(servers, /*scale=*/1.0, rng);
}

StatusOr<DistributedMinCutPipeline::Result> DistributedMinCutPipeline::Run(
    Rng& rng, const ChannelOptions& channel) const {
  channel.Check();
  const int total = num_servers();
  std::vector<std::unique_ptr<BenczurKargerSparsifier>> rx_forall;
  std::vector<std::vector<ForEachCutSketch>> rx_foreach;
  int64_t channel_wire_bits = 0;
  int64_t retransmitted_bits = 0;
  std::vector<int> lost_servers;
  for (int server = 0; server < total; ++server) {
    // One framed message per server: the for-all sparsifier followed by the
    // median_boost for-each copies, each in its own checksummed envelope.
    BitWriter writer;
    forall_sketches_[static_cast<size_t>(server)]->Serialize(writer);
    for (const ForEachCutSketch& copy :
         foreach_copies_[static_cast<size_t>(server)]) {
      copy.Serialize(writer);
    }
    const Message message = SealMessage(writer);
    ChannelOptions server_channel = channel;
    server_channel.seed = SubtaskSeed(channel.seed, server);
    ReliableLink link(server_channel);
    auto delivered = link.Transfer(message);
    channel_wire_bits += link.stats().wire_bits;
    retransmitted_bits += link.stats().retransmitted_bits;
    if (!delivered.ok()) {
      lost_servers.push_back(server);
      DCS_METRIC_INC("distributed.server.lost");
      continue;
    }
    // Recovered transfers are frame-checksummed end to end, so the bytes
    // match the server's serialization and value() is safe (the in-process
    // round-trip contract).
    BitReader reader = OpenMessage(delivered.value());
    rx_forall.push_back(std::make_unique<BenczurKargerSparsifier>(
        BenczurKargerSparsifier::Deserialize(reader).value()));
    std::vector<ForEachCutSketch> copies;
    copies.reserve(static_cast<size_t>(options_.median_boost));
    for (int b = 0; b < options_.median_boost; ++b) {
      copies.push_back(ForEachCutSketch::Deserialize(reader).value());
    }
    rx_foreach.push_back(std::move(copies));
  }
  if (rx_forall.empty()) {
    return UnavailableError(
        "distributed min-cut: every server transfer exceeded the channel "
        "deadline; no sketches reached the coordinator");
  }
  const int survivors = static_cast<int>(rx_forall.size());
  const int lost = total - survivors;
  // Uniform edge partition: the survivors hold a (S−L)/S fraction of every
  // cut's weight in expectation, so rescaling by S/(S−L) keeps the summed
  // estimate unbiased. The per-server sampling error does not shrink with
  // the missing servers, so the error bound widens by the same √ factor a
  // smaller sample would.
  const double scale = static_cast<double>(total) / survivors;
  std::vector<ServerView> views;
  views.reserve(rx_forall.size());
  for (size_t s = 0; s < rx_forall.size(); ++s) {
    views.push_back(ServerView{rx_forall[s].get(), &rx_foreach[s]});
  }
  Result result = Coordinate(views, scale, rng);
  result.channel_wire_bits = channel_wire_bits;
  result.retransmitted_bits = retransmitted_bits;
  result.degraded = lost > 0;
  result.lost_servers = std::move(lost_servers);
  result.effective_epsilon =
      lost > 0 ? options_.epsilon * std::sqrt(scale) : options_.epsilon;
  if (result.degraded) DCS_METRIC_INC("distributed.run.degraded");
  return result;
}

int64_t DistributedMinCutPipeline::NaiveShipAllBits() const {
  int64_t total = 0;
  for (const UndirectedGraph& server_graph : server_graphs_) {
    total += SerializedSizeInBits(server_graph);
  }
  return total;
}

}  // namespace dcs
