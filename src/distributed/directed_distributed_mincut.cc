#include "distributed/directed_distributed_mincut.h"

#include <limits>
#include <utility>

#include "graph/connectivity.h"
#include "mincut/karger.h"

namespace dcs {

std::vector<DirectedGraph> PartitionDirectedEdges(const DirectedGraph& graph,
                                                  int num_servers,
                                                  Rng& rng) {
  DCS_CHECK_GE(num_servers, 1);
  std::vector<DirectedGraph> parts(static_cast<size_t>(num_servers),
                                   DirectedGraph(graph.num_vertices()));
  for (const Edge& e : graph.edges()) {
    const size_t server = static_cast<size_t>(
        rng.UniformInt(static_cast<uint64_t>(num_servers)));
    parts[server].AddEdge(e.src, e.dst, e.weight);
  }
  return parts;
}

DirectedDistributedMinCutPipeline::DirectedDistributedMinCutPipeline(
    std::vector<DirectedGraph> server_graphs,
    const DirectedDistributedOptions& options, Rng& rng)
    : server_graphs_(std::move(server_graphs)), options_(options) {
  DCS_CHECK(!server_graphs_.empty());
  DCS_CHECK_GE(options_.beta, 1.0);
  DCS_CHECK(IsRegisteredBackend(options_.score_backend));
  const bool default_backend = options_.score_backend == "foreach";
  for (const DirectedGraph& server_graph : server_graphs_) {
    coarse_.push_back(std::make_unique<DirectedImportanceSamplerSketch>(
        server_graph, options_.coarse_epsilon, options_.beta, rng));
    if (default_backend) {
      // Historical path, kept bit-identical: the for-each sketch draws
      // directly from the shared rng stream.
      score_.push_back(std::make_unique<DirectedForEachSketch>(
          server_graph, options_.epsilon, options_.beta, rng));
    } else {
      BackendOptions backend_options;
      backend_options.epsilon = options_.epsilon;
      backend_options.beta = options_.beta;
      backend_options.seed = rng.Next();
      auto sketch = BuildBackendSketch(options_.score_backend, server_graph,
                                       backend_options);
      DCS_CHECK(sketch.ok());
      score_.push_back(std::move(sketch).value());
    }
  }
}

DirectedDistributedMinCutPipeline::Result
DirectedDistributedMinCutPipeline::Run(Rng& rng) const {
  Result result;
  for (const auto& sketch : coarse_) {
    result.coarse_bits += sketch->SizeInBits();
  }
  for (const auto& sketch : score_) {
    result.foreach_bits += sketch->SizeInBits();
  }
  // Coordinator: merge the coarse directed samples and enumerate candidate
  // sides on the symmetrization with a balance-aware alpha.
  const int n = server_graphs_.front().num_vertices();
  DirectedGraph coarse(n);
  for (const auto& sketch : coarse_) {
    coarse.MergeFrom(sketch->sample());
  }
  const UndirectedGraph symmetric = coarse.Symmetrized();
  DCS_CHECK(IsConnected(symmetric));
  const double alpha = options_.alpha_slack * (1.0 + options_.beta);
  const std::vector<GlobalMinCut> candidates = EnumerateNearMinimumCuts(
      symmetric, alpha, rng, options_.karger_repetitions);
  DCS_CHECK(!candidates.empty());
  result.estimate = std::numeric_limits<double>::infinity();
  for (const GlobalMinCut& candidate : candidates) {
    // Score both orientations: the directed min cut may point either way.
    for (const bool flip : {false, true}) {
      const VertexSet side =
          flip ? ComplementSet(candidate.side) : candidate.side;
      double accurate = 0;
      for (const auto& sketch : score_) {
        accurate += sketch->EstimateCut(side);
      }
      ++result.candidates_considered;
      if (accurate < result.estimate) {
        result.estimate = accurate;
        result.best_side = side;
      }
    }
  }
  return result;
}

}  // namespace dcs
