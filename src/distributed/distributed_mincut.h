// Distributed minimum cut via cut sketches — the application that motivates
// the paper's lower bounds (Section 1, following [ACK+16]).
//
// The edges of a graph are partitioned across servers. Each server sends
// the coordinator two sketches of its edge set:
//   * a (1±coarse_ε) for-all sparsifier  — used to find every
//     O(1)-approximate minimum cut (there are only poly(n) of them, by
//     Karger's theorem), and
//   * a (1±ε) for-each sketch            — used to re-evaluate each
//     candidate cut accurately (cut values add across edge-disjoint
//     servers, so the coordinator sums per-server estimates).
// The final answer is the best candidate under the accurate estimates.
// Total communication is the serialized size of all sketches; the paper's
// Theorem 1.1/1.2 lower bounds say the for-each/for-all parts of this
// recipe are near-optimal.

#ifndef DCS_DISTRIBUTED_DISTRIBUTED_MINCUT_H_
#define DCS_DISTRIBUTED_DISTRIBUTED_MINCUT_H_

#include <memory>
#include <vector>

#include "graph/ugraph.h"
#include "mincut/stoer_wagner.h"
#include "sketch/sampled_sketches.h"
#include "util/random.h"

namespace dcs {

// Tuning for the pipeline.
struct DistributedMinCutOptions {
  double epsilon = 0.1;          // accuracy of the final estimate
  double coarse_epsilon = 0.2;   // for-all sketch accuracy
  double candidate_alpha = 2.0;  // enumerate cuts within α× of coarse min
  int karger_repetitions = 12;   // contraction runs for enumeration
  int median_boost = 3;          // independent for-each sketches per server
};

// Splits the edges of `graph` uniformly at random into `num_servers`
// edge-disjoint subgraphs on the same vertex set.
std::vector<UndirectedGraph> PartitionEdges(const UndirectedGraph& graph,
                                            int num_servers, Rng& rng);

// The full pipeline.
class DistributedMinCutPipeline {
 public:
  // Builds per-server sketches for the given edge partition.
  DistributedMinCutPipeline(std::vector<UndirectedGraph> server_graphs,
                            const DistributedMinCutOptions& options,
                            Rng& rng);

  struct Result {
    double estimate = 0;
    VertexSet best_side;
    int candidates_considered = 0;
    int64_t forall_bits = 0;   // communication spent on for-all sketches
    int64_t foreach_bits = 0;  // communication spent on for-each sketches
    int64_t total_bits() const { return forall_bits + foreach_bits; }
  };

  // Runs candidate enumeration + accurate re-evaluation.
  Result Run(Rng& rng) const;

  // Communication of the naive protocol (every server ships its edges).
  int64_t NaiveShipAllBits() const;

  int num_servers() const {
    return static_cast<int>(server_graphs_.size());
  }

 private:
  std::vector<UndirectedGraph> server_graphs_;
  DistributedMinCutOptions options_;
  std::vector<std::unique_ptr<BenczurKargerSparsifier>> forall_sketches_;
  std::vector<std::unique_ptr<MedianOfSketches>> foreach_sketches_;
};

}  // namespace dcs

#endif  // DCS_DISTRIBUTED_DISTRIBUTED_MINCUT_H_
