// Distributed minimum cut via cut sketches — the application that motivates
// the paper's lower bounds (Section 1, following [ACK+16]).
//
// The edges of a graph are partitioned across servers. Each server sends
// the coordinator two sketches of its edge set:
//   * a (1±coarse_ε) for-all sparsifier  — used to find every
//     O(1)-approximate minimum cut (there are only poly(n) of them, by
//     Karger's theorem), and
//   * a (1±ε) for-each sketch            — used to re-evaluate each
//     candidate cut accurately (cut values add across edge-disjoint
//     servers, so the coordinator sums per-server estimates).
// The final answer is the best candidate under the accurate estimates.
// Total communication is the serialized size of all sketches; the paper's
// Theorem 1.1/1.2 lower bounds say the for-each/for-all parts of this
// recipe are near-optimal.
//
// The channel-aware Run overload routes every server→coordinator message
// through a ReliableLink over a seeded LossyChannel (comm/channel.h,
// DESIGN.md §9). Servers whose transfer exceeds the retransmission deadline
// are *lost*, and the coordinator degrades gracefully instead of aborting:
// it proceeds with the surviving edge-disjoint servers, rescales the summed
// estimates by S/(S−L) (the edge partition is uniform, so survivors hold a
// (S−L)/S fraction of the weight in expectation), and reports
// Result::degraded, the lost-server set, and a widened effective error
// bound. Only the loss of every server is an error.

#ifndef DCS_DISTRIBUTED_DISTRIBUTED_MINCUT_H_
#define DCS_DISTRIBUTED_DISTRIBUTED_MINCUT_H_

#include <memory>
#include <vector>

#include "comm/channel.h"
#include "graph/ugraph.h"
#include "mincut/stoer_wagner.h"
#include "sketch/sampled_sketches.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {

// Tuning for the pipeline.
struct DistributedMinCutOptions {
  double epsilon = 0.1;          // accuracy of the final estimate
  double coarse_epsilon = 0.2;   // for-all sketch accuracy
  double candidate_alpha = 2.0;  // enumerate cuts within α× of coarse min
  int karger_repetitions = 12;   // contraction runs for enumeration
  int median_boost = 3;          // independent for-each sketches per server
};

// Splits the edges of `graph` uniformly at random into `num_servers`
// edge-disjoint subgraphs on the same vertex set.
std::vector<UndirectedGraph> PartitionEdges(const UndirectedGraph& graph,
                                            int num_servers, Rng& rng);

// The full pipeline.
class DistributedMinCutPipeline {
 public:
  // Builds per-server sketches for the given edge partition.
  DistributedMinCutPipeline(std::vector<UndirectedGraph> server_graphs,
                            const DistributedMinCutOptions& options,
                            Rng& rng);

  struct Result {
    double estimate = 0;
    VertexSet best_side;
    int candidates_considered = 0;
    int64_t forall_bits = 0;   // communication spent on for-all sketches
    int64_t foreach_bits = 0;  // communication spent on for-each sketches
    // Channel accounting (zero for the in-process Run(rng) overload):
    // every bit the links put on the wire, and the share spent beyond
    // first attempts.
    int64_t channel_wire_bits = 0;
    int64_t retransmitted_bits = 0;
    // Graceful degradation. When servers are lost past the channel
    // deadline, the estimate is computed from the survivors rescaled by
    // S/(S−L) and effective_epsilon widens accordingly; with no losses it
    // equals options.epsilon.
    bool degraded = false;
    std::vector<int> lost_servers;
    double effective_epsilon = 0;
    int64_t total_bits() const { return forall_bits + foreach_bits; }
  };

  // Runs candidate enumeration + accurate re-evaluation in-process.
  Result Run(Rng& rng) const;

  // Same pipeline with every server→coordinator message carried by a
  // ReliableLink over a LossyChannel. Server s's link is seeded
  // SubtaskSeed(channel.seed, s), so each server replays its own fault
  // script independently. A run in which every transfer recovers returns
  // the same estimate/best_side as Run(rng) (the coordinator decodes the
  // identical sketch bytes and `rng` is consumed identically) — only the
  // transport accounting differs. Returns kUnavailable iff every server is
  // lost.
  StatusOr<Result> Run(Rng& rng, const ChannelOptions& channel) const;

  // Communication of the naive protocol (every server ships its edges).
  int64_t NaiveShipAllBits() const;

  int num_servers() const {
    return static_cast<int>(server_graphs_.size());
  }

 private:
  // One server's sketches as the coordinator sees them (owned elsewhere:
  // either this pipeline's members or the channel overload's decoded
  // copies).
  struct ServerView {
    const BenczurKargerSparsifier* forall = nullptr;
    const std::vector<ForEachCutSketch>* foreach_copies = nullptr;
  };

  // Coordinator logic over an arbitrary subset of servers. `scale`
  // multiplies the summed for-each estimates (S/(S−L) under degradation,
  // 1 otherwise). Handles a disconnected coarse graph — possible when lost
  // servers held every edge across some split — by falling back to the
  // zero-weight component cut instead of aborting.
  Result Coordinate(const std::vector<ServerView>& servers, double scale,
                    Rng& rng) const;

  std::vector<UndirectedGraph> server_graphs_;
  DistributedMinCutOptions options_;
  std::vector<std::unique_ptr<BenczurKargerSparsifier>> forall_sketches_;
  // Concrete per-server for-each copies (median taken at query time), so
  // the channel overload can serialize each copy through the existing
  // checksummed envelopes.
  std::vector<std::vector<ForEachCutSketch>> foreach_copies_;
};

}  // namespace dcs

#endif  // DCS_DISTRIBUTED_DISTRIBUTED_MINCUT_H_
