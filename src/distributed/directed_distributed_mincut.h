// Distributed *directed* min-cut for β-balanced digraphs — the directed
// counterpart of distributed_mincut.h, composing the paper's objects:
// per-server directed sparsifiers (coarse) + directed for-each sketches
// (accurate).
//
// Candidate generation uses the balance promise: for a β-balanced graph,
// u(S)/(1+β) ≤ w(S, V∖S) ≤ u(S), where u is the symmetrization cut. So
// every directed cut within a constant of the directed optimum has
// symmetrized value within (1+β)·constant of the symmetrized optimum, and
// Karger enumeration on the merged coarse sparsifier's symmetrization
// covers all candidates. Each candidate is then scored in both
// orientations with the summed per-server for-each estimates.

#ifndef DCS_DISTRIBUTED_DIRECTED_DISTRIBUTED_MINCUT_H_
#define DCS_DISTRIBUTED_DIRECTED_DISTRIBUTED_MINCUT_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "sketch/backend_registry.h"
#include "sketch/directed_sketches.h"
#include "util/random.h"

namespace dcs {

struct DirectedDistributedOptions {
  double epsilon = 0.1;         // accuracy of the final estimate
  double coarse_epsilon = 0.25; // directed sparsifier accuracy
  double beta = 1.0;            // balance promise of the whole graph
  // Enumeration widens by this factor times (1+beta); 0 picks the default.
  double alpha_slack = 1.6;
  int karger_repetitions = 12;
  // Sparsifier backend (sketch/backend_registry.h) scoring the candidate
  // sides. The default reproduces the historical pipeline bit-for-bit
  // (per-server DirectedForEachSketch drawn from the shared rng); any
  // other registered name routes through the backend registry. Must be a
  // registered name — validate with IsRegisteredBackend before
  // constructing the pipeline (the constructor CHECKs).
  std::string score_backend = "foreach";
};

// Splits directed edges uniformly across servers.
std::vector<DirectedGraph> PartitionDirectedEdges(const DirectedGraph& graph,
                                                  int num_servers, Rng& rng);

class DirectedDistributedMinCutPipeline {
 public:
  DirectedDistributedMinCutPipeline(std::vector<DirectedGraph> server_graphs,
                                    const DirectedDistributedOptions& options,
                                    Rng& rng);

  struct Result {
    double estimate = 0;
    VertexSet best_side;
    int candidates_considered = 0;
    int64_t coarse_bits = 0;
    // Bits of the scoring sketches (named for the default backend).
    int64_t foreach_bits = 0;
    int64_t total_bits() const { return coarse_bits + foreach_bits; }
  };

  Result Run(Rng& rng) const;

  int num_servers() const {
    return static_cast<int>(server_graphs_.size());
  }

 private:
  std::vector<DirectedGraph> server_graphs_;
  DirectedDistributedOptions options_;
  std::vector<std::unique_ptr<DirectedImportanceSamplerSketch>> coarse_;
  // Per-server scoring sketches; concrete type picked by score_backend.
  std::vector<std::unique_ptr<DirectedCutSketch>> score_;
};

}  // namespace dcs

#endif  // DCS_DISTRIBUTED_DIRECTED_DISTRIBUTED_MINCUT_H_
