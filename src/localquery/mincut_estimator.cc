#include "localquery/mincut_estimator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "localquery/query_retry.h"

namespace dcs {

LocalQueryMinCutResult EstimateMinCutLocalQueries(
    const UndirectedGraph& graph, double epsilon, SearchMode mode, Rng& rng,
    const MinCutEstimatorOptions& options) {
  GraphOracle oracle(graph);
  // GraphOracle is infallible, so a non-OK status here is a programmer
  // error and value() is safe.
  return EstimateMinCutLocalQueries(oracle, epsilon, mode, rng, options)
      .value();
}

StatusOr<LocalQueryMinCutResult> EstimateMinCutLocalQueries(
    LocalQueryOracle& oracle, double epsilon, SearchMode mode, Rng& rng,
    const MinCutEstimatorOptions& options) {
  DCS_CHECK(epsilon > 0 && epsilon < 1);
  const int n = oracle.num_vertices();
  DCS_CHECK_GE(n, 2);
  const double log_n = std::log(std::max(3, n));
  const double search_epsilon = mode == SearchMode::kOriginalEpsilonSearch
                                    ? epsilon
                                    : options.search_beta0;

  // Every verification goes through one seam so a caller-supplied variant
  // (the serving layer's batched one) replaces the search loop and the
  // final harvest together, never just one of them.
  const auto verify = [&](double guess_t,
                          double eps) -> StatusOr<VerifyGuessResult> {
    if (options.verify_fn) {
      return options.verify_fn(oracle, guess_t, eps, rng,
                               options.oversample_c);
    }
    return VerifyGuess(oracle, guess_t, eps, rng, options.oversample_c);
  };

  LocalQueryMinCutResult result;
  // Guess-halving search: the min cut is at most the minimum degree, which
  // costs n degree queries to learn (multigraphs can have k ≫ n, so
  // starting at n would be wrong).
  double min_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    DCS_ASSIGN_OR_RETURN(const int64_t degree_query,
                         RetryQuery([&] { return oracle.TryDegree(v); }));
    const double degree = static_cast<double>(degree_query);
    if (v == 0 || degree < min_degree) min_degree = degree;
  }
  double t = std::max(1.0, min_degree);
  while (t >= 1.0) {
    DCS_ASSIGN_OR_RETURN(const VerifyGuessResult vg,
                         verify(t, search_epsilon));
    ++result.verify_guess_calls;
    if (vg.accepted) break;
    t /= 2;
  }
  t = std::max(t, 1.0);
  // Final harvest call at a guess shrunk safely below k.
  const double kappa =
      options.kappa_c * log_n / (search_epsilon * search_epsilon);
  const double final_guess = std::max(1.0, t / kappa);
  DCS_ASSIGN_OR_RETURN(const VerifyGuessResult final_vg,
                       verify(final_guess, epsilon));
  ++result.verify_guess_calls;
  result.estimate = final_vg.estimate;
  result.counts = oracle.counts();
  result.communication_bits = oracle.CommunicationBits();
  return result;
}

}  // namespace dcs
