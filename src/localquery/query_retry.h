// Bounded retry for fallible oracle queries.
//
// kUnavailable is the one transient code (see status.h): a query that
// failed with it may succeed on reissue, so the local-query algorithms
// retry it a bounded number of times before propagating. Any other error —
// and exhaustion of the attempt budget — is returned to the caller.
//
// Retries only reissue the oracle query; they draw nothing from the
// algorithm's Rng, so a run that recovers from transient faults produces
// bit-identical results to a fault-free run.

#ifndef DCS_LOCALQUERY_QUERY_RETRY_H_
#define DCS_LOCALQUERY_QUERY_RETRY_H_

#include <utility>

#include "util/metrics.h"
#include "util/status.h"

namespace dcs {

// Attempts per query before giving up on kUnavailable.
inline constexpr int kMaxQueryAttempts = 8;

// Invokes `query` (returning StatusOr<T>) up to kMaxQueryAttempts times.
// Every query records how many attempts it took into the
// "localquery.retry.attempts" distribution (a log2 histogram in the metrics
// registry), so a chaos run shows the retry tail, not just the totals.
template <typename QueryFn>
auto RetryQuery(QueryFn&& query) -> decltype(query()) {
  for (int attempt = 1;; ++attempt) {
    auto result = query();
    if (result.ok() ||
        result.status().code() != StatusCode::kUnavailable) {
      DCS_METRIC_RECORD("localquery.retry.attempts", attempt);
      return result;
    }
    if (attempt >= kMaxQueryAttempts) {
      DCS_METRIC_INC("localquery.retry.exhausted");
      DCS_METRIC_RECORD("localquery.retry.attempts", attempt);
      return result;
    }
    DCS_METRIC_INC("localquery.retry.reissued");
  }
}

}  // namespace dcs

#endif  // DCS_LOCALQUERY_QUERY_RETRY_H_
