// (1±ε) global min-cut estimation in the local query model
// ([BGMP21] and the paper's Theorem 5.7 refinement).
//
// Both variants run the same guess-halving search, starting from t = n and
// halving until VERIFY-GUESS accepts, then issue one final VERIFY-GUESS at
// a guess shrunk below k to harvest the (1±ε) estimate. They differ only
// in the accuracy of the *search* calls:
//
//  * kOriginalEpsilonSearch — search calls use ε (as in [BGMP21]); the
//    final guess must be shrunk by κ = Θ(log(n)/ε²), so the final call
//    costs Õ(m/(ε⁴·k)) queries (capped at Θ(m) when the sampling rate
//    saturates).
//  * kModifiedConstantSearch — search calls use a constant β₀ (the paper's
//    observation, Section 5.4); the final shrink is only Θ(log n), so the
//    final call costs Õ(m/(ε²·k)), matching the Theorem 1.3 lower bound.

#ifndef DCS_LOCALQUERY_MINCUT_ESTIMATOR_H_
#define DCS_LOCALQUERY_MINCUT_ESTIMATOR_H_

#include <functional>

#include "localquery/oracle.h"
#include "localquery/verify_guess.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {

// Which accuracy the guess-halving search runs at.
enum class SearchMode {
  kOriginalEpsilonSearch,
  kModifiedConstantSearch,
};

// Tuning knobs (theory constants scaled down to practical sizes).
struct MinCutEstimatorOptions {
  double search_beta0 = 0.5;  // constant accuracy for kModifiedConstantSearch
  double oversample_c = 2.0;  // sampling-rate constant inside VERIFY-GUESS
  double kappa_c = 2.0;       // constant in the final-guess shrink factor κ

  // Optional replacement for VerifyGuess, used for every verification call
  // (search loop and final harvest). The serving layer's batched variant
  // (serve/local_batch.h) plugs in here. An implementation must honor the
  // VerifyGuess contract — same signature semantics (oracle, guess_t,
  // epsilon, rng, oversample_c) and the same rng draw discipline — so that
  // swapping it in leaves the estimate bit-identical on infallible
  // oracles. Empty = the plain VerifyGuess.
  std::function<StatusOr<VerifyGuessResult>(LocalQueryOracle&, double,
                                            double, Rng&, double)>
      verify_fn;
};

// Result of a full estimation run.
struct LocalQueryMinCutResult {
  double estimate = 0;
  int verify_guess_calls = 0;
  LocalQueryOracle::QueryCounts counts;  // cumulative across all calls
  int64_t communication_bits = 0;        // Lemma 5.6 accounting
};

// Estimates the global min cut behind `oracle` (an unweighted, connected
// graph) to a (1±ε) factor using only local queries. Query counts
// accumulate on the oracle. Queries go through the fallible Try*
// interface: transient failures are retried (query_retry.h) and persistent
// ones propagated, so an unreliable oracle yields an error, not a crash.
StatusOr<LocalQueryMinCutResult> EstimateMinCutLocalQueries(
    LocalQueryOracle& oracle, double epsilon, SearchMode mode, Rng& rng,
    const MinCutEstimatorOptions& options = MinCutEstimatorOptions{});

// Convenience overload over a materialized graph; GraphOracle never fails,
// so this returns the result directly.
LocalQueryMinCutResult EstimateMinCutLocalQueries(
    const UndirectedGraph& graph, double epsilon, SearchMode mode, Rng& rng,
    const MinCutEstimatorOptions& options = MinCutEstimatorOptions{});

}  // namespace dcs

#endif  // DCS_LOCALQUERY_MINCUT_ESTIMATOR_H_
