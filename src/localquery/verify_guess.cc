#include "localquery/verify_guess.h"

#include <algorithm>
#include <cmath>

#include "graph/connectivity.h"
#include "localquery/query_retry.h"
#include "mincut/stoer_wagner.h"

namespace dcs {

StatusOr<VerifyGuessResult> VerifyGuess(LocalQueryOracle& oracle,
                                        double guess_t, double epsilon,
                                        Rng& rng, double oversample_c) {
  DCS_CHECK_GE(guess_t, 1.0);
  DCS_CHECK(epsilon > 0 && epsilon < 1);
  const int n = oracle.num_vertices();
  DCS_CHECK_GE(n, 2);
  const double log_n = std::log(std::max(3, n));
  const double p = std::min(
      1.0, oversample_c * log_n / (epsilon * epsilon * guess_t));

  VerifyGuessResult result;
  result.sample_probability = p;
  // Sample each neighbor slot independently with probability p. Each
  // undirected edge occupies one slot at each endpoint, so a sampled slot
  // contributes weight 1/(2p): the expected sampled weight of every edge
  // (and hence of every cut) is exactly its true value.
  UndirectedGraph sample(n);
  const double slot_weight = 1.0 / (2.0 * p);
  for (VertexId u = 0; u < n; ++u) {
    DCS_ASSIGN_OR_RETURN(const int64_t degree,
                         RetryQuery([&] { return oracle.TryDegree(u); }));
    const int64_t picks = rng.Binomial(degree, p);
    if (picks == 0) continue;
    const std::vector<int> slots =
        rng.RandomSubset(static_cast<int>(degree), static_cast<int>(picks));
    for (int slot : slots) {
      DCS_ASSIGN_OR_RETURN(
          const std::optional<VertexId> neighbor,
          RetryQuery([&] { return oracle.TryNeighbor(u, slot); }));
      if (!neighbor.has_value()) {
        // The oracle reported deg(u) > slot yet returned ⊥: an inconsistent
        // backend, not a programmer error — surface it, don't abort.
        return FailedPreconditionError(
            "oracle returned no neighbor for an in-range slot");
      }
      sample.AddEdge(u, *neighbor, slot_weight);
    }
  }
  if (!IsConnected(sample)) {
    // A disconnected sample certifies the sampled min cut is 0 (far below
    // (1−ε)t): reject without running the exact min-cut solver.
    result.accepted = false;
    result.estimate = 0;
    return result;
  }
  result.estimate = StoerWagnerMinCut(sample).value;
  result.accepted = result.estimate >= (1 - epsilon) * guess_t;
  return result;
}

}  // namespace dcs
