// VERIFY-GUESS (Lemma 5.8, [BGMP21]) via Karger's uniform edge sampling.
//
// Given a guess t for the min-cut value k, sample each neighbor slot with
// probability p = min(1, c·ln(n)/(ε²·t)) and weight every sampled edge by
// 1/(expected multiplicity), so each cut's sampled weight is unbiased. By
// Karger's sampling theorem, if t ≤ k then p ≥ c·ln(n)/(ε²·k) and *all*
// cuts of the sample are within (1±ε) of their true value whp — so the
// sample's global min cut is a (1±ε) estimate of k and the guess is
// accepted. If t ≥ Ω̃(k/ε²), the sampled min cut falls far below (1−ε)·t
// and the guess is rejected. Expected queries: O(n + p·2m) = Õ(m/(ε²·t)).

#ifndef DCS_LOCALQUERY_VERIFY_GUESS_H_
#define DCS_LOCALQUERY_VERIFY_GUESS_H_

#include "localquery/oracle.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {

// Outcome of one VERIFY-GUESS call.
struct VerifyGuessResult {
  bool accepted = false;
  // Estimate of the min cut from the sampled subgraph (valid when
  // accepted; when rejected it still records the sampled value).
  double estimate = 0;
  // Sampling probability that was used.
  double sample_probability = 0;
};

// Runs VERIFY-GUESS(D, t, ε) against the oracle. `oversample_c` is the
// constant c in the sampling rate. Accepts iff the sampled min-cut
// estimate is at least (1−ε)·t. Requires guess_t >= 1.
//
// Queries go through the oracle's fallible Try* interface: transient
// (kUnavailable) failures are retried a bounded number of times
// (query_retry.h) and otherwise propagated, so an unreliable backend makes
// VerifyGuess return an error rather than crash. Retries never touch `rng`,
// so a recovered run is bit-identical to a fault-free one.
StatusOr<VerifyGuessResult> VerifyGuess(LocalQueryOracle& oracle,
                                        double guess_t, double epsilon,
                                        Rng& rng, double oversample_c = 2.0);

}  // namespace dcs

#endif  // DCS_LOCALQUERY_VERIFY_GUESS_H_
