// The local query model (Section 1 / Section 5 of the paper).
//
// The algorithm knows the vertex set but not the edges, and may only issue:
//   1. Degree queries    — deg(u)
//   2. Edge queries      — the i-th neighbor of u (⊥ if i > deg(u))
//   3. Adjacency queries — is (u, v) an edge?
// The oracle counts every query; Lemma 5.6's reduction charges 2 bits of
// Alice–Bob communication per edge/adjacency query (degree queries are free
// on the regular G_{x,y} instances), which CommunicationBits() reports.
//
// Semantics are for unweighted multigraphs: parallel edges occupy separate
// neighbor slots and add to the degree; weights on the underlying graph are
// ignored (CHECKed to be 1 at construction).

#ifndef DCS_LOCALQUERY_ORACLE_H_
#define DCS_LOCALQUERY_ORACLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/ugraph.h"
#include "util/metrics.h"
#include "util/status.h"

namespace dcs {

// Abstract oracle interface: any implementation that can answer the three
// local queries (with accounting) can drive VERIFY-GUESS and the min-cut
// estimators — a materialized graph (GraphOracle) or a two-party
// simulation computing answers from distributed inputs (TwoSumGraphOracle).
class LocalQueryOracle {
 public:
  struct QueryCounts {
    int64_t degree = 0;
    int64_t neighbor = 0;
    int64_t adjacency = 0;
    int64_t total() const { return degree + neighbor + adjacency; }
  };

  virtual ~LocalQueryOracle() = default;

  // Known to the algorithm for free.
  virtual int num_vertices() const = 0;

  // Degree query.
  virtual int64_t Degree(VertexId u) = 0;

  // Edge query: the i-th neighbor of u (0-based slot), or nullopt if
  // i >= deg(u).
  virtual std::optional<VertexId> Neighbor(VertexId u, int64_t slot) = 0;

  // Adjacency query.
  virtual bool Adjacent(VertexId u, VertexId v) = 0;

  // Fallible variants for *unreliable* oracles (a remote backend may fail a
  // query transiently with kUnavailable). The defaults wrap the infallible
  // queries and never fail; algorithms that want to survive flaky backends
  // (VerifyGuess, the min-cut estimators) issue these and retry-or-propagate.
  virtual StatusOr<int64_t> TryDegree(VertexId u) { return Degree(u); }
  virtual StatusOr<std::optional<VertexId>> TryNeighbor(VertexId u,
                                                        int64_t slot) {
    return Neighbor(u, slot);
  }
  virtual StatusOr<bool> TryAdjacent(VertexId u, VertexId v) {
    return Adjacent(u, v);
  }

  const QueryCounts& counts() const { return counts_; }
  void ResetCounts() { counts_ = QueryCounts{}; }

  // Communication cost of the queries so far under the Lemma 5.6
  // simulation: 2 bits per neighbor/adjacency query.
  int64_t CommunicationBits() const {
    return 2 * (counts_.neighbor + counts_.adjacency);
  }

 protected:
  // Implementations tally through these (not by touching counts_ directly)
  // so the per-oracle accounting and the process-wide metrics registry
  // (`localquery.*.issued`) stay in lockstep.
  void TallyDegreeQuery() {
    ++counts_.degree;
    DCS_METRIC_INC("localquery.degree.issued");
  }
  void TallyNeighborQuery() {
    ++counts_.neighbor;
    DCS_METRIC_INC("localquery.neighbor.issued");
  }
  void TallyAdjacencyQuery() {
    ++counts_.adjacency;
    DCS_METRIC_INC("localquery.adjacency.issued");
  }

  QueryCounts counts_;
};

// Oracle over a materialized unweighted multigraph.
class GraphOracle final : public LocalQueryOracle {
 public:
  // The graph must be unweighted (all weights exactly 1) and outlive the
  // oracle.
  explicit GraphOracle(const UndirectedGraph& graph);

  int num_vertices() const override { return num_vertices_; }
  int64_t Degree(VertexId u) override;
  std::optional<VertexId> Neighbor(VertexId u, int64_t slot) override;
  bool Adjacent(VertexId u, VertexId v) override;

 private:
  int num_vertices_;
  std::vector<std::vector<VertexId>> neighbors_;
};

}  // namespace dcs

#endif  // DCS_LOCALQUERY_ORACLE_H_
