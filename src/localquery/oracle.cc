#include "localquery/oracle.h"

#include <algorithm>

#include "util/check.h"

namespace dcs {

GraphOracle::GraphOracle(const UndirectedGraph& graph)
    : num_vertices_(graph.num_vertices()),
      neighbors_(static_cast<size_t>(graph.num_vertices())) {
  for (const Edge& e : graph.edges()) {
    DCS_CHECK_EQ(e.weight, 1.0);
    neighbors_[static_cast<size_t>(e.src)].push_back(e.dst);
    neighbors_[static_cast<size_t>(e.dst)].push_back(e.src);
  }
  // Deterministic neighbor order (slot semantics must be stable).
  for (auto& list : neighbors_) std::sort(list.begin(), list.end());
}

int64_t GraphOracle::Degree(VertexId u) {
  DCS_CHECK(u >= 0 && u < num_vertices_);
  TallyDegreeQuery();
  return static_cast<int64_t>(neighbors_[static_cast<size_t>(u)].size());
}

std::optional<VertexId> GraphOracle::Neighbor(VertexId u, int64_t slot) {
  DCS_CHECK(u >= 0 && u < num_vertices_);
  DCS_CHECK_GE(slot, 0);
  TallyNeighborQuery();
  const auto& list = neighbors_[static_cast<size_t>(u)];
  if (slot >= static_cast<int64_t>(list.size())) return std::nullopt;
  return list[static_cast<size_t>(slot)];
}

bool GraphOracle::Adjacent(VertexId u, VertexId v) {
  DCS_CHECK(u >= 0 && u < num_vertices_);
  DCS_CHECK(v >= 0 && v < num_vertices_);
  TallyAdjacencyQuery();
  const auto& list = neighbors_[static_cast<size_t>(u)];
  return std::binary_search(list.begin(), list.end(), v);
}

}  // namespace dcs
