// Deterministic fault injection for the local query model.
//
// Real deployments of the query oracles are remote (Section 5 charges
// communication bits per query); remote backends fail. FaultInjectingOracle
// wraps any LocalQueryOracle and makes a configurable fraction of the
// fallible Try* queries return kUnavailable, so the retry-or-propagate
// paths in VerifyGuess / EstimateMinCutLocalQueries can be exercised in
// tests without a network.
//
// The injector draws from its *own* Rng stream, so the wrapped algorithm's
// randomness is untouched: a run that recovers from every injected fault
// must produce bit-identical results to a fault-free run.

#ifndef DCS_LOCALQUERY_FAULT_INJECTION_H_
#define DCS_LOCALQUERY_FAULT_INJECTION_H_

#include <cstdint>
#include <optional>

#include "localquery/oracle.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {

class FaultInjectingOracle final : public LocalQueryOracle {
 public:
  // Fails each Try* query independently with probability `failure_rate`
  // (clamped to [0, 1]) using a stream seeded by `seed`. The base oracle
  // must outlive the injector.
  FaultInjectingOracle(LocalQueryOracle& base, double failure_rate,
                       uint64_t seed);

  // Adds a truncating/short-read fault mode: with probability
  // `short_read_rate` a fallible query returns kDataLoss — the reply
  // arrived cut off mid-stream, so reissuing cannot help and RetryQuery
  // must propagate it immediately (unlike the transient kUnavailable
  // faults). Both kinds are decided by the one draw Bernoulli would make,
  // so a zero short_read_rate replays the two-argument constructor's fault
  // script bit for bit.
  FaultInjectingOracle(LocalQueryOracle& base, double failure_rate,
                       double short_read_rate, uint64_t seed);

  int num_vertices() const override { return base_.num_vertices(); }

  // The infallible queries pass straight through (fault injection only
  // makes sense for callers that issue the fallible variants).
  int64_t Degree(VertexId u) override;
  std::optional<VertexId> Neighbor(VertexId u, int64_t slot) override;
  bool Adjacent(VertexId u, VertexId v) override;

  // Fallible queries: kUnavailable with probability failure_rate; a failed
  // query never reaches the base oracle but still counts as issued here.
  StatusOr<int64_t> TryDegree(VertexId u) override;
  StatusOr<std::optional<VertexId>> TryNeighbor(VertexId u,
                                                int64_t slot) override;
  StatusOr<bool> TryAdjacent(VertexId u, VertexId v) override;

  // Number of transient (kUnavailable) faults injected so far.
  int64_t injected_failures() const { return injected_failures_; }
  // Number of short-read (kDataLoss) faults injected so far.
  int64_t injected_short_reads() const { return injected_short_reads_; }

 private:
  // Returns the injected error, or OK to forward the query.
  Status MaybeFail(const char* what);
  // Counts and returns the kDataLoss short-read error.
  Status ShortRead(const char* what);

  LocalQueryOracle& base_;
  double failure_rate_;
  double short_read_rate_;
  Rng rng_;
  int64_t injected_failures_ = 0;
  int64_t injected_short_reads_ = 0;
};

}  // namespace dcs

#endif  // DCS_LOCALQUERY_FAULT_INJECTION_H_
