#include "localquery/fault_injection.h"

#include <algorithm>
#include <string>

namespace dcs {

FaultInjectingOracle::FaultInjectingOracle(LocalQueryOracle& base,
                                           double failure_rate, uint64_t seed)
    : FaultInjectingOracle(base, failure_rate, /*short_read_rate=*/0.0,
                           seed) {}

FaultInjectingOracle::FaultInjectingOracle(LocalQueryOracle& base,
                                           double failure_rate,
                                           double short_read_rate,
                                           uint64_t seed)
    : base_(base),
      failure_rate_(std::clamp(failure_rate, 0.0, 1.0)),
      short_read_rate_(std::clamp(short_read_rate, 0.0, 1.0)),
      rng_(seed) {}

int64_t FaultInjectingOracle::Degree(VertexId u) {
  TallyDegreeQuery();
  return base_.Degree(u);
}

std::optional<VertexId> FaultInjectingOracle::Neighbor(VertexId u,
                                                       int64_t slot) {
  TallyNeighborQuery();
  return base_.Neighbor(u, slot);
}

bool FaultInjectingOracle::Adjacent(VertexId u, VertexId v) {
  TallyAdjacencyQuery();
  return base_.Adjacent(u, v);
}

Status FaultInjectingOracle::MaybeFail(const char* what) {
  // One uniform draw is split across the two fault kinds
  // (u < failure_rate → transient, u < failure_rate + short_read_rate →
  // short read), reproducing Bernoulli(failure_rate)'s exact draw pattern —
  // including its no-draw shortcuts at 0 and 1 — whenever short_read_rate
  // is zero, so fixed-seed fault scripts from the two-argument constructor
  // are unchanged.
  bool transient = false;
  if (failure_rate_ >= 1) {
    transient = true;
  } else if (failure_rate_ > 0) {
    const double u = rng_.UniformDouble();
    if (u < failure_rate_) {
      transient = true;
    } else if (u < failure_rate_ + short_read_rate_) {
      return ShortRead(what);
    }
  } else if (rng_.Bernoulli(short_read_rate_)) {
    return ShortRead(what);
  }
  if (transient) {
    ++injected_failures_;
    DCS_METRIC_INC("localquery.fault.injected");
    return UnavailableError(std::string("injected fault: ") + what +
                            " query failed");
  }
  return OkStatus();
}

Status FaultInjectingOracle::ShortRead(const char* what) {
  ++injected_short_reads_;
  DCS_METRIC_INC("localquery.fault.short_read");
  return DataLossError(std::string("injected short read: ") + what +
                       " reply truncated mid-stream");
}

StatusOr<int64_t> FaultInjectingOracle::TryDegree(VertexId u) {
  TallyDegreeQuery();
  DCS_RETURN_IF_ERROR(MaybeFail("degree"));
  return base_.Degree(u);
}

StatusOr<std::optional<VertexId>> FaultInjectingOracle::TryNeighbor(
    VertexId u, int64_t slot) {
  TallyNeighborQuery();
  DCS_RETURN_IF_ERROR(MaybeFail("neighbor"));
  return base_.Neighbor(u, slot);
}

StatusOr<bool> FaultInjectingOracle::TryAdjacent(VertexId u, VertexId v) {
  TallyAdjacencyQuery();
  DCS_RETURN_IF_ERROR(MaybeFail("adjacency"));
  return base_.Adjacent(u, v);
}

}  // namespace dcs
