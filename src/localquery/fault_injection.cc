#include "localquery/fault_injection.h"

#include <algorithm>
#include <string>

namespace dcs {

FaultInjectingOracle::FaultInjectingOracle(LocalQueryOracle& base,
                                           double failure_rate, uint64_t seed)
    : base_(base),
      failure_rate_(std::clamp(failure_rate, 0.0, 1.0)),
      rng_(seed) {}

int64_t FaultInjectingOracle::Degree(VertexId u) {
  TallyDegreeQuery();
  return base_.Degree(u);
}

std::optional<VertexId> FaultInjectingOracle::Neighbor(VertexId u,
                                                       int64_t slot) {
  TallyNeighborQuery();
  return base_.Neighbor(u, slot);
}

bool FaultInjectingOracle::Adjacent(VertexId u, VertexId v) {
  TallyAdjacencyQuery();
  return base_.Adjacent(u, v);
}

Status FaultInjectingOracle::MaybeFail(const char* what) {
  if (rng_.Bernoulli(failure_rate_)) {
    ++injected_failures_;
    DCS_METRIC_INC("localquery.fault.injected");
    return UnavailableError(std::string("injected fault: ") + what +
                            " query failed");
  }
  return OkStatus();
}

StatusOr<int64_t> FaultInjectingOracle::TryDegree(VertexId u) {
  TallyDegreeQuery();
  DCS_RETURN_IF_ERROR(MaybeFail("degree"));
  return base_.Degree(u);
}

StatusOr<std::optional<VertexId>> FaultInjectingOracle::TryNeighbor(
    VertexId u, int64_t slot) {
  TallyNeighborQuery();
  DCS_RETURN_IF_ERROR(MaybeFail("neighbor"));
  return base_.Neighbor(u, slot);
}

StatusOr<bool> FaultInjectingOracle::TryAdjacent(VertexId u, VertexId v) {
  TallyAdjacencyQuery();
  DCS_RETURN_IF_ERROR(MaybeFail("adjacency"));
  return base_.Adjacent(u, v);
}

}  // namespace dcs
