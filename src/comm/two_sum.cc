#include "comm/two_sum.h"

#include <algorithm>
#include <cmath>

namespace dcs {

int IntersectionCount(const std::vector<uint8_t>& x,
                      const std::vector<uint8_t>& y) {
  DCS_CHECK_EQ(x.size(), y.size());
  int count = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] && y[i]) ++count;
  }
  return count;
}

int Disjointness(const std::vector<uint8_t>& x,
                 const std::vector<uint8_t>& y) {
  return IntersectionCount(x, y) == 0 ? 1 : 0;
}

namespace {

// Fills one (X, Y) pair with INT exactly `alpha` (if intersect) or 0.
void SamplePair(int length, int alpha, bool intersect, Rng& rng,
                std::vector<uint8_t>& x, std::vector<uint8_t>& y) {
  x.assign(static_cast<size_t>(length), 0);
  y.assign(static_cast<size_t>(length), 0);
  // Budget extra (non-shared) ones so supports stay disjoint off the shared
  // positions: a third of the remaining positions to each side.
  const int shared = intersect ? alpha : 0;
  const int extra_each = std::max(0, (length - shared) / 3);
  const std::vector<int> positions =
      rng.RandomSubset(length, shared + 2 * extra_each);
  // `positions` is sorted; shuffle to assign roles uniformly.
  std::vector<int> roles = positions;
  rng.Shuffle(roles);
  int cursor = 0;
  for (int i = 0; i < shared; ++i) {
    x[static_cast<size_t>(roles[static_cast<size_t>(cursor)])] = 1;
    y[static_cast<size_t>(roles[static_cast<size_t>(cursor)])] = 1;
    ++cursor;
  }
  for (int i = 0; i < extra_each; ++i) {
    x[static_cast<size_t>(roles[static_cast<size_t>(cursor)])] = 1;
    ++cursor;
  }
  for (int i = 0; i < extra_each; ++i) {
    y[static_cast<size_t>(roles[static_cast<size_t>(cursor)])] = 1;
    ++cursor;
  }
}

}  // namespace

TwoSumInstance SampleTwoSumInstance(const TwoSumParams& params, Rng& rng) {
  DCS_CHECK_GE(params.num_pairs, 1);
  DCS_CHECK_GE(params.alpha, 1);
  DCS_CHECK_LE(2 * params.alpha, params.string_length);
  DCS_CHECK_GE(params.intersect_fraction, 1.0 / 1000);
  DCS_CHECK_LE(params.intersect_fraction, 1.0);
  TwoSumInstance instance;
  instance.params = params;
  instance.x.resize(static_cast<size_t>(params.num_pairs));
  instance.y.resize(static_cast<size_t>(params.num_pairs));
  // Exact number of intersecting pairs, at least one and at least the
  // Definition 5.2 promise.
  const int intersecting = std::max(
      1, static_cast<int>(std::lround(params.intersect_fraction *
                                      params.num_pairs)));
  const std::vector<int> which =
      rng.RandomSubset(params.num_pairs, intersecting);
  std::vector<uint8_t> is_intersecting(
      static_cast<size_t>(params.num_pairs), 0);
  for (int i : which) is_intersecting[static_cast<size_t>(i)] = 1;
  for (int i = 0; i < params.num_pairs; ++i) {
    SamplePair(params.string_length, params.alpha,
               is_intersecting[static_cast<size_t>(i)] != 0, rng,
               instance.x[static_cast<size_t>(i)],
               instance.y[static_cast<size_t>(i)]);
  }
  instance.disjoint_count = params.num_pairs - intersecting;
  return instance;
}

TwoSumInstance ConcatenateAlphaCopies(const TwoSumInstance& base, int alpha) {
  DCS_CHECK_GE(alpha, 1);
  TwoSumInstance expanded;
  expanded.params = base.params;
  expanded.params.string_length = base.params.string_length * alpha;
  expanded.params.alpha = base.params.alpha * alpha;
  expanded.disjoint_count = base.disjoint_count;
  expanded.x.resize(base.x.size());
  expanded.y.resize(base.y.size());
  for (size_t i = 0; i < base.x.size(); ++i) {
    for (int copy = 0; copy < alpha; ++copy) {
      expanded.x[i].insert(expanded.x[i].end(), base.x[i].begin(),
                           base.x[i].end());
      expanded.y[i].insert(expanded.y[i].end(), base.y[i].begin(),
                           base.y[i].end());
    }
  }
  return expanded;
}

std::vector<uint8_t> ConcatenateStrings(
    const std::vector<std::vector<uint8_t>>& strings) {
  std::vector<uint8_t> result;
  for (const auto& s : strings) {
    result.insert(result.end(), s.begin(), s.end());
  }
  return result;
}

Message TwoSumTrivialEncode(const std::vector<std::vector<uint8_t>>& x) {
  BitWriter writer;
  for (const auto& s : x) {
    for (uint8_t bit : s) writer.WriteBit(bit ? 1 : 0);
  }
  return SealMessage(writer);
}

int TwoSumTrivialDecode(const Message& message, const TwoSumParams& params,
                        const std::vector<std::vector<uint8_t>>& y) {
  DCS_CHECK_EQ(static_cast<int>(y.size()), params.num_pairs);
  BitReader reader = OpenMessage(message);
  int disjoint = 0;
  for (int i = 0; i < params.num_pairs; ++i) {
    bool intersects = false;
    for (int j = 0; j < params.string_length; ++j) {
      const int bit = reader.ReadBit();
      if (bit && y[static_cast<size_t>(i)][static_cast<size_t>(j)]) {
        intersects = true;
      }
    }
    if (!intersects) ++disjoint;
  }
  return disjoint;
}

}  // namespace dcs
