#include "comm/index_problem.h"

namespace dcs {

IndexInstance SampleIndexInstance(int64_t length, Rng& rng) {
  DCS_CHECK_GE(length, 1);
  IndexInstance instance;
  instance.s = rng.RandomSignString(static_cast<int>(length));
  instance.index = static_cast<int64_t>(
      rng.UniformInt(static_cast<uint64_t>(length)));
  return instance;
}

Message IndexTrivialEncode(const std::vector<int8_t>& s) {
  BitWriter writer;
  for (int8_t sign : s) writer.WriteBit(sign > 0 ? 1 : 0);
  return SealMessage(writer);
}

int8_t IndexTrivialDecode(const Message& message, int64_t index) {
  DCS_CHECK_GE(index, 0);
  DCS_CHECK_LT(index, message.bit_count);
  BitReader reader = OpenMessage(message);
  for (int64_t i = 0; i < index; ++i) reader.ReadBit();
  return reader.ReadBit() ? 1 : -1;
}

}  // namespace dcs
