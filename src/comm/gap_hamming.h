// The distributional h-fold Gap-Hamming problem (Lemma 4.1, [ACK+16]).
//
// Alice holds h strings s_1..s_h ∈ {0,1}^(1/ε²), each of Hamming weight
// 1/(2ε²). Bob holds an index i and a string t of the same weight, with
// Δ(s_i, t) promised to be ≥ 1/(2ε²) + c/ε ("far") or ≤ 1/(2ε²) − c/ε
// ("close"), each with probability 1/2. Any one-way protocol that lets Bob
// decide which case holds with probability ≥ 2/3 needs Ω(h/ε²) bits.
//
// The for-all lower-bound construction (Section 4) encodes these strings
// into forward edge weights {1, 2}; this module provides the instance
// distribution and the trivial exact protocol.

#ifndef DCS_COMM_GAP_HAMMING_H_
#define DCS_COMM_GAP_HAMMING_H_

#include <cstdint>
#include <vector>

#include "comm/message.h"
#include "util/random.h"

namespace dcs {

// Parameters of the distribution.
struct GapHammingParams {
  int num_strings = 1;    // h
  int string_length = 4;  // 1/ε² (must be even; weight is length/2)
  double gap_c = 0.5;     // the constant c in the ±c/ε gap
};

// One sampled instance.
struct GapHammingInstance {
  GapHammingParams params;
  std::vector<std::vector<uint8_t>> s;  // Alice's h strings
  int index = 0;                        // Bob's index i
  std::vector<uint8_t> t;               // Bob's string
  bool is_far = false;                  // true iff Δ(s_i, t) is in the high tail
};

// Hamming distance between equal-length binary strings.
int HammingDistance(const std::vector<uint8_t>& a,
                    const std::vector<uint8_t>& b);

// Samples an instance. The (s_i, t) pair is drawn by rejection sampling
// conditioned on the promised gap; `is_far` records the drawn case.
// Requires string_length even and gap_c·sqrt(string_length) ≥ 1 reachable
// (always true for the parameters used here).
GapHammingInstance SampleGapHammingInstance(const GapHammingParams& params,
                                            Rng& rng);

// Trivial protocol: Alice sends all h strings verbatim (h·length bits).
Message GapHammingTrivialEncode(
    const std::vector<std::vector<uint8_t>>& strings);

// Bob decides "far" (true) or "close" (false) exactly from the trivial
// message.
bool GapHammingTrivialDecode(const Message& message,
                             const GapHammingParams& params, int index,
                             const std::vector<uint8_t>& t);

}  // namespace dcs

#endif  // DCS_COMM_GAP_HAMMING_H_
