// The Index problem (Lemma 3.1, [KNR01]).
//
// Alice holds a uniformly random sign string s ∈ {−1,+1}^n; Bob holds a
// uniformly random index i and must recover s_i from a single message.
// Any protocol succeeding with probability ≥ 2/3 needs Ω(n) bits.
//
// This module provides the instance distribution and the trivial optimal
// protocol (send s verbatim: n bits), which the for-each lower-bound
// experiment compares sketch-based protocols against.

#ifndef DCS_COMM_INDEX_PROBLEM_H_
#define DCS_COMM_INDEX_PROBLEM_H_

#include <cstdint>
#include <vector>

#include "comm/message.h"
#include "util/random.h"

namespace dcs {

// One sampled Index instance.
struct IndexInstance {
  std::vector<int8_t> s;  // Alice's ±1 string
  int64_t index = 0;      // Bob's index into s
};

// Samples an instance with |s| = length.
IndexInstance SampleIndexInstance(int64_t length, Rng& rng);

// The trivial protocol: Alice sends all of s (1 bit per sign).
Message IndexTrivialEncode(const std::vector<int8_t>& s);

// Bob's side of the trivial protocol.
int8_t IndexTrivialDecode(const Message& message, int64_t index);

}  // namespace dcs

#endif  // DCS_COMM_INDEX_PROBLEM_H_
