#include "comm/channel.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/bitio.h"
#include "util/metrics.h"

namespace dcs {
namespace {

// Frame magic, distinct from the serialization envelope's 0xD5CE so a frame
// stream misfed to a sketch deserializer (or vice versa) is rejected at the
// first header field.
constexpr uint64_t kFrameMagic = 0xFA5C;

// Caps on header-declared counts, enforced before any allocation: a
// corrupted length field must never drive a huge reserve.
constexpr uint64_t kMaxChunks = uint64_t{1} << 32;
constexpr uint64_t kMaxMessageBits = uint64_t{1} << 48;

uint32_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint32_t hash = 2166136261u;
  for (uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 16777619u;
  }
  return hash;
}

}  // namespace

void ChannelOptions::Check() const {
  auto check_rate = [](double rate) {
    DCS_CHECK_GE(rate, 0.0);
    DCS_CHECK_LE(rate, 1.0);
  };
  check_rate(drop_rate);
  check_rate(flip_rate);
  check_rate(truncate_rate);
  check_rate(duplicate_rate);
  check_rate(reorder_rate);
  DCS_CHECK_GE(chunk_payload_bits, 1);
  DCS_CHECK_GE(max_rounds, 1);
  DCS_CHECK_GE(backoff_cap, 1);
  check_rate(backoff_jitter);
}

void ChannelStats::MergeFrom(const ChannelStats& other) {
  frames_sent += other.frames_sent;
  frames_delivered += other.frames_delivered;
  frames_dropped += other.frames_dropped;
  frames_flipped += other.frames_flipped;
  frames_truncated += other.frames_truncated;
  frames_duplicated += other.frames_duplicated;
  frames_reordered += other.frames_reordered;
  frames_rejected += other.frames_rejected;
  retransmitted_frames += other.retransmitted_frames;
  wire_bits += other.wire_bits;
  retransmitted_bits += other.retransmitted_bits;
  ack_bits += other.ack_bits;
  backoff_units += other.backoff_units;
  rounds += other.rounds;
  transfers += other.transfers;
  transfers_recovered += other.transfers_recovered;
  transfers_expired += other.transfers_expired;
}

void WriteChannelFrame(int64_t seq, int64_t total_chunks, int64_t message_bits,
                       const std::vector<uint8_t>& payload,
                       int64_t payload_bits, BitWriter& out) {
  DCS_CHECK_GE(seq, 0);
  DCS_CHECK_LT(seq, total_chunks);
  DCS_CHECK_GE(payload_bits, 0);
  DCS_CHECK_EQ(static_cast<int64_t>(payload.size()), (payload_bits + 7) / 8);
  out.WriteBits(kFrameMagic, 16);
  out.WriteEliasGamma(static_cast<uint64_t>(seq));
  out.WriteEliasGamma(static_cast<uint64_t>(total_chunks));
  out.WriteEliasGamma(static_cast<uint64_t>(message_bits));
  out.WriteEliasGamma(static_cast<uint64_t>(payload_bits));
  out.WriteBits(Fnv1a(payload), 32);
  out.AppendBits(payload, payload_bits);
}

StatusOr<ParsedChannelFrame> TryParseChannelFrame(BitReader& reader) {
  DCS_ASSIGN_OR_RETURN(const uint64_t magic, reader.TryReadBits(16));
  if (magic != kFrameMagic) {
    return DataLossError("bad channel frame magic");
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t seq, reader.TryReadEliasGamma());
  DCS_ASSIGN_OR_RETURN(const uint64_t total, reader.TryReadEliasGamma());
  if (total == 0 || total > kMaxChunks || seq >= total) {
    return DataLossError("channel frame sequence " + std::to_string(seq) +
                         " of " + std::to_string(total) + " is invalid");
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t message_bits,
                       reader.TryReadEliasGamma());
  if (message_bits > kMaxMessageBits) {
    return DataLossError("channel frame declares an absurd message size");
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t payload_bits,
                       reader.TryReadEliasGamma());
  if (reader.RemainingBits() < 32 ||
      payload_bits > static_cast<uint64_t>(reader.RemainingBits() - 32)) {
    return DataLossError("channel frame declares " +
                         std::to_string(payload_bits) +
                         " payload bits but the stream is shorter");
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t checksum, reader.TryReadBits(32));
  ParsedChannelFrame frame;
  frame.seq = static_cast<int64_t>(seq);
  frame.total_chunks = static_cast<int64_t>(total);
  frame.message_bits = static_cast<int64_t>(message_bits);
  frame.payload_bits = static_cast<int64_t>(payload_bits);
  frame.payload.assign(static_cast<size_t>((payload_bits + 7) / 8), 0);
  for (uint64_t bit = 0; bit < payload_bits; ++bit) {
    DCS_ASSIGN_OR_RETURN(const int value, reader.TryReadBit());
    if (value) {
      frame.payload[static_cast<size_t>(bit >> 3)] |=
          static_cast<uint8_t>(1u << (bit & 7));
    }
  }
  if (Fnv1a(frame.payload) != checksum) {
    return DataLossError("channel frame checksum mismatch");
  }
  return frame;
}

LossyChannel::LossyChannel(const ChannelOptions& options)
    : options_(options), rng_(options.seed) {
  options_.Check();
}

std::vector<Frame> LossyChannel::TransmitRound(
    const std::vector<Frame>& frames) {
  std::vector<Frame> arrived;
  arrived.reserve(frames.size());
  for (const Frame& frame : frames) {
    ++stats_.frames_sent;
    stats_.wire_bits += frame.bit_count;
    if (rng_.Bernoulli(options_.drop_rate)) {
      ++stats_.frames_dropped;
      continue;
    }
    Frame delivered = frame;
    if (delivered.bit_count > 0 && rng_.Bernoulli(options_.flip_rate)) {
      const uint64_t bit =
          rng_.UniformInt(static_cast<uint64_t>(delivered.bit_count));
      delivered.bytes[static_cast<size_t>(bit >> 3)] ^=
          static_cast<uint8_t>(1u << (bit & 7));
      ++stats_.frames_flipped;
    }
    if (delivered.bit_count > 0 && rng_.Bernoulli(options_.truncate_rate)) {
      const int64_t keep = static_cast<int64_t>(
          rng_.UniformInt(static_cast<uint64_t>(delivered.bit_count)));
      delivered.bytes.resize(static_cast<size_t>((keep + 7) / 8));
      if (keep % 8 != 0 && !delivered.bytes.empty()) {
        // Zero the padding past the new length, as a writer would have.
        delivered.bytes.back() &=
            static_cast<uint8_t>((1u << (keep % 8)) - 1u);
      }
      delivered.bit_count = keep;
      ++stats_.frames_truncated;
    }
    const bool duplicate = rng_.Bernoulli(options_.duplicate_rate);
    ++stats_.frames_delivered;
    arrived.push_back(delivered);
    if (duplicate) {
      ++stats_.frames_duplicated;
      ++stats_.frames_delivered;
      // The duplicate traveled the wire too.
      stats_.wire_bits += delivered.bit_count;
      arrived.push_back(std::move(delivered));
    }
  }
  // In-flight reordering: adjacent survivors swap independently, so a batch
  // can arrive in any nearby permutation (the multi-server case).
  for (size_t i = 1; i < arrived.size(); ++i) {
    if (rng_.Bernoulli(options_.reorder_rate)) {
      std::swap(arrived[i - 1], arrived[i]);
      ++stats_.frames_reordered;
    }
  }
  return arrived;
}

ReliableLink::ReliableLink(const ChannelOptions& options)
    : options_(options),
      channel_(options),
      // A derived stream keeps jitter draws off the channel's fault script:
      // the same seed replays identical faults whether or not jitter is on.
      jitter_rng_(SubtaskSeed(options.seed, 0xBACC0FFull)) {
  options_.Check();
}

StatusOr<Message> ReliableLink::Transfer(const Message& message) {
  DCS_CHECK_EQ(static_cast<int64_t>(message.bytes.size()),
               (message.bit_count + 7) / 8);
  ChannelStats& stats = channel_.mutable_stats();
  const ChannelStats before = stats;
  ++stats.transfers;

  const int64_t chunk_bits = options_.chunk_payload_bits;
  const int64_t total_chunks =
      std::max<int64_t>(1, (message.bit_count + chunk_bits - 1) / chunk_bits);

  // Sender-side chunk payloads (packed bytes + exact bit count each).
  std::vector<Frame> chunks(static_cast<size_t>(total_chunks));
  for (int64_t seq = 0; seq < total_chunks; ++seq) {
    const int64_t begin = seq * chunk_bits;
    const int64_t bits =
        std::min<int64_t>(chunk_bits, message.bit_count - begin);
    BitWriter payload;
    for (int64_t b = 0; b < bits; ++b) {
      const int64_t bit = begin + b;
      payload.WriteBit((message.bytes[static_cast<size_t>(bit >> 3)] >>
                        (bit & 7)) &
                       1);
    }
    chunks[static_cast<size_t>(seq)] =
        Frame{payload.bytes(), payload.bit_count()};
  }

  std::vector<std::optional<Frame>> received(
      static_cast<size_t>(total_chunks));
  std::vector<int> attempts(static_cast<size_t>(total_chunks), 0);
  int64_t received_count = 0;
  int rounds_used = 0;
  for (int round = 0; round < options_.max_rounds && received_count < total_chunks;
       ++round) {
    rounds_used = round + 1;
    if (round > 0) {
      // Capped exponential backoff between retransmission rounds. Simulated
      // time: the units are counted (and surfaced in the histogram), not
      // slept, so chaos sweeps stay fast and deterministic.
      int64_t backoff = std::min<int64_t>(
          int64_t{1} << std::min(round - 1, 62), options_.backoff_cap);
      if (options_.backoff_jitter > 0 && backoff > 1) {
        // Equal-jitter: uniform in [(1-jitter)*b, b]. The floor keeps at
        // least one unit of wait so retransmission is never a hot spin.
        const int64_t floor = std::max<int64_t>(
            1, static_cast<int64_t>(
                   static_cast<double>(backoff) *
                   (1.0 - options_.backoff_jitter)));
        backoff = floor + static_cast<int64_t>(jitter_rng_.UniformInt(
                              static_cast<uint64_t>(backoff - floor + 1)));
      }
      stats.backoff_units += backoff;
      DCS_METRIC_RECORD("comm.channel.backoff", backoff);
    }
    std::vector<Frame> batch;
    std::vector<int64_t> batch_seqs;
    for (int64_t seq = 0; seq < total_chunks; ++seq) {
      if (received[static_cast<size_t>(seq)].has_value()) continue;
      const Frame& chunk = chunks[static_cast<size_t>(seq)];
      BitWriter framed;
      WriteChannelFrame(seq, total_chunks, message.bit_count, chunk.bytes,
                        chunk.bit_count, framed);
      if (attempts[static_cast<size_t>(seq)] > 0) {
        ++stats.retransmitted_frames;
        stats.retransmitted_bits += framed.bit_count();
      }
      ++attempts[static_cast<size_t>(seq)];
      batch.push_back(Frame{framed.bytes(), framed.bit_count()});
      batch_seqs.push_back(seq);
    }
    const std::vector<Frame> arrived = channel_.TransmitRound(batch);
    for (const Frame& frame : arrived) {
      BitReader reader(frame.bytes);
      auto parsed = TryParseChannelFrame(reader);
      if (!parsed.ok() || parsed->total_chunks != total_chunks ||
          parsed->message_bits != message.bit_count) {
        ++stats.frames_rejected;  // NACKed: retransmitted next round
        continue;
      }
      auto& slot = received[static_cast<size_t>(parsed->seq)];
      if (slot.has_value()) continue;  // duplicate of an ACKed chunk
      slot = Frame{std::move(parsed->payload), parsed->payload_bits};
      ++received_count;
    }
    // Cumulative ACK bitmap for the round: one bit per chunk, billed to the
    // transcript like everything else on the wire.
    stats.ack_bits += total_chunks;
    stats.wire_bits += total_chunks;
  }
  stats.rounds += rounds_used;
  DCS_METRIC_RECORD("comm.channel.rounds", rounds_used);

  Status result_status = OkStatus();
  Message delivered;
  if (received_count < total_chunks) {
    ++stats.transfers_expired;
    // "transport deadline:" marks this as a wire-level retry-budget failure,
    // distinct from a peer *application* error relayed in a Status payload —
    // failover logic keys on the difference (DESIGN.md §14).
    result_status = DeadlineExceededError(
        "transport deadline: reliable link gave up after " +
        std::to_string(rounds_used) +
        " rounds with " + std::to_string(total_chunks - received_count) +
        " of " + std::to_string(total_chunks) + " chunks undelivered");
  } else {
    BitWriter out;
    for (const auto& slot : received) {
      out.AppendBits(slot->bytes, slot->bit_count);
    }
    if (out.bit_count() != message.bit_count) {
      // Unreachable given per-frame checksums; kept as a value, not CHECK,
      // because the receiver treats the wire as hostile end to end.
      result_status = DataLossError("reassembled message has wrong length");
    } else {
      ++stats.transfers_recovered;
      delivered = Message{out.bytes(), out.bit_count()};
    }
  }

  // Flush this transfer's deltas to the process-wide registry.
  const ChannelStats& s = stats;
  DCS_METRIC_ADD("comm.channel.frame.sent", s.frames_sent - before.frames_sent);
  DCS_METRIC_ADD("comm.channel.frame.dropped",
                 s.frames_dropped - before.frames_dropped);
  DCS_METRIC_ADD("comm.channel.frame.flipped",
                 s.frames_flipped - before.frames_flipped);
  DCS_METRIC_ADD("comm.channel.frame.truncated",
                 s.frames_truncated - before.frames_truncated);
  DCS_METRIC_ADD("comm.channel.frame.duplicated",
                 s.frames_duplicated - before.frames_duplicated);
  DCS_METRIC_ADD("comm.channel.frame.reordered",
                 s.frames_reordered - before.frames_reordered);
  DCS_METRIC_ADD("comm.channel.frame.rejected",
                 s.frames_rejected - before.frames_rejected);
  DCS_METRIC_ADD("comm.channel.frame.retransmitted",
                 s.retransmitted_frames - before.retransmitted_frames);
  DCS_METRIC_ADD("comm.channel.wire_bits", s.wire_bits - before.wire_bits);
  DCS_METRIC_ADD("comm.channel.retransmitted_bits",
                 s.retransmitted_bits - before.retransmitted_bits);
  DCS_METRIC_INC("comm.channel.transfer.started");
  if (result_status.ok()) {
    DCS_METRIC_INC("comm.channel.transfer.recovered");
  } else {
    DCS_METRIC_INC("comm.channel.transfer.expired");
  }

  if (!result_status.ok()) return result_status;
  return delivered;
}

}  // namespace dcs
