// The 2-SUM(t, L, α) problem (Definitions 5.1/5.2, [WZ14]).
//
// Alice holds t binary strings X^1..X^t of length L; Bob holds Y^1..Y^t.
// Every pair satisfies INT(X^i, Y^i) ∈ {0, α}, and at least a 1/1000
// fraction intersect. The players must approximate Σ_i DISJ(X^i, Y^i) to
// additive error √t. Expected communication is Ω(tL/α) (Theorem 5.4, via
// the α-fold concatenation reduction from 2-SUM(t, L/α, 1)).
//
// The min-cut query lower bound (Theorem 1.3) reduces this problem to
// estimating MINCUT(G_{x,y}) where x, y are the concatenations of Alice's
// and Bob's strings (see src/lowerbound/twosum_graph.h).

#ifndef DCS_COMM_TWO_SUM_H_
#define DCS_COMM_TWO_SUM_H_

#include <cstdint>
#include <vector>

#include "comm/message.h"
#include "util/random.h"

namespace dcs {

// INT(x, y) = #indices where both strings are 1. Requires equal lengths.
int IntersectionCount(const std::vector<uint8_t>& x,
                      const std::vector<uint8_t>& y);

// DISJ(x, y) = 1 if INT(x, y) == 0, else 0.
int Disjointness(const std::vector<uint8_t>& x,
                 const std::vector<uint8_t>& y);

// Parameters of a 2-SUM instance.
struct TwoSumParams {
  int num_pairs = 1;        // t
  int string_length = 16;   // L
  int alpha = 1;            // promised intersection size when nonzero
  // Fraction of pairs forced to intersect (>= 1/1000 per Definition 5.2).
  double intersect_fraction = 0.5;
};

// One sampled instance.
struct TwoSumInstance {
  TwoSumParams params;
  std::vector<std::vector<uint8_t>> x;  // Alice's strings
  std::vector<std::vector<uint8_t>> y;  // Bob's strings
  // Ground truth Σ_i DISJ(X^i, Y^i).
  int disjoint_count = 0;
};

// Samples an instance: each pair intersects (in exactly alpha positions)
// with probability intersect_fraction, re-drawn until at least
// num_pairs/1000 pairs intersect. Requires alpha >= 1 and
// 2*alpha <= string_length (so supports can be made disjoint elsewhere).
TwoSumInstance SampleTwoSumInstance(const TwoSumParams& params, Rng& rng);

// The Theorem 5.4 reduction: expands a 2-SUM(t, L, 1) instance into a
// 2-SUM(t, α·L, α) instance by concatenating α copies of every string.
TwoSumInstance ConcatenateAlphaCopies(const TwoSumInstance& base, int alpha);

// Concatenates all of a player's strings into one long string (the x and y
// fed to the G_{x,y} construction).
std::vector<uint8_t> ConcatenateStrings(
    const std::vector<std::vector<uint8_t>>& strings);

// The trivial exact protocol: Alice ships all t·L bits; Bob computes
// Σ DISJ exactly. The t·L transcript is the baseline the Ω(tL/α) bound of
// Theorem 5.4 (and the min-cut reduction's shorter transcript) is read
// against.
Message TwoSumTrivialEncode(const std::vector<std::vector<uint8_t>>& x);
int TwoSumTrivialDecode(const Message& message, const TwoSumParams& params,
                        const std::vector<std::vector<uint8_t>>& y);

}  // namespace dcs

#endif  // DCS_COMM_TWO_SUM_H_
