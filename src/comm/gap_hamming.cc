#include "comm/gap_hamming.h"

#include <cmath>

namespace dcs {

int HammingDistance(const std::vector<uint8_t>& a,
                    const std::vector<uint8_t>& b) {
  DCS_CHECK_EQ(a.size(), b.size());
  int distance = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if ((a[i] != 0) != (b[i] != 0)) ++distance;
  }
  return distance;
}

GapHammingInstance SampleGapHammingInstance(const GapHammingParams& params,
                                            Rng& rng) {
  DCS_CHECK_GE(params.num_strings, 1);
  DCS_CHECK_GE(params.string_length, 2);
  DCS_CHECK_EQ(params.string_length % 2, 0);
  DCS_CHECK_GT(params.gap_c, 0);
  const int length = params.string_length;
  const int weight = length / 2;
  // length plays the role of 1/ε², so 1/ε = sqrt(length).
  const double gap = params.gap_c * std::sqrt(static_cast<double>(length));

  GapHammingInstance instance;
  instance.params = params;
  instance.index = static_cast<int>(
      rng.UniformInt(static_cast<uint64_t>(params.num_strings)));
  instance.is_far = rng.Bernoulli(0.5);
  instance.s.resize(static_cast<size_t>(params.num_strings));
  for (int i = 0; i < params.num_strings; ++i) {
    instance.s[static_cast<size_t>(i)] =
        rng.RandomBinaryStringWithWeight(length, weight);
  }
  // Rejection-sample (s_index, t) conditioned on the promised tail. The
  // Hamming distance of two random weight-L/2 strings concentrates at L/2
  // with Θ(√L) standard deviation, so for moderate gap_c each tail has
  // constant mass and this loop is short.
  const double high_threshold = length / 2.0 + gap;
  const double low_threshold = length / 2.0 - gap;
  int guard = 0;
  while (true) {
    DCS_CHECK_LT(++guard, 1000000);
    instance.s[static_cast<size_t>(instance.index)] =
        rng.RandomBinaryStringWithWeight(length, weight);
    instance.t = rng.RandomBinaryStringWithWeight(length, weight);
    const int distance = HammingDistance(
        instance.s[static_cast<size_t>(instance.index)], instance.t);
    if (instance.is_far && distance >= high_threshold) break;
    if (!instance.is_far && distance <= low_threshold) break;
  }
  return instance;
}

Message GapHammingTrivialEncode(
    const std::vector<std::vector<uint8_t>>& strings) {
  BitWriter writer;
  for (const auto& s : strings) {
    for (uint8_t bit : s) writer.WriteBit(bit ? 1 : 0);
  }
  return SealMessage(writer);
}

bool GapHammingTrivialDecode(const Message& message,
                             const GapHammingParams& params, int index,
                             const std::vector<uint8_t>& t) {
  DCS_CHECK_GE(index, 0);
  DCS_CHECK_LT(index, params.num_strings);
  DCS_CHECK_EQ(static_cast<int>(t.size()), params.string_length);
  BitReader reader = OpenMessage(message);
  const int64_t skip =
      static_cast<int64_t>(index) * params.string_length;
  for (int64_t i = 0; i < skip; ++i) reader.ReadBit();
  std::vector<uint8_t> s(static_cast<size_t>(params.string_length));
  for (int i = 0; i < params.string_length; ++i) {
    s[static_cast<size_t>(i)] = static_cast<uint8_t>(reader.ReadBit());
  }
  return HammingDistance(s, t) >= params.string_length / 2;
}

}  // namespace dcs
