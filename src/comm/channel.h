// Deterministic lossy-channel simulation with reliable delivery on top.
//
// The paper's theorems bound *transcript bits*; a perfectly reliable byte
// vector (message.h) realizes that transcript, but says nothing about what
// the reductions cost when the wire misbehaves. This layer makes failure a
// first-class, replayable experiment:
//
//  * LossyChannel applies a seed-deterministic fault script to every frame
//    placed on the wire — per-frame drop, single-bit corruption,
//    truncation, duplication, and (for batched sends) reordering. The same
//    ChannelOptions::seed replays the identical fault sequence, so chaos
//    runs are reproducible bit for bit, including their metrics.
//  * ReliableLink transfers a Message over a LossyChannel as framed chunks
//    reusing the PR 2 checksummed-envelope idiom (magic / sequence /
//    length / FNV-1a), with NACK-driven retransmission rounds under capped
//    exponential backoff and a per-transfer deadline budget. On success the
//    delivered Message is bit-identical to the input; past the deadline the
//    transfer fails cleanly with kDeadlineExceeded.
//
// Accounting rule (DESIGN.md §9): every bit placed on the wire — framing,
// ACK traffic, and *retransmissions* — is counted in ChannelStats, and the
// protocol runners add it to their measured transcript. The theorems'
// quantity stays honest under faults: recovery is never free.
//
// Instrumented as comm.channel.* (drops/flips/truncations/duplicates/
// reorders/retransmits counters, backoff + rounds histograms).

#ifndef DCS_COMM_CHANNEL_H_
#define DCS_COMM_CHANNEL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "comm/message.h"
#include "util/random.h"
#include "util/status.h"

namespace dcs {

// The fault script and retransmission policy for one simulated link.
// Defaults describe a perfect wire (no faults) with framing still applied,
// so a fault-free channel run exercises the full chunking/ACK machinery.
struct ChannelOptions {
  uint64_t seed = 0;            // replays the exact fault sequence
  double drop_rate = 0;         // P[frame vanishes]
  double flip_rate = 0;         // P[one uniformly chosen bit flips]
  double truncate_rate = 0;     // P[frame is cut at a uniform bit length]
  double duplicate_rate = 0;    // P[frame arrives twice]
  double reorder_rate = 0;      // P[adjacent in-flight frames swap]
  int chunk_payload_bits = 2048;  // frame payload size (last chunk shorter)
  int max_rounds = 10;            // retransmission rounds before deadline
  int64_t backoff_cap = 64;       // cap on per-round exponential backoff
  // Fraction of each capped backoff randomized away (equal-jitter): round r
  // waits a deterministic seed-derived value in [(1-jitter)*b, b] where b
  // is the capped exponential base. 0 keeps the historical fixed schedule;
  // 1 allows full decorrelation. Jitter draws come from a dedicated stream
  // (SubtaskSeed of `seed`), so enabling it never perturbs the fault
  // script replayed by the channel itself.
  double backoff_jitter = 0;

  // True if any fault can ever fire.
  bool any_faults() const {
    return drop_rate > 0 || flip_rate > 0 || truncate_rate > 0 ||
           duplicate_rate > 0 || reorder_rate > 0;
  }

  // CHECK-fails on rates outside [0, 1] or non-positive budgets.
  void Check() const;
};

// Exact per-link accounting. Wire bits include framing headers, ACK
// bitmaps, and every retransmission; retransmitted_bits is the subset of
// wire bits spent beyond each frame's first attempt.
struct ChannelStats {
  int64_t frames_sent = 0;        // transmission attempts, incl. retransmits
  int64_t frames_delivered = 0;   // frames that arrived and validated
  int64_t frames_dropped = 0;
  int64_t frames_flipped = 0;
  int64_t frames_truncated = 0;
  int64_t frames_duplicated = 0;
  int64_t frames_reordered = 0;
  int64_t frames_rejected = 0;    // arrived but failed frame validation
  int64_t retransmitted_frames = 0;
  int64_t wire_bits = 0;          // every bit on the wire (frames + ACKs)
  int64_t retransmitted_bits = 0;
  int64_t ack_bits = 0;
  int64_t backoff_units = 0;      // sum of capped exponential backoffs
  int64_t rounds = 0;             // retransmission rounds used
  int64_t transfers = 0;
  int64_t transfers_recovered = 0;
  int64_t transfers_expired = 0;  // deadline exceeded

  void MergeFrom(const ChannelStats& other);
};

// A frame in flight: packed bytes plus the exact bit length (frames reuse
// the Message layout but are a distinct concept: one chunk of a transfer).
using Frame = Message;

// Frame wire format helpers, exposed for the corruption harness: header
// (magic 16 / seq / total chunks / total message bits / payload bits, the
// counts Elias-gamma) + FNV-1a payload checksum (32) + payload bits.
void WriteChannelFrame(int64_t seq, int64_t total_chunks,
                       int64_t message_bits, const std::vector<uint8_t>& payload,
                       int64_t payload_bits, BitWriter& out);

// One validated frame. Parsing treats the bytes as hostile (Try* reads,
// length caps before allocation, checksum) and returns kDataLoss on any
// mutation — never aborts, hangs, or over-allocates.
struct ParsedChannelFrame {
  int64_t seq = 0;
  int64_t total_chunks = 0;
  int64_t message_bits = 0;
  std::vector<uint8_t> payload;
  int64_t payload_bits = 0;
};
StatusOr<ParsedChannelFrame> TryParseChannelFrame(BitReader& reader);

// The unreliable wire. Deterministic in (options.seed, sequence of calls):
// replaying the same frames through a channel with the same seed yields
// byte-identical deliveries and identical stats.
class LossyChannel {
 public:
  explicit LossyChannel(const ChannelOptions& options);

  // Applies the fault script to a batch of frames sent in one round and
  // returns what arrives, in delivery order (duplicates appended, adjacent
  // survivors possibly swapped). Every attempted frame is billed to
  // wire_bits whether or not it arrives — the sender paid for it.
  std::vector<Frame> TransmitRound(const std::vector<Frame>& frames);

  const ChannelOptions& options() const { return options_; }
  const ChannelStats& stats() const { return stats_; }
  ChannelStats& mutable_stats() { return stats_; }

 private:
  ChannelOptions options_;
  Rng rng_;
  ChannelStats stats_;
};

// Reliable delivery over a LossyChannel: chunking, per-frame checksums,
// NACK retransmission rounds with capped exponential backoff, and a
// deadline budget of max_rounds. One ReliableLink simulates one directed
// sender→receiver pair; construct a fresh link (with a derived seed) per
// logical connection.
class ReliableLink {
 public:
  explicit ReliableLink(const ChannelOptions& options);

  // Transfers `message`; on success the result is bit-identical to the
  // input. kDeadlineExceeded when max_rounds elapse with chunks missing —
  // stats() still reports everything spent on the failed attempt.
  StatusOr<Message> Transfer(const Message& message);

  const ChannelStats& stats() const { return channel_.stats(); }
  int64_t wire_bits() const { return channel_.stats().wire_bits; }

 private:
  ChannelOptions options_;
  LossyChannel channel_;
  Rng jitter_rng_;  // dedicated stream: jitter never shifts fault draws
};

}  // namespace dcs

#endif  // DCS_COMM_CHANNEL_H_
