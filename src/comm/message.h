// One-way communication messages with exact bit accounting.
//
// The paper's lower bounds all follow the same template: Alice encodes her
// input into a graph, sends Bob a sketch (the message), and Bob decodes.
// This header defines the message type those reductions exchange; the
// transcript length in bits is the quantity the theorems lower-bound.

#ifndef DCS_COMM_MESSAGE_H_
#define DCS_COMM_MESSAGE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/bitio.h"

namespace dcs {

// A finished one-way message: packed bytes plus the exact bit length.
struct Message {
  std::vector<uint8_t> bytes;
  int64_t bit_count = 0;
};

// Seals a BitWriter into a Message.
inline Message SealMessage(const BitWriter& writer) {
  return Message{writer.bytes(), writer.bit_count()};
}

// Opens a Message for reading. The message must outlive the reader.
inline BitReader OpenMessage(const Message& message) {
  return BitReader(message.bytes);
}

}  // namespace dcs

#endif  // DCS_COMM_MESSAGE_H_
