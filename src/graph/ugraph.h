// Weighted undirected multigraph.
//
// Substrate for the min-cut algorithms (Stoer–Wagner, Karger–Stein,
// Nagamochi–Ibaraki), the local query model, and the undirected halves of
// the sketch library.

#ifndef DCS_GRAPH_UGRAPH_H_
#define DCS_GRAPH_UGRAPH_H_

#include <vector>

#include "graph/types.h"

namespace dcs {

// A weighted undirected multigraph on vertices {0, ..., n−1}. Each edge is
// stored once with endpoints normalized so src <= dst (self-loops are
// rejected). Parallel edges are allowed.
class UndirectedGraph {
 public:
  explicit UndirectedGraph(int num_vertices);

  UndirectedGraph(const UndirectedGraph&) = default;
  UndirectedGraph& operator=(const UndirectedGraph&) = default;
  UndirectedGraph(UndirectedGraph&&) = default;
  UndirectedGraph& operator=(UndirectedGraph&&) = default;

  int num_vertices() const { return num_vertices_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  const std::vector<Edge>& edges() const { return edges_; }

  // Adds the undirected edge {u, v} with the given weight.
  // Requires u != v, both in range, weight >= 0.
  void AddEdge(VertexId u, VertexId v, double weight);

  // Total weight of all edges.
  double TotalWeight() const;

  // Weighted degree of v.
  double Degree(VertexId v) const;

  // Undirected cut value: total weight of edges with exactly one endpoint
  // in S. Requires side.size() == num_vertices().
  double CutWeight(const VertexSet& side) const;

  // Adds all edges of `other` into this graph. Vertex counts must match.
  void MergeFrom(const UndirectedGraph& other);

  // Incident edges of v (indices into edges()).
  const std::vector<int64_t>& IncidentEdgeIds(VertexId v) const;

  // Returns the same graph with every undirected edge replaced by two
  // opposite directed edges of the same weight (used when feeding an
  // undirected graph to directed algorithms such as Dinic).
  std::vector<Edge> AsDirectedEdges() const;

  // Forces the lazy adjacency index to be built now. The lazy build is not
  // thread-safe; call this before sharing a graph across threads so
  // concurrent IncidentEdgeIds/Degree calls only read immutable state.
  void BuildAdjacency() const { EnsureAdjacency(); }

 private:
  void EnsureAdjacency() const;

  int num_vertices_;
  std::vector<Edge> edges_;
  mutable bool adjacency_valid_ = false;
  mutable std::vector<std::vector<int64_t>> incident_edge_ids_;
};

}  // namespace dcs

#endif  // DCS_GRAPH_UGRAPH_H_
