// Shared graph vocabulary: vertex ids, weighted edges, vertex sets.

#ifndef DCS_GRAPH_TYPES_H_
#define DCS_GRAPH_TYPES_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace dcs {

// Vertices are dense integer ids in [0, n).
using VertexId = int;

// A weighted directed edge (for undirected graphs, an edge is stored once
// with src < dst by convention of UndirectedGraph).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  double weight = 1.0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst && a.weight == b.weight;
  }
};

// Characteristic vector of a vertex subset S ⊆ V: membership[v] != 0 iff
// v ∈ S. Kept as uint8_t (not vector<bool>) for cheap random access.
using VertexSet = std::vector<uint8_t>;

// Builds a VertexSet over n vertices containing exactly `members`.
inline VertexSet MakeVertexSet(int n, const std::vector<VertexId>& members) {
  VertexSet set(static_cast<size_t>(n), 0);
  for (VertexId v : members) {
    DCS_CHECK(v >= 0 && v < n);
    set[static_cast<size_t>(v)] = 1;
  }
  return set;
}

// Complement of a vertex set. Branch-free: `!x` normalizes any nonzero
// membership byte to 0 and zero to 1 without a conditional.
inline VertexSet ComplementSet(const VertexSet& set) {
  VertexSet complement(set.size());
  for (size_t i = 0; i < set.size(); ++i) {
    complement[i] = static_cast<uint8_t>(!set[i]);
  }
  return complement;
}

// Number of members. Branch-free accumulation of normalized membership bits.
inline int SetSize(const VertexSet& set) {
  int count = 0;
  for (uint8_t bit : set) count += static_cast<int>(bit != 0);
  return count;
}

// True if S is a proper nonempty subset (∅ ⊂ S ⊂ V), i.e. a valid cut side.
inline bool IsProperCutSide(const VertexSet& set) {
  const int size = SetSize(set);
  return size > 0 && size < static_cast<int>(set.size());
}

}  // namespace dcs

#endif  // DCS_GRAPH_TYPES_H_
