// Shared graph vocabulary: vertex ids, weighted edges, vertex sets.

#ifndef DCS_GRAPH_TYPES_H_
#define DCS_GRAPH_TYPES_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace dcs {

// Vertices are dense integer ids in [0, n).
using VertexId = int;

// A weighted directed edge (for undirected graphs, an edge is stored once
// with src < dst by convention of UndirectedGraph).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  double weight = 1.0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst && a.weight == b.weight;
  }
};

// Characteristic vector of a vertex subset S ⊆ V: membership[v] != 0 iff
// v ∈ S. Kept as uint8_t (not vector<bool>) for cheap random access.
using VertexSet = std::vector<uint8_t>;

// Builds a VertexSet over n vertices containing exactly `members`.
// Bounds-checked in every build mode (DCS_CHECK, not DCS_DCHECK): a member
// outside [0, n) aborts instead of writing out of range, and a negative n
// aborts instead of allocating a near-2^64-byte vector.
inline VertexSet MakeVertexSet(int n, const std::vector<VertexId>& members) {
  DCS_CHECK_GE(n, 0);
  VertexSet set(static_cast<size_t>(n), 0);
  for (VertexId v : members) {
    DCS_CHECK(v >= 0 && v < n);
    set[static_cast<size_t>(v)] = 1;
  }
  return set;
}

// Complement of a vertex set. Branch-free: `!x` normalizes any nonzero
// membership byte to 0 and zero to 1 without a conditional.
inline VertexSet ComplementSet(const VertexSet& set) {
  VertexSet complement(set.size());
  for (size_t i = 0; i < set.size(); ++i) {
    complement[i] = static_cast<uint8_t>(!set[i]);
  }
  return complement;
}

// Number of members. Branch-free accumulation of normalized membership
// bits, in 64 bits: a VertexSet's length is a size_t, so a 32-bit
// accumulator would wrap on sets beyond 2^31 vertices (and the serve-layer
// cache keys hash set cardinality alongside membership, so the count must
// be exact for every representable set).
inline int64_t SetSize(const VertexSet& set) {
  int64_t count = 0;
  for (uint8_t bit : set) count += static_cast<int64_t>(bit != 0);
  return count;
}

// True if S is a proper nonempty subset (∅ ⊂ S ⊂ V), i.e. a valid cut side.
inline bool IsProperCutSide(const VertexSet& set) {
  const int64_t size = SetSize(set);
  return size > 0 && size < static_cast<int64_t>(set.size());
}

}  // namespace dcs

#endif  // DCS_GRAPH_TYPES_H_
