#include "graph/zoo.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace dcs {
namespace {

// Adds the bidirected pair u→v weight `w`, v→u weight `w/beta` — the
// per-edge certificate idiom every family is built from.
void AddBalancedPair(DirectedGraph& graph, VertexId u, VertexId v, double w,
                     double beta) {
  graph.AddEdge(u, v, w);
  graph.AddEdge(v, u, w / beta);
}

// Preferential-attachment topology with every undirected attachment
// replaced by a balanced pair. The repeated-endpoint list makes
// degree-proportional sampling O(1), as in PreferentialAttachmentGraph.
DirectedGraph MakePowerLaw(int n, double beta, Rng& rng) {
  const int m = 3;  // attachments per new vertex
  DCS_CHECK_GE(n, m + 2);
  DirectedGraph graph(n);
  std::vector<VertexId> endpoints;
  for (int u = 0; u <= m; ++u) {
    for (int v = u + 1; v <= m; ++v) {
      AddBalancedPair(graph, u, v, 1.0, beta);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (int v = m + 1; v < n; ++v) {
    std::vector<VertexId> targets;
    int guard = 0;
    while (static_cast<int>(targets.size()) < m) {
      DCS_CHECK_LT(++guard, 100000);
      const VertexId pick = endpoints[static_cast<size_t>(
          rng.UniformInt(endpoints.size()))];
      bool duplicate = false;
      for (VertexId t : targets) duplicate = duplicate || t == pick;
      if (!duplicate) targets.push_back(pick);
    }
    for (VertexId t : targets) {
      AddBalancedPair(graph, v, t, 1.0, beta);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return graph;
}

// Union of `degree` random perfect matchings, each matching edge a
// balanced pair: 2·degree-regular with a uniform strength spectrum.
DirectedGraph MakeExpander(int n, double beta, Rng& rng) {
  const int degree = 4;
  DirectedGraph graph(n);
  std::vector<int> order(static_cast<size_t>(n));
  for (int d = 0; d < degree; ++d) {
    for (int v = 0; v < n; ++v) order[static_cast<size_t>(v)] = v;
    rng.Shuffle(order);
    for (int i = 0; i < n; i += 2) {
      AddBalancedPair(graph, order[static_cast<size_t>(i)],
                      order[static_cast<size_t>(i + 1)], 1.0, beta);
    }
  }
  return graph;
}

// Two random blobs joined by kCrossPairs balanced pairs A→B. Each blob
// carries a bidirected Hamiltonian backbone of weight kCrossPairs, so any
// cut splitting a blob crosses the backbone in ≥ 2 positions and pays
// ≥ 2·kCrossPairs/β — strictly more than the planted blob-separating cut
// w(B, A) = kCrossPairs/β. Hence the planted value is the global min cut
// regardless of the random internal pairs (they only add weight).
DirectedGraph MakePlantedCut(int n, double beta, Rng& rng,
                             double* planted_value, VertexSet* planted_side) {
  constexpr int kCrossPairs = 3;
  const int blob = n / 2;
  DCS_CHECK_GE(blob, kCrossPairs + 2);
  DirectedGraph graph(2 * blob);
  for (int b = 0; b < 2; ++b) {
    const int base = b * blob;
    for (int v = 0; v < blob; ++v) {
      AddBalancedPair(graph, base + v, base + (v + 1) % blob,
                      static_cast<double>(kCrossPairs), beta);
    }
    for (int u = 0; u < blob; ++u) {
      for (int v = u + 1; v < blob; ++v) {
        if (!rng.Bernoulli(0.4)) continue;
        const double w = 0.5 + rng.UniformDouble();
        AddBalancedPair(graph, base + u, base + v, w, beta);
      }
    }
  }
  for (int c = 0; c < kCrossPairs; ++c) {
    AddBalancedPair(graph, c, blob + c, 1.0, beta);
  }
  *planted_value = kCrossPairs / beta;
  planted_side->assign(static_cast<size_t>(2 * blob), 0);
  for (int v = blob; v < 2 * blob; ++v) {
    (*planted_side)[static_cast<size_t>(v)] = 1;
  }
  return graph;
}

// Two bidirected cliques joined by kBridges balanced pairs. Splitting a
// clique of size s crosses ≥ s−1 pairs (≥ (s−1)/β leaving weight), so with
// s−1 > kBridges the clique-separating cut w(B, A) = kBridges/β is the
// global min cut.
DirectedGraph MakeDumbbell(int n, double beta, double* planted_value,
                           VertexSet* planted_side) {
  constexpr int kBridges = 2;
  const int clique = n / 2;
  DCS_CHECK_GE(clique, kBridges + 2);
  DirectedGraph graph(2 * clique);
  for (int b = 0; b < 2; ++b) {
    const int base = b * clique;
    for (int u = 0; u < clique; ++u) {
      for (int v = u + 1; v < clique; ++v) {
        AddBalancedPair(graph, base + u, base + v, 1.0, beta);
      }
    }
  }
  for (int c = 0; c < kBridges; ++c) {
    AddBalancedPair(graph, c, clique + c, 1.0, beta);
  }
  *planted_value = kBridges / beta;
  planted_side->assign(static_cast<size_t>(2 * clique), 0);
  for (int v = clique; v < 2 * clique; ++v) {
    (*planted_side)[static_cast<size_t>(v)] = 1;
  }
  return graph;
}

// kLayers layers of equal width; consecutive layers (with wraparound) are
// complete bipartite with forward weight 1 and backward weight 1/β.
DirectedGraph MakeLayeredBipartite(int n, double beta) {
  constexpr int kLayers = 4;
  const int width = n / kLayers;
  DCS_CHECK_GE(width, 2);
  DirectedGraph graph(kLayers * width);
  for (int layer = 0; layer < kLayers; ++layer) {
    const int next_base = ((layer + 1) % kLayers) * width;
    const int base = layer * width;
    for (int u = 0; u < width; ++u) {
      for (int v = 0; v < width; ++v) {
        AddBalancedPair(graph, base + u, next_base + v, 1.0, beta);
      }
    }
  }
  return graph;
}

}  // namespace

const char* ZooFamilyName(ZooFamily family) {
  switch (family) {
    case ZooFamily::kPowerLaw:
      return "power_law";
    case ZooFamily::kExpander:
      return "expander";
    case ZooFamily::kPlantedCut:
      return "planted_cut";
    case ZooFamily::kDumbbell:
      return "dumbbell";
    case ZooFamily::kLayeredBipartite:
      return "layered_bipartite";
  }
  return "unknown";
}

std::optional<ZooFamily> FindZooFamily(const std::string& name) {
  for (const ZooFamily family : AllZooFamilies()) {
    if (name == ZooFamilyName(family)) return family;
  }
  return std::nullopt;
}

const std::vector<ZooFamily>& AllZooFamilies() {
  static const std::vector<ZooFamily> kAll = {
      ZooFamily::kPowerLaw, ZooFamily::kExpander, ZooFamily::kPlantedCut,
      ZooFamily::kDumbbell, ZooFamily::kLayeredBipartite};
  return kAll;
}

ZooInstance MakeZooInstance(ZooFamily family, const ZooOptions& options) {
  DCS_CHECK_GE(options.n, 8);
  DCS_CHECK_GE(options.beta, 1.0);
  // Families with width/parity constraints round n down to a multiple of 4
  // so sweeps can hand every family the same target size.
  const int n4 = (options.n / 4) * 4;
  // Decorrelate families sharing a base seed, same discipline as the
  // trial runners.
  Rng rng(SubtaskSeed(options.seed, static_cast<uint64_t>(family)));
  ZooInstance instance;
  instance.family = family;
  instance.beta_certificate = options.beta;
  switch (family) {
    case ZooFamily::kPowerLaw: {
      instance.graph = MakePowerLaw(options.n, options.beta, rng);
      break;
    }
    case ZooFamily::kExpander: {
      instance.graph = MakeExpander(n4, options.beta, rng);
      break;
    }
    case ZooFamily::kPlantedCut: {
      double value = 0;
      VertexSet side;
      instance.graph = MakePlantedCut(n4, options.beta, rng, &value, &side);
      instance.planted_min_cut = value;
      instance.planted_side = std::move(side);
      break;
    }
    case ZooFamily::kDumbbell: {
      double value = 0;
      VertexSet side;
      instance.graph = MakeDumbbell(n4, options.beta, &value, &side);
      instance.planted_min_cut = value;
      instance.planted_side = std::move(side);
      break;
    }
    case ZooFamily::kLayeredBipartite: {
      instance.graph = MakeLayeredBipartite(n4, options.beta);
      break;
    }
  }
  return instance;
}

}  // namespace dcs
