#include "graph/generators.h"

#include <algorithm>
#include <vector>

namespace dcs {

DirectedGraph RandomBalancedDigraph(int n, double edge_probability,
                                    double beta, Rng& rng) {
  DCS_CHECK_GE(n, 2);
  DCS_CHECK_GE(beta, 1.0);
  DCS_CHECK(edge_probability >= 0 && edge_probability <= 1);
  DirectedGraph graph(n);
  // Connectivity backbone: a bidirected Hamiltonian cycle with the same
  // per-edge forward/backward ratio as the random edges.
  for (int v = 0; v < n; ++v) {
    const int next = (v + 1) % n;
    graph.AddEdge(v, next, 1.0);
    graph.AddEdge(next, v, 1.0 / beta);
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (!rng.Bernoulli(edge_probability)) continue;
      const double weight = 0.5 + rng.UniformDouble();
      if (rng.Bernoulli(0.5)) {
        graph.AddEdge(u, v, weight);
        graph.AddEdge(v, u, weight / beta);
      } else {
        graph.AddEdge(v, u, weight);
        graph.AddEdge(u, v, weight / beta);
      }
    }
  }
  return graph;
}

DirectedGraph RandomEulerianDigraph(int n, int extra_cycles,
                                    int max_cycle_length, Rng& rng) {
  DCS_CHECK_GE(n, 3);
  DCS_CHECK_GE(max_cycle_length, 3);
  DCS_CHECK_GE(extra_cycles, 0);
  DirectedGraph graph(n);
  for (int v = 0; v < n; ++v) graph.AddEdge(v, (v + 1) % n, 1.0);
  for (int c = 0; c < extra_cycles; ++c) {
    const int length =
        3 + static_cast<int>(rng.UniformInt(
                static_cast<uint64_t>(std::min(max_cycle_length, n) - 2)));
    const std::vector<int> cycle = rng.RandomSubset(n, length);
    // RandomSubset returns sorted vertices; walk them in a shuffled order to
    // vary cycle shapes.
    std::vector<int> order = cycle;
    rng.Shuffle(order);
    for (size_t i = 0; i < order.size(); ++i) {
      graph.AddEdge(order[i], order[(i + 1) % order.size()], 1.0);
    }
  }
  return graph;
}

DirectedGraph CompleteBipartiteDigraph(int left_size, int right_size,
                                       double forward_weight,
                                       double backward_weight) {
  DCS_CHECK_GE(left_size, 1);
  DCS_CHECK_GE(right_size, 1);
  DirectedGraph graph(left_size + right_size);
  for (int l = 0; l < left_size; ++l) {
    for (int r = 0; r < right_size; ++r) {
      const VertexId right_vertex = left_size + r;
      if (forward_weight > 0) graph.AddEdge(l, right_vertex, forward_weight);
      if (backward_weight > 0) graph.AddEdge(right_vertex, l, backward_weight);
    }
  }
  return graph;
}

DirectedGraph BidirectedMatchingUnion(int n, int degree, Rng& rng,
                                      double beta) {
  DCS_CHECK_GE(n, 2);
  DCS_CHECK_EQ(n % 2, 0);
  DCS_CHECK_GE(degree, 1);
  DCS_CHECK_GE(beta, 1.0);
  DirectedGraph graph(n);
  std::vector<int> order(static_cast<size_t>(n));
  for (int d = 0; d < degree; ++d) {
    for (int v = 0; v < n; ++v) order[static_cast<size_t>(v)] = v;
    rng.Shuffle(order);
    for (int i = 0; i < n; i += 2) {
      const int u = order[static_cast<size_t>(i)];
      const int v = order[static_cast<size_t>(i + 1)];
      graph.AddEdge(u, v, 1.0);
      graph.AddEdge(v, u, 1.0 / beta);
    }
  }
  return graph;
}

UndirectedGraph RandomUndirectedGraph(int n, double edge_probability,
                                      double min_weight, double max_weight,
                                      bool ensure_connected, Rng& rng) {
  DCS_CHECK_GE(n, 1);
  DCS_CHECK(edge_probability >= 0 && edge_probability <= 1);
  DCS_CHECK_LE(min_weight, max_weight);
  UndirectedGraph graph(n);
  if (ensure_connected) {
    for (int v = 0; v + 1 < n; ++v) graph.AddEdge(v, v + 1, min_weight);
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (!rng.Bernoulli(edge_probability)) continue;
      const double weight =
          min_weight + (max_weight - min_weight) * rng.UniformDouble();
      graph.AddEdge(u, v, weight);
    }
  }
  return graph;
}

UndirectedGraph CompleteGraph(int n, double weight) {
  DCS_CHECK_GE(n, 1);
  UndirectedGraph graph(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) graph.AddEdge(u, v, weight);
  }
  return graph;
}

UndirectedGraph CycleGraph(int n, double weight) {
  DCS_CHECK_GE(n, 3);
  UndirectedGraph graph(n);
  for (int v = 0; v < n; ++v) graph.AddEdge(v, (v + 1) % n, weight);
  return graph;
}

UndirectedGraph DumbbellGraph(int clique_size, int bridge_count) {
  DCS_CHECK_GE(clique_size, 2);
  DCS_CHECK_GE(bridge_count, 1);
  DCS_CHECK_LE(bridge_count, clique_size);
  const int n = 2 * clique_size;
  UndirectedGraph graph(n);
  for (int u = 0; u < clique_size; ++u) {
    for (int v = u + 1; v < clique_size; ++v) {
      graph.AddEdge(u, v, 1.0);
      graph.AddEdge(clique_size + u, clique_size + v, 1.0);
    }
  }
  for (int b = 0; b < bridge_count; ++b) {
    graph.AddEdge(b, clique_size + b, 1.0);
  }
  return graph;
}

UndirectedGraph UnionOfRandomMatchings(int n, int degree, Rng& rng) {
  DCS_CHECK_GE(n, 2);
  DCS_CHECK_EQ(n % 2, 0);
  DCS_CHECK_GE(degree, 1);
  UndirectedGraph graph(n);
  std::vector<int> order(static_cast<size_t>(n));
  for (int d = 0; d < degree; ++d) {
    for (int v = 0; v < n; ++v) order[static_cast<size_t>(v)] = v;
    rng.Shuffle(order);
    for (int i = 0; i < n; i += 2) {
      graph.AddEdge(order[static_cast<size_t>(i)],
                    order[static_cast<size_t>(i + 1)], 1.0);
    }
  }
  return graph;
}

UndirectedGraph GridGraph(int rows, int cols) {
  DCS_CHECK_GE(rows, 1);
  DCS_CHECK_GE(cols, 1);
  DCS_CHECK_GE(static_cast<int64_t>(rows) * cols, 2);
  UndirectedGraph graph(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) graph.AddEdge(id(r, c), id(r, c + 1), 1.0);
      if (r + 1 < rows) graph.AddEdge(id(r, c), id(r + 1, c), 1.0);
    }
  }
  return graph;
}

UndirectedGraph PreferentialAttachmentGraph(int n, int edges_per_vertex,
                                            Rng& rng) {
  DCS_CHECK_GE(edges_per_vertex, 1);
  DCS_CHECK_GE(n, edges_per_vertex + 1);
  UndirectedGraph graph(n);
  // Seed clique on the first m+1 vertices, then attach by degree. The
  // repeated-endpoint list makes degree-proportional sampling O(1).
  std::vector<VertexId> endpoints;
  for (int u = 0; u <= edges_per_vertex; ++u) {
    for (int v = u + 1; v <= edges_per_vertex; ++v) {
      graph.AddEdge(u, v, 1.0);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (int v = edges_per_vertex + 1; v < n; ++v) {
    std::vector<VertexId> targets;
    int guard = 0;
    while (static_cast<int>(targets.size()) < edges_per_vertex) {
      DCS_CHECK_LT(++guard, 100000);
      const VertexId pick = endpoints[static_cast<size_t>(
          rng.UniformInt(endpoints.size()))];
      bool duplicate = false;
      for (VertexId t : targets) duplicate = duplicate || t == pick;
      if (!duplicate) targets.push_back(pick);
    }
    for (VertexId t : targets) {
      graph.AddEdge(v, t, 1.0);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return graph;
}

}  // namespace dcs
