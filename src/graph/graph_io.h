// Plain-text graph I/O.
//
// Format (whitespace separated):
//   line 1:  D|U  n  m      (D = directed, U = undirected)
//   m lines: src dst weight
// Comments (# ...) and blank lines are ignored.

#ifndef DCS_GRAPH_GRAPH_IO_H_
#define DCS_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/digraph.h"
#include "graph/ugraph.h"

namespace dcs {

// Writers (always succeed on a good stream).
void WriteDirectedGraphText(const DirectedGraph& graph, std::ostream& out);
void WriteUndirectedGraphText(const UndirectedGraph& graph,
                              std::ostream& out);

// Readers return nullopt on malformed input (wrong header tag, bad counts,
// out-of-range endpoints, negative weights).
std::optional<DirectedGraph> ReadDirectedGraphText(std::istream& in);
std::optional<UndirectedGraph> ReadUndirectedGraphText(std::istream& in);

// File convenience wrappers. Save returns false on I/O failure.
bool SaveDirectedGraph(const DirectedGraph& graph, const std::string& path);
bool SaveUndirectedGraph(const UndirectedGraph& graph,
                         const std::string& path);
std::optional<DirectedGraph> LoadDirectedGraph(const std::string& path);
std::optional<UndirectedGraph> LoadUndirectedGraph(const std::string& path);

}  // namespace dcs

#endif  // DCS_GRAPH_GRAPH_IO_H_
