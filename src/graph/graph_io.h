// Plain-text graph I/O.
//
// Format (whitespace separated):
//   line 1:  D|U  n  m      (D = directed, U = undirected)
//   m lines: src dst weight
// Comments (# ...) and blank lines are ignored.

#ifndef DCS_GRAPH_GRAPH_IO_H_
#define DCS_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/digraph.h"
#include "graph/ugraph.h"
#include "util/status.h"

namespace dcs {

// Writers (always succeed on a good stream).
void WriteDirectedGraphText(const DirectedGraph& graph, std::ostream& out);
void WriteUndirectedGraphText(const UndirectedGraph& graph,
                              std::ostream& out);

// Readers treat the stream as untrusted: a malformed header, bad counts,
// out-of-range or duplicate endpoints, or a non-finite/negative weight
// yields kInvalidArgument with the 1-based line number of the offending
// line; a stream that ends early yields kDataLoss. They never abort.
StatusOr<DirectedGraph> ReadDirectedGraphText(std::istream& in);
StatusOr<UndirectedGraph> ReadUndirectedGraphText(std::istream& in);

// File convenience wrappers. Load reports kNotFound for an unopenable path
// and otherwise forwards the reader's status; Save reports I/O failures.
Status SaveDirectedGraph(const DirectedGraph& graph, const std::string& path);
Status SaveUndirectedGraph(const UndirectedGraph& graph,
                           const std::string& path);
StatusOr<DirectedGraph> LoadDirectedGraph(const std::string& path);
StatusOr<UndirectedGraph> LoadUndirectedGraph(const std::string& path);

}  // namespace dcs

#endif  // DCS_GRAPH_GRAPH_IO_H_
