// Weighted directed multigraph.
//
// The central object of the cut-sketching half of the library. Stored as an
// edge list plus lazily maintained per-vertex adjacency offsets; supports
// directed cut evaluation w(S, V∖S), per-vertex weighted in/out degrees,
// reversal, symmetrization G + Gᵀ, and merging.

#ifndef DCS_GRAPH_DIGRAPH_H_
#define DCS_GRAPH_DIGRAPH_H_

#include <vector>

#include "graph/types.h"

namespace dcs {

class UndirectedGraph;

// A weighted directed multigraph on vertices {0, ..., n−1}. Parallel edges
// are allowed (weights add for all cut purposes); self-loops are rejected.
class DirectedGraph {
 public:
  // An empty graph on `num_vertices` vertices.
  explicit DirectedGraph(int num_vertices);

  DirectedGraph(const DirectedGraph&) = default;
  DirectedGraph& operator=(const DirectedGraph&) = default;
  DirectedGraph(DirectedGraph&&) = default;
  DirectedGraph& operator=(DirectedGraph&&) = default;

  int num_vertices() const { return num_vertices_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  const std::vector<Edge>& edges() const { return edges_; }

  // Adds the directed edge (src → dst) with the given weight.
  // Requires src != dst, both in range, weight >= 0.
  void AddEdge(VertexId src, VertexId dst, double weight);

  // Total weight of all edges.
  double TotalWeight() const;

  // Weighted out-degree / in-degree of v.
  double OutDegree(VertexId v) const;
  double InDegree(VertexId v) const;

  // Directed cut value w(S, V∖S): total weight of edges leaving S.
  // Requires side.size() == num_vertices().
  double CutWeight(const VertexSet& side) const;

  // Total weight of edges from S to T (S, T need not be disjoint; an edge
  // counts iff src ∈ S and dst ∈ T).
  double CrossWeight(const VertexSet& from, const VertexSet& to) const;

  // The reverse graph Gᵀ (every edge flipped).
  DirectedGraph Reversed() const;

  // The undirected symmetrization: one undirected edge {u, v} of weight
  // w(u→v) + w(v→u) for every ordered pair that has directed weight.
  UndirectedGraph Symmetrized() const;

  // Adds all edges of `other` into this graph. Vertex counts must match.
  void MergeFrom(const DirectedGraph& other);

  // Out-edges of v (indices into edges()).
  const std::vector<int64_t>& OutEdgeIds(VertexId v) const;
  // In-edges of v (indices into edges()).
  const std::vector<int64_t>& InEdgeIds(VertexId v) const;

 private:
  void EnsureAdjacency() const;

  int num_vertices_;
  std::vector<Edge> edges_;
  // Lazily built adjacency (invalidated by AddEdge/MergeFrom).
  mutable bool adjacency_valid_ = false;
  mutable std::vector<std::vector<int64_t>> out_edge_ids_;
  mutable std::vector<std::vector<int64_t>> in_edge_ids_;
};

}  // namespace dcs

#endif  // DCS_GRAPH_DIGRAPH_H_
