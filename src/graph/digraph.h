// Weighted directed multigraph.
//
// The central object of the cut-sketching half of the library. Stored as an
// edge list plus a lazily built CSR adjacency index (flat offset + edge-id
// arrays, no per-vertex vectors); supports directed cut evaluation
// w(S, V∖S) — full-scan or volume-bounded via a precomputed degree index —
// per-vertex weighted in/out degrees, reversal, symmetrization G + Gᵀ, and
// merging.

#ifndef DCS_GRAPH_DIGRAPH_H_
#define DCS_GRAPH_DIGRAPH_H_

#include <span>
#include <vector>

#include "graph/types.h"

namespace dcs {

class UndirectedGraph;

// Per-vertex edge counts, precomputed once so repeated cut queries can pick
// the cheaper traversal (out-edges of S vs in-edges of V∖S) in O(n) and
// early-exit entirely on zero-volume sides.
struct DegreeIndex {
  std::vector<int64_t> out_count;
  std::vector<int64_t> in_count;
};

// A weighted directed multigraph on vertices {0, ..., n−1}. Parallel edges
// are allowed (weights add for all cut purposes); self-loops are rejected.
class DirectedGraph {
 public:
  // An empty graph on `num_vertices` vertices.
  explicit DirectedGraph(int num_vertices);

  DirectedGraph(const DirectedGraph&) = default;
  DirectedGraph& operator=(const DirectedGraph&) = default;
  DirectedGraph(DirectedGraph&&) = default;
  DirectedGraph& operator=(DirectedGraph&&) = default;

  int num_vertices() const { return num_vertices_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  const std::vector<Edge>& edges() const { return edges_; }

  // Adds the directed edge (src → dst) with the given weight.
  // Requires src != dst, both in range, weight >= 0.
  void AddEdge(VertexId src, VertexId dst, double weight);

  // Total weight of all edges.
  double TotalWeight() const;

  // Weighted out-degree / in-degree of v.
  double OutDegree(VertexId v) const;
  double InDegree(VertexId v) const;

  // Directed cut value w(S, V∖S): total weight of edges leaving S.
  // Requires side.size() == num_vertices(). O(m) edge scan.
  double CutWeight(const VertexSet& side) const;

  // Volume-bounded overload: walks the CSR adjacency over whichever of
  // S's out-edges or (V∖S)'s in-edges is smaller (early-exiting to 0 on
  // empty volume), falling back to the edge scan when neither side is
  // small. `index` must come from BuildDegreeIndex() on this graph with
  // the current edge set.
  double CutWeight(const VertexSet& side, const DegreeIndex& index) const;

  // Snapshot of per-vertex edge counts for the overload above.
  DegreeIndex BuildDegreeIndex() const;

  // Total weight of edges from S to T (S, T need not be disjoint; an edge
  // counts iff src ∈ S and dst ∈ T).
  double CrossWeight(const VertexSet& from, const VertexSet& to) const;

  // The reverse graph Gᵀ (every edge flipped).
  DirectedGraph Reversed() const;

  // The undirected symmetrization: one undirected edge {u, v} of weight
  // w(u→v) + w(v→u) for every ordered pair that has directed weight.
  UndirectedGraph Symmetrized() const;

  // Adds all edges of `other` into this graph. Vertex counts must match.
  void MergeFrom(const DirectedGraph& other);

  // Out-edges of v (indices into edges()).
  std::span<const int64_t> OutEdgeIds(VertexId v) const;
  // In-edges of v (indices into edges()).
  std::span<const int64_t> InEdgeIds(VertexId v) const;

  // Forces the lazy CSR adjacency to be built now. The lazy build is not
  // thread-safe; call this before sharing a graph across threads so
  // concurrent OutEdgeIds/InEdgeIds/CutWeight(side, index) calls only read
  // immutable state.
  void BuildAdjacency() const { EnsureAdjacency(); }

 private:
  void EnsureAdjacency() const;

  int num_vertices_;
  std::vector<Edge> edges_;
  // Lazily built CSR adjacency (invalidated by AddEdge/MergeFrom):
  // out-edge ids of v are out_edge_ids_[out_offsets_[v] ..
  // out_offsets_[v+1]), likewise for in-edges.
  mutable bool adjacency_valid_ = false;
  mutable std::vector<int64_t> out_offsets_;
  mutable std::vector<int64_t> in_offsets_;
  mutable std::vector<int64_t> out_edge_ids_;
  mutable std::vector<int64_t> in_edge_ids_;
};

}  // namespace dcs

#endif  // DCS_GRAPH_DIGRAPH_H_
