#include "graph/balance.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

namespace dcs {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

// max(forward/backward, backward/forward) with zero-handling.
double ImbalanceOfPair(double forward, double backward) {
  if (forward == 0 && backward == 0) return 1;
  if (forward == 0 || backward == 0) return kInfinity;
  return std::max(forward / backward, backward / forward);
}

}  // namespace

double DirectedCutRatio(const DirectedGraph& graph, const VertexSet& side) {
  DCS_CHECK(IsProperCutSide(side));
  const double forward = graph.CutWeight(side);
  const double backward = graph.CutWeight(ComplementSet(side));
  if (backward == 0) return forward == 0 ? 1 : kInfinity;
  return forward / backward;
}

double MeasureBalanceExact(const DirectedGraph& graph) {
  const int n = graph.num_vertices();
  DCS_CHECK_GE(n, 2);
  DCS_CHECK_LE(n, 24);
  double worst = 1;
  // Fix vertex 0 on the S side to halve the enumeration; imbalance is
  // symmetric under complement because we take the max of both directions.
  const uint64_t limit = 1ULL << (n - 1);
  VertexSet side(static_cast<size_t>(n));
  for (uint64_t mask = 0; mask + 1 < limit; ++mask) {
    side[0] = 1;
    for (int v = 1; v < n; ++v) {
      side[static_cast<size_t>(v)] =
          static_cast<uint8_t>((mask >> (v - 1)) & 1);
    }
    // Skip S == V (mask with all bits set is excluded by the loop bound
    // only when n > 1; the mask enumerates subsets of {1..n-1} and
    // mask == limit-1 would make S == V).
    const double forward = graph.CutWeight(side);
    const double backward = graph.CutWeight(ComplementSet(side));
    worst = std::max(worst, ImbalanceOfPair(forward, backward));
    if (worst == kInfinity) return worst;
  }
  return worst;
}

double MeasureBalanceSampled(const DirectedGraph& graph, Rng& rng,
                             int samples) {
  const int n = graph.num_vertices();
  DCS_CHECK_GE(n, 2);
  double worst = 1;
  VertexSet side(static_cast<size_t>(n), 0);
  // All singleton cuts.
  for (int v = 0; v < n; ++v) {
    std::fill(side.begin(), side.end(), 0);
    side[static_cast<size_t>(v)] = 1;
    worst = std::max(
        worst, ImbalanceOfPair(graph.CutWeight(side),
                               graph.CutWeight(ComplementSet(side))));
  }
  // Random cuts.
  for (int s = 0; s < samples; ++s) {
    bool proper = false;
    while (!proper) {
      for (int v = 0; v < n; ++v) {
        side[static_cast<size_t>(v)] = static_cast<uint8_t>(rng.Next() & 1);
      }
      proper = IsProperCutSide(side);
    }
    worst = std::max(
        worst, ImbalanceOfPair(graph.CutWeight(side),
                               graph.CutWeight(ComplementSet(side))));
  }
  return worst;
}

std::optional<double> PerEdgeBalanceCertificate(const DirectedGraph& graph) {
  std::map<std::pair<VertexId, VertexId>, double> directed_weight;
  for (const Edge& e : graph.edges()) {
    directed_weight[{e.src, e.dst}] += e.weight;
  }
  double certificate = 1;
  for (const auto& [key, forward] : directed_weight) {
    if (forward == 0) continue;
    const auto reverse_it = directed_weight.find({key.second, key.first});
    if (reverse_it == directed_weight.end() || reverse_it->second == 0) {
      return std::nullopt;
    }
    certificate = std::max(certificate, forward / reverse_it->second);
  }
  return certificate;
}

bool VerifyBalanceExact(const DirectedGraph& graph, double beta) {
  DCS_CHECK_GE(beta, 1);
  const int n = graph.num_vertices();
  DCS_CHECK_GE(n, 2);
  DCS_CHECK_LE(n, 24);
  const uint64_t limit = 1ULL << (n - 1);
  VertexSet side(static_cast<size_t>(n));
  for (uint64_t mask = 0; mask + 1 < limit; ++mask) {
    side[0] = 1;
    for (int v = 1; v < n; ++v) {
      side[static_cast<size_t>(v)] =
          static_cast<uint8_t>((mask >> (v - 1)) & 1);
    }
    const double forward = graph.CutWeight(side);
    const double backward = graph.CutWeight(ComplementSet(side));
    if (forward > beta * backward || backward > beta * forward) return false;
  }
  return true;
}

}  // namespace dcs
