// Deterministic, seeded workload generators.
//
// The paper's instances are all synthetic and fully specified; these
// generators produce them (plus standard test graphs). Everything takes an
// explicit Rng so experiments replay exactly.

#ifndef DCS_GRAPH_GENERATORS_H_
#define DCS_GRAPH_GENERATORS_H_

#include "graph/digraph.h"
#include "graph/ugraph.h"
#include "util/random.h"

namespace dcs {

// ---------------------------------------------------------------------------
// Directed generators.
// ---------------------------------------------------------------------------

// A strongly connected digraph that is exactly β-balanced per edge: every
// kept unordered pair {u, v} carries a forward edge of weight w ~ U[0.5,1.5]
// (random orientation) and a reverse edge of weight w/beta. A bidirected
// Hamiltonian cycle (same per-edge ratio) guarantees strong connectivity.
// Requires n >= 2, edge_probability in [0, 1], beta >= 1.
DirectedGraph RandomBalancedDigraph(int n, double edge_probability,
                                    double beta, Rng& rng);

// An Eulerian multigraph (weighted in-degree == out-degree at every vertex,
// hence exactly 1-balanced): a Hamiltonian cycle plus `extra_cycles` random
// simple closed walks of length up to `max_cycle_length`, unit weights.
// Requires n >= 3, max_cycle_length >= 3.
DirectedGraph RandomEulerianDigraph(int n, int extra_cycles,
                                    int max_cycle_length, Rng& rng);

// Complete bipartite digraph: left vertices are 0..left_size−1, right
// vertices follow. Every (l, r) pair gets a forward edge of weight
// `forward_weight` and a backward edge of weight `backward_weight`.
DirectedGraph CompleteBipartiteDigraph(int left_size, int right_size,
                                       double forward_weight,
                                       double backward_weight);

// Union of `degree` random perfect matchings with every matching edge
// replaced by a directed pair: forward weight 1, backward weight 1/beta —
// a beta-balanced (per-edge certificate) 2·degree-regular directed
// multigraph with a uniform strength spectrum. beta = 1 (the default)
// gives the Eulerian bidirected case. Used for sampling-regime experiments.
// Requires n even, beta >= 1.
DirectedGraph BidirectedMatchingUnion(int n, int degree, Rng& rng,
                                      double beta = 1.0);

// ---------------------------------------------------------------------------
// Undirected generators.
// ---------------------------------------------------------------------------

// Erdős–Rényi G(n, p) with weights ~ U[min_weight, max_weight]. If
// `ensure_connected` is true, a Hamiltonian path of min_weight edges is
// added first.
UndirectedGraph RandomUndirectedGraph(int n, double edge_probability,
                                      double min_weight, double max_weight,
                                      bool ensure_connected, Rng& rng);

// Complete graph K_n with uniform edge weight.
UndirectedGraph CompleteGraph(int n, double weight);

// Cycle 0−1−…−(n−1)−0 with uniform edge weight. Min cut = 2·weight.
UndirectedGraph CycleGraph(int n, double weight);

// Two K_s cliques (unit weights) joined by `bridge_count` unit edges between
// distinct vertex pairs. For bridge_count < s−1 the min cut is exactly
// bridge_count (the clique split). Requires bridge_count <= s.
UndirectedGraph DumbbellGraph(int clique_size, int bridge_count);

// Union of `degree` uniformly random perfect matchings on n vertices
// (n even): a degree-regular multigraph with unit weights.
UndirectedGraph UnionOfRandomMatchings(int n, int degree, Rng& rng);

// rows×cols 2D grid with unit weights (min cut = min(rows, cols) for
// non-degenerate grids; a standard structured workload).
UndirectedGraph GridGraph(int rows, int cols);

// Barabási–Albert preferential attachment: each new vertex attaches
// `edges_per_vertex` times to existing vertices chosen proportionally to
// their current degree (skewed-degree workload; min cut typically
// edges_per_vertex at the last-attached vertices).
UndirectedGraph PreferentialAttachmentGraph(int n, int edges_per_vertex,
                                            Rng& rng);

}  // namespace dcs

#endif  // DCS_GRAPH_GENERATORS_H_
