// Incremental directed cut maintenance under single-vertex side flips.
//
// The decoders of the lower-bound protocols (Sections 3–4) evaluate the cut
// function on long sequences of sides that differ in one vertex — Gray-code
// enumeration of half-size subsets, greedy single-swap refinement, the four
// inclusion–exclusion sides of a for-each query. Rescanning all m edges per
// side costs O(m) each; maintaining the value under a flip costs O(deg(v)):
// moving v across the cut only changes the crossing status of edges incident
// to v, and the sign of each contribution is determined by which side the
// *other* endpoint is on.

#ifndef DCS_GRAPH_INCREMENTAL_CUT_ORACLE_H_
#define DCS_GRAPH_INCREMENTAL_CUT_ORACLE_H_

#include "graph/digraph.h"
#include "graph/types.h"

namespace dcs {

// Maintains w(S, V∖S) for a mutable side S over a fixed graph.
//
// The initial value is computed with one O(m) scan; each Flip(v) is
// O(deg(v)) via the graph's CSR adjacency. The referenced graph must
// outlive the oracle and must not gain edges while it is in use.
class IncrementalCutOracle {
 public:
  IncrementalCutOracle(const DirectedGraph& graph, VertexSet side);

  // Flushes the per-object flip tallies into the metrics registry
  // (`graph.inccut.*`). Flip itself stays metric-free: per-flip registry
  // traffic would dominate the O(deg) update this class exists to provide
  // (DESIGN.md §8's object-scope aggregation rule).
  ~IncrementalCutOracle();

  // Current cut value w(S, V∖S).
  double value() const { return value_; }
  // Current side S.
  const VertexSet& side() const { return side_; }

  // Moves v to the other side of the cut and updates value() in O(deg(v)).
  void Flip(VertexId v);

  // Replaces the side entirely (one O(m) rescan); cheaper than
  // reconstructing when the oracle is reused across candidate sides.
  void Reset(VertexSet side);

 private:
  const DirectedGraph& graph_;
  VertexSet side_;
  double value_;
  // Lifetime tallies flushed by the destructor (see above).
  int64_t flips_ = 0;
  int64_t flip_edges_ = 0;
};

}  // namespace dcs

#endif  // DCS_GRAPH_INCREMENTAL_CUT_ORACLE_H_
