#include "graph/incremental_cut_oracle.h"

#include <utility>

#include "util/metrics.h"

namespace dcs {

IncrementalCutOracle::IncrementalCutOracle(const DirectedGraph& graph,
                                           VertexSet side)
    : graph_(graph), side_(std::move(side)) {
  DCS_CHECK_EQ(static_cast<int>(side_.size()), graph_.num_vertices());
  graph_.BuildAdjacency();
  // Normalize membership bytes to 0/1 so Flip can toggle with XOR.
  for (uint8_t& b : side_) b = static_cast<uint8_t>(b != 0);
  value_ = graph_.CutWeight(side_);
}

IncrementalCutOracle::~IncrementalCutOracle() {
  DCS_METRIC_ADD("graph.inccut.flip", flips_);
  DCS_METRIC_ADD("graph.inccut.flip_edges", flip_edges_);
  if (flips_ > 0) {
    DCS_METRIC_RECORD("graph.inccut.oracle_flips", flips_);
  }
}

void IncrementalCutOracle::Flip(VertexId v) {
  DCS_DCHECK(v >= 0 && v < graph_.num_vertices());
  ++flips_;
  flip_edges_ += static_cast<int64_t>(graph_.OutEdgeIds(v).size()) +
                 static_cast<int64_t>(graph_.InEdgeIds(v).size());
  const std::vector<Edge>& edges = graph_.edges();
  // Moving v into S: out-edges v→u with u ∉ S start crossing, in-edges u→v
  // with u ∈ S stop crossing (v no longer absorbs them outside). Moving v
  // out of S is the exact mirror. Self-loops are rejected by AddEdge, so
  // every opposite endpoint below is a vertex other than v whose membership
  // is unaffected by the flip — the delta can be accumulated before or
  // after toggling side_[v].
  // Unlike the full-graph CutWeight scans (digraph.cc), these per-vertex
  // loops are short on the decode workloads — software prefetch and
  // branchless accumulation were measured 40% slower here (the prefetch
  // guard and the always-executed FP add dominate at small degree), so
  // the loops stay branchy and prefetch-free.
  const double sign = side_[static_cast<size_t>(v)] ? -1.0 : 1.0;
  double delta = 0;
  for (int64_t id : graph_.OutEdgeIds(v)) {
    const Edge& e = edges[static_cast<size_t>(id)];
    if (!side_[static_cast<size_t>(e.dst)]) delta += e.weight;
  }
  for (int64_t id : graph_.InEdgeIds(v)) {
    const Edge& e = edges[static_cast<size_t>(id)];
    if (side_[static_cast<size_t>(e.src)]) delta -= e.weight;
  }
  value_ += sign * delta;
  side_[static_cast<size_t>(v)] ^= 1;
}

void IncrementalCutOracle::Reset(VertexSet side) {
  DCS_CHECK_EQ(static_cast<int>(side.size()), graph_.num_vertices());
  side_ = std::move(side);
  for (uint8_t& b : side_) b = static_cast<uint8_t>(b != 0);
  value_ = graph_.CutWeight(side_);
}

}  // namespace dcs
