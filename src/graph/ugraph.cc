#include "graph/ugraph.h"

#include <cmath>
#include <utility>

namespace dcs {

UndirectedGraph::UndirectedGraph(int num_vertices)
    : num_vertices_(num_vertices) {
  DCS_CHECK_GE(num_vertices, 0);
}

void UndirectedGraph::AddEdge(VertexId u, VertexId v, double weight) {
  DCS_CHECK(u >= 0 && u < num_vertices_);
  DCS_CHECK(v >= 0 && v < num_vertices_);
  DCS_CHECK_NE(u, v);
  // NaN fails both comparisons below in confusing ways; reject it (and
  // infinities) explicitly. Untrusted inputs are screened before AddEdge by
  // graph_io / serialization, so tripping this is a caller bug.
  DCS_CHECK(std::isfinite(weight));
  DCS_CHECK_GE(weight, 0);
  if (u > v) std::swap(u, v);
  edges_.push_back(Edge{u, v, weight});
  adjacency_valid_ = false;
}

double UndirectedGraph::TotalWeight() const {
  double total = 0;
  for (const Edge& e : edges_) total += e.weight;
  return total;
}

double UndirectedGraph::Degree(VertexId v) const {
  DCS_CHECK(v >= 0 && v < num_vertices_);
  EnsureAdjacency();
  double total = 0;
  for (int64_t id : incident_edge_ids_[static_cast<size_t>(v)]) {
    total += edges_[static_cast<size_t>(id)].weight;
  }
  return total;
}

double UndirectedGraph::CutWeight(const VertexSet& side) const {
  DCS_CHECK_EQ(static_cast<int>(side.size()), num_vertices_);
  double total = 0;
  for (const Edge& e : edges_) {
    if (side[static_cast<size_t>(e.src)] != side[static_cast<size_t>(e.dst)]) {
      total += e.weight;
    }
  }
  return total;
}

void UndirectedGraph::MergeFrom(const UndirectedGraph& other) {
  DCS_CHECK_EQ(num_vertices_, other.num_vertices_);
  edges_.insert(edges_.end(), other.edges_.begin(), other.edges_.end());
  adjacency_valid_ = false;
}

const std::vector<int64_t>& UndirectedGraph::IncidentEdgeIds(
    VertexId v) const {
  DCS_CHECK(v >= 0 && v < num_vertices_);
  EnsureAdjacency();
  return incident_edge_ids_[static_cast<size_t>(v)];
}

std::vector<Edge> UndirectedGraph::AsDirectedEdges() const {
  std::vector<Edge> directed;
  directed.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    directed.push_back(Edge{e.src, e.dst, e.weight});
    directed.push_back(Edge{e.dst, e.src, e.weight});
  }
  return directed;
}

void UndirectedGraph::EnsureAdjacency() const {
  if (adjacency_valid_) return;
  incident_edge_ids_.assign(static_cast<size_t>(num_vertices_), {});
  for (size_t id = 0; id < edges_.size(); ++id) {
    incident_edge_ids_[static_cast<size_t>(edges_[id].src)].push_back(
        static_cast<int64_t>(id));
    incident_edge_ids_[static_cast<size_t>(edges_[id].dst)].push_back(
        static_cast<int64_t>(id));
  }
  adjacency_valid_ = true;
}

}  // namespace dcs
