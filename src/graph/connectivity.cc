#include "graph/connectivity.h"

#include <algorithm>
#include <vector>

namespace dcs {
namespace {

// Iterative DFS marking reachable vertices from `start` along `out` lists.
void MarkReachable(const std::vector<std::vector<VertexId>>& out,
                   VertexId start, std::vector<uint8_t>& visited) {
  std::vector<VertexId> stack = {start};
  visited[static_cast<size_t>(start)] = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (VertexId next : out[static_cast<size_t>(v)]) {
      if (!visited[static_cast<size_t>(next)]) {
        visited[static_cast<size_t>(next)] = 1;
        stack.push_back(next);
      }
    }
  }
}

}  // namespace

bool IsStronglyConnected(const DirectedGraph& graph) {
  const int n = graph.num_vertices();
  if (n < 2) return true;
  std::vector<std::vector<VertexId>> out(static_cast<size_t>(n));
  std::vector<std::vector<VertexId>> in(static_cast<size_t>(n));
  for (const Edge& e : graph.edges()) {
    if (e.weight <= 0) continue;
    out[static_cast<size_t>(e.src)].push_back(e.dst);
    in[static_cast<size_t>(e.dst)].push_back(e.src);
  }
  std::vector<uint8_t> forward(static_cast<size_t>(n), 0);
  MarkReachable(out, 0, forward);
  for (uint8_t bit : forward) {
    if (!bit) return false;
  }
  std::vector<uint8_t> backward(static_cast<size_t>(n), 0);
  MarkReachable(in, 0, backward);
  for (uint8_t bit : backward) {
    if (!bit) return false;
  }
  return true;
}

std::vector<int> ConnectedComponents(const UndirectedGraph& graph) {
  const int n = graph.num_vertices();
  std::vector<std::vector<VertexId>> adjacency(static_cast<size_t>(n));
  for (const Edge& e : graph.edges()) {
    if (e.weight <= 0) continue;
    adjacency[static_cast<size_t>(e.src)].push_back(e.dst);
    adjacency[static_cast<size_t>(e.dst)].push_back(e.src);
  }
  std::vector<int> component(static_cast<size_t>(n), -1);
  int next_component = 0;
  for (VertexId start = 0; start < n; ++start) {
    if (component[static_cast<size_t>(start)] != -1) continue;
    std::vector<VertexId> stack = {start};
    component[static_cast<size_t>(start)] = next_component;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId next : adjacency[static_cast<size_t>(v)]) {
        if (component[static_cast<size_t>(next)] == -1) {
          component[static_cast<size_t>(next)] = next_component;
          stack.push_back(next);
        }
      }
    }
    ++next_component;
  }
  return component;
}

int CountComponents(const UndirectedGraph& graph) {
  const std::vector<int> component = ConnectedComponents(graph);
  int max_id = -1;
  for (int id : component) max_id = std::max(max_id, id);
  return max_id + 1;
}

bool IsConnected(const UndirectedGraph& graph) {
  return graph.num_vertices() <= 1 || CountComponents(graph) == 1;
}

}  // namespace dcs
