#include "graph/digraph.h"

#include <map>
#include <utility>

#include "graph/ugraph.h"

namespace dcs {

DirectedGraph::DirectedGraph(int num_vertices) : num_vertices_(num_vertices) {
  DCS_CHECK_GE(num_vertices, 0);
}

void DirectedGraph::AddEdge(VertexId src, VertexId dst, double weight) {
  DCS_CHECK(src >= 0 && src < num_vertices_);
  DCS_CHECK(dst >= 0 && dst < num_vertices_);
  DCS_CHECK_NE(src, dst);
  DCS_CHECK_GE(weight, 0);
  edges_.push_back(Edge{src, dst, weight});
  adjacency_valid_ = false;
}

double DirectedGraph::TotalWeight() const {
  double total = 0;
  for (const Edge& e : edges_) total += e.weight;
  return total;
}

double DirectedGraph::OutDegree(VertexId v) const {
  DCS_CHECK(v >= 0 && v < num_vertices_);
  EnsureAdjacency();
  double total = 0;
  for (int64_t id : out_edge_ids_[static_cast<size_t>(v)]) {
    total += edges_[static_cast<size_t>(id)].weight;
  }
  return total;
}

double DirectedGraph::InDegree(VertexId v) const {
  DCS_CHECK(v >= 0 && v < num_vertices_);
  EnsureAdjacency();
  double total = 0;
  for (int64_t id : in_edge_ids_[static_cast<size_t>(v)]) {
    total += edges_[static_cast<size_t>(id)].weight;
  }
  return total;
}

double DirectedGraph::CutWeight(const VertexSet& side) const {
  DCS_CHECK_EQ(static_cast<int>(side.size()), num_vertices_);
  double total = 0;
  for (const Edge& e : edges_) {
    if (side[static_cast<size_t>(e.src)] && !side[static_cast<size_t>(e.dst)]) {
      total += e.weight;
    }
  }
  return total;
}

double DirectedGraph::CrossWeight(const VertexSet& from,
                                  const VertexSet& to) const {
  DCS_CHECK_EQ(static_cast<int>(from.size()), num_vertices_);
  DCS_CHECK_EQ(static_cast<int>(to.size()), num_vertices_);
  double total = 0;
  for (const Edge& e : edges_) {
    if (from[static_cast<size_t>(e.src)] && to[static_cast<size_t>(e.dst)]) {
      total += e.weight;
    }
  }
  return total;
}

DirectedGraph DirectedGraph::Reversed() const {
  DirectedGraph reversed(num_vertices_);
  reversed.edges_.reserve(edges_.size());
  for (const Edge& e : edges_) {
    reversed.edges_.push_back(Edge{e.dst, e.src, e.weight});
  }
  return reversed;
}

UndirectedGraph DirectedGraph::Symmetrized() const {
  // Coalesce by unordered endpoint pair so each pair yields one edge.
  std::map<std::pair<VertexId, VertexId>, double> pair_weight;
  for (const Edge& e : edges_) {
    const auto key = e.src < e.dst ? std::make_pair(e.src, e.dst)
                                   : std::make_pair(e.dst, e.src);
    pair_weight[key] += e.weight;
  }
  UndirectedGraph symmetric(num_vertices_);
  for (const auto& [key, weight] : pair_weight) {
    symmetric.AddEdge(key.first, key.second, weight);
  }
  return symmetric;
}

void DirectedGraph::MergeFrom(const DirectedGraph& other) {
  DCS_CHECK_EQ(num_vertices_, other.num_vertices_);
  edges_.insert(edges_.end(), other.edges_.begin(), other.edges_.end());
  adjacency_valid_ = false;
}

const std::vector<int64_t>& DirectedGraph::OutEdgeIds(VertexId v) const {
  DCS_CHECK(v >= 0 && v < num_vertices_);
  EnsureAdjacency();
  return out_edge_ids_[static_cast<size_t>(v)];
}

const std::vector<int64_t>& DirectedGraph::InEdgeIds(VertexId v) const {
  DCS_CHECK(v >= 0 && v < num_vertices_);
  EnsureAdjacency();
  return in_edge_ids_[static_cast<size_t>(v)];
}

void DirectedGraph::EnsureAdjacency() const {
  if (adjacency_valid_) return;
  out_edge_ids_.assign(static_cast<size_t>(num_vertices_), {});
  in_edge_ids_.assign(static_cast<size_t>(num_vertices_), {});
  for (size_t id = 0; id < edges_.size(); ++id) {
    out_edge_ids_[static_cast<size_t>(edges_[id].src)].push_back(
        static_cast<int64_t>(id));
    in_edge_ids_[static_cast<size_t>(edges_[id].dst)].push_back(
        static_cast<int64_t>(id));
  }
  adjacency_valid_ = true;
}

}  // namespace dcs
