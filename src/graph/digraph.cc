#include "graph/digraph.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "graph/ugraph.h"

namespace dcs {

DirectedGraph::DirectedGraph(int num_vertices) : num_vertices_(num_vertices) {
  DCS_CHECK_GE(num_vertices, 0);
}

void DirectedGraph::AddEdge(VertexId src, VertexId dst, double weight) {
  DCS_CHECK(src >= 0 && src < num_vertices_);
  DCS_CHECK(dst >= 0 && dst < num_vertices_);
  DCS_CHECK_NE(src, dst);
  // NaN fails both comparisons below in confusing ways; reject it (and
  // infinities) explicitly. Untrusted inputs are screened before AddEdge by
  // graph_io / serialization, so tripping this is a caller bug.
  DCS_CHECK(std::isfinite(weight));
  DCS_CHECK_GE(weight, 0);
  edges_.push_back(Edge{src, dst, weight});
  adjacency_valid_ = false;
}

double DirectedGraph::TotalWeight() const {
  double total = 0;
  for (const Edge& e : edges_) total += e.weight;
  return total;
}

double DirectedGraph::OutDegree(VertexId v) const {
  double total = 0;
  for (int64_t id : OutEdgeIds(v)) {
    total += edges_[static_cast<size_t>(id)].weight;
  }
  return total;
}

double DirectedGraph::InDegree(VertexId v) const {
  double total = 0;
  for (int64_t id : InEdgeIds(v)) {
    total += edges_[static_cast<size_t>(id)].weight;
  }
  return total;
}

double DirectedGraph::CutWeight(const VertexSet& side) const {
  DCS_CHECK_EQ(static_cast<int>(side.size()), num_vertices_);
  double total = 0;
  for (const Edge& e : edges_) {
    if (side[static_cast<size_t>(e.src)] && !side[static_cast<size_t>(e.dst)]) {
      total += e.weight;
    }
  }
  return total;
}

double DirectedGraph::CutWeight(const VertexSet& side,
                                const DegreeIndex& index) const {
  DCS_CHECK_EQ(static_cast<int>(side.size()), num_vertices_);
  DCS_CHECK_EQ(static_cast<int>(index.out_count.size()), num_vertices_);
  DCS_CHECK_EQ(static_cast<int>(index.in_count.size()), num_vertices_);
  // Every crossing edge leaves some v ∈ S and enters some u ∉ S, so the cut
  // can be accumulated from either frontier; walk the smaller one.
  int64_t out_volume = 0;
  int64_t in_volume = 0;
  for (int v = 0; v < num_vertices_; ++v) {
    const int64_t inside = side[static_cast<size_t>(v)] != 0;
    out_volume += inside * index.out_count[static_cast<size_t>(v)];
    in_volume += (1 - inside) * index.in_count[static_cast<size_t>(v)];
  }
  const int64_t volume = std::min(out_volume, in_volume);
  if (volume == 0) return 0;
  if (volume >= num_edges()) return CutWeight(side);
  EnsureAdjacency();
  // The CSR walk chases edge ids into the edge array — dependent loads the
  // hardware prefetcher cannot follow. Prefetch a few ids ahead (within the
  // vertex's own range, so no stale id is dereferenced) to overlap the
  // misses; the accumulation order is untouched.
  constexpr int64_t kPrefetchDistance = 8;
  double total = 0;
  if (out_volume <= in_volume) {
    for (int v = 0; v < num_vertices_; ++v) {
      if (!side[static_cast<size_t>(v)]) continue;
      const int64_t begin = out_offsets_[static_cast<size_t>(v)];
      const int64_t end = out_offsets_[static_cast<size_t>(v) + 1];
      for (int64_t k = begin; k < end; ++k) {
        if (k + kPrefetchDistance < end) {
          __builtin_prefetch(&edges_[static_cast<size_t>(
              out_edge_ids_[static_cast<size_t>(k + kPrefetchDistance)])]);
        }
        const Edge& e = edges_[static_cast<size_t>(out_edge_ids_[k])];
        if (!side[static_cast<size_t>(e.dst)]) total += e.weight;
      }
    }
  } else {
    for (int v = 0; v < num_vertices_; ++v) {
      if (side[static_cast<size_t>(v)]) continue;
      const int64_t begin = in_offsets_[static_cast<size_t>(v)];
      const int64_t end = in_offsets_[static_cast<size_t>(v) + 1];
      for (int64_t k = begin; k < end; ++k) {
        if (k + kPrefetchDistance < end) {
          __builtin_prefetch(&edges_[static_cast<size_t>(
              in_edge_ids_[static_cast<size_t>(k + kPrefetchDistance)])]);
        }
        const Edge& e = edges_[static_cast<size_t>(in_edge_ids_[k])];
        if (side[static_cast<size_t>(e.src)]) total += e.weight;
      }
    }
  }
  return total;
}

DegreeIndex DirectedGraph::BuildDegreeIndex() const {
  EnsureAdjacency();
  DegreeIndex index;
  index.out_count.resize(static_cast<size_t>(num_vertices_));
  index.in_count.resize(static_cast<size_t>(num_vertices_));
  for (int v = 0; v < num_vertices_; ++v) {
    index.out_count[static_cast<size_t>(v)] =
        out_offsets_[static_cast<size_t>(v) + 1] -
        out_offsets_[static_cast<size_t>(v)];
    index.in_count[static_cast<size_t>(v)] =
        in_offsets_[static_cast<size_t>(v) + 1] -
        in_offsets_[static_cast<size_t>(v)];
  }
  return index;
}

double DirectedGraph::CrossWeight(const VertexSet& from,
                                  const VertexSet& to) const {
  DCS_CHECK_EQ(static_cast<int>(from.size()), num_vertices_);
  DCS_CHECK_EQ(static_cast<int>(to.size()), num_vertices_);
  double total = 0;
  for (const Edge& e : edges_) {
    if (from[static_cast<size_t>(e.src)] && to[static_cast<size_t>(e.dst)]) {
      total += e.weight;
    }
  }
  return total;
}

DirectedGraph DirectedGraph::Reversed() const {
  DirectedGraph reversed(num_vertices_);
  reversed.edges_.reserve(edges_.size());
  for (const Edge& e : edges_) {
    reversed.edges_.push_back(Edge{e.dst, e.src, e.weight});
  }
  return reversed;
}

UndirectedGraph DirectedGraph::Symmetrized() const {
  // Coalesce by unordered endpoint pair so each pair yields one edge.
  std::map<std::pair<VertexId, VertexId>, double> pair_weight;
  for (const Edge& e : edges_) {
    const auto key = e.src < e.dst ? std::make_pair(e.src, e.dst)
                                   : std::make_pair(e.dst, e.src);
    pair_weight[key] += e.weight;
  }
  UndirectedGraph symmetric(num_vertices_);
  for (const auto& [key, weight] : pair_weight) {
    symmetric.AddEdge(key.first, key.second, weight);
  }
  return symmetric;
}

void DirectedGraph::MergeFrom(const DirectedGraph& other) {
  DCS_CHECK_EQ(num_vertices_, other.num_vertices_);
  edges_.insert(edges_.end(), other.edges_.begin(), other.edges_.end());
  adjacency_valid_ = false;
}

std::span<const int64_t> DirectedGraph::OutEdgeIds(VertexId v) const {
  DCS_CHECK(v >= 0 && v < num_vertices_);
  EnsureAdjacency();
  const size_t begin = static_cast<size_t>(out_offsets_[static_cast<size_t>(v)]);
  const size_t end =
      static_cast<size_t>(out_offsets_[static_cast<size_t>(v) + 1]);
  return {out_edge_ids_.data() + begin, end - begin};
}

std::span<const int64_t> DirectedGraph::InEdgeIds(VertexId v) const {
  DCS_CHECK(v >= 0 && v < num_vertices_);
  EnsureAdjacency();
  const size_t begin = static_cast<size_t>(in_offsets_[static_cast<size_t>(v)]);
  const size_t end =
      static_cast<size_t>(in_offsets_[static_cast<size_t>(v) + 1]);
  return {in_edge_ids_.data() + begin, end - begin};
}

void DirectedGraph::EnsureAdjacency() const {
  if (adjacency_valid_) return;
  const size_t n = static_cast<size_t>(num_vertices_);
  // Counting sort into CSR: count degrees, prefix-sum into offsets, then
  // scatter edge ids (a second pass restores the offsets).
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++out_offsets_[static_cast<size_t>(e.src) + 1];
    ++in_offsets_[static_cast<size_t>(e.dst) + 1];
  }
  for (size_t v = 0; v < n; ++v) {
    out_offsets_[v + 1] += out_offsets_[v];
    in_offsets_[v + 1] += in_offsets_[v];
  }
  out_edge_ids_.resize(edges_.size());
  in_edge_ids_.resize(edges_.size());
  std::vector<int64_t> out_cursor(out_offsets_.begin(),
                                  out_offsets_.end() - 1);
  std::vector<int64_t> in_cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (size_t id = 0; id < edges_.size(); ++id) {
    out_edge_ids_[static_cast<size_t>(
        out_cursor[static_cast<size_t>(edges_[id].src)]++)] =
        static_cast<int64_t>(id);
    in_edge_ids_[static_cast<size_t>(
        in_cursor[static_cast<size_t>(edges_[id].dst)]++)] =
        static_cast<int64_t>(id);
  }
  adjacency_valid_ = true;
}

}  // namespace dcs
