#include "graph/graph_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>

namespace dcs {
namespace {

// Reads the next non-comment, non-blank line into a stringstream.
bool NextContentLine(std::istream& in, std::istringstream& line_stream) {
  std::string line;
  while (std::getline(in, line)) {
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    line_stream.clear();
    line_stream.str(line);
    return true;
  }
  return false;
}

template <typename GraphT>
void WriteGraphText(const GraphT& graph, char tag, std::ostream& out) {
  // max_digits10 makes the double round trip bit-exact through text.
  out << std::setprecision(17);
  out << tag << ' ' << graph.num_vertices() << ' ' << graph.num_edges()
      << '\n';
  for (const Edge& e : graph.edges()) {
    out << e.src << ' ' << e.dst << ' ' << e.weight << '\n';
  }
}

template <typename GraphT>
std::optional<GraphT> ReadGraphText(std::istream& in, char tag) {
  std::istringstream line;
  if (!NextContentLine(in, line)) return std::nullopt;
  std::string header;
  int64_t n = 0;
  int64_t m = 0;
  if (!(line >> header >> n >> m)) return std::nullopt;
  if (header.size() != 1 || header[0] != tag) return std::nullopt;
  if (n < 0 || m < 0 || n > (1 << 28)) return std::nullopt;
  GraphT graph(static_cast<int>(n));
  for (int64_t i = 0; i < m; ++i) {
    if (!NextContentLine(in, line)) return std::nullopt;
    int64_t src = 0;
    int64_t dst = 0;
    double weight = 0;
    if (!(line >> src >> dst >> weight)) return std::nullopt;
    if (src < 0 || src >= n || dst < 0 || dst >= n || src == dst ||
        weight < 0) {
      return std::nullopt;
    }
    graph.AddEdge(static_cast<VertexId>(src), static_cast<VertexId>(dst),
                  weight);
  }
  return graph;
}

}  // namespace

void WriteDirectedGraphText(const DirectedGraph& graph, std::ostream& out) {
  WriteGraphText(graph, 'D', out);
}

void WriteUndirectedGraphText(const UndirectedGraph& graph,
                              std::ostream& out) {
  WriteGraphText(graph, 'U', out);
}

std::optional<DirectedGraph> ReadDirectedGraphText(std::istream& in) {
  return ReadGraphText<DirectedGraph>(in, 'D');
}

std::optional<UndirectedGraph> ReadUndirectedGraphText(std::istream& in) {
  return ReadGraphText<UndirectedGraph>(in, 'U');
}

bool SaveDirectedGraph(const DirectedGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteDirectedGraphText(graph, out);
  return static_cast<bool>(out);
}

bool SaveUndirectedGraph(const UndirectedGraph& graph,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteUndirectedGraphText(graph, out);
  return static_cast<bool>(out);
}

std::optional<DirectedGraph> LoadDirectedGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadDirectedGraphText(in);
}

std::optional<UndirectedGraph> LoadUndirectedGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadUndirectedGraphText(in);
}

}  // namespace dcs
