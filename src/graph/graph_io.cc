#include "graph/graph_io.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>

namespace dcs {
namespace {

// Reads the next non-comment, non-blank line into a stringstream, tracking
// the 1-based line number for error messages.
bool NextContentLine(std::istream& in, std::istringstream& line_stream,
                     int64_t& line_number) {
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    line_stream.clear();
    line_stream.str(line);
    return true;
  }
  return false;
}

// True if the line has unparsed tokens beyond trailing whitespace/comment.
bool HasTrailingGarbage(std::istringstream& line) {
  std::string extra;
  if (!(line >> extra)) return false;
  return extra[0] != '#';
}

std::string AtLine(int64_t line_number) {
  return " (line " + std::to_string(line_number) + ")";
}

template <typename GraphT>
void WriteGraphText(const GraphT& graph, char tag, std::ostream& out) {
  // max_digits10 makes the double round trip bit-exact through text.
  out << std::setprecision(17);
  out << tag << ' ' << graph.num_vertices() << ' ' << graph.num_edges()
      << '\n';
  for (const Edge& e : graph.edges()) {
    out << e.src << ' ' << e.dst << ' ' << e.weight << '\n';
  }
}

template <typename GraphT>
StatusOr<GraphT> ReadGraphText(std::istream& in, char tag) {
  std::istringstream line;
  int64_t line_number = 0;
  if (!NextContentLine(in, line, line_number)) {
    return DataLossError("empty graph stream: no header line");
  }
  std::string header;
  int64_t n = 0;
  int64_t m = 0;
  if (!(line >> header >> n >> m) || HasTrailingGarbage(line)) {
    return InvalidArgumentError("malformed header, expected '" +
                                std::string(1, tag) + " n m'" +
                                AtLine(line_number));
  }
  if (header.size() != 1 || header[0] != tag) {
    return InvalidArgumentError("wrong graph tag '" + header +
                                "', expected '" + std::string(1, tag) + "'" +
                                AtLine(line_number));
  }
  if (n < 0 || m < 0 || n > (1 << 28)) {
    return InvalidArgumentError("bad vertex/edge counts n=" +
                                std::to_string(n) + " m=" +
                                std::to_string(m) + AtLine(line_number));
  }
  GraphT graph(static_cast<int>(n));
  for (int64_t i = 0; i < m; ++i) {
    if (!NextContentLine(in, line, line_number)) {
      return DataLossError("stream ended after " + std::to_string(i) +
                           " of " + std::to_string(m) + " edges");
    }
    int64_t src = 0;
    int64_t dst = 0;
    double weight = 0;
    if (!(line >> src >> dst >> weight) || HasTrailingGarbage(line)) {
      return InvalidArgumentError("malformed edge line, expected 'src dst "
                                  "weight'" +
                                  AtLine(line_number));
    }
    if (src < 0 || src >= n || dst < 0 || dst >= n) {
      return InvalidArgumentError(
          "edge endpoint out of range [0, " + std::to_string(n) + "): " +
          std::to_string(src) + " -> " + std::to_string(dst) +
          AtLine(line_number));
    }
    if (src == dst) {
      return InvalidArgumentError("self-loop at vertex " +
                                  std::to_string(src) + AtLine(line_number));
    }
    if (!std::isfinite(weight) || weight < 0) {
      return InvalidArgumentError("non-finite or negative edge weight" +
                                  AtLine(line_number));
    }
    graph.AddEdge(static_cast<VertexId>(src), static_cast<VertexId>(dst),
                  weight);
  }
  return graph;
}

}  // namespace

void WriteDirectedGraphText(const DirectedGraph& graph, std::ostream& out) {
  WriteGraphText(graph, 'D', out);
}

void WriteUndirectedGraphText(const UndirectedGraph& graph,
                              std::ostream& out) {
  WriteGraphText(graph, 'U', out);
}

StatusOr<DirectedGraph> ReadDirectedGraphText(std::istream& in) {
  return ReadGraphText<DirectedGraph>(in, 'D');
}

StatusOr<UndirectedGraph> ReadUndirectedGraphText(std::istream& in) {
  return ReadGraphText<UndirectedGraph>(in, 'U');
}

Status SaveDirectedGraph(const DirectedGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return NotFoundError("cannot open '" + path + "' for writing");
  }
  WriteDirectedGraphText(graph, out);
  if (!out) return InternalError("write to '" + path + "' failed");
  return OkStatus();
}

Status SaveUndirectedGraph(const UndirectedGraph& graph,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return NotFoundError("cannot open '" + path + "' for writing");
  }
  WriteUndirectedGraphText(graph, out);
  if (!out) return InternalError("write to '" + path + "' failed");
  return OkStatus();
}

StatusOr<DirectedGraph> LoadDirectedGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  return ReadDirectedGraphText(in);
}

StatusOr<UndirectedGraph> LoadUndirectedGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  return ReadUndirectedGraphText(in);
}

}  // namespace dcs
