// Connectivity predicates: strong connectivity for digraphs (Definition 2.1
// requires β-balanced graphs to be strongly connected) and components for
// undirected graphs (used by sampling-based min-cut estimators).

#ifndef DCS_GRAPH_CONNECTIVITY_H_
#define DCS_GRAPH_CONNECTIVITY_H_

#include <vector>

#include "graph/digraph.h"
#include "graph/ugraph.h"

namespace dcs {

// True iff the directed graph is strongly connected (trivially true for
// graphs with fewer than two vertices).
bool IsStronglyConnected(const DirectedGraph& graph);

// True iff the undirected graph is connected.
bool IsConnected(const UndirectedGraph& graph);

// Component id (0-based, dense) for every vertex.
std::vector<int> ConnectedComponents(const UndirectedGraph& graph);

// Number of connected components.
int CountComponents(const UndirectedGraph& graph);

}  // namespace dcs

#endif  // DCS_GRAPH_CONNECTIVITY_H_
