// β-balance of directed graphs (Definition 2.1).
//
// A strongly connected digraph is β-balanced if w(S, V∖S) ≤ β·w(V∖S, S) for
// every proper cut. The exact balance is the maximum ratio over all cuts —
// computable by enumeration for small n — and can be lower-bounded by
// sampling and upper-bounded by the per-edge reversal ratio (if every edge
// (u,v) has a reverse edge of weight ≥ w(u,v)/β, every cut is β-balanced;
// this is exactly how the paper argues balance of its constructions).

#ifndef DCS_GRAPH_BALANCE_H_
#define DCS_GRAPH_BALANCE_H_

#include <optional>

#include "graph/digraph.h"
#include "util/random.h"

namespace dcs {

// w(S, V∖S) / w(V∖S, S). Returns +infinity when the denominator is zero
// (and the numerator is positive); returns 1 when both are zero.
double DirectedCutRatio(const DirectedGraph& graph, const VertexSet& side);

// Exact balance β(G) = max over all proper cuts of max(ratio, 1/ratio)…
// more precisely max over both orientations, which equals the smallest β
// such that G is β-balanced. Enumerates all 2^(n−1) − 1 cuts; requires
// 2 <= n <= 24.
double MeasureBalanceExact(const DirectedGraph& graph);

// Lower bound on β(G) from `samples` random cuts plus all singleton cuts.
double MeasureBalanceSampled(const DirectedGraph& graph, Rng& rng,
                             int samples);

// Upper bound on β(G) via per-edge reversal ratios: the smallest β such
// that every directed pair (u,v) has w(u→v) ≤ β·w(v→u). Returns nullopt if
// some edge has no reverse weight at all (no finite per-edge certificate).
// Any cut's imbalance is at most this value.
std::optional<double> PerEdgeBalanceCertificate(const DirectedGraph& graph);

// True iff every proper cut satisfies w(S, V∖S) <= beta * w(V∖S, S)
// (exact enumeration; requires n <= 24).
bool VerifyBalanceExact(const DirectedGraph& graph, double beta);

}  // namespace dcs

#endif  // DCS_GRAPH_BALANCE_H_
