// Graph-family zoo: the standard instance source for the sparsifier
// bake-off, chaos runs, and serving benchmarks.
//
// Every family is seed-deterministic (explicit Rng seed, SubtaskSeed
// discipline inside) and built from the forward-weight-w / backward-weight
// w/beta idiom, so the per-edge balance certificate equals the requested
// beta exactly — the instance *reports* its ground-truth balance instead
// of making callers estimate it. Families with an analytically known min
// cut also report the planted value and a witness side, which the
// differential harness checks against src/mincut before trusting either.

#ifndef DCS_GRAPH_ZOO_H_
#define DCS_GRAPH_ZOO_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "graph/types.h"

namespace dcs {

enum class ZooFamily {
  kPowerLaw,          // preferential-attachment topology, skewed degrees
  kExpander,          // union of random perfect matchings, 8-regular
  kPlantedCut,        // two dense blobs joined by a known sparse cut
  kDumbbell,          // two bidirected cliques joined by directed bridges
  kLayeredBipartite,  // complete bipartite consecutive layers + wraparound
};

// Stable lowercase names ("power_law", "expander", "planted_cut",
// "dumbbell", "layered_bipartite") used in bench JSON and CLI flags.
const char* ZooFamilyName(ZooFamily family);

// Reverse lookup; nullopt for unknown names.
std::optional<ZooFamily> FindZooFamily(const std::string& name);

// All families, in enum order.
const std::vector<ZooFamily>& AllZooFamilies();

struct ZooOptions {
  int n = 64;          // target vertex count (families may round, see .cc)
  double beta = 1.0;   // balance parameter, >= 1
  uint64_t seed = 1;   // every family is a pure function of (n, beta, seed)
};

struct ZooInstance {
  ZooFamily family = ZooFamily::kPowerLaw;
  DirectedGraph graph{0};
  // Ground truth: the per-edge balance certificate. By construction every
  // family satisfies PerEdgeBalanceCertificate(graph) == beta_certificate
  // exactly (the forward/backward weight-ratio idiom).
  double beta_certificate = 1.0;
  // Analytically known directed global min cut, when the construction
  // plants one (kPlantedCut, kDumbbell). nullopt means "compute exactly".
  std::optional<double> planted_min_cut;
  // Witness side achieving planted_min_cut, when known.
  std::optional<VertexSet> planted_side;
};

// Builds one instance. Same options -> identical edge list (asserted by
// tests/graph_generators_test.cc). Requires options.n >= 8, beta >= 1.
ZooInstance MakeZooInstance(ZooFamily family, const ZooOptions& options);

}  // namespace dcs

#endif  // DCS_GRAPH_ZOO_H_
