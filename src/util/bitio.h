// Bit-exact serialization.
//
// Lower-bound experiments in this library are about *bits*: "any for-each
// cut sketch must output Ω̃(n√β/ε) bits". To make those statements
// measurable, every sketch serializes itself through a BitWriter, and the
// communication-game framework counts transcript lengths with the same
// machinery. BitWriter/BitReader pack little-endian within bytes and support
// fixed-width fields, Elias-gamma coded integers, and IEEE doubles.

#ifndef DCS_UTIL_BITIO_H_
#define DCS_UTIL_BITIO_H_

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace dcs {

// Accumulates a bit stream. Bits are appended LSB-first within each byte.
class BitWriter {
 public:
  BitWriter() = default;

  // Appends a single bit (0 or 1).
  void WriteBit(int bit);

  // Appends the low `width` bits of `value`, LSB first. width in [0, 64].
  void WriteBits(uint64_t value, int width);

  // Appends a nonnegative integer with Elias-gamma coding (value + 1, so 0
  // is representable). Costs 2*floor(log2(value+1)) + 1 bits.
  void WriteEliasGamma(uint64_t value);

  // Appends a 64-bit IEEE-754 double (fixed 64 bits).
  void WriteDouble(double value);

  // Appends the first `bit_count` bits of another writer's packed bytes
  // (used to splice an independently built payload into an envelope).
  void AppendBits(const std::vector<uint8_t>& bytes, int64_t bit_count);

  // Total number of bits written so far.
  int64_t bit_count() const { return bit_count_; }

  // The packed bytes (final partial byte zero-padded).
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
  int64_t bit_count_ = 0;
};

// Reads back a stream produced by BitWriter.
//
// Two read APIs share the cursor. The plain reads (ReadBit, ...) are for
// *trusted* streams the library itself just wrote — transcripts, in-process
// round trips — and CHECK-fail on overruns. The Try reads are for
// *untrusted* bytes (anything that crossed a machine or file boundary):
// they return kDataLoss instead of aborting and leave the cursor where the
// failure was detected.
class BitReader {
 public:
  // The referenced buffer must outlive the reader.
  explicit BitReader(const std::vector<uint8_t>& bytes)
      : bytes_(&bytes), limit_(static_cast<int64_t>(bytes.size()) * 8) {}

  // Reads a single bit. CHECK-fails past the end of the stream.
  int ReadBit();

  // Reads `width` bits, LSB first. width in [0, 64].
  uint64_t ReadBits(int width);

  // Reads an Elias-gamma coded nonnegative integer.
  uint64_t ReadEliasGamma();

  // Reads a 64-bit IEEE-754 double.
  double ReadDouble();

  // Non-aborting variants for untrusted streams: kDataLoss on overrun (and,
  // for Elias gamma, on a run of zeros no finite code can start with).
  StatusOr<int> TryReadBit();
  StatusOr<uint64_t> TryReadBits(int width);
  StatusOr<uint64_t> TryReadEliasGamma();
  StatusOr<double> TryReadDouble();

  // Number of bits consumed so far.
  int64_t position() const { return position_; }

  // Number of unread bits (including any zero padding in the final byte).
  int64_t RemainingBits() const { return limit_ - position_; }

  // True if fewer than `width` bits remain.
  bool AtEnd() const { return position_ >= limit_; }

 private:
  const std::vector<uint8_t>* bytes_;
  int64_t position_ = 0;
  int64_t limit_ = 0;
};

}  // namespace dcs

#endif  // DCS_UTIL_BITIO_H_
