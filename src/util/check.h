// Invariant-enforcement macros.
//
// The library does not throw exceptions across API boundaries (recoverable
// conditions are reported via return values / std::optional). CHECK is used
// for programmer errors and violated invariants: it prints the failed
// condition with file/line context and aborts.

#ifndef DCS_UTIL_CHECK_H_
#define DCS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dcs {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, condition);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_check
}  // namespace dcs

// Aborts (with location context) if `condition` is false. Always on.
#define DCS_CHECK(condition)                                          \
  do {                                                                \
    if (!(condition)) {                                               \
      ::dcs::internal_check::CheckFailed(__FILE__, __LINE__,          \
                                         #condition);                 \
    }                                                                 \
  } while (false)

// Binary comparison checks. These evaluate each argument exactly once.
#define DCS_CHECK_OP(op, a, b)                                        \
  do {                                                                \
    auto dcs_check_lhs = (a);                                         \
    auto dcs_check_rhs = (b);                                         \
    if (!(dcs_check_lhs op dcs_check_rhs)) {                          \
      ::dcs::internal_check::CheckFailed(__FILE__, __LINE__,          \
                                         #a " " #op " " #b);          \
    }                                                                 \
  } while (false)

#define DCS_CHECK_EQ(a, b) DCS_CHECK_OP(==, a, b)
#define DCS_CHECK_NE(a, b) DCS_CHECK_OP(!=, a, b)
#define DCS_CHECK_LT(a, b) DCS_CHECK_OP(<, a, b)
#define DCS_CHECK_LE(a, b) DCS_CHECK_OP(<=, a, b)
#define DCS_CHECK_GT(a, b) DCS_CHECK_OP(>, a, b)
#define DCS_CHECK_GE(a, b) DCS_CHECK_OP(>=, a, b)

// Debug-only variants; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define DCS_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define DCS_DCHECK(condition) DCS_CHECK(condition)
#endif

#endif  // DCS_UTIL_CHECK_H_
