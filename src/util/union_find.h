// Disjoint-set union with path halving and union by size.
//
// Shared by the contraction algorithms (Karger), the Nagamochi–Ibaraki
// forest peeling, and the AGM Boruvka extraction.

#ifndef DCS_UTIL_UNION_FIND_H_
#define DCS_UTIL_UNION_FIND_H_

#include <numeric>
#include <vector>

#include "util/check.h"

namespace dcs {

class UnionFind {
 public:
  explicit UnionFind(int n)
      : parent_(static_cast<size_t>(n)), size_(static_cast<size_t>(n), 1) {
    DCS_CHECK_GE(n, 0);
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  // Returns every element to its own singleton set.
  void Reset() {
    std::iota(parent_.begin(), parent_.end(), 0);
    std::fill(size_.begin(), size_.end(), 1);
  }

  // Representative of v's set (path halving).
  int Find(int v) {
    DCS_CHECK(v >= 0 && v < static_cast<int>(parent_.size()));
    while (parent_[static_cast<size_t>(v)] != v) {
      parent_[static_cast<size_t>(v)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(v)])];
      v = parent_[static_cast<size_t>(v)];
    }
    return v;
  }

  // Merges the sets of a and b; returns false if already joined.
  bool Union(int a, int b) {
    int ra = Find(a);
    int rb = Find(b);
    if (ra == rb) return false;
    if (size_[static_cast<size_t>(ra)] < size_[static_cast<size_t>(rb)]) {
      std::swap(ra, rb);
    }
    parent_[static_cast<size_t>(rb)] = ra;
    size_[static_cast<size_t>(ra)] += size_[static_cast<size_t>(rb)];
    return true;
  }

  // Merges child's set into parent's set, guaranteeing that parent's
  // representative stays the representative (for callers that co-maintain
  // per-root payloads). Returns false if already joined.
  bool UnionInto(int child, int parent) {
    const int rc = Find(child);
    const int rp = Find(parent);
    if (rc == rp) return false;
    parent_[static_cast<size_t>(rc)] = rp;
    size_[static_cast<size_t>(rp)] += size_[static_cast<size_t>(rc)];
    return true;
  }

  bool Connected(int a, int b) { return Find(a) == Find(b); }

  // Size of v's set.
  int SetSize(int v) { return size_[static_cast<size_t>(Find(v))]; }

  int num_elements() const { return static_cast<int>(parent_.size()); }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
};

}  // namespace dcs

#endif  // DCS_UTIL_UNION_FIND_H_
