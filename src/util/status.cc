#include "util/status.h"

namespace dcs {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}

Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}

Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}

Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}

Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}

Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}

Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

}  // namespace dcs
