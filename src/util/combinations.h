// Revolving-door (Gray code) enumeration of fixed-size subsets.
//
// Visits all C(n, t) t-subsets of {0, ..., n−1} so that consecutive
// subsets differ by exactly one element swap (one out, one in) — the
// combinatorial Gray code of Knuth 7.2.1.3 / Nijenhuis–Wilf, built from
// the recursion  S(n, t) = S(n−1, t), then reverse(S(n−1, t−1)) ⊎ {n−1}.
//
// This is the enumeration order behind ForAllDecoder's exhaustive subset
// search (Lemma 4.4): against an incremental cut oracle each successive
// candidate costs two O(deg) vertex flips instead of an O(m) rescan.

#ifndef DCS_UTIL_COMBINATIONS_H_
#define DCS_UTIL_COMBINATIONS_H_

#include <functional>

#include "util/check.h"

namespace dcs {

// The first subset of the revolving-door order is always {0, ..., t−1}.
// `swap(out, in)` is then invoked C(n, t) − 1 times; applying each swap
// (remove `out`, insert `in`) to the current subset yields the next one.
// Requires 0 <= t <= n. Amortized O(1) work per visited subset.
void VisitRevolvingDoorSwaps(int n, int t,
                             const std::function<void(int out, int in)>& swap);

// Cooperative-deadline variant: `swap` returns true to continue and false
// to abandon the enumeration immediately (no further swaps are emitted).
// Returns true if the enumeration ran to completion, false if the visitor
// stopped it. Used by decoders whose enumeration is exponential and must
// respect a candidate budget under chaos runs.
bool VisitRevolvingDoorSwapsUntil(
    int n, int t, const std::function<bool(int out, int in)>& swap);

}  // namespace dcs

#endif  // DCS_UTIL_COMBINATIONS_H_
