#include "util/bitio.h"

#include <algorithm>
#include <cstring>

namespace dcs {

void BitWriter::WriteBit(int bit) {
  DCS_DCHECK(bit == 0 || bit == 1);
  const int offset = static_cast<int>(bit_count_ & 7);
  if (offset == 0) bytes_.push_back(0);
  if (bit) bytes_.back() |= static_cast<uint8_t>(1u << offset);
  ++bit_count_;
}

void BitWriter::WriteBits(uint64_t value, int width) {
  DCS_CHECK_GE(width, 0);
  DCS_CHECK_LE(width, 64);
  for (int i = 0; i < width; ++i) {
    WriteBit(static_cast<int>((value >> i) & 1));
  }
}

void BitWriter::WriteEliasGamma(uint64_t value) {
  DCS_CHECK_LT(value, UINT64_MAX);
  const uint64_t shifted = value + 1;
  int log = 63;
  while (((shifted >> log) & 1) == 0) --log;
  for (int i = 0; i < log; ++i) WriteBit(0);
  WriteBit(1);
  // Low `log` bits of shifted, MSB-to-LSB order mirrors classic gamma.
  for (int i = log - 1; i >= 0; --i) {
    WriteBit(static_cast<int>((shifted >> i) & 1));
  }
}

void BitWriter::WriteDouble(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  WriteBits(bits, 64);
}

void BitWriter::AppendBits(const std::vector<uint8_t>& bytes,
                           int64_t bit_count) {
  DCS_CHECK_GE(bit_count, 0);
  DCS_CHECK_LE(bit_count, static_cast<int64_t>(bytes.size()) * 8);
  int64_t done = 0;
  while (done < bit_count) {
    const int chunk = static_cast<int>(std::min<int64_t>(64, bit_count - done));
    uint64_t value = 0;
    for (int i = 0; i < chunk; ++i) {
      const int64_t bit = done + i;
      const uint8_t byte = bytes[static_cast<size_t>(bit >> 3)];
      value |= static_cast<uint64_t>((byte >> (bit & 7)) & 1) << i;
    }
    WriteBits(value, chunk);
    done += chunk;
  }
}

int BitReader::ReadBit() {
  DCS_CHECK_LT(position_, limit_);
  const uint8_t byte = (*bytes_)[static_cast<size_t>(position_ >> 3)];
  const int bit = (byte >> (position_ & 7)) & 1;
  ++position_;
  return bit;
}

uint64_t BitReader::ReadBits(int width) {
  DCS_CHECK_GE(width, 0);
  DCS_CHECK_LE(width, 64);
  uint64_t value = 0;
  for (int i = 0; i < width; ++i) {
    value |= static_cast<uint64_t>(ReadBit()) << i;
  }
  return value;
}

uint64_t BitReader::ReadEliasGamma() {
  int log = 0;
  while (ReadBit() == 0) {
    ++log;
    DCS_CHECK_LT(log, 64);
  }
  uint64_t shifted = 1;
  for (int i = 0; i < log; ++i) {
    shifted = (shifted << 1) | static_cast<uint64_t>(ReadBit());
  }
  return shifted - 1;
}

double BitReader::ReadDouble() {
  const uint64_t bits = ReadBits(64);
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

StatusOr<int> BitReader::TryReadBit() {
  if (position_ >= limit_) {
    return DataLossError("bit stream truncated");
  }
  return ReadBit();
}

StatusOr<uint64_t> BitReader::TryReadBits(int width) {
  DCS_CHECK_GE(width, 0);
  DCS_CHECK_LE(width, 64);
  if (RemainingBits() < width) {
    return DataLossError("bit stream truncated");
  }
  return ReadBits(width);
}

StatusOr<uint64_t> BitReader::TryReadEliasGamma() {
  int log = 0;
  while (true) {
    DCS_ASSIGN_OR_RETURN(const int bit, TryReadBit());
    if (bit == 1) break;
    if (++log >= 64) {
      return DataLossError("Elias-gamma prefix longer than 64 bits");
    }
  }
  DCS_ASSIGN_OR_RETURN(const uint64_t low, TryReadBits(log));
  // The payload is written MSB-to-LSB, and TryReadBits packs bits in read
  // order LSB-first — so bit i of `low` is the (i+1)-th most significant
  // payload bit. Append them in stream order under the leading 1.
  uint64_t shifted = 1;
  for (int i = 0; i < log; ++i) {
    shifted = (shifted << 1) | ((low >> i) & 1);
  }
  return shifted - 1;
}

StatusOr<double> BitReader::TryReadDouble() {
  DCS_ASSIGN_OR_RETURN(const uint64_t bits, TryReadBits(64));
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace dcs
