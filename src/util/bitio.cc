#include "util/bitio.h"

#include <cstring>

namespace dcs {

void BitWriter::WriteBit(int bit) {
  DCS_DCHECK(bit == 0 || bit == 1);
  const int offset = static_cast<int>(bit_count_ & 7);
  if (offset == 0) bytes_.push_back(0);
  if (bit) bytes_.back() |= static_cast<uint8_t>(1u << offset);
  ++bit_count_;
}

void BitWriter::WriteBits(uint64_t value, int width) {
  DCS_CHECK_GE(width, 0);
  DCS_CHECK_LE(width, 64);
  for (int i = 0; i < width; ++i) {
    WriteBit(static_cast<int>((value >> i) & 1));
  }
}

void BitWriter::WriteEliasGamma(uint64_t value) {
  DCS_CHECK_LT(value, UINT64_MAX);
  const uint64_t shifted = value + 1;
  int log = 63;
  while (((shifted >> log) & 1) == 0) --log;
  for (int i = 0; i < log; ++i) WriteBit(0);
  WriteBit(1);
  // Low `log` bits of shifted, MSB-to-LSB order mirrors classic gamma.
  for (int i = log - 1; i >= 0; --i) {
    WriteBit(static_cast<int>((shifted >> i) & 1));
  }
}

void BitWriter::WriteDouble(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  WriteBits(bits, 64);
}

int BitReader::ReadBit() {
  DCS_CHECK_LT(position_, limit_);
  const uint8_t byte = (*bytes_)[static_cast<size_t>(position_ >> 3)];
  const int bit = (byte >> (position_ & 7)) & 1;
  ++position_;
  return bit;
}

uint64_t BitReader::ReadBits(int width) {
  DCS_CHECK_GE(width, 0);
  DCS_CHECK_LE(width, 64);
  uint64_t value = 0;
  for (int i = 0; i < width; ++i) {
    value |= static_cast<uint64_t>(ReadBit()) << i;
  }
  return value;
}

uint64_t BitReader::ReadEliasGamma() {
  int log = 0;
  while (ReadBit() == 0) {
    ++log;
    DCS_CHECK_LT(log, 64);
  }
  uint64_t shifted = 1;
  for (int i = 0; i < log; ++i) {
    shifted = (shifted << 1) | static_cast<uint64_t>(ReadBit());
  }
  return shifted - 1;
}

double BitReader::ReadDouble() {
  const uint64_t bits = ReadBits(64);
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace dcs
