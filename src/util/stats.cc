#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcs {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0;
  const double mean = Mean(values);
  double sum_sq = 0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(n - 1);
  const size_t lo = static_cast<size_t>(rank);
  // rank == n-1 exactly at p = 100 (and any fp drift above it): the upper
  // interpolation point would be past the end, so return the max directly.
  if (lo >= n - 1) return values[n - 1];
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[lo + 1] * frac;
}

LineFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys) {
  DCS_CHECK_EQ(xs.size(), ys.size());
  DCS_CHECK_GE(xs.size(), 2u);
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  LineFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0) {
    fit.slope = 0;
    fit.intercept = sy / n;
    fit.r_squared = 0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0) {
    fit.r_squared = 1;
    return fit;
  }
  double ss_res = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double resid = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += resid * resid;
  }
  fit.r_squared = 1 - ss_res / ss_tot;
  return fit;
}

LineFit FitLogLog(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  DCS_CHECK_EQ(xs.size(), ys.size());
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    DCS_CHECK_GT(xs[i], 0);
    DCS_CHECK_GT(ys[i], 0);
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return FitLine(lx, ly);
}

}  // namespace dcs
