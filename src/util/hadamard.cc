#include "util/hadamard.h"

#include <bit>

namespace dcs {

HadamardMatrix::HadamardMatrix(int log_size) : log_size_(log_size) {
  DCS_CHECK_GE(log_size, 0);
  DCS_CHECK_LE(log_size, 30);
  size_ = 1 << log_size;
}

int HadamardMatrix::Entry(int row, int col) const {
  DCS_DCHECK(row >= 0 && row < size_);
  DCS_DCHECK(col >= 0 && col < size_);
  const unsigned overlap =
      static_cast<unsigned>(row) & static_cast<unsigned>(col);
  return (std::popcount(overlap) & 1) ? -1 : 1;
}

std::vector<int8_t> HadamardMatrix::Row(int row) const {
  std::vector<int8_t> values(static_cast<size_t>(size_));
  for (int col = 0; col < size_; ++col) {
    values[static_cast<size_t>(col)] = static_cast<int8_t>(Entry(row, col));
  }
  return values;
}

namespace {

template <typename T>
void FwhtImpl(std::vector<T>& values) {
  const size_t n = values.size();
  DCS_CHECK(n > 0 && (n & (n - 1)) == 0);
  for (size_t len = 1; len < n; len <<= 1) {
    for (size_t block = 0; block < n; block += len << 1) {
      for (size_t i = block; i < block + len; ++i) {
        const T a = values[i];
        const T b = values[i + len];
        values[i] = a + b;
        values[i + len] = a - b;
      }
    }
  }
}

}  // namespace

void FastWalshHadamardTransform(std::vector<int64_t>& values) {
  FwhtImpl(values);
}

void FastWalshHadamardTransform(std::vector<double>& values) {
  FwhtImpl(values);
}

TensorSignMatrix::TensorSignMatrix(int log_size)
    : log_size_(log_size),
      block_size_(1 << log_size),
      rows_(static_cast<int64_t>(block_size_ - 1) * (block_size_ - 1)),
      cols_(static_cast<int64_t>(block_size_) * block_size_),
      hadamard_(log_size) {
  DCS_CHECK_GE(log_size, 1);
  DCS_CHECK_LE(log_size, 15);
}

std::pair<int, int> TensorSignMatrix::RowFactors(int64_t t) const {
  DCS_DCHECK(t >= 0 && t < rows_);
  const int n_minus_1 = block_size_ - 1;
  const int i = static_cast<int>(t / n_minus_1) + 1;
  const int j = static_cast<int>(t % n_minus_1) + 1;
  return {i, j};
}

int TensorSignMatrix::Entry(int64_t t, int64_t col) const {
  DCS_DCHECK(col >= 0 && col < cols_);
  const auto [i, j] = RowFactors(t);
  const int a = static_cast<int>(col / block_size_);
  const int b = static_cast<int>(col % block_size_);
  return hadamard_.Entry(i, a) * hadamard_.Entry(j, b);
}

std::vector<int8_t> TensorSignMatrix::LeftFactor(int64_t t) const {
  return hadamard_.Row(RowFactors(t).first);
}

std::vector<int8_t> TensorSignMatrix::RightFactor(int64_t t) const {
  return hadamard_.Row(RowFactors(t).second);
}

std::vector<int64_t> TensorSignMatrix::EncodeSigns(
    const std::vector<int8_t>& z) const {
  DCS_CHECK_EQ(static_cast<int64_t>(z.size()), rows_);
  const int n = block_size_;
  // Arrange z into an N×N coefficient matrix Z with Z[i][j] = z_t for the
  // row t whose factors are (i, j); row/column 0 are zero (the all-ones
  // Hadamard row is excluded by the construction). Then
  //   x[a*N + b] = Σ_{i,j} Z[i][j]·H(i,a)·H(j,b)
  // which is a Walsh–Hadamard transform along each dimension (H is
  // symmetric, so transforming rows then columns computes exactly this).
  std::vector<std::vector<int64_t>> coeff(
      static_cast<size_t>(n), std::vector<int64_t>(static_cast<size_t>(n), 0));
  for (int64_t t = 0; t < rows_; ++t) {
    const auto [i, j] = RowFactors(t);
    coeff[static_cast<size_t>(i)][static_cast<size_t>(j)] =
        z[static_cast<size_t>(t)];
  }
  // Transform along j for each fixed i.
  for (int i = 0; i < n; ++i) {
    FastWalshHadamardTransform(coeff[static_cast<size_t>(i)]);
  }
  // Transform along i for each fixed b.
  std::vector<int64_t> column(static_cast<size_t>(n));
  for (int b = 0; b < n; ++b) {
    for (int i = 0; i < n; ++i) {
      column[static_cast<size_t>(i)] =
          coeff[static_cast<size_t>(i)][static_cast<size_t>(b)];
    }
    FastWalshHadamardTransform(column);
    for (int a = 0; a < n; ++a) {
      coeff[static_cast<size_t>(a)][static_cast<size_t>(b)] =
          column[static_cast<size_t>(a)];
    }
  }
  std::vector<int64_t> x(static_cast<size_t>(cols_));
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      x[static_cast<size_t>(a) * static_cast<size_t>(n) +
        static_cast<size_t>(b)] =
          coeff[static_cast<size_t>(a)][static_cast<size_t>(b)];
    }
  }
  return x;
}

int64_t TensorSignMatrix::InnerProductWithRow(const std::vector<int64_t>& x,
                                              int64_t t) const {
  DCS_CHECK_EQ(static_cast<int64_t>(x.size()), cols_);
  int64_t sum = 0;
  for (int64_t col = 0; col < cols_; ++col) {
    sum += x[static_cast<size_t>(col)] * Entry(t, col);
  }
  return sum;
}

}  // namespace dcs
