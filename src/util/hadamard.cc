#include "util/hadamard.h"

#include <algorithm>
#include <bit>

#include "util/simd.h"

namespace dcs {

HadamardMatrix::HadamardMatrix(int log_size) : log_size_(log_size) {
  DCS_CHECK_GE(log_size, 0);
  DCS_CHECK_LE(log_size, 30);
  size_ = 1 << log_size;
}

int HadamardMatrix::Entry(int row, int col) const {
  DCS_DCHECK(row >= 0 && row < size_);
  DCS_DCHECK(col >= 0 && col < size_);
  const unsigned overlap =
      static_cast<unsigned>(row) & static_cast<unsigned>(col);
  return (std::popcount(overlap) & 1) ? -1 : 1;
}

std::vector<int8_t> HadamardMatrix::Row(int row) const {
  return PackedRow(row).ToSigns();
}

SignVector HadamardMatrix::PackedRow(int row) const {
  DCS_CHECK(row >= 0 && row < size_);
  return SignVector::HadamardRow(row, log_size_);
}

void FastWalshHadamardTransform(std::vector<int64_t>& values) {
  simd::Fwht(values.data(), values.size(), 1);
}

void FastWalshHadamardTransform(std::vector<double>& values) {
  simd::Fwht(values.data(), values.size(), 1);
}

void FastWalshHadamardTransform(int64_t* data, size_t n, size_t stride) {
  simd::Fwht(data, n, stride);
}

void FastWalshHadamardTransform(double* data, size_t n, size_t stride) {
  simd::Fwht(data, n, stride);
}

TensorSignMatrix::TensorSignMatrix(int log_size)
    : log_size_(log_size),
      block_size_(1 << log_size),
      rows_(static_cast<int64_t>(block_size_ - 1) * (block_size_ - 1)),
      cols_(static_cast<int64_t>(block_size_) * block_size_),
      hadamard_(log_size) {
  DCS_CHECK_GE(log_size, 1);
  DCS_CHECK_LE(log_size, 15);
}

std::pair<int, int> TensorSignMatrix::RowFactors(int64_t t) const {
  DCS_DCHECK(t >= 0 && t < rows_);
  const int n_minus_1 = block_size_ - 1;
  const int i = static_cast<int>(t / n_minus_1) + 1;
  const int j = static_cast<int>(t % n_minus_1) + 1;
  return {i, j};
}

int TensorSignMatrix::Entry(int64_t t, int64_t col) const {
  DCS_DCHECK(col >= 0 && col < cols_);
  const auto [i, j] = RowFactors(t);
  const int a = static_cast<int>(col / block_size_);
  const int b = static_cast<int>(col % block_size_);
  return hadamard_.Entry(i, a) * hadamard_.Entry(j, b);
}

std::vector<int8_t> TensorSignMatrix::LeftFactor(int64_t t) const {
  return hadamard_.Row(RowFactors(t).first);
}

std::vector<int8_t> TensorSignMatrix::RightFactor(int64_t t) const {
  return hadamard_.Row(RowFactors(t).second);
}

void TensorSignMatrix::LeftFactorInto(int64_t t, std::span<int8_t> out) const {
  HadamardRowSignsInto(RowFactors(t).first, log_size_, out);
}

void TensorSignMatrix::RightFactorInto(int64_t t,
                                       std::span<int8_t> out) const {
  HadamardRowSignsInto(RowFactors(t).second, log_size_, out);
}

SignVector TensorSignMatrix::LeftFactorPacked(int64_t t) const {
  return hadamard_.PackedRow(RowFactors(t).first);
}

SignVector TensorSignMatrix::RightFactorPacked(int64_t t) const {
  return hadamard_.PackedRow(RowFactors(t).second);
}

int64_t TensorSignMatrix::RowInnerProduct(int64_t t, int64_t t_other) const {
  return LeftFactorPacked(t).InnerProduct(LeftFactorPacked(t_other)) *
         RightFactorPacked(t).InnerProduct(RightFactorPacked(t_other));
}

std::vector<int64_t> TensorSignMatrix::EncodeSigns(
    const std::vector<int8_t>& z) const {
  DCS_CHECK_EQ(static_cast<int64_t>(z.size()), rows_);
  const size_t n = static_cast<size_t>(block_size_);
  // Arrange z into a flat row-major N×N coefficient matrix X with
  // X[i·N + j] = z_t for the row t whose factors are (i, j); row/column 0
  // stay zero (the all-ones Hadamard row is excluded by the construction).
  // Then x[a·N + b] = Σ_{i,j} X[i·N+j]·H(i,a)·H(j,b), a Walsh–Hadamard
  // transform along each dimension (H is symmetric, so transforming rows
  // then columns computes exactly this) — and the transformed buffer *is*
  // the answer, already in the a·N + b layout.
  std::vector<int64_t> x(static_cast<size_t>(cols_), 0);
  for (int64_t t = 0; t < rows_; ++t) {
    const auto [i, j] = RowFactors(t);
    x[static_cast<size_t>(i) * n + static_cast<size_t>(j)] =
        z[static_cast<size_t>(t)];
  }
  // Transform along j for each fixed i (contiguous rows, SIMD-dispatched).
  for (size_t i = 0; i < n; ++i) {
    simd::Fwht(x.data() + i * n, n, 1);
  }
  // Transform along i. Rather than running one stride-N FWHT per column
  // (N passes that each touch one element per cache line), run the
  // butterfly stages over whole rows: each (row a, row a+len) pair is
  // combined element-wise in a contiguous SIMD sweep. Column tiling keeps
  // the working set of all log N stages inside L2 when the buffer is
  // larger: each tile of columns runs every stage while resident (the
  // stages act per column, so tiling reorders only operations on disjoint
  // elements — results are bit-identical to the untiled sweep).
  constexpr size_t kL2TileBytes = size_t{1} << 18;  // 256 KiB
  const size_t tile =
      std::max<size_t>(8, std::min(n, kL2TileBytes / (n * sizeof(int64_t))));
  for (size_t col0 = 0; col0 < n; col0 += tile) {
    const size_t width = std::min(tile, n - col0);
    for (size_t len = 1; len < n; len <<= 1) {
      for (size_t block = 0; block < n; block += len << 1) {
        for (size_t a = block; a < block + len; ++a) {
          simd::ButterflyRows(x.data() + a * n + col0,
                              x.data() + (a + len) * n + col0, width);
        }
      }
    }
  }
  return x;
}

int64_t TensorSignMatrix::InnerProductWithRow(const std::vector<int64_t>& x,
                                              int64_t t) const {
  DCS_CHECK_EQ(static_cast<int64_t>(x.size()), cols_);
  int64_t sum = 0;
  for (int64_t col = 0; col < cols_; ++col) {
    sum += x[static_cast<size_t>(col)] * Entry(t, col);
  }
  return sum;
}

}  // namespace dcs
