#include "util/combinations.h"

namespace dcs {
namespace {

// Transition sequences of S(n, t) and reverse(S(n, t)), emitted via the
// recursion in the header. The endpoint subsets needed for the junction
// swaps have closed forms:
//   first(S(n, t)) = {0, ..., t−1}
//   last(S(n, t))  = {0, ..., t−2} ∪ {n−1}     (t >= 1)
// so the forward junction last(S(n−1, t)) → last(S(n−1, t−1)) ∪ {n−1}
// removes t−2 (or n−2 when t == 1) and inserts n−1.
//
// Both entry points share the stoppable emitters; the visitor returns false
// to unwind the whole recursion without emitting further swaps.

using StopFn = std::function<bool(int, int)>;

bool EmitForward(int n, int t, const StopFn& swap);
bool EmitBackward(int n, int t, const StopFn& swap);

bool EmitForward(int n, int t, const StopFn& swap) {
  if (t == 0 || t == n) return true;  // singleton list, no transitions
  if (!EmitForward(n - 1, t, swap)) return false;
  if (!swap(t == 1 ? n - 2 : t - 2, n - 1)) return false;
  return EmitBackward(n - 1, t - 1, swap);
}

bool EmitBackward(int n, int t, const StopFn& swap) {
  if (t == 0 || t == n) return true;
  if (!EmitForward(n - 1, t - 1, swap)) return false;
  if (!swap(n - 1, t == 1 ? n - 2 : t - 2)) return false;
  return EmitBackward(n - 1, t, swap);
}

}  // namespace

void VisitRevolvingDoorSwaps(int n, int t,
                             const std::function<void(int, int)>& swap) {
  VisitRevolvingDoorSwapsUntil(n, t, [&swap](int out, int in) {
    swap(out, in);
    return true;
  });
}

bool VisitRevolvingDoorSwapsUntil(int n, int t, const StopFn& swap) {
  DCS_CHECK_GE(t, 0);
  DCS_CHECK_LE(t, n);
  return EmitForward(n, t, swap);
}

}  // namespace dcs
