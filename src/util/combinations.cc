#include "util/combinations.h"

namespace dcs {
namespace {

// Transition sequences of S(n, t) and reverse(S(n, t)), emitted via the
// recursion in the header. The endpoint subsets needed for the junction
// swaps have closed forms:
//   first(S(n, t)) = {0, ..., t−1}
//   last(S(n, t))  = {0, ..., t−2} ∪ {n−1}     (t >= 1)
// so the forward junction last(S(n−1, t)) → last(S(n−1, t−1)) ∪ {n−1}
// removes t−2 (or n−2 when t == 1) and inserts n−1.

using SwapFn = std::function<void(int, int)>;

void EmitForward(int n, int t, const SwapFn& swap);
void EmitBackward(int n, int t, const SwapFn& swap);

void EmitForward(int n, int t, const SwapFn& swap) {
  if (t == 0 || t == n) return;  // singleton list, no transitions
  EmitForward(n - 1, t, swap);
  swap(t == 1 ? n - 2 : t - 2, n - 1);
  EmitBackward(n - 1, t - 1, swap);
}

void EmitBackward(int n, int t, const SwapFn& swap) {
  if (t == 0 || t == n) return;
  EmitForward(n - 1, t - 1, swap);
  swap(n - 1, t == 1 ? n - 2 : t - 2);
  EmitBackward(n - 1, t, swap);
}

}  // namespace

void VisitRevolvingDoorSwaps(int n, int t, const SwapFn& swap) {
  DCS_CHECK_GE(t, 0);
  DCS_CHECK_LE(t, n);
  EmitForward(n, t, swap);
}

}  // namespace dcs
