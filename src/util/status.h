// Recoverable error handling: Status and StatusOr<T>.
//
// Convention (DESIGN.md §7): DCS_CHECK is for programmer errors and violated
// internal invariants — it aborts. Status is for *untrusted input* and
// *unreliable backends*: corrupted sketch byte streams, malformed graph
// files, bad CLI flags, flaky query oracles. Functions that parse or touch
// any of those return Status (or StatusOr<T>) and never abort on bad data.
//
// The vocabulary is a deliberately small subset of absl::Status: an error
// code, a human-readable message, and the two composition macros
// DCS_RETURN_IF_ERROR / DCS_ASSIGN_OR_RETURN.

#ifndef DCS_UTIL_STATUS_H_
#define DCS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace dcs {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // caller-supplied value is malformed
  kOutOfRange,          // value parses but violates a documented range
  kDataLoss,            // stream corruption: bad magic, truncation, checksum
  kNotFound,            // missing file / resource
  kFailedPrecondition,  // operation is not valid in the current state
  kUnavailable,         // transient backend failure; retrying may succeed
  kInternal,            // invariant violation surfaced as a value
  kDeadlineExceeded,    // retry/time budget exhausted before completion
  kResourceExhausted,   // admission control: a bounded queue/budget is full
};

// Name of the code as a stable lowercase token ("data_loss", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  // OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }

// Error constructors, one per non-OK code.
Status InvalidArgumentError(std::string message);
Status OutOfRangeError(std::string message);
Status DataLossError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);
Status DeadlineExceededError(std::string message);
Status ResourceExhaustedError(std::string message);

// A Status or a value of type T. Accessing the value of a non-OK StatusOr
// is a programmer error (CHECK).
template <typename T>
class StatusOr {
 public:
  // Implicit from an error Status (passing an OK status is a programmer
  // error: an OK StatusOr must carry a value).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    DCS_CHECK(!status_.ok());
  }
  // Implicit from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DCS_CHECK(ok());
    return *value_;
  }
  T& value() & {
    DCS_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    DCS_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dcs

// Evaluates `expr` (a Status); returns it from the enclosing function if it
// is not OK.
#define DCS_RETURN_IF_ERROR(expr)                        \
  do {                                                   \
    ::dcs::Status dcs_status_macro_ = (expr);            \
    if (!dcs_status_macro_.ok()) return dcs_status_macro_; \
  } while (false)

#define DCS_STATUS_MACRO_CONCAT_INNER(x, y) x##y
#define DCS_STATUS_MACRO_CONCAT(x, y) DCS_STATUS_MACRO_CONCAT_INNER(x, y)

// Evaluates `expr` (a StatusOr<T>); on OK assigns the value to `lhs`
// (which may declare a new variable), otherwise returns the error status.
#define DCS_ASSIGN_OR_RETURN(lhs, expr)                               \
  DCS_ASSIGN_OR_RETURN_IMPL(                                          \
      DCS_STATUS_MACRO_CONCAT(dcs_statusor_, __LINE__), lhs, expr)

#define DCS_ASSIGN_OR_RETURN_IMPL(statusor, lhs, expr) \
  auto statusor = (expr);                              \
  if (!statusor.ok()) return statusor.status();        \
  lhs = std::move(statusor).value()

#endif  // DCS_UTIL_STATUS_H_
