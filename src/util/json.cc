#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace dcs {
namespace {

// Hostile inputs must not blow the stack: DESIGN.md §7.
constexpr int kMaxParseDepth = 128;

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// Shortest representation that round-trips; always re-parses as a double
// (a bare integer-looking value gets a trailing ".0").
void AppendDouble(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no inf/nan; the library only serializes finite numbers, so
    // hitting this is a programmer error upstream — emit null rather than
    // invalid JSON.
    out += "null";
    return;
  }
  char buffer[64];
  const auto result =
      std::to_chars(buffer, buffer + sizeof(buffer) - 2, value);
  DCS_CHECK(result.ec == std::errc());
  *result.ptr = '\0';
  std::string_view text(buffer);
  out += text;
  if (text.find('.') == std::string_view::npos &&
      text.find('e') == std::string_view::npos &&
      text.find('E') == std::string_view::npos) {
    out += ".0";
  }
}

void AppendIndent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    DCS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return InvalidArgumentError("json parse error at byte " +
                                std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxParseDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      DCS_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeLiteral("true")) return JsonValue(true);
    if (ConsumeLiteral("false")) return JsonValue(false);
    if (ConsumeLiteral("null")) return JsonValue(nullptr);
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue object = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      DCS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      DCS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object.object().emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return object;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue array = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      DCS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array.Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return array;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through as two separate 3-byte sequences — the writer never
          // emits \u for non-control characters, so this path only serves
          // foreign documents).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Error("expected a value");
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (!is_double) {
      int64_t value = 0;
      const auto result =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (result.ec == std::errc() &&
          result.ptr == token.data() + token.size()) {
        return JsonValue(value);
      }
      // Out-of-range integer: fall through to double.
    }
    double value = 0;
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (result.ec != std::errc() ||
        result.ptr != token.data() + token.size()) {
      return Error("malformed number '" + std::string(token) + "'");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonValue::bool_value() const {
  DCS_CHECK(is_bool());
  return std::get<bool>(value_);
}

int64_t JsonValue::int_value() const {
  DCS_CHECK(is_int());
  return std::get<int64_t>(value_);
}

double JsonValue::number_value() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(value_));
  DCS_CHECK(is_double());
  return std::get<double>(value_);
}

const std::string& JsonValue::string_value() const {
  DCS_CHECK(is_string());
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::array() const {
  DCS_CHECK(is_array());
  return std::get<Array>(value_);
}

JsonValue::Array& JsonValue::array() {
  DCS_CHECK(is_array());
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::object() const {
  DCS_CHECK(is_object());
  return std::get<Object>(value_);
}

JsonValue::Object& JsonValue::object() {
  DCS_CHECK(is_object());
  return std::get<Object>(value_);
}

void JsonValue::Append(JsonValue value) { array().push_back(std::move(value)); }

void JsonValue::Set(std::string_view key, JsonValue value) {
  for (Member& member : object()) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  object().emplace_back(std::string(key), std::move(value));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const Member& member : object()) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_int()) {
    out += std::to_string(std::get<int64_t>(value_));
  } else if (is_double()) {
    AppendDouble(out, std::get<double>(value_));
  } else if (is_string()) {
    AppendEscaped(out, std::get<std::string>(value_));
  } else if (is_array()) {
    const Array& items = std::get<Array>(value_);
    if (items.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendIndent(out, indent, depth + 1);
      items[i].DumpTo(out, indent, depth + 1);
    }
    AppendIndent(out, indent, depth);
    out.push_back(']');
  } else {
    const Object& members = std::get<Object>(value_);
    if (members.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    for (size_t i = 0; i < members.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendIndent(out, indent, depth + 1);
      AppendEscaped(out, members[i].first);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      members[i].second.DumpTo(out, indent, depth + 1);
    }
    AppendIndent(out, indent, depth);
    out.push_back('}');
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace dcs
