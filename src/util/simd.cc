#include "util/simd.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>

#include "util/check.h"

#if defined(__x86_64__) || defined(_M_X64)
#define DCS_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define DCS_SIMD_NEON 1
#include <arm_neon.h>
#endif

// "Scalar" must mean scalar: GCC auto-vectorizes plain loops at -O2 and
// turns them into AVX-512 under -march=native, which would make the scalar
// fallback a silent second vector path (different speed, same bits, no
// coverage of the actual fallback code). Pin the scalar kernels.
#if defined(__GNUC__) && !defined(__clang__)
#define DCS_NO_AUTOVEC \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define DCS_NO_AUTOVEC
#endif

namespace dcs::simd {
namespace {

// Elements per L1-resident block of the contiguous FWHT: 4096 × 8 bytes =
// 32 KiB, one core's L1d. All butterfly passes with len < kFwhtBlock run
// while the block is resident; passes with len >= kFwhtBlock stream the
// buffer once each as element-wise row combines.
constexpr size_t kFwhtBlock = 4096;

// ---------------------------------------------------------------------------
// Scalar kernels (the dispatch fallback and the bench/test reference).
// ---------------------------------------------------------------------------

DCS_NO_AUTOVEC void ScalarSmallFwhtI64(int64_t* d, size_t n) {
  for (size_t len = 1; len < n; len <<= 1) {
    for (size_t block = 0; block < n; block += len << 1) {
      for (size_t i = block; i < block + len; ++i) {
        const int64_t a = d[i];
        const int64_t b = d[i + len];
        d[i] = a + b;
        d[i + len] = a - b;
      }
    }
  }
}

DCS_NO_AUTOVEC void ScalarSmallFwhtF64(double* d, size_t n) {
  for (size_t len = 1; len < n; len <<= 1) {
    for (size_t block = 0; block < n; block += len << 1) {
      for (size_t i = block; i < block + len; ++i) {
        const double a = d[i];
        const double b = d[i + len];
        d[i] = a + b;
        d[i + len] = a - b;
      }
    }
  }
}

DCS_NO_AUTOVEC void ScalarButterflyI64(int64_t* lo, int64_t* hi, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const int64_t a = lo[i];
    const int64_t b = hi[i];
    lo[i] = a + b;
    hi[i] = a - b;
  }
}

DCS_NO_AUTOVEC void ScalarButterflyF64(double* lo, double* hi, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double a = lo[i];
    const double b = hi[i];
    lo[i] = a + b;
    hi[i] = a - b;
  }
}

// Strided layouts (the public strided overload with stride > 1) run this
// in-order pass loop on every dispatch path: strided gathers do not pay for
// vector lanes, and one shared implementation keeps the paths bit-identical
// by construction.
template <typename T>
DCS_NO_AUTOVEC void ScalarFwhtStrided(T* d, size_t n, size_t stride) {
  for (size_t len = 1; len < n; len <<= 1) {
    for (size_t block = 0; block < n; block += len << 1) {
      for (size_t i = block; i < block + len; ++i) {
        T& lo = d[i * stride];
        T& hi = d[(i + len) * stride];
        const T a = lo;
        const T b = hi;
        lo = a + b;
        hi = a - b;
      }
    }
  }
}

DCS_NO_AUTOVEC int64_t ScalarXorPopcount(const uint64_t* a, const uint64_t* b,
                                         size_t num_words) {
  // Four independent accumulators break the dependency chain; the popcounts
  // of one iteration's four words retire in parallel.
  int64_t c0 = 0;
  int64_t c1 = 0;
  int64_t c2 = 0;
  int64_t c3 = 0;
  size_t i = 0;
  for (; i + 4 <= num_words; i += 4) {
    c0 += std::popcount(a[i] ^ b[i]);
    c1 += std::popcount(a[i + 1] ^ b[i + 1]);
    c2 += std::popcount(a[i + 2] ^ b[i + 2]);
    c3 += std::popcount(a[i + 3] ^ b[i + 3]);
  }
  int64_t total = c0 + c1 + c2 + c3;
  for (; i < num_words; ++i) total += std::popcount(a[i] ^ b[i]);
  return total;
}

DCS_NO_AUTOVEC int64_t ScalarPopcount(const uint64_t* a, size_t num_words) {
  int64_t c0 = 0;
  int64_t c1 = 0;
  int64_t c2 = 0;
  int64_t c3 = 0;
  size_t i = 0;
  for (; i + 4 <= num_words; i += 4) {
    c0 += std::popcount(a[i]);
    c1 += std::popcount(a[i + 1]);
    c2 += std::popcount(a[i + 2]);
    c3 += std::popcount(a[i + 3]);
  }
  int64_t total = c0 + c1 + c2 + c3;
  for (; i < num_words; ++i) total += std::popcount(a[i]);
  return total;
}

// ---------------------------------------------------------------------------
// Shared blocked driver. Every path runs this exact pass structure for the
// contiguous case; paths differ only in the small/butterfly kernels, whose
// lanes perform the scalar loop's element-wise operations verbatim. Per
// element, butterflies still apply in increasing-len order (passes touch
// disjoint pairs), so even the double transform is bit-identical across
// paths AND to the pre-blocking in-order implementation.
// ---------------------------------------------------------------------------

template <typename T>
void FwhtBlocked(T* d, size_t n, void (*small_fwht)(T*, size_t),
                 void (*butterfly)(T*, T*, size_t),
                 void (*butterfly4)(T*, T*, T*, T*, size_t) = nullptr) {
  const size_t block = std::min(n, kFwhtBlock);
  for (size_t base = 0; base < n; base += block) {
    small_fwht(d + base, block);
  }
  size_t len = block;
  if (butterfly4 != nullptr) {
    // Fused pairs of streaming passes (radix-4): bit-identical per element
    // (see the radix-4 kernel comment), half the memory sweeps.
    for (; (len << 1) < n; len <<= 2) {
      for (size_t b = 0; b < n; b += len << 2) {
        butterfly4(d + b, d + b + len, d + b + 2 * len, d + b + 3 * len,
                   len);
      }
    }
  }
  for (; len < n; len <<= 1) {
    for (size_t b = 0; b < n; b += len << 1) {
      butterfly(d + b, d + b + len, len);
    }
  }
}

// ---------------------------------------------------------------------------
// AVX2 kernels (x86-64, runtime-gated on CPU support).
// ---------------------------------------------------------------------------

#if defined(DCS_SIMD_X86)

__attribute__((target("avx2"))) void Avx2ButterflyI64(int64_t* lo,
                                                      int64_t* hi, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo + i),
                        _mm256_add_epi64(a, b));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hi + i),
                        _mm256_sub_epi64(a, b));
  }
  for (; i < n; ++i) {
    const int64_t a = lo[i];
    const int64_t b = hi[i];
    lo[i] = a + b;
    hi[i] = a - b;
  }
}

__attribute__((target("avx2"))) void Avx2ButterflyF64(double* lo, double* hi,
                                                      size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(lo + i);
    const __m256d b = _mm256_loadu_pd(hi + i);
    _mm256_storeu_pd(lo + i, _mm256_add_pd(a, b));
    _mm256_storeu_pd(hi + i, _mm256_sub_pd(a, b));
  }
  for (; i < n; ++i) {
    const double a = lo[i];
    const double b = hi[i];
    lo[i] = a + b;
    hi[i] = a - b;
  }
}

// Radix-4 butterfly: the passes at `len` and `2·len` fused into one memory
// sweep over four rows. Per element this evaluates (a+b), (a−b), (c+d),
// (c−d) and then combines them — the exact operations, in the exact
// pairing, that two radix-2 passes perform, so results are bit-identical
// (for doubles too); only the intermediate store/reload is eliminated,
// which matters because the butterflies are memory-bound.
__attribute__((target("avx2"))) void Avx2Butterfly4I64(int64_t* r0,
                                                       int64_t* r1,
                                                       int64_t* r2,
                                                       int64_t* r3, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r0 + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r1 + i));
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r2 + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r3 + i));
    const __m256i ab = _mm256_add_epi64(a, b);
    const __m256i amb = _mm256_sub_epi64(a, b);
    const __m256i cd = _mm256_add_epi64(c, d);
    const __m256i cmd = _mm256_sub_epi64(c, d);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(r0 + i),
                        _mm256_add_epi64(ab, cd));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(r1 + i),
                        _mm256_add_epi64(amb, cmd));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(r2 + i),
                        _mm256_sub_epi64(ab, cd));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(r3 + i),
                        _mm256_sub_epi64(amb, cmd));
  }
  for (; i < n; ++i) {
    const int64_t ab = r0[i] + r1[i];
    const int64_t amb = r0[i] - r1[i];
    const int64_t cd = r2[i] + r3[i];
    const int64_t cmd = r2[i] - r3[i];
    r0[i] = ab + cd;
    r1[i] = amb + cmd;
    r2[i] = ab - cd;
    r3[i] = amb - cmd;
  }
}

__attribute__((target("avx2"))) void Avx2Butterfly4F64(double* r0, double* r1,
                                                       double* r2, double* r3,
                                                       size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(r0 + i);
    const __m256d b = _mm256_loadu_pd(r1 + i);
    const __m256d c = _mm256_loadu_pd(r2 + i);
    const __m256d d = _mm256_loadu_pd(r3 + i);
    const __m256d ab = _mm256_add_pd(a, b);
    const __m256d amb = _mm256_sub_pd(a, b);
    const __m256d cd = _mm256_add_pd(c, d);
    const __m256d cmd = _mm256_sub_pd(c, d);
    _mm256_storeu_pd(r0 + i, _mm256_add_pd(ab, cd));
    _mm256_storeu_pd(r1 + i, _mm256_add_pd(amb, cmd));
    _mm256_storeu_pd(r2 + i, _mm256_sub_pd(ab, cd));
    _mm256_storeu_pd(r3 + i, _mm256_sub_pd(amb, cmd));
  }
  for (; i < n; ++i) {
    const double ab = r0[i] + r1[i];
    const double amb = r0[i] - r1[i];
    const double cd = r2[i] + r3[i];
    const double cmd = r2[i] - r3[i];
    r0[i] = ab + cd;
    r1[i] = amb + cmd;
    r2[i] = ab - cd;
    r3[i] = amb - cmd;
  }
}

// Full FWHT of one contiguous block. The len==1 and len==2 passes keep the
// butterfly inside one vector via lane shuffles; len >= 4 passes are plain
// vector row combines. n < 8 falls back to the scalar block kernel (same
// element-wise operations, so identical results).
__attribute__((target("avx2"))) void Avx2SmallFwhtI64(int64_t* d, size_t n) {
  if (n < 8) {
    ScalarSmallFwhtI64(d, n);
    return;
  }
  // len==1 and len==2 fused in-register: one load/store sweep runs both
  // passes. In the diff operands, y holds a in the b lanes, so a−b = y−x.
  for (size_t i = 0; i < n; i += 4) {
    // x = [a0 b0 a1 b1]; len==1 pairs swap within 128-bit lanes; 32-bit
    // blend mask 0xCC selects 64-bit lanes 1,3 from diff.
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
    const __m256i y = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(2, 3, 0, 1));
    const __m256i p = _mm256_blend_epi32(_mm256_add_epi64(x, y),
                                         _mm256_sub_epi64(y, x), 0xCC);
    // len==2: 128-bit halves swap; mask 0xF0 selects lanes 2,3 from diff.
    const __m256i q = _mm256_permute4x64_epi64(p, _MM_SHUFFLE(1, 0, 3, 2));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i),
                        _mm256_blend_epi32(_mm256_add_epi64(p, q),
                                           _mm256_sub_epi64(q, p), 0xF0));
  }
  size_t len = 4;
  for (; (len << 1) < n; len <<= 2) {
    for (size_t b = 0; b < n; b += len << 2) {
      Avx2Butterfly4I64(d + b, d + b + len, d + b + 2 * len, d + b + 3 * len,
                        len);
    }
  }
  if (len < n) {
    for (size_t b = 0; b < n; b += len << 1) {
      Avx2ButterflyI64(d + b, d + b + len, len);
    }
  }
}

__attribute__((target("avx2"))) void Avx2SmallFwhtF64(double* d, size_t n) {
  if (n < 8) {
    ScalarSmallFwhtF64(d, n);
    return;
  }
  // Same fused structure as the int64 kernel (y holds a in the b lanes).
  for (size_t i = 0; i < n; i += 4) {
    const __m256d x = _mm256_loadu_pd(d + i);
    const __m256d y = _mm256_permute_pd(x, 0b0101);
    const __m256d p = _mm256_blend_pd(_mm256_add_pd(x, y),
                                      _mm256_sub_pd(y, x), 0b1010);
    const __m256d q = _mm256_permute2f128_pd(p, p, 0x01);
    _mm256_storeu_pd(d + i, _mm256_blend_pd(_mm256_add_pd(p, q),
                                            _mm256_sub_pd(q, p), 0b1100));
  }
  size_t len = 4;
  for (; (len << 1) < n; len <<= 2) {
    for (size_t b = 0; b < n; b += len << 2) {
      Avx2Butterfly4F64(d + b, d + b + len, d + b + 2 * len, d + b + 3 * len,
                        len);
    }
  }
  if (len < n) {
    for (size_t b = 0; b < n; b += len << 1) {
      Avx2ButterflyF64(d + b, d + b + len, len);
    }
  }
}

// Nibble-LUT popcount (vpshufb) with _mm256_sad_epu8 folding bytes into
// four 64-bit partial sums per vector — no per-word popcnt port pressure.
__attribute__((target("avx2"))) inline __m256i Avx2PopcntBytes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi =
      _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

__attribute__((target("avx2,popcnt"))) int64_t Avx2XorPopcount(
    const uint64_t* a, const uint64_t* b, size_t num_words) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= num_words; i += 8) {
    const __m256i v0 = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    const __m256i v1 = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4)));
    acc = _mm256_add_epi64(acc, Avx2PopcntBytes(v0));
    acc = _mm256_add_epi64(acc, Avx2PopcntBytes(v1));
  }
  for (; i + 4 <= num_words; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc = _mm256_add_epi64(acc, Avx2PopcntBytes(v));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < num_words; ++i) {
    total += static_cast<int64_t>(_mm_popcnt_u64(a[i] ^ b[i]));
  }
  return total;
}

__attribute__((target("avx2,popcnt"))) int64_t Avx2Popcount(const uint64_t* a,
                                                            size_t num_words) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= num_words; i += 8) {
    acc = _mm256_add_epi64(
        acc, Avx2PopcntBytes(_mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(a + i))));
    acc = _mm256_add_epi64(
        acc, Avx2PopcntBytes(_mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(a + i + 4))));
  }
  for (; i + 4 <= num_words; i += 4) {
    acc = _mm256_add_epi64(
        acc, Avx2PopcntBytes(_mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(a + i))));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < num_words; ++i) {
    total += static_cast<int64_t>(_mm_popcnt_u64(a[i]));
  }
  return total;
}

#endif  // DCS_SIMD_X86

// ---------------------------------------------------------------------------
// NEON kernels (AArch64; NEON is baseline there, no runtime gate needed).
// ---------------------------------------------------------------------------

#if defined(DCS_SIMD_NEON)

void NeonButterflyI64(int64_t* lo, int64_t* hi, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t a = vld1q_s64(lo + i);
    const int64x2_t b = vld1q_s64(hi + i);
    vst1q_s64(lo + i, vaddq_s64(a, b));
    vst1q_s64(hi + i, vsubq_s64(a, b));
  }
  for (; i < n; ++i) {
    const int64_t a = lo[i];
    const int64_t b = hi[i];
    lo[i] = a + b;
    hi[i] = a - b;
  }
}

void NeonButterflyF64(double* lo, double* hi, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t a = vld1q_f64(lo + i);
    const float64x2_t b = vld1q_f64(hi + i);
    vst1q_f64(lo + i, vaddq_f64(a, b));
    vst1q_f64(hi + i, vsubq_f64(a, b));
  }
  for (; i < n; ++i) {
    const double a = lo[i];
    const double b = hi[i];
    lo[i] = a + b;
    hi[i] = a - b;
  }
}

void NeonSmallFwhtI64(int64_t* d, size_t n) {
  if (n < 4) {
    ScalarSmallFwhtI64(d, n);
    return;
  }
  for (size_t i = 0; i < n; i += 2) {
    // x = [a b] → [a+b, a−b].
    const int64x2_t x = vld1q_s64(d + i);
    const int64x2_t y = vextq_s64(x, x, 1);  // [b a]
    const int64x2_t sum = vaddq_s64(x, y);
    const int64x2_t diff = vsubq_s64(y, x);  // lane 1 = a−b
    vst1q_s64(d + i, vcombine_s64(vget_low_s64(sum), vget_high_s64(diff)));
  }
  for (size_t len = 2; len < n; len <<= 1) {
    for (size_t b = 0; b < n; b += len << 1) {
      NeonButterflyI64(d + b, d + b + len, len);
    }
  }
}

void NeonSmallFwhtF64(double* d, size_t n) {
  if (n < 4) {
    ScalarSmallFwhtF64(d, n);
    return;
  }
  for (size_t i = 0; i < n; i += 2) {
    const float64x2_t x = vld1q_f64(d + i);
    const float64x2_t y = vextq_f64(x, x, 1);
    const float64x2_t sum = vaddq_f64(x, y);
    const float64x2_t diff = vsubq_f64(y, x);
    vst1q_f64(d + i, vcombine_f64(vget_low_f64(sum), vget_high_f64(diff)));
  }
  for (size_t len = 2; len < n; len <<= 1) {
    for (size_t b = 0; b < n; b += len << 1) {
      NeonButterflyF64(d + b, d + b + len, len);
    }
  }
}

int64_t NeonXorPopcount(const uint64_t* a, const uint64_t* b,
                        size_t num_words) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 2 <= num_words; i += 2) {
    const uint64x2_t v = veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    const uint8x16_t counts = vcntq_u8(vreinterpretq_u8_u64(v));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(counts))));
  }
  int64_t total = static_cast<int64_t>(vgetq_lane_u64(acc, 0) +
                                       vgetq_lane_u64(acc, 1));
  for (; i < num_words; ++i) total += std::popcount(a[i] ^ b[i]);
  return total;
}

int64_t NeonPopcount(const uint64_t* a, size_t num_words) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 2 <= num_words; i += 2) {
    const uint8x16_t counts =
        vcntq_u8(vreinterpretq_u8_u64(vld1q_u64(a + i)));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(counts))));
  }
  int64_t total = static_cast<int64_t>(vgetq_lane_u64(acc, 0) +
                                       vgetq_lane_u64(acc, 1));
  for (; i < num_words; ++i) total += std::popcount(a[i]);
  return total;
}

#endif  // DCS_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

DispatchPath DetectHardwarePath() {
#if defined(DCS_SIMD_X86)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt")) {
    return DispatchPath::kAvx2;
  }
#elif defined(DCS_SIMD_NEON)
  return DispatchPath::kNeon;
#endif
  return DispatchPath::kScalar;
}

// −1 = not yet resolved; otherwise the cached DispatchPath value.
std::atomic<int> g_path{-1};

}  // namespace

// The env-then-hardware default: scalar when DCS_FORCE_SCALAR is set to a
// nonempty value other than "0", otherwise the best hardware path.
DispatchPath DefaultPath() {
  const char* env = std::getenv("DCS_FORCE_SCALAR");
  const bool force_scalar =
      env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  return force_scalar ? DispatchPath::kScalar : DetectHardwarePath();
}

DispatchPath ActivePath() {
  const int cached = g_path.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<DispatchPath>(cached);
  const DispatchPath path = DefaultPath();
  g_path.store(static_cast<int>(path), std::memory_order_relaxed);
  return path;
}

const char* DispatchPathName(DispatchPath path) {
  switch (path) {
    case DispatchPath::kAvx2:
      return "avx2";
    case DispatchPath::kNeon:
      return "neon";
    case DispatchPath::kScalar:
      return "scalar";
  }
  return "unknown";
}

void ForceScalar(bool force) {
  // false clears the programmatic override and returns to the default
  // (which still honors DCS_FORCE_SCALAR), so tests that restore state
  // behave the same whether or not the suite runs under the env override.
  g_path.store(
      static_cast<int>(force ? DispatchPath::kScalar : DefaultPath()),
      std::memory_order_relaxed);
}

void Fwht(int64_t* data, size_t n, size_t stride) {
  DCS_CHECK(n > 0 && (n & (n - 1)) == 0);
  DCS_CHECK_GE(stride, size_t{1});
  if (n == 1) return;
  if (stride != 1) {
    ScalarFwhtStrided(data, n, stride);
    return;
  }
  switch (ActivePath()) {
#if defined(DCS_SIMD_X86)
    case DispatchPath::kAvx2:
      FwhtBlocked<int64_t>(data, n, Avx2SmallFwhtI64, Avx2ButterflyI64,
                           Avx2Butterfly4I64);
      return;
#elif defined(DCS_SIMD_NEON)
    case DispatchPath::kNeon:
      FwhtBlocked<int64_t>(data, n, NeonSmallFwhtI64, NeonButterflyI64);
      return;
#endif
    default:
      FwhtBlocked<int64_t>(data, n, ScalarSmallFwhtI64, ScalarButterflyI64);
      return;
  }
}

void Fwht(double* data, size_t n, size_t stride) {
  DCS_CHECK(n > 0 && (n & (n - 1)) == 0);
  DCS_CHECK_GE(stride, size_t{1});
  if (n == 1) return;
  if (stride != 1) {
    ScalarFwhtStrided(data, n, stride);
    return;
  }
  switch (ActivePath()) {
#if defined(DCS_SIMD_X86)
    case DispatchPath::kAvx2:
      FwhtBlocked<double>(data, n, Avx2SmallFwhtF64, Avx2ButterflyF64,
                          Avx2Butterfly4F64);
      return;
#elif defined(DCS_SIMD_NEON)
    case DispatchPath::kNeon:
      FwhtBlocked<double>(data, n, NeonSmallFwhtF64, NeonButterflyF64);
      return;
#endif
    default:
      FwhtBlocked<double>(data, n, ScalarSmallFwhtF64, ScalarButterflyF64);
      return;
  }
}

void ButterflyRows(int64_t* lo, int64_t* hi, size_t n) {
  switch (ActivePath()) {
#if defined(DCS_SIMD_X86)
    case DispatchPath::kAvx2:
      Avx2ButterflyI64(lo, hi, n);
      return;
#elif defined(DCS_SIMD_NEON)
    case DispatchPath::kNeon:
      NeonButterflyI64(lo, hi, n);
      return;
#endif
    default:
      ScalarButterflyI64(lo, hi, n);
      return;
  }
}

void ButterflyRows(double* lo, double* hi, size_t n) {
  switch (ActivePath()) {
#if defined(DCS_SIMD_X86)
    case DispatchPath::kAvx2:
      Avx2ButterflyF64(lo, hi, n);
      return;
#elif defined(DCS_SIMD_NEON)
    case DispatchPath::kNeon:
      NeonButterflyF64(lo, hi, n);
      return;
#endif
    default:
      ScalarButterflyF64(lo, hi, n);
      return;
  }
}

int64_t XorPopcount(const uint64_t* a, const uint64_t* b, size_t num_words) {
  switch (ActivePath()) {
#if defined(DCS_SIMD_X86)
    case DispatchPath::kAvx2:
      return Avx2XorPopcount(a, b, num_words);
#elif defined(DCS_SIMD_NEON)
    case DispatchPath::kNeon:
      return NeonXorPopcount(a, b, num_words);
#endif
    default:
      return ScalarXorPopcount(a, b, num_words);
  }
}

int64_t Popcount(const uint64_t* a, size_t num_words) {
  switch (ActivePath()) {
#if defined(DCS_SIMD_X86)
    case DispatchPath::kAvx2:
      return Avx2Popcount(a, num_words);
#elif defined(DCS_SIMD_NEON)
    case DispatchPath::kNeon:
      return NeonPopcount(a, num_words);
#endif
    default:
      return ScalarPopcount(a, num_words);
  }
}

namespace scalar {

void Fwht(int64_t* data, size_t n, size_t stride) {
  DCS_CHECK(n > 0 && (n & (n - 1)) == 0);
  DCS_CHECK_GE(stride, size_t{1});
  if (n == 1) return;
  if (stride != 1) {
    ScalarFwhtStrided(data, n, stride);
    return;
  }
  FwhtBlocked<int64_t>(data, n, ScalarSmallFwhtI64, ScalarButterflyI64);
}

void Fwht(double* data, size_t n, size_t stride) {
  DCS_CHECK(n > 0 && (n & (n - 1)) == 0);
  DCS_CHECK_GE(stride, size_t{1});
  if (n == 1) return;
  if (stride != 1) {
    ScalarFwhtStrided(data, n, stride);
    return;
  }
  FwhtBlocked<double>(data, n, ScalarSmallFwhtF64, ScalarButterflyF64);
}

void ButterflyRows(int64_t* lo, int64_t* hi, size_t n) {
  ScalarButterflyI64(lo, hi, n);
}

void ButterflyRows(double* lo, double* hi, size_t n) {
  ScalarButterflyF64(lo, hi, n);
}

int64_t XorPopcount(const uint64_t* a, const uint64_t* b, size_t num_words) {
  return ScalarXorPopcount(a, b, num_words);
}

int64_t Popcount(const uint64_t* a, size_t num_words) {
  return ScalarPopcount(a, num_words);
}

}  // namespace scalar

}  // namespace dcs::simd
