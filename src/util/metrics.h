// Low-overhead runtime metrics: named counters, value distributions, and
// scoped wall-clock timers behind one process-wide registry.
//
// Every theorem in the paper bounds a *countable resource* — cut queries
// per decoded bit (Theorem 1.1), sketch bits vs Ω̃(n√β/ε) / Ω(nβ/ε²),
// local queries vs Õ(m/(ε²k)) (Theorem 5.7) — so the library counts those
// resources at runtime and tests assert the paper's bounds on the counts
// (tests/metrics_bounds_test.cc). Naming convention and the overhead
// budget are documented in DESIGN.md §8.
//
// Concurrency and cost model:
//  * Counters and distributions are sharded across kStripes cache-line-
//    aligned cells indexed by a per-thread stripe id, so concurrent
//    recording from the trial-parallelism layer never contends on one
//    cache line. All updates are relaxed atomics: totals are exact,
//    cross-metric consistency of a snapshot is best-effort.
//  * Registry lookups take a mutex; the DCS_METRIC_* macros cache the
//    looked-up reference in a function-local static, so steady-state cost
//    of a macro site is one atomic add.
//  * Per-edge-scale hot loops (IncrementalCutOracle::Flip, session
//    queries) do NOT call the registry per event: they tally into plain
//    struct members and flush one DCS_METRIC_ADD at object destruction.
//    Follow that pattern for anything hotter than ~1µs per event.
//
// Compile-time kill switch: configure with -DDCS_ENABLE_METRICS=OFF and
// every DCS_METRIC_* macro expands to a no-op — no registration, no
// allocation, no atomics (tests/util_metrics_test.cc asserts the registry
// stays empty). The registry API itself stays compiled so non-macro
// callers (snapshot consumers, the CLI) link in both configurations.
//
// Distributions track exact count/sum/min/max plus a 64-bucket log2
// histogram; ApproxPercentile interpolates bucket upper bounds, so
// percentiles are order-of-magnitude-accurate, not exact.

#ifndef DCS_UTIL_METRICS_H_
#define DCS_UTIL_METRICS_H_

#ifndef DCS_METRICS_ENABLED
#define DCS_METRICS_ENABLED 1
#endif

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "util/json.h"

namespace dcs::metrics {

// Number of per-thread shards per metric. Power of two.
inline constexpr size_t kStripes = 16;
// Log2 histogram buckets: bucket b counts values v with bit_width(v) == b
// (bucket 0 holds v <= 0).
inline constexpr size_t kNumBuckets = 64;

// Stable per-thread stripe index in [0, kStripes).
size_t ThreadStripeIndex();

// A named monotonic counter. Add is one relaxed atomic fetch_add on a
// thread-striped cache line; value() sums the stripes.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t delta) {
    cells_[ThreadStripeIndex()].value.fetch_add(delta,
                                                std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t value() const {
    int64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> value{0};
  };
  std::array<Cell, kStripes> cells_;
};

// Point-in-time statistics of one distribution (also the diff type:
// count/sum/buckets subtract; min/max of a diff are taken from the later
// snapshot, since exact extrema of a window are not recoverable).
struct DistributionStats {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  // 0 when count == 0
  int64_t max = 0;
  std::array<int64_t, kNumBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  // Approximate p-quantile (p in [0, 1]) from the log2 histogram: the
  // upper bound of the first bucket whose cumulative count reaches p,
  // clamped to [min, max]. Exact only up to the bucket's factor of 2.
  int64_t ApproxPercentile(double p) const;
};

// A distribution of int64 samples: exact count/sum/min/max + log2
// histogram, all thread-striped relaxed atomics.
class Distribution {
 public:
  Distribution() = default;
  Distribution(const Distribution&) = delete;
  Distribution& operator=(const Distribution&) = delete;

  void Record(int64_t value);

  DistributionStats stats() const;

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
    std::array<std::atomic<int64_t>, kNumBuckets> buckets{};
  };
  std::array<Cell, kStripes> cells_;
};

// A consistent-enough copy of every registered metric, diffable and
// serializable. Counter and distribution maps are keyed by metric name;
// std::map ordering makes the JSON deterministic.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, DistributionStats> distributions;

  // The change between `earlier` and this snapshot: counters and
  // distribution count/sum/buckets subtract (metrics absent from
  // `earlier` count from zero); distribution min/max are copied from this
  // snapshot (see DistributionStats).
  MetricsSnapshot DiffSince(const MetricsSnapshot& earlier) const;

  // {"counters": {...}, "distributions": {name: {count, sum, min, max,
  //  mean, p50, p90, p99}}}. Deterministic: keys sorted, numbers via the
  // util/json writer. Histograms are summarized, not dumped raw.
  JsonValue ToJson() const;
  std::string ToJsonString(int indent = 2) const;
};

// The process-wide registry. GetCounter/GetDistribution return references
// that stay valid for the life of the process (std::map nodes are stable);
// concurrent calls are serialized by a mutex — cache the reference (the
// DCS_METRIC_* macros do) on hot paths.
class Registry {
 public:
  static Registry& Get();

  Counter& GetCounter(std::string_view name);
  Distribution& GetDistribution(std::string_view name);

  MetricsSnapshot Snapshot() const;

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Distribution, std::less<>> distributions_;
};

// Records elapsed wall-clock nanoseconds into `dist` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Distribution& dist)
      : dist_(dist), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    dist_.Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
  }

 private:
  Distribution& dist_;
  std::chrono::steady_clock::time_point start_;
};

// Non-macro helpers for dynamically chosen metric names (e.g. per-stream-
// kind). The name must still be a long-lived string; prefer precomputed
// constants so the OFF configuration stays allocation-free at call sites.
inline void AddCount(std::string_view name, int64_t delta) {
#if DCS_METRICS_ENABLED
  Registry::Get().GetCounter(name).Add(delta);
#else
  (void)name;
  (void)delta;
#endif
}

inline void RecordValue(std::string_view name, int64_t value) {
#if DCS_METRICS_ENABLED
  Registry::Get().GetDistribution(name).Record(value);
#else
  (void)name;
  (void)value;
#endif
}

}  // namespace dcs::metrics

// Instrumentation macros. `name` must be a string literal (it is evaluated
// once and the metric reference cached in a function-local static).
#if DCS_METRICS_ENABLED

#define DCS_METRICS_CONCAT_INNER(a, b) a##b
#define DCS_METRICS_CONCAT(a, b) DCS_METRICS_CONCAT_INNER(a, b)

#define DCS_METRIC_ADD(name, delta)                                     \
  do {                                                                  \
    static ::dcs::metrics::Counter& dcs_metrics_cached_counter =        \
        ::dcs::metrics::Registry::Get().GetCounter(name);               \
    dcs_metrics_cached_counter.Add(delta);                              \
  } while (0)

#define DCS_METRIC_INC(name) DCS_METRIC_ADD(name, 1)

#define DCS_METRIC_RECORD(name, value)                                  \
  do {                                                                  \
    static ::dcs::metrics::Distribution& dcs_metrics_cached_dist =      \
        ::dcs::metrics::Registry::Get().GetDistribution(name);          \
    dcs_metrics_cached_dist.Record(value);                              \
  } while (0)

// Times the enclosing scope into distribution `name` (nanoseconds).
#define DCS_METRIC_TIMER(name)                                          \
  ::dcs::metrics::ScopedTimer DCS_METRICS_CONCAT(dcs_metrics_timer_,    \
                                                 __LINE__)(             \
      ::dcs::metrics::Registry::Get().GetDistribution(name))

#else  // !DCS_METRICS_ENABLED

// No-ops: arguments are not evaluated (sizeof is an unevaluated context),
// so metric-only expressions cost nothing and trigger no unused warnings.
#define DCS_METRIC_ADD(name, delta) \
  do {                              \
    (void)sizeof(name);             \
    (void)sizeof(delta);            \
  } while (0)
#define DCS_METRIC_INC(name) \
  do {                       \
    (void)sizeof(name);      \
  } while (0)
#define DCS_METRIC_RECORD(name, value) \
  do {                                 \
    (void)sizeof(name);                \
    (void)sizeof(value);               \
  } while (0)
#define DCS_METRIC_TIMER(name) \
  do {                         \
    (void)sizeof(name);        \
  } while (0)

#endif  // DCS_METRICS_ENABLED

#endif  // DCS_UTIL_METRICS_H_
