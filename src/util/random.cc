#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace dcs {
namespace {

// splitmix64: used only to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (uint64_t& word : state_) word = SplitMix64(s);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  // xoshiro256++
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  DCS_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInRange(int64_t lo, int64_t hi) {
  DCS_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<int64_t>(Next());
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return UniformDouble() < p;
}

int64_t Rng::Binomial(int64_t n, double p) {
  DCS_CHECK_GE(n, 0);
  if (n == 0 || p <= 0) return 0;
  if (p >= 1) return n;
  // For small n, sum Bernoulli draws directly.
  if (n <= 64) {
    int64_t count = 0;
    for (int64_t i = 0; i < n; ++i) count += Bernoulli(p) ? 1 : 0;
    return count;
  }
  const double mean = static_cast<double>(n) * p;
  const double variance = mean * (1 - p);
  if (variance > 100.0) {
    // Normal approximation with continuity correction, clamped to [0, n].
    const double draw = mean + std::sqrt(variance) * Normal() + 0.5;
    if (draw <= 0) return 0;
    if (draw >= static_cast<double>(n)) return n;
    return static_cast<int64_t>(draw);
  }
  // Inversion by sequential search from the mode-adjacent start. The mean is
  // at most ~100 + small here, so this loop is short.
  const double q = 1 - p;
  const double ratio = p / q;
  double pmf = std::pow(q, static_cast<double>(n));  // P[X = 0]
  if (pmf <= 0) {
    // Underflow guard: fall back to the normal approximation.
    const double draw = mean + std::sqrt(variance) * Normal() + 0.5;
    if (draw <= 0) return 0;
    if (draw >= static_cast<double>(n)) return n;
    return static_cast<int64_t>(draw);
  }
  double cdf = pmf;
  const double u = UniformDouble();
  int64_t k = 0;
  while (cdf < u && k < n) {
    pmf *= ratio * static_cast<double>(n - k) / static_cast<double>(k + 1);
    cdf += pmf;
    ++k;
  }
  return k;
}

double Rng::Normal() {
  // Box–Muller. Draw u1 in (0, 1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

int Rng::RandomSign() { return (Next() & 1) ? 1 : -1; }

std::vector<int> Rng::RandomSubset(int universe, int k) {
  DCS_CHECK_GE(k, 0);
  DCS_CHECK_LE(k, universe);
  // Floyd's algorithm would avoid the O(universe) cost, but universes in
  // this library are small (<= millions) and a partial Fisher–Yates keeps
  // the distribution obviously uniform.
  std::vector<int> pool(universe);
  for (int i = 0; i < universe; ++i) pool[i] = i;
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(UniformInt(static_cast<uint64_t>(universe - i)));
    std::swap(pool[i], pool[j]);
  }
  std::vector<int> subset(pool.begin(), pool.begin() + k);
  std::sort(subset.begin(), subset.end());
  return subset;
}

std::vector<uint8_t> Rng::RandomBinaryStringWithWeight(int length, int weight) {
  std::vector<uint8_t> bits(length, 0);
  for (int index : RandomSubset(length, weight)) bits[index] = 1;
  return bits;
}

std::vector<uint8_t> Rng::RandomBinaryString(int length) {
  std::vector<uint8_t> bits(length);
  for (int i = 0; i < length; ++i) bits[i] = static_cast<uint8_t>(Next() & 1);
  return bits;
}

std::vector<int8_t> Rng::RandomSignString(int length) {
  std::vector<int8_t> signs(length);
  for (int i = 0; i < length; ++i) {
    signs[i] = static_cast<int8_t>((Next() & 1) ? 1 : -1);
  }
  return signs;
}

}  // namespace dcs
