// Bump-pointer scratch arenas for per-session / per-shard work buffers.
//
// The query fast path used to pay one heap allocation per decoded bit
// (Hadamard factor unpacking) and one per served query (side packing).
// A ScratchArena turns those into pointer bumps over memory that is
// allocated once and reused: Alloc hands out 64-byte-aligned uninitialized
// spans of trivial types; a Scope rewinds the cursor on exit so nested hot
// loops reuse the same bytes on every iteration. Blocks are never freed
// until the arena dies — rewinding only moves the cursor, so steady-state
// operation performs zero allocations.
//
// Not thread-safe; use one arena per thread. ThreadLocalScratchArena()
// hands out a per-thread instance for call sites without a natural owner
// (the for-each decoder runs under trial parallelism, so a shared member
// arena would race).

#ifndef DCS_UTIL_ARENA_H_
#define DCS_UTIL_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace dcs {

class ScratchArena {
 public:
  explicit ScratchArena(size_t initial_capacity = size_t{1} << 16) {
    AppendBlock(initial_capacity);
  }

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  // An uninitialized span of `count` elements, aligned to 64 bytes (cache
  // line / vector-lane friendly). Only trivial types: the arena never runs
  // constructors or destructors.
  template <typename T>
  std::span<T> Alloc(size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "ScratchArena only holds trivial types");
    if (count == 0) return {};
    return {reinterpret_cast<T*>(AllocBytes(count * sizeof(T))), count};
  }

  // Cursor snapshot / rewind. Rewinding invalidates every span handed out
  // after the corresponding Mark; the memory stays owned by the arena and
  // is reused by later Allocs.
  struct Mark {
    size_t block = 0;
    size_t offset = 0;
  };

  Mark CurrentMark() const { return Mark{current_block_, offset_}; }

  void Rewind(Mark mark) {
    DCS_DCHECK(mark.block < blocks_.size());
    current_block_ = mark.block;
    offset_ = mark.offset;
  }

  void Reset() { Rewind(Mark{}); }

  // RAII rewind for hot loops: take a Scope at the top of the iteration,
  // Alloc freely, and the cursor snaps back when the Scope dies.
  class Scope {
   public:
    explicit Scope(ScratchArena& arena)
        : arena_(arena), mark_(arena.CurrentMark()) {}
    ~Scope() { arena_.Rewind(mark_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ScratchArena& arena_;
    Mark mark_;
  };

  // Total bytes owned (all blocks, regardless of cursor position).
  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
  }

 private:
  static constexpr size_t kAlignment = 64;

  struct Block {
    std::unique_ptr<std::byte[]> storage;  // over-allocated for alignment
    std::byte* aligned = nullptr;
    size_t size = 0;
  };

  static size_t AlignUp(size_t value) {
    return (value + kAlignment - 1) & ~(kAlignment - 1);
  }

  void AppendBlock(size_t min_size) {
    Block block;
    block.size = AlignUp(min_size < kAlignment ? kAlignment : min_size);
    block.storage = std::make_unique<std::byte[]>(block.size + kAlignment);
    const auto raw = reinterpret_cast<uintptr_t>(block.storage.get());
    block.aligned = block.storage.get() +
                    (AlignUp(raw) - raw);
    blocks_.push_back(std::move(block));
  }

  std::byte* AllocBytes(size_t bytes) {
    const size_t need = AlignUp(bytes);
    // Advance to the next block that fits, growing geometrically when none
    // exists yet (existing smaller blocks are skipped, not freed — a later
    // Rewind may still point into them).
    while (blocks_[current_block_].size - offset_ < need) {
      if (current_block_ + 1 == blocks_.size()) {
        AppendBlock(std::max(need, blocks_.back().size * 2));
      }
      ++current_block_;
      offset_ = 0;
    }
    std::byte* out = blocks_[current_block_].aligned + offset_;
    offset_ += need;
    return out;
  }

  std::vector<Block> blocks_;
  size_t current_block_ = 0;
  size_t offset_ = 0;
};

// Per-thread arena for call sites without a natural per-object owner.
inline ScratchArena& ThreadLocalScratchArena() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace dcs

#endif  // DCS_UTIL_ARENA_H_
