// Sylvester–Hadamard matrices and the tensor-row sign matrix of Lemma 3.2.
//
// The for-each lower bound (Section 3 of the paper) encodes a random sign
// string z into forward edge weights w = ε·x + 2c₁ln(1/ε)·1 where
// x = Σ_t z_t·M_t and M is a {−1,+1} matrix with:
//   (1) ⟨M_t, 1⟩ = 0            (every row is balanced),
//   (2) ⟨M_t, M_t'⟩ = 0, t ≠ t'  (rows are orthogonal),
//   (3) M_t = u ⊗ v with u, v balanced ±1 vectors (so each row corresponds
//       to a pair of half-size vertex subsets A ⊆ L_i, B ⊆ R_j).
// The construction takes rows 2..2^k of the Sylvester–Hadamard matrix
// H_{2^k} and uses all (2^k−1)² tensor products H_i ⊗ H_j.
//
// Entries are computed on demand (H(i,j) = (−1)^popcount(i AND j)); rows
// are handed out bit-packed (SignVector, 64 signs/word) so factor inner
// products are XOR + popcount. Encoding Σ_t z_t·M_t uses a two-dimensional
// fast Walsh–Hadamard transform over one flat row-major N×N buffer
// (contiguous row passes + strided column passes), O(N²·log N) for
// N = 2^k instead of the naive O(N⁴).

#ifndef DCS_UTIL_HADAMARD_H_
#define DCS_UTIL_HADAMARD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"
#include "util/sign_vector.h"

namespace dcs {

// The N×N Sylvester–Hadamard matrix, N = 2^log_size. Row and column indices
// are 0-based; row 0 is all ones, every other row is balanced, and distinct
// rows are orthogonal.
class HadamardMatrix {
 public:
  // Requires 0 <= log_size <= 30.
  explicit HadamardMatrix(int log_size);

  int log_size() const { return log_size_; }
  int size() const { return size_; }

  // Returns the entry in {-1, +1}.
  int Entry(int row, int col) const;

  // Returns row `row` as a ±1 vector of length size().
  std::vector<int8_t> Row(int row) const;

  // Returns row `row` bit-packed (64 signs/word); inner products between
  // packed rows are popcount-based.
  SignVector PackedRow(int row) const;

 private:
  int log_size_;
  int size_;
};

// In-place fast Walsh–Hadamard transform of a length-2^k vector
// (unnormalized: applying twice multiplies by 2^k).
void FastWalshHadamardTransform(std::vector<int64_t>& values);
void FastWalshHadamardTransform(std::vector<double>& values);

// Strided in-place FWHT over `n` elements at data[0], data[stride],
// data[2·stride], …; the column passes of the 2-D transform run directly
// on the flat row-major buffer with stride = row length.
void FastWalshHadamardTransform(int64_t* data, size_t n, size_t stride);
void FastWalshHadamardTransform(double* data, size_t n, size_t stride);

// The Lemma 3.2 matrix M for block size N = 2^log_size.
//
// Rows are indexed t in [0, (N−1)²); columns are indexed by pairs
// (a, b) in [0, N)², flattened as a*N + b (the paper's "alphabetical"
// forward-edge order: first by the left endpoint, then by the right).
class TensorSignMatrix {
 public:
  // Requires 1 <= log_size <= 15 (so N² columns fit comfortably).
  explicit TensorSignMatrix(int log_size);

  // Block size N = 2^log_size (the paper's 1/ε).
  int block_size() const { return block_size_; }
  // Number of rows, (N−1)².
  int64_t rows() const { return rows_; }
  // Number of columns, N².
  int64_t cols() const { return cols_; }

  // The Hadamard row indices (i, j), both in [1, N), whose tensor product
  // forms row t: M_t = H_i ⊗ H_j.
  std::pair<int, int> RowFactors(int64_t t) const;

  // Entry M_t[col] in {-1, +1}.
  int Entry(int64_t t, int64_t col) const;

  // The left factor u of M_t = u ⊗ v, as a ±1 vector of length N.
  std::vector<int8_t> LeftFactor(int64_t t) const;
  // The right factor v of M_t = u ⊗ v, as a ±1 vector of length N.
  std::vector<int8_t> RightFactor(int64_t t) const;

  // Allocation-free variants writing into caller scratch of length exactly
  // N — the for-each decoder fills arena spans with these on every decoded
  // bit instead of materializing two fresh vectors per bit.
  void LeftFactorInto(int64_t t, std::span<int8_t> out) const;
  void RightFactorInto(int64_t t, std::span<int8_t> out) const;

  // Bit-packed factors (the fast path used by the decoders).
  SignVector LeftFactorPacked(int64_t t) const;
  SignVector RightFactorPacked(int64_t t) const;

  // ⟨M_t, M_t'⟩ = ⟨u, u'⟩·⟨v, v'⟩ via packed popcount inner products,
  // O(N/64) words instead of O(N²) entries.
  int64_t RowInnerProduct(int64_t t, int64_t t_other) const;

  // Computes x = Σ_t z_t · M_t for a sign vector z of length rows().
  // Returned vector has length cols(). Uses a 2-D FWHT over a single flat
  // buffer (no per-row vectors, no column copies).
  std::vector<int64_t> EncodeSigns(const std::vector<int8_t>& z) const;

  // ⟨x, M_t⟩ computed directly (O(cols())); used by decoders and tests.
  int64_t InnerProductWithRow(const std::vector<int64_t>& x,
                              int64_t t) const;

  // Squared L2 norm of every row: N².
  int64_t RowNormSquared() const { return cols_; }

 private:
  int log_size_;
  int block_size_;
  int64_t rows_;
  int64_t cols_;
  HadamardMatrix hadamard_;
};

}  // namespace dcs

#endif  // DCS_UTIL_HADAMARD_H_
