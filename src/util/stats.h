// Small statistics helpers used by benchmarks and experiments: summary
// statistics, medians, and log-log scaling fits (the benches validate
// asymptotic shapes like m/(ε²k) by fitting slopes).

#ifndef DCS_UTIL_STATS_H_
#define DCS_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace dcs {

// Arithmetic mean. Returns 0 for an empty input.
double Mean(const std::vector<double>& values);

// Unbiased sample standard deviation. Returns 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

// Median (average of middle two for even sizes). Returns 0 for an empty
// input — the same sentinel as Mean/StdDev, never NaN and never an abort
// (bench summaries run on whatever samples a possibly-degraded run
// produced, including none).
double Median(std::vector<double> values);

// p-th percentile via linear interpolation between order statistics, with
// p clamped to [0, 100] (callers often compute p and fp drift can push it
// a hair past either end). Returns 0 for an empty input and the sole
// element for a single-element input at every p; p = 100 returns the
// maximum without reading past the sorted vector.
double Percentile(std::vector<double> values, double p);

// Result of an ordinary-least-squares line fit y = slope * x + intercept.
struct LineFit {
  double slope = 0;
  double intercept = 0;
  double r_squared = 0;
};

// OLS fit. CHECK-fails unless xs.size() == ys.size() >= 2.
LineFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

// Fits log(y) = slope * log(x) + c, i.e. the exponent of a power law
// y ≈ C·x^slope. All inputs must be positive.
LineFit FitLogLog(const std::vector<double>& xs,
                  const std::vector<double>& ys);

}  // namespace dcs

#endif  // DCS_UTIL_STATS_H_
