// A small fixed thread pool and the ParallelFor trial-parallelism helper.
//
// The pool is deliberately work-stealing-free: ParallelFor hands out loop
// indices through a single atomic counter, so every worker (including the
// calling thread) pulls the next undone index until the range is drained.
// Determinism contract: callers make each iteration self-contained — a
// per-iteration Rng seeded as SubtaskSeed(base_seed, index), results in a
// slot owned by that index — so the outcome is bit-identical for every
// thread count, including the serial num_threads <= 1 fast path (which
// touches no threading machinery at all).

#ifndef DCS_UTIL_THREAD_POOL_H_
#define DCS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"

namespace dcs {

// A fixed set of worker threads executing one parallel loop at a time.
// ParallelFor may only be called from one thread at a time (no nesting,
// no concurrent loops on the same pool).
class ThreadPool {
 public:
  // Spawns num_threads - 1 workers (the caller participates as the last
  // worker). Requires num_threads >= 1.
  explicit ThreadPool(int num_threads) : num_threads_(num_threads) {
    DCS_CHECK_GE(num_threads, 1);
    workers_.reserve(static_cast<size_t>(num_threads - 1));
    for (int i = 0; i + 1 < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    wake_workers_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  int num_threads() const { return num_threads_; }

  // Runs body(i) for every i in [0, count), distributing indices across all
  // threads; blocks until the whole range is done.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& body) {
    DCS_CHECK_GE(count, 0);
    if (count == 0) return;
    if (num_threads_ == 1 || count == 1) {
      for (int64_t i = 0; i < count; ++i) body(i);
      return;
    }
    // Publication order matters: a worker only sees indices to claim after
    // the release store of next_index_, which happens-after body_/count_/
    // pending_ are in place. Stragglers from the previous loop re-reading
    // these atomics mid-claim see a consistent new loop or an exhausted
    // old one.
    body_.store(&body, std::memory_order_release);
    count_.store(count, std::memory_order_release);
    pending_.store(count, std::memory_order_release);
    next_index_.store(0, std::memory_order_release);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++generation_;
    }
    wake_workers_.notify_all();
    DrainIndices();
    // Every index is claimed; wait for stragglers still inside body(i).
    std::unique_lock<std::mutex> lock(mutex_);
    loop_done_.wait(lock, [this] { return pending_.load() == 0; });
  }

 private:
  void DrainIndices() {
    while (true) {
      const int64_t i = next_index_.fetch_add(1, std::memory_order_acquire);
      if (i >= count_.load(std::memory_order_acquire)) return;
      (*body_.load(std::memory_order_acquire))(i);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::unique_lock<std::mutex> lock(mutex_);
        loop_done_.notify_all();
      }
    }
  }

  void WorkerLoop() {
    int64_t seen_generation = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_workers_.wait(lock, [this, seen_generation] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
      }
      DrainIndices();
    }
  }

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable loop_done_;
  bool shutdown_ = false;
  int64_t generation_ = 0;

  std::atomic<const std::function<void(int64_t)>*> body_{nullptr};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> next_index_{0};
  std::atomic<int64_t> pending_{0};
};

// One-shot helper used by the trial runners and bench drivers: runs body(i)
// for i in [0, count) on `num_threads` threads. num_threads <= 1 is a plain
// serial loop with zero threading overhead.
inline void ParallelFor(int num_threads, int64_t count,
                        const std::function<void(int64_t)>& body) {
  DCS_CHECK_GE(count, 0);
  if (num_threads <= 1 || count <= 1) {
    for (int64_t i = 0; i < count; ++i) body(i);
    return;
  }
  ThreadPool pool(num_threads);
  pool.ParallelFor(count, body);
}

}  // namespace dcs

#endif  // DCS_UTIL_THREAD_POOL_H_
