// A small fixed thread pool and the ParallelFor trial-parallelism helper.
//
// The pool is deliberately work-stealing-free: ParallelFor hands out loop
// indices through a single atomic counter, so every worker (including the
// calling thread) pulls the next undone index until the range is drained.
// Determinism contract: callers make each iteration self-contained — a
// per-iteration Rng seeded as SubtaskSeed(base_seed, index), results in a
// slot owned by that index — so the outcome is bit-identical for every
// thread count, including the serial num_threads <= 1 fast path (which
// touches no threading machinery at all).

#ifndef DCS_UTIL_THREAD_POOL_H_
#define DCS_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/metrics.h"

namespace dcs {

// A fixed set of worker threads executing one parallel loop at a time.
// ParallelFor may only be called from one thread at a time (no nesting,
// no concurrent loops on the same pool).
class ThreadPool {
 public:
  // Spawns num_threads - 1 workers (the caller participates as the last
  // worker). Requires num_threads >= 1.
  explicit ThreadPool(int num_threads) : num_threads_(num_threads) {
    DCS_CHECK_GE(num_threads, 1);
    workers_.reserve(static_cast<size_t>(num_threads - 1));
    for (int i = 0; i + 1 < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { Shutdown(); }

  // Drain-then-stop: waits for any in-flight ParallelFor epoch to complete,
  // then stops and joins the workers. This is the SIGTERM path — a worker
  // process drains its current shard batch instead of aborting mid-apply.
  // Callable from a thread other than the loop caller; idempotent (a second
  // call returns once the first has claimed the workers). ParallelFor after
  // Shutdown still runs every iteration, serially on the calling thread.
  void Shutdown() {
    std::vector<std::thread> to_join;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      loop_done_.wait(
          lock, [this] { return !loop_open_ && active_drainers_ == 0; });
      if (shutdown_) return;
      shutdown_ = true;
      to_join.swap(workers_);
    }
    wake_workers_.notify_all();
    for (std::thread& worker : to_join) worker.join();
  }

  int num_threads() const { return num_threads_; }

  // Runs body(i) for every i in [0, count), distributing indices across all
  // threads; blocks until the whole range is done. `grain` is the handoff
  // batch size: each claim on the shared counter hands a worker a contiguous
  // chunk of `grain` indices, so cheap iterations (one shard lookup each)
  // amortize the atomic + cache-line transfer instead of contending per
  // index. Iterations still run in ascending order within a chunk and each
  // remains self-contained, so the determinism contract is unchanged.
  //
  // Each call is one *epoch* (generation_). Loop state (body_/count_/
  // next_index_/pending_) is only ever written while the previous epoch is
  // closed AND quiescent: workers claim indices only between marking
  // themselves as active drainers (under the mutex, after observing an open
  // epoch) and unmarking (under the mutex), and ParallelFor does not return
  // until active_drainers_ == 0. A straggler that claimed i >= count_ in
  // epoch N therefore cannot race the reset for epoch N+1 — the reset
  // happens-after it left DrainIndices, and it re-reads the generation
  // before it can ever claim again. (The previous version reset the atomics
  // while such a straggler could still be between its fetch_add and the
  // count_ load, letting one stale index run twice in the new loop and the
  // loop return before every index had run.)
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& body,
                   int64_t grain = 1) {
    DCS_CHECK_GE(count, 0);
    DCS_CHECK_GE(grain, 1);
    if (count == 0) return;
    DCS_METRIC_INC("threadpool.loop.started");
    DCS_METRIC_RECORD("threadpool.loop.tasks", count);
    DCS_METRIC_TIMER("threadpool.loop.duration_ns");
    if (num_threads_ == 1 || count == 1) {
      for (int64_t i = 0; i < count; ++i) body(i);
      DCS_METRIC_ADD("threadpool.task.completed", count);
      return;
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (shutdown_) {
        // Post-Shutdown: the workers are gone; degrade to a serial loop so
        // late-arriving work still completes during drain.
        lock.unlock();
        for (int64_t i = 0; i < count; ++i) body(i);
        DCS_METRIC_ADD("threadpool.task.completed", count);
        return;
      }
      // Closed + quiescent (guaranteed by the wait below on the previous
      // call): safe to install the new epoch's state.
      body_ = &body;
      count_ = count;
      grain_ = grain;
      pending_.store(count, std::memory_order_relaxed);
      next_index_.store(0, std::memory_order_relaxed);
      loop_open_ = true;
      ++generation_;
    }
    wake_workers_.notify_all();
    DrainIndices();
    // Every index is claimed; wait for stragglers still inside body(i) or
    // mid-claim, then close the epoch so late wakers go back to sleep.
    std::unique_lock<std::mutex> lock(mutex_);
    loop_done_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0 &&
             active_drainers_ == 0;
    });
    loop_open_ = false;
    // A Shutdown() waiter keys on loop_open_; the waits above consumed any
    // notifications, so signal the close explicitly.
    loop_done_.notify_all();
  }

 private:
  void DrainIndices() {
    // Indices claimed by this drainer in this epoch; flushed once below so
    // the claim loop stays registry-free. The per-drainer distribution is
    // the pool's load-balance/straggler signal: a wide spread between p50
    // and max means one thread ran most of the loop.
    int64_t claimed = 0;
    while (true) {
      const int64_t start =
          next_index_.fetch_add(grain_, std::memory_order_relaxed);
      if (start >= count_) break;
      const int64_t end = std::min(start + grain_, count_);
      for (int64_t i = start; i < end; ++i) (*body_)(i);
      const int64_t ran = end - start;
      claimed += ran;
      if (pending_.fetch_sub(ran, std::memory_order_acq_rel) == ran) {
        std::unique_lock<std::mutex> lock(mutex_);
        loop_done_.notify_all();
      }
    }
    DCS_METRIC_ADD("threadpool.task.completed", claimed);
    DCS_METRIC_RECORD("threadpool.drain.claimed", claimed);
  }

  void WorkerLoop() {
    int64_t seen_generation = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        // Claiming is only legal inside an open epoch: a worker that slept
        // through epoch N must not start draining after N closed, or it
        // would race the state reset for epoch N+1.
        wake_workers_.wait(lock, [this, seen_generation] {
          return shutdown_ ||
                 (generation_ != seen_generation && loop_open_);
        });
        if (shutdown_) return;
        seen_generation = generation_;
        ++active_drainers_;
      }
      DCS_METRIC_INC("threadpool.worker.woken");
      DrainIndices();
      {
        std::unique_lock<std::mutex> lock(mutex_);
        --active_drainers_;
      }
      loop_done_.notify_all();
    }
  }

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable loop_done_;
  bool shutdown_ = false;
  bool loop_open_ = false;
  int64_t generation_ = 0;
  int active_drainers_ = 0;

  // Written only under mutex_ while the epoch is closed and quiescent; read
  // by drainers, which synchronized with those writes when they observed
  // the open epoch under mutex_.
  const std::function<void(int64_t)>* body_ = nullptr;
  int64_t count_ = 0;
  int64_t grain_ = 1;
  // Each hot atomic gets its own cache line: next_index_ takes a
  // read-modify-write from every claim and pending_ one per chunk retire —
  // sharing a line with each other (or with the mutex) made every claim a
  // coherence miss for all other workers.
  alignas(64) std::atomic<int64_t> next_index_{0};
  alignas(64) std::atomic<int64_t> pending_{0};
};

// One-shot helper used by the trial runners and bench drivers: runs body(i)
// for i in [0, count) on `num_threads` threads. num_threads <= 1 is a plain
// serial loop with zero threading overhead.
inline void ParallelFor(int num_threads, int64_t count,
                        const std::function<void(int64_t)>& body,
                        int64_t grain = 1) {
  DCS_CHECK_GE(count, 0);
  if (num_threads <= 1 || count <= 1) {
    if (count == 0) return;
    DCS_METRIC_INC("threadpool.loop.started");
    DCS_METRIC_RECORD("threadpool.loop.tasks", count);
    DCS_METRIC_TIMER("threadpool.loop.duration_ns");
    for (int64_t i = 0; i < count; ++i) body(i);
    DCS_METRIC_ADD("threadpool.task.completed", count);
    return;
  }
  ThreadPool pool(num_threads);
  pool.ParallelFor(count, body, grain);
}

}  // namespace dcs

#endif  // DCS_UTIL_THREAD_POOL_H_
