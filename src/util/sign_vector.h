// Bit-packed ±1 vectors with popcount inner products.
//
// The Hadamard-structured objects in this library (sketch sign rows,
// Lemma 3.2 tensor factors) are ±1 vectors whose only operations are sign
// lookup and inner products. Packing 64 signs per machine word (bit = 1 ⇔
// sign = −1) turns an inner product into XOR + popcount:
//   ⟨a, b⟩ = #agree − #disagree = size − 2·popcount(a ⊕ b),
// one word op per 64 entries instead of 64 multiply-adds — the same trick
// streaming-sketch systems use for their AGM sketch supernode merges.

#ifndef DCS_UTIL_SIGN_VECTOR_H_
#define DCS_UTIL_SIGN_VECTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace dcs {

// Writes row `row` of the Sylvester–Hadamard matrix H_{2^log_size} as ±1
// bytes into `out` (size exactly 2^log_size) without allocating — the
// for-each decoder fills arena scratch with this on every decoded bit.
void HadamardRowSignsInto(int row, int log_size, std::span<int8_t> out);

class SignVector {
 public:
  // An all-(+1) vector of the given size.
  explicit SignVector(int64_t size = 0);

  // Packs a ±1 vector (every entry must be +1 or −1).
  static SignVector FromSigns(const std::vector<int8_t>& signs);

  // Row `row` of the Sylvester–Hadamard matrix H_{2^log_size}:
  // sign(col) = (−1)^popcount(row AND col). Requires 0 <= row < 2^log_size
  // and 0 <= log_size <= 30.
  static SignVector HadamardRow(int row, int log_size);

  int64_t size() const { return size_; }

  // The entry in {−1, +1}.
  int Sign(int64_t i) const {
    DCS_DCHECK(i >= 0 && i < size_);
    const uint64_t word = words_[static_cast<size_t>(i >> 6)];
    return (word >> (i & 63)) & 1 ? -1 : 1;
  }

  void SetSign(int64_t i, int sign);

  // ⟨a, b⟩ via XOR + popcount. Requires equal sizes.
  int64_t InnerProduct(const SignVector& other) const;

  // Σ_i sign_i = size − 2·(number of −1 entries).
  int64_t SumOfSigns() const;

  // Unpacks to a ±1 byte vector.
  std::vector<int8_t> ToSigns() const;

  friend bool operator==(const SignVector& a, const SignVector& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  int64_t size_ = 0;
  std::vector<uint64_t> words_;  // bit = 1 ⇔ sign = −1; tail bits are 0
};

}  // namespace dcs

#endif  // DCS_UTIL_SIGN_VECTOR_H_
