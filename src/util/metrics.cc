#include "util/metrics.h"

#include <algorithm>
#include <bit>

namespace dcs::metrics {
namespace {

// Bucket index for a sample: 0 for v <= 0, otherwise bit_width(v) (values
// in [2^(b-1), 2^b) land in bucket b).
size_t BucketOf(int64_t value) {
  if (value <= 0) return 0;
  const size_t b = static_cast<size_t>(
      std::bit_width(static_cast<uint64_t>(value)));
  return b < kNumBuckets ? b : kNumBuckets - 1;
}

void AtomicMin(std::atomic<int64_t>& target, int64_t value) {
  int64_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<int64_t>& target, int64_t value) {
  int64_t current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

size_t ThreadStripeIndex() {
  static std::atomic<size_t> next_stripe{0};
  thread_local const size_t stripe =
      next_stripe.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return stripe;
}

void Distribution::Record(int64_t value) {
  Cell& cell = cells_[ThreadStripeIndex()];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(cell.min, value);
  AtomicMax(cell.max, value);
  cell.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
}

DistributionStats Distribution::stats() const {
  DistributionStats stats;
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  for (const Cell& cell : cells_) {
    stats.count += cell.count.load(std::memory_order_relaxed);
    stats.sum += cell.sum.load(std::memory_order_relaxed);
    min = std::min(min, cell.min.load(std::memory_order_relaxed));
    max = std::max(max, cell.max.load(std::memory_order_relaxed));
    for (size_t b = 0; b < kNumBuckets; ++b) {
      stats.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
  }
  if (stats.count > 0) {
    stats.min = min;
    stats.max = max;
  }
  return stats;
}

int64_t DistributionStats::ApproxPercentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const int64_t target =
      std::max<int64_t>(1, static_cast<int64_t>(p * static_cast<double>(count) + 0.5));
  int64_t cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets[b];
    if (cumulative >= target) {
      // Upper bound of bucket b: 0 for b == 0, else 2^b − 1.
      const int64_t upper =
          b == 0 ? 0
                 : (b >= 63 ? INT64_MAX
                            : (int64_t{1} << b) - 1);
      return std::clamp(upper, min, max);
    }
  }
  return max;
}

MetricsSnapshot MetricsSnapshot::DiffSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot diff;
  for (const auto& [name, value] : counters) {
    const auto it = earlier.counters.find(name);
    diff.counters[name] =
        value - (it == earlier.counters.end() ? 0 : it->second);
  }
  for (const auto& [name, stats] : distributions) {
    DistributionStats d = stats;
    const auto it = earlier.distributions.find(name);
    if (it != earlier.distributions.end()) {
      d.count -= it->second.count;
      d.sum -= it->second.sum;
      for (size_t b = 0; b < kNumBuckets; ++b) {
        d.buckets[b] -= it->second.buckets[b];
      }
    }
    diff.distributions[name] = d;
  }
  return diff;
}

JsonValue MetricsSnapshot::ToJson() const {
  JsonValue counters_json = JsonValue::MakeObject();
  for (const auto& [name, value] : counters) {
    counters_json.Set(name, value);
  }
  JsonValue distributions_json = JsonValue::MakeObject();
  for (const auto& [name, stats] : distributions) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("count", stats.count);
    entry.Set("sum", stats.sum);
    entry.Set("min", stats.min);
    entry.Set("max", stats.max);
    entry.Set("mean", stats.mean());
    entry.Set("p50", stats.ApproxPercentile(0.50));
    entry.Set("p90", stats.ApproxPercentile(0.90));
    entry.Set("p99", stats.ApproxPercentile(0.99));
    distributions_json.Set(name, std::move(entry));
  }
  JsonValue root = JsonValue::MakeObject();
  root.Set("counters", std::move(counters_json));
  root.Set("distributions", std::move(distributions_json));
  return root;
}

std::string MetricsSnapshot::ToJsonString(int indent) const {
  return ToJson().Dump(indent);
}

Registry& Registry::Get() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Distribution& Registry::GetDistribution(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = distributions_.find(name);
  if (it == distributions_.end()) {
    it = distributions_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter.value();
  }
  for (const auto& [name, distribution] : distributions_) {
    snapshot.distributions[name] = distribution.stats();
  }
  return snapshot;
}

}  // namespace dcs::metrics
