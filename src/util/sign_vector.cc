#include "util/sign_vector.h"

#include <algorithm>
#include <bit>

#include "util/simd.h"

namespace dcs {
namespace {

// The packed word covering columns [word_index·64, word_index·64 + 64) of
// Hadamard row `row` (bit = 1 ⇔ sign = −1). Split col = hi·64 + lo:
// parity(popcount(row AND col)) = parity(row_lo AND lo) XOR
// parity(row_hi AND hi), so the whole word is a 6-bit base pattern,
// complemented when the high parts have odd overlap — O(1) per word
// instead of 64 per-column popcounts.
inline uint64_t HadamardRowWord(unsigned row, size_t word_index,
                                uint64_t base_pattern) {
  const unsigned row_hi = row >> 6;
  const unsigned hi = static_cast<unsigned>(word_index);
  return (std::popcount(row_hi & hi) & 1) ? ~base_pattern : base_pattern;
}

inline uint64_t HadamardBasePattern(unsigned row) {
  const unsigned row_lo = row & 63u;
  uint64_t base = 0;
  for (unsigned lo = 0; lo < 64; ++lo) {
    if (std::popcount(row_lo & lo) & 1) base |= uint64_t{1} << lo;
  }
  return base;
}

}  // namespace

void HadamardRowSignsInto(int row, int log_size, std::span<int8_t> out) {
  DCS_CHECK_GE(log_size, 0);
  DCS_CHECK_LE(log_size, 30);
  const int64_t n = int64_t{1} << log_size;
  DCS_CHECK(row >= 0 && row < n);
  DCS_CHECK_EQ(static_cast<int64_t>(out.size()), n);
  const unsigned urow = static_cast<unsigned>(row);
  const uint64_t base = HadamardBasePattern(urow);
  int64_t col = 0;
  for (size_t w = 0; col < n; ++w) {
    const uint64_t word = HadamardRowWord(urow, w, base);
    const int64_t limit = std::min<int64_t>(n, col + 64);
    for (; col < limit; ++col) {
      out[static_cast<size_t>(col)] =
          (word >> (col & 63)) & 1 ? int8_t{-1} : int8_t{1};
    }
  }
}

SignVector::SignVector(int64_t size) : size_(size) {
  DCS_CHECK_GE(size, 0);
  words_.assign(static_cast<size_t>((size + 63) >> 6), 0);
}

SignVector SignVector::FromSigns(const std::vector<int8_t>& signs) {
  SignVector packed(static_cast<int64_t>(signs.size()));
  for (size_t i = 0; i < signs.size(); ++i) {
    DCS_CHECK(signs[i] == 1 || signs[i] == -1);
    if (signs[i] < 0) {
      packed.words_[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
  return packed;
}

SignVector SignVector::HadamardRow(int row, int log_size) {
  DCS_CHECK_GE(log_size, 0);
  DCS_CHECK_LE(log_size, 30);
  const int64_t n = int64_t{1} << log_size;
  DCS_CHECK(row >= 0 && row < n);
  SignVector packed(n);
  const unsigned urow = static_cast<unsigned>(row);
  const uint64_t base = HadamardBasePattern(urow);
  if (n < 64) {
    // Partial word: mask off the tail bits (invariant: tail bits are 0).
    packed.words_[0] = base & ((uint64_t{1} << n) - 1);
    return packed;
  }
  for (size_t w = 0; w < packed.words_.size(); ++w) {
    packed.words_[w] = HadamardRowWord(urow, w, base);
  }
  return packed;
}

void SignVector::SetSign(int64_t i, int sign) {
  DCS_CHECK(i >= 0 && i < size_);
  DCS_CHECK(sign == 1 || sign == -1);
  const uint64_t mask = uint64_t{1} << (i & 63);
  if (sign < 0) {
    words_[static_cast<size_t>(i >> 6)] |= mask;
  } else {
    words_[static_cast<size_t>(i >> 6)] &= ~mask;
  }
}

int64_t SignVector::InnerProduct(const SignVector& other) const {
  DCS_CHECK_EQ(size_, other.size_);
  return size_ -
         2 * simd::XorPopcount(words_.data(), other.words_.data(),
                               words_.size());
}

int64_t SignVector::SumOfSigns() const {
  return size_ - 2 * simd::Popcount(words_.data(), words_.size());
}

std::vector<int8_t> SignVector::ToSigns() const {
  std::vector<int8_t> signs(static_cast<size_t>(size_));
  for (int64_t i = 0; i < size_; ++i) {
    signs[static_cast<size_t>(i)] = static_cast<int8_t>(Sign(i));
  }
  return signs;
}

}  // namespace dcs
