#include "util/sign_vector.h"

#include <bit>

namespace dcs {

SignVector::SignVector(int64_t size) : size_(size) {
  DCS_CHECK_GE(size, 0);
  words_.assign(static_cast<size_t>((size + 63) >> 6), 0);
}

SignVector SignVector::FromSigns(const std::vector<int8_t>& signs) {
  SignVector packed(static_cast<int64_t>(signs.size()));
  for (size_t i = 0; i < signs.size(); ++i) {
    DCS_CHECK(signs[i] == 1 || signs[i] == -1);
    if (signs[i] < 0) {
      packed.words_[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
  return packed;
}

SignVector SignVector::HadamardRow(int row, int log_size) {
  DCS_CHECK_GE(log_size, 0);
  DCS_CHECK_LE(log_size, 30);
  const int64_t n = int64_t{1} << log_size;
  DCS_CHECK(row >= 0 && row < n);
  SignVector packed(n);
  for (int64_t col = 0; col < n; ++col) {
    const unsigned overlap =
        static_cast<unsigned>(row) & static_cast<unsigned>(col);
    if (std::popcount(overlap) & 1) {
      packed.words_[static_cast<size_t>(col >> 6)] |= uint64_t{1}
                                                      << (col & 63);
    }
  }
  return packed;
}

void SignVector::SetSign(int64_t i, int sign) {
  DCS_CHECK(i >= 0 && i < size_);
  DCS_CHECK(sign == 1 || sign == -1);
  const uint64_t mask = uint64_t{1} << (i & 63);
  if (sign < 0) {
    words_[static_cast<size_t>(i >> 6)] |= mask;
  } else {
    words_[static_cast<size_t>(i >> 6)] &= ~mask;
  }
}

int64_t SignVector::InnerProduct(const SignVector& other) const {
  DCS_CHECK_EQ(size_, other.size_);
  int64_t disagreements = 0;
  for (size_t w = 0; w < words_.size(); ++w) {
    disagreements += std::popcount(words_[w] ^ other.words_[w]);
  }
  return size_ - 2 * disagreements;
}

int64_t SignVector::SumOfSigns() const {
  int64_t negatives = 0;
  for (const uint64_t word : words_) negatives += std::popcount(word);
  return size_ - 2 * negatives;
}

std::vector<int8_t> SignVector::ToSigns() const {
  std::vector<int8_t> signs(static_cast<size_t>(size_));
  for (int64_t i = 0; i < size_; ++i) {
    signs[static_cast<size_t>(i)] = static_cast<int8_t>(Sign(i));
  }
  return signs;
}

}  // namespace dcs
