// Runtime-dispatched SIMD kernels for the sketch hot paths (DESIGN.md §11).
//
// Three kernel families sit under every hot loop in the library:
//   Fwht          — in-place fast Walsh–Hadamard transform, the inner engine
//                   of the Lemma 3.2 tensor encoding (util/hadamard.cc);
//   ButterflyRows — the element-wise (a, b) → (a+b, a−b) row combine used by
//                   the tiled column passes of the 2-D transform;
//   XorPopcount / Popcount — packed-sign inner products (util/sign_vector.cc).
//
// Each family has one scalar implementation (namespace simd::scalar,
// compiled with auto-vectorization disabled so "scalar" means scalar even
// under -march=native) and vector implementations selected at runtime:
// AVX2 on x86-64 when the CPU supports it, NEON on AArch64. The dispatched
// entry points below consult ActivePath() per call (one relaxed atomic
// load).
//
// Bit-identity contract: every path — scalar fallback included — executes
// the SAME blocked pass structure (see FwhtBlocked in simd.cc), and the
// vector lanes perform exactly the element-wise operations of the scalar
// loop. Integer kernels are exact; for doubles, per-element association
// order is preserved by construction (passes in increasing butterfly
// length per element, element-wise add/sub within a pass), so scalar and
// SIMD outputs are bit-identical, not merely close. tests/util_simd_test.cc
// asserts this for every power-of-two size up to 2^16, strided and
// contiguous.
//
// Forcing a path: set the environment variable DCS_FORCE_SCALAR to any
// value other than "0" (read once, at first dispatch), or call
// ForceScalar() programmatically (tests, benches).

#ifndef DCS_UTIL_SIMD_H_
#define DCS_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace dcs::simd {

enum class DispatchPath {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

// The path the dispatched kernels below currently use. Resolved once from
// DCS_FORCE_SCALAR + CPU detection, then cached; ForceScalar overrides.
DispatchPath ActivePath();

// Stable lowercase name ("scalar", "avx2", "neon") for logs and bench JSON.
const char* DispatchPathName(DispatchPath path);

// ForceScalar(true) pins the dispatched kernels to the scalar path;
// ForceScalar(false) restores the hardware-detected path (ignoring the
// DCS_FORCE_SCALAR environment variable — tests use this to compare both
// paths in one process). Takes effect for subsequent calls on any thread.
void ForceScalar(bool force);

// In-place unnormalized FWHT of n = 2^k elements at data[0], data[stride],
// …, data[(n−1)·stride]. The contiguous case (stride == 1) runs the blocked
// vector kernel; strided layouts run the shared scalar pass loop on every
// path (identical results by construction).
void Fwht(int64_t* data, size_t n, size_t stride);
void Fwht(double* data, size_t n, size_t stride);

// Element-wise butterfly over two contiguous runs of length n:
//   (lo[i], hi[i]) ← (lo[i] + hi[i], lo[i] − hi[i]).
// The 2-D transform's column passes are sweeps of this kernel.
void ButterflyRows(int64_t* lo, int64_t* hi, size_t n);
void ButterflyRows(double* lo, double* hi, size_t n);

// Number of set bits in (a[i] ^ b[i]) summed over i < num_words.
int64_t XorPopcount(const uint64_t* a, const uint64_t* b, size_t num_words);
// Number of set bits in a[i] summed over i < num_words.
int64_t Popcount(const uint64_t* a, size_t num_words);

// The scalar implementations, callable directly (the benches time them
// against the dispatched path; the property tests compare against them).
// These are the exact code the dispatched functions run under ForceScalar.
namespace scalar {
void Fwht(int64_t* data, size_t n, size_t stride);
void Fwht(double* data, size_t n, size_t stride);
void ButterflyRows(int64_t* lo, int64_t* hi, size_t n);
void ButterflyRows(double* lo, double* hi, size_t n);
int64_t XorPopcount(const uint64_t* a, const uint64_t* b, size_t num_words);
int64_t Popcount(const uint64_t* a, size_t num_words);
}  // namespace scalar

}  // namespace dcs::simd

#endif  // DCS_UTIL_SIMD_H_
