// A small, deterministic JSON value type: build, serialize, parse.
//
// Every machine-readable artifact this library emits — `dcs_cli
// --metrics-json`, the benches' `BENCH_*.json` tables, metrics snapshots —
// goes through this one writer so the output is byte-deterministic for a
// given value: object members keep insertion order, integers print exactly,
// doubles print via shortest-round-trip `std::to_chars`. The parser is the
// validation side of the same contract: tests parse what the tools wrote
// and assert on fields instead of grepping text.
//
// Parsing follows the library's untrusted-input rules (DESIGN.md §7): it
// returns `StatusOr` with `kInvalidArgument` naming the byte offset, never
// aborts, and caps nesting depth so hostile input cannot blow the stack.

#ifndef DCS_UTIL_JSON_H_
#define DCS_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/status.h"

namespace dcs {

// One JSON value (null, bool, integer, double, string, array, or object).
// Objects preserve insertion order; `Set` replaces an existing key in
// place, so rewriting a member does not reorder the serialization.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}  // NOLINT
  JsonValue(bool value) : value_(value) {}        // NOLINT
  JsonValue(int value) : value_(static_cast<int64_t>(value)) {}  // NOLINT
  JsonValue(int64_t value) : value_(value) {}     // NOLINT
  JsonValue(double value) : value_(value) {}      // NOLINT
  JsonValue(const char* value) : value_(std::string(value)) {}  // NOLINT
  JsonValue(std::string value) : value_(std::move(value)) {}    // NOLINT

  static JsonValue MakeArray() { return JsonValue(Array{}); }
  static JsonValue MakeObject() { return JsonValue(Object{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  // Typed accessors; DCS_CHECK on kind mismatch (callers gate on is_*()).
  bool bool_value() const;
  int64_t int_value() const;
  // Numeric value as a double (integers convert).
  double number_value() const;
  const std::string& string_value() const;
  const Array& array() const;
  Array& array();
  const Object& object() const;
  Object& object();

  // Appends to an array value.
  void Append(JsonValue value);
  // Sets `key` in an object value (replaces in place if present).
  void Set(std::string_view key, JsonValue value);
  // Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  // Deterministic serialization. indent == 0 emits the compact one-line
  // form; indent > 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

  friend bool operator==(const JsonValue& a, const JsonValue& b) {
    return a.value_ == b.value_;
  }

 private:
  explicit JsonValue(Array value) : value_(std::move(value)) {}
  explicit JsonValue(Object value) : value_(std::move(value)) {}

  void DumpTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      value_;
};

// Parses one JSON document (trailing garbage is an error). Numbers without
// '.', 'e', or 'E' that fit in int64 parse as integers, everything else as
// double. kInvalidArgument on malformed input, naming the byte offset.
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace dcs

#endif  // DCS_UTIL_JSON_H_
