// Deterministic pseudo-random number generation.
//
// All randomized components in the library take an explicit `Rng&` so that
// every test, benchmark, and experiment is reproducible from a seed. The
// generator is xoshiro256++ seeded through splitmix64, which is fast,
// high-quality, and has a stable cross-platform output sequence (unlike
// std::mt19937 + std::uniform_int_distribution, whose mapping is
// implementation-defined).

#ifndef DCS_UTIL_RANDOM_H_
#define DCS_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace dcs {

// A seeded deterministic random number generator.
//
// Not thread-safe; use one instance per thread. Copyable so that a stream
// can be forked ("snapshotted") when an experiment needs to replay draws.
class Rng {
 public:
  // Seeds the generator. Different seeds give independent-looking streams.
  explicit Rng(uint64_t seed);

  Rng(const Rng& other) = default;
  Rng& operator=(const Rng& other) = default;

  // Returns the next raw 64-bit output.
  uint64_t Next();

  // Returns a uniformly random integer in [0, bound). Requires bound > 0.
  uint64_t UniformInt(uint64_t bound);

  // Returns a uniformly random integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi);

  // Returns a uniformly random double in [0, 1).
  double UniformDouble();

  // Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Returns a Binomial(n, p) draw. O(n) for small n, otherwise uses a
  // normal approximation only when n*p*(1-p) is large; exact inversion for
  // small means. Always in [0, n].
  int64_t Binomial(int64_t n, double p);

  // Returns a standard normal draw (Box–Muller, no caching).
  double Normal();

  // Returns a uniformly random sign: +1 or -1.
  int RandomSign();

  // Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  // Returns a uniformly random subset of {0, ..., universe-1} of size k
  // (sorted ascending). Requires k <= universe.
  std::vector<int> RandomSubset(int universe, int k);

  // Returns a uniformly random binary string of length `length` with exactly
  // `weight` ones. Requires weight <= length.
  std::vector<uint8_t> RandomBinaryStringWithWeight(int length, int weight);

  // Returns a uniformly random binary string of length `length`.
  std::vector<uint8_t> RandomBinaryString(int length);

  // Returns a uniformly random +/-1 string of length `length`.
  std::vector<int8_t> RandomSignString(int length);

 private:
  uint64_t state_[4];
};

// Derives the seed for independent subtask `index` (a trial, repetition, or
// probe batch) of a run seeded with `base_seed`. The splitmix64 finalizer
// decorrelates the pair: a plain `base_seed ^ index` or `base_seed + index`
// would map nearby base seeds to the *same set* of per-subtask streams
// (merely permuted), making order-invariant aggregates identical across
// seeds.
inline uint64_t SubtaskSeed(uint64_t base_seed, int64_t index) {
  uint64_t z = base_seed +
               0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace dcs

#endif  // DCS_UTIL_RANDOM_H_
