#!/usr/bin/env bash
# Enforces the metrics overhead budget (DESIGN.md §8): the instrumented
# library must not slow the hot paths by more than 5%.
#
# Builds two Release trees — DCS_ENABLE_METRICS=ON and OFF — runs
# bench_cutquery in both (the bench exercising the most instrumentation-
# dense paths: incremental cut sessions, revolving-door enumeration, trial
# parallelism), and fails if the best-of-N wall time with metrics ON
# exceeds the OFF time by more than the gate.
#
# Usage: scripts/check_metrics_overhead.sh [reps]   (default 5)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
reps="${1:-5}"
gate_percent=5

build_tree() {
  local build_dir="$1"
  local metrics="$2"
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release \
    -DDCS_ENABLE_METRICS="${metrics}" > /dev/null
  cmake --build "${build_dir}" -j"$(nproc)" --target bench_cutquery \
    > /dev/null
}

# One timed run; prints wall milliseconds.
one_run_ms() {
  local binary="$1"
  local start end
  start=$(date +%s%N)
  "${binary}" --threads 2 --out /tmp/check_metrics_overhead.json \
    > /dev/null
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 ))
}

on_dir="${repo_root}/build-metrics-on"
off_dir="${repo_root}/build-metrics-off"

echo "=== building metrics ON tree: ${on_dir}"
build_tree "${on_dir}" ON
echo "=== building metrics OFF tree: ${off_dir}"
build_tree "${off_dir}" OFF

# Interleave a warmup run of each before timing, so neither config pays
# first-touch costs (page cache, CPU frequency ramp) alone.
"${on_dir}/bench/bench_cutquery" --threads 2 \
  --out /tmp/check_metrics_overhead.json > /dev/null
"${off_dir}/bench/bench_cutquery" --threads 2 \
  --out /tmp/check_metrics_overhead.json > /dev/null

# The two configurations are timed in strict alternation, so machine-wide
# drift (thermal ramp, background load) hits both equally instead of
# biasing whichever block ran second; best-of-N then discards the noise.
echo "=== timing bench_cutquery, best of ${reps} interleaved runs each"
off_ms=""
on_ms=""
for _ in $(seq "${reps}"); do
  t=$(one_run_ms "${off_dir}/bench/bench_cutquery")
  if [[ -z "${off_ms}" || "${t}" -lt "${off_ms}" ]]; then off_ms="${t}"; fi
  t=$(one_run_ms "${on_dir}/bench/bench_cutquery")
  if [[ -z "${on_ms}" || "${t}" -lt "${on_ms}" ]]; then on_ms="${t}"; fi
done

overhead=$(awk -v on="${on_ms}" -v off="${off_ms}" \
  'BEGIN { printf "%.2f", (off > 0) ? ((on - off) * 100.0 / off) : 0 }')
echo "metrics OFF: ${off_ms} ms   metrics ON: ${on_ms} ms   overhead: ${overhead}%"

pass=$(awk -v on="${on_ms}" -v off="${off_ms}" -v gate="${gate_percent}" \
  'BEGIN { if (on <= off * (1 + gate / 100.0)) print 1; else print 0 }')
if [[ "${pass}" -ne 1 ]]; then
  echo "FAIL: metrics overhead ${overhead}% exceeds the ${gate_percent}% gate" >&2
  exit 1
fi
echo "OK: within the ${gate_percent}% gate"
