#!/usr/bin/env python3
"""Perf-regression gate for the bench JSON outputs.

Compares a fresh set of BENCH_*.json files against the committed baselines
and fails (exit 1) when any tracked timing regressed by more than the
threshold (default 15%). Also enforces two same-run acceptance floors: on
a non-scalar dispatch path the vectorized FWHT must be at least 3x the
scalar reference for n >= 4096, and the streaming ingestion pipeline
(BENCH_stream.json) must sustain >= 1M updates/sec at its best
configuration with every bit-identity flag true.

Usage:
    check_perf_regression.py --baseline DIR --fresh DIR [--threshold 0.15]

Rules:
  * A baseline file that does not exist is skipped with a warning — the
    first run of a new bench bootstraps its baseline.
  * If the two runs report different machine.hardware_concurrency the
    timings are not comparable; every regression downgrades to a warning
    (the SIMD speedup floor still applies — it is a same-run ratio).
  * Timings are wall-clock and noisy; the threshold is deliberately loose.
    Improvements are reported but never gate.
"""

import argparse
import json
import os
import sys

# (file, path) -> list of (label, key fields, metric field).
# `path` is either a list key whose entries are identified by the key
# fields, or an object key ("" key fields) holding the metric directly.
TRACKED = {
    "BENCH_cutquery.json": [
        ("enumerate_decode", ("k",), "ms_incremental"),
        ("encode_signs", ("log_size",), "ms_flat"),
    ],
    "BENCH_serve.json": [
        ("warm_vs_cold", ("n",), "ms_warm"),
        ("foreach_decode", (), "ms_warm"),
        # The multi-process serving tier under SIGKILL chaos. p50 is the
        # tracked timing: the median is stable under the randomized kill
        # schedule, while p99 (recorded in the JSON) moves with exactly
        # when the kills landed.
        ("cluster", ("kill_rate",), "p50_us"),
    ],
    "BENCH_simd.json": [
        ("rows", ("kernel", "n"), "simd_ns"),
    ],
    "BENCH_stream.json": [
        ("rows", ("inserters", "gutter"), "ns_per_update"),
    ],
    # The bake-off frontier: size_bits is seed-deterministic, so any
    # growth past the threshold is a real size regression, not noise.
    "BENCH_sparsifier.json": [
        ("frontier", ("family", "backend", "beta", "epsilon"), "size_bits"),
    ],
    # The disk-backed store's restart tiers: total time from worker spawn
    # to every pre-restart answer re-served, per restart mode.
    "BENCH_store.json": [
        ("restart", ("mode",), "ms_to_full_qps"),
    ],
}

# Acceptance floor: vectorized FWHT >= 3x scalar at n >= 4096 when the
# bench ran on a real SIMD path.
FWHT_MIN_SPEEDUP = 3.0
FWHT_MIN_N = 4096

# Acceptance floor: the streaming ingestion pipeline must sustain at least
# 1M updates/sec at its best (inserters, gutter) point (same-run value,
# independent of any baseline).
STREAM_MIN_UPDATES_PER_SEC = 1_000_000.0


def load(path):
    with open(path) as f:
        return json.load(f)


def rows_by_key(doc, path, key_fields):
    """Yield (label, row) for every tracked row in the document."""
    node = doc.get(path)
    if node is None:
        return
    if not key_fields:
        yield path, node
        return
    for row in node:
        label = ",".join(f"{k}={row[k]}" for k in key_fields)
        yield f"{path}[{label}]", row


def compare_file(name, base_doc, fresh_doc, threshold, warn_only, report):
    failures = 0
    for path, key_fields, metric in TRACKED[name]:
        base_rows = dict(rows_by_key(base_doc, path, key_fields))
        for label, fresh_row in rows_by_key(fresh_doc, path, key_fields):
            base_row = base_rows.get(label)
            if base_row is None:
                report(f"  NEW   {name} {label}.{metric} = "
                       f"{fresh_row[metric]:.3f} (no baseline row)")
                continue
            base = float(base_row[metric])
            fresh = float(fresh_row[metric])
            if base <= 0:
                continue
            ratio = fresh / base
            tag = f"{name} {label}.{metric}: {base:.3f} -> {fresh:.3f} " \
                  f"({ratio:+.1%} of baseline)".replace("+", "")
            if ratio > 1.0 + threshold:
                if warn_only:
                    report(f"  WARN  {tag} exceeds threshold "
                           f"(machine mismatch: not gating)")
                else:
                    report(f"  FAIL  {tag} exceeds +{threshold:.0%}")
                    failures += 1
            else:
                report(f"  ok    {tag}")
    return failures


def check_simd_floor(doc, report):
    """Same-run speedup floor; independent of any baseline."""
    dispatch = doc.get("dispatch_path", "scalar")
    if dispatch == "scalar":
        report("  skip  FWHT speedup floor (scalar dispatch path)")
        return 0
    failures = 0
    checked = 0
    for row in doc.get("rows", []):
        if row.get("kernel") != "fwht_i64" or row.get("n", 0) < FWHT_MIN_N:
            continue
        checked += 1
        speedup = float(row.get("speedup", 0.0))
        if speedup < FWHT_MIN_SPEEDUP:
            report(f"  FAIL  fwht_i64 n={row['n']}: speedup {speedup:.2f} "
                   f"< {FWHT_MIN_SPEEDUP:.1f} on {dispatch} path")
            failures += 1
        else:
            report(f"  ok    fwht_i64 n={row['n']}: speedup {speedup:.2f} "
                   f">= {FWHT_MIN_SPEEDUP:.1f} ({dispatch})")
    if checked == 0:
        report(f"  FAIL  no fwht_i64 rows with n >= {FWHT_MIN_N} "
               f"on {dispatch} path")
        failures += 1
    return failures


def check_stream_floor(doc, report):
    """Same-run ingestion throughput floor; independent of any baseline."""
    best = float(doc.get("best_updates_per_sec", 0.0))
    if best < STREAM_MIN_UPDATES_PER_SEC:
        report(f"  FAIL  best_updates_per_sec {best:,.0f} < "
               f"{STREAM_MIN_UPDATES_PER_SEC:,.0f} floor")
        return 1
    report(f"  ok    best_updates_per_sec {best:,.0f} >= "
           f"{STREAM_MIN_UPDATES_PER_SEC:,.0f} floor")
    return 0


def check_correctness_flags(name, doc, report):
    """Bit-identity flags recorded by the benches must all be true."""
    failures = 0

    def demand(label, value):
        nonlocal failures
        if value is False:
            report(f"  FAIL  {name} {label} is false (answers diverged)")
            failures += 1

    for row in doc.get("warm_vs_cold", []):
        demand(f"warm_vs_cold[n={row.get('n')}].identical",
               row.get("identical"))
    scaling = doc.get("thread_scaling")
    if scaling is not None:
        demand("thread_scaling.answers_identical",
               scaling.get("answers_identical"))
    for row in doc.get("cluster", []):
        # The chaos-soak invariant: every batch a client completed against
        # the worker fleet — including across SIGKILL failovers — matched
        # the single-process oracle bit for bit. A row that failed to run
        # records answers_bit_identical=false and fails here too.
        demand(f"cluster[kill_rate={row.get('kill_rate')}]"
               f".answers_bit_identical",
               row.get("answers_bit_identical"))
    for row in doc.get("enumerate_decode", []):
        demand(f"enumerate_decode[k={row.get('k')}].same_subset",
               row.get("same_subset"))
    for row in doc.get("encode_signs", []):
        demand(f"encode_signs[log_size={row.get('log_size')}].match",
               row.get("match"))
    if name == "BENCH_stream.json":
        # Sketch bit-identity across inserter counts and flush
        # interleavings: the whole point of the linear-sketch pipeline.
        demand("answers_identical", doc.get("answers_identical"))
        for row in doc.get("rows", []):
            demand(f"rows[inserters={row.get('inserters')},"
                   f"gutter={row.get('gutter')}].identical",
                   row.get("identical"))
    if name == "BENCH_store.json":
        # The restart contract: a drained worker's respawn — warm or cold
        # — must re-serve every pre-restart answer bit for bit, the warm
        # path must actually reattach from the store (not silently
        # re-send graphs), and a warm restart that is no faster than a
        # cold one means the disk tier stopped paying for itself.
        for row in doc.get("restart", []):
            demand(f"restart[mode={row.get('mode')}]"
                   f".answers_bit_identical",
                   row.get("answers_bit_identical"))
        demand("restored_answers_bit_identical",
               doc.get("restored_answers_bit_identical", False))
        demand("warm_used_reattach", doc.get("warm_used_reattach", False))
        demand("warm_faster_than_cold",
               doc.get("warm_faster_than_cold", False))
        io = doc.get("segment_io", {})
        demand("segment_io.round_trip_identical",
               io.get("round_trip_identical", False))
    if name == "BENCH_sparsifier.json":
        # Accuracy contract: every backend on every zoo family must land
        # within the error bound it advertised, and the cut-balance
        # sketch's imbalance storage must grow with log beta (the paper's
        # Omega(n log beta) term). Either flag false fails the gate.
        frontier = doc.get("frontier", [])
        if not frontier:
            report(f"  FAIL  {name} has no frontier rows")
            failures += 1
        for row in frontier:
            demand(f"frontier[{row.get('family')},{row.get('backend')},"
                   f"beta={row.get('beta')},eps={row.get('epsilon')}]"
                   f".within_epsilon",
                   row.get("within_epsilon", False))
        demand("imbalance_bits_grow_with_log_beta",
               doc.get("imbalance_bits_grow_with_log_beta", False))
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="directory with committed BENCH_*.json")
    parser.add_argument("--fresh", required=True,
                        help="directory with freshly generated BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated slowdown (default 0.15 = 15%%)")
    args = parser.parse_args()

    failures = 0
    for name in sorted(TRACKED):
        fresh_path = os.path.join(args.fresh, name)
        base_path = os.path.join(args.baseline, name)
        if not os.path.exists(fresh_path):
            print(f"{name}: FAIL — fresh run produced no file at "
                  f"{fresh_path}")
            failures += 1
            continue
        fresh_doc = load(fresh_path)
        print(f"{name}:")
        failures += check_correctness_flags(name, fresh_doc, print)
        if name == "BENCH_simd.json":
            failures += check_simd_floor(fresh_doc, print)
        if name == "BENCH_stream.json":
            failures += check_stream_floor(fresh_doc, print)
        if not os.path.exists(base_path):
            print(f"  skip  no committed baseline at {base_path} "
                  f"(bootstrapping)")
            continue
        base_doc = load(base_path)
        base_hw = base_doc.get("machine", {}).get("hardware_concurrency")
        fresh_hw = fresh_doc.get("machine", {}).get("hardware_concurrency")
        warn_only = base_hw != fresh_hw
        if warn_only:
            print(f"  note  machine mismatch (baseline hw={base_hw}, "
                  f"fresh hw={fresh_hw}): regressions warn, not gate")
        failures += compare_file(name, base_doc, fresh_doc,
                                 args.threshold, warn_only, print)

    if failures:
        print(f"\nperf gate: {failures} failure(s)")
        return 1
    print("\nperf gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
