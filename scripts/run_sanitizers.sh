#!/usr/bin/env bash
# Builds and runs the full test suite under AddressSanitizer and
# ThreadSanitizer (separate build trees, both kept for incremental reruns).
# The sanitizer builds also register tsan_stress_test with ctest, so the
# straggler/data-race stress drivers run under the real checkers.
#
# Usage: scripts/run_sanitizers.sh [address|thread]
#   With no argument both sanitizers run (address first).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

run_one() {
  local kind="$1"
  local build_dir="${repo_root}/build-${kind%%san*}san"
  case "${kind}" in
    address) build_dir="${repo_root}/build-asan" ;;
    thread) build_dir="${repo_root}/build-tsan" ;;
    *)
      echo "unknown sanitizer '${kind}' (want address or thread)" >&2
      exit 2
      ;;
  esac
  echo "=== ${kind} sanitizer: ${build_dir} ==="
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDCS_ENABLE_SANITIZERS="${kind}"
  cmake --build "${build_dir}" -j"$(nproc)"
  ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)"
}

if [[ $# -gt 1 ]]; then
  echo "usage: $0 [address|thread]" >&2
  exit 2
fi

if [[ $# -eq 1 ]]; then
  run_one "$1"
else
  run_one address
  run_one thread
fi
