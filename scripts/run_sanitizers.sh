#!/usr/bin/env bash
# Builds and runs the full test suite under AddressSanitizer and
# ThreadSanitizer (separate build trees, both kept for incremental reruns).
# The sanitizer builds also register tsan_stress_test with ctest, so the
# straggler/data-race stress drivers run under the real checkers.
#
# A third configuration, "metrics-off", compiles the library with
# DCS_ENABLE_METRICS=OFF (no sanitizer) and runs the suite there, proving
# the instrumentation macros really compile out: metric-dependent tests
# skip and everything else behaves identically.
#
# Usage: scripts/run_sanitizers.sh [address|thread|metrics-off]
#   With no argument all three configurations run (address first).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

run_one() {
  local kind="$1"
  local build_dir
  local -a cmake_flags
  case "${kind}" in
    address)
      build_dir="${repo_root}/build-asan"
      cmake_flags=(-DDCS_ENABLE_SANITIZERS=address)
      ;;
    thread)
      build_dir="${repo_root}/build-tsan"
      cmake_flags=(-DDCS_ENABLE_SANITIZERS=thread)
      ;;
    metrics-off)
      build_dir="${repo_root}/build-metrics-off"
      cmake_flags=(-DDCS_ENABLE_METRICS=OFF)
      ;;
    *)
      echo "unknown configuration '${kind}' (want address, thread, or metrics-off)" >&2
      exit 2
      ;;
  esac
  echo "=== ${kind}: ${build_dir} ==="
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    "${cmake_flags[@]}"
  cmake --build "${build_dir}" -j"$(nproc)"
  ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)"
  if [[ "${kind}" == "address" || "${kind}" == "thread" ]]; then
    # Run the concurrency-heavy suites once more by themselves so their
    # racy paths (striped LRU under eviction pressure, concurrent
    # AnswerBatch callers, multi-producer streaming ingestion with
    # concurrent epoch queries) get an isolated, clearly attributed pass
    # under the checker. The sparsifier differential suite rides along:
    # its backend registry exercises every sketch's build/serialize path
    # (including the cut-balance bit packer) under the checker too.
    # transport_test rides along: the socket transport, bounded-queue
    # admission control, worker drain, and client failover all have
    # thread-heavy paths worth an isolated pass under the checker.
    # store_test rides along: segment append/reopen/compact and the cache
    # snapshot round trip are raw-byte and pread-heavy paths where ASan
    # catches off-by-one record framing that the checksums alone mask.
    ctest --test-dir "${build_dir}" --output-on-failure \
      -R '^(serve_test|tsan_stress_test|stream_test|ingest_test|sparsifier_differential_test|transport_test|store_test)$'
    # The SIMD dispatch layer has two code paths per kernel (vectorized
    # and forced-scalar); run the kernels' consumers under the checker on
    # both so neither path escapes sanitizer coverage.
    local force_scalar
    for force_scalar in 0 1; do
      echo "--- ${kind}: DCS_FORCE_SCALAR=${force_scalar} ---"
      DCS_FORCE_SCALAR="${force_scalar}" ctest --test-dir "${build_dir}" \
        --output-on-failure \
        -R '^(util_simd_test|util_hadamard_test|util_sign_vector_test|serve_test|lowerbound_foreach_test)$'
    done
  fi
  if [[ "${kind}" == "address" ]]; then
    # The chaos sweep drives the lossy-channel retransmission paths end to
    # end; under ASan it doubles as a leak/overflow check on the frame
    # parser and reassembly buffers.
    "${repo_root}/scripts/run_chaos.sh" "${build_dir}"
  fi
}

if [[ $# -gt 1 ]]; then
  echo "usage: $0 [address|thread|metrics-off]" >&2
  exit 2
fi

if [[ $# -eq 1 ]]; then
  run_one "$1"
else
  run_one address
  run_one thread
  run_one metrics-off
fi
