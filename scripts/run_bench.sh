#!/usr/bin/env bash
# Builds the cut-query and serving-layer benchmarks in Release mode
# (-O3 -march=native) and runs them, leaving BENCH_cutquery.json and
# BENCH_serve.json in the repository root.
#
# Usage: scripts/run_bench.sh [--threads N]
#   --threads N   cap for the thread-scaling sweeps (default: up to 8 or
#                 the hardware concurrency, whichever is smaller)
# Extra arguments are passed through to both benchmark binaries, so
# per-binary --out overrides are better done by invoking the binary
# directly from build-bench/bench/.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-bench"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-O3 -march=native"
cmake --build "${build_dir}" --target bench_cutquery bench_serve -j"$(nproc)"

cd "${repo_root}"
"${build_dir}/bench/bench_cutquery" "$@"
"${build_dir}/bench/bench_serve" "$@"
