#!/usr/bin/env bash
# Builds the cut-query benchmark in Release mode (-O3 -march=native) and
# runs it, leaving BENCH_cutquery.json in the repository root.
#
# Usage: scripts/run_bench.sh [--threads N] [--out FILE]
#   --threads N   cap for the thread-scaling sweep (default: up to 8 or
#                 the hardware concurrency, whichever is smaller)
#   --out FILE    where to write the JSON (default: BENCH_cutquery.json)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-bench"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-O3 -march=native"
cmake --build "${build_dir}" --target bench_cutquery -j"$(nproc)"

cd "${repo_root}"
exec "${build_dir}/bench/bench_cutquery" "$@"
