#!/usr/bin/env bash
# Builds the cut-query, serving-layer, streaming-ingestion,
# Hadamard/SIMD, sparsifier-bake-off, and sketch-store benchmarks in
# Release mode
# (-O3 -march=native), runs them into a scratch directory,
# gates the fresh numbers against the committed BENCH_*.json baselines
# with scripts/check_perf_regression.py (>15% slowdown on a tracked
# timing fails), and only then copies the fresh JSON into the repository
# root as the new baselines.
#
# Usage: scripts/run_bench.sh [--no-gate] [--threads N]
#   --no-gate     skip the regression gate (also: DCS_PERF_GATE=off)
#   --threads N   cap for the thread-scaling sweeps (default: hardware
#                 concurrency, at most 8)
# Extra arguments are passed through to all benchmark binaries.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-bench"
out_dir="${build_dir}/bench-out"

gate=1
if [[ "${DCS_PERF_GATE:-on}" == "off" ]]; then
  gate=0
fi
declare -a passthrough=()
for arg in "$@"; do
  if [[ "${arg}" == "--no-gate" ]]; then
    gate=0
  else
    passthrough+=("${arg}")
  fi
done

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-O3 -march=native"
cmake --build "${build_dir}" \
  --target bench_cutquery bench_serve bench_stream bench_hadamard \
  bench_sparsifier bench_store \
  -j"$(nproc)"

mkdir -p "${out_dir}"
"${build_dir}/bench/bench_cutquery" \
  --out "${out_dir}/BENCH_cutquery.json" "${passthrough[@]+"${passthrough[@]}"}"
"${build_dir}/bench/bench_serve" \
  --out "${out_dir}/BENCH_serve.json" "${passthrough[@]+"${passthrough[@]}"}"
"${build_dir}/bench/bench_stream" \
  --out "${out_dir}/BENCH_stream.json" "${passthrough[@]+"${passthrough[@]}"}"
"${build_dir}/bench/bench_hadamard" \
  --out "${out_dir}/BENCH_hadamard.json" \
  --out-simd "${out_dir}/BENCH_simd.json" \
  "${passthrough[@]+"${passthrough[@]}"}"
"${build_dir}/bench/bench_sparsifier" \
  --out "${out_dir}/BENCH_sparsifier.json" \
  "${passthrough[@]+"${passthrough[@]}"}"
"${build_dir}/bench/bench_store" \
  --out "${out_dir}/BENCH_store.json" "${passthrough[@]+"${passthrough[@]}"}"

if [[ "${gate}" -eq 1 ]]; then
  echo
  echo "=== perf-regression gate (baseline: repo root) ==="
  python3 "${repo_root}/scripts/check_perf_regression.py" \
    --baseline "${repo_root}" --fresh "${out_dir}"
else
  echo "perf gate disabled (--no-gate or DCS_PERF_GATE=off)"
fi

# Gate passed (or was disabled): promote the fresh numbers to baselines.
cp "${out_dir}/BENCH_cutquery.json" \
   "${out_dir}/BENCH_serve.json" \
   "${out_dir}/BENCH_stream.json" \
   "${out_dir}/BENCH_simd.json" \
   "${out_dir}/BENCH_sparsifier.json" \
   "${out_dir}/BENCH_store.json" \
   "${repo_root}/"
echo "baselines updated in ${repo_root}"
