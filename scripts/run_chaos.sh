#!/usr/bin/env bash
# Chaos sweep for the lossy-channel layer (DESIGN.md §9): runs the
# `protocol` and `distributed` subcommands across a grid of drop/flip
# rates and asserts the two recovery invariants end to end:
#
#   1. Determinism — rerunning with the same --chaos-seed produces
#      byte-identical stdout (the fault script is a pure function of the
#      seed).
#   2. Recovery — whenever every message beats the retransmission
#      deadline, the decode line is byte-identical to the fault-free
#      baseline; the channel only ever adds transport bits.
#
# Usage: scripts/run_chaos.sh [BUILD_DIR]
#   BUILD_DIR defaults to build/; pass build-asan/ to run the sweep under
#   AddressSanitizer (run_sanitizers.sh leaves that tree behind).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

cmake -B "${build_dir}" -S "${repo_root}" > /dev/null
cmake --build "${build_dir}" --target dcs_cli -j"$(nproc)" > /dev/null
cli="${build_dir}/tools/dcs"
if [[ ! -x "${cli}" ]]; then
  echo "dcs CLI not found at ${cli}" >&2
  exit 1
fi

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT
failures=0

# check_case NAME BASELINE_ARGS CHAOS_ARGS
#   Runs the fault-free baseline, then the chaos run twice; asserts the
#   chaos reruns match each other byte for byte and that the first output
#   line (the decode/estimate line) matches the baseline.
check_case() {
  local name="$1" baseline_args="$2" chaos_args="$3"
  # shellcheck disable=SC2086
  "${cli}" ${baseline_args} > "${tmp_dir}/baseline.txt"
  # shellcheck disable=SC2086
  "${cli}" ${baseline_args} ${chaos_args} > "${tmp_dir}/chaos1.txt"
  # shellcheck disable=SC2086
  "${cli}" ${baseline_args} ${chaos_args} > "${tmp_dir}/chaos2.txt"
  if ! cmp -s "${tmp_dir}/chaos1.txt" "${tmp_dir}/chaos2.txt"; then
    echo "FAIL ${name}: same --chaos-seed produced different output" >&2
    diff "${tmp_dir}/chaos1.txt" "${tmp_dir}/chaos2.txt" >&2 || true
    failures=$((failures + 1))
    return
  fi
  if ! cmp -s <(head -n 1 "${tmp_dir}/baseline.txt") \
              <(head -n 1 "${tmp_dir}/chaos1.txt"); then
    echo "FAIL ${name}: recovered decode differs from fault-free baseline" >&2
    echo "  baseline: $(head -n 1 "${tmp_dir}/baseline.txt")" >&2
    echo "  chaos:    $(head -n 1 "${tmp_dir}/chaos1.txt")" >&2
    failures=$((failures + 1))
    return
  fi
  echo "ok   ${name}"
}

graph="${tmp_dir}/chaos_graph.txt"
"${cli}" generate --type dumbbell --n 16 --k 3 --out "${graph}" > /dev/null

# 64 rounds of selective repeat make delivery overwhelmingly likely at
# every rate in the grid, so the recovery invariant must hold.
for drop in 0.05 0.2 0.4; do
  for flip in 0.0 0.1; do
    chaos="--chaos-seed 11 --chaos-drop ${drop} --chaos-flip ${flip} \
--chaos-rounds 64"
    check_case "protocol/foreach drop=${drop} flip=${flip}" \
      "protocol --kind foreach --probes 16 --seed 4" "${chaos}"
    check_case "protocol/forall drop=${drop} flip=${flip}" \
      "protocol --kind forall --trials 4 --seed 4" "${chaos}"
    check_case "distributed drop=${drop} flip=${flip}" \
      "distributed --in ${graph} --servers 3 --seed 5" "${chaos}"
  done
done

# Past-deadline loss must degrade, not crash: everything drops and only
# two rounds are allowed, so every server is lost and the run reports
# kUnavailable through exit code 1 (never a signal).
set +e
"${cli}" distributed --in "${graph}" --servers 3 --seed 5 \
  --chaos-seed 11 --chaos-drop 1.0 --chaos-rounds 2 \
  > /dev/null 2> "${tmp_dir}/stderr.txt"
status=$?
set -e
if [[ ${status} -ne 1 ]]; then
  echo "FAIL all-lost: expected exit 1, got ${status}" >&2
  cat "${tmp_dir}/stderr.txt" >&2
  failures=$((failures + 1))
else
  echo "ok   all-lost degrades to exit 1 (no crash)"
fi

# Process-kill chaos for the multi-process serving tier (DESIGN.md §14):
# real dcs_server worker processes under SIGKILL at a 20% per-tick rate
# with R=2 replication. The subcommand exits non-zero if any completed
# answer differs from the single-process oracle by a single bit, if any
# loss surfaces as something other than kUnavailable/kResourceExhausted,
# or if no batch completes at all.
set +e
"${cli}" cluster --workers 4 --replication 2 --clients 2 --batches 200 \
  --kill-rate 0.2 --kill-interval-ms 5 --respawn-delay-ms 5 --seed 11 \
  > "${tmp_dir}/cluster.txt" 2>&1
status=$?
set -e
if [[ ${status} -ne 0 ]]; then
  echo "FAIL cluster soak @20% SIGKILL: exit ${status}" >&2
  cat "${tmp_dir}/cluster.txt" >&2
  failures=$((failures + 1))
else
  echo "ok   cluster soak @20% SIGKILL, R=2 ($(grep -o 'kills [0-9]*' \
    "${tmp_dir}/cluster.txt" | head -n 1); answers bit-identical)"
fi

if [[ ${failures} -ne 0 ]]; then
  echo "chaos sweep: ${failures} failure(s)" >&2
  exit 1
fi
echo "chaos sweep: OK"
