// Experiment PROTO — the reductions with real transcripts.
//
// The theorems' operational content: a message that lets Bob decode must
// be long. Here Alice's message is an actual serialized sketch from
// src/sketch (not an abstract oracle); sweeping the sketch accuracy traces
// the measured (message bits, decode accuracy) frontier, and the 2-SUM
// solver converts local queries into Lemma 5.6 communication bits.
//
// Tables produced:
//   A: for-each protocol frontier — serialized DirectedForEachSketch bits
//      vs Index-decoding accuracy, against the payload (pigeonhole line).
//   B: for-all protocol — serialized DirectedForAllSketch bits vs
//      Gap-Hamming decision accuracy.
//   C: 2-SUM via min-cut — transcript bits vs the Ω(tL/α) bound
//      (Theorem 5.4) across instance sizes.

#include <benchmark/benchmark.h>

#include "lowerbound/protocols.h"
#include "lowerbound/twosum_solver.h"
#include "json_writer.h"
#include "table.h"
#include "util/random.h"

namespace dcs {

using bench::E;
using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

void TableA() {
  PrintBanner("PROTO/A",
              "Index via serialized for-each sketches (1/eps=8, "
              "sqrt(beta)=2, payload 196 bits)");
  ForEachLowerBoundParams params;
  params.inv_epsilon = 8;
  params.sqrt_beta = 2;
  params.num_layers = 2;
  PrintRow({"sketch eps", "oversample", "message bits", "payload bits",
            "accuracy"});
  PrintRule(5);
  struct Config {
    double sketch_epsilon;
    double oversample;
  };
  for (const Config& config :
       {Config{0.02, 20.0}, Config{0.3, 0.5}, Config{0.6, 0.1},
        Config{0.8, 0.03}, Config{0.9, 0.01}}) {
    Rng rng(static_cast<uint64_t>(config.sketch_epsilon * 10000));
    const SketchProtocolResult result = RunForEachSketchProtocol(
        params, config.sketch_epsilon, config.oversample, 150, rng);
    PrintRow({F(config.sketch_epsilon, 2), F(config.oversample, 2),
              I(result.message_bits), I(result.payload_bits),
              F(result.accuracy(), 3)});
  }
  std::printf(
      "(the frontier: whenever accuracy stays >= 2/3, the message exceeds\n"
      " the payload — the Lemma 3.1 pigeonhole; pushing the message below\n"
      " the payload destroys decodability)\n");
}

void TableB() {
  PrintBanner("PROTO/B",
              "Gap-Hamming via serialized for-all sketches (1/eps^2=16, "
              "beta=1)");
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 16;
  params.beta = 1;
  params.num_layers = 2;
  PrintRow({"sketch eps", "oversample", "message bits", "payload bits",
            "accuracy"});
  PrintRule(5);
  struct Config {
    double sketch_epsilon;
    double oversample;
  };
  for (const Config& config :
       {Config{0.02, 20.0}, Config{0.2, 1.0}, Config{0.6, 0.05}}) {
    Rng rng(static_cast<uint64_t>(config.sketch_epsilon * 1000) + 5);
    const SketchProtocolResult result = RunForAllSketchProtocol(
        params, config.sketch_epsilon, config.oversample, 30, rng);
    PrintRow({F(config.sketch_epsilon, 2), F(config.oversample, 2),
              I(result.message_bits), I(result.payload_bits),
              F(result.accuracy(), 3)});
  }
  std::printf("(same shape for the for-all game of Lemma 4.1)\n");
}

void TableC(int threads) {
  PrintBanner("PROTO/C",
              "2-SUM solved through local-query min-cut (Lemma 5.6), "
              "3 repetitions each");
  PrintRow({"t", "L", "alpha", "comm bits", "t*L/alpha", "DISJ err"});
  PrintRule(6);
  struct Config {
    int pairs;
    int length;
    int alpha;
  };
  for (const Config& config :
       {Config{4, 100, 1}, Config{4, 196, 2}, Config{8, 128, 2},
        Config{16, 64, 1}}) {
    TwoSumParams params;
    params.num_pairs = config.pairs;
    params.string_length = config.length;
    params.alpha = config.alpha;
    params.intersect_fraction = 0.25;
    Rng rng(static_cast<uint64_t>(config.pairs * 1000 + config.length));
    const TwoSumInstance instance = SampleTwoSumInstance(params, rng);
    // Seed-deterministic repetitions, optionally across threads; the
    // per-repetition results do not depend on `threads`.
    const std::vector<TwoSumSolveResult> results =
        SolveTwoSumViaMinCutRepeated(instance, 0.25, 3, 11,
                                     SearchMode::kModifiedConstantSearch,
                                     threads);
    double mean_error = 0;
    int64_t mean_bits = 0;
    for (const TwoSumSolveResult& result : results) {
      mean_error += std::abs(result.disjoint_estimate -
                             instance.disjoint_count) /
                    static_cast<double>(results.size());
      mean_bits += result.communication_bits /
                   static_cast<int64_t>(results.size());
    }
    PrintRow({I(config.pairs), I(config.length), I(config.alpha),
              I(mean_bits),
              I(static_cast<int64_t>(config.pairs) * config.length /
                config.alpha),
              F(mean_error, 2)});
  }
  std::printf(
      "(the protocol solves every instance within the promised sqrt(t)\n"
      " additive error while its transcript stays a polylog multiple of\n"
      " the Omega(tL/alpha) bound of Theorem 5.4)\n");
}

void BM_ForEachProtocol(benchmark::State& state) {
  ForEachLowerBoundParams params;
  params.inv_epsilon = 8;
  params.sqrt_beta = 1;
  params.num_layers = 2;
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(
        RunForEachSketchProtocol(params, 0.05, 5.0, 20, rng));
  }
}
BENCHMARK(BM_ForEachProtocol);

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path = dcs::bench::ConsumeOutFlag(
      &argc, argv, "BENCH_protocols.json");
  const int threads = dcs::bench::ConsumeThreadsFlag(&argc, argv);
  dcs::TableA();
  dcs::TableB();
  dcs::TableC(threads);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dcs::bench::WriteBenchJson(out_path, dcs::JsonValue::MakeObject());
  return 0;
}
