// Experiment T5.7 — Theorem 5.7 (the modified BGMP21 upper bound).
//
// Paper claim: running the guess-halving search at constant accuracy β₀ and
// only the final VERIFY-GUESS at ε improves the query complexity from
// Õ(m/(ε⁴k))-grade behavior to Õ(m/(ε²k)), matching the Theorem 1.3 lower
// bound. The unsaturated sampling regime needs ε²k ≫ log n, so the
// workloads are high-multiplicity regular multigraphs (n = 64, k up to
// 16384 parallel-edge degree).
//
// Tables produced:
//   A: queries vs ε — original (ε-accurate search) vs modified (β₀ search);
//      the original saturates at Θ(m) (its 1/ε⁴ final call) while the
//      modified tracks m/(ε²k).
//   B: queries vs k at fixed ε for the modified algorithm — the 1/k law.
//   C: estimate accuracy of both variants (both must be (1±ε)).

#include <benchmark/benchmark.h>

#include <cmath>

#include "graph/generators.h"
#include "localquery/mincut_estimator.h"
#include "mincut/stoer_wagner.h"
#include "json_writer.h"
#include "table.h"
#include "util/stats.h"

namespace dcs {

using bench::E;
using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

struct RunStats {
  double queries = 0;
  double estimate = 0;
};

RunStats MeasureMode(const UndirectedGraph& g, double epsilon,
                     SearchMode mode, int reps, uint64_t seed) {
  RunStats stats;
  for (int rep = 0; rep < reps; ++rep) {
    Rng rng(seed + static_cast<uint64_t>(rep));
    const LocalQueryMinCutResult result =
        EstimateMinCutLocalQueries(g, epsilon, mode, rng);
    stats.queries += static_cast<double>(result.counts.total()) / reps;
    stats.estimate += result.estimate / reps;
  }
  return stats;
}

void TableA() {
  PrintBanner("T5.7/A",
              "Queries vs eps: original (eps-search) vs modified "
              "(beta0-search), n=64, k=16384");
  Rng gen_rng(1);
  const UndirectedGraph g = UnionOfRandomMatchings(64, 16384, gen_rng);
  const double m = static_cast<double>(g.num_edges());
  const double k = 16384;
  PrintRow({"eps", "q(original)", "q(modified)", "orig/mod",
            "m/(e^2 k)", "cap 2m"});
  PrintRule(6);
  std::vector<double> inv_eps, modified_queries;
  for (double epsilon : {0.5, 0.35, 0.25, 0.18}) {
    const RunStats original =
        MeasureMode(g, epsilon, SearchMode::kOriginalEpsilonSearch, 2,
                    static_cast<uint64_t>(epsilon * 1000));
    const RunStats modified =
        MeasureMode(g, epsilon, SearchMode::kModifiedConstantSearch, 2,
                    static_cast<uint64_t>(epsilon * 2000));
    inv_eps.push_back(1 / epsilon);
    modified_queries.push_back(modified.queries);
    PrintRow({F(epsilon, 2), F(original.queries, 0), F(modified.queries, 0),
              F(original.queries / modified.queries, 2),
              F(m / (epsilon * epsilon * k), 0), F(2 * m, 0)});
  }
  const LineFit fit = FitLogLog(inv_eps, modified_queries);
  std::printf(
      "modified: log-log slope of queries vs 1/eps = %.2f (paper: 2.0);\n"
      "original: saturates at the Theta(m) cap (its 1/eps^4 final call),\n"
      "so the orig/mod ratio grows as eps shrinks.\n",
      fit.slope);
}

void TableB() {
  PrintBanner("T5.7/B",
              "Modified algorithm: queries vs k (n=64, eps=0.35)");
  PrintRow({"k", "m", "queries", "m/(e^2 k)", "queries/envelope"});
  PrintRule(5);
  std::vector<double> ks, qs;
  for (int k : {2048, 4096, 8192, 16384}) {
    Rng gen_rng(static_cast<uint64_t>(k));
    const UndirectedGraph g = UnionOfRandomMatchings(64, k, gen_rng);
    const double m = static_cast<double>(g.num_edges());
    const RunStats stats = MeasureMode(
        g, 0.35, SearchMode::kModifiedConstantSearch, 2, 300 + k);
    const double envelope = m / (0.35 * 0.35 * k);
    ks.push_back(k);
    qs.push_back(stats.queries);
    PrintRow({I(k), F(m, 0), F(stats.queries, 0), F(envelope, 0),
              F(stats.queries / envelope, 2)});
  }
  std::printf(
      "(m = n*k/2 grows with k, so the envelope m/(eps^2 k) is constant in\n"
      " k; measured queries flatten to a polylog multiple of it once the\n"
      " sampling desaturates)\n");
  (void)ks;
  (void)qs;
}

void TableC() {
  PrintBanner("T5.7/C", "Estimate accuracy of both variants");
  Rng gen_rng(7);
  const UndirectedGraph g = UnionOfRandomMatchings(64, 4096, gen_rng);
  const double exact = StoerWagnerMinCut(g).value;
  PrintRow({"eps", "mode", "estimate", "exact k", "rel err"});
  PrintRule(5);
  for (double epsilon : {0.35, 0.2}) {
    for (SearchMode mode : {SearchMode::kOriginalEpsilonSearch,
                            SearchMode::kModifiedConstantSearch}) {
      const RunStats stats = MeasureMode(
          g, epsilon, mode, 3, static_cast<uint64_t>(epsilon * 4000));
      PrintRow({F(epsilon, 2),
                mode == SearchMode::kOriginalEpsilonSearch ? "original"
                                                           : "modified",
                F(stats.estimate, 1), F(exact, 1),
                F(std::abs(stats.estimate - exact) / exact, 3)});
    }
  }
  std::printf("(both variants must be (1 +/- eps)-accurate; the modified\n"
              " one just gets there with fewer queries)\n");
}

void BM_VerifyGuessDrivenEstimate(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng gen_rng(9);
  const UndirectedGraph g = UnionOfRandomMatchings(64, k, gen_rng);
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(EstimateMinCutLocalQueries(
        g, 0.35, SearchMode::kModifiedConstantSearch, rng));
  }
  state.counters["edges"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_VerifyGuessDrivenEstimate)->Arg(1024)->Arg(4096);

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path = dcs::bench::ConsumeOutFlag(
      &argc, argv, "BENCH_localquery_upperbound.json");
  dcs::TableA();
  dcs::TableB();
  dcs::TableC();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dcs::bench::WriteBenchJson(out_path, dcs::JsonValue::MakeObject());
  return 0;
}
