// Experiment T1.1 — Theorem 1.1 (for-each cut sketch lower bound) and the
// Figure 1 cut anatomy.
//
// Paper claim: any (1±ε) for-each cut sketch for β-balanced n-node graphs
// needs Ω̃(n√β/ε) bits; the Section 3 construction stores Θ(n√β/ε)
// recoverable bits, each decodable from 4 cut queries of accuracy
// c₂ε/ln(1/ε), and decoding collapses once the oracle error is ω(ε).
//
// Tables produced:
//   A: encodable bits vs the n√β/ε formula across (1/ε, √β, ℓ), with
//      exact-oracle decode accuracy.
//   B: decode accuracy vs oracle relative error (the threshold crossover),
//      for several ε — the measured threshold scales like ε.
//   C: Figure 1 anatomy — forward/backward composition of the query cuts.
//   D: median-boost ablation at a borderline noise level.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>

#include "lowerbound/foreach_encoding.h"
#include "json_writer.h"
#include "table.h"
#include "util/random.h"
#include "util/stats.h"

namespace dcs {

using bench::E;
using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

double ExactAccuracy(const ForEachLowerBoundParams& params, int probes,
                     uint64_t seed) {
  Rng rng(seed);
  return RunForEachTrial(
             params, probes, rng,
             [](const DirectedGraph& g) { return ExactCutOracle(g); })
      .accuracy();
}

double NoisyAccuracy(const ForEachLowerBoundParams& params, int probes,
                     double relative_error, uint64_t seed) {
  Rng rng(seed);
  Rng noise_rng(seed + 1);
  auto factory = [&noise_rng, relative_error](const DirectedGraph& g) {
    return MaximalNoiseCutOracle(g, relative_error, noise_rng);
  };
  return RunForEachTrial(params, probes, rng, factory).accuracy();
}

void TableA() {
  PrintBanner("T1.1/A",
              "Section 3 construction: encodable bits vs n*sqrt(beta)/eps");
  PrintRow({"1/eps", "sqrt(beta)", "layers", "n", "bits", "n*sqB/eps",
            "bits/formula", "acc(exact)"});
  PrintRule(8);
  struct Config {
    int inv_eps;
    int sqrt_beta;
    int layers;
  };
  const std::vector<Config> configs = {{4, 1, 2},  {4, 2, 2}, {8, 1, 2},
                                       {8, 2, 2},  {8, 2, 4}, {16, 2, 2},
                                       {16, 4, 2}, {16, 2, 6}};
  for (const Config& config : configs) {
    ForEachLowerBoundParams params;
    params.inv_epsilon = config.inv_eps;
    params.sqrt_beta = config.sqrt_beta;
    params.num_layers = config.layers;
    const double formula = params.info_formula();
    const double accuracy = ExactAccuracy(params, 120, 7 + config.inv_eps);
    PrintRow({I(config.inv_eps), I(config.sqrt_beta), I(config.layers),
              I(params.num_vertices()), I(params.total_bits()), E(formula),
              F(params.total_bits() / formula, 3), F(accuracy, 3)});
  }
  std::printf(
      "(paper: Theta(n*sqrt(beta)/eps) recoverable bits; the ratio column is\n"
      " the (1-eps)^2*(l-1)/l slack of the finite construction, constant in n)\n");
}

void TableB() {
  PrintBanner("T1.1/B",
              "Decode accuracy vs oracle error (threshold ~ eps, collapse "
              "above)");
  const std::vector<double> errors = {0.001, 0.003, 0.01, 0.03, 0.1, 0.3};
  std::vector<std::string> header = {"1/eps", "eps"};
  for (double err : errors) header.push_back("d=" + E(err));
  PrintRow(header, 11);
  PrintRule(header.size(), 11);
  for (int inv_eps : {4, 8, 16}) {
    ForEachLowerBoundParams params;
    params.inv_epsilon = inv_eps;
    params.sqrt_beta = 2;
    params.num_layers = 2;
    std::vector<std::string> row = {I(inv_eps), F(1.0 / inv_eps, 4)};
    for (double err : errors) {
      row.push_back(F(NoisyAccuracy(params, 120, err, 99 + inv_eps), 2));
    }
    PrintRow(row, 11);
  }
  std::printf(
      "(paper: decoding succeeds at error c2*eps/ln(1/eps); the 0.9->0.5\n"
      " crossover column shifts right as eps grows, matching the eps scaling)\n");

  // B2: locate the threshold on a fine grid and fit its scaling in eps.
  std::printf("\nmeasured decode threshold delta* (largest error with "
              "accuracy >= 0.9):\n");
  std::vector<double> epsilons, thresholds;
  for (int inv_eps : {4, 8, 16}) {
    ForEachLowerBoundParams params;
    params.inv_epsilon = inv_eps;
    params.sqrt_beta = 2;
    params.num_layers = 2;
    double threshold = 0;
    for (double delta = 0.002; delta < 0.3; delta *= 1.4) {
      if (NoisyAccuracy(params, 80, delta, 555 + inv_eps) >= 0.9) {
        threshold = delta;
      }
    }
    if (threshold > 0) {
      epsilons.push_back(1.0 / inv_eps);
      thresholds.push_back(threshold);
      std::printf(
          "  eps=%-8.4f delta*=%-9.4f delta*/eps=%-7.3f "
          "delta*ln(1/eps)/eps=%.3f\n",
          1.0 / inv_eps, threshold, threshold * inv_eps,
          threshold * inv_eps * std::log(static_cast<double>(inv_eps)));
    }
  }
  if (epsilons.size() >= 2) {
    const LineFit fit = FitLogLog(epsilons, thresholds);
    std::printf(
        "  log-log slope of delta* vs eps: %.2f; the last column is the\n"
        "  constant c2 of the paper's exact threshold c2*eps/ln(1/eps)\n",
        fit.slope);
  }
}

void TableC() {
  PrintBanner("T1.1/C",
              "Figure 1 anatomy of the 4 decode queries (1/eps=8, sqrt(beta)=2)");
  ForEachLowerBoundParams params;
  params.inv_epsilon = 8;
  params.sqrt_beta = 2;
  params.num_layers = 2;
  Rng rng(3);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = ForEachEncoder(params).Encode(s);
  const ForEachDecoder decoder(params);
  const auto plan = decoder.PlanQueries(42);
  PrintRow({"query", "cut value", "backward(fixed)", "forward=w(A,B)",
            "|S|"});
  PrintRule(5);
  for (int q = 0; q < 4; ++q) {
    const double cut =
        encoding.graph.CutWeight(plan.cut_sides[static_cast<size_t>(q)]);
    const double fixed = plan.fixed_weights[static_cast<size_t>(q)];
    PrintRow({I(q), F(cut, 2), F(fixed, 2), F(cut - fixed, 2),
              I(SetSize(plan.cut_sides[static_cast<size_t>(q)]))});
  }
  std::printf(
      "(paper: forward part Theta(log(1/eps)/eps^2), backward part\n"
      " Theta(1/eps^2) = (k-1/(2eps))^2/beta; signal <w,M_t> = z_t/eps)\n");
}

void TableD() {
  PrintBanner("T1.1/D", "Median-boost ablation (footnote 2) at borderline noise");
  ForEachLowerBoundParams params;
  params.inv_epsilon = 8;
  params.sqrt_beta = 2;
  params.num_layers = 2;
  const double noise = 0.06;  // past the decode threshold for 1/eps = 8
  PrintRow({"boost r", "accuracy"});
  PrintRule(2);
  for (int r : {1, 3, 7}) {
    // Median over r independent uniformly-noisy estimates per query
    // (footnote 2: run the sketch/recovery r times, take the median).
    Rng rng(1234);
    Rng noise_rng(77);
    auto factory = [&noise_rng, noise, r](const DirectedGraph& g) {
      return CutOracle([&g, &noise_rng, noise, r](const VertexSet& side) {
        std::vector<double> estimates;
        for (int i = 0; i < r; ++i) {
          const double factor =
              1 + noise * (2 * noise_rng.UniformDouble() - 1);
          estimates.push_back(g.CutWeight(side) * factor);
        }
        std::sort(estimates.begin(), estimates.end());
        return estimates[static_cast<size_t>(r / 2)];
      });
    };
    const double accuracy =
        RunForEachTrial(params, 150, rng, factory).accuracy();
    PrintRow({I(r), F(accuracy, 3)});
  }
  std::printf("(independent repetitions + median sharpen per-query success)\n");
}

void TableE(int threads) {
  PrintBanner("T1.1/E",
              "Seed-deterministic trial parallelism (RunForEachTrials)");
  ForEachLowerBoundParams params;
  params.inv_epsilon = 8;
  params.sqrt_beta = 2;
  params.num_layers = 2;
  const SeededCutOracleFactory factory = [](const DirectedGraph& g,
                                            Rng& rng) -> CutOracle {
    return MaximalNoiseCutOracle(g, 0.01, rng);
  };
  constexpr int kTrials = 8;
  constexpr int kProbes = 40;
  constexpr uint64_t kSeed = 2024;
  const auto t0 = std::chrono::steady_clock::now();
  const ForEachTrialResult serial =
      RunForEachTrials(params, kTrials, kProbes, kSeed, factory, 1);
  const auto t1 = std::chrono::steady_clock::now();
  const ForEachTrialResult parallel =
      RunForEachTrials(params, kTrials, kProbes, kSeed, factory, threads);
  const auto t2 = std::chrono::steady_clock::now();
  const double ms_serial =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double ms_parallel =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  PrintRow({"threads", "correct", "probes", "time(ms)", "speedup"});
  PrintRule(5);
  PrintRow({I(1), I(serial.correct), I(serial.probes), F(ms_serial, 1),
            F(1.0, 2)});
  PrintRow({I(threads), I(parallel.correct), I(parallel.probes),
            F(ms_parallel, 1), F(ms_serial / ms_parallel, 2)});
  std::printf("bit-identical to serial: %s\n",
              serial.correct == parallel.correct &&
                      serial.probes == parallel.probes
                  ? "yes"
                  : "NO (BUG)");
}

void BM_ForEachEncode(benchmark::State& state) {
  ForEachLowerBoundParams params;
  params.inv_epsilon = static_cast<int>(state.range(0));
  params.sqrt_beta = 2;
  params.num_layers = 2;
  Rng rng(1);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const ForEachEncoder encoder(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(s));
  }
  state.counters["bits"] = static_cast<double>(params.total_bits());
}
BENCHMARK(BM_ForEachEncode)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ForEachDecodeBit(benchmark::State& state) {
  ForEachLowerBoundParams params;
  params.inv_epsilon = static_cast<int>(state.range(0));
  params.sqrt_beta = 2;
  params.num_layers = 2;
  Rng rng(2);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = ForEachEncoder(params).Encode(s);
  const ForEachDecoder decoder(params);
  const CutOracle oracle = ExactCutOracle(encoding.graph);
  int64_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.DecodeBit(q, oracle));
    q = (q + 1) % params.total_bits();
  }
}
BENCHMARK(BM_ForEachDecodeBit)->Arg(4)->Arg(8)->Arg(16);

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path = dcs::bench::ConsumeOutFlag(
      &argc, argv, "BENCH_foreach_lowerbound.json");
  const int threads = dcs::bench::ConsumeThreadsFlag(&argc, argv);
  dcs::TableA();
  dcs::TableB();
  dcs::TableC();
  dcs::TableD();
  dcs::TableE(threads);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dcs::bench::WriteBenchJson(out_path, dcs::JsonValue::MakeObject());
  return 0;
}
