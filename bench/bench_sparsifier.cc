// Experiment SPARS — substrate validation: Benczúr–Karger for-all
// sparsifiers ([BK96], the upper bound Theorem 1.2 is tight against in the
// undirected case) and the simple for-each sampler.
//
// Tables produced:
//   A: sparsifier edge counts vs the n·ln(n)/ε² law and worst cut error
//      over sampled cuts.
//   B: for-each sampler size (∝ n/ε) and per-cut error distribution.
//   C: ablation — strength-based importance sampling vs uniform sampling
//      at matched expected size (uniform destroys small cuts).
//   F: the directed-backend bake-off — zoo family × β × ε × registered
//      backend, reporting the size/accuracy/latency frontier. Every row
//      lands in BENCH_sparsifier.json with a within_epsilon flag the perf
//      gate (scripts/check_perf_regression.py) demands be true.
//   G: the cut-balance sketch's quantized-imbalance bits vs β — the
//      Θ(n·log β) growth the paper's lower bound says is unavoidable.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/zoo.h"
#include "mincut/nagamochi_ibaraki.h"
#include "mincut/stoer_wagner.h"
#include "sketch/backend_registry.h"
#include "sketch/cut_balance_sparsifier.h"
#include "sketch/sampled_sketches.h"
#include "spectral/laplacian.h"
#include "json_writer.h"
#include "table.h"
#include "util/stats.h"

namespace dcs {

using bench::E;
using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

// Worst relative error over singleton cuts plus `samples` random cuts.
double WorstSampledCutError(const UndirectedGraph& g,
                            const UndirectedCutSketch& sketch, int samples,
                            Rng& rng) {
  const int n = g.num_vertices();
  if (n <= 0) return 0;
  double worst = 0;
  auto probe = [&](const VertexSet& side) {
    const double exact = g.CutWeight(side);
    if (exact <= 0) return;
    worst = std::max(worst,
                     std::abs(sketch.EstimateCut(side) - exact) / exact);
  };
  for (int v = 0; v < n; ++v) probe(MakeVertexSet(n, {v}));
  VertexSet side(static_cast<size_t>(n));
  for (int s = 0; s < samples; ++s) {
    for (auto& b : side) b = static_cast<uint8_t>(rng.Next() & 1);
    if (IsProperCutSide(side)) probe(side);
  }
  return worst;
}

void TableA() {
  PrintBanner("SPARS/A",
              "Benczur-Karger sparsifier: edges vs n*ln(n)/eps^2, worst cut "
              "error");
  PrintRow({"n", "eps", "m", "kept", "n ln n/e^2", "kept/formula",
            "worst err", "err/eps"});
  PrintRule(8);
  for (int n : {64, 128, 256}) {
    for (double eps : {0.4, 0.2}) {
      const UndirectedGraph g = CompleteGraph(n, 1.0);
      Rng rng(static_cast<uint64_t>(n * 100 + eps * 10));
      const BenczurKargerSparsifier sketch(g, eps, rng);
      Rng cut_rng(7);
      const double err = WorstSampledCutError(g, sketch, 300, cut_rng);
      const double formula = n * std::log(n) / (eps * eps);
      PrintRow({I(n), F(eps, 2), I(g.num_edges()),
                I(sketch.sparsifier().num_edges()), F(formula, 0),
                F(sketch.sparsifier().num_edges() / formula, 2), F(err, 3),
                F(err / eps, 2)});
    }
  }
  std::printf(
      "(paper/BK96: O(n log n/eps^2) edges with all cuts within (1+/-eps);\n"
      " kept/formula bounded, err/eps bounded by a small constant)\n");
}

void TableB() {
  PrintBanner("SPARS/B", "For-each sampler: size ~ n/eps, per-cut error");
  PrintRow({"n", "eps", "kept", "c*n/eps", "mean err", "p95 err"});
  PrintRule(6);
  for (int n : {96, 192}) {
    for (double eps : {0.4, 0.2, 0.1}) {
      const UndirectedGraph g = CompleteGraph(n, 1.0);
      const VertexSet side = MakeVertexSet(n, {0, 3, 5, 7, 11, 13});
      const double exact = g.CutWeight(side);
      std::vector<double> errors;
      int64_t kept = 0;
      const int builds = 25;
      for (int b = 0; b < builds; ++b) {
        Rng rng(static_cast<uint64_t>(n + b * 1000 + eps * 10));
        const ForEachCutSketch sketch(g, eps, rng);
        kept += sketch.sample().num_edges() / builds;
        errors.push_back(std::abs(sketch.EstimateCut(side) - exact) / exact);
      }
      PrintRow({I(n), F(eps, 2), I(kept), F(2.0 * n / eps, 0),
                F(Mean(errors), 3), F(Percentile(errors, 95), 3)});
    }
  }
  std::printf(
      "(the simple sampler's per-cut error scales like sqrt(eps) at size\n"
      " n/eps — the documented gap to [ACK+16]'s optimal eps at the same\n"
      " size; see DESIGN.md substitutions)\n");
}

void TableC() {
  PrintBanner("SPARS/C",
              "Ablation: strength-based vs uniform sampling at matched size "
              "(dumbbell, min cut 3)");
  const UndirectedGraph g = DumbbellGraph(48, 3);
  const double exact_mincut = StoerWagnerMinCut(g).value;
  PrintRow({"sampler", "kept", "mincut est", "exact", "bridge preserved"});
  PrintRule(5);
  // Strength-based: bridges have strength ~1 → always kept.
  Rng rng1(1);
  const UndirectedGraph strength_sample =
      ImportanceSampleByStrength(g, 6.0, rng1);
  const double strength_mincut = StoerWagnerMinCut(strength_sample).value;
  // Uniform: same expected edge count, probability m_kept/m for every edge.
  const double target_p =
      static_cast<double>(strength_sample.num_edges()) /
      static_cast<double>(g.num_edges());
  Rng rng2(2);
  UndirectedGraph uniform_sample(g.num_vertices());
  for (const Edge& e : g.edges()) {
    if (rng2.Bernoulli(target_p)) {
      uniform_sample.AddEdge(e.src, e.dst, e.weight / target_p);
    }
  }
  const double uniform_mincut = StoerWagnerMinCut(uniform_sample).value;
  PrintRow({"strength", I(strength_sample.num_edges()),
            F(strength_mincut, 2), F(exact_mincut, 2),
            strength_mincut > 0 ? "yes" : "NO"});
  PrintRow({"uniform", I(uniform_sample.num_edges()), F(uniform_mincut, 2),
            F(exact_mincut, 2), uniform_mincut > 0 ? "yes" : "NO"});
  std::printf(
      "(uniform sampling at the same budget misses or distorts the 3-edge\n"
      " bridge cut; strength-based sampling keeps weak edges surely)\n");
}

void TableD() {
  PrintBanner("SPARS/D",
              "Estimator ablation: crossing-edge vs degree-complement "
              "for-each sketches");
  // Same budget, two cuts of equal value 8: one around a dense block
  // (large internal weight) and one around a sparse tail (none).
  const int n = 24;
  UndirectedGraph g(n);
  for (int u = 0; u < 16; ++u) {
    for (int v = u + 1; v < 16; ++v) g.AddEdge(u, v, 1.0);
  }
  for (int v = 16; v < n; ++v) g.AddEdge(0, v, 1.0);
  VertexSet dense_side(static_cast<size_t>(n), 0);
  for (int v = 0; v < 16; ++v) dense_side[static_cast<size_t>(v)] = 1;
  const VertexSet sparse_side = ComplementSet(dense_side);
  PrintRow({"estimator", "cut", "mean |err|", "p95 |err|"});
  PrintRule(4);
  for (const bool use_degree : {false, true}) {
    for (const bool dense : {true, false}) {
      const VertexSet& side = dense ? dense_side : sparse_side;
      std::vector<double> errors;
      for (uint64_t seed = 0; seed < 60; ++seed) {
        Rng rng(seed + 500);
        double estimate;
        if (use_degree) {
          const DegreeComplementSketch sketch(g, 0.4, rng);
          estimate = sketch.EstimateCut(side);
        } else {
          const ForEachCutSketch sketch(g, 0.4, rng);
          estimate = sketch.EstimateCut(side);
        }
        errors.push_back(std::abs(estimate - 8.0));
      }
      PrintRow({use_degree ? "degree-complement" : "crossing-edge",
                dense ? "dense side" : "sparse side", F(Mean(errors), 3),
                F(Percentile(errors, 95), 3)});
    }
  }
  std::printf(
      "(the degree-complement identity cut(S) = deg(S) - 2*w(S,S) is "
      "exact\n when S has no internal weight but noisy around dense "
      "blocks; the\n crossing-edge estimator's error tracks the cut value "
      "instead)\n");
}

void TableE() {
  PrintBanner("SPARS/E",
              "Sampler ablation: NI-strength vs effective-resistance "
              "(Spielman-Srivastava) rates");
  PrintRow({"graph", "sampler", "kept", "worst err (sampled cuts)"});
  PrintRule(4);
  struct Workload {
    const char* name;
    UndirectedGraph graph;
  };
  Rng gen_rng(1);
  std::vector<Workload> workloads;
  workloads.push_back({"K_80", CompleteGraph(80, 1.0)});
  workloads.push_back({"dumbbell", DumbbellGraph(40, 2)});
  for (auto& workload : workloads) {
    // Matched expected sizes: tune the resistance rate first, then feed the
    // strength sampler the factor giving a similar count.
    Rng r1(11);
    const UndirectedGraph spectral =
        SpectralSparsify(workload.graph, 0.5, r1, 0.5);
    Rng r2(12);
    const UndirectedGraph strength = ImportanceSampleByStrength(
        workload.graph,
        0.5 * std::log(static_cast<double>(workload.graph.num_vertices())) /
            0.25,
        r2);
    for (const auto& [name, sample] :
         {std::pair<const char*, const UndirectedGraph*>{"resistance",
                                                         &spectral},
          {"strength", &strength}}) {
      double worst = 0;
      Rng cut_rng(13);
      for (int trial = 0; trial < 200; ++trial) {
        VertexSet side(
            static_cast<size_t>(workload.graph.num_vertices()));
        for (auto& b : side) b = static_cast<uint8_t>(cut_rng.Next() & 1);
        if (!IsProperCutSide(side)) continue;
        const double exact = workload.graph.CutWeight(side);
        if (exact <= 0) continue;
        worst = std::max(
            worst, std::abs(sample->CutWeight(side) - exact) / exact);
      }
      PrintRow({workload.name, name, I(sample->num_edges()), F(worst, 3)});
    }
  }
  std::printf(
      "(both importance measures preserve cuts at comparable budgets;\n"
      " resistances additionally certify spectral closeness [SS11] at the\n"
      " cost of a Laplacian solve instead of forest peeling)\n");
}

// ---- SPARS/F: the directed-backend frontier (the bake-off) ----

struct FrontierRow {
  std::string family;
  std::string backend;
  double beta = 1;
  double epsilon = 0;
  int64_t size_bits = 0;
  double max_rel_error = 0;
  double advertised_error = 0;
  bool within_epsilon = false;
  double build_ms = 0;
  double query_ns = 0;
};

// Family × β × ε × backend at a fixed zoo size. Error is the worst
// relative deviation from the exact cut over all singletons, a spread of
// random proper sides, and the planted side where the family has one.
std::vector<FrontierRow> RunFrontier() {
  constexpr int kZooN = 40;
  std::vector<FrontierRow> rows;
  for (const ZooFamily family : AllZooFamilies()) {
    for (const double beta : {1.0, 4.0, 16.0}) {
      for (const double epsilon : {0.2, 0.4}) {
        ZooOptions zoo_options;
        zoo_options.n = kZooN;
        zoo_options.beta = beta;
        zoo_options.seed = 101;
        const ZooInstance instance = MakeZooInstance(family, zoo_options);
        const int n = instance.graph.num_vertices();
        std::vector<VertexSet> sides;
        for (int v = 0; v < n; ++v) sides.push_back(MakeVertexSet(n, {v}));
        Rng side_rng(103);
        for (int probe = 0; probe < 16; ++probe) {
          VertexSet side(static_cast<size_t>(n), 0);
          for (auto& b : side) b = static_cast<uint8_t>(side_rng.Next() & 1);
          if (!IsProperCutSide(side)) side[0] ^= 1;
          sides.push_back(std::move(side));
        }
        if (instance.planted_side.has_value()) {
          sides.push_back(*instance.planted_side);
        }
        std::vector<double> exact;
        for (const VertexSet& side : sides) {
          exact.push_back(instance.graph.CutWeight(side));
        }
        for (const BackendInfo& backend : RegisteredBackends()) {
          BackendOptions options;
          options.epsilon = epsilon;
          options.beta = beta;
          options.seed = 107;
          options.median_boost = 5;
          const auto build_start = std::chrono::steady_clock::now();
          auto sketch =
              BuildBackendSketch(backend.name, instance.graph, options);
          const double build_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - build_start)
                  .count();
          if (!sketch.ok()) continue;  // options valid: never happens
          FrontierRow row;
          row.family = ZooFamilyName(family);
          row.backend = backend.name;
          row.beta = beta;
          row.epsilon = epsilon;
          row.size_bits = (*sketch)->SizeInBits();
          row.advertised_error = BackendAdvertisedError(backend.name, options);
          row.build_ms = build_ms;
          const auto query_start = std::chrono::steady_clock::now();
          for (size_t i = 0; i < sides.size(); ++i) {
            const double estimate = (*sketch)->EstimateCut(sides[i]);
            if (exact[i] > 0) {
              row.max_rel_error =
                  std::max(row.max_rel_error,
                           std::abs(estimate - exact[i]) / exact[i]);
            }
          }
          row.query_ns = std::chrono::duration<double, std::nano>(
                             std::chrono::steady_clock::now() - query_start)
                             .count() /
                         static_cast<double>(sides.size());
          row.within_epsilon =
              row.max_rel_error <= row.advertised_error + 1e-9;
          rows.push_back(std::move(row));
        }
      }
    }
  }
  return rows;
}

void TableF(const std::vector<FrontierRow>& rows) {
  PrintBanner("SPARS/F",
              "Directed backend bake-off: worst error / bits over the "
              "beta x eps sweep (zoo n=40)");
  PrintRow({"family", "backend", "worst err", "worst adv", "max bits",
            "within eps"});
  PrintRule(6);
  for (const ZooFamily family : AllZooFamilies()) {
    for (const BackendInfo& backend : RegisteredBackends()) {
      double worst_err = 0;
      double worst_adv = 0;
      int64_t max_bits = 0;
      bool within = true;
      for (const FrontierRow& row : rows) {
        if (row.family != ZooFamilyName(family) ||
            row.backend != backend.name) {
          continue;
        }
        worst_err = std::max(worst_err, row.max_rel_error);
        worst_adv = std::max(worst_adv, row.advertised_error);
        max_bits = std::max(max_bits, row.size_bits);
        within = within && row.within_epsilon;
      }
      PrintRow({ZooFamilyName(family), backend.name.c_str(),
                F(worst_err, 4), F(worst_adv, 4), I(max_bits),
                within ? "yes" : "NO"});
    }
  }
  std::printf(
      "(every backend must stay within the error bound it advertises for\n"
      " its options — the same contract the differential tests assert; the\n"
      " perf gate fails if any within-eps flag in the JSON is false)\n");
}

struct ImbalancePoint {
  double beta = 1;
  int64_t bits = 0;
};

// SPARS/G: quantized-imbalance bits vs β at fixed family/n/ε/seed.
std::vector<ImbalancePoint> RunImbalanceSweep(bool* grows) {
  constexpr int kN = 64;
  std::vector<ImbalancePoint> points;
  for (const double beta : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    ZooOptions options;
    options.n = kN;
    options.beta = beta;
    options.seed = 109;
    const ZooInstance instance =
        MakeZooInstance(ZooFamily::kExpander, options);
    Rng rng(113);
    const CutBalanceSparsifier sketch(instance.graph, 0.25, beta, rng);
    points.push_back({beta, sketch.imbalance_bits()});
  }
  *grows = true;
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    *grows = *grows && points[i + 1].bits > points[i].bits;
  }
  for (const ImbalancePoint& point : points) {
    *grows = *grows && static_cast<double>(point.bits) >=
                           0.5 * kN * std::log2(point.beta);
  }
  return points;
}

void TableG(const std::vector<ImbalancePoint>& points, bool grows) {
  PrintBanner("SPARS/G",
              "Cut-balance imbalance storage vs beta (expander n=64, "
              "eps=0.25)");
  PrintRow({"beta", "imbalance bits", "bits / (n log2 beta)"});
  PrintRule(3);
  for (const ImbalancePoint& point : points) {
    PrintRow({F(point.beta, 0), I(point.bits),
              F(static_cast<double>(point.bits) /
                    (64 * std::log2(point.beta)), 2)});
  }
  std::printf("(grows with log beta: %s — the Theta(n log beta) term the\n"
              " paper's Omega(n log beta / eps^2) bound makes mandatory)\n",
              grows ? "yes" : "NO");
}

JsonValue FrontierJson(const std::vector<FrontierRow>& rows) {
  JsonValue array = JsonValue::MakeArray();
  for (const FrontierRow& row : rows) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("family", row.family);
    entry.Set("backend", row.backend);
    entry.Set("beta", row.beta);
    entry.Set("epsilon", row.epsilon);
    entry.Set("size_bits", row.size_bits);
    entry.Set("max_rel_error", row.max_rel_error);
    entry.Set("advertised_error", row.advertised_error);
    entry.Set("within_epsilon", row.within_epsilon);
    entry.Set("build_ms", row.build_ms);
    entry.Set("query_ns", row.query_ns);
    array.Append(std::move(entry));
  }
  return array;
}

void BM_NagamochiIbarakiStrengths(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const UndirectedGraph g = CompleteGraph(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NagamochiIbarakiStrengths(g));
  }
  state.counters["edges"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_NagamochiIbarakiStrengths)->Arg(64)->Arg(128)->Arg(256);

void BM_BuildBkSparsifier(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const UndirectedGraph g = CompleteGraph(n, 1.0);
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(BenczurKargerSparsifier(g, 0.3, rng));
  }
}
BENCHMARK(BM_BuildBkSparsifier)->Arg(64)->Arg(128);

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path = dcs::bench::ConsumeOutFlag(
      &argc, argv, "BENCH_sparsifier.json");
  dcs::TableA();
  dcs::TableB();
  dcs::TableC();
  dcs::TableD();
  dcs::TableE();
  const std::vector<dcs::FrontierRow> frontier = dcs::RunFrontier();
  dcs::TableF(frontier);
  bool imbalance_grows = false;
  const std::vector<dcs::ImbalancePoint> imbalance =
      dcs::RunImbalanceSweep(&imbalance_grows);
  dcs::TableG(imbalance, imbalance_grows);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dcs::JsonValue root = dcs::JsonValue::MakeObject();
  root.Set("frontier", dcs::FrontierJson(frontier));
  dcs::JsonValue imbalance_json = dcs::JsonValue::MakeArray();
  for (const dcs::ImbalancePoint& point : imbalance) {
    dcs::JsonValue entry = dcs::JsonValue::MakeObject();
    entry.Set("beta", point.beta);
    entry.Set("imbalance_bits", point.bits);
    imbalance_json.Append(std::move(entry));
  }
  root.Set("imbalance_bits_by_beta", std::move(imbalance_json));
  root.Set("imbalance_bits_grow_with_log_beta", imbalance_grows);
  dcs::bench::WriteBenchJson(out_path, std::move(root));
  return 0;
}
