// Experiment CUTQ — the cut-query fast path, measured against live
// reference implementations of the pre-optimization code paths.
//
// Three layers are measured head-to-head in one binary:
//   A: for-all enumerate-mode decode — O(m)-rescan-per-candidate (the old
//      std::prev_permutation path, reproduced via an oracle without
//      incremental sessions) vs revolving-door enumeration over
//      incremental O(deg) flips.
//   B: TensorSignMatrix::EncodeSigns — per-row vectors + column copies
//      (reference) vs the flat row-major 2-D FWHT.
//   C: seed-deterministic trial parallelism — RunForAllTrials wall time vs
//      thread count, with the bit-identical-to-serial check.
//
// Results are printed as tables and written to BENCH_cutquery.json
// (override with --out FILE). --threads N caps the thread sweep.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "json_writer.h"
#include "lowerbound/forall_encoding.h"
#include "table.h"
#include "util/hadamard.h"
#include "util/random.h"

namespace dcs {

using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

double MsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct EnumerateRecord {
  int k = 0;
  double subsets = 0;
  double ms_rescan = 0;
  double ms_incremental = 0;
  bool same_subset = false;
  double speedup() const {
    return ms_incremental > 0 ? ms_rescan / ms_incremental : 0;
  }
};

std::vector<EnumerateRecord> SectionEnumerate() {
  PrintBanner("CUTQ/A",
              "Enumerate-mode decode: O(m) rescan per candidate vs "
              "revolving-door incremental flips");
  PrintRow({"k", "subsets", "rescan(ms)", "incr(ms)", "speedup", "agree"});
  PrintRule(6);
  std::vector<EnumerateRecord> records;
  for (const int inv_eps_sq : {8, 12, 16}) {
    ForAllLowerBoundParams params;
    params.inv_epsilon_sq = inv_eps_sq;
    params.beta = 1;
    params.num_layers = 2;
    EnumerateRecord record;
    record.k = params.layer_size();
    record.subsets = 1;
    for (int i = 1; i <= record.k / 2; ++i) {
      record.subsets *= static_cast<double>(record.k - i + 1) / i;
    }
    Rng rng(91 + static_cast<uint64_t>(inv_eps_sq));
    GapHammingParams gh;
    gh.num_strings = static_cast<int>(params.total_strings());
    gh.string_length = params.inv_epsilon_sq;
    const GapHammingInstance instance = SampleGapHammingInstance(gh, rng);
    const DirectedGraph graph = ForAllEncoder(params).Encode(instance.s);
    const ForAllDecoder decoder(params);
    graph.BuildAdjacency();
    // The "before" oracle: identical values, but constructed from a bare
    // query function, so BeginSession falls back to a full CutWeight scan
    // per candidate — the seed's cost model.
    const CutOracle rescan_oracle =
        [&graph](const VertexSet& side) { return graph.CutWeight(side); };
    const CutOracle incremental_oracle = ExactCutOracle(graph);
    const auto mode = ForAllDecoder::SubsetSelection::kEnumerate;
    const int reps = inv_eps_sq <= 12 ? 20 : 5;
    VertexSet subset_rescan, subset_incremental;
    // Best-of-3 timing passes: the perf gate compares these numbers
    // across runs, and a single pass on a shared core is exposed to
    // scheduler steal that dwarfs the 15% threshold.
    constexpr int kPasses = 3;
    record.ms_rescan = std::numeric_limits<double>::infinity();
    record.ms_incremental = std::numeric_limits<double>::infinity();
    for (int pass = 0; pass < kPasses; ++pass) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < reps; ++rep) {
        subset_rescan = decoder.SelectBestSubset(instance.index, instance.t,
                                                 rescan_oracle, mode);
      }
      record.ms_rescan = std::min(record.ms_rescan, MsSince(t0) / reps);
      const auto t1 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < reps; ++rep) {
        subset_incremental = decoder.SelectBestSubset(
            instance.index, instance.t, incremental_oracle, mode);
      }
      record.ms_incremental =
          std::min(record.ms_incremental, MsSince(t1) / reps);
    }
    record.same_subset = subset_rescan == subset_incremental;
    PrintRow({I(record.k), F(record.subsets, 0), F(record.ms_rescan, 3),
              F(record.ms_incremental, 3), F(record.speedup(), 1),
              record.same_subset ? "yes" : "NO"});
    records.push_back(record);
  }
  std::printf(
      "(candidates are identical either way; the fast path replaces the\n"
      " per-candidate O(m) rescan with two O(deg) flips)\n");
  return records;
}

// The pre-optimization EncodeSigns: an N×N matrix of per-row vectors,
// row-wise FWHT, then an explicit copy-out/copy-back per column.
std::vector<int64_t> ReferenceEncodeSigns(const TensorSignMatrix& tensor,
                                          const std::vector<int8_t>& z) {
  const size_t n = static_cast<size_t>(tensor.block_size());
  std::vector<std::vector<int64_t>> matrix(n, std::vector<int64_t>(n, 0));
  for (int64_t t = 0; t < tensor.rows(); ++t) {
    const auto [i, j] = tensor.RowFactors(t);
    matrix[static_cast<size_t>(i)][static_cast<size_t>(j)] =
        z[static_cast<size_t>(t)];
  }
  for (size_t i = 0; i < n; ++i) {
    FastWalshHadamardTransform(matrix[i]);
  }
  std::vector<int64_t> column(n);
  for (size_t b = 0; b < n; ++b) {
    for (size_t a = 0; a < n; ++a) column[a] = matrix[a][b];
    FastWalshHadamardTransform(column);
    for (size_t a = 0; a < n; ++a) matrix[a][b] = column[a];
  }
  std::vector<int64_t> x(n * n);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) x[a * n + b] = matrix[a][b];
  }
  return x;
}

struct EncodeRecord {
  int log_size = 0;
  double ms_reference = 0;
  double ms_flat = 0;
  bool match = false;
  double speedup() const {
    return ms_flat > 0 ? ms_reference / ms_flat : 0;
  }
};

std::vector<EncodeRecord> SectionEncodeSigns() {
  PrintBanner("CUTQ/B",
              "EncodeSigns: per-row vectors + column copies vs flat "
              "row-major 2-D FWHT");
  PrintRow({"log N", "N", "ref(ms)", "flat(ms)", "speedup", "match"});
  PrintRule(6);
  std::vector<EncodeRecord> records;
  for (const int log_size : {5, 7, 9}) {
    const TensorSignMatrix tensor(log_size);
    Rng rng(17 + static_cast<uint64_t>(log_size));
    const std::vector<int8_t> z =
        rng.RandomSignString(static_cast<int>(tensor.rows()));
    EncodeRecord record;
    record.log_size = log_size;
    const int reps = log_size <= 7 ? 50 : 10;
    std::vector<int64_t> reference, flat;
    // Best-of-3 passes for gate stability (see SectionEnumerate).
    constexpr int kPasses = 3;
    record.ms_reference = std::numeric_limits<double>::infinity();
    record.ms_flat = std::numeric_limits<double>::infinity();
    for (int pass = 0; pass < kPasses; ++pass) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < reps; ++rep) {
        reference = ReferenceEncodeSigns(tensor, z);
      }
      record.ms_reference = std::min(record.ms_reference, MsSince(t0) / reps);
      const auto t1 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < reps; ++rep) {
        flat = tensor.EncodeSigns(z);
      }
      record.ms_flat = std::min(record.ms_flat, MsSince(t1) / reps);
    }
    record.match = reference == flat;
    PrintRow({I(log_size), I(1 << log_size), F(record.ms_reference, 3),
              F(record.ms_flat, 3), F(record.speedup(), 1),
              record.match ? "yes" : "NO"});
    records.push_back(record);
  }
  return records;
}

struct ThreadRecord {
  int threads = 0;
  double ms = 0;
  int64_t correct = 0;
};

struct ParallelismResult {
  int trials = 0;
  bool identical = true;
  std::vector<ThreadRecord> records;
};

ParallelismResult SectionParallelism(int max_threads) {
  PrintBanner("CUTQ/C",
              "Trial parallelism: RunForAllTrials wall time vs threads "
              "(seed-deterministic)");
  ForAllLowerBoundParams params;
  params.inv_epsilon_sq = 16;
  params.beta = 2;
  params.num_layers = 2;
  const SeededCutOracleFactory factory = [](const DirectedGraph& g,
                                            Rng& rng) -> CutOracle {
    return NoisyCutOracle(g, 0.01, rng);
  };
  ParallelismResult result;
  result.trials = 48;
  PrintRow({"threads", "correct", "time(ms)", "speedup"});
  PrintRule(4);
  double ms_serial = 0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    const auto t0 = std::chrono::steady_clock::now();
    const ForAllTrialResult batch =
        RunForAllTrials(params, result.trials, 4242, factory,
                        ForAllDecoder::SubsetSelection::kGreedy, threads);
    ThreadRecord record;
    record.threads = threads;
    record.ms = MsSince(t0);
    record.correct = batch.correct;
    if (threads == 1) ms_serial = record.ms;
    if (!result.records.empty() &&
        record.correct != result.records.front().correct) {
      result.identical = false;
    }
    PrintRow({I(threads), I(record.correct), F(record.ms, 1),
              F(record.ms > 0 ? ms_serial / record.ms : 0, 2)});
    result.records.push_back(record);
  }
  std::printf("results identical across thread counts: %s\n",
              result.identical ? "yes" : "NO (BUG)");
  return result;
}

void WriteJson(const std::string& path,
               const std::vector<EnumerateRecord>& enumerate_records,
               const std::vector<EncodeRecord>& encode_records,
               const ParallelismResult& parallelism) {
  JsonValue root = JsonValue::MakeObject();
  JsonValue enumerate_json = JsonValue::MakeArray();
  for (const EnumerateRecord& r : enumerate_records) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("k", r.k);
    entry.Set("subsets", r.subsets);
    entry.Set("ms_rescan", r.ms_rescan);
    entry.Set("ms_incremental", r.ms_incremental);
    entry.Set("speedup", r.speedup());
    entry.Set("same_subset", r.same_subset);
    enumerate_json.Append(std::move(entry));
  }
  root.Set("enumerate_decode", std::move(enumerate_json));
  JsonValue encode_json = JsonValue::MakeArray();
  for (const EncodeRecord& r : encode_records) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("log_size", r.log_size);
    entry.Set("ms_reference", r.ms_reference);
    entry.Set("ms_flat", r.ms_flat);
    entry.Set("speedup", r.speedup());
    entry.Set("match", r.match);
    encode_json.Append(std::move(entry));
  }
  root.Set("encode_signs", std::move(encode_json));
  JsonValue parallelism_json = JsonValue::MakeObject();
  parallelism_json.Set("trials", parallelism.trials);
  parallelism_json.Set("results_identical", parallelism.identical);
  JsonValue sweep = JsonValue::MakeArray();
  for (const ThreadRecord& r : parallelism.records) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("threads", r.threads);
    entry.Set("ms", r.ms);
    entry.Set("correct", r.correct);
    sweep.Append(std::move(entry));
  }
  parallelism_json.Set("sweep", std::move(sweep));
  root.Set("trial_parallelism", std::move(parallelism_json));
  bench::WriteBenchJson(path, std::move(root));
}

}  // namespace dcs

int main(int argc, char** argv) {
  int threads = dcs::bench::ConsumeThreadsFlag(&argc, argv);
  if (threads == 1) {
    const int hw = dcs::bench::HardwareConcurrencyOrOne();
    threads = hw > 1 ? (hw > 8 ? 8 : hw) : 2;
  }
  const std::string out_path =
      dcs::bench::ConsumeOutFlag(&argc, argv, "BENCH_cutquery.json");
  const auto enumerate_records = dcs::SectionEnumerate();
  const auto encode_records = dcs::SectionEncodeSigns();
  const auto parallelism = dcs::SectionParallelism(threads);
  dcs::WriteJson(out_path, enumerate_records, encode_records, parallelism);
  return 0;
}
