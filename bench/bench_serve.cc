// Experiment SERVE — the batched cut-query serving layer.
//
// Three sections:
//   A: AnswerBatch on a repeated-subset workload, cold cache vs warm cache
//      — the memoization win, with the bit-identity check (a warm answer
//      must equal the cold one exactly).
//   B: for-each decode through the service (DecodeForEachBits) cold vs
//      warm, checked bit-for-bit against the per-bit session path.
//   C: batch thread scaling on a seeded (never-cached) oracle — every
//      query computes, so the sweep measures sharded execution, with the
//      identical-across-thread-counts check.
//
// Results are printed as tables and written to BENCH_serve.json (override
// with --out FILE). --threads N caps the thread sweep.

#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "json_writer.h"
#include "lowerbound/foreach_encoding.h"
#include "serve/cut_query_service.h"
#include "serve/decoder_batch.h"
#include "serve/load_driver.h"
#include "table.h"
#include "util/random.h"

namespace dcs {

using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

double MsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct CacheRecord {
  int n = 0;
  int64_t edges = 0;
  int batch = 0;
  int distinct = 0;
  double ms_cold = 0;
  double ms_warm = 0;
  bool identical = false;
  double speedup() const { return ms_warm > 0 ? ms_cold / ms_warm : 0; }
};

std::vector<CacheRecord> SectionWarmVsCold() {
  PrintBanner("SERVE/A",
              "AnswerBatch on repeated subsets: cold cache vs warm cache");
  PrintRow({"n", "edges", "batch", "distinct", "cold(ms)", "warm(ms)",
            "speedup", "identical"});
  PrintRule(8);
  std::vector<CacheRecord> records;
  for (const int n : {128, 256, 512}) {
    Rng rng(101 + static_cast<uint64_t>(n));
    const DirectedGraph graph = RandomBalancedDigraph(n, 0.3, 2.0, rng);
    CacheRecord record;
    record.n = n;
    record.edges = graph.num_edges();
    record.distinct = 64;
    record.batch = 2048;

    // The cold baseline is a cache-disabled service: with the cache on,
    // even the first batch is mostly warm (2048 queries over 64 sides hit
    // within the batch), which would understate the memoization win.
    CutQueryServiceOptions no_cache;
    no_cache.enable_cache = false;
    CutQueryService cold_service(no_cache);
    CutQueryService warm_service;
    const auto cold_object = cold_service.RegisterGraph(graph);
    const auto warm_object = warm_service.RegisterGraph(graph);
    std::vector<VertexSet> sides;
    while (static_cast<int>(sides.size()) < record.distinct) {
      VertexSet side(static_cast<size_t>(n));
      for (auto& bit : side) bit = static_cast<uint8_t>(rng.Next() & 1);
      if (IsProperCutSide(side)) sides.push_back(std::move(side));
    }
    std::vector<CutQueryService::Query> cold_batch, warm_batch;
    for (int i = 0; i < record.batch; ++i) {
      const VertexSet& side = sides[static_cast<size_t>(i) % sides.size()];
      cold_batch.push_back({cold_object, side});
      warm_batch.push_back({warm_object, side});
    }

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<double> cold = cold_service.AnswerBatch(cold_batch);
    record.ms_cold = MsSince(t0);

    warm_service.AnswerBatch(warm_batch);  // prime the cache
    // Best-of-3 passes of 5 reps: the perf gate tracks ms_warm, and a
    // single pass on a shared core is exposed to scheduler steal.
    constexpr int kWarmReps = 5;
    constexpr int kPasses = 3;
    std::vector<double> warm;
    record.ms_warm = std::numeric_limits<double>::infinity();
    for (int pass = 0; pass < kPasses; ++pass) {
      const auto t1 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kWarmReps; ++rep) {
        warm = warm_service.AnswerBatch(warm_batch);
      }
      record.ms_warm = std::min(record.ms_warm, MsSince(t1) / kWarmReps);
    }
    record.identical = warm == cold;

    PrintRow({I(record.n), I(record.edges), I(record.batch),
              I(record.distinct), F(record.ms_cold, 3), F(record.ms_warm, 3),
              F(record.speedup(), 1), record.identical ? "yes" : "NO"});
    records.push_back(record);
  }
  std::printf(
      "(a cached answer is still a logical query — the cache changes how\n"
      " many queries reach the backend, never the count or the bits)\n");
  return records;
}

struct DecodeRecord {
  int n = 0;
  int64_t bits = 0;
  double ms_cold = 0;
  double ms_warm = 0;
  bool matches_sessions = false;
  double speedup() const { return ms_warm > 0 ? ms_cold / ms_warm : 0; }
};

DecodeRecord SectionForEachDecode() {
  PrintBanner("SERVE/B",
              "For-each decode through the service: one batched call per "
              "sweep, cold vs warm");
  ForEachLowerBoundParams params;
  params.inv_epsilon = 16;
  params.sqrt_beta = 2;
  params.num_layers = 2;
  Rng rng(77);
  const std::vector<int8_t> s =
      rng.RandomSignString(static_cast<int>(params.total_bits()));
  const auto encoding = ForEachEncoder(params).Encode(s);
  const ForEachDecoder decoder(params);

  DecodeRecord record;
  record.n = params.num_vertices();
  record.bits = params.total_bits();
  std::vector<int64_t> qs;
  for (int64_t q = 0; q < params.total_bits(); ++q) qs.push_back(q);

  CutQueryService service;
  const auto object = service.RegisterGraph(encoding.graph);
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<int8_t> cold =
      DecodeForEachBits(decoder, qs, service, object);
  record.ms_cold = MsSince(t0);
  // Best-of-3 for gate stability; warm decodes are cache hits, so every
  // pass returns the same bits.
  std::vector<int8_t> warm;
  record.ms_warm = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < 3; ++pass) {
    const auto t1 = std::chrono::steady_clock::now();
    warm = DecodeForEachBits(decoder, qs, service, object);
    record.ms_warm = std::min(record.ms_warm, MsSince(t1));
  }

  // Reference: the per-bit incremental-session path.
  const CutOracle oracle = ExactCutOracle(encoding.graph);
  record.matches_sessions = warm == cold;
  for (size_t i = 0; i < qs.size() && record.matches_sessions; ++i) {
    record.matches_sessions =
        cold[i] == decoder.DecodeBit(qs[static_cast<int64_t>(i)], oracle);
  }

  PrintRow({"n", "bits", "cold(ms)", "warm(ms)", "speedup", "match"});
  PrintRule(6);
  PrintRow({I(record.n), I(record.bits), F(record.ms_cold, 3),
            F(record.ms_warm, 3), F(record.speedup(), 1),
            record.matches_sessions ? "yes" : "NO"});
  return record;
}

struct ThreadRecord {
  int threads = 0;
  double ms = 0;
  bool ran = false;                 // false ⇒ skipped (oversubscribed)
  bool answers_identical = false;   // vs the threads=1 baseline
};

struct ScalingResult {
  int batch = 0;
  int hardware_concurrency = 0;
  bool identical = true;
  bool truncated = false;  // some sweep points exceeded the hardware
  std::vector<ThreadRecord> records;
};

ScalingResult SectionThreadScaling(int max_threads) {
  PrintBanner("SERVE/C",
              "Batch thread scaling on a seeded oracle (nothing cacheable; "
              "every query computes)");
  Rng rng(55);
  const DirectedGraph graph = RandomBalancedDigraph(256, 0.3, 2.0, rng);
  const SeededCutOracleFactory factory = [](const DirectedGraph& g,
                                            Rng& oracle_rng) -> CutOracle {
    return NoisyCutOracle(g, 0.01, oracle_rng);
  };
  ScalingResult result;
  result.batch = 4096;
  result.hardware_concurrency = bench::HardwareConcurrencyOrOne();

  PrintRow({"threads", "time(ms)", "speedup", "identical"});
  PrintRule(4);
  std::vector<double> serial_answers;
  double ms_serial = 0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    if (threads > result.hardware_concurrency) {
      // Oversubscribed points measure scheduler noise, not scaling; skip
      // them rather than record numbers a perf gate would trust.
      ThreadRecord skipped;
      skipped.threads = threads;
      result.truncated = true;
      result.records.push_back(skipped);
      PrintRow({I(threads), "skipped", "-", "-"});
      continue;
    }
    CutQueryServiceOptions options;
    options.num_threads = threads;
    CutQueryService service(options);
    const auto object = service.RegisterSeededOracle(graph, factory, 4242);
    Rng batch_rng(9);
    std::vector<CutQueryService::Query> batch;
    for (int i = 0; i < result.batch; ++i) {
      VertexSet side(256);
      do {
        for (auto& bit : side) {
          bit = static_cast<uint8_t>(batch_rng.Next() & 1);
        }
      } while (!IsProperCutSide(side));
      batch.push_back({object, std::move(side)});
    }
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<double> answers = service.AnswerBatch(batch);
    ThreadRecord record;
    record.threads = threads;
    record.ms = MsSince(t0);
    record.ran = true;
    if (threads == 1) {
      ms_serial = record.ms;
      serial_answers = answers;
      record.answers_identical = true;
    } else {
      record.answers_identical = answers == serial_answers;
      if (!record.answers_identical) result.identical = false;
    }
    PrintRow({I(threads), F(record.ms, 1),
              F(record.ms > 0 ? ms_serial / record.ms : 0, 2),
              record.answers_identical ? "yes" : "NO"});
    result.records.push_back(record);
  }
  std::printf("answers identical across thread counts: %s\n",
              result.identical ? "yes" : "NO (BUG)");
  if (result.truncated) {
    std::printf(
        "sweep truncated: hardware_concurrency=%d < max requested threads "
        "(oversubscribed points skipped)\n",
        result.hardware_concurrency);
  }
  return result;
}

struct ClusterRecord {
  double kill_rate = 0;
  bool ran = false;
  std::string error;
  ClusterLoadReport report;
};

std::vector<ClusterRecord> SectionClusterChaos() {
  PrintBanner("SERVE/D",
              "Multi-process cluster soak: 4 workers, R=2 replication, "
              "SIGKILL chaos, bit-identity gated");
  PrintRow({"kill%", "ok", "unavail", "exhaust", "kills", "respawn",
            "p50(us)", "p99(us)", "qps", "identical"});
  PrintRule(10);
  std::vector<ClusterRecord> records;
  for (const double kill_rate : {0.0, 0.05, 0.2}) {
    ClusterRecord record;
    record.kill_rate = kill_rate;
    char dir_template[] = "/tmp/dcs_bench_cluster_XXXXXX";
    char* socket_dir = ::mkdtemp(dir_template);
    if (socket_dir == nullptr) {
      record.error = "mkdtemp failed";
      records.push_back(std::move(record));
      continue;
    }
    ClusterLoadOptions options;
    options.server_binary = DCS_SERVER_PATH;
    options.socket_dir = socket_dir;
    options.num_workers = 4;
    options.replication = 2;
    options.num_client_threads = 2;
    // Enough batches that the run spans many kill ticks: at the observed
    // per-batch round trip this is a few hundred milliseconds of load, so
    // a 5 ms Bernoulli tick at 20% actually lands kills mid-traffic.
    options.batches_per_thread = 400;
    options.batch_size = 8;
    options.kill_rate = kill_rate;
    options.kill_interval_ms = 5;
    options.respawn_delay_ms = 5;
    options.num_vertices = 48;
    options.num_edges = 320;
    options.seed = 4242;
    const auto report = RunClusterLoad(options);
    for (int w = 0; w < options.num_workers; ++w) {
      ::unlink((options.socket_dir + "/worker" + std::to_string(w) + ".sock")
                   .c_str());
    }
    ::rmdir(socket_dir);
    if (!report.ok()) {
      record.error = report.status().ToString();
      std::printf("kill_rate %.2f: soak failed to run: %s\n", kill_rate,
                  record.error.c_str());
      records.push_back(std::move(record));
      continue;
    }
    record.ran = true;
    record.report = *report;
    PrintRow({F(kill_rate * 100, 0), I(report->batches_ok),
              I(report->batches_unavailable),
              I(report->batches_resource_exhausted), I(report->kills),
              I(report->respawns), I(report->latency_p50_us),
              I(report->latency_p99_us), F(report->qps, 0),
              report->answers_bit_identical() ? "yes" : "NO"});
    records.push_back(std::move(record));
  }
  std::printf(
      "(every completed answer is compared bit-for-bit against a\n"
      " single-process oracle; kills surface only as kUnavailable and\n"
      " backpressure only as kResourceExhausted)\n");
  return records;
}

void WriteJson(const std::string& path,
               const std::vector<CacheRecord>& cache_records,
               const DecodeRecord& decode_record,
               const ScalingResult& scaling,
               const std::vector<ClusterRecord>& cluster_records) {
  JsonValue root = JsonValue::MakeObject();
  JsonValue cache_json = JsonValue::MakeArray();
  for (const CacheRecord& r : cache_records) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("n", r.n);
    entry.Set("edges", r.edges);
    entry.Set("batch", r.batch);
    entry.Set("distinct_sides", r.distinct);
    entry.Set("ms_cold", r.ms_cold);
    entry.Set("ms_warm", r.ms_warm);
    entry.Set("speedup", r.speedup());
    entry.Set("identical", r.identical);
    cache_json.Append(std::move(entry));
  }
  root.Set("warm_vs_cold", std::move(cache_json));
  JsonValue decode_json = JsonValue::MakeObject();
  decode_json.Set("n", decode_record.n);
  decode_json.Set("bits", decode_record.bits);
  decode_json.Set("ms_cold", decode_record.ms_cold);
  decode_json.Set("ms_warm", decode_record.ms_warm);
  decode_json.Set("speedup", decode_record.speedup());
  decode_json.Set("matches_sessions", decode_record.matches_sessions);
  root.Set("foreach_decode", std::move(decode_json));
  JsonValue scaling_json = JsonValue::MakeObject();
  scaling_json.Set("batch", scaling.batch);
  scaling_json.Set("answers_identical", scaling.identical);
  scaling_json.Set("hardware_concurrency", scaling.hardware_concurrency);
  scaling_json.Set("truncated", scaling.truncated);
  JsonValue sweep = JsonValue::MakeArray();
  for (const ThreadRecord& r : scaling.records) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("threads", r.threads);
    entry.Set("ms", r.ms);
    entry.Set("ran", r.ran);
    entry.Set("answers_identical", r.answers_identical);
    sweep.Append(std::move(entry));
  }
  scaling_json.Set("sweep", std::move(sweep));
  root.Set("thread_scaling", std::move(scaling_json));
  JsonValue cluster_json = JsonValue::MakeArray();
  for (const ClusterRecord& r : cluster_records) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("kill_rate", r.kill_rate);
    entry.Set("ran", r.ran);
    if (!r.ran) {
      entry.Set("error", r.error);
      entry.Set("answers_bit_identical", false);
      cluster_json.Append(std::move(entry));
      continue;
    }
    entry.Set("batches_ok", r.report.batches_ok);
    entry.Set("batches_unavailable", r.report.batches_unavailable);
    entry.Set("batches_resource_exhausted",
              r.report.batches_resource_exhausted);
    entry.Set("batches_other_error", r.report.batches_other_error);
    entry.Set("wrong_bits", r.report.wrong_bits);
    entry.Set("answers_bit_identical", r.report.answers_bit_identical());
    entry.Set("kills", r.report.kills);
    entry.Set("respawns", r.report.respawns);
    entry.Set("p50_us", r.report.latency_p50_us);
    entry.Set("p99_us", r.report.latency_p99_us);
    entry.Set("qps", r.report.qps);
    cluster_json.Append(std::move(entry));
  }
  root.Set("cluster", std::move(cluster_json));
  bench::WriteBenchJson(path, std::move(root));
}

}  // namespace dcs

int main(int argc, char** argv) {
  int threads = dcs::bench::ConsumeThreadsFlag(&argc, argv);
  if (threads == 1) {
    // Default sweep ceiling: what the machine actually has, capped at 8.
    // On a single-core machine that is 1 — the section refuses to time
    // oversubscribed points, so requesting more would only print skips.
    const int hw = dcs::bench::HardwareConcurrencyOrOne();
    threads = hw > 8 ? 8 : hw;
  }
  const std::string out_path =
      dcs::bench::ConsumeOutFlag(&argc, argv, "BENCH_serve.json");
  const auto cache_records = dcs::SectionWarmVsCold();
  const auto decode_record = dcs::SectionForEachDecode();
  const auto scaling = dcs::SectionThreadScaling(threads);
  const auto cluster_records = dcs::SectionClusterChaos();
  dcs::WriteJson(out_path, cache_records, decode_record, scaling,
                 cluster_records);
  return 0;
}
