// Experiment UB-gap — the tightness tables of Section 1.1.
//
// Paper claims (upper bounds from [IT18, CCPS21], lower bounds Theorems
// 1.1/1.2): for β-balanced n-node graphs,
//     for-each:  Θ̃(n·√β/ε)   bits
//     for-all:   Θ̃(n·β/ε²)   bits
// This bench measures the serialized size of this library's sketch
// implementations against those formulas, and against the bit content of
// the matching lower-bound constructions. The library's simpler
// symmetrize-and-difference sketches pay a documented extra factor over
// the optimal constructions (see DESIGN.md); the gap column makes that
// visible instead of hiding it.
//
// Tables produced:
//   A: directed sketch sizes across (n, β, ε) with formula ratios.
//   B: sampled edges vs the 1/ε (for-each) and 1/ε² (for-all) rate
//      formulas on a uniform-strength multigraph.
//   C: lower-bound encodable bits vs upper-bound sketch size on the *same*
//      construction graphs (the sandwich LB <= info <= UB).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "lowerbound/foreach_encoding.h"
#include "mincut/nagamochi_ibaraki.h"
#include "sketch/directed_sketches.h"
#include "sketch/exact_sketch.h"
#include "sketch/serialization.h"
#include "json_writer.h"
#include "table.h"
#include "util/stats.h"

namespace dcs {

using bench::E;
using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

void TableA() {
  PrintBanner("UB/A", "Directed sketch sizes (bits) vs the paper's formulas");
  PrintRow({"n", "beta", "eps", "foreach", "forall", "dirsampler", "exact",
            "fe/(n sqB/e)", "fa/(n b/e^2)"},
           12);
  PrintRule(9, 12);
  for (int n : {64, 128}) {
    for (double beta : {1.0, 4.0}) {
      for (double eps : {0.3, 0.15}) {
        Rng gen_rng(static_cast<uint64_t>(n * beta * 100 * eps));
        const DirectedGraph g =
            RandomBalancedDigraph(n, 0.5, beta, gen_rng);
        Rng r1(1), r2(2), r3(3);
        const DirectedForEachSketch fe(g, eps, beta, r1);
        const DirectedForAllSketch fa(g, eps, beta, r2);
        const DirectedImportanceSamplerSketch ds(g, eps, beta, r3);
        const ExactDirectedSketch ex{DirectedGraph(g)};
        const double fe_formula = n * std::sqrt(beta) / eps;
        const double fa_formula = n * beta / (eps * eps);
        PrintRow({I(n), F(beta, 0), F(eps, 2), I(fe.SizeInBits()),
                  I(fa.SizeInBits()), I(ds.SizeInBits()), I(ex.SizeInBits()),
                  F(fe.SizeInBits() / fe_formula, 1),
                  F(fa.SizeInBits() / fa_formula, 1)},
                 12);
      }
    }
  }
  std::printf(
      "(ratios fold in the bits-per-edge constant and the documented\n"
      " extra sqrt(beta)/beta factor of the simple symmetrize+difference\n"
      " construction; they must stay bounded as n grows)\n");
}

void TableB() {
  // Strength-stratified sampling has inherent log(strength-range)
  // corrections — exactly the factors the paper's Õ(·) hides — so raw
  // fitted exponents sit below the ideal 1 and 2 at feasible sizes. The
  // sharp check is therefore measured sample size vs the rate formula
  // E[kept] = Σ_e min(1, f·w_e/λ_e) with f_foreach = c/ε ~ 1/ε and
  // f_forall = c·ln(n)/ε² ~ 1/ε², on a 2048-regular bidirected multigraph
  // (n = 512, beta = 1).
  PrintBanner("UB/B",
              "Sampled edges vs the 1/eps (foreach) and 1/eps^2 (forall) "
              "rate formulas, n=512");
  Rng gen_rng(5);
  const DirectedGraph g = BidirectedMatchingUnion(512, 2048, gen_rng);
  const UndirectedGraph symmetric = g.Symmetrized();
  const std::vector<double> strengths =
      NagamochiIbarakiStrengths(symmetric);
  auto predicted_kept = [&](double factor) {
    double total = 0;
    for (size_t i = 0; i < symmetric.edges().size(); ++i) {
      total += std::min(1.0, factor * symmetric.edges()[i].weight /
                                 strengths[i]);
    }
    return total;
  };
  PrintRow({"eps", "fe kept", "fe predicted", "fa kept", "fa predicted"});
  PrintRule(5);
  const double log_n = std::log(512.0);
  for (double eps : {0.5, 0.4, 0.3, 0.24}) {
    Rng r1(10), r2(11);
    const DirectedForEachSketch fe(g, eps, 1.0, r1);
    const DirectedForAllSketch fa(g, eps, 1.0, r2);
    // beta = 1 → symmetrization epsilon equals eps for both sketches.
    const double fe_factor = 2.0 / eps;
    const double fa_factor = 2.0 * log_n / (eps * eps);
    PrintRow({F(eps, 2), I(fe.symmetric_sketch().sample().num_edges()),
              F(predicted_kept(fe_factor), 0),
              I(fa.symmetric_sparsifier().sparsifier().num_edges()),
              F(predicted_kept(fa_factor), 0)});
  }
  std::printf(
      "(measured kept-edge counts match the rate formulas, i.e. the\n"
      " samplers realize exactly the Õ(n/eps) and Õ(n/eps^2) rates whose\n"
      " optimality Theorems 1.1/1.2 establish; raw log-log exponents are\n"
      " depressed by the harmonic strength-spectrum factor that the\n"
      " paper's Õ(·) absorbs)\n");
}

void TableC() {
  PrintBanner("UB/C",
              "Sandwich on the Section 3 construction graphs: LB bits <= "
              "exact sketch bits");
  PrintRow({"1/eps", "sqrt(beta)", "n", "LB bits", "exact bits",
            "exact/LB"});
  PrintRule(6);
  for (int inv_eps : {8, 16}) {
    for (int sqrt_beta : {1, 2}) {
      ForEachLowerBoundParams params;
      params.inv_epsilon = inv_eps;
      params.sqrt_beta = sqrt_beta;
      params.num_layers = 2;
      Rng rng(static_cast<uint64_t>(inv_eps * 10 + sqrt_beta));
      const std::vector<int8_t> s =
          rng.RandomSignString(static_cast<int>(params.total_bits()));
      const auto encoding = ForEachEncoder(params).Encode(s);
      const ExactDirectedSketch exact{DirectedGraph(encoding.graph)};
      PrintRow({I(inv_eps), I(sqrt_beta), I(params.num_vertices()),
                I(params.total_bits()), I(exact.SizeInBits()),
                F(static_cast<double>(exact.SizeInBits()) /
                      static_cast<double>(params.total_bits()),
                  1)});
    }
  }
  std::printf(
      "(any sketch that answers the decoder's queries on these graphs must\n"
      " store at least the LB bits column — the pigeonhole behind Thm 1.1)\n");
}

void TableD() {
  // The last parameter axis: beta at fixed (n, eps). The paper's optimal
  // constructions scale as sqrt(beta) (for-each) and beta (for-all); the
  // library's symmetrize+difference route pays beta and beta^2 via
  // eps_u = 2*eps/(1+beta) — the documented substitution, measured here
  // instead of hidden.
  PrintBanner("UB/D",
              "Size scaling in beta at n=256, eps=0.35 (paper-optimal "
              "exponents: 0.5 foreach / 1.0 forall)");
  PrintRow({"beta", "fe kept", "fa kept", "fe bits", "fa bits"});
  PrintRule(5);
  std::vector<double> betas, fe_sizes, fa_sizes;
  for (double beta : {1.0, 2.0, 4.0, 8.0}) {
    Rng gen_rng(static_cast<uint64_t>(beta * 10));
    const DirectedGraph g =
        BidirectedMatchingUnion(256, 1024, gen_rng, beta);
    Rng r1(20), r2(21);
    const DirectedForEachSketch fe(g, 0.35, beta, r1);
    const DirectedForAllSketch fa(g, 0.35, beta, r2);
    betas.push_back(beta);
    fe_sizes.push_back(
        static_cast<double>(fe.symmetric_sketch().sample().num_edges()));
    fa_sizes.push_back(static_cast<double>(
        fa.symmetric_sparsifier().sparsifier().num_edges()));
    PrintRow({F(beta, 0),
              I(fe.symmetric_sketch().sample().num_edges()),
              I(fa.symmetric_sparsifier().sparsifier().num_edges()),
              I(fe.SizeInBits()), I(fa.SizeInBits())});
  }
  const LineFit fe_fit = FitLogLog(betas, fe_sizes);
  const LineFit fa_fit = FitLogLog(betas, fa_sizes);
  std::printf(
      "fitted beta exponents: foreach %.2f, forall %.2f\n"
      "(the symmetrize+difference route's raw rate grows like beta — worse\n"
      " than the paper's optimal sqrt(beta) — but min(1, rate)-clamping\n"
      " against the strength spectrum compresses the measured exponent,\n"
      " and the for-all curve flattens entirely once sampling saturates\n"
      " at keep-all; see DESIGN.md substitutions)\n",
      fe_fit.slope, fa_fit.slope);
}

void BM_BuildDirectedForEach(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng gen_rng(1);
  const DirectedGraph g = RandomBalancedDigraph(n, 0.4, 4.0, gen_rng);
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(DirectedForEachSketch(g, 0.2, 4.0, rng));
  }
}
BENCHMARK(BM_BuildDirectedForEach)->Arg(64)->Arg(128);

void BM_BuildDirectedForAll(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng gen_rng(2);
  const DirectedGraph g = RandomBalancedDigraph(n, 0.4, 4.0, gen_rng);
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(DirectedForAllSketch(g, 0.2, 4.0, rng));
  }
}
BENCHMARK(BM_BuildDirectedForAll)->Arg(64)->Arg(128);

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path = dcs::bench::ConsumeOutFlag(
      &argc, argv, "BENCH_sketch_sizes.json");
  dcs::TableA();
  dcs::TableB();
  dcs::TableC();
  dcs::TableD();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dcs::bench::WriteBenchJson(out_path, dcs::JsonValue::MakeObject());
  return 0;
}
