// Console table helpers shared by the experiment benches. Each bench binary
// prints the experiment's table(s) — paper-claim vs measured — before
// running its google-benchmark timing section.

#ifndef DCS_BENCH_TABLE_H_
#define DCS_BENCH_TABLE_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace dcs::bench {

// Parses and strips "--threads N" / "--threads=N" from argv so the
// remaining arguments can go straight to benchmark::Initialize (which
// rejects flags it does not know). Returns 1 when absent.
inline int ConsumeThreadsFlag(int* argc, char** argv) {
  int threads = 1;
  int write = 1;
  for (int read = 1; read < *argc; ++read) {
    const std::string arg = argv[read];
    if (arg == "--threads" && read + 1 < *argc) {
      threads = std::atoi(argv[++read]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
    } else {
      argv[write++] = argv[read];
    }
  }
  *argc = write;
  return threads < 1 ? 1 : threads;
}

// Prints a banner for one experiment section.
inline void PrintBanner(const std::string& experiment_id,
                        const std::string& title) {
  std::printf("\n================================================================================\n");
  std::printf("[%s] %s\n", experiment_id.c_str(), title.c_str());
  std::printf("================================================================================\n");
}

// Fixed-width row printing: columns are pre-formatted strings.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline void PrintRule(size_t columns, int width = 14) {
  std::printf("%s\n", std::string(columns * static_cast<size_t>(width), '-')
                          .c_str());
}

// Shorthand formatters.
inline std::string F(double value, int precision = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

inline std::string I(int64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%lld",
                static_cast<long long>(value));
  return buffer;
}

inline std::string E(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3g", value);
  return buffer;
}

}  // namespace dcs::bench

#endif  // DCS_BENCH_TABLE_H_
