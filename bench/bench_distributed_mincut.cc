// Experiment DIST — the motivating application (Section 1): distributed
// min-cut from per-server sketches.
//
// Paper claim: each server ships a constant-accuracy for-all sketch plus a
// (1±ε) for-each sketch; the coordinator enumerates all O(1)-approximate
// min cuts from the former and re-evaluates them with the latter, giving
// communication linear in 1/ε for the accuracy-critical part — and
// Theorems 1.1/1.2 say this recipe is near-optimal.
//
// Workloads are high-multiplicity multigraphs (the regime where sampling
// genuinely compresses: per-server edge strengths must exceed the sampling
// rates) with a planted bridge cut, so candidate enumeration has a clean
// target.
//
// Tables produced:
//   A: accuracy and communication vs ε (for-each bits grow ~1/ε; the
//      constant-accuracy for-all bits do not grow as ε shrinks).
//   B: accuracy and communication vs number of servers.
//   C: sketch protocol vs naive ship-all-edges as density grows.

#include <benchmark/benchmark.h>

#include <cmath>

#include "distributed/distributed_mincut.h"
#include "mincut/cut_counting.h"
#include "graph/generators.h"
#include "mincut/stoer_wagner.h"
#include "json_writer.h"
#include "table.h"
#include "util/stats.h"

namespace dcs {

using bench::E;
using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

// Two well-connected blocks (unions of `block_degree` random matchings on
// `block_size` vertices each) joined by `bridges` unit edges: global min
// cut = bridges, and it is the unique O(1)-approximate minimum cut.
UndirectedGraph PlantedBridgeMultigraph(int block_size, int block_degree,
                                        int bridges, Rng& rng) {
  UndirectedGraph graph(2 * block_size);
  for (int block = 0; block < 2; ++block) {
    const UndirectedGraph part =
        UnionOfRandomMatchings(block_size, block_degree, rng);
    for (const Edge& e : part.edges()) {
      graph.AddEdge(e.src + block * block_size, e.dst + block * block_size,
                    1.0);
    }
  }
  for (int b = 0; b < bridges; ++b) {
    graph.AddEdge(b, block_size + b, 1.0);
  }
  return graph;
}

void TableA() {
  PrintBanner("DIST/A",
              "Accuracy & communication vs eps (planted bridge cut 8, "
              "n=96, 4 servers)");
  Rng gen_rng(1);
  const UndirectedGraph g = PlantedBridgeMultigraph(48, 192, 8, gen_rng);
  const double exact = StoerWagnerMinCut(g).value;
  PrintRow({"eps", "estimate", "exact", "rel err", "foreach bits",
            "forall bits"});
  PrintRule(6);
  std::vector<double> inv_eps, fe_bits;
  for (double eps : {0.4, 0.25, 0.15, 0.1}) {
    Rng rng(static_cast<uint64_t>(eps * 1000));
    DistributedMinCutOptions options;
    options.epsilon = eps;
    options.median_boost = 5;
    const DistributedMinCutPipeline pipeline(PartitionEdges(g, 4, rng),
                                             options, rng);
    const auto result = pipeline.Run(rng);
    inv_eps.push_back(1 / eps);
    fe_bits.push_back(static_cast<double>(result.foreach_bits));
    PrintRow({F(eps, 2), F(result.estimate, 2), F(exact, 2),
              F(std::abs(result.estimate - exact) / exact, 3),
              I(result.foreach_bits), I(result.forall_bits)});
  }
  const LineFit fit = FitLogLog(inv_eps, fe_bits);
  std::printf(
      "for-each bits vs 1/eps: fitted exponent %.2f (paper: 1.0 up to the\n"
      " strength-spectrum log factors inside Õ; the for-all bits stay flat\n"
      " because their accuracy is a constant independent of eps)\n",
      fit.slope);
}

void TableB() {
  PrintBanner("DIST/B",
              "Accuracy & communication vs number of servers (same planted "
              "instance, eps=0.2)");
  Rng gen_rng(2);
  const UndirectedGraph g = PlantedBridgeMultigraph(48, 192, 8, gen_rng);
  const double exact = StoerWagnerMinCut(g).value;
  PrintRow({"servers", "estimate", "exact", "total bits", "naive bits"});
  PrintRule(5);
  for (int servers : {2, 4, 8}) {
    Rng rng(static_cast<uint64_t>(servers));
    DistributedMinCutOptions options;
    options.epsilon = 0.2;
    options.median_boost = 5;
    const DistributedMinCutPipeline pipeline(
        PartitionEdges(g, servers, rng), options, rng);
    const auto result = pipeline.Run(rng);
    PrintRow({I(servers), F(result.estimate, 1), F(exact, 1),
              I(result.total_bits()), I(pipeline.NaiveShipAllBits())});
  }
  std::printf("(accuracy is server-count independent because cut values add\n"
              " across edge-disjoint servers; total bits grow with the\n"
              " number of uploads)\n");
}

void TableC() {
  PrintBanner("DIST/C",
              "Sketch protocol vs naive ship-all as density grows "
              "(n=96, eps=0.25, 4 servers)");
  PrintRow({"degree", "m", "sketch bits", "naive bits", "savings x",
            "rel err"});
  PrintRule(6);
  for (int degree : {512, 1024, 2048}) {
    Rng gen_rng(static_cast<uint64_t>(degree));
    const UndirectedGraph g = PlantedBridgeMultigraph(48, degree, 12,
                                                      gen_rng);
    const double exact = StoerWagnerMinCut(g).value;
    Rng rng(static_cast<uint64_t>(degree) + 7);
    DistributedMinCutOptions options;
    options.epsilon = 0.25;
    options.median_boost = 3;
    const DistributedMinCutPipeline pipeline(PartitionEdges(g, 4, rng),
                                             options, rng);
    const auto result = pipeline.Run(rng);
    PrintRow({I(degree), I(g.num_edges()), I(result.total_bits()),
              I(pipeline.NaiveShipAllBits()),
              F(static_cast<double>(pipeline.NaiveShipAllBits()) /
                    static_cast<double>(result.total_bits()),
                2),
              F(std::abs(result.estimate - exact) / exact, 3)});
  }
  std::printf("(the savings factor grows with multiplicity: sketch sizes\n"
              " depend on n and eps, not on m)\n");
}

void TableD() {
  PrintBanner("DIST/D",
              "Karger's cut-counting theorem and enumeration coverage "
              "(why scoring every candidate is affordable)");
  PrintRow({"graph", "n", "#cuts<=1.5min", "n^3 bound", "coverage"});
  PrintRule(5);
  struct Workload {
    const char* name;
    UndirectedGraph graph;
  };
  Rng gen_rng(1);
  std::vector<Workload> workloads;
  workloads.push_back({"cycle C_12", CycleGraph(12, 1.0)});
  workloads.push_back({"dumbbell", DumbbellGraph(7, 2)});
  workloads.push_back(
      {"G(14, .3)", RandomUndirectedGraph(14, 0.3, 1.0, 1.0, true, gen_rng)});
  for (const Workload& workload : workloads) {
    const CutCountResult truth =
        CountNearMinimumCutsExhaustive(workload.graph, 1.5);
    Rng rng(7);
    const double coverage =
        KargerEnumerationCoverage(workload.graph, 1.5, rng, 60);
    PrintRow({workload.name, I(workload.graph.num_vertices()),
              I(truth.cuts_within_alpha), F(truth.karger_bound, 0),
              F(coverage, 3)});
  }
  std::printf(
      "(Karger: at most n^{2a} cuts within a of the minimum — few "
      "enough\n for the coordinator to re-score every one with a for-each "
      "sketch;\n randomized enumeration finds essentially all of them)\n");
}

// Returns the rows as JSON for the "chaos" block of the bench output.
JsonValue TableE() {
  PrintBanner("DIST/E",
              "Lossy channel: fault-free vs 5% drop (n=96, eps=0.25, "
              "4 servers; same chaos seed, 64-round deadline)");
  Rng gen_rng(5);
  const UndirectedGraph g = PlantedBridgeMultigraph(48, 192, 8, gen_rng);
  PrintRow({"drop", "estimate", "sketch bits", "wire bits", "retrans bits",
            "overhead x"});
  PrintRule(6);
  JsonValue rows = JsonValue::MakeArray();
  for (double drop : {0.0, 0.05}) {
    Rng rng(11);
    DistributedMinCutOptions options;
    options.epsilon = 0.25;
    options.median_boost = 3;
    const DistributedMinCutPipeline pipeline(PartitionEdges(g, 4, rng),
                                             options, rng);
    ChannelOptions channel;
    channel.seed = 13;
    channel.drop_rate = drop;
    channel.max_rounds = 64;
    const auto result = pipeline.Run(rng, channel).value();
    PrintRow({F(drop, 2), F(result.estimate, 2), I(result.total_bits()),
              I(result.channel_wire_bits), I(result.retransmitted_bits),
              F(static_cast<double>(result.channel_wire_bits) /
                    static_cast<double>(result.total_bits()),
                3)});
    JsonValue row = JsonValue::MakeObject();
    row.Set("drop_rate", drop);
    row.Set("estimate", result.estimate);
    row.Set("sketch_bits", result.total_bits());
    row.Set("wire_bits", result.channel_wire_bits);
    row.Set("retransmitted_bits", result.retransmitted_bits);
    row.Set("degraded", result.degraded);
    rows.Append(std::move(row));
  }
  std::printf("(both rows decode the same sketches — the estimate is "
              "identical;\n the channel only adds framing, ACKs, and "
              "retransmitted chunks)\n");
  return rows;
}

void BM_DistributedPipeline(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  Rng gen_rng(9);
  const UndirectedGraph g = PlantedBridgeMultigraph(32, degree, 6, gen_rng);
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    DistributedMinCutOptions options;
    options.epsilon = 0.3;
    DistributedMinCutPipeline pipeline(PartitionEdges(g, 4, rng), options,
                                       rng);
    benchmark::DoNotOptimize(pipeline.Run(rng));
  }
  state.counters["edges"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_DistributedPipeline)->Arg(64)->Arg(256);

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path = dcs::bench::ConsumeOutFlag(
      &argc, argv, "BENCH_distributed_mincut.json");
  dcs::TableA();
  dcs::TableB();
  dcs::TableC();
  dcs::TableD();
  dcs::JsonValue root = dcs::JsonValue::MakeObject();
  root.Set("chaos", dcs::TableE());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dcs::bench::WriteBenchJson(out_path, std::move(root));
  return 0;
}
