// Experiment L5.5 / Figure 2 — the 2-SUM graph G_{x,y}.
//
// Paper claims: (i) the Figure 2 worked example has one intersection and
// min cut 2; (ii) MINCUT(G_{x,y}) = 2·INT(x,y) whenever √N ≥ 3·INT(x,y)
// (Lemma 5.5); (iii) the proof's connectivity argument gives every vertex
// pair ≥ 2γ edge-disjoint paths (Figures 3–6).
//
// Tables produced:
//   A: the Figure 2 example.
//   B: Lemma 5.5 sweep — identity holding rate across ℓ and INT, including
//      the regime beyond the √N ≥ 3·INT hypothesis.
//   C: edge-disjoint path counts per block-pair case.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "comm/two_sum.h"
#include "lowerbound/twosum_graph.h"
#include "mincut/dinic.h"
#include "mincut/stoer_wagner.h"
#include "json_writer.h"
#include "table.h"
#include "util/random.h"

namespace dcs {

using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

// Strings with exactly `intersections` shared ones plus disjoint noise.
void MakeStrings(int ell, int intersections, double noise, Rng& rng,
                 std::vector<uint8_t>& x, std::vector<uint8_t>& y) {
  const int n_bits = ell * ell;
  x.assign(static_cast<size_t>(n_bits), 0);
  y.assign(static_cast<size_t>(n_bits), 0);
  for (int pos : rng.RandomSubset(n_bits, intersections)) {
    x[static_cast<size_t>(pos)] = 1;
    y[static_cast<size_t>(pos)] = 1;
  }
  for (int i = 0; i < n_bits; ++i) {
    if (x[static_cast<size_t>(i)] || y[static_cast<size_t>(i)]) continue;
    const double draw = rng.UniformDouble();
    if (draw < noise / 2) {
      x[static_cast<size_t>(i)] = 1;
    } else if (draw < noise) {
      y[static_cast<size_t>(i)] = 1;
    }
  }
}

void TableA() {
  PrintBanner("Fig2", "The paper's worked example x=000000100, y=100010100");
  const TwoSumExample example = Figure2Example();
  const UndirectedGraph g = BuildTwoSumGraph(example.x, example.y);
  PrintRow({"INT(x,y)", "vertices", "edges", "mincut", "2*INT"});
  PrintRule(5);
  const int intersections = IntersectionCount(example.x, example.y);
  PrintRow({I(intersections), I(g.num_vertices()), I(g.num_edges()),
            F(StoerWagnerMinCut(g).value, 1), I(2 * intersections)});
}

void TableB() {
  PrintBanner("L5.5",
              "MINCUT(G_{x,y}) = 2*INT(x,y) sweep (identity requires "
              "sqrt(N) >= 3*INT)");
  PrintRow({"ell", "INT", "3*INT<=ell", "trials", "identity held",
            "min observed"});
  PrintRule(6);
  Rng rng(17);
  for (int ell : {9, 12, 15}) {
    for (int intersections : {1, 2, 3, 4, 5, 6}) {
      const bool hypothesis = 3 * intersections <= ell;
      int held = 0;
      double min_ratio = 1e18;
      const int trials = 6;
      for (int trial = 0; trial < trials; ++trial) {
        std::vector<uint8_t> x, y;
        MakeStrings(ell, intersections, 0.3, rng, x, y);
        const UndirectedGraph g = BuildTwoSumGraph(x, y);
        const double mincut = StoerWagnerMinCut(g).value;
        if (mincut == 2.0 * intersections) ++held;
        min_ratio = std::min(min_ratio, mincut / (2.0 * intersections));
      }
      PrintRow({I(ell), I(intersections), hypothesis ? "yes" : "no",
                I(trials), I(held), F(min_ratio, 3)});
    }
  }
  std::printf(
      "(within the hypothesis the identity must hold in every trial; beyond\n"
      " it the min cut can only stay equal or drop below 2*INT)\n");
}

void TableC() {
  PrintBanner("Fig3-6",
              "Edge-disjoint paths per case (gamma=3, ell=12; proof needs "
              ">= 2*gamma = 6)");
  Rng rng(23);
  std::vector<uint8_t> x, y;
  MakeStrings(12, 3, 0.0, rng, x, y);
  const UndirectedGraph g = BuildTwoSumGraph(x, y);
  const TwoSumGraphLayout layout(12);
  struct Case {
    const char* name;
    VertexId u;
    VertexId v;
  };
  const std::vector<Case> cases = {
      {"Case1 A-A", layout.a(0), layout.a(7)},
      {"Case2 A-A'", layout.a(0), layout.a_prime(4)},
      {"Case3 A-B'", layout.a(0), layout.b_prime(5)},
      {"Case4 A-B", layout.a(0), layout.b(9)},
      {"Case1 B'-B'", layout.b_prime(1), layout.b_prime(8)},
      {"Case3 A'-B", layout.a_prime(2), layout.b(3)},
  };
  PrintRow({"case", "paths", "2*gamma"});
  PrintRule(3);
  for (const Case& c : cases) {
    PrintRow({c.name, I(CountEdgeDisjointPaths(g, c.u, c.v)), I(6)});
  }
}

void BM_BuildTwoSumGraph(benchmark::State& state) {
  const int ell = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<uint8_t> x, y;
  MakeStrings(ell, ell / 4, 0.3, rng, x, y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildTwoSumGraph(x, y));
  }
  state.counters["edges"] = 2.0 * ell * ell;
}
BENCHMARK(BM_BuildTwoSumGraph)->Arg(16)->Arg(64)->Arg(128);

void BM_StoerWagnerOnGxy(benchmark::State& state) {
  const int ell = static_cast<int>(state.range(0));
  Rng rng(2);
  std::vector<uint8_t> x, y;
  MakeStrings(ell, 2, 0.3, rng, x, y);
  const UndirectedGraph g = BuildTwoSumGraph(x, y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(StoerWagnerMinCut(g));
  }
}
BENCHMARK(BM_StoerWagnerOnGxy)->Arg(12)->Arg(24)->Arg(48);

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path = dcs::bench::ConsumeOutFlag(
      &argc, argv, "BENCH_gxy_mincut.json");
  dcs::TableA();
  dcs::TableB();
  dcs::TableC();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dcs::bench::WriteBenchJson(out_path, dcs::JsonValue::MakeObject());
  return 0;
}
