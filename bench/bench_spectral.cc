// Experiment SPEC — the spectral substrate (related work: [SS11], [ST11],
// spectral sketches).
//
// Claims reproduced: effective resistances obey the closed forms (K_n:
// 2/n; C_n: d(n−d)/n; series/parallel laws) and Foster's theorem
// Σ w_e R_e = n−1; sampling by w·R (Spielman–Srivastava) yields cut
// sparsifiers whose size scales like n·log(n)/ε².
//
// Tables produced:
//   A: closed-form resistances vs computed values.
//   B: Foster's theorem across workloads.
//   C: spectral sparsifier size & worst sampled-cut error vs ε.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "spectral/laplacian.h"
#include "json_writer.h"
#include "table.h"
#include "util/random.h"

namespace dcs {

using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

void TableA() {
  PrintBanner("SPEC/A", "Effective resistances vs closed forms");
  PrintRow({"graph", "pair", "computed", "closed form"});
  PrintRule(4);
  {
    const UndirectedGraph g = CompleteGraph(12, 1.0);
    const EffectiveResistances r(g);
    PrintRow({"K_12", "(0,7)", F(r.Resistance(0, 7), 6), F(2.0 / 12, 6)});
  }
  {
    const UndirectedGraph g = CycleGraph(10, 1.0);
    const EffectiveResistances r(g);
    PrintRow({"C_10", "(0,3)", F(r.Resistance(0, 3), 6),
              F(3.0 * 7 / 10, 6)});
    PrintRow({"C_10", "(0,5)", F(r.Resistance(0, 5), 6),
              F(5.0 * 5 / 10, 6)});
  }
  {
    UndirectedGraph g(4);
    for (int v = 0; v < 3; ++v) g.AddEdge(v, v + 1, 2.0);  // series
    const EffectiveResistances r(g);
    PrintRow({"path w=2", "(0,3)", F(r.Resistance(0, 3), 6),
              F(3.0 / 2, 6)});
  }
}

void TableB() {
  PrintBanner("SPEC/B", "Foster's theorem: sum of w_e*R_e = n-1");
  PrintRow({"graph", "n", "sum w*R", "n-1"});
  PrintRule(4);
  struct Workload {
    const char* name;
    UndirectedGraph graph;
  };
  Rng rng(1);
  std::vector<Workload> workloads;
  workloads.push_back({"K_24", CompleteGraph(24, 1.0)});
  workloads.push_back({"grid 6x8", GridGraph(6, 8)});
  workloads.push_back(
      {"pref-attach", PreferentialAttachmentGraph(40, 3, rng)});
  workloads.push_back(
      {"G(32, .3)", RandomUndirectedGraph(32, 0.3, 0.5, 2.0, true, rng)});
  for (const Workload& workload : workloads) {
    const EffectiveResistances r(workload.graph);
    const std::vector<double> edge_r = r.EdgeResistances();
    double total = 0;
    for (size_t i = 0; i < edge_r.size(); ++i) {
      total += workload.graph.edges()[i].weight * edge_r[i];
    }
    PrintRow({workload.name, I(workload.graph.num_vertices()), F(total, 6),
              I(workload.graph.num_vertices() - 1)});
  }
}

void TableC() {
  PrintBanner("SPEC/C",
              "Spielman-Srivastava sparsifier: size and cut error vs eps "
              "(K_128)");
  const UndirectedGraph g = CompleteGraph(128, 1.0);
  PrintRow({"eps", "kept", "c n ln n/e^2", "worst cut err", "err/eps"});
  PrintRule(5);
  for (double eps : {0.6, 0.4, 0.25}) {
    Rng rng(static_cast<uint64_t>(eps * 100));
    const UndirectedGraph h = SpectralSparsify(g, eps, rng, 0.5);
    double worst = 0;
    Rng cut_rng(3);
    for (int trial = 0; trial < 200; ++trial) {
      VertexSet side(128);
      for (auto& b : side) b = static_cast<uint8_t>(cut_rng.Next() & 1);
      if (!IsProperCutSide(side)) continue;
      const double exact = g.CutWeight(side);
      worst = std::max(worst, std::abs(h.CutWeight(side) - exact) / exact);
    }
    const double formula =
        0.5 * 128 * std::log(128.0) / (eps * eps);
    PrintRow({F(eps, 2), I(h.num_edges()), F(formula, 0), F(worst, 3),
              F(worst / eps, 2)});
  }
  std::printf("(a spectral sparsifier is in particular a cut sparsifier;\n"
              " err/eps stays below a small constant)\n");
}

void BM_EffectiveResistances(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const UndirectedGraph g = CompleteGraph(n, 1.0);
  for (auto _ : state) {
    const EffectiveResistances r(g);
    benchmark::DoNotOptimize(r.Resistance(0, 1));
  }
}
BENCHMARK(BM_EffectiveResistances)->Arg(32)->Arg(64)->Arg(128);

void BM_SpectralSparsify(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const UndirectedGraph g = CompleteGraph(n, 1.0);
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(SpectralSparsify(g, 0.4, rng, 0.5));
  }
}
BENCHMARK(BM_SpectralSparsify)->Arg(64)->Arg(128);

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path = dcs::bench::ConsumeOutFlag(
      &argc, argv, "BENCH_spectral.json");
  dcs::TableA();
  dcs::TableB();
  dcs::TableC();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dcs::bench::WriteBenchJson(out_path, dcs::JsonValue::MakeObject());
  return 0;
}
