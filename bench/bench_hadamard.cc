// Experiment L3.2 — Lemma 3.2: the tensor-row sign matrix underlying the
// for-each encoding.
//
// Paper claim: for every k there is an M ∈ {−1,1}^((2^k−1)² × 2^{2k}) with
// balanced rows, pairwise-orthogonal rows, and rank-one ±1 tensor factor
// structure. The table verifies all three conditions exhaustively per block
// size and reports the decoding identity ⟨Σ z_t M_t, M_t⟩ = z_t·N².
// Benchmarks measure FWHT-based encoding throughput.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

#include "json_writer.h"
#include "table.h"
#include "util/hadamard.h"
#include "util/random.h"
#include "util/simd.h"

namespace dcs {

using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

void VerificationTable() {
  PrintBanner("L3.2", "Lemma 3.2 matrix verification per block size");
  PrintRow({"N=1/eps", "rows", "cols", "balanced", "orthogonal", "tensor",
            "decode id"});
  PrintRule(7);
  for (int log_size : {1, 2, 3, 4}) {
    const TensorSignMatrix m(log_size);
    bool balanced = true;
    bool tensor = true;
    for (int64_t t = 0; t < m.rows(); ++t) {
      int64_t sum = 0;
      const std::vector<int8_t> u = m.LeftFactor(t);
      const std::vector<int8_t> v = m.RightFactor(t);
      for (int64_t col = 0; col < m.cols(); ++col) {
        const int entry = m.Entry(t, col);
        sum += entry;
        const int a = static_cast<int>(col / m.block_size());
        const int b = static_cast<int>(col % m.block_size());
        if (entry != u[static_cast<size_t>(a)] * v[static_cast<size_t>(b)]) {
          tensor = false;
        }
      }
      if (sum != 0) balanced = false;
    }
    bool orthogonal = true;
    const int64_t pair_limit = m.rows() > 40 ? 40 : m.rows();
    for (int64_t t1 = 0; t1 < pair_limit && orthogonal; ++t1) {
      for (int64_t t2 = t1 + 1; t2 < pair_limit; ++t2) {
        int64_t dot = 0;
        for (int64_t col = 0; col < m.cols(); ++col) {
          dot += m.Entry(t1, col) * m.Entry(t2, col);
        }
        if (dot != 0) {
          orthogonal = false;
          break;
        }
      }
    }
    // Decoding identity on a random sign vector.
    Rng rng(static_cast<uint64_t>(log_size));
    const std::vector<int8_t> z =
        rng.RandomSignString(static_cast<int>(m.rows()));
    const std::vector<int64_t> x = m.EncodeSigns(z);
    bool decode_ok = true;
    for (int64_t t = 0; t < m.rows(); ++t) {
      if (m.InnerProductWithRow(x, t) !=
          static_cast<int64_t>(z[static_cast<size_t>(t)]) *
              m.RowNormSquared()) {
        decode_ok = false;
        break;
      }
    }
    PrintRow({I(m.block_size()), I(m.rows()), I(m.cols()),
              balanced ? "yes" : "NO", orthogonal ? "yes" : "NO",
              tensor ? "yes" : "NO", decode_ok ? "yes" : "NO"});
  }
  std::printf("(all columns must read yes — Conditions (1)-(3) of Lemma 3.2\n"
              " plus the <w,M_t> = z_t/eps decoding identity)\n");
}

// ---------------------------------------------------------------------------
// SIMD section: scalar reference vs dispatched kernels, per size.
// ---------------------------------------------------------------------------

struct SimdRecord {
  const char* kernel = "";
  int64_t n = 0;  // elements (FWHT) or 64-bit words (popcounts)
  double scalar_ns = 0;
  double simd_ns = 0;
  double bytes_per_cycle = 0;  // dispatched path; 0 when no cycle counter
  double speedup() const { return simd_ns > 0 ? scalar_ns / simd_ns : 0; }
};

struct KernelTiming {
  double ns = 0;      // per call
  double cycles = 0;  // per call; 0 off x86
};

// Median-of-5 timing of `reps` back-to-back calls.
template <typename Fn>
KernelTiming TimeKernel(int reps, const Fn& fn) {
  KernelTiming best;
  std::vector<KernelTiming> samples;
  for (int sample = 0; sample < 5; ++sample) {
    const auto t0 = std::chrono::steady_clock::now();
#if defined(__x86_64__)
    const uint64_t c0 = __rdtsc();
#endif
    for (int rep = 0; rep < reps; ++rep) fn();
#if defined(__x86_64__)
    const uint64_t c1 = __rdtsc();
#endif
    KernelTiming t;
    t.ns = std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - t0)
               .count() /
           reps;
#if defined(__x86_64__)
    t.cycles = static_cast<double>(c1 - c0) / reps;
#endif
    samples.push_back(t);
  }
  std::sort(samples.begin(), samples.end(),
            [](const KernelTiming& a, const KernelTiming& b) {
              return a.ns < b.ns;
            });
  best = samples[samples.size() / 2];
  return best;
}

std::vector<SimdRecord> SectionSimdComparison() {
  PrintBanner("SIMD",
              "scalar reference vs dispatched kernels (path: " +
                  std::string(simd::DispatchPathName(simd::ActivePath())) +
                  ")");
  PrintRow({"kernel", "n", "scalar(ns)", "simd(ns)", "speedup", "B/cycle"});
  PrintRule(6);
  std::vector<SimdRecord> records;
  Rng rng(3);

  // FWHT (int64): subtract the per-rep memcpy that restores the input so
  // only the transform is timed. Bytes/cycle counts every butterfly pass
  // touching every element (n·8·log₂n streamed bytes per call).
  for (const int log_n : {8, 10, 12, 14, 16}) {
    const size_t n = size_t{1} << log_n;
    std::vector<int64_t> input(n);
    for (auto& v : input) v = rng.UniformInRange(-100, 100);
    std::vector<int64_t> work(n);
    const int reps = std::max(1, 1 << (20 - log_n));
    const auto copy_only = TimeKernel(reps, [&] {
      std::memcpy(work.data(), input.data(), n * sizeof(int64_t));
      benchmark::DoNotOptimize(work.data());
    });
    const auto scalar = TimeKernel(reps, [&] {
      std::memcpy(work.data(), input.data(), n * sizeof(int64_t));
      simd::scalar::Fwht(work.data(), n, 1);
      benchmark::DoNotOptimize(work.data());
    });
    const auto dispatched = TimeKernel(reps, [&] {
      std::memcpy(work.data(), input.data(), n * sizeof(int64_t));
      simd::Fwht(work.data(), n, 1);
      benchmark::DoNotOptimize(work.data());
    });
    SimdRecord record;
    record.kernel = "fwht_i64";
    record.n = static_cast<int64_t>(n);
    record.scalar_ns = std::max(0.0, scalar.ns - copy_only.ns);
    record.simd_ns = std::max(0.0, dispatched.ns - copy_only.ns);
    const double cycles = dispatched.cycles - copy_only.cycles;
    if (cycles > 0) {
      record.bytes_per_cycle =
          static_cast<double>(n) * 8.0 * log_n / cycles;
    }
    records.push_back(record);
  }

  // XOR+popcount and popcount over packed words (the SignVector inner
  // product core). Bytes/cycle counts every input byte read.
  for (const int log_words : {6, 10, 14}) {
    const size_t words = size_t{1} << log_words;
    std::vector<uint64_t> a(words), b(words);
    for (auto& w : a) w = rng.Next();
    for (auto& w : b) w = rng.Next();
    const int reps = std::max(1, 1 << (22 - log_words));
    int64_t sink = 0;
    const auto scalar_xor = TimeKernel(reps, [&] {
      sink += simd::scalar::XorPopcount(a.data(), b.data(), words);
      benchmark::DoNotOptimize(sink);
    });
    const auto simd_xor = TimeKernel(reps, [&] {
      sink += simd::XorPopcount(a.data(), b.data(), words);
      benchmark::DoNotOptimize(sink);
    });
    SimdRecord xor_record;
    xor_record.kernel = "xor_popcount";
    xor_record.n = static_cast<int64_t>(words);
    xor_record.scalar_ns = scalar_xor.ns;
    xor_record.simd_ns = simd_xor.ns;
    if (simd_xor.cycles > 0) {
      xor_record.bytes_per_cycle =
          static_cast<double>(words) * 16.0 / simd_xor.cycles;
    }
    records.push_back(xor_record);

    const auto scalar_pop = TimeKernel(reps, [&] {
      sink += simd::scalar::Popcount(a.data(), words);
      benchmark::DoNotOptimize(sink);
    });
    const auto simd_pop = TimeKernel(reps, [&] {
      sink += simd::Popcount(a.data(), words);
      benchmark::DoNotOptimize(sink);
    });
    SimdRecord pop_record;
    pop_record.kernel = "popcount";
    pop_record.n = static_cast<int64_t>(words);
    pop_record.scalar_ns = scalar_pop.ns;
    pop_record.simd_ns = simd_pop.ns;
    if (simd_pop.cycles > 0) {
      pop_record.bytes_per_cycle =
          static_cast<double>(words) * 8.0 / simd_pop.cycles;
    }
    records.push_back(pop_record);
  }

  for (const SimdRecord& r : records) {
    PrintRow({r.kernel, I(r.n), F(r.scalar_ns, 1), F(r.simd_ns, 1),
              F(r.speedup(), 2), F(r.bytes_per_cycle, 2)});
  }
  std::printf(
      "(scalar = the no-autovectorize reference the dispatch layer falls\n"
      " back to; identical bits are asserted by util_simd_test, this table\n"
      " only measures speed)\n");
  return records;
}

JsonValue SimdJson(const std::vector<SimdRecord>& records) {
  JsonValue root = JsonValue::MakeObject();
  root.Set("dispatch_path",
           std::string(simd::DispatchPathName(simd::ActivePath())));
  JsonValue rows = JsonValue::MakeArray();
  for (const SimdRecord& r : records) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("kernel", std::string(r.kernel));
    entry.Set("n", r.n);
    entry.Set("scalar_ns", r.scalar_ns);
    entry.Set("simd_ns", r.simd_ns);
    entry.Set("speedup", r.speedup());
    entry.Set("bytes_per_cycle", r.bytes_per_cycle);
    rows.Append(std::move(entry));
  }
  root.Set("rows", std::move(rows));
  return root;
}

void BM_FwhtTransform(benchmark::State& state) {
  const int log_size = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<int64_t> values(static_cast<size_t>(1) << log_size);
  for (auto& v : values) v = rng.UniformInRange(-100, 100);
  for (auto _ : state) {
    std::vector<int64_t> copy = values;
    FastWalshHadamardTransform(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetComplexityN(1 << log_size);
}
BENCHMARK(BM_FwhtTransform)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_TensorEncodeSigns(benchmark::State& state) {
  const int log_size = static_cast<int>(state.range(0));
  const TensorSignMatrix m(log_size);
  Rng rng(2);
  const std::vector<int8_t> z =
      rng.RandomSignString(static_cast<int>(m.rows()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.EncodeSigns(z));
  }
  state.counters["cols"] = static_cast<double>(m.cols());
}
BENCHMARK(BM_TensorEncodeSigns)->Arg(3)->Arg(5)->Arg(7);

void BM_HadamardEntry(benchmark::State& state) {
  const HadamardMatrix h(10);
  int row = 1;
  int col = 0;
  int64_t sink = 0;
  for (auto _ : state) {
    sink += h.Entry(row, col);
    row = (row + 7) & 1023;
    col = (col + 13) & 1023;
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_HadamardEntry);

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path = dcs::bench::ConsumeOutFlag(
      &argc, argv, "BENCH_hadamard.json");
  const std::string simd_out_path = dcs::bench::ConsumeStringFlag(
      &argc, argv, "--out-simd", "BENCH_simd.json");
  dcs::VerificationTable();
  const auto simd_records = dcs::SectionSimdComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dcs::bench::WriteBenchJson(simd_out_path, dcs::SimdJson(simd_records));
  dcs::bench::WriteBenchJson(out_path, dcs::JsonValue::MakeObject());
  return 0;
}
