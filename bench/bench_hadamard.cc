// Experiment L3.2 — Lemma 3.2: the tensor-row sign matrix underlying the
// for-each encoding.
//
// Paper claim: for every k there is an M ∈ {−1,1}^((2^k−1)² × 2^{2k}) with
// balanced rows, pairwise-orthogonal rows, and rank-one ±1 tensor factor
// structure. The table verifies all three conditions exhaustively per block
// size and reports the decoding identity ⟨Σ z_t M_t, M_t⟩ = z_t·N².
// Benchmarks measure FWHT-based encoding throughput.

#include <benchmark/benchmark.h>

#include "json_writer.h"
#include "table.h"
#include "util/hadamard.h"
#include "util/random.h"

namespace dcs {

using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

void VerificationTable() {
  PrintBanner("L3.2", "Lemma 3.2 matrix verification per block size");
  PrintRow({"N=1/eps", "rows", "cols", "balanced", "orthogonal", "tensor",
            "decode id"});
  PrintRule(7);
  for (int log_size : {1, 2, 3, 4}) {
    const TensorSignMatrix m(log_size);
    bool balanced = true;
    bool tensor = true;
    for (int64_t t = 0; t < m.rows(); ++t) {
      int64_t sum = 0;
      const std::vector<int8_t> u = m.LeftFactor(t);
      const std::vector<int8_t> v = m.RightFactor(t);
      for (int64_t col = 0; col < m.cols(); ++col) {
        const int entry = m.Entry(t, col);
        sum += entry;
        const int a = static_cast<int>(col / m.block_size());
        const int b = static_cast<int>(col % m.block_size());
        if (entry != u[static_cast<size_t>(a)] * v[static_cast<size_t>(b)]) {
          tensor = false;
        }
      }
      if (sum != 0) balanced = false;
    }
    bool orthogonal = true;
    const int64_t pair_limit = m.rows() > 40 ? 40 : m.rows();
    for (int64_t t1 = 0; t1 < pair_limit && orthogonal; ++t1) {
      for (int64_t t2 = t1 + 1; t2 < pair_limit; ++t2) {
        int64_t dot = 0;
        for (int64_t col = 0; col < m.cols(); ++col) {
          dot += m.Entry(t1, col) * m.Entry(t2, col);
        }
        if (dot != 0) {
          orthogonal = false;
          break;
        }
      }
    }
    // Decoding identity on a random sign vector.
    Rng rng(static_cast<uint64_t>(log_size));
    const std::vector<int8_t> z =
        rng.RandomSignString(static_cast<int>(m.rows()));
    const std::vector<int64_t> x = m.EncodeSigns(z);
    bool decode_ok = true;
    for (int64_t t = 0; t < m.rows(); ++t) {
      if (m.InnerProductWithRow(x, t) !=
          static_cast<int64_t>(z[static_cast<size_t>(t)]) *
              m.RowNormSquared()) {
        decode_ok = false;
        break;
      }
    }
    PrintRow({I(m.block_size()), I(m.rows()), I(m.cols()),
              balanced ? "yes" : "NO", orthogonal ? "yes" : "NO",
              tensor ? "yes" : "NO", decode_ok ? "yes" : "NO"});
  }
  std::printf("(all columns must read yes — Conditions (1)-(3) of Lemma 3.2\n"
              " plus the <w,M_t> = z_t/eps decoding identity)\n");
}

void BM_FwhtTransform(benchmark::State& state) {
  const int log_size = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<int64_t> values(static_cast<size_t>(1) << log_size);
  for (auto& v : values) v = rng.UniformInRange(-100, 100);
  for (auto _ : state) {
    std::vector<int64_t> copy = values;
    FastWalshHadamardTransform(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetComplexityN(1 << log_size);
}
BENCHMARK(BM_FwhtTransform)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_TensorEncodeSigns(benchmark::State& state) {
  const int log_size = static_cast<int>(state.range(0));
  const TensorSignMatrix m(log_size);
  Rng rng(2);
  const std::vector<int8_t> z =
      rng.RandomSignString(static_cast<int>(m.rows()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.EncodeSigns(z));
  }
  state.counters["cols"] = static_cast<double>(m.cols());
}
BENCHMARK(BM_TensorEncodeSigns)->Arg(3)->Arg(5)->Arg(7);

void BM_HadamardEntry(benchmark::State& state) {
  const HadamardMatrix h(10);
  int row = 1;
  int col = 0;
  int64_t sink = 0;
  for (auto _ : state) {
    sink += h.Entry(row, col);
    row = (row + 7) & 1023;
    col = (col + 13) & 1023;
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_HadamardEntry);

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path = dcs::bench::ConsumeOutFlag(
      &argc, argv, "BENCH_hadamard.json");
  dcs::VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dcs::bench::WriteBenchJson(out_path, dcs::JsonValue::MakeObject());
  return 0;
}
