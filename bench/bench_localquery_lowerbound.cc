// Experiment T1.3 — Theorem 1.3 (query complexity of min-cut in the local
// query model), measured on the paper's own hard instances G_{x,y}.
//
// Paper claim: (1±ε)-approximating the global min cut needs
// Ω(min{m, m/(ε²k)}) local queries; the reduction charges 2 bits of
// communication per edge/adjacency query (Lemma 5.6).
//
// Tables produced:
//   A: queries vs m at fixed (ε, k) — linear scaling in m.
//   B: queries vs k at fixed (ε, m) — the 1/k factor.
//   C: queries vs ε at fixed (m, k) — the 1/ε² factor, with the min{m,·}
//      cap visible once sampling saturates.
// Each row also reports the Lemma 5.6 communication bits and the
// theoretical min{m, m/(ε²k)} envelope.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "localquery/mincut_estimator.h"
#include "lowerbound/twosum_graph.h"
#include "json_writer.h"
#include "table.h"
#include "util/stats.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace dcs {

using bench::E;
using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

// Builds a G_{x,y} with side length ell and exactly `intersections`
// intersecting positions (min cut 2·intersections when ell >= 3·INT).
UndirectedGraph HardInstance(int ell, int intersections, Rng& rng) {
  std::vector<uint8_t> x(static_cast<size_t>(ell) * ell, 0);
  std::vector<uint8_t> y(static_cast<size_t>(ell) * ell, 0);
  for (int pos : rng.RandomSubset(ell * ell, intersections)) {
    x[static_cast<size_t>(pos)] = 1;
    y[static_cast<size_t>(pos)] = 1;
  }
  return BuildTwoSumGraph(x, y);
}

struct Measurement {
  double queries = 0;
  double bits = 0;
  double estimate = 0;
};

// Set from --threads in main; repetitions use per-rep seeds, so the
// averages are identical for every thread count.
int g_measure_threads = 1;

Measurement Measure(const UndirectedGraph& g, double epsilon, int reps,
                    uint64_t seed) {
  g.BuildAdjacency();  // shared across reps; pre-build the lazy index
  std::vector<Measurement> slots(static_cast<size_t>(reps));
  ParallelFor(g_measure_threads, reps, [&](int64_t rep) {
    Rng rng(seed + static_cast<uint64_t>(rep));
    const LocalQueryMinCutResult result = EstimateMinCutLocalQueries(
        g, epsilon, SearchMode::kModifiedConstantSearch, rng);
    Measurement& slot = slots[static_cast<size_t>(rep)];
    slot.queries = static_cast<double>(result.counts.total());
    slot.bits = static_cast<double>(result.communication_bits);
    slot.estimate = result.estimate;
  });
  Measurement m;
  for (const Measurement& slot : slots) {
    m.queries += slot.queries / reps;
    m.bits += slot.bits / reps;
    m.estimate += slot.estimate / reps;
  }
  return m;
}

void TableA() {
  PrintBanner("T1.3/A", "Queries vs m on G_{x,y} (fixed eps=0.3, k=4)");
  PrintRow({"ell", "m", "k", "queries", "comm bits", "m/(e^2 k)", "estimate"});
  PrintRule(7);
  std::vector<double> ms, qs;
  for (int ell : {24, 36, 48, 64}) {
    Rng rng(static_cast<uint64_t>(ell));
    const UndirectedGraph g = HardInstance(ell, 2, rng);
    const double m = static_cast<double>(g.num_edges());
    const Measurement result = Measure(g, 0.3, 3, 100 + ell);
    ms.push_back(m);
    qs.push_back(result.queries);
    PrintRow({I(ell), I(g.num_edges()), I(4), F(result.queries, 0),
              F(result.bits, 0), F(m / (0.09 * 4), 0),
              F(result.estimate, 2)});
  }
  const LineFit fit = FitLogLog(ms, qs);
  std::printf("log-log slope of queries vs m: %.2f (paper: 1.0)\n",
              fit.slope);
}

void TableB() {
  PrintBanner("T1.3/B", "Queries vs k on G_{x,y} (fixed eps=0.3, ell=60)");
  PrintRow({"INT", "k=2INT", "queries", "comm bits", "m/(e^2 k)",
            "estimate"});
  PrintRule(6);
  std::vector<double> ks, qs;
  for (int intersections : {2, 4, 8, 16}) {
    Rng rng(static_cast<uint64_t>(intersections) + 7);
    const UndirectedGraph g = HardInstance(60, intersections, rng);
    const double k = 2.0 * intersections;
    const Measurement result = Measure(g, 0.3, 3, 200 + intersections);
    ks.push_back(k);
    qs.push_back(result.queries);
    PrintRow({I(intersections), I(static_cast<int64_t>(k)),
              F(result.queries, 0), F(result.bits, 0),
              F(g.num_edges() / (0.09 * k), 0), F(result.estimate, 2)});
  }
  (void)ks;
  (void)qs;
  std::printf(
      "(at these sizes eps^2*k << log n, so the theorem's envelope is the\n"
      " min{m, .} = Theta(m) branch: measured queries are flat in k and sit\n"
      " a polylog factor above m — consistent with the lower bound)\n");
}

void TableC() {
  PrintBanner("T1.3/C", "Queries vs eps on G_{x,y} (fixed ell=48, k=16)");
  PrintRow({"eps", "queries", "comm bits", "m/(e^2 k)", "min cap m",
            "estimate"});
  PrintRule(6);
  Rng rng(55);
  const UndirectedGraph g = HardInstance(48, 8, rng);
  const double m = static_cast<double>(g.num_edges());
  std::vector<double> inv_eps, qs;
  for (double epsilon : {0.5, 0.35, 0.25, 0.18, 0.12}) {
    const Measurement result = Measure(g, epsilon, 3,
                                       static_cast<uint64_t>(1000 * epsilon));
    inv_eps.push_back(1.0 / epsilon);
    qs.push_back(result.queries);
    PrintRow({F(epsilon, 2), F(result.queries, 0), F(result.bits, 0),
              F(m / (epsilon * epsilon * 16), 0), F(m, 0),
              F(result.estimate, 2)});
  }
  (void)inv_eps;
  (void)qs;
  std::printf(
      "(the envelope min{m, m/(eps^2 k)} caps at m once eps^2*k < log n;\n"
      " measured queries track the cap. The unsaturated 1/eps^2 regime is\n"
      " exercised in bench_localquery_upperbound on high-multiplicity\n"
      " multigraphs)\n");
}

void BM_HardInstanceConstruction(benchmark::State& state) {
  const int ell = static_cast<int>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HardInstance(ell, ell / 4, rng));
  }
  state.counters["edges"] = 2.0 * ell * ell;
}
BENCHMARK(BM_HardInstanceConstruction)->Arg(16)->Arg(32)->Arg(64);

void BM_LocalQueryEstimate(benchmark::State& state) {
  const int ell = static_cast<int>(state.range(0));
  Rng rng(2);
  const UndirectedGraph g = HardInstance(ell, 2, rng);
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng run_rng(seed++);
    benchmark::DoNotOptimize(EstimateMinCutLocalQueries(
        g, 0.3, SearchMode::kModifiedConstantSearch, run_rng));
  }
}
BENCHMARK(BM_LocalQueryEstimate)->Arg(24)->Arg(48);

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path = dcs::bench::ConsumeOutFlag(
      &argc, argv, "BENCH_localquery_lowerbound.json");
  dcs::g_measure_threads = dcs::bench::ConsumeThreadsFlag(&argc, argv);
  dcs::TableA();
  dcs::TableB();
  dcs::TableC();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dcs::bench::WriteBenchJson(out_path, dcs::JsonValue::MakeObject());
  return 0;
}
