// Experiment AGM — the [AGM12] linear-sketching substrate the paper's
// introduction highlights for the database community.
//
// Claims reproduced: connectivity (and a spanning forest) of a graph under
// edge insertions *and deletions* from O(n·polylog n) linear measurements;
// sketches of edge-disjoint parts merge by addition (the distributed
// pattern of Section 1).
//
// Tables produced:
//   A: sketch size vs n (polylog per vertex) with forest-extraction
//      success rate on random graphs.
//   B: fully dynamic workload — insert a cycle, delete chords, verify
//      connectivity tracking through deletions.
//   C: distributed merge — components from merged per-server sketches vs
//      ground truth, with total sketch bits vs shipping the edges.

#include <benchmark/benchmark.h>

#include <cmath>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "sketch/serialization.h"
#include "stream/agm_sketch.h"
#include "json_writer.h"
#include "table.h"
#include "util/random.h"

namespace dcs {

using bench::E;
using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

void TableA() {
  PrintBanner("AGM/A",
              "Sketch size vs n and spanning-forest success on G(n, p)");
  PrintRow({"n", "m", "sketch bits", "bits/(n lg^2 n)", "comp exact",
            "comp sketch", "match/10"});
  PrintRule(7);
  for (int n : {32, 64, 128, 256}) {
    Rng rng(static_cast<uint64_t>(n));
    const UndirectedGraph g =
        RandomUndirectedGraph(n, 3.0 / n, 1.0, 1.0, false, rng);
    int matches = 0;
    int components_sketch = -1;
    const int components_exact = CountComponents(g);
    int64_t bits = 0;
    for (uint64_t seed = 0; seed < 10; ++seed) {
      const AgmConnectivitySketch sketch = SketchGraph(g, 0, seed * 31 + 1);
      bits = sketch.SizeInBits();
      components_sketch = sketch.CountComponents();
      if (components_sketch == components_exact) ++matches;
    }
    const double lg = std::log2(static_cast<double>(n));
    PrintRow({I(n), I(g.num_edges()), I(bits), F(bits / (n * lg * lg), 1),
              I(components_exact), I(components_sketch),
              I(matches)});
  }
  std::printf(
      "(AGM12: O(n polylog n) measurements recover a spanning forest whp;\n"
      " the bits/(n lg^2 n) column stays bounded)\n");
}

void TableB() {
  PrintBanner("AGM/B", "Fully dynamic connectivity (insertions + deletions)");
  const int n = 64;
  AgmConnectivitySketch sketch(n, 0, 99);
  // Insert a cycle plus 32 random chords.
  Rng rng(1);
  for (int v = 0; v < n; ++v) sketch.AddEdge(v, (v + 1) % n);
  std::vector<std::pair<int, int>> chords;
  while (chords.size() < 32) {
    const int u = static_cast<int>(rng.UniformInt(n));
    const int w = static_cast<int>(rng.UniformInt(n));
    if (u == w || (u + 1) % n == w || (w + 1) % n == u) continue;
    chords.emplace_back(u, w);
    sketch.AddEdge(u, w);
  }
  PrintRow({"phase", "edges", "connected"});
  PrintRule(3);
  PrintRow({"cycle+chords", I(n + 32), sketch.IsConnected() ? "yes" : "NO"});
  // Delete every chord: still connected through the cycle.
  for (const auto& [u, w] : chords) sketch.RemoveEdge(u, w);
  PrintRow({"chords deleted", I(n), sketch.IsConnected() ? "yes" : "NO"});
  // Delete two cycle edges: splits into two components.
  sketch.RemoveEdge(0, 1);
  sketch.RemoveEdge(32, 33);
  PrintRow({"cycle cut twice", I(n - 2),
            sketch.CountComponents() == 2 ? "2 comps" : "WRONG"});
  std::printf("(linear measurements track deletions exactly — the property\n"
              " insertion-only samplers cannot offer)\n");
}

void TableC() {
  PrintBanner("AGM/C", "Distributed merge: per-server sketches vs truth");
  PrintRow({"servers", "comp truth", "comp merged", "sketch bits",
            "ship-edges bits"});
  PrintRule(5);
  Rng rng(7);
  const UndirectedGraph g =
      RandomUndirectedGraph(128, 0.05, 1.0, 1.0, false, rng);
  for (int servers : {2, 4, 8}) {
    std::vector<AgmConnectivitySketch> parts;
    for (int s = 0; s < servers; ++s) {
      parts.emplace_back(128, 8, 2025);
    }
    Rng assign(static_cast<uint64_t>(servers));
    for (const Edge& e : g.edges()) {
      parts[assign.UniformInt(static_cast<uint64_t>(servers))].AddEdge(
          e.src, e.dst);
    }
    AgmConnectivitySketch merged = parts[0];
    for (int s = 1; s < servers; ++s) merged.MergeFrom(parts[s]);
    int64_t total_bits = 0;
    for (const auto& part : parts) total_bits += part.SizeInBits();
    PrintRow({I(servers), I(CountComponents(g)),
              I(merged.CountComponents()), I(total_bits),
              I(SerializedSizeInBits(g))});
  }
  std::printf("(component counts agree; sketch communication is fixed by n\n"
              " and the number of servers, independent of m)\n");
}

void BM_AgmAddEdge(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  AgmConnectivitySketch sketch(n, 0, 1);
  Rng rng(2);
  for (auto _ : state) {
    const int u = static_cast<int>(rng.UniformInt(n));
    int v = static_cast<int>(rng.UniformInt(n));
    if (u == v) v = (v + 1) % n;
    sketch.AddEdge(u, v);
  }
}
BENCHMARK(BM_AgmAddEdge)->Arg(64)->Arg(256);

void BM_AgmSpanningForest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const UndirectedGraph g =
      RandomUndirectedGraph(n, 4.0 / n, 1.0, 1.0, true, rng);
  const AgmConnectivitySketch sketch = SketchGraph(g, 0, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.SpanningForest());
  }
}
BENCHMARK(BM_AgmSpanningForest)->Arg(64)->Arg(128);

}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path = dcs::bench::ConsumeOutFlag(
      &argc, argv, "BENCH_agm_sketch.json");
  dcs::TableA();
  dcs::TableB();
  dcs::TableC();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dcs::bench::WriteBenchJson(out_path, dcs::JsonValue::MakeObject());
  return 0;
}
