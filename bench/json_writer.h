// Shared machine-readable output for the bench binaries.
//
// Every bench writes a BENCH_<name>.json next to its console tables
// (override the path with --out FILE). The file is built from util/json's
// deterministic JsonValue writer and always carries two standard blocks:
//   "machine"  — hardware_concurrency
//   "metrics"  — the process-wide metrics registry snapshot (DESIGN.md §8),
//                so every run records its resource counts (cut queries,
//                serialized bits, thread-pool balance) alongside timings.
// Benches with experiment tables (bench_cutquery) add their own members
// before the standard blocks are appended.

#ifndef DCS_BENCH_JSON_WRITER_H_
#define DCS_BENCH_JSON_WRITER_H_

#include <cstdio>
#include <string>
#include <thread>
#include <utility>

#include "util/json.h"
#include "util/metrics.h"

namespace dcs::bench {

// Parses and strips "<flag> VALUE" / "<flag>=VALUE" from argv so the
// remaining arguments can go straight to benchmark::Initialize (same
// contract as ConsumeThreadsFlag in table.h). Returns `fallback` when the
// flag is absent.
inline std::string ConsumeStringFlag(int* argc, char** argv,
                                     const std::string& flag,
                                     std::string fallback) {
  std::string value = std::move(fallback);
  const std::string prefix = flag + "=";
  int write = 1;
  for (int read = 1; read < *argc; ++read) {
    const std::string arg = argv[read];
    if (arg == flag && read + 1 < *argc) {
      value = argv[++read];
    } else if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
    } else {
      argv[write++] = argv[read];
    }
  }
  *argc = write;
  return value;
}

// "--out FILE": where the bench writes its BENCH_<name>.json.
inline std::string ConsumeOutFlag(int* argc, char** argv,
                                  std::string fallback) {
  return ConsumeStringFlag(argc, argv, "--out", std::move(fallback));
}

// std::thread::hardware_concurrency() with its "0 = unknown" escape hatch
// folded to a usable value: every caller that sizes a pool or a sweep wants
// "at least one thread", not zero. All bench/CLI thread-count defaults go
// through here instead of re-implementing the fallback.
inline int HardwareConcurrencyOrOne() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw < 1 ? 1 : static_cast<int>(hw);
}

inline JsonValue MachineBlock() {
  JsonValue machine = JsonValue::MakeObject();
  machine.Set("hardware_concurrency",
              static_cast<int64_t>(HardwareConcurrencyOrOne()));
  return machine;
}

// The metrics registry snapshot plus whether instrumentation was compiled
// in (an OFF build legitimately reports empty counters).
inline JsonValue MetricsBlock() {
  JsonValue block = JsonValue::MakeObject();
  block.Set("enabled", DCS_METRICS_ENABLED != 0);
  const metrics::MetricsSnapshot snapshot = metrics::Registry::Get().Snapshot();
  const JsonValue snapshot_json = snapshot.ToJson();
  block.Set("counters", *snapshot_json.Find("counters"));
  block.Set("distributions", *snapshot_json.Find("distributions"));
  return block;
}

// Appends the standard "machine" and "metrics" blocks to `root` and writes
// it to `path` (pretty-printed, trailing newline). Returns false and warns
// on stderr if the file cannot be written.
inline bool WriteBenchJson(const std::string& path, JsonValue root) {
  root.Set("machine", MachineBlock());
  root.Set("metrics", MetricsBlock());
  const std::string text = root.Dump(2) + "\n";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), out) == text.size();
  if (std::fclose(out) != 0 || !ok) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return false;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

}  // namespace dcs::bench

#endif  // DCS_BENCH_JSON_WRITER_H_
