// Experiment STREAM — the concurrent streaming ingestion pipeline.
//
// One sweep: sustained edge-update throughput through StreamIngestor as a
// function of producer (inserter) count and gutter capacity, on a fixed
// mixed insert/delete workload. The workload is built once as
// kProducerStreams independent per-producer streams (each stream's deletes
// target only its own earlier inserts, so every interleaving is
// admissible), and every configuration pushes the same union of updates —
// so the sealed sketch digest must be bit-identical to the serial
// reference for every (inserters, gutter) point. The bench reports that
// check as answers_identical alongside the timings; the perf gate
// (scripts/check_perf_regression.py) fails the run if it is ever false or
// if the best throughput drops below its floor.
//
// Results go to BENCH_stream.json (override with --out FILE).

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "json_writer.h"
#include "stream/agm_sketch.h"
#include "stream/binary_stream.h"
#include "stream/ingest.h"
#include "table.h"
#include "util/random.h"

namespace dcs {

using bench::F;
using bench::I;
using bench::PrintBanner;
using bench::PrintRow;
using bench::PrintRule;

namespace {

constexpr int kVertices = 512;
constexpr int kRounds = 4;
constexpr int kShards = 8;
constexpr uint64_t kSeed = 77;
constexpr double kDeleteFraction = 0.2;
// The update total splits across this many per-producer streams; inserter
// counts must divide it so every configuration pushes the same union.
constexpr int kProducerStreams = 4;
constexpr int64_t kUpdatesPerStream = 1 << 16;

struct StreamRecord {
  int inserters = 0;
  int gutter = 0;
  double ms = 0;
  int64_t updates = 0;
  bool identical = false;
  double ns_per_update() const {
    return updates > 0 ? ms * 1e6 / static_cast<double>(updates) : 0;
  }
  double updates_per_sec() const {
    return ms > 0 ? static_cast<double>(updates) / (ms / 1e3) : 0;
  }
};

double MsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Per-producer streams: stream p's deletes only ever target stream p's own
// earlier inserts, so the per-shard live counts stay nonnegative under any
// producer interleaving (each producer pushes its streams in order).
std::vector<std::vector<EdgeUpdate>> BuildWorkload() {
  std::vector<std::vector<EdgeUpdate>> streams;
  streams.reserve(kProducerStreams);
  for (int p = 0; p < kProducerStreams; ++p) {
    Rng rng(SubtaskSeed(kSeed, p));
    streams.push_back(
        RandomUpdateStream(kVertices, kUpdatesPerStream, kDeleteFraction, rng));
  }
  return streams;
}

// The serial ground truth: every update applied directly to one sketch.
uint64_t ReferenceDigest(const std::vector<std::vector<EdgeUpdate>>& streams) {
  AgmConnectivitySketch sketch(kVertices, kRounds, kSeed);
  for (const std::vector<EdgeUpdate>& stream : streams) {
    for (const EdgeUpdate& update : stream) {
      if (update.is_delete) {
        sketch.RemoveEdge(update.u, update.v);
      } else {
        sketch.AddEdge(update.u, update.v);
      }
    }
  }
  return sketch.Digest();
}

StreamRecord RunConfig(const std::vector<std::vector<EdgeUpdate>>& streams,
                       int inserters, int gutter, uint64_t reference_digest) {
  StreamIngestorOptions options;
  options.num_shards = kShards;
  options.gutter_capacity = gutter;
  options.rounds = kRounds;
  options.seed = kSeed;
  StreamIngestor ingestor(kVertices, options);

  StreamRecord record;
  record.inserters = inserters;
  record.gutter = gutter;
  for (const std::vector<EdgeUpdate>& stream : streams) {
    record.updates += static_cast<int64_t>(stream.size());
  }

  const int streams_per_inserter = kProducerStreams / inserters;
  const auto push_streams = [&streams, &ingestor](int first, int count) {
    for (int s = first; s < first + count; ++s) {
      for (const EdgeUpdate& update : streams[static_cast<size_t>(s)]) {
        const Status status = ingestor.Push(update);
        DCS_CHECK(status.ok());
      }
    }
  };

  const auto start = std::chrono::steady_clock::now();
  if (inserters == 1) {
    push_streams(0, kProducerStreams);
  } else {
    std::vector<std::thread> producers;
    producers.reserve(static_cast<size_t>(inserters));
    for (int p = 0; p < inserters; ++p) {
      producers.emplace_back(push_streams, p * streams_per_inserter,
                             streams_per_inserter);
    }
    for (std::thread& producer : producers) producer.join();
  }
  const StatusOr<int64_t> epoch = ingestor.Barrier();
  record.ms = MsSince(start);
  DCS_CHECK(epoch.ok());
  record.identical = ingestor.snapshot()->digest == reference_digest;
  return record;
}

std::vector<StreamRecord> SectionThroughput() {
  PrintBanner("STREAM/A",
              "sustained updates/sec vs inserter count and gutter size");
  const std::vector<std::vector<EdgeUpdate>> streams = BuildWorkload();
  const uint64_t reference_digest = ReferenceDigest(streams);
  PrintRow({"inserters", "gutter", "time(ms)", "ns/update", "updates/sec",
            "identical"});
  PrintRule(6);
  std::vector<StreamRecord> records;
  for (const int inserters : {1, 2, 4}) {
    for (const int gutter : {64, 256, 1024}) {
      const StreamRecord record =
          RunConfig(streams, inserters, gutter, reference_digest);
      PrintRow({I(record.inserters), I(record.gutter), F(record.ms, 1),
                F(record.ns_per_update(), 1), F(record.updates_per_sec(), 0),
                record.identical ? "yes" : "NO"});
      records.push_back(record);
    }
  }
  return records;
}

void WriteJson(const std::string& path,
               const std::vector<StreamRecord>& records) {
  JsonValue root = JsonValue::MakeObject();
  root.Set("n", kVertices);
  root.Set("rounds", kRounds);
  root.Set("shards", kShards);
  JsonValue rows = JsonValue::MakeArray();
  bool all_identical = true;
  double best = 0;
  for (const StreamRecord& r : records) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("inserters", r.inserters);
    entry.Set("gutter", r.gutter);
    entry.Set("updates", r.updates);
    entry.Set("ms", r.ms);
    entry.Set("ns_per_update", r.ns_per_update());
    entry.Set("updates_per_sec", r.updates_per_sec());
    entry.Set("identical", r.identical);
    rows.Append(std::move(entry));
    all_identical = all_identical && r.identical;
    if (r.updates_per_sec() > best) best = r.updates_per_sec();
  }
  root.Set("rows", std::move(rows));
  root.Set("answers_identical", all_identical);
  root.Set("best_updates_per_sec", best);
  bench::WriteBenchJson(path, std::move(root));
}

}  // namespace
}  // namespace dcs

int main(int argc, char** argv) {
  const std::string out_path =
      dcs::bench::ConsumeOutFlag(&argc, argv, "BENCH_stream.json");
  const auto records = dcs::SectionThroughput();
  dcs::WriteJson(out_path, records);
  return 0;
}
